#include "sim/event_queue.h"

#include <utility>

#include "common/logging.h"

namespace fela::sim {

EventId EventQueue::Push(SimTime when, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Event{when, id, std::move(fn)});
  pending_.insert(id);
  ++size_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  // Only a pending (un-fired, un-cancelled) id is cancellable. An id
  // that already fired or was already cancelled must be rejected: the
  // old mark-blindly path decremented size_ for fired ids, making
  // empty() report true with events still in the heap (a popped run
  // ends early), and left the stale mark in cancelled_ forever.
  if (pending_.erase(id) == 0) return false;
  // We cannot search the heap; mark and lazily drop on pop.
  cancelled_.insert(id);
  --size_;
  return true;
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty()) {
    auto found = cancelled_.find(heap_.top().id);
    if (found == cancelled_.end()) return;
    cancelled_.erase(found);
    heap_.pop();
  }
}

SimTime EventQueue::PeekTime() const {
  auto* self = const_cast<EventQueue*>(this);
  self->SkipCancelled();
  FELA_CHECK(!heap_.empty());
  return heap_.top().when;
}

std::pair<SimTime, std::function<void()>> EventQueue::Pop() {
  SkipCancelled();
  FELA_CHECK(!heap_.empty());
  // priority_queue::top() is const; move out via const_cast, then pop.
  Event& top = const_cast<Event&>(heap_.top());
  std::pair<SimTime, std::function<void()>> out{top.when, std::move(top.fn)};
  pending_.erase(top.id);
  heap_.pop();
  --size_;
  return out;
}

}  // namespace fela::sim
