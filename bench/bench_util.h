#ifndef FELA_BENCH_BENCH_UTIL_H_
#define FELA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "runtime/report.h"
#include "suite/suite.h"

namespace fela::bench {

/// Iterations per measured configuration. The paper trains every
/// configuration for 100 iterations (Eq. 3).
inline constexpr int kIterations = 100;

/// The paper's batch sweeps. VGG19 follows Fig. 6's 64..1024; GoogLeNet
/// uses a larger range (its 32x32 inputs train far more samples/s).
inline const std::vector<double>& Vgg19Batches() {
  static const std::vector<double> kBatches = {64, 128, 256, 512, 1024};
  return kBatches;
}
inline const std::vector<double>& GoogLeNetBatches() {
  static const std::vector<double> kBatches = {128, 256, 512, 1024, 2048};
  return kBatches;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Prints the paper-style "outperforms X by a%~b" summary line.
inline void PrintGainSummary(const std::string& model,
                             const std::vector<runtime::ComparisonRow>& rows) {
  for (size_t other = 0; other + 1 < suite::EngineNames().size(); ++other) {
    const auto [lo, hi] = runtime::GainRange(rows, suite::kFelaColumn, other);
    std::printf("  %s: Fela outperforms %s by %s ~ %s\n", model.c_str(),
                suite::EngineNames()[other].c_str(),
                runtime::FormatGain(lo).c_str(),
                runtime::FormatGain(hi).c_str());
  }
}

}  // namespace fela::bench

#endif  // FELA_BENCH_BENCH_UTIL_H_
