#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace fela::sim {

namespace {
/// Compaction only engages past this many heap entries: tiny queues are
/// cheaper to sweep lazily than to rebuild.
constexpr size_t kCompactMinEntries = 64;
}  // namespace

void EventQueue::AddSegment() {
  const uint32_t seg_size = 1u << (kSeg0Bits + segs_.size());
  segs_.push_back(std::make_unique<Slot[]>(seg_size));
  slot_capacity_ += seg_size;
}

void EventQueue::SiftUp(size_t i) {
  const Entry e = heap_[i];
  while (i != 0) {
    const size_t parent = (i - 1) >> 2;
    if (!Earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::SiftDown(size_t i) {
  const Entry e = heap_[i];
  const unsigned __int128 ep = Pack(e);
  const size_t n = heap_.size();
  for (;;) {
    const size_t first = 4 * i + 1;
    if (first >= n) break;
    const size_t end = std::min(first + 4, n);
    // Branchless argmin over the (up to four) children: packed compares
    // lower to carry-flag arithmetic and conditional moves, avoiding a
    // mispredict-prone branch per child on randomly ordered times.
    size_t best = first;
    unsigned __int128 bp = Pack(heap_[first]);
    for (size_t c = first + 1; c < end; ++c) {
      const unsigned __int128 p = Pack(heap_[c]);
      const bool lt = p < bp;
      best = lt ? c : best;
      bp = lt ? p : bp;
    }
    if (ep <= bp) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventQueue::PopRoot() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

EventId EventQueue::Push(SimTime when, EventFn fn) {
  uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    FELA_CHECK_LT(slot_count_, static_cast<uint32_t>(kSlotMask));
    if (slot_count_ == slot_capacity_) AddSegment();
    slot = slot_count_++;
  }
  FELA_CHECK_LT(next_seq_, kMaxSeq);
  FELA_CHECK_GE(when, 0.0);  // bit-ordered times require non-negative
  const uint64_t key = (next_seq_++ << kSlotBits) | slot;
  Slot& s = SlotAt(slot);
  s.key = key;
  s.fn = std::move(fn);
  heap_.push_back(Entry{TimeBits(when), key});
  SiftUp(heap_.size() - 1);
  ++size_;
  return key;
}

bool EventQueue::Cancel(EventId id) {
  const uint64_t slot = id & kSlotMask;
  // A fired or already-cancelled event vacated its slot (and a reused
  // slot carries a fresh sequence number), so a stale handle fails the
  // key match here instead of eating a live event's count. The explicit
  // kInvalidEventId test keeps the null handle from matching a vacant
  // slot 0, whose key is also 0.
  if (id == kInvalidEventId || slot >= slot_count_) return false;
  Slot& s = SlotAt(static_cast<uint32_t>(slot));
  if (s.key != id) return false;
  RetireSlot(s, static_cast<uint32_t>(slot));
  --size_;
  ++dead_in_heap_;
  MaybeCompact();
  return true;
}

void EventQueue::RetireSlot(Slot& s, uint32_t slot) {
  s.key = 0;    // invalidates the handle and any heap entry
  s.fn.Reset(); // release captured state eagerly
  free_.push_back(slot);
}

void EventQueue::SkipDead() {
  while (dead_in_heap_ != 0 && !heap_.empty() && !EntryLive(heap_.front())) {
    PopRoot();
    --dead_in_heap_;
  }
}

void EventQueue::MaybeCompact() {
  if (heap_.size() < kCompactMinEntries || dead_in_heap_ * 2 <= heap_.size()) {
    return;
  }
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& e) { return !EntryLive(e); }),
              heap_.end());
  // Floyd heap construction: sift down every internal node, deepest
  // first. Internal nodes are 0 .. parent-of-last.
  const size_t n = heap_.size();
  if (n > 1) {
    for (size_t i = (n - 2) / 4 + 1; i-- > 0;) SiftDown(i);
  }
  dead_in_heap_ = 0;
}

SimTime EventQueue::PeekTime() const {
  auto* self = const_cast<EventQueue*>(this);
  self->SkipDead();
  FELA_CHECK(!heap_.empty());
  return BitsTime(heap_.front().when_bits);
}

std::pair<SimTime, EventFn> EventQueue::Pop() {
  SkipDead();
  FELA_CHECK(!heap_.empty());
  const Entry top = heap_.front();
  const uint32_t slot = static_cast<uint32_t>(top.key & kSlotMask);
  Slot& s = SlotAt(slot);
  // Pull the slot's cache line in while the sift-down below runs; the
  // slab access pattern is effectively random, so this overlaps the
  // line fill with heap work instead of stalling on it afterwards.
  __builtin_prefetch(&s, /*rw=*/1);
  PopRoot();
  std::pair<SimTime, EventFn> out{BitsTime(top.when_bits), std::move(s.fn)};
  RetireSlot(s, slot);
  --size_;
  return out;
}

}  // namespace fela::sim
