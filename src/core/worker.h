#ifndef FELA_CORE_WORKER_H_
#define FELA_CORE_WORKER_H_

#include <algorithm>
#include <functional>
#include <optional>
#include <vector>

#include "core/token.h"
#include "core/token_server.h"
#include "model/cost_model.h"
#include "model/partition.h"
#include "sim/fabric.h"
#include "sim/gpu.h"
#include "sim/span.h"
#include "sim/trace.h"

namespace fela::core {

/// The worker's Parameter Chunks (§III-A): which token outputs are
/// resident in local storage. The token server's Info Mapping mirrors
/// this; the worker-side copy is the ground truth the tests cross-check.
///
/// Stored as a lazily-sorted flat vector rather than a hash set: Store is
/// an O(1) append on the hot compute-done path, and the first observable
/// read after a batch of appends sorts + dedupes once (token regrants
/// after a fault can complete the same id twice on one worker). Iteration
/// order is therefore always sorted — the info_mapping.h guarantee with
/// no per-snapshot copy.
class ParameterChunks {
 public:
  void Store(TokenId token) {
    // Strictly-increasing appends (the common case: token ids are
    // monotonic) keep the vector normalized with no deferred work.
    sorted_ = sorted_ && (held_.empty() || token > held_.back());
    held_.push_back(token);
  }
  bool Has(TokenId token) const {
    Normalize();
    return std::binary_search(held_.begin(), held_.end(), token);
  }
  size_t size() const {
    Normalize();
    return held_.size();
  }
  void Clear() {
    held_.clear();
    sorted_ = true;
  }

  /// Sorted key snapshot (see info_mapping.h): the only sanctioned way
  /// to iterate the held set into anything observable.
  std::vector<TokenId> HeldSorted() const {
    Normalize();
    return held_;
  }

 private:
  void Normalize() const {
    if (sorted_) return;
    std::sort(held_.begin(), held_.end());
    held_.erase(std::unique(held_.begin(), held_.end()), held_.end());
    sorted_ = true;
  }

  mutable std::vector<TokenId> held_;
  mutable bool sorted_ = true;
};

/// Request retransmission policy: the k-th consecutive retry of one
/// request waits JitteredBackoffSec(base, mult, max, k, seed, worker) —
/// exponential backoff with deterministic jitter. base_sec <= 0 disables
/// retries entirely (the fault-free default: no timer events scheduled);
/// mult 1.0 + seed 0 recovers the legacy fixed-interval behaviour.
struct RetryPolicy {
  double base_sec = 0.0;
  double multiplier = 1.0;
  double max_sec = 0.0;  // <= 0: uncapped
  uint64_t jitter_seed = 0;
};

/// How workers reach the token server.
struct WorkerCallbacks {
  /// Send a token request control message to the TS.
  std::function<void(sim::NodeId)> send_request;
  /// Send a completion report (with implicit request) to the TS.
  std::function<void(sim::NodeId, const Token&)> send_report;
};

/// Everything a FelaWorker references that is identical across the
/// engine's workers: simulation handles, the model and its partition,
/// the cost model, observability sinks, and the TS callbacks. Workers
/// hold one pointer to this instead of eight — per-worker hot state
/// shrinks to the scalars in FelaWorker itself, which is what lets a
/// 1k–10k-worker arena stay cache-resident (struct-of-shared +
/// array-of-hot layout). Owned by the engine; must outlive its workers.
struct WorkerContext {
  sim::Simulator* sim = nullptr;
  sim::Fabric* fabric = nullptr;
  const model::Model* model = nullptr;
  const std::vector<model::SubModel>* sub_models = nullptr;
  const model::LayerCostModel* cost = nullptr;
  sim::TraceRecorder* trace = nullptr;
  WorkerCallbacks cbs;
};

/// A Fela worker: Trainer (GPU compute), Coordinator (dependency
/// fetches), and Parameter Chunks. Event-driven; one token in flight at
/// a time (the §III-D combined report+request cycle).
class FelaWorker {
 public:
  using Callbacks = WorkerCallbacks;

  /// `ctx` carries all engine-shared dependencies; `gpu` is this
  /// worker's device.
  FelaWorker(sim::NodeId id, const WorkerContext* ctx, sim::GpuDevice* gpu);

  FelaWorker(const FelaWorker&) = delete;
  FelaWorker& operator=(const FelaWorker&) = delete;

  /// Starts the iteration: applies the injected straggler sleep (the
  /// GPU is blocked for `straggler_delay` seconds, §V-C) and the
  /// iteration's compute slowdown factor, then requests a token unless a
  /// request from the previous iteration is still unanswered.
  void BeginIteration(int iteration, double straggler_delay,
                      double slowdown = 1.0);

  /// A grant arrived from the TS (engine already applied latency and the
  /// grant's extra_delay). Fetches remote dependencies, then trains. A
  /// grant that arrives while the trainer is busy (a duplicate, or one
  /// that raced a retry) is dropped — the TS lease reclaims it.
  void OnGrant(const Grant& grant);

  /// Enables request retransmission: while a request is unanswered,
  /// fresh requests go out on the policy's backoff schedule (covers
  /// requests or grants lost on a lossy control plane or across a
  /// partition). Disabled by default, so fault-free runs schedule no
  /// timer events.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }

  /// Convenience: fixed-interval retries every `sec` seconds (no
  /// backoff, no jitter). <= 0 disables.
  void set_retry_timeout(double sec) {
    retry_ = RetryPolicy{sec, 1.0, sec, 0};
  }

  /// The worker process died: whatever was fetching/computing is
  /// discarded (the incarnation guard voids in-flight callbacks) and all
  /// timers stop. Parameter Chunks survive — the fault model keeps bulk
  /// data recoverable from persistent storage (DESIGN.md §Fault model).
  void OnCrash();

  /// Asks the TS for work if idle with no unanswered request (used when
  /// a recovered worker is re-admitted mid-iteration).
  void RequestWork(int iteration);

  /// Cancels any pending retry timer (run teardown — leaves no dangling
  /// events in the simulator queue).
  void Quiesce();

  /// Enables token-wait span emission: the interval from each request
  /// (or report's implicit request) to the accepted grant shows up as a
  /// kTokenWait span on this worker's track.
  void set_span_sink(obs::SpanSink* spans) { spans_ = spans; }

  sim::NodeId id() const { return id_; }
  ParameterChunks& chunks() { return chunks_; }
  const ParameterChunks& chunks() const { return chunks_; }

  // -- Statistics ---------------------------------------------------------
  int tokens_trained() const { return tokens_trained_; }
  double samples_trained() const { return samples_trained_; }
  double bytes_fetched() const { return bytes_fetched_; }
  bool busy() const { return busy_; }
  uint64_t retries() const { return retries_; }
  uint64_t ignored_grants() const { return ignored_grants_; }
  int incarnation() const { return incarnation_; }

 private:
  void StartCompute(Token token);
  void OnComputeDone(Token token);
  void BeginTokenWait();
  void ArmRetryTimer();
  void CancelRetryTimer();
  void OnRetryFire();

  sim::Simulator* sim() const { return ctx_->sim; }
  sim::TraceRecorder* trace() const { return ctx_->trace; }

  sim::NodeId id_;
  const WorkerContext* ctx_;
  sim::GpuDevice* gpu_;
  obs::SpanSink* spans_ = nullptr;
  /// Open from request send to grant accept; lives across simulator
  /// callbacks because the span clock is simulated time.
  std::optional<obs::ScopedSpan> token_wait_;

  ParameterChunks chunks_;
  double slowdown_ = 1.0;
  bool request_outstanding_ = false;
  bool busy_ = false;
  int tokens_trained_ = 0;
  double samples_trained_ = 0.0;
  double bytes_fetched_ = 0.0;
  /// Bumped on every crash; fetch/compute completions captured under an
  /// older incarnation are discarded (the work died with the process).
  int incarnation_ = 0;
  int iteration_ = -1;
  RetryPolicy retry_;
  /// Consecutive retries of the *current* request (backoff exponent);
  /// reset whenever a fresh request cycle starts or a grant lands.
  int retry_attempt_ = 0;
  sim::EventId retry_timer_ = sim::kInvalidEventId;
  uint64_t retries_ = 0;
  uint64_t ignored_grants_ = 0;
};

}  // namespace fela::core

#endif  // FELA_CORE_WORKER_H_
