// fela-lint fixture: sweep-shared-state must fire exactly twice:
//   line 9   mutable namespace-scope global (flagged unconditionally)
//   line 12  mutable function-local static, reachable from a sweep task
//            body (RunExperiment -> Tick)
// The const global and the static inside unreachable Helper() must not
// fire.
namespace fela::fixture {

int g_fixture_ticks = 0;

int Tick() {
  static int calls = 0;
  calls += g_fixture_ticks;
  return ++calls;
}

const int kLimit = 8;

int Helper() {
  static int unreachable = 0;
  return ++unreachable;
}

int RunExperiment() { return Tick() + kLimit; }

}  // namespace fela::fixture
