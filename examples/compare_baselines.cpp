// Four-way engine comparison across the batch sweep for both paper
// benchmarks — a compact version of the Fig. 8 harness for playing with
// calibration knobs.
//
//   ./build/examples/compare_baselines            # default calibration
//   ./build/examples/compare_baselines 40         # 40 Gbps network

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "model/zoo.h"
#include "runtime/report.h"
#include "suite/suite.h"

int main(int argc, char** argv) {
  using namespace fela;

  sim::Calibration cal = sim::Calibration::Default();
  if (argc > 1) {
    const double gbps = std::atof(argv[1]);
    if (gbps > 0) {
      cal.nic_bandwidth_bytes_per_sec = common::GbpsToBytesPerSec(gbps);
      std::printf("using %g Gbps links\n", gbps);
    }
  }

  struct Case {
    model::Model model;
    std::vector<double> batches;
  };
  const Case cases[] = {
      {model::zoo::Vgg19(), {64, 128, 256, 512, 1024}},
      {model::zoo::GoogLeNet(), {128, 256, 512, 1024, 2048}},
  };

  for (const Case& c : cases) {
    std::vector<runtime::ComparisonRow> rows;
    for (double batch : c.batches) {
      runtime::ExperimentSpec spec;
      spec.total_batch = batch;
      spec.iterations = 30;
      spec.calibration = cal;
      const auto cfg = suite::TunedFelaConfig(c.model, batch, 8, 5, cal);
      const auto r = suite::CompareAll(c.model, spec,
                                       runtime::NoStragglerFactory(), cfg);
      rows.push_back(runtime::ComparisonRow{batch, r.Throughputs()});
    }
    std::cout << "\n"
              << runtime::RenderComparisonTable(
                     c.model.name() + ": average throughput (samples/s)",
                     "batch", suite::EngineNames(), rows, suite::kFelaColumn);
  }
  return 0;
}
