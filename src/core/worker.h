#ifndef FELA_CORE_WORKER_H_
#define FELA_CORE_WORKER_H_

#include <algorithm>
#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "core/token.h"
#include "core/token_server.h"
#include "model/cost_model.h"
#include "model/partition.h"
#include "sim/fabric.h"
#include "sim/gpu.h"
#include "sim/span.h"
#include "sim/trace.h"

namespace fela::core {

/// The worker's Parameter Chunks (§III-A): which token outputs are
/// resident in local storage. The token server's Info Mapping mirrors
/// this; the worker-side copy is the ground truth the tests cross-check.
class ParameterChunks {
 public:
  void Store(TokenId token) { held_.insert(token); }
  bool Has(TokenId token) const { return held_.count(token) > 0; }
  size_t size() const { return held_.size(); }
  void Clear() { held_.clear(); }

  /// Sorted key snapshot (see info_mapping.h): the only sanctioned way
  /// to iterate the held set into anything observable.
  std::vector<TokenId> HeldSorted() const {
    std::vector<TokenId> out(held_.begin(), held_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::unordered_set<TokenId> held_;
};

/// Request retransmission policy: the k-th consecutive retry of one
/// request waits JitteredBackoffSec(base, mult, max, k, seed, worker) —
/// exponential backoff with deterministic jitter. base_sec <= 0 disables
/// retries entirely (the fault-free default: no timer events scheduled);
/// mult 1.0 + seed 0 recovers the legacy fixed-interval behaviour.
struct RetryPolicy {
  double base_sec = 0.0;
  double multiplier = 1.0;
  double max_sec = 0.0;  // <= 0: uncapped
  uint64_t jitter_seed = 0;
};

/// A Fela worker: Trainer (GPU compute), Coordinator (dependency
/// fetches), and Parameter Chunks. Event-driven; one token in flight at
/// a time (the §III-D combined report+request cycle).
class FelaWorker {
 public:
  struct Callbacks {
    /// Send a token request control message to the TS.
    std::function<void(sim::NodeId)> send_request;
    /// Send a completion report (with implicit request) to the TS.
    std::function<void(sim::NodeId, const Token&)> send_report;
  };

  FelaWorker(sim::NodeId id, sim::Simulator* sim, sim::Fabric* fabric,
             sim::GpuDevice* gpu, const model::Model* model,
             const std::vector<model::SubModel>* sub_models,
             const model::LayerCostModel* cost, sim::TraceRecorder* trace,
             Callbacks cbs);

  FelaWorker(const FelaWorker&) = delete;
  FelaWorker& operator=(const FelaWorker&) = delete;

  /// Starts the iteration: applies the injected straggler sleep (the
  /// GPU is blocked for `straggler_delay` seconds, §V-C) and the
  /// iteration's compute slowdown factor, then requests a token unless a
  /// request from the previous iteration is still unanswered.
  void BeginIteration(int iteration, double straggler_delay,
                      double slowdown = 1.0);

  /// A grant arrived from the TS (engine already applied latency and the
  /// grant's extra_delay). Fetches remote dependencies, then trains. A
  /// grant that arrives while the trainer is busy (a duplicate, or one
  /// that raced a retry) is dropped — the TS lease reclaims it.
  void OnGrant(const Grant& grant);

  /// Enables request retransmission: while a request is unanswered,
  /// fresh requests go out on the policy's backoff schedule (covers
  /// requests or grants lost on a lossy control plane or across a
  /// partition). Disabled by default, so fault-free runs schedule no
  /// timer events.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }

  /// Convenience: fixed-interval retries every `sec` seconds (no
  /// backoff, no jitter). <= 0 disables.
  void set_retry_timeout(double sec) {
    retry_ = RetryPolicy{sec, 1.0, sec, 0};
  }

  /// The worker process died: whatever was fetching/computing is
  /// discarded (the incarnation guard voids in-flight callbacks) and all
  /// timers stop. Parameter Chunks survive — the fault model keeps bulk
  /// data recoverable from persistent storage (DESIGN.md §Fault model).
  void OnCrash();

  /// Asks the TS for work if idle with no unanswered request (used when
  /// a recovered worker is re-admitted mid-iteration).
  void RequestWork(int iteration);

  /// Cancels any pending retry timer (run teardown — leaves no dangling
  /// events in the simulator queue).
  void Quiesce();

  /// Enables token-wait span emission: the interval from each request
  /// (or report's implicit request) to the accepted grant shows up as a
  /// kTokenWait span on this worker's track.
  void set_span_sink(obs::SpanSink* spans) { spans_ = spans; }

  sim::NodeId id() const { return id_; }
  ParameterChunks& chunks() { return chunks_; }
  const ParameterChunks& chunks() const { return chunks_; }

  // -- Statistics ---------------------------------------------------------
  int tokens_trained() const { return tokens_trained_; }
  double samples_trained() const { return samples_trained_; }
  double bytes_fetched() const { return bytes_fetched_; }
  bool busy() const { return busy_; }
  uint64_t retries() const { return retries_; }
  uint64_t ignored_grants() const { return ignored_grants_; }
  int incarnation() const { return incarnation_; }

 private:
  void StartCompute(Token token);
  void OnComputeDone(Token token);
  void BeginTokenWait();
  void ArmRetryTimer();
  void CancelRetryTimer();
  void OnRetryFire();

  sim::NodeId id_;
  sim::Simulator* sim_;
  sim::Fabric* fabric_;
  sim::GpuDevice* gpu_;
  const model::Model* model_;
  const std::vector<model::SubModel>* sub_models_;
  const model::LayerCostModel* cost_;
  sim::TraceRecorder* trace_;
  obs::SpanSink* spans_ = nullptr;
  /// Open from request send to grant accept; lives across simulator
  /// callbacks because the span clock is simulated time.
  std::optional<obs::ScopedSpan> token_wait_;
  Callbacks cbs_;

  ParameterChunks chunks_;
  double slowdown_ = 1.0;
  bool request_outstanding_ = false;
  bool busy_ = false;
  int tokens_trained_ = 0;
  double samples_trained_ = 0.0;
  double bytes_fetched_ = 0.0;
  /// Bumped on every crash; fetch/compute completions captured under an
  /// older incarnation are discarded (the work died with the process).
  int incarnation_ = 0;
  int iteration_ = -1;
  RetryPolicy retry_;
  /// Consecutive retries of the *current* request (backoff exponent);
  /// reset whenever a fresh request cycle starts or a grant lands.
  int retry_attempt_ = 0;
  sim::EventId retry_timer_ = sim::kInvalidEventId;
  uint64_t retries_ = 0;
  uint64_t ignored_grants_ = 0;
};

}  // namespace fela::core

#endif  // FELA_CORE_WORKER_H_
