#include "lint/include_graph.h"

#include <algorithm>
#include <functional>
#include <set>

#include "lint/lexer.h"

namespace fela::lint {
namespace {

const std::vector<std::string>& EmptyList() {
  static const std::vector<std::string> kEmpty;
  return kEmpty;
}

}  // namespace

IncludeGraph IncludeGraph::Build(
    const std::map<std::string, std::string>& sources) {
  IncludeGraph g;
  for (const auto& [path, contents] : sources) {
    g.files_.push_back(path);
    (void)contents;
  }
  // files_ is sorted because `sources` is an ordered map.

  for (const auto& [path, contents] : sources) {
    std::set<std::string> resolved;
    std::set<std::string> missing;
    const size_t slash = path.find_last_of("/\\");
    const std::string dir =
        slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
    for (const std::string& spec : CollectIncludes(contents)) {
      bool matched = false;
      // Root-relative form: the spec is a suffix of some scanned path.
      for (const std::string& candidate : g.files_) {
        if (PathMatchesInclude(candidate, spec)) {
          resolved.insert(candidate);
          matched = true;
        }
      }
      // Includer-relative form ("sibling.h" next to the includer).
      if (!matched && sources.count(dir + spec) > 0) {
        resolved.insert(dir + spec);
        matched = true;
      }
      if (!matched) missing.insert(spec);
    }
    g.deps_[path].assign(resolved.begin(), resolved.end());
    if (!missing.empty()) {
      g.missing_[path].assign(missing.begin(), missing.end());
    }
  }

  // Cycles = strongly connected components with more than one file, or
  // a single file that includes itself. Tarjan, deterministic because
  // roots and edges are walked in sorted order.
  std::map<std::string, int> index;
  std::map<std::string, int> low;
  std::set<std::string> on_stack;
  std::vector<std::string> stack;
  int next_index = 0;
  std::function<void(const std::string&)> strongconnect =
      [&](const std::string& v) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack.insert(v);
        for (const std::string& w : g.deps_[v]) {
          if (index.count(w) == 0) {
            strongconnect(w);
            low[v] = std::min(low[v], low[w]);
          } else if (on_stack.count(w) > 0) {
            low[v] = std::min(low[v], index[w]);
          }
        }
        if (low[v] == index[v]) {
          std::vector<std::string> component;
          for (;;) {
            const std::string w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            component.push_back(w);
            if (w == v) break;
          }
          const bool self_loop =
              component.size() == 1 &&
              std::find(g.deps_[v].begin(), g.deps_[v].end(), v) !=
                  g.deps_[v].end();
          if (component.size() > 1 || self_loop) {
            std::sort(component.begin(), component.end());
            g.cycles_.push_back(std::move(component));
          }
        }
      };
  for (const std::string& f : g.files_) {
    if (index.count(f) == 0) strongconnect(f);
  }
  std::sort(g.cycles_.begin(), g.cycles_.end());
  return g;
}

const std::vector<std::string>& IncludeGraph::Direct(
    const std::string& path) const {
  const auto it = deps_.find(path);
  return it == deps_.end() ? EmptyList() : it->second;
}

std::vector<std::string> IncludeGraph::Transitive(
    const std::string& path) const {
  std::set<std::string> seen;
  std::vector<std::string> frontier{path};
  while (!frontier.empty()) {
    const std::string cur = frontier.back();
    frontier.pop_back();
    for (const std::string& next : Direct(cur)) {
      if (next != path && seen.insert(next).second) {
        frontier.push_back(next);
      }
    }
  }
  return std::vector<std::string>(seen.begin(), seen.end());
}

const std::vector<std::string>& IncludeGraph::Missing(
    const std::string& path) const {
  const auto it = missing_.find(path);
  return it == missing_.end() ? EmptyList() : it->second;
}

}  // namespace fela::lint
