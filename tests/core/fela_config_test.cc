#include "core/fela_config.h"

#include <gtest/gtest.h>

#include <limits>

#include "model/zoo.h"

namespace fela::core {
namespace {

std::vector<model::SubModel> Vgg19SubModels() {
  return model::BinPartitioner().Partition(
      model::zoo::Vgg19(), model::ProfileRepository::Default());
}

TEST(FelaConfigTest, DefaultsAreUniform) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  EXPECT_EQ(cfg.weights, (std::vector<int>{1, 1, 1}));
  EXPECT_EQ(cfg.ctd_subset_size, 8);
  EXPECT_TRUE(cfg.ads_enabled);
  EXPECT_TRUE(cfg.hf_enabled);
}

TEST(ValidateConfigTest, AcceptsPaperConfigs) {
  for (auto weights : std::vector<std::vector<int>>{
           {1, 1, 1}, {1, 1, 4}, {1, 2, 4}, {1, 8, 8}}) {
    FelaConfig cfg = FelaConfig::Defaults(3, 8);
    cfg.weights = weights;
    EXPECT_TRUE(ValidateConfig(cfg, 3, 8).ok()) << weights[2];
  }
}

TEST(ValidateConfigTest, RejectsWrongArity) {
  FelaConfig cfg = FelaConfig::Defaults(2, 8);
  EXPECT_FALSE(ValidateConfig(cfg, 3, 8).ok());
}

TEST(ValidateConfigTest, RejectsNonUnitBase) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  cfg.weights = {2, 2, 4};
  EXPECT_FALSE(ValidateConfig(cfg, 3, 8).ok());
}

TEST(ValidateConfigTest, RejectsDecreasingWeights) {
  // §IV-B: w_{i+1} >= w_i.
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  cfg.weights = {1, 4, 2};
  EXPECT_FALSE(ValidateConfig(cfg, 3, 8).ok());
}

TEST(ValidateConfigTest, RejectsNonPowerOfTwo) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  cfg.weights = {1, 3, 4};
  EXPECT_FALSE(ValidateConfig(cfg, 3, 8).ok());
}

TEST(ValidateConfigTest, RejectsWeightAboveWorkerCount) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  cfg.weights = {1, 8, 16};
  EXPECT_FALSE(ValidateConfig(cfg, 3, 8).ok());
}

TEST(ValidateConfigTest, RejectsBadSubset) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  cfg.ctd_subset_size = 0;
  EXPECT_FALSE(ValidateConfig(cfg, 3, 8).ok());
  cfg.ctd_subset_size = 9;
  EXPECT_FALSE(ValidateConfig(cfg, 3, 8).ok());
}

TEST(BuildPlanTest, PaperSectionThreeBExample) {
  // §III-B: total batch 128, thresholds 16/32/64 => 8 T-1, 4 T-2, 2 T-3
  // tokens with batches 16/32/64 (weights {1,2,4}).
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  cfg.weights = {1, 2, 4};
  const FelaPlan plan = BuildPlan(model::zoo::Vgg19(), Vgg19SubModels(), cfg,
                                  128, 8);
  ASSERT_EQ(plan.num_levels(), 3);
  EXPECT_EQ(plan.level(0).token_count, 8);
  EXPECT_DOUBLE_EQ(plan.level(0).token_batch, 16);
  EXPECT_EQ(plan.level(1).token_count, 4);
  EXPECT_DOUBLE_EQ(plan.level(1).token_batch, 32);
  EXPECT_EQ(plan.level(2).token_count, 2);
  EXPECT_DOUBLE_EQ(plan.level(2).token_batch, 64);
  EXPECT_EQ(plan.level(1).generation_ratio, 2);
  EXPECT_EQ(plan.level(2).generation_ratio, 2);
  EXPECT_EQ(plan.TotalTokens(), 14);
}

TEST(BuildPlanTest, AtLeastOneTokenPerWorker) {
  // Eq. 2: n_1 = max(total/threshold, N).
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  const FelaPlan plan =
      BuildPlan(model::zoo::Vgg19(), Vgg19SubModels(), cfg, 64, 8);
  EXPECT_EQ(plan.level(0).token_count, 8);  // 64/16 = 4 < N = 8
  EXPECT_DOUBLE_EQ(plan.level(0).token_batch, 8.0);
}

TEST(BuildPlanTest, SampleConservationPerLevel) {
  for (double batch : {64.0, 128.0, 256.0, 1024.0}) {
    FelaConfig cfg = FelaConfig::Defaults(3, 8);
    cfg.weights = {1, 2, 8};
    const FelaPlan plan =
        BuildPlan(model::zoo::Vgg19(), Vgg19SubModels(), cfg, batch, 8);
    for (const auto& lp : plan.levels) {
      EXPECT_GE(lp.token_batch * lp.token_count, batch)
          << "level " << lp.level << " batch " << batch;
    }
  }
}

TEST(BuildPlanTest, SyncBytesMatchSubModelParams) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  const auto sub = Vgg19SubModels();
  const FelaPlan plan =
      BuildPlan(model::zoo::Vgg19(), sub, cfg, 256, 8);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(plan.level(i).sync_bytes,
                     sub[static_cast<size_t>(i)].params * 4.0);
  }
}

TEST(BuildPlanTest, CommFlagPropagates) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  const FelaPlan plan =
      BuildPlan(model::zoo::Vgg19(), Vgg19SubModels(), cfg, 256, 8);
  EXPECT_FALSE(plan.level(0).communication_intensive);
  EXPECT_TRUE(plan.level(2).communication_intensive);
}

TEST(BuildPlanTest, DepBytesUseBoundaryActivations) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  const auto sub = Vgg19SubModels();
  const FelaPlan plan =
      BuildPlan(model::zoo::Vgg19(), sub, cfg, 256, 8);
  EXPECT_DOUBLE_EQ(plan.level(1).dep_bytes_per_sample,
                   sub[1].input_boundary_elems * 4.0);
  EXPECT_DOUBLE_EQ(plan.level(0).sample_bytes_per_sample,
                   3.0 * 224 * 224 * 4.0);
}

TEST(BuildPlanTest, ToStringListsLevels) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  const FelaPlan plan =
      BuildPlan(model::zoo::Vgg19(), Vgg19SubModels(), cfg, 128, 8);
  const std::string s = plan.ToString();
  EXPECT_NE(s.find("T-1"), std::string::npos);
  EXPECT_NE(s.find("T-3"), std::string::npos);
}

TEST(ValidatePlanInputsTest, AcceptsPaperInputs) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  cfg.weights = {1, 2, 4};
  EXPECT_TRUE(ValidatePlanInputs(model::zoo::Vgg19(), Vgg19SubModels(), cfg,
                                 128, 8)
                  .ok());
}

TEST(ValidatePlanInputsTest, RejectsBadWorkerCount) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  const auto sub = Vgg19SubModels();
  EXPECT_FALSE(
      ValidatePlanInputs(model::zoo::Vgg19(), sub, cfg, 128, 0).ok());
  EXPECT_FALSE(
      ValidatePlanInputs(model::zoo::Vgg19(), sub, cfg, 128, -4).ok());
}

TEST(ValidatePlanInputsTest, RejectsBadTotalBatch) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  const auto sub = Vgg19SubModels();
  EXPECT_FALSE(ValidatePlanInputs(model::zoo::Vgg19(), sub, cfg, 0.0, 8).ok());
  EXPECT_FALSE(
      ValidatePlanInputs(model::zoo::Vgg19(), sub, cfg, -128.0, 8).ok());
  EXPECT_FALSE(ValidatePlanInputs(model::zoo::Vgg19(), sub, cfg,
                                  std::numeric_limits<double>::quiet_NaN(), 8)
                   .ok());
}

TEST(ValidatePlanInputsTest, RejectsEmptyPartition) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  EXPECT_FALSE(ValidatePlanInputs(model::zoo::Vgg19(), {}, cfg, 128, 8).ok());
}

TEST(ValidatePlanInputsTest, RejectsLayerRangeOutsideModel) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  auto sub = Vgg19SubModels();
  sub.back().last_layer = model::zoo::Vgg19().layer_count();  // one past end
  EXPECT_FALSE(ValidatePlanInputs(model::zoo::Vgg19(), sub, cfg, 128, 8).ok());
  sub = Vgg19SubModels();
  sub.front().first_layer = -1;
  EXPECT_FALSE(ValidatePlanInputs(model::zoo::Vgg19(), sub, cfg, 128, 8).ok());
  sub = Vgg19SubModels();
  sub.front().last_layer = sub.front().first_layer - 1;  // inverted range
  EXPECT_FALSE(ValidatePlanInputs(model::zoo::Vgg19(), sub, cfg, 128, 8).ok());
}

TEST(ValidatePlanInputsTest, RejectsNonPositiveThreshold) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  auto sub = Vgg19SubModels();
  sub[1].threshold_batch = 0.0;
  EXPECT_FALSE(ValidatePlanInputs(model::zoo::Vgg19(), sub, cfg, 128, 8).ok());
}

TEST(ValidatePlanInputsTest, RejectsConfigPartitionMismatch) {
  // Delegates to ValidateConfig: 2-level config against a 3-way partition.
  FelaConfig cfg = FelaConfig::Defaults(2, 8);
  EXPECT_FALSE(ValidatePlanInputs(model::zoo::Vgg19(), Vgg19SubModels(), cfg,
                                  128, 8)
                   .ok());
}

TEST(ValidatePlanInputsTest, RejectsBadFaultToleranceTimeouts) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  cfg.lease_timeout_sec = 0.0;
  EXPECT_FALSE(ValidatePlanInputs(model::zoo::Vgg19(), Vgg19SubModels(), cfg,
                                  128, 8)
                   .ok());
  cfg = FelaConfig::Defaults(3, 8);
  cfg.retry_timeout_sec = -1.0;
  EXPECT_FALSE(ValidatePlanInputs(model::zoo::Vgg19(), Vgg19SubModels(), cfg,
                                  128, 8)
                   .ok());
}

TEST(FelaConfigTest, ToStringShowsKnobs) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  cfg.weights = {1, 2, 4};
  cfg.ctd_subset_size = 2;
  cfg.ads_enabled = false;
  const std::string s = cfg.ToString();
  EXPECT_NE(s.find("1,2,4"), std::string::npos);
  EXPECT_NE(s.find("subset=2"), std::string::npos);
  EXPECT_NE(s.find("ads=0"), std::string::npos);
}

}  // namespace
}  // namespace fela::core
