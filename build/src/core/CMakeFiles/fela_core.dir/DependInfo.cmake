
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fela_config.cc" "src/core/CMakeFiles/fela_core.dir/fela_config.cc.o" "gcc" "src/core/CMakeFiles/fela_core.dir/fela_config.cc.o.d"
  "/root/repo/src/core/fela_engine.cc" "src/core/CMakeFiles/fela_core.dir/fela_engine.cc.o" "gcc" "src/core/CMakeFiles/fela_core.dir/fela_engine.cc.o.d"
  "/root/repo/src/core/info_mapping.cc" "src/core/CMakeFiles/fela_core.dir/info_mapping.cc.o" "gcc" "src/core/CMakeFiles/fela_core.dir/info_mapping.cc.o.d"
  "/root/repo/src/core/ssp_extension.cc" "src/core/CMakeFiles/fela_core.dir/ssp_extension.cc.o" "gcc" "src/core/CMakeFiles/fela_core.dir/ssp_extension.cc.o.d"
  "/root/repo/src/core/token.cc" "src/core/CMakeFiles/fela_core.dir/token.cc.o" "gcc" "src/core/CMakeFiles/fela_core.dir/token.cc.o.d"
  "/root/repo/src/core/token_bucket.cc" "src/core/CMakeFiles/fela_core.dir/token_bucket.cc.o" "gcc" "src/core/CMakeFiles/fela_core.dir/token_bucket.cc.o.d"
  "/root/repo/src/core/token_server.cc" "src/core/CMakeFiles/fela_core.dir/token_server.cc.o" "gcc" "src/core/CMakeFiles/fela_core.dir/token_server.cc.o.d"
  "/root/repo/src/core/tuning.cc" "src/core/CMakeFiles/fela_core.dir/tuning.cc.o" "gcc" "src/core/CMakeFiles/fela_core.dir/tuning.cc.o.d"
  "/root/repo/src/core/worker.cc" "src/core/CMakeFiles/fela_core.dir/worker.cc.o" "gcc" "src/core/CMakeFiles/fela_core.dir/worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fela_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fela_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/fela_model.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fela_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
