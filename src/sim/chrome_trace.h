#ifndef FELA_SIM_CHROME_TRACE_H_
#define FELA_SIM_CHROME_TRACE_H_

#include <string>

#include "common/json.h"
#include "sim/span.h"
#include "sim/trace.h"

namespace fela::obs {

/// Converts a run's spans + trace events into the Chrome trace-event
/// JSON format, loadable in Perfetto (ui.perfetto.dev) or
/// chrome://tracing. Layout: pid 0 = the cluster; one tid ("thread")
/// per worker plus one for the token server / driver (any span track
/// >= num_workers). Spans become "X" complete events with microsecond
/// ts/dur; TraceRecorder events become "i" instant markers on their
/// node's track, so token grants and crashes line up against the
/// compute/sync intervals they explain.
common::Json ChromeTraceJson(const SpanSink& spans,
                             const sim::TraceRecorder* trace, int num_workers);

/// ChromeTraceJson serialized ready to write to a .json file.
std::string ChromeTraceString(const SpanSink& spans,
                              const sim::TraceRecorder* trace,
                              int num_workers);

}  // namespace fela::obs

#endif  // FELA_SIM_CHROME_TRACE_H_
