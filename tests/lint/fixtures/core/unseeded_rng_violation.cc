// fela-lint fixture: the unseeded-rng rule must fire on line 6 (the
// global mt19937) and nowhere else in this file.
namespace fela::fixture {

int Draw() {
  static std::mt19937 generator;
  return static_cast<int>(generator());
}

}  // namespace fela::fixture
