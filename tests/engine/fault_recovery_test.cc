// Fault-tolerance integration tests: token reclamation, elastic
// re-admission, the DP fail-stop contrast, liveness under a lossy
// control plane, and bit-identical replay of faulty runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "baselines/dp_engine.h"
#include "baselines/ps_engine.h"
#include "core/fela_engine.h"
#include "model/zoo.h"
#include "runtime/cluster.h"
#include "sim/faults.h"

namespace fela::core {
namespace {

std::unique_ptr<runtime::Cluster> FaultyCluster(
    std::unique_ptr<sim::FaultSchedule> faults, int n = 8) {
  return std::make_unique<runtime::Cluster>(
      n, sim::Calibration::Default(),
      std::make_unique<sim::NoStragglers>(), std::move(faults));
}

FelaConfig PaperConfig() {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  cfg.weights = {1, 2, 4};
  return cfg;
}

/// Clean-run iteration timings; faulty runs replay these exactly up to
/// the first fault event, so crash instants computed from them land at a
/// known spot of the faulty run too.
runtime::RunStats CleanFelaStats(int iterations, double batch) {
  auto cluster = runtime::Cluster::MakeDefault(8);
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), PaperConfig(), batch);
  return engine.Run(iterations);
}

TEST(FaultRecoveryTest, CrashMidIterationReclaimsTokensAndCompletes) {
  const int kIters = 6;
  const double kBatch = 512.0;
  const auto clean = CleanFelaStats(kIters, kBatch);

  // Crash worker 3 shortly after iteration 2 starts (its STB grant is in
  // flight or computing), recover it mid-run.
  const auto& it2 = clean.iterations[2];
  const double crash = it2.start + 0.2 * (it2.end - it2.start);
  const double recover = 0.6 * clean.total_time;
  auto cluster = FaultyCluster(std::make_unique<sim::ScriptedCrashes>(
      std::vector<sim::CrashEvent>{{3, crash, recover}}));
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), PaperConfig(), kBatch);
  const auto stats = engine.Run(kIters);

  EXPECT_EQ(stats.iteration_count(), kIters);
  EXPECT_FALSE(stats.stalled);
  EXPECT_GT(stats.total_time, clean.total_time);  // degradation, not free
  EXPECT_EQ(stats.faults.crashes, 1u);
  EXPECT_EQ(stats.faults.recoveries, 1u);
  EXPECT_GE(stats.faults.readmissions, 1u);
  EXPECT_TRUE(engine.admitted(3));  // back in the fold at the end

  // Token accounting balances: every grant either completed or was
  // reclaimed, and the crash reclaimed the in-flight grant.
  const auto& ts = engine.ts_stats();
  EXPECT_EQ(ts.grants, ts.completions + ts.tokens_reclaimed);
  EXPECT_GE(ts.tokens_reclaimed, 1u);
  EXPECT_EQ(stats.faults.tokens_reclaimed, ts.tokens_reclaimed);

  // Crash-only fault model: nothing trains without a live grant, and no
  // accepted completion lacks a trained token.
  uint64_t trained = 0;
  for (int w = 0; w < 8; ++w) trained += engine.worker(w).tokens_trained();
  EXPECT_GE(trained, ts.completions);
  EXPECT_LE(trained, ts.grants);
}

TEST(FaultRecoveryTest, FailStopCrashStallsDpButNotFela) {
  const int kIters = 4;
  const double kBatch = 512.0;
  const model::Model vgg = model::zoo::Vgg19();

  double dp_clean = 0.0;
  {
    auto cluster = runtime::Cluster::MakeDefault(8);
    baselines::DpEngine dp(cluster.get(), vgg, kBatch);
    dp_clean = dp.Run(kIters).total_time;
  }
  const double fela_clean = CleanFelaStats(kIters, kBatch).total_time;
  // Early enough to land mid-run for both engines.
  const double crash = 0.4 * std::min(dp_clean, fela_clean);
  auto schedule = [crash] {
    return std::make_unique<sim::ScriptedCrashes>(
        std::vector<sim::CrashEvent>{{5, crash, sim::kNeverTime}});
  };

  auto dp_cluster = FaultyCluster(schedule());
  baselines::DpEngine dp(dp_cluster.get(), vgg, kBatch);
  const auto dp_stats = dp.Run(kIters);
  EXPECT_TRUE(dp_stats.stalled);  // barrier waits for worker 5 forever
  EXPECT_LT(dp_stats.iteration_count(), kIters);
  EXPECT_GE(dp_stats.faults.crashes, 1u);

  auto fela_cluster = FaultyCluster(schedule());
  FelaEngine fela(fela_cluster.get(), vgg, PaperConfig(), kBatch);
  const auto fela_stats = fela.Run(kIters);
  EXPECT_FALSE(fela_stats.stalled);
  EXPECT_EQ(fela_stats.iteration_count(), kIters);
  EXPECT_EQ(fela_stats.faults.crashes, 1u);
  EXPECT_EQ(fela_stats.faults.recoveries, 0u);
  EXPECT_FALSE(fela.admitted(5));  // scaled in around the dead worker
  const auto& ts = fela.ts_stats();
  EXPECT_EQ(ts.grants, ts.completions + ts.tokens_reclaimed);
}

TEST(FaultRecoveryTest, FailStopCrashAbortsPs) {
  const int kIters = 4;
  const double kBatch = 512.0;
  const model::Model vgg = model::zoo::Vgg19();
  double ps_clean = 0.0;
  {
    auto cluster = runtime::Cluster::MakeDefault(8);
    baselines::PsDpEngine ps(cluster.get(), vgg, kBatch);
    ps_clean = ps.Run(kIters).total_time;
  }
  auto cluster = FaultyCluster(std::make_unique<sim::ScriptedCrashes>(
      std::vector<sim::CrashEvent>{{5, 0.4 * ps_clean, sim::kNeverTime}}));
  baselines::PsDpEngine ps(cluster.get(), vgg, kBatch);
  const auto stats = ps.Run(kIters);
  EXPECT_TRUE(stats.stalled);
  EXPECT_LT(stats.iteration_count(), kIters);
}

TEST(FaultRecoveryTest, LossyControlPlaneRecoversViaLeasesAndRetries) {
  const int kIters = 4;
  FelaConfig cfg = PaperConfig();
  cfg.lease_timeout_sec = 2.0;  // aggressive timeouts so losses are
  cfg.retry_timeout_sec = 0.5;  // recovered within the short test run
  auto cluster = FaultyCluster(
      std::make_unique<sim::LossyControlPlane>(0.08, 0.05, 77));
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), cfg, 256);
  const auto stats = engine.Run(kIters);

  EXPECT_EQ(stats.iteration_count(), kIters);
  EXPECT_FALSE(stats.stalled);
  EXPECT_GT(stats.faults.control_dropped, 0u);
  const auto& ts = engine.ts_stats();
  EXPECT_EQ(ts.grants, ts.completions + ts.tokens_reclaimed);
  // Dropped messages surface as retries and/or expired leases; the run
  // must have exercised at least one recovery mechanism.
  EXPECT_GT(stats.faults.request_retries + ts.lease_expirations, 0u);
}

TEST(FaultRecoveryTest, SameFaultSeedReplaysByteIdentically) {
  const int kIters = 5;
  const double kBatch = 512.0;
  const double clean_total = CleanFelaStats(kIters, kBatch).total_time;

  // Scale the crash windows to the run so faults actually fire.
  auto schedule = [clean_total] {
    return std::make_unique<sim::RandomCrashes>(
        8, /*crash_prob=*/0.5, /*window_sec=*/clean_total / 6.0,
        /*down_sec=*/clean_total / 8.0, /*seed=*/20200420);
  };

  auto run = [&](std::string* trace_out) {
    auto cluster = FaultyCluster(schedule());
    cluster->trace().set_enabled(true);
    FelaEngine engine(cluster.get(), model::zoo::Vgg19(), PaperConfig(),
                      kBatch);
    const auto stats = engine.Run(kIters);
    *trace_out = cluster->trace().ToString();
    return stats;
  };

  std::string trace1, trace2;
  const auto s1 = run(&trace1);
  const auto s2 = run(&trace2);
  EXPECT_GE(s1.faults.crashes, 1u);  // the schedule was not a no-op
  EXPECT_DOUBLE_EQ(s1.total_time, s2.total_time);
  EXPECT_EQ(s1.control_messages, s2.control_messages);
  EXPECT_EQ(s1.faults.crashes, s2.faults.crashes);
  EXPECT_EQ(s1.faults.tokens_reclaimed, s2.faults.tokens_reclaimed);
  EXPECT_EQ(trace1, trace2);
  EXPECT_FALSE(trace1.empty());
}

TEST(FaultRecoveryTest, CleanRunUnchangedByFaultPlumbing) {
  // NoFaults must not alter the event sequence: a cluster built with an
  // explicit NoFaults equals the default cluster, trace-for-trace.
  auto run = [](std::unique_ptr<sim::FaultSchedule> faults,
                std::string* trace_out) {
    auto cluster = FaultyCluster(std::move(faults));
    cluster->trace().set_enabled(true);
    FelaEngine engine(cluster.get(), model::zoo::Vgg19(), PaperConfig(), 256);
    const auto stats = engine.Run(3);
    *trace_out = cluster->trace().ToString();
    return stats;
  };
  std::string t1, t2;
  const auto s1 = run(nullptr, &t1);
  const auto s2 = run(std::make_unique<sim::NoFaults>(), &t2);
  EXPECT_DOUBLE_EQ(s1.total_time, s2.total_time);
  EXPECT_EQ(t1, t2);
  EXPECT_FALSE(s1.faults.any());
  EXPECT_FALSE(s1.stalled);
}

}  // namespace
}  // namespace fela::core
