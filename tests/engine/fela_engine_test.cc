#include "core/fela_engine.h"

#include <gtest/gtest.h>

#include "model/zoo.h"
#include "runtime/cluster.h"

namespace fela::core {
namespace {

std::unique_ptr<runtime::Cluster> CleanCluster(int n = 8) {
  return runtime::Cluster::MakeDefault(n);
}

FelaConfig PaperConfig() {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  cfg.weights = {1, 2, 4};
  return cfg;
}

TEST(FelaEngineTest, RunsRequestedIterations) {
  auto cluster = CleanCluster();
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), PaperConfig(), 128);
  const auto stats = engine.Run(5);
  EXPECT_EQ(stats.iteration_count(), 5);
  EXPECT_GT(stats.total_time, 0.0);
  EXPECT_DOUBLE_EQ(stats.iterations.back().end, stats.total_time);
}

TEST(FelaEngineTest, IterationsAreContiguousAndOrdered) {
  auto cluster = CleanCluster();
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), PaperConfig(), 128);
  const auto stats = engine.Run(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_LT(stats.iterations[i].start, stats.iterations[i].end);
    if (i > 0) {
      EXPECT_DOUBLE_EQ(stats.iterations[i].start,
                       stats.iterations[i - 1].end);
    }
  }
}

TEST(FelaEngineTest, EveryWorkerTrainsSomething) {
  auto cluster = CleanCluster();
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), PaperConfig(), 256);
  engine.Run(3);
  for (int w = 0; w < 8; ++w) {
    EXPECT_GT(engine.worker(w).tokens_trained(), 0) << "worker " << w;
  }
}

TEST(FelaEngineTest, SamplesConservedPerIteration) {
  // The engine itself FELA_CHECKs conservation; verify the numbers too.
  auto cluster = CleanCluster();
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), PaperConfig(), 128);
  engine.Run(2);
  double samples = 0.0;
  for (int w = 0; w < 8; ++w) samples += engine.worker(w).samples_trained();
  // 3 levels x 128 samples x 2 iterations.
  EXPECT_NEAR(samples, 3.0 * 128 * 2, 1e-6);
}

TEST(FelaEngineTest, DeterministicAcrossRuns) {
  auto c1 = CleanCluster();
  FelaEngine e1(c1.get(), model::zoo::Vgg19(), PaperConfig(), 256);
  const auto s1 = e1.Run(4);
  auto c2 = CleanCluster();
  FelaEngine e2(c2.get(), model::zoo::Vgg19(), PaperConfig(), 256);
  const auto s2 = e2.Run(4);
  EXPECT_DOUBLE_EQ(s1.total_time, s2.total_time);
  EXPECT_DOUBLE_EQ(s1.total_data_bytes, s2.total_data_bytes);
  EXPECT_EQ(s1.control_messages, s2.control_messages);
}

TEST(FelaEngineTest, CtdShrinksSyncTraffic) {
  // §III-F: synchronizing the FC sub-model within S only.
  FelaConfig full = PaperConfig();
  full.ctd_subset_size = 8;
  FelaConfig subset = PaperConfig();
  subset.ctd_subset_size = 1;
  auto c1 = CleanCluster();
  FelaEngine e1(c1.get(), model::zoo::Vgg19(), full, 128);
  const double bytes_full = e1.Run(3).total_data_bytes;
  auto c2 = CleanCluster();
  FelaEngine e2(c2.get(), model::zoo::Vgg19(), subset, 128);
  const double bytes_subset = e2.Run(3).total_data_bytes;
  // FC params are ~86% of VGG19; removing their sync cuts traffic hard.
  EXPECT_LT(bytes_subset, bytes_full * 0.4);
}

TEST(FelaEngineTest, PlanExposedMatchesConfig) {
  auto cluster = CleanCluster();
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), PaperConfig(), 128);
  EXPECT_EQ(engine.plan().num_levels(), 3);
  EXPECT_EQ(engine.sub_models().size(), 3u);
  EXPECT_EQ(engine.config().weights, PaperConfig().weights);
}

TEST(FelaEngineTest, UserDefinedPartitionWorks) {
  auto cluster = CleanCluster();
  const model::Model m = model::zoo::Vgg19();
  auto sub = model::SubModelsForRanges(
      m, model::ProfileRepository::Default(), {{0, 15}, {16, 18}});
  FelaConfig cfg = FelaConfig::Defaults(2, 8);
  cfg.weights = {1, 4};
  FelaEngine engine(cluster.get(), m, std::move(sub), cfg, 128);
  const auto stats = engine.Run(2);
  EXPECT_EQ(stats.iteration_count(), 2);
}

TEST(FelaEngineTest, SingleSubModelDegeneratesToDataParallelTokens) {
  auto cluster = CleanCluster();
  const model::Model m = model::zoo::Vgg19();
  auto sub = model::SubModelsForRanges(m, model::ProfileRepository::Default(),
                                       {{0, 18}});
  FelaConfig cfg = FelaConfig::Defaults(1, 8);
  FelaEngine engine(cluster.get(), m, std::move(sub), cfg, 128);
  const auto stats = engine.Run(2);
  EXPECT_EQ(stats.iteration_count(), 2);
  double samples = 0.0;
  for (int w = 0; w < 8; ++w) samples += engine.worker(w).samples_trained();
  EXPECT_NEAR(samples, 128.0 * 2, 1e-6);
}

TEST(FelaEngineTest, GoogLeNetRunsToo) {
  auto cluster = CleanCluster();
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  FelaEngine engine(cluster.get(), model::zoo::GoogLeNet(), cfg, 256);
  const auto stats = engine.Run(3);
  EXPECT_EQ(stats.iteration_count(), 3);
}

TEST(FelaEngineTest, FourWorkerClusterWorks) {
  auto cluster = CleanCluster(4);
  FelaConfig cfg = FelaConfig::Defaults(3, 4);
  cfg.weights = {1, 2, 4};
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), cfg, 128);
  const auto stats = engine.Run(2);
  EXPECT_EQ(stats.iteration_count(), 2);
}

TEST(FelaEngineTest, StragglerSlowsIterationsDown) {
  // Batch 512 with fine-grained tokens: each worker owns a 4-token STB,
  // so helpers have a backlog to steal from the straggler.
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  auto clean = CleanCluster();
  FelaEngine e1(clean.get(), model::zoo::Vgg19(), cfg, 512);
  const double t_clean = e1.Run(4).total_time;
  runtime::Cluster slow(8, sim::Calibration::Default(),
                        std::make_unique<sim::RoundRobinStragglers>(8, 2.0));
  FelaEngine e2(&slow, model::zoo::Vgg19(), cfg, 512);
  const double t_slow = e2.Run(4).total_time;
  EXPECT_GT(t_slow, t_clean);
  // Reactive mitigation: the slowdown is well below the full 2s per
  // iteration a BSP barrier would pay.
  EXPECT_LT(t_slow, t_clean + 4 * 2.0 * 0.75);
}

TEST(FelaEngineTest, HelpersStealUnderStragglers) {
  runtime::Cluster slow(8, sim::Calibration::Default(),
                        std::make_unique<sim::RoundRobinStragglers>(8, 4.0));
  FelaConfig cfg = FelaConfig::Defaults(3, 8);  // fine-grained tokens
  FelaEngine engine(&slow, model::zoo::Vgg19(), cfg, 512);
  engine.Run(4);
  EXPECT_GT(engine.ts_stats().steals, 0u);
}

TEST(FelaEngineTest, AblationAdsOffStillCorrect) {
  auto cluster = CleanCluster();
  FelaConfig cfg = PaperConfig();
  cfg.ads_enabled = false;
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), cfg, 128);
  const auto stats = engine.Run(3);
  EXPECT_EQ(stats.iteration_count(), 3);
}

TEST(FelaEngineTest, AblationHfOffStillCorrect) {
  auto cluster = CleanCluster();
  FelaConfig cfg = PaperConfig();
  cfg.hf_enabled = false;
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), cfg, 128);
  const auto stats = engine.Run(3);
  EXPECT_EQ(stats.iteration_count(), 3);
  EXPECT_GT(engine.ts_stats().conflicts, 0u);  // global bucket contention
}

TEST(FelaEngineTest, HfOffIsSlowerThanHfOn) {
  // The Fig. 7 ablation direction: removing HF hurts.
  auto c1 = CleanCluster();
  FelaEngine on(c1.get(), model::zoo::Vgg19(), PaperConfig(), 256);
  const double t_on = on.Run(4).total_time;
  auto c2 = CleanCluster();
  FelaConfig cfg = PaperConfig();
  cfg.hf_enabled = false;
  FelaEngine off(c2.get(), model::zoo::Vgg19(), cfg, 256);
  const double t_off = off.Run(4).total_time;
  EXPECT_GT(t_off, t_on);
}

TEST(FelaEngineDeathTest, SecondRunAborts) {
  auto cluster = CleanCluster();
  FelaEngine engine(cluster.get(), model::zoo::Vgg19(), PaperConfig(), 128);
  engine.Run(1);
  EXPECT_DEATH(engine.Run(1), "once");
}

}  // namespace
}  // namespace fela::core
