// fela-lint fixture: a NON-emitting loop over an unordered member in a
// non-sim path. unordered-iter stays quiet (nothing is emitted inside
// the loop), but the hash-order-dependent result makes Sum() an
// order-leak taint source for sim-scoped callers.
#include "order_leak_helper.h"

namespace fela::fixture {

int OrderLeakHelper::Sum() const {
  int total = 0;
  for (int id : ids_) {
    total += id;
  }
  return total;
}

}  // namespace fela::fixture
