#include "sim/chrome_trace.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/string_util.h"

namespace fela::obs {

namespace {

constexpr double kSecToMicro = 1e6;

std::string TrackName(int track, int num_workers) {
  if (track >= num_workers) return "token-server";
  return common::StrFormat("worker %d", track);
}

common::Json ThreadNameMeta(int tid, const std::string& name) {
  common::Json e = common::Json::Object();
  e.Set("name", "thread_name");
  e.Set("ph", "M");
  e.Set("pid", 0);
  e.Set("tid", tid);
  common::Json args = common::Json::Object();
  args.Set("name", name);
  e.Set("args", std::move(args));
  return e;
}

}  // namespace

common::Json ChromeTraceJson(const SpanSink& spans,
                             const sim::TraceRecorder* trace,
                             int num_workers) {
  common::Json events = common::Json::Array();

  // One metadata row per track that actually appears, so empty clusters
  // don't fabricate threads but every used tid is named.
  std::set<int> tracks;
  for (int w = 0; w < num_workers; ++w) tracks.insert(w);
  const std::vector<Span> span_list = spans.spans();
  for (const Span& s : span_list) tracks.insert(s.track);
  for (const int t : tracks) {
    events.Append(ThreadNameMeta(t, TrackName(t, num_workers)));
  }

  for (const Span& s : span_list) {
    common::Json e = common::Json::Object();
    e.Set("name", PhaseName(s.phase));
    e.Set("cat", "span");
    e.Set("ph", "X");
    e.Set("ts", s.begin * kSecToMicro);
    e.Set("dur", std::max(0.0, s.duration()) * kSecToMicro);
    e.Set("pid", 0);
    e.Set("tid", s.track);
    common::Json args = common::Json::Object();
    if (s.iteration >= 0) args.Set("iteration", s.iteration);
    if (!s.detail.empty()) args.Set("detail", s.detail);
    e.Set("args", std::move(args));
    events.Append(std::move(e));
  }

  if (trace != nullptr) {
    for (const sim::TraceEvent& t : trace->events()) {
      common::Json e = common::Json::Object();
      e.Set("name", sim::TraceKindName(t.kind));
      e.Set("cat", "event");
      e.Set("ph", "i");
      e.Set("ts", t.time * kSecToMicro);
      e.Set("pid", 0);
      e.Set("tid", t.node);
      e.Set("s", "t");  // thread-scoped instant marker
      common::Json args = common::Json::Object();
      if (!t.detail.empty()) args.Set("detail", t.detail);
      e.Set("args", std::move(args));
      events.Append(std::move(e));
    }
  }

  common::Json doc = common::Json::Object();
  doc.Set("displayTimeUnit", "ms");
  doc.Set("traceEvents", std::move(events));
  common::Json meta = common::Json::Object();
  meta.Set("num_workers", num_workers);
  meta.Set("spans_dropped", static_cast<double>(spans.dropped()));
  if (trace != nullptr) {
    meta.Set("trace_events_dropped", static_cast<double>(trace->dropped()));
  }
  doc.Set("otherData", std::move(meta));
  return doc;
}

std::string ChromeTraceString(const SpanSink& spans,
                              const sim::TraceRecorder* trace,
                              int num_workers) {
  return ChromeTraceJson(spans, trace, num_workers).Dump(1);
}

}  // namespace fela::obs
