#include "core/fela_engine.h"

#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "sim/collectives.h"

namespace fela::core {

FelaEngine::FelaEngine(runtime::Cluster* cluster, const model::Model& model,
                       const FelaConfig& config, double total_batch)
    : FelaEngine(cluster, model,
                 model::BinPartitioner().Partition(
                     model, model::ProfileRepository::Default()),
                 config, total_batch) {}

FelaEngine::FelaEngine(runtime::Cluster* cluster, const model::Model& model,
                       std::vector<model::SubModel> sub_models,
                       const FelaConfig& config, double total_batch)
    : cluster_(cluster),
      model_(model),
      sub_models_(std::move(sub_models)),
      config_(config),
      cost_(cluster->calibration(), &model::ProfileRepository::Default()),
      plan_(BuildPlan(model_, sub_models_, config_, total_batch,
                      cluster->num_workers(),
                      cluster->calibration().bytes_per_scalar)) {
  TokenServer::Callbacks ts_cbs;
  ts_cbs.deliver_grant = [this](sim::NodeId w, const Grant& g) {
    DeliverGrant(w, g);
  };
  ts_cbs.on_level_complete = [this](int level) { OnLevelComplete(level); };
  ts_cbs.on_all_levels_complete = [this] { OnAllLevelsComplete(); };
  ts_ = std::make_unique<TokenServer>(&cluster_->simulator(),
                                      &cluster_->calibration(), &plan_,
                                      &config_, std::move(ts_cbs));

  FelaWorker::Callbacks w_cbs;
  w_cbs.send_request = [this](sim::NodeId w) {
    cluster_->fabric().SendControl(w, kTsNode,
                                   [this, w] { ts_->HandleRequest(w); });
  };
  w_cbs.send_report = [this](sim::NodeId w, const Token& token) {
    cluster_->fabric().SendControl(
        w, kTsNode, [this, w, token] { ts_->HandleReport(w, token); });
  };
  for (int i = 0; i < cluster_->num_workers(); ++i) {
    workers_.push_back(std::make_unique<FelaWorker>(
        i, &cluster_->simulator(), &cluster_->fabric(), &cluster_->gpu(i),
        &model_, &sub_models_, &cost_, &cluster_->trace(), w_cbs));
  }
}

void FelaEngine::DeliverGrant(sim::NodeId worker, const Grant& grant) {
  // Notify the holders of the granted token's dependencies so they are
  // prepared for the incoming fetches (§III-A); fire-and-forget controls.
  for (const auto& [holder, bytes] : grant.remote_fetches) {
    (void)bytes;
    cluster_->fabric().SendControl(kTsNode, holder, [] {});
  }
  // The grant response itself, delayed by any lock/conflict penalty the
  // distributor charged.
  cluster_->simulator().Schedule(grant.extra_delay, [this, worker, grant] {
    cluster_->fabric().SendControl(kTsNode, worker, [this, worker, grant] {
      workers_[static_cast<size_t>(worker)]->OnGrant(grant);
    });
  });
}

void FelaEngine::StartIteration(int iteration) {
  current_iteration_ = iteration;
  iteration_start_ = cluster_->simulator().now();
  syncs_done_ = 0;
  tokens_done_ = false;
  cluster_->trace().Record(iteration_start_, kTsNode,
                           sim::TraceKind::kIterationStart,
                           common::StrFormat("it=%d", iteration));
  ts_->BeginIteration(iteration);
  for (int w = 0; w < cluster_->num_workers(); ++w) {
    const double delay = cluster_->stragglers().DelayFor(iteration, w);
    const double slowdown = cluster_->stragglers().SlowdownFor(iteration, w);
    workers_[static_cast<size_t>(w)]->BeginIteration(iteration, delay,
                                                     slowdown);
  }
}

void FelaEngine::OnLevelComplete(int level) {
  const LevelPlan& lp = plan_.level(level);
  std::vector<sim::NodeId> participants;
  const bool ctd_scoped = lp.communication_intensive &&
                          config_.ctd_subset_size < plan_.num_workers;
  const int count =
      ctd_scoped ? config_.ctd_subset_size : cluster_->num_workers();
  participants.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) participants.push_back(i);

  if (cluster_->trace().enabled()) {
    cluster_->trace().Record(
        cluster_->simulator().now(), kTsNode, sim::TraceKind::kSyncStart,
        common::StrFormat("SM-%d %.1fMB among %d", level + 1,
                          lp.sync_bytes / 1e6, count));
  }
  sim::RingAllReduce(&cluster_->simulator(), &cluster_->fabric(),
                     std::move(participants), lp.sync_bytes,
                     [this, level] { OnSyncDone(level); });
}

void FelaEngine::OnSyncDone(int level) {
  ++syncs_done_;
  if (cluster_->trace().enabled()) {
    cluster_->trace().Record(cluster_->simulator().now(), kTsNode,
                             sim::TraceKind::kSyncEnd,
                             common::StrFormat("SM-%d", level + 1));
  }
  MaybeFinishIteration();
}

void FelaEngine::OnAllLevelsComplete() {
  tokens_done_ = true;
  MaybeFinishIteration();
}

void FelaEngine::MaybeFinishIteration() {
  if (!tokens_done_ || syncs_done_ != plan_.num_levels()) return;
  const sim::SimTime now = cluster_->simulator().now();
  stats_.iterations.push_back(runtime::IterationStats{iteration_start_, now});
  cluster_->trace().Record(now, kTsNode, sim::TraceKind::kIterationEnd,
                           common::StrFormat("it=%d", current_iteration_));
  if (current_iteration_ + 1 < target_iterations_) {
    StartIteration(current_iteration_ + 1);
  } else {
    run_complete_ = true;
  }
}

runtime::RunStats FelaEngine::Run(int iterations) {
  FELA_CHECK_GT(iterations, 0);
  FELA_CHECK(stats_.iterations.empty()) << "Run() may be called once";
  target_iterations_ = iterations;
  cluster_->fabric().ResetStats();

  StartIteration(0);
  cluster_->simulator().Run();
  FELA_CHECK(run_complete_) << "simulation drained before finishing";

  // Cross-check token conservation: every worker-trained sample count
  // sums to total_batch per level per iteration.
  double samples = 0.0;
  for (const auto& w : workers_) samples += w->samples_trained();
  const double expected = plan_.total_batch *
                          static_cast<double>(plan_.num_levels()) *
                          static_cast<double>(iterations);
  FELA_CHECK(std::abs(samples - expected) < 1e-6 * expected)
      << samples << " vs " << expected;

  stats_.total_time = cluster_->simulator().now();
  stats_.total_data_bytes = cluster_->fabric().total_data_bytes();
  stats_.total_gpu_busy = cluster_->TotalGpuBusy();
  stats_.control_messages = cluster_->fabric().control_message_count();
  return stats_;
}

}  // namespace fela::core
