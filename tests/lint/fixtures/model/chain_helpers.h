// fela-lint fixture header: declares helpers whose *implementations*
// (chain_helpers.cc) reach a wall clock and unseeded RNG. Clean on its
// own — the transitive rules fire in the sim-scoped caller
// (core/transitive_violation.cc), not here.
#ifndef FELA_LINT_FIXTURE_CHAIN_HELPERS_H_
#define FELA_LINT_FIXTURE_CHAIN_HELPERS_H_

namespace fela::fixture {

// ChainA -> ChainB -> ChainC -> steady_clock (3 hops from the caller).
double ChainA();
double ChainB();
double ChainC();

// JitterSeed -> RawJitter -> rand().
int JitterSeed();

}  // namespace fela::fixture

#endif  // FELA_LINT_FIXTURE_CHAIN_HELPERS_H_
