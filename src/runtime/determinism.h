#ifndef FELA_RUNTIME_DETERMINISM_H_
#define FELA_RUNTIME_DETERMINISM_H_

#include <cstdint>
#include <string>

#include "runtime/experiment.h"

namespace fela::runtime {

/// Canonical textual form of everything a run produced: engine name,
/// RunStats scalars at full precision (%.17g), fault counters, every
/// iteration boundary, the metrics CSV, the attribution JSON, and the
/// serialized Chrome trace. Two runs are *deterministic* iff their
/// transcripts are byte-identical — this is the determinism-hash
/// definition DESIGN.md §8 references. Requires an observed result
/// (`spec.observe = true`) so spans/trace/metrics are populated.
std::string DeterminismTranscript(const ExperimentResult& result);

/// Compact binary form of the same evidence ("FELADET1"): the scalars
/// and fault counters byte-serialized little-endian, the metrics CSV,
/// and the FELATRB1 binary trace — no text formatting on the hot path.
/// VerifyDeterminism compares runs on this form first (it is strictly
/// cheaper to produce and covers the same observable state); the text
/// transcript remains the canonical human-readable artifact and the
/// source of the reported FNV-1a fingerprint.
std::string BinaryTranscript(const ExperimentResult& result);

/// FNV-1a 64-bit hash (the transcript fingerprint reported by benches).
uint64_t Fnv1a64(const std::string& data);

/// Outcome of a run-twice determinism check.
struct DeterminismReport {
  bool deterministic = false;
  uint64_t hash_first = 0;
  uint64_t hash_second = 0;
  /// On mismatch: 1-based line of the first transcript divergence plus
  /// both differing lines ("<end of transcript>" when one ran longer).
  int divergence_line = 0;
  std::string line_first;
  std::string line_second;

  /// One-line human summary ("deterministic hash=..." or "DIVERGED ...").
  std::string ToString() const;
};

/// Compares two transcripts without running anything: fills the hashes,
/// `deterministic`, and — on mismatch — the 1-based line number and both
/// sides of the first divergence. VerifyDeterminism reports through
/// this, and the fuzzer's metamorphic twins use it directly to pinpoint
/// where two supposedly identical runs forked.
DeterminismReport DiffTranscripts(const std::string& first,
                                  const std::string& second);

/// Runs the experiment twice with identical inputs (observe forced on)
/// and compares the two transcripts. Every run of a correctly
/// deterministic engine must produce `deterministic == true`; the first
/// divergent transcript line pinpoints the earliest observable
/// difference when it does not. With jobs > 1 the two replicas execute
/// concurrently on a SweepRunner — a stricter probe, since it also
/// catches shared mutable state between replicas, and the path the
/// parallel bench sweeps actually take.
DeterminismReport VerifyDeterminism(
    const ExperimentSpec& spec, const EngineFactory& engine_factory,
    const StragglerFactory& straggler_factory,
    const FaultFactory& fault_factory = nullptr, int jobs = 1);

}  // namespace fela::runtime

#endif  // FELA_RUNTIME_DETERMINISM_H_
