file(REMOVE_RECURSE
  "CMakeFiles/fela_sim.dir/calibration.cc.o"
  "CMakeFiles/fela_sim.dir/calibration.cc.o.d"
  "CMakeFiles/fela_sim.dir/collectives.cc.o"
  "CMakeFiles/fela_sim.dir/collectives.cc.o.d"
  "CMakeFiles/fela_sim.dir/event_queue.cc.o"
  "CMakeFiles/fela_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/fela_sim.dir/fabric.cc.o"
  "CMakeFiles/fela_sim.dir/fabric.cc.o.d"
  "CMakeFiles/fela_sim.dir/gpu.cc.o"
  "CMakeFiles/fela_sim.dir/gpu.cc.o.d"
  "CMakeFiles/fela_sim.dir/simulator.cc.o"
  "CMakeFiles/fela_sim.dir/simulator.cc.o.d"
  "CMakeFiles/fela_sim.dir/straggler.cc.o"
  "CMakeFiles/fela_sim.dir/straggler.cc.o.d"
  "CMakeFiles/fela_sim.dir/trace.cc.o"
  "CMakeFiles/fela_sim.dir/trace.cc.o.d"
  "libfela_sim.a"
  "libfela_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fela_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
