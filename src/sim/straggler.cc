#include "sim/straggler.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace fela::sim {

namespace {
/// Stateless SplitMix64-style mix so DelayFor is a pure function.
uint64_t Mix(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t x = a * 0x9e3779b97f4a7c15ULL + b * 0xbf58476d1ce4e5b9ULL +
               c * 0x94d049bb133111ebULL + 0x2545f4914f6cdd1dULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double MixToUnitDouble(uint64_t x) {
  return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
}
}  // namespace

RoundRobinStragglers::RoundRobinStragglers(int num_workers, double delay_sec)
    : num_workers_(num_workers), delay_sec_(delay_sec) {
  FELA_CHECK_GT(num_workers, 0);
  FELA_CHECK_GE(delay_sec, 0.0);
}

double RoundRobinStragglers::DelayFor(int iteration, int worker) const {
  return (iteration % num_workers_ == worker) ? delay_sec_ : 0.0;
}

std::string RoundRobinStragglers::ToString() const {
  return common::StrFormat("round-robin(d=%.1fs)", delay_sec_);
}

ProbabilityStragglers::ProbabilityStragglers(double probability,
                                             double delay_sec, uint64_t seed)
    : probability_(probability), delay_sec_(delay_sec), seed_(seed) {
  FELA_CHECK(probability >= 0.0 && probability <= 1.0) << probability;
  FELA_CHECK_GE(delay_sec, 0.0);
}

double ProbabilityStragglers::DelayFor(int iteration, int worker) const {
  const double u = MixToUnitDouble(
      Mix(seed_, static_cast<uint64_t>(iteration), static_cast<uint64_t>(worker)));
  return u < probability_ ? delay_sec_ : 0.0;
}

std::string ProbabilityStragglers::ToString() const {
  return common::StrFormat("probability(p=%.2f, d=%.1fs)", probability_,
                           delay_sec_);
}

HeterogeneousWorker::HeterogeneousWorker(int victim, double slowdown)
    : victim_(victim), slowdown_(slowdown) {
  FELA_CHECK_GE(victim, 0);
  FELA_CHECK_GE(slowdown, 1.0);
}

double HeterogeneousWorker::SlowdownFor(int, int worker) const {
  return worker == victim_ ? slowdown_ : 1.0;
}

std::string HeterogeneousWorker::ToString() const {
  return common::StrFormat("heterogeneous(w%d, %.2fx slower)", victim_,
                           slowdown_);
}

PersistentStraggler::PersistentStraggler(int victim, double delay_sec)
    : victim_(victim), delay_sec_(delay_sec) {
  FELA_CHECK_GE(victim, 0);
  FELA_CHECK_GE(delay_sec, 0.0);
}

double PersistentStraggler::DelayFor(int, int worker) const {
  return worker == victim_ ? delay_sec_ : 0.0;
}

std::string PersistentStraggler::ToString() const {
  return common::StrFormat("persistent(w%d, d=%.1fs)", victim_, delay_sec_);
}

TransientStragglers::TransientStragglers(int num_workers, double delay_sec,
                                         int burst_iterations, uint64_t seed)
    : num_workers_(num_workers),
      delay_sec_(delay_sec),
      burst_iterations_(burst_iterations),
      seed_(seed) {
  FELA_CHECK_GT(num_workers, 0);
  FELA_CHECK_GT(burst_iterations, 0);
}

double TransientStragglers::DelayFor(int iteration, int worker) const {
  // Every burst window picks one victim pseudo-randomly.
  const int window = iteration / burst_iterations_;
  const uint64_t victim =
      Mix(seed_, static_cast<uint64_t>(window), 0x5bf03635ULL) %
      static_cast<uint64_t>(num_workers_);
  return static_cast<int>(victim) == worker ? delay_sec_ : 0.0;
}

std::string TransientStragglers::ToString() const {
  return common::StrFormat("transient(d=%.1fs, burst=%d)", delay_sec_,
                           burst_iterations_);
}

}  // namespace fela::sim
