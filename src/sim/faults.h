#ifndef FELA_SIM_FAULTS_H_
#define FELA_SIM_FAULTS_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace fela::sim {

// kNeverTime and its IsNever() test live in sim/types.h alongside SimTime.

/// Fault injection schedule, the failure-side sibling of
/// StragglerSchedule: *worker crash / recover* events at simulated times,
/// *control-message drop / duplicate* events on the token protocol's
/// control plane, *network partitions* (bipartition intervals across
/// which control messages drop), and *gray failures* (per-worker control
/// latency inflation). Every decision is a pure function of
/// (time, worker) or of a message sequence number plus a seed, so two
/// runs with the same schedule replay bit-identically (the property the
/// determinism regression tests pin down).
///
/// Model boundaries (see DESIGN.md "Fault model & recovery"):
///  * A down worker neither computes usefully nor exchanges control
///    messages; work in flight on it at crash time is lost.
///  * Bulk data transfers still complete even when an endpoint is down
///    (parameter chunks / sample shards are assumed recoverable from
///    node-local persistent storage, as with a replicated PS).
///  * The Token Server starts on node 0 but is no longer pinned there:
///    Fela checkpoints TS state at simulated intervals and, when the
///    hosting node crashes or lands on a minority partition side, fails
///    over to a standby that restores from the last checkpoint (see
///    DESIGN.md §6). Schedules are therefore free to crash or partition
///    worker 0 like any other node; DP stalls and PS aborts when their
///    coordinator (rank 0) becomes unreachable, which is exactly the
///    contrast bench_control_plane_chaos measures.
class FaultSchedule {
 public:
  virtual ~FaultSchedule() = default;

  /// False only for the no-op schedule; engines use this to keep the
  /// clean path entirely free of fault bookkeeping.
  virtual bool Active() const { return true; }

  /// True if `worker` is crashed (down) at simulated time `time`.
  /// Down intervals are half-open: [crash_time, recover_time).
  virtual bool IsDownAt(SimTime time, int worker) const = 0;

  /// Earliest candidate time strictly after `t` at which some worker's
  /// up/down state may change, or kNeverTime. Spurious candidates (times
  /// where nothing actually changes) are allowed; missed real transitions
  /// are not.
  virtual SimTime NextTransitionAfter(SimTime t) const = 0;

  /// True if the control message with fabric sequence number `seq`
  /// vanishes in flight.
  virtual bool DropControl(uint64_t seq) const {
    (void)seq;
    return false;
  }

  /// True if the control message with sequence number `seq` is delivered
  /// twice (a retransmitted duplicate).
  virtual bool DuplicateControl(uint64_t seq) const {
    (void)seq;
    return false;
  }

  /// True if nodes `a` and `b` are on opposite sides of an active
  /// network partition at `time` (control messages between them drop).
  /// Partition boundaries must be reported via NextTransitionAfter.
  virtual bool Partitioned(SimTime time, int a, int b) const {
    (void)time;
    (void)a;
    (void)b;
    return false;
  }

  /// Control-plane latency multiplier for `worker` at `time` (>= 1.0;
  /// 1.0 = healthy). Gray failures inflate this without ever reporting
  /// the worker down — the slow-but-alive case crash detection misses,
  /// so gray intervals deliberately do NOT appear in
  /// NextTransitionAfter.
  virtual double ControlDelayFactor(SimTime time, int worker) const {
    (void)time;
    (void)worker;
    return 1.0;
  }

  /// Checks the schedule against a concrete cluster size: every worker
  /// id it references must lie in [0, num_workers). Cluster wiring
  /// FELA_CHECK_OKs this, so a schedule naming a nonexistent worker is a
  /// clear error instead of an event that silently never fires.
  virtual common::Status Validate(int num_workers) const {
    (void)num_workers;
    return common::Status::Ok();
  }

  /// Human-readable description for reports.
  virtual std::string ToString() const = 0;

  // -- Derived helpers (implemented with the virtuals) --------------------

  /// True if `worker` is down at any point in [t0, t1].
  bool AnyDownDuring(SimTime t0, SimTime t1, int worker) const;

  /// Earliest time >= t at which `worker` is up, or kNeverTime.
  SimTime NextUpAfter(SimTime t, int worker) const;

  /// True if `worker` is down or partitioned from `anchor` at any point
  /// in [t0, t1] — "unreachable" from the coordinator's point of view.
  bool AnyUnreachableDuring(SimTime t0, SimTime t1, int worker,
                            int anchor) const;

  /// Earliest time >= t at which `worker` is up and on `anchor`'s side
  /// of any partition, or kNeverTime.
  SimTime NextReachableAfter(SimTime t, int worker, int anchor) const;
};

/// Baseline: nothing ever fails.
class NoFaults final : public FaultSchedule {
 public:
  bool Active() const override { return false; }
  bool IsDownAt(SimTime, int) const override { return false; }
  SimTime NextTransitionAfter(SimTime) const override { return kNeverTime; }
  std::string ToString() const override { return "none"; }
};

/// One scripted crash: `worker` dies at `crash_time` and comes back at
/// `recover_time` (kNeverTime = never recovers).
struct CrashEvent {
  int worker = 0;
  SimTime crash_time = 0.0;
  SimTime recover_time = kNeverTime;
};

/// Deterministic scripted crash/recover windows (the unit-test workhorse
/// and the "crash worker w at iteration k" building block).
class ScriptedCrashes final : public FaultSchedule {
 public:
  explicit ScriptedCrashes(std::vector<CrashEvent> events);
  bool IsDownAt(SimTime time, int worker) const override;
  SimTime NextTransitionAfter(SimTime t) const override;
  common::Status Validate(int num_workers) const override;
  std::string ToString() const override;

  const std::vector<CrashEvent>& events() const { return events_; }

 private:
  std::vector<CrashEvent> events_;
};

/// Probabilistic crashes: simulated time is divided into fixed windows of
/// `window_sec`; at the start of each window every worker in
/// [first_worker, num_workers) independently crashes with probability
/// `crash_prob`, staying down for `down_sec` (kNeverTime = fail-stop).
/// Deterministic in (seed, window, worker). `first_worker` defaults to 1
/// (node 0 — the initial Token Server host — spared); pass 0 to expose
/// every node, including the control plane, to the crash process.
class RandomCrashes final : public FaultSchedule {
 public:
  RandomCrashes(int num_workers, double crash_prob, SimTime window_sec,
                SimTime down_sec, uint64_t seed, int first_worker = 1);
  bool IsDownAt(SimTime time, int worker) const override;
  SimTime NextTransitionAfter(SimTime t) const override;
  std::string ToString() const override;

 private:
  bool CrashesInWindow(int64_t window, int worker) const;

  int num_workers_;
  double crash_prob_;
  SimTime window_sec_;
  SimTime down_sec_;
  uint64_t seed_;
  int first_worker_;
};

/// Lossy control plane: each control message is dropped with probability
/// `drop_prob` and duplicated with probability `dup_prob`, independently,
/// keyed on the fabric's message sequence number. No crashes.
class LossyControlPlane final : public FaultSchedule {
 public:
  LossyControlPlane(double drop_prob, double dup_prob, uint64_t seed);
  bool IsDownAt(SimTime, int) const override { return false; }
  SimTime NextTransitionAfter(SimTime) const override { return kNeverTime; }
  bool DropControl(uint64_t seq) const override;
  bool DuplicateControl(uint64_t seq) const override;
  std::string ToString() const override;

 private:
  double drop_prob_;
  double dup_prob_;
  uint64_t seed_;
};

/// One scripted bipartition interval: during [start, end) the cluster
/// splits into `side_a` and its complement; control messages whose
/// endpoints straddle the cut drop. A side that is empty (or covers the
/// whole cluster) never separates anything and is inert.
struct PartitionEvent {
  SimTime start = 0.0;
  SimTime end = kNeverTime;
  std::vector<int> side_a;  // sorted at construction; complement is side B
};

/// Deterministic scripted network partitions. Workers are never "down" —
/// both sides keep computing — but Fabric drops control messages across
/// the cut, and the FaultMonitor's reachability tracking (anchored on
/// the Token Server host) parks whichever side lost the coordinator.
class NetworkPartition final : public FaultSchedule {
 public:
  explicit NetworkPartition(std::vector<PartitionEvent> events);
  bool IsDownAt(SimTime, int) const override { return false; }
  SimTime NextTransitionAfter(SimTime t) const override;
  bool Partitioned(SimTime time, int a, int b) const override;
  common::Status Validate(int num_workers) const override;
  std::string ToString() const override;

  const std::vector<PartitionEvent>& events() const { return events_; }

 private:
  std::vector<PartitionEvent> events_;
};

/// One gray-failure interval: `worker`'s control-plane latency is
/// multiplied by `delay_factor` (>= 1) during [start, end).
struct GrayEvent {
  int worker = 0;
  SimTime start = 0.0;
  SimTime end = kNeverTime;
  double delay_factor = 2.0;
};

/// Deterministic gray failures: slow-but-not-dead workers. The affected
/// worker is never reported down and never appears in
/// NextTransitionAfter — by design nothing "detects" it; its control
/// messages just take longer, and backoff / lease machinery must absorb
/// the slowness.
class GrayFailures final : public FaultSchedule {
 public:
  explicit GrayFailures(std::vector<GrayEvent> events);
  bool IsDownAt(SimTime, int) const override { return false; }
  SimTime NextTransitionAfter(SimTime) const override { return kNeverTime; }
  double ControlDelayFactor(SimTime time, int worker) const override;
  common::Status Validate(int num_workers) const override;
  std::string ToString() const override;

 private:
  std::vector<GrayEvent> events_;
};

/// OR-composition of several schedules (e.g. scripted crashes plus a
/// lossy control plane plus a partition window). Delay factors compose
/// by max, validation by first error.
class CompositeFaults final : public FaultSchedule {
 public:
  explicit CompositeFaults(std::vector<std::unique_ptr<FaultSchedule>> parts);
  bool IsDownAt(SimTime time, int worker) const override;
  SimTime NextTransitionAfter(SimTime t) const override;
  bool DropControl(uint64_t seq) const override;
  bool DuplicateControl(uint64_t seq) const override;
  bool Partitioned(SimTime time, int a, int b) const override;
  double ControlDelayFactor(SimTime time, int worker) const override;
  common::Status Validate(int num_workers) const override;
  std::string ToString() const override;

 private:
  std::vector<std::unique_ptr<FaultSchedule>> parts_;
};

/// Replays a FaultSchedule onto a running simulation: walks the
/// schedule's transition times and invokes on_crash / on_recover exactly
/// when a worker's state flips, plus on_cut / on_heal when a worker's
/// reachability to the anchor node (the current Token Server host,
/// supplied via set_anchor) changes across a partition boundary. Engines
/// that react to crashes (Fela's elastic scale-in/out) drive their
/// handlers from this. Stop() must be called when the run completes so
/// pending wake-ups do not keep the event queue alive.
class FaultMonitor {
 public:
  struct Callbacks {
    std::function<void(int worker)> on_crash;
    std::function<void(int worker)> on_recover;
    std::function<void(int worker)> on_cut;   // partitioned from anchor
    std::function<void(int worker)> on_heal;  // reconnected to anchor
  };

  FaultMonitor(Simulator* sim, const FaultSchedule* faults, int num_workers,
               Callbacks cbs);

  FaultMonitor(const FaultMonitor&) = delete;
  FaultMonitor& operator=(const FaultMonitor&) = delete;

  /// Supplies the anchor node for reachability tracking (the current TS
  /// host — a function because failover moves it). Without an anchor,
  /// cut tracking is disabled and IsCut is always false.
  void set_anchor(std::function<int()> anchor) { anchor_ = std::move(anchor); }

  /// Captures the current up/down and cut state and schedules the first
  /// wake-up. Workers already down (or cut) at start are reported via
  /// on_crash / on_cut immediately.
  void Start();
  void Stop();

  bool IsDown(int worker) const {
    return down_[static_cast<size_t>(worker)];
  }

  /// True if `worker` is partitioned away from the anchor (independent
  /// of its up/down state).
  bool IsCut(int worker) const { return cut_[static_cast<size_t>(worker)]; }

  /// Re-derives every worker's cut state against the (possibly moved)
  /// anchor, firing on_cut / on_heal for changes. Called from wake-ups
  /// and by the engine after a failover relocates the anchor. State is
  /// updated for all workers before any callback fires, so handlers see
  /// a consistent IsCut view.
  void RefreshCuts();

 private:
  void OnWakeup();
  void ScheduleNext(SimTime after);

  Simulator* sim_;
  const FaultSchedule* faults_;
  Callbacks cbs_;
  std::function<int()> anchor_;
  std::vector<bool> down_;
  std::vector<bool> cut_;
  EventId pending_ = kInvalidEventId;
};

}  // namespace fela::sim

#endif  // FELA_SIM_FAULTS_H_
