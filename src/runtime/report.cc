#include "runtime/report.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/table.h"

namespace fela::runtime {

std::string RenderComparisonTable(const std::string& title,
                                  const std::string& x_label,
                                  const std::vector<std::string>& engine_names,
                                  const std::vector<ComparisonRow>& rows,
                                  size_t fela_column, int precision) {
  FELA_CHECK_LT(fela_column, engine_names.size());
  std::vector<std::string> headers;
  headers.push_back(x_label);
  for (const auto& name : engine_names) headers.push_back(name);
  for (size_t c = 0; c < engine_names.size(); ++c) {
    if (c == fela_column) continue;
    headers.push_back(engine_names[fela_column] + "/" + engine_names[c]);
  }

  common::TablePrinter table(headers);
  for (const auto& row : rows) {
    FELA_CHECK_EQ(row.values.size(), engine_names.size());
    std::vector<std::string> cells;
    cells.push_back(common::StrFormat("%g", row.x));
    for (double v : row.values)
      cells.push_back(common::TablePrinter::Num(v, precision));
    for (size_t c = 0; c < row.values.size(); ++c) {
      if (c == fela_column) continue;
      cells.push_back(
          common::TablePrinter::Ratio(row.values[fela_column] / row.values[c]));
    }
    table.AddRow(std::move(cells));
  }
  return title + "\n" + table.ToString();
}

std::pair<double, double> GainRange(const std::vector<ComparisonRow>& rows,
                                    size_t fela_column, size_t other_column) {
  FELA_CHECK(!rows.empty());
  double lo = rows[0].values[fela_column] / rows[0].values[other_column];
  double hi = lo;
  for (const auto& row : rows) {
    const double g = row.values[fela_column] / row.values[other_column];
    lo = std::min(lo, g);
    hi = std::max(hi, g);
  }
  return {lo, hi};
}

std::string FormatGain(double gain) {
  if (gain >= 2.0) return common::StrFormat("%.2fx", gain);
  return common::StrFormat("%.2f%%", (gain - 1.0) * 100.0);
}

}  // namespace fela::runtime
