#include "sim/trace_io.h"

#include <utility>

#include "common/binio.h"
#include "sim/chrome_trace.h"

namespace fela::obs {

namespace binio = ::fela::common;

std::string SerializeBinaryTrace(const SpanSink& spans,
                                 const sim::TraceRecorder* trace,
                                 int num_workers) {
  std::string out;
  out += kBinaryTraceMagic;
  binio::AppendU32(&out, static_cast<uint32_t>(num_workers));
  binio::AppendU8(&out, trace != nullptr ? 1 : 0);

  const std::vector<Span> ordered_spans = spans.spans();
  binio::AppendU64(&out, ordered_spans.size());
  binio::AppendU64(&out, spans.dropped());
  binio::AppendU64(&out, spans.capacity());
  for (const Span& s : ordered_spans) {
    binio::AppendF64(&out, s.begin);
    binio::AppendF64(&out, s.end);
    for (int i = 0; i < 4; ++i) binio::AppendU64(&out, s.detail.args.values[i]);
    binio::AppendI32(&out, s.track);
    binio::AppendI32(&out, s.iteration);
    binio::AppendU32(&out, s.detail.token);
    binio::AppendU8(&out, static_cast<uint8_t>(s.phase));
    binio::AppendU8(&out, s.detail.args.count);
    binio::AppendU8(&out, s.detail.args.types);
    binio::AppendU8(&out, 0);  // pad to 64 bytes
  }

  if (trace != nullptr) {
    const std::vector<sim::TraceRecord> records = trace->records();
    const std::vector<std::string> dynamic = trace->dynamic_details();
    binio::AppendU64(&out, records.size());
    binio::AppendU64(&out, trace->dropped());
    binio::AppendU64(&out, trace->capacity());
    for (size_t i = 0; i < records.size(); ++i) {
      const sim::TraceRecord& r = records[i];
      binio::AppendF64(&out, r.time);
      for (int a = 0; a < 4; ++a) binio::AppendU64(&out, r.args[a]);
      binio::AppendI32(&out, r.node);
      binio::AppendU32(&out, r.token);
      binio::AppendU8(&out, r.kind);
      binio::AppendU8(&out, r.arg_count);
      binio::AppendU8(&out, r.arg_types);
      binio::AppendU8(&out, r.flags);
      if ((r.flags & sim::kDynamicDetailFlag) != 0) {
        binio::AppendU32(&out, static_cast<uint32_t>(dynamic[i].size()));
        out += dynamic[i];
      }
    }
  }

  out += kBinaryTraceTrailer;
  return out;
}

namespace {

// Reads the body after the header. Returns false on truncation (caller
// keeps what parsed and marks the stream truncated).
bool ParseBody(std::string_view bytes, size_t pos, BinaryTraceData* out) {
  uint64_t span_count = 0;
  if (!binio::ReadU64(bytes, &pos, &span_count) ||
      !binio::ReadU64(bytes, &pos, &out->spans_dropped) ||
      !binio::ReadU64(bytes, &pos, &out->span_capacity)) {
    return false;
  }
  for (uint64_t i = 0; i < span_count; ++i) {
    Span s;
    uint8_t phase = 0;
    uint8_t pad = 0;
    if (!binio::ReadF64(bytes, &pos, &s.begin) ||
        !binio::ReadF64(bytes, &pos, &s.end) ||
        !binio::ReadU64(bytes, &pos, &s.detail.args.values[0]) ||
        !binio::ReadU64(bytes, &pos, &s.detail.args.values[1]) ||
        !binio::ReadU64(bytes, &pos, &s.detail.args.values[2]) ||
        !binio::ReadU64(bytes, &pos, &s.detail.args.values[3]) ||
        !binio::ReadI32(bytes, &pos, &s.track) ||
        !binio::ReadI32(bytes, &pos, &s.iteration) ||
        !binio::ReadU32(bytes, &pos, &s.detail.token) ||
        !binio::ReadU8(bytes, &pos, &phase) ||
        !binio::ReadU8(bytes, &pos, &s.detail.args.count) ||
        !binio::ReadU8(bytes, &pos, &s.detail.args.types) ||
        !binio::ReadU8(bytes, &pos, &pad)) {
      return false;
    }
    s.phase = static_cast<Phase>(phase);
    out->spans.push_back(s);
  }

  if (out->has_trace) {
    uint64_t trace_count = 0;
    if (!binio::ReadU64(bytes, &pos, &trace_count) ||
        !binio::ReadU64(bytes, &pos, &out->trace_dropped) ||
        !binio::ReadU64(bytes, &pos, &out->trace_capacity)) {
      return false;
    }
    for (uint64_t i = 0; i < trace_count; ++i) {
      sim::TraceRecord r;
      std::string dynamic;
      if (!binio::ReadF64(bytes, &pos, &r.time) ||
          !binio::ReadU64(bytes, &pos, &r.args[0]) ||
          !binio::ReadU64(bytes, &pos, &r.args[1]) ||
          !binio::ReadU64(bytes, &pos, &r.args[2]) ||
          !binio::ReadU64(bytes, &pos, &r.args[3]) ||
          !binio::ReadI32(bytes, &pos, &r.node) ||
          !binio::ReadU32(bytes, &pos, &r.token) ||
          !binio::ReadU8(bytes, &pos, &r.kind) ||
          !binio::ReadU8(bytes, &pos, &r.arg_count) ||
          !binio::ReadU8(bytes, &pos, &r.arg_types) ||
          !binio::ReadU8(bytes, &pos, &r.flags)) {
        return false;
      }
      if ((r.flags & sim::kDynamicDetailFlag) != 0) {
        uint32_t len = 0;
        if (!binio::ReadU32(bytes, &pos, &len) ||
            bytes.size() - pos < len) {
          return false;
        }
        dynamic.assign(bytes.substr(pos, len));
        pos += len;
      }
      out->events.push_back(r);
      out->dynamic_details.push_back(std::move(dynamic));
    }
  }

  return bytes.substr(pos) == kBinaryTraceTrailer;
}

}  // namespace

bool ParseBinaryTrace(std::string_view bytes, BinaryTraceData* out,
                      std::string* error) {
  *out = BinaryTraceData();
  if (bytes.size() < kBinaryTraceMagic.size() ||
      bytes.substr(0, kBinaryTraceMagic.size()) != kBinaryTraceMagic) {
    if (error != nullptr) *error = "not a FELATRB1 binary trace (bad magic)";
    return false;
  }
  size_t pos = kBinaryTraceMagic.size();
  uint32_t num_workers = 0;
  uint8_t has_trace = 0;
  if (!binio::ReadU32(bytes, &pos, &num_workers) ||
      !binio::ReadU8(bytes, &pos, &has_trace)) {
    if (error != nullptr) *error = "binary trace header truncated";
    return false;
  }
  out->num_workers = static_cast<int>(num_workers);
  out->has_trace = has_trace != 0;
  out->truncated = !ParseBody(bytes, pos, out);
  return true;
}

std::string RenderTraceText(const BinaryTraceData& data,
                            const common::TokenRegistry* registry) {
  std::string out;
  if (data.trace_dropped > 0) {
    sim::AppendTraceDroppedHeader(&out, data.trace_dropped,
                                  data.trace_capacity);
  }
  for (size_t i = 0; i < data.events.size(); ++i) {
    const sim::TraceRecord& r = data.events[i];
    sim::AppendTraceLine(
        &out, r.time, r.node, static_cast<sim::TraceKind>(r.kind),
        sim::RenderTraceDetail(r, data.dynamic_details[i], registry));
  }
  if (data.truncated) out += "<truncated binary trace: end of stream>\n";
  return out;
}

std::string RenderChromeTrace(const BinaryTraceData& data,
                              const common::TokenRegistry* registry) {
  std::vector<sim::TraceEvent> events;
  events.reserve(data.events.size());
  for (size_t i = 0; i < data.events.size(); ++i) {
    const sim::TraceRecord& r = data.events[i];
    events.push_back(sim::TraceEvent{
        r.time, r.node, static_cast<sim::TraceKind>(r.kind),
        sim::RenderTraceDetail(r, data.dynamic_details[i], registry)});
  }
  return ChromeTraceJsonData(data.spans, data.spans_dropped, data.has_trace,
                             events, data.trace_dropped, data.num_workers,
                             registry)
      .Dump(1);
}

}  // namespace fela::obs
