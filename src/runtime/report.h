#ifndef FELA_RUNTIME_REPORT_H_
#define FELA_RUNTIME_REPORT_H_

#include <string>
#include <vector>

#include "runtime/attribution.h"
#include "runtime/experiment.h"

namespace fela::runtime {

/// One line of an engine-comparison series (a point of a paper figure).
struct ComparisonRow {
  double x = 0.0;           // sweep variable (batch size, d, p, ...)
  std::vector<double> values;  // one value per engine, in column order
};

/// Renders a figure panel as an aligned table: column 0 is the sweep
/// variable, one column per engine, plus "Fela/<engine>" ratio columns
/// (the speedups the paper quotes). `fela_column` indexes into
/// `engine_names`.
std::string RenderComparisonTable(const std::string& title,
                                  const std::string& x_label,
                                  const std::vector<std::string>& engine_names,
                                  const std::vector<ComparisonRow>& rows,
                                  size_t fela_column, int precision = 1);

/// Min/max of (fela/other - 1) across rows, as the paper's
/// "outperforms X by a%~b%" summaries. Returns {min_gain, max_gain}
/// where gain = fela_value / other_value.
std::pair<double, double> GainRange(const std::vector<ComparisonRow>& rows,
                                    size_t fela_column, size_t other_column);

/// Formats a gain factor the way the paper does: "35.5%" below 2x,
/// "3.23x" at or above 2x (the paper switches notation around there).
std::string FormatGain(double gain);

/// One-paragraph fault accounting for a run: crashes/recoveries, token
/// reclaims and regrants, control-plane losses, retries, and the mean
/// recovery latency. Returns "" when the run saw no fault activity.
std::string RenderFaultSummary(const std::string& engine_name,
                               const RunStats& stats);

/// Where each worker's time went, as an aligned percentage table — one
/// row per worker plus a cluster-total row — followed by a line naming
/// the run's critical-path bottleneck. Returns "" for an empty report
/// (run not observed).
std::string RenderAttributionTable(const obs::AttributionReport& report);

}  // namespace fela::runtime

#endif  // FELA_RUNTIME_REPORT_H_
