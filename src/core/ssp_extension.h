#ifndef FELA_CORE_SSP_EXTENSION_H_
#define FELA_CORE_SSP_EXTENSION_H_

#include "core/token.h"

namespace fela::core {

/// The §VI extension: "Fela can be easily extended to SSP by adding the
/// age attribute to each token. By considering the age of token, Fela can
/// distribute the tokens according to the predefined staleness bound."
///
/// This gate encapsulates that admission rule. A token of iteration k has
/// age (current_training_iteration - k); under a staleness bound s the
/// distributor may hand out tokens of iteration k while iteration k - s'
/// (s' <= s) is still synchronizing, i.e. iteration k may start as long
/// as the oldest incomplete iteration is at most s behind. Bound 0
/// degenerates to BSP (the engine's default); an unbounded gate is ASP.
class SspTokenGate {
 public:
  /// `staleness_bound` < 0 means unbounded (ASP).
  explicit SspTokenGate(int staleness_bound)
      : staleness_bound_(staleness_bound) {}

  int staleness_bound() const { return staleness_bound_; }
  bool IsBsp() const { return staleness_bound_ == 0; }
  bool IsAsp() const { return staleness_bound_ < 0; }

  /// Age of a token while the engine trains `current_iteration`.
  static int AgeOf(const Token& token, int current_iteration) {
    return current_iteration - token.iteration;
  }

  /// May iteration `iteration` distribute tokens while the oldest
  /// not-yet-synchronized iteration is `oldest_incomplete`?
  bool CanDistribute(int iteration, int oldest_incomplete) const {
    if (IsAsp()) return true;
    return iteration - oldest_incomplete <= staleness_bound_;
  }

  /// Is this token still admissible (not too stale) for a worker that has
  /// advanced to `current_iteration`?
  bool Admissible(const Token& token, int current_iteration) const {
    if (IsAsp()) return true;
    return AgeOf(token, current_iteration) <= staleness_bound_;
  }

 private:
  int staleness_bound_;
};

}  // namespace fela::core

#endif  // FELA_CORE_SSP_EXTENSION_H_
