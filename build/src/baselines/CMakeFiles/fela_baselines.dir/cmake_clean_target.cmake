file(REMOVE_RECURSE
  "libfela_baselines.a"
)
