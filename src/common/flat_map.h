#ifndef FELA_COMMON_FLAT_MAP_H_
#define FELA_COMMON_FLAT_MAP_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace fela::common {

/// A sorted-vector map: one contiguous allocation, O(log n) lookup, and
/// deterministic in-order iteration for free — the same guarantee the
/// sorted-snapshot pattern (core/info_mapping.h) buys for unordered
/// containers, but without the per-snapshot copy. Replaces
/// std::map<K, V> on hot paths whose keys arrive mostly in increasing
/// order (token ids are monotonic), where insert degenerates to an
/// amortized-O(1) push_back instead of a rebalancing tree allocation.
///
/// Not a general-purpose map: erase is O(n) (it keeps the vector sorted
/// by shifting), so it fits small-to-medium live sets with high
/// insert/lookup churn — exactly the token-lease table's shape.
template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }
  void reserve(size_t n) { entries_.reserve(n); }

  iterator find(const K& key) {
    iterator it = LowerBound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }
  const_iterator find(const K& key) const {
    const_iterator it = LowerBound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }

  bool contains(const K& key) const { return find(key) != entries_.end(); }

  /// Inserts a default-constructed value if absent (std::map semantics).
  V& operator[](const K& key) {
    iterator it = LowerBound(key);
    if (it == entries_.end() || it->first != key) {
      it = entries_.insert(it, value_type{key, V{}});
    }
    return it->second;
  }

  /// Erases the entry if present; returns the number erased (0 or 1).
  size_t erase(const K& key) {
    iterator it = find(key);
    if (it == entries_.end()) return 0;
    entries_.erase(it);
    return 1;
  }

  iterator erase(iterator it) { return entries_.erase(it); }

 private:
  iterator LowerBound(const K& key) {
    // Monotonic keys append at the tail; test it before binary-searching.
    if (entries_.empty() || entries_.back().first < key) {
      return entries_.end();
    }
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }
  const_iterator LowerBound(const K& key) const {
    if (entries_.empty() || entries_.back().first < key) {
      return entries_.end();
    }
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }

  std::vector<value_type> entries_;
};

}  // namespace fela::common

#endif  // FELA_COMMON_FLAT_MAP_H_
