#ifndef FELA_SIM_STRAGGLER_H_
#define FELA_SIM_STRAGGLER_H_

#include <cstdint>
#include <memory>
#include <string>

namespace fela::sim {

/// Straggler injection schedule: how much extra sleep (seconds) a worker
/// suffers in a given iteration, following the paper's §V-C methodology
/// (sleep delays prolonging computation, per [10], [11]). Implementations
/// are pure functions of (iteration, worker) so every engine observes the
/// identical schedule for a fair comparison.
class StragglerSchedule {
 public:
  virtual ~StragglerSchedule() = default;

  /// Extra delay imposed on `worker` during `iteration`, in seconds.
  virtual double DelayFor(int iteration, int worker) const = 0;

  /// Multiplicative compute slowdown for `worker` during `iteration`
  /// (1.0 = nominal speed). Models heterogeneous / degraded devices, the
  /// second straggler cause the paper names ("heterogeneity of
  /// computation performance", §II-C). Engines scale kernel durations by
  /// this factor.
  virtual double SlowdownFor(int iteration, int worker) const {
    (void)iteration;
    (void)worker;
    return 1.0;
  }

  /// Human-readable description for reports.
  virtual std::string ToString() const = 0;
};

/// Heterogeneous cluster: worker `victim` computes `slowdown`x slower in
/// every iteration (a thermally-throttled or older device). Unlike sleep
/// injection, the extra time scales with the work assigned — the scenario
/// where proactive re-partitioning (ElasticPipe) genuinely pays off.
class HeterogeneousWorker final : public StragglerSchedule {
 public:
  HeterogeneousWorker(int victim, double slowdown);
  double DelayFor(int, int) const override { return 0.0; }
  double SlowdownFor(int iteration, int worker) const override;
  std::string ToString() const override;

 private:
  int victim_;
  double slowdown_;
};

/// Baseline: no stragglers.
class NoStragglers final : public StragglerSchedule {
 public:
  double DelayFor(int, int) const override { return 0.0; }
  std::string ToString() const override { return "none"; }
};

/// Round-robin scenario ([10]): worker (iteration mod N) is slowed by d
/// seconds in that iteration.
class RoundRobinStragglers final : public StragglerSchedule {
 public:
  RoundRobinStragglers(int num_workers, double delay_sec);
  double DelayFor(int iteration, int worker) const override;
  std::string ToString() const override;

 private:
  int num_workers_;
  double delay_sec_;
};

/// Probability-based scenario: in every iteration each worker becomes a
/// straggler (slowed by d seconds) independently with probability p.
/// Deterministic in (seed, iteration, worker).
class ProbabilityStragglers final : public StragglerSchedule {
 public:
  ProbabilityStragglers(double probability, double delay_sec, uint64_t seed);
  double DelayFor(int iteration, int worker) const override;
  std::string ToString() const override;

 private:
  double probability_;
  double delay_sec_;
  uint64_t seed_;
};

/// A persistent straggler: one fixed worker is slowed by d seconds in
/// every iteration (e.g. a failing NIC or a co-scheduled tenant). The
/// scenario where *proactive* re-balancing (ElasticPipe/FlexRR style)
/// actually works — the foil for the transient scenario below.
class PersistentStraggler final : public StragglerSchedule {
 public:
  PersistentStraggler(int victim, double delay_sec);
  double DelayFor(int iteration, int worker) const override;
  std::string ToString() const override;

 private:
  int victim_;
  double delay_sec_;
};

/// Transient stragglers (§III-C discussion): bursts lasting
/// `burst_iterations` hitting a rotating worker; stresses reactive vs
/// periodic re-balancing. Extension beyond the paper's two scenarios.
class TransientStragglers final : public StragglerSchedule {
 public:
  TransientStragglers(int num_workers, double delay_sec, int burst_iterations,
                      uint64_t seed);
  double DelayFor(int iteration, int worker) const override;
  std::string ToString() const override;

 private:
  int num_workers_;
  double delay_sec_;
  int burst_iterations_;
  uint64_t seed_;
};

}  // namespace fela::sim

#endif  // FELA_SIM_STRAGGLER_H_
