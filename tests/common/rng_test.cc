#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace fela::common {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIntWithinBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RngTest, BernoulliRateApproximatesP) {
  Rng rng(9);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  Rng b(42);
  (void)b.Next();  // Fork consumed one draw from the parent.
  EXPECT_EQ(a.Next(), b.Next());
  // The child stream should not mirror the parent.
  Rng a2(42);
  Rng child2 = a2.Fork();
  EXPECT_EQ(child.Next(), child2.Next());
}

class RngBoundSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundSweep, NoModuloBiasAcrossBounds) {
  const uint64_t bound = GetParam();
  Rng rng(bound * 31 + 7);
  std::vector<int> counts(bound, 0);
  const int n = 3000 * static_cast<int>(bound);
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(bound)];
  for (uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(static_cast<double>(counts[v]) / n, 1.0 / bound,
                0.25 / bound)
        << "bound " << bound << " value " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(2, 3, 5, 8, 13));

}  // namespace
}  // namespace fela::common
