#ifndef FELA_COMMON_BINIO_H_
#define FELA_COMMON_BINIO_H_

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace fela::common {

/// Byte-level little-endian append/read helpers for the compact binary
/// trace and transcript formats. Explicit shifts (not memcpy of host
/// structs) so the encoded bytes are identical on every platform and
/// never depend on struct padding — a prerequisite for hashing the
/// binary form in determinism checks.

inline void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void AppendI32(std::string* out, int32_t v) {
  AppendU32(out, static_cast<uint32_t>(v));
}

inline void AppendF64(std::string* out, double v) {
  AppendU64(out, std::bit_cast<uint64_t>(v));
}

/// Readers advance `*pos` past the consumed bytes; a false return means
/// the input ended mid-value (`*pos` is left unchanged), which callers
/// surface as a truncated stream.
inline bool ReadU8(std::string_view in, size_t* pos, uint8_t* v) {
  if (*pos + 1 > in.size()) return false;
  *v = static_cast<uint8_t>(in[*pos]);
  *pos += 1;
  return true;
}

inline bool ReadU32(std::string_view in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(in[*pos + i]))
           << (8 * i);
  }
  *v = out;
  *pos += 4;
  return true;
}

inline bool ReadU64(std::string_view in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(in[*pos + i]))
           << (8 * i);
  }
  *v = out;
  *pos += 8;
  return true;
}

inline bool ReadI32(std::string_view in, size_t* pos, int32_t* v) {
  uint32_t raw = 0;
  if (!ReadU32(in, pos, &raw)) return false;
  *v = static_cast<int32_t>(raw);
  return true;
}

inline bool ReadF64(std::string_view in, size_t* pos, double* v) {
  uint64_t raw = 0;
  if (!ReadU64(in, pos, &raw)) return false;
  *v = std::bit_cast<double>(raw);
  return true;
}

}  // namespace fela::common

#endif  // FELA_COMMON_BINIO_H_
