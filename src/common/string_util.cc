#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace fela::common {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    // +1 for the terminating NUL vsnprintf writes.
    std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

namespace internal_string {
std::string ToDisplayString(const std::string& v) { return v; }
std::string ToDisplayString(std::string_view v) { return std::string(v); }
std::string ToDisplayString(const char* v) { return std::string(v); }
}  // namespace internal_string

}  // namespace fela::common
