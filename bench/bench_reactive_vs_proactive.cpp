// Design-choice ablation (beyond the paper's figures, supporting its §I /
// §III-C argument): reactive token scheduling vs proactive alternatives.
//
//  1. Proactive re-balancing (ElasticPipe-style MP) vs static MP vs Fela
//     under a PERSISTENT straggler (profiles accurate -> proactive helps)
//     and under TRANSIENT stragglers (profiles stale -> proactive can
//     hurt, Fela's reactive pulling keeps adapting).
//  2. PS-architecture DP vs ring all-reduce DP vs Fela: the Table II
//     "centralized bottleneck at PS".

#include <cstdio>
#include <iostream>
#include <iterator>

#include "bench_util.h"
#include "common/string_util.h"
#include "model/zoo.h"
#include "runtime/experiment.h"

int main(int argc, char** argv) {
  using namespace fela;
  const bench::BenchOptions opts = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader(
      "Ablation: reactive token scheduling vs proactive alternatives");

  const model::Model m = model::zoo::Vgg19();
  const double batch = 512;
  runtime::ExperimentSpec spec;
  spec.total_batch = batch;
  spec.iterations = opts.smoke ? 3 : 60;
  spec.observe = opts.json;

  // ---- 1. straggler response: persistent vs transient ----------------
  struct Scenario {
    const char* name;
    runtime::StragglerFactory factory;
  };
  const double d = 4.0;
  const Scenario scenarios[] = {
      {"none",
       [](int) -> std::unique_ptr<sim::StragglerSchedule> {
         return std::make_unique<sim::NoStragglers>();
       }},
      {"persistent (w3, d=4s)",
       [d](int) -> std::unique_ptr<sim::StragglerSchedule> {
         return std::make_unique<sim::PersistentStraggler>(3, d);
       }},
      {"heterogeneous (w3 2x slower)",
       [](int) -> std::unique_ptr<sim::StragglerSchedule> {
         return std::make_unique<sim::HeterogeneousWorker>(3, 2.0);
       }},
      {"transient (burst=3, d=4s)",
       [d](int n) -> std::unique_ptr<sim::StragglerSchedule> {
         return std::make_unique<sim::TransientStragglers>(n, d, 3, 7);
       }},
      {"round-robin (d=4s)",
       [d](int n) -> std::unique_ptr<sim::StragglerSchedule> {
         return std::make_unique<sim::RoundRobinStragglers>(n, d);
       }},
  };

  // Stage one task per scenario (and, below, per PS batch) on the sweep
  // runner, then render serially in order — bytes match any --jobs.
  const size_t scenario_count = opts.smoke ? 1 : std::size(scenarios);
  struct ScenarioPoint {
    runtime::ExperimentResult mp, emp, fela;
  };
  std::vector<ScenarioPoint> scenario_points(scenario_count);
  runtime::SweepRunner runner = opts.Runner();
  for (size_t i = 0; i < scenario_count; ++i) {
    runner.Add([&, i] {
      const auto& sc = scenarios[i];
      const auto cfg = suite::TunedFelaConfig(
          m, batch, 8, opts.smoke ? 1 : 5, sim::Calibration::Default(),
          sc.factory);
      scenario_points[i].mp =
          RunExperiment(spec, suite::MpFactory(m), sc.factory);
      scenario_points[i].emp =
          RunExperiment(spec, suite::ElasticMpFactory(m), sc.factory);
      scenario_points[i].fela =
          RunExperiment(spec, suite::FelaFactory(m, cfg), sc.factory);
    });
  }
  runner.RunAll();

  std::printf("\nVGG19 @ batch %g, average throughput (samples/s):\n", batch);
  obs::BenchReport report("reactive_vs_proactive");
  common::TablePrinter table(
      {"scenario", "MP (static)", "ElasticMP (proactive)", "Fela (reactive)",
       "ElasticMP/MP", "Fela/ElasticMP"});
  double scenario_x = 0.0;
  for (size_t i = 0; i < scenario_count; ++i) {
    const Scenario& sc = scenarios[i];
    const ScenarioPoint& pt = scenario_points[i];
    for (const auto* r : {&pt.mp, &pt.emp, &pt.fela}) {
      report.Add(*r, scenario_x);
    }
    scenario_x += 1.0;
    const double mp = pt.mp.average_throughput;
    const double emp = pt.emp.average_throughput;
    const double fela = pt.fela.average_throughput;
    table.AddRow({sc.name, common::TablePrinter::Num(mp, 1),
                  common::TablePrinter::Num(emp, 1),
                  common::TablePrinter::Num(fela, 1),
                  common::TablePrinter::Ratio(emp / mp),
                  common::TablePrinter::Ratio(fela / emp)});
  }
  table.Print(std::cout);
  std::printf(
      "(expected: ElasticMP > MP under the persistent straggler, but the\n"
      " advantage shrinks or inverts under transient/rotating stragglers —\n"
      " the paper's argument for reactive scheduling, §III-C.)\n");

  // ---- 2. PS bottleneck ----------------------------------------------
  const std::vector<double> ps_batches =
      opts.Sweep<double>({128.0, 256.0, 512.0});
  std::vector<runtime::SweepItem> ps_items;
  for (double b : ps_batches) {
    runtime::ExperimentSpec s2;
    s2.total_batch = b;
    s2.iterations = opts.smoke ? 3 : 30;
    ps_items.push_back(runtime::SweepItem{s2, suite::PsDpFactory(m, 1),
                                          runtime::NoStragglerFactory(),
                                          nullptr});
    ps_items.push_back(runtime::SweepItem{s2, suite::PsDpFactory(m, 4),
                                          runtime::NoStragglerFactory(),
                                          nullptr});
    ps_items.push_back(runtime::SweepItem{s2, suite::DpFactory(m),
                                          runtime::NoStragglerFactory(),
                                          nullptr});
  }
  const std::vector<runtime::ExperimentResult> ps_results =
      runtime::RunSweep(ps_items, opts.jobs);

  std::printf("\nPS-architecture DP vs ring all-reduce DP (non-straggler):\n");
  common::TablePrinter ps_table({"batch", "PS-DP (1 server)",
                                 "PS-DP (4 servers)", "DP (ring)",
                                 "ring/PS1"});
  for (size_t i = 0; i < ps_batches.size(); ++i) {
    const double b = ps_batches[i];
    const double ps1 = ps_results[3 * i].average_throughput;
    const double ps4 = ps_results[3 * i + 1].average_throughput;
    const double ring = ps_results[3 * i + 2].average_throughput;
    ps_table.AddRow({common::TablePrinter::Num(b, 0),
                     common::TablePrinter::Num(ps1, 1),
                     common::TablePrinter::Num(ps4, 1),
                     common::TablePrinter::Num(ring, 1),
                     common::TablePrinter::Ratio(ring / ps1)});
  }
  ps_table.Print(std::cout);
  std::printf(
      "(the single-server PS funnels 2 * N * 575 MB through one NIC per\n"
      " iteration — Table II's centralized bottleneck.)\n");
  runtime::ExperimentSpec gate;
  gate.total_batch = 256;
  gate.iterations = 4;
  const int rc = bench::VerifyDeterminismGate(
      opts, "reactive_vs_proactive", gate, suite::PsDpFactory(m, 4),
      [](int n) -> std::unique_ptr<sim::StragglerSchedule> {
        return std::make_unique<sim::TransientStragglers>(n, 4.0, 3, 7);
      });
  return bench::FinishBench(opts, report) | rc;
}
