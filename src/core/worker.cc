#include "core/worker.h"

#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"

namespace fela::core {

FelaWorker::FelaWorker(sim::NodeId id, const WorkerContext* ctx,
                       sim::GpuDevice* gpu)
    : id_(id), ctx_(ctx), gpu_(gpu) {
  FELA_CHECK(ctx_ != nullptr);
}

void FelaWorker::BeginTokenWait() {
  if (spans_ == nullptr || !spans_->enabled()) return;
  token_wait_.emplace(spans_, id_, obs::Phase::kTokenWait, iteration_);
}

void FelaWorker::BeginIteration(int iteration, double straggler_delay,
                                double slowdown) {
  chunks_.Clear();  // token outputs are iteration-scoped
  slowdown_ = slowdown;
  iteration_ = iteration;
  if (straggler_delay > 0.0) {
    gpu_->BlockUntil(sim()->now() + straggler_delay);
    FELA_TRACE(trace(), sim()->now(), id_, sim::TraceKind::kStragglerSleep,
               FELA_TOK("it=%d d=%.2fs"), iteration, straggler_delay);
  }
  if (!request_outstanding_ && !busy_) {
    request_outstanding_ = true;
    retry_attempt_ = 0;
    FELA_TRACE(trace(), sim()->now(), id_, sim::TraceKind::kTokenRequest,
               FELA_TOK("it=%d"), iteration);
    BeginTokenWait();
    ctx_->cbs.send_request(id_);
    ArmRetryTimer();
  }
}

void FelaWorker::RequestWork(int iteration) {
  iteration_ = iteration;
  if (request_outstanding_ || busy_) return;
  request_outstanding_ = true;
  retry_attempt_ = 0;
  FELA_TRACE(trace(), sim()->now(), id_, sim::TraceKind::kTokenRequest,
             FELA_TOK("it=%d (rejoin)"), iteration);
  BeginTokenWait();
  ctx_->cbs.send_request(id_);
  ArmRetryTimer();
}

void FelaWorker::OnCrash() {
  ++incarnation_;
  busy_ = false;
  request_outstanding_ = false;
  retry_attempt_ = 0;
  // The wait ended in a crash, not a grant; the interval up to now is
  // still time spent waiting (the crashed span the engine emits outranks
  // it in attribution anyway).
  token_wait_.reset();
  CancelRetryTimer();
}

void FelaWorker::Quiesce() {
  CancelRetryTimer();
  if (token_wait_) {
    // The run ended before the grant came; an open-ended wait would
    // distort attribution of the last iteration.
    token_wait_->Cancel();
    token_wait_.reset();
  }
}

void FelaWorker::ArmRetryTimer() {
  if (retry_.base_sec <= 0.0) return;
  CancelRetryTimer();
  const double delay = common::JitteredBackoffSec(
      retry_.base_sec, retry_.multiplier, retry_.max_sec, retry_attempt_,
      retry_.jitter_seed, static_cast<uint64_t>(id_));
  const int inc = incarnation_;
  // fela-lint: allow(untraced-event): retries trace as kRequestRetry at
  // fire time; arming the timer itself is not an observable event.
  retry_timer_ = sim()->Schedule(delay, [this, inc] {
    retry_timer_ = sim::kInvalidEventId;
    if (inc != incarnation_) return;
    OnRetryFire();
  });
}

void FelaWorker::CancelRetryTimer() {
  if (retry_timer_ != sim::kInvalidEventId) {
    sim()->Cancel(retry_timer_);
    retry_timer_ = sim::kInvalidEventId;
  }
}

void FelaWorker::OnRetryFire() {
  if (!request_outstanding_ || busy_) return;
  ++retries_;
  ++retry_attempt_;  // next wait backs off further
  FELA_TRACE(trace(), sim()->now(), id_, sim::TraceKind::kRequestRetry,
             FELA_TOK("it=%d n=%llu"), iteration_,
             static_cast<unsigned long long>(retries_));
  ctx_->cbs.send_request(id_);
  ArmRetryTimer();
}

void FelaWorker::OnGrant(const Grant& grant) {
  if (busy_) {
    // A duplicate grant, or one that raced a retransmitted request. The
    // TS lease will reclaim the token; just drop it.
    ++ignored_grants_;
    return;
  }
  request_outstanding_ = false;
  retry_attempt_ = 0;
  CancelRetryTimer();
  token_wait_.reset();  // emits the request -> grant interval
  busy_ = true;
  if (grant.cross_shard) {
    // Hierarchical steal: the token came from another sub-distributor's
    // rack. Only sharded servers emit this variant, so unsharded
    // transcripts keep their historical bytes.
    FELA_TRACE(trace(), sim()->now(), id_, sim::TraceKind::kTokenGrant,
               FELA_TOK("Token_%lld b=%g cross-shard remote_fetches=%zu"),
               static_cast<long long>(grant.token.id), grant.token.batch,
               grant.remote_fetches.size());
  } else {
    FELA_TRACE(trace(), sim()->now(), id_, sim::TraceKind::kTokenGrant,
               FELA_TOK("Token_%lld b=%g stolen=%d remote_fetches=%zu"),
               static_cast<long long>(grant.token.id), grant.token.batch,
               static_cast<int>(grant.stolen), grant.remote_fetches.size());
  }

  if (grant.remote_fetches.empty()) {
    StartCompute(grant.token);
    return;
  }

  // Coordinator: gather missing dependencies from their holders, then
  // hand the token to the Trainer.
  FELA_TRACE(trace(), sim()->now(), id_, sim::TraceKind::kFetchStart,
             FELA_TOK("%zu transfers"), grant.remote_fetches.size());
  auto remaining = std::make_shared<int>(
      static_cast<int>(grant.remote_fetches.size()));
  Token token = grant.token;
  const int inc = incarnation_;
  for (const auto& [holder, bytes] : grant.remote_fetches) {
    bytes_fetched_ += bytes;
    ctx_->fabric->Transfer(holder, id_, bytes,
                           [this, remaining, token, inc]() mutable {
      if (--*remaining == 0) {
        if (inc != incarnation_) return;  // fetched for a dead process
        FELA_TRACE(trace(), sim()->now(), id_, sim::TraceKind::kFetchEnd);
        StartCompute(std::move(token));
      }
    });
  }
}

void FelaWorker::StartCompute(Token token) {
  const model::SubModel& sm =
      (*ctx_->sub_models)[static_cast<size_t>(token.level)];
  const double duration =
      ctx_->cost->RangeSeconds(*ctx_->model, sm.first_layer, sm.last_layer,
                               token.batch) *
      slowdown_;
  FELA_TRACE(trace(), sim()->now(), id_, sim::TraceKind::kComputeStart,
             FELA_TOK("Token_%lld b=%g dur=%.4fs"),
             static_cast<long long>(token.id), token.batch, duration);
  const int inc = incarnation_;
  gpu_->Enqueue(duration, [this, token = std::move(token), inc]() mutable {
    if (inc != incarnation_) return;  // computed by a dead process
    OnComputeDone(std::move(token));
  });
}

void FelaWorker::OnComputeDone(Token token) {
  chunks_.Store(token.id);
  ++tokens_trained_;
  samples_trained_ += token.batch;
  busy_ = false;
  FELA_TRACE(trace(), sim()->now(), id_, sim::TraceKind::kComputeEnd,
             FELA_TOK("Token_%lld b=%g it=%d"),
             static_cast<long long>(token.id), token.batch, token.iteration);
  // Combined report + request: the TS serves our implicit request.
  request_outstanding_ = true;
  retry_attempt_ = 0;
  BeginTokenWait();
  ctx_->cbs.send_report(id_, token);
  ArmRetryTimer();
}

}  // namespace fela::core
