#include "sim/event_fn.h"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <utility>

namespace fela::sim {
namespace {

TEST(EventFnTest, DefaultIsEmpty) {
  EventFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_FALSE(fn.is_inline());
}

TEST(EventFnTest, InvokesStoredCallable) {
  int calls = 0;
  EventFn fn([&calls] { ++calls; });
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(calls, 2);
}

TEST(EventFnTest, SmallCapturesStayInline) {
  int a = 0, b = 0, c = 0;
  // Three pointers plus an int: the shape of a typical engine callback.
  EventFn fn([&a, &b, &c, inc = 1] {
    a += inc;
    b += inc;
    c += inc;
  });
  EXPECT_TRUE(fn.is_inline());
  fn();
  EXPECT_EQ(a + b + c, 3);
}

TEST(EventFnTest, StdFunctionFitsInline) {
  // The device layer forwards std::function callbacks into the queue;
  // the wrapper itself must not force a heap fallback.
  std::function<void()> wrapped = [] {};
  EventFn fn(std::move(wrapped));
  EXPECT_TRUE(fn.is_inline());
}

TEST(EventFnTest, OversizedCapturesFallBackToHeap) {
  std::array<double, 32> big{};
  big[0] = 7.0;
  double out = 0.0;
  EventFn fn([big, &out] { out = big[0]; });
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_DOUBLE_EQ(out, 7.0);
}

TEST(EventFnTest, MoveTransfersOwnership) {
  int calls = 0;
  EventFn a([&calls] { ++calls; });
  EventFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);

  EventFn c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));
  c();
  EXPECT_EQ(calls, 2);
}

TEST(EventFnTest, DestructionReleasesCapturedState) {
  auto tracked = std::make_shared<int>(42);
  std::weak_ptr<int> watch = tracked;
  {
    EventFn fn([held = std::move(tracked)] { (void)*held; });
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(EventFnTest, ResetReleasesCapturedStateEarly) {
  auto tracked = std::make_shared<int>(1);
  std::weak_ptr<int> watch = tracked;
  EventFn fn([held = std::move(tracked)] { (void)*held; });
  fn.Reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(EventFnTest, MoveAssignDestroysPreviousCallable) {
  auto first = std::make_shared<int>(1);
  std::weak_ptr<int> watch = first;
  EventFn fn([held = std::move(first)] { (void)*held; });
  fn = EventFn([] {});
  EXPECT_TRUE(watch.expired());
  fn();  // replacement callable still works
}

TEST(EventFnTest, HeapCallableSurvivesMove) {
  std::array<double, 32> big{};
  big[5] = 3.5;
  double out = 0.0;
  EventFn a([big, &out] { out = big[5]; });
  EventFn b = std::move(a);
  b();
  EXPECT_DOUBLE_EQ(out, 3.5);
}

}  // namespace
}  // namespace fela::sim
