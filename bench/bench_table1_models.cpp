// Table I: "Growing Neural Network Layer Numbers" — the model-zoo survey
// of published layer counts, regenerated from our model definitions.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/zoo.h"

namespace {

std::string RenderTableOne() {
  using namespace fela;
  common::TablePrinter table(
      {"Model", "Year", "Layer Number", "built layers", "params (M)",
       "fwd GFLOP/sample"});
  for (const model::Model& m : model::zoo::TableOneModels()) {
    table.AddRow({m.name(), std::to_string(m.year()),
                  std::to_string(m.published_layer_count()),
                  std::to_string(m.WeightedLayerCount()),
                  common::TablePrinter::Num(m.TotalParams() / 1e6, 1),
                  common::TablePrinter::Num(m.TotalFlopsPerSample() / 1e9, 2)});
  }
  return table.ToString();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fela;
  const bench::BenchOptions opts = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader("Table I: Growing Neural Network Layer Numbers");

  std::cout << RenderTableOne();
  std::printf(
      "\n('built layers' counts the weighted layers of our constructed\n"
      "model; GoogLeNet trains as 12 coarse units, see DESIGN.md.)\n");
  return bench::VerifyRenderDeterminism(opts, "table1", RenderTableOne);
}
