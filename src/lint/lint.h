#ifndef FELA_LINT_LINT_H_
#define FELA_LINT_LINT_H_

#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace fela::lint {

/// One rule violation. `line` is 1-based; `rule` is the kebab-case rule
/// id a suppression comment names: `// fela-lint: allow(<rule>) ...`.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  friend bool operator==(const Finding& a, const Finding& b) {
    return a.file == b.file && a.line == b.line && a.rule == b.rule &&
           a.message == b.message;
  }
};

/// Static metadata for one lint rule (drives --list-rules and the docs).
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// All rules, in reporting order. Rule ids:
///   wall-clock       wall-clock time source in deterministic sim code
///   unseeded-rng     unseeded/global randomness (only fela::common::Rng)
///   unordered-iter   emitting iteration over an unordered container
///   discarded-status discarded Status/Result return value
///   float-eq         exact floating-point ==/!= in sim code
///   untraced-event   FELA_TRACE-free event scheduling in engine hot paths
///   untokenized-trace raw string detail at a trace/span call site
const std::vector<RuleInfo>& Rules();

/// True when `rule` names a known rule id.
bool IsKnownRule(const std::string& rule);

struct Options {
  /// Rules to run; empty means all.
  std::set<std::string> rules;
};

/// Lints a single file's `contents`. `path` is used both for reporting
/// and for rule scoping (path components "sim", "core", "baselines",
/// "runtime" mark simulation code). `extra_unordered_members` seeds the
/// unordered-iter rule with member names declared elsewhere (the paired
/// header); `status_functions` seeds discarded-status with the names of
/// Status/Result-returning functions collected across the tree.
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& contents,
                              const Options& options,
                              const std::set<std::string>&
                                  extra_unordered_members = {},
                              const std::set<std::string>& status_functions =
                                  {});

/// Walks `roots` (files or directories), lints every .h/.hpp/.cc/.cpp,
/// and returns findings sorted by (file, line, rule). A two-pass scan:
/// pass 1 collects Status-returning function names and per-header
/// unordered members, pass 2 applies the rules, seeding each file's
/// unordered-iter members from its sibling header and every directly-
/// included project header (quoted includes, matched against scanned
/// files by path suffix, or read relative to the includer when not
/// scanned). Returns false and fills `error` when a root cannot be
/// read.
bool LintTree(const std::vector<std::string>& roots, const Options& options,
              std::vector<Finding>* findings, std::string* error);

/// Machine-readable report: {"count":N,"findings":[{file,line,message,rule}]}
/// with keys emitted in sorted order.
std::string FindingsToJson(const std::vector<Finding>& findings);

/// Human-readable aligned table plus a one-line summary.
std::string FindingsToTable(const std::vector<Finding>& findings);

/// The fela-lint command line:
///   fela-lint [--format=table|json] [--rules=a,b] [--list-rules] <path>...
/// Exit codes: 0 clean, 1 findings reported, 2 usage or I/O error.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace fela::lint

#endif  // FELA_LINT_LINT_H_
