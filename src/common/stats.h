#ifndef FELA_COMMON_STATS_H_
#define FELA_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace fela::common {

/// Streaming summary statistics over doubles (Welford's algorithm for
/// numerically stable mean/variance). Used for per-iteration timings.
class SummaryStats {
 public:
  SummaryStats() = default;

  void Add(double x);
  void Merge(const SummaryStats& other);
  void Reset();

  size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const;
  double max() const;
  /// Population variance / stddev (0 when count < 2).
  double variance() const;
  double stddev() const;

  std::string ToString() const;

 private:
  size_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retains all samples; supports exact percentiles. Fine for the sample
/// counts in this project (hundreds of iterations).
class Samples {
 public:
  void Add(double x) { values_.push_back(x); }
  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  /// Exact percentile with linear interpolation, q in [0, 100].
  double Percentile(double q) const;
  double Median() const { return Percentile(50.0); }
  const std::vector<double>& values() const { return values_; }
  void Clear() { values_.clear(); }

 private:
  std::vector<double> values_;
};

/// Fixed-width linear histogram over [lo, hi); out-of-range samples land
/// in the clamped edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  size_t bucket_count() const { return counts_.size(); }
  size_t BucketOf(double x) const;
  size_t count(size_t bucket) const { return counts_[bucket]; }
  size_t total() const { return total_; }
  double bucket_lo(size_t bucket) const;
  double bucket_hi(size_t bucket) const;
  /// ASCII rendering, one line per non-empty bucket.
  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

/// Normalizes values to [0, 1] by (x - min) / (max - min), the scheme used
/// for the paper's Figure 6(a). Returns all zeros when max == min.
std::vector<double> NormalizeToUnit(const std::vector<double>& values);

}  // namespace fela::common

#endif  // FELA_COMMON_STATS_H_
