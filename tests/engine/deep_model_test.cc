// Fela on models beyond the paper's two benchmarks: the deep zoo models
// exercise the heuristic profiler, multi-bin partitions, and larger
// tuning search spaces.

#include <gtest/gtest.h>

#include "core/fela_engine.h"
#include "core/tuning.h"
#include "model/zoo.h"
#include "runtime/cluster.h"

namespace fela {
namespace {

TEST(DeepModelTest, ResNet152BinSizeControlsGranularity) {
  // Interleaved 1x1/3x3 bottleneck convs have oscillating heuristic
  // thresholds: the default bin (16) yields a very fine partition, and
  // the paper's bin-size knob ("different bin sizes are achievable based
  // on the desired partition granularity", §III-B) coarsens it.
  const model::Model m = model::zoo::ResNet152();
  const auto fine = model::BinPartitioner(16.0).Partition(
      m, model::ProfileRepository::Default());
  const auto coarse = model::BinPartitioner(64.0).Partition(
      m, model::ProfileRepository::Default());
  EXPECT_GE(fine.size(), 2u);
  EXPECT_LT(coarse.size(), fine.size());
  EXPECT_LE(coarse.size(), 16u);
  EXPECT_EQ(coarse.front().first_layer, 0);
  EXPECT_EQ(coarse.back().last_layer, m.layer_count() - 1);
  double params = 0.0;
  for (const auto& sm : coarse) params += sm.params;
  EXPECT_NEAR(params, m.TotalParams(), 1.0);
}

TEST(DeepModelTest, FelaTrainsResNet152EndToEnd) {
  const model::Model m = model::zoo::ResNet152();
  const auto sub = model::BinPartitioner(64.0).Partition(
      m, model::ProfileRepository::Default());
  runtime::Cluster cluster(8, sim::Calibration::Default(), nullptr);
  core::FelaConfig cfg =
      core::FelaConfig::Defaults(static_cast<int>(sub.size()), 8);
  core::FelaEngine engine(&cluster, m, sub, cfg, 256);
  const auto stats = engine.Run(2);
  EXPECT_EQ(stats.iteration_count(), 2);
  double samples = 0.0;
  for (int w = 0; w < 8; ++w) samples += engine.worker(w).samples_trained();
  EXPECT_NEAR(samples, 256.0 * static_cast<double>(sub.size()) * 2, 1e-6);
}

TEST(DeepModelTest, WeightEnumerationScalesWithSubModels) {
  // Non-decreasing sequences over {1,2,4,8} with w0 = 1: the search
  // space must grow combinatorially but stay enumerable.
  const auto m4 = core::EnumerateWeightCandidates(4, 8);
  const auto m6 = core::EnumerateWeightCandidates(6, 8);
  EXPECT_EQ(m4.size(), 20u);  // C(3+3,3)
  EXPECT_EQ(m6.size(), 56u);  // C(5+3,3)
  for (const auto& w : m6) {
    for (size_t i = 1; i < w.size(); ++i) EXPECT_GE(w[i], w[i - 1]);
  }
}

TEST(DeepModelTest, Vgg16WorksWithHeuristicThresholds) {
  // VGG16 ships without explicit thresholds: the heuristic must yield a
  // usable partition and a runnable engine.
  const model::Model m = model::zoo::Vgg16();
  const auto sub = model::BinPartitioner().Partition(
      m, model::ProfileRepository::Default());
  ASSERT_GE(sub.size(), 2u);
  runtime::Cluster cluster(8, sim::Calibration::Default(), nullptr);
  core::FelaConfig cfg =
      core::FelaConfig::Defaults(static_cast<int>(sub.size()), 8);
  core::FelaEngine engine(&cluster, m, sub, cfg, 128);
  EXPECT_EQ(engine.Run(2).iteration_count(), 2);
}

TEST(DeepModelTest, AlexNetSmallModelStillSchedules) {
  const model::Model m = model::zoo::AlexNet();
  const auto sub = model::BinPartitioner().Partition(
      m, model::ProfileRepository::Default());
  runtime::Cluster cluster(4, sim::Calibration::Default(), nullptr);
  core::FelaConfig cfg =
      core::FelaConfig::Defaults(static_cast<int>(sub.size()), 4);
  core::FelaEngine engine(&cluster, m, sub, cfg, 64);
  EXPECT_EQ(engine.Run(2).iteration_count(), 2);
}

}  // namespace
}  // namespace fela
