#ifndef FELA_COMMON_JSON_H_
#define FELA_COMMON_JSON_H_

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fela::common {

/// Minimal JSON document model: enough to emit machine-readable bench /
/// trace / metrics artifacts and to parse them back in tests, with no
/// external dependency. Numbers are doubles (the trace-event format and
/// our bench schema never need 64-bit-exact integers); object key order
/// is preserved so emitted files diff stably.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}           // NOLINT
  Json(double n) : type_(Type::kNumber), number_(n) {}     // NOLINT
  Json(int n) : Json(static_cast<double>(n)) {}            // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}            // NOLINT

  static Json Array() { return Json(Type::kArray); }
  static Json Object() { return Json(Type::kObject); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }

  // -- Array access --------------------------------------------------------
  size_t size() const { return items_.size(); }
  const Json& at(size_t i) const { return items_[i]; }
  const std::vector<Json>& items() const { return items_; }
  void Append(Json value) { items_.push_back(std::move(value)); }

  // -- Object access -------------------------------------------------------
  /// Member lookup; nullptr when absent (or not an object).
  const Json* Find(std::string_view key) const;
  bool Has(std::string_view key) const { return Find(key) != nullptr; }
  /// Sets (or replaces) an object member, preserving first-set order.
  void Set(std::string key, Json value);
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Recursively re-orders every object's members into sorted key order.
  /// Exporters call this before Dump so emitted artifacts are
  /// byte-identical regardless of member insertion order.
  void SortKeysRecursive();

  /// Serializes; indent < 0 emits compact single-line JSON, otherwise
  /// pretty-prints with that many spaces per level.
  std::string Dump(int indent = -1) const;

  /// Strict-enough recursive-descent parse of a complete JSON document.
  /// Returns false and fills `error` (with a byte offset) on failure.
  static bool Parse(std::string_view text, Json* out, std::string* error);

  /// Quotes and escapes `s` as a JSON string literal (including quotes).
  static std::string Quote(std::string_view s);

 private:
  explicit Json(Type t) : type_(t) {}
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;                            // kArray
  std::vector<std::pair<std::string, Json>> members_;  // kObject, ordered
  std::map<std::string, size_t, std::less<>> index_;   // key -> members_ slot
};

}  // namespace fela::common

#endif  // FELA_COMMON_JSON_H_
