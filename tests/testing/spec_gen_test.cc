// SpecGen: every generated spec is valid, generation is deterministic,
// the kind space is actually covered, and specs survive the JSON
// round-trip that makes shrunk repros replayable.

#include "testing/spec_gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>

#include "common/json.h"
#include "core/fela_config.h"

namespace fela::testing {
namespace {

TEST(SpecGenTest, SameSeedSameSpec) {
  for (uint64_t seed : {1ull, 7ull, 42ull, 123456789ull}) {
    const FuzzSpec a = GenerateSpec(seed);
    const FuzzSpec b = GenerateSpec(seed);
    EXPECT_EQ(SpecToJson(a).Dump(0), SpecToJson(b).Dump(0)) << "seed " << seed;
  }
}

TEST(SpecGenTest, GeneratedSpecsAreValid) {
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    const FuzzSpec s = GenerateSpec(seed);
    SCOPED_TRACE(SpecLabel(s));
    EXPECT_GE(s.num_workers, 2);
    EXPECT_GT(s.total_batch, 0.0);
    EXPECT_GE(s.iterations, 1);
    EXPECT_LE(s.iterations, 10);
    // Victims stay on the cluster. Worker 0 (the initial TS host) is a
    // legal crash target — failover promotes a standby, so specs no
    // longer spare it.
    EXPECT_GE(s.straggler_victim, 0);
    EXPECT_LT(s.straggler_victim, s.num_workers);
    EXPECT_GE(s.crash_worker, 0);
    EXPECT_LT(s.crash_worker, s.num_workers);
    EXPECT_GE(s.partition_size, 1);
    EXPECT_LT(s.partition_size, s.num_workers);
    EXPECT_GE(s.gray_worker, 0);
    EXPECT_LT(s.gray_worker, s.num_workers);
    EXPECT_GT(s.gray_factor, 1.0);
    // The Fela config must pass the engine's own validation even when
    // the spec drives a baseline (the shrinker may flip engines).
    core::FelaConfig cfg = core::FelaConfig::Defaults(NumSubModelsFor(s),
                                                      s.num_workers);
    if (!s.fela_weights.empty()) cfg.weights = s.fela_weights;
    if (s.fela_ctd_subset > 0) cfg.ctd_subset_size = s.fela_ctd_subset;
    cfg.ads_enabled = s.fela_ads;
    cfg.hf_enabled = s.fela_hf;
    EXPECT_TRUE(
        core::ValidateConfig(cfg, NumSubModelsFor(s), s.num_workers).ok());
  }
}

TEST(SpecGenTest, KindSpaceIsCovered) {
  std::set<EngineKind> engines;
  std::set<ModelKind> models;
  std::set<StragglerKind> stragglers;
  std::set<FaultKind> faults;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    const FuzzSpec s = GenerateSpec(seed);
    engines.insert(s.engine);
    models.insert(s.model);
    stragglers.insert(s.straggler);
    faults.insert(s.fault);
  }
  EXPECT_EQ(engines.size(), 6u);  // all six engines get fuzzed
  EXPECT_EQ(models.size(), 2u);
  EXPECT_EQ(stragglers.size(), 6u);
  EXPECT_EQ(faults.size(), static_cast<size_t>(kNumFaultKinds));
}

TEST(SpecGenTest, JsonRoundTripIsExact) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const FuzzSpec original = GenerateSpec(seed);
    const std::string dumped = SpecToJson(original).Dump(1);
    common::Json parsed;
    std::string error;
    ASSERT_TRUE(common::Json::Parse(dumped, &parsed, &error)) << error;
    FuzzSpec restored;
    ASSERT_TRUE(SpecFromJson(parsed, &restored, &error)) << error;
    EXPECT_EQ(SpecToJson(restored).Dump(1), dumped) << "seed " << seed;
  }
}

TEST(SpecGenTest, FullWidthSeedsSurviveJson) {
  // Seeds use all 64 bits; doubles would silently truncate them.
  FuzzSpec s = GenerateSpec(1);
  s.seed = 0xFFFFFFFFFFFFFFFFull;
  s.straggler_seed = 0xDEADBEEFCAFEF00Dull;
  s.fault_seed = (1ull << 63) + 12345;
  FuzzSpec restored;
  std::string error;
  ASSERT_TRUE(SpecFromJson(SpecToJson(s), &restored, &error)) << error;
  EXPECT_EQ(restored.seed, s.seed);
  EXPECT_EQ(restored.straggler_seed, s.straggler_seed);
  EXPECT_EQ(restored.fault_seed, s.fault_seed);
}

TEST(SpecGenTest, SpecFromJsonRejectsBadDocuments) {
  FuzzSpec out;
  std::string error;
  EXPECT_FALSE(SpecFromJson(common::Json::Array(), &out, &error));

  common::Json missing = SpecToJson(GenerateSpec(1));
  missing.Set("engine", common::Json());  // null out a required field
  EXPECT_FALSE(SpecFromJson(missing, &out, &error));

  common::Json unknown = SpecToJson(GenerateSpec(1));
  unknown.Set("engine", "warp-drive");
  EXPECT_FALSE(SpecFromJson(unknown, &out, &error));
  EXPECT_NE(error.find("warp-drive"), std::string::npos);
}

TEST(SpecGenTest, ClampToClusterRestoresValidity) {
  FuzzSpec s = GenerateSpec(1);
  s.num_workers = 16;
  s.fela_weights = {1, 8, 8};
  s.fela_ctd_subset = 16;
  s.crash_worker = 15;
  s.straggler_victim = 15;

  s.num_workers = 2;  // what the shrinker does
  ClampToCluster(&s);
  for (int w : s.fela_weights) EXPECT_LE(w, 2);
  EXPECT_GE(s.fela_ctd_subset, 1);
  EXPECT_LE(s.fela_ctd_subset, 2);
  EXPECT_EQ(s.crash_worker, 1);
  EXPECT_LE(s.straggler_victim, 1);
  EXPECT_TRUE(core::ValidateConfig(
                  [&] {
                    core::FelaConfig cfg = core::FelaConfig::Defaults(
                        NumSubModelsFor(s), s.num_workers);
                    cfg.weights = s.fela_weights;
                    cfg.ctd_subset_size = s.fela_ctd_subset;
                    return cfg;
                  }(),
                  NumSubModelsFor(s), s.num_workers)
                  .ok());
}

TEST(SpecGenTest, ShardAxisIsCoveredAndValid) {
  bool saw_flat = false, saw_racked = false;
  bool saw_auto = false, saw_one = false, saw_rack_count = false,
       saw_non_divisor = false;
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    const FuzzSpec s = GenerateSpec(seed);
    SCOPED_TRACE(SpecLabel(s));
    // Validity: racks smaller than the cluster, shard counts the config
    // validator accepts.
    EXPECT_GE(s.rack_size, 0);
    EXPECT_LT(s.rack_size, std::max(1, s.num_workers));
    EXPECT_GE(s.fela_ts_shards, 0);
    EXPECT_LE(s.fela_ts_shards, s.num_workers);
    if (s.rack_size == 0) saw_flat = true;
    if (s.rack_size > 1) saw_racked = true;
    if (s.fela_ts_shards == 0) saw_auto = true;
    if (s.fela_ts_shards == 1) saw_one = true;
    if (s.rack_size > 0 &&
        s.fela_ts_shards ==
            (s.num_workers + s.rack_size - 1) / s.rack_size) {
      saw_rack_count = true;
    }
    if (s.fela_ts_shards > 1 && s.num_workers % s.fela_ts_shards != 0) {
      saw_non_divisor = true;
    }
  }
  EXPECT_TRUE(saw_flat);
  EXPECT_TRUE(saw_racked);
  EXPECT_TRUE(saw_auto);
  EXPECT_TRUE(saw_one);
  EXPECT_TRUE(saw_rack_count);
  EXPECT_TRUE(saw_non_divisor);
}

TEST(SpecGenTest, PreShardReproFilesStillParse) {
  // A repro written before the sharding axis existed has neither
  // rack_size nor fela_ts_shards; both must default to 0 (flat,
  // unsharded) rather than failing the parse.
  FuzzSpec spec = GenerateSpec(7);
  spec.rack_size = 4;
  spec.fela_ts_shards = 2;
  std::string text = SpecToJson(spec).Dump(1);
  for (const char* key : {"\"rack_size\"", "\"fela_ts_shards\""}) {
    const size_t pos = text.find(key);
    ASSERT_NE(pos, std::string::npos) << key;
    const size_t start = text.rfind('\n', pos);
    const size_t end = text.find('\n', pos);
    ASSERT_NE(start, std::string::npos);
    ASSERT_NE(end, std::string::npos);
    text.erase(start, end - start);
  }
  common::Json parsed;
  std::string error;
  ASSERT_TRUE(common::Json::Parse(text, &parsed, &error)) << error;
  FuzzSpec out;
  ASSERT_TRUE(SpecFromJson(parsed, &out, &error)) << error;
  EXPECT_EQ(out.rack_size, 0);
  EXPECT_EQ(out.fela_ts_shards, 0);
  // Everything else survived the trip untouched.
  EXPECT_EQ(out.seed, spec.seed);
  EXPECT_EQ(out.num_workers, spec.num_workers);
}

TEST(SpecGenTest, ClampToClusterBoundsShardAxis) {
  FuzzSpec s = GenerateSpec(1);
  s.num_workers = 16;
  s.rack_size = 8;
  s.fela_ts_shards = 12;
  s.num_workers = 4;  // what the shrinker does
  ClampToCluster(&s);
  EXPECT_EQ(s.rack_size, 0);  // 8 >= 4: degenerate, collapse to flat
  EXPECT_LE(s.fela_ts_shards, 4);
  EXPECT_GE(s.fela_ts_shards, 0);
}

}  // namespace
}  // namespace fela::testing
