#ifndef FELA_SIM_EVENT_QUEUE_H_
#define FELA_SIM_EVENT_QUEUE_H_

#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.h"

namespace fela::sim {

/// Time-ordered queue of callbacks. Ties are broken by insertion sequence
/// number so simulation runs are fully deterministic.
class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Enqueues `fn` to fire at absolute time `when`. Returns a handle.
  EventId Push(SimTime when, std::function<void()> fn);

  /// Cancels a pending event; returns false if it already fired or the
  /// handle is unknown.
  bool Cancel(EventId id);

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// Time of the earliest pending event. Requires !empty().
  SimTime PeekTime() const;

  /// Pops and returns the earliest event's (time, fn). Requires !empty().
  std::pair<SimTime, std::function<void()>> Pop();

 private:
  struct Event {
    SimTime when;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      // fela-lint: allow(float-eq) exact compare is the point: only
      // bit-identical times fall through to the insertion-order tie-break.
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  /// Drops cancelled events from the head of the heap.
  void SkipCancelled();

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> pending_;  // pushed, not yet fired or cancelled
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
  size_t size_ = 0;  // live (non-cancelled) events
};

}  // namespace fela::sim

#endif  // FELA_SIM_EVENT_QUEUE_H_
