file(REMOVE_RECURSE
  "libfela_core.a"
)
