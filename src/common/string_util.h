#ifndef FELA_COMMON_STRING_UTIL_H_
#define FELA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace fela::common {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins elements with `sep`, using operator<< for stringification.
template <typename Container>
std::string Join(const Container& parts, std::string_view sep);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Implementation details only below here.

namespace internal_string {
std::string ToDisplayString(const std::string& v);
std::string ToDisplayString(std::string_view v);
std::string ToDisplayString(const char* v);
template <typename T>
std::string ToDisplayString(const T& v);
}  // namespace internal_string

template <typename Container>
std::string Join(const Container& parts, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out += sep;
    first = false;
    out += internal_string::ToDisplayString(p);
  }
  return out;
}

namespace internal_string {
template <typename T>
std::string ToDisplayString(const T& v) {
  return std::to_string(v);
}
}  // namespace internal_string

}  // namespace fela::common

#endif  // FELA_COMMON_STRING_UTIL_H_
