// fela-lint fixture: one violation per rule, every one suppressed with
// `fela-lint: allow(<rule>): <why>` — the whole file must lint clean, proving
// both same-line and preceding-comment-line suppression placement.
#include <unordered_set>

namespace fela::fixture {

struct Sim {
  void Schedule(double delay, int payload);
};

common::Status Tidy();

// fela-lint: allow(wall-clock): fixture: suppression on preceding line
double Wall() { return clock(); }

int Draw() {
  return rand();  // fela-lint: allow(unseeded-rng): fixture: same line
}

class Quiet {
 public:
  void EmitAll() {
    // fela-lint: allow(unordered-iter): fixture
    for (int id : held_) Emit(id);
  }

 private:
  void Emit(int id);
  std::unordered_set<int> held_;
};

void Caller() {
  Tidy();  // fela-lint: allow(discarded-status): fixture
}

bool SameTime(double a, double b) {
  return a == b;  // fela-lint: allow(float-eq): fixture
}

void Silent(Sim* sim_) {
  // fela-lint: allow(untraced-event): fixture
  sim_->Schedule(0.0, 0);
}

void Hush(Sim* trace_) {
  // fela-lint: allow(untokenized-trace): fixture: genuinely dynamic text
  FELA_TRACE(trace_, 0.0, 0, 0, "raw detail");
}

}  // namespace fela::fixture
