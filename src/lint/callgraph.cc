#include "lint/callgraph.h"

#include <algorithm>
#include <cctype>
#include <deque>

namespace fela::lint {
namespace {

/// One lexical token: an identifier/number, or a punctuator ("::" and
/// "->" kept whole, everything else single-char).
struct Tok {
  std::string text;
  int line = 0;  // 1-based
};

bool IsIdent(const std::string& t) {
  return !t.empty() &&
         (std::isalpha(static_cast<unsigned char>(t[0])) != 0 || t[0] == '_');
}

bool IsKeyword(const std::string& t) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",    "while",   "switch",  "catch",    "return",
      "sizeof", "alignof", "new",    "delete",  "throw",    "do",
      "else",   "case",   "default", "operator", "decltype", "static_assert",
      "alignas", "defined",
  };
  return kKeywords.count(t) > 0;
}

/// Tokenizes the blanked code lines. Preprocessor directives (and their
/// backslash continuations) are skipped entirely so macro bodies with
/// braces cannot corrupt scope tracking.
std::vector<Tok> Tokenize(const FileText& text) {
  std::vector<Tok> out;
  bool continuation = false;
  for (size_t li = 0; li < text.code.size(); ++li) {
    const std::string& line = text.code[li];
    const std::string trimmed = Trim(line);
    const bool preproc = continuation || (!trimmed.empty() && trimmed[0] == '#');
    continuation = preproc && !trimmed.empty() && trimmed.back() == '\\';
    if (preproc) continue;
    const int line_no = static_cast<int>(li) + 1;
    for (size_t i = 0; i < line.size();) {
      const char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (IsIdentChar(c)) {
        size_t b = i;
        while (i < line.size() && IsIdentChar(line[i])) ++i;
        out.push_back(Tok{line.substr(b, i - b), line_no});
        continue;
      }
      if (c == '"' || c == '\'') {
        // Blanked literal: contents are spaces, closing quote survives.
        const size_t close = line.find(c, i + 1);
        i = close == std::string::npos ? line.size() : close + 1;
        out.push_back(Tok{std::string(2, c), line_no});
        continue;
      }
      if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        out.push_back(Tok{"::", line_no});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < line.size() && line[i + 1] == '>') {
        out.push_back(Tok{"->", line_no});
        i += 2;
        continue;
      }
      out.push_back(Tok{std::string(1, c), line_no});
      ++i;
    }
  }
  return out;
}

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kBlock } kind = kBlock;
  std::string name;
  size_t func = SymbolIndex::npos;
  bool keep_stmt = false;  // '{' was an initializer, statement continues
};

/// Index just past a leading `template < ... >` prefix (possibly
/// repeated), so `template <class T> class Foo {` classifies on `class
/// Foo {` and the parameter's `class` never looks like a class key.
size_t SkipTemplatePrefix(const std::vector<Tok>& stmt) {
  size_t i = 0;
  while (i < stmt.size() && stmt[i].text == "template") {
    size_t j = i + 1;
    if (j >= stmt.size() || stmt[j].text != "<") break;
    int depth = 0;
    for (; j < stmt.size(); ++j) {
      if (stmt[j].text == "<") ++depth;
      if (stmt[j].text == ">") {
        --depth;
        if (depth == 0) {
          ++j;
          break;
        }
      }
    }
    i = j;
  }
  return i;
}

bool StmtContains(const std::vector<Tok>& stmt, const char* text) {
  return std::any_of(stmt.begin(), stmt.end(),
                     [&](const Tok& t) { return t.text == text; });
}

}  // namespace

void SymbolIndex::IndexFile(const std::string& path, const FileText& text) {
  const std::vector<Tok> tokens = Tokenize(text);
  std::vector<Scope> stack;
  std::vector<Tok> stmt;

  auto enclosing_function = [&]() -> size_t {
    for (size_t i = stack.size(); i > 0; --i) {
      if (stack[i - 1].kind == Scope::kFunction) return stack[i - 1].func;
      if (stack[i - 1].kind == Scope::kNamespace ||
          stack[i - 1].kind == Scope::kClass) {
        break;
      }
    }
    return npos;
  };
  auto enclosing_class = [&]() -> std::string {
    for (size_t i = stack.size(); i > 0; --i) {
      if (stack[i - 1].kind == Scope::kClass) return stack[i - 1].name;
    }
    return std::string();
  };
  auto at_class_scope = [&]() {
    return !stack.empty() && stack.back().kind == Scope::kClass;
  };
  auto at_value_scope = [&]() {  // function body or nested block
    return enclosing_function() != npos;
  };

  // Classifies the statement that ends at an opening brace and pushes
  // the matching scope.
  auto open_brace = [&](int line) {
    if (at_value_scope()) {
      // Inside a function everything is a block; keep the statement
      // alive across initializer braces (`static std::vector v = {...}`)
      // so the trailing ';' still sees the declaration.
      stack.push_back(Scope{Scope::kBlock, "", npos,
                            !stmt.empty() && StmtContains(stmt, "=")});
      if (!stack.back().keep_stmt) stmt.clear();
      return;
    }
    const size_t base = SkipTemplatePrefix(stmt);
    if (base >= stmt.size()) {
      stack.push_back(Scope{Scope::kBlock, "", npos, false});
      stmt.clear();
      return;
    }
    const std::string& first = stmt[base].text;
    if (first == "namespace") {
      std::string name;
      for (size_t i = base + 1; i < stmt.size(); ++i) {
        if (IsIdent(stmt[i].text)) name = stmt[i].text;
      }
      stack.push_back(Scope{Scope::kNamespace, name, npos, false});
      stmt.clear();
      return;
    }
    if (first == "class" || first == "struct" || first == "union" ||
        first == "enum") {
      std::string name;
      for (size_t i = base + 1; i < stmt.size(); ++i) {
        const std::string& t = stmt[i].text;
        if (t == ":") break;  // base clause / enum underlying type
        if (IsIdent(t) && t != "class" && t != "struct" && t != "final" &&
            t != "alignas" && t != "FELA_THREAD_HOSTILE") {
          name = t;
          break;
        }
      }
      if (StmtContains(stmt, "FELA_THREAD_HOSTILE") && !name.empty()) {
        thread_hostile_types_.insert(name);
      }
      stack.push_back(Scope{Scope::kClass, name, npos, false});
      stmt.clear();
      return;
    }
    // Function candidate: first top-level '(' preceded by a plain
    // identifier, and no '=' before it (that would be an initializer).
    size_t open = stmt.size();
    int depth = 0;
    for (size_t i = base; i < stmt.size(); ++i) {
      const std::string& t = stmt[i].text;
      if (t == "=" && depth == 0) break;
      if (t == "(") {
        if (depth == 0 && open == stmt.size()) open = i;
        ++depth;
      }
      if (t == ")") --depth;
    }
    if (open == stmt.size() || open == base) {
      // No call-ish parens (brace-init global, `extern "C"`, ...): a
      // plain block; keep the statement so a trailing ';' can still
      // classify a brace-initialized declaration.
      stack.push_back(Scope{Scope::kBlock, "", npos, !stmt.empty()});
      return;
    }
    const Tok& name_tok = stmt[open - 1];
    if (!IsIdent(name_tok.text) || IsKeyword(name_tok.text)) {
      stack.push_back(Scope{Scope::kBlock, "", npos, false});
      stmt.clear();
      return;
    }
    // A ctor init list can brace-init members (`: a_{0} {`): that '{'
    // directly follows an identifier — the real body brace never does.
    bool saw_colon = false;
    {
      int d = 0;
      for (size_t i = open; i < stmt.size(); ++i) {
        const std::string& t = stmt[i].text;
        if (t == "(") ++d;
        if (t == ")") --d;
        if (t == ":" && d == 0 && i > open) saw_colon = true;
      }
    }
    if (saw_colon && IsIdent(stmt.back().text)) {
      stack.push_back(Scope{Scope::kBlock, "", npos, true});
      return;
    }
    FunctionDef def;
    def.name = name_tok.text;
    if (open >= 2 && stmt[open - 2].text == "~") def.name = "~" + def.name;
    const size_t q = open >= 2 && stmt[open - 2].text == "~" ? open - 3
                                                            : open - 2;
    if (q < stmt.size() && q + 1 >= 1 && stmt[q].text == "::" && q >= 1 &&
        IsIdent(stmt[q - 1].text)) {
      def.class_name = stmt[q - 1].text;
    } else {
      def.class_name = enclosing_class();
    }
    def.file = path;
    def.line = stmt[base].line;
    def.body_begin = line;
    for (size_t i = open; i + 1 < stmt.size(); ++i) {
      if (stmt[i].text != "FELA_REQUIRES" || stmt[i + 1].text != "(") continue;
      for (size_t j = i + 2; j < stmt.size() && stmt[j].text != ")"; ++j) {
        if (IsIdent(stmt[j].text)) def.requires_locks.push_back(stmt[j].text);
      }
    }
    functions_.push_back(std::move(def));
    stack.push_back(
        Scope{Scope::kFunction, functions_.back().name, functions_.size() - 1,
              false});
    stmt.clear();
  };

  auto end_statement = [&] {
    if (stmt.empty()) return;
    const size_t fn = enclosing_function();
    if (fn != npos) {
      // Mutable function-local static?
      if (stmt[0].text == "static" && !StmtContains(stmt, "const") &&
          !StmtContains(stmt, "constexpr")) {
        functions_[fn].mutable_static_lines.push_back(stmt[0].line);
      }
      stmt.clear();
      return;
    }
    if (at_class_scope()) {
      // `member FELA_GUARDED_BY(mutex)` annotation?
      for (size_t i = 1; i + 1 < stmt.size(); ++i) {
        if (stmt[i].text != "FELA_GUARDED_BY" || stmt[i + 1].text != "(") {
          continue;
        }
        if (!IsIdent(stmt[i - 1].text)) continue;
        std::string mutex;
        for (size_t j = i + 2; j < stmt.size() && stmt[j].text != ")"; ++j) {
          if (IsIdent(stmt[j].text)) {
            mutex = stmt[j].text;
            break;
          }
        }
        if (!mutex.empty()) {
          guarded_members_.push_back(GuardedMember{
              stmt[i - 1].text, mutex, enclosing_class(), path,
              stmt[i - 1].line});
        }
      }
      stmt.clear();
      return;
    }
    // Namespace scope: mutable globals. Textual detection is restricted
    // to what it can get right — the codebase's `g_*` naming idiom, and
    // paren-free declarations of FELA_THREAD_HOSTILE types (a parenful
    // one is indistinguishable from a function declaration).
    const std::string& first = stmt[0].text;
    const bool decl_like = first != "using" && first != "typedef" &&
                           first != "extern" && first != "friend" &&
                           first != "template" && first != "static_assert" &&
                           first != "class" && first != "struct" &&
                           first != "enum" && first != "namespace" &&
                           first != "union" && first != "return";
    if (decl_like && !StmtContains(stmt, "const") &&
        !StmtContains(stmt, "constexpr")) {
      const bool hostile = std::any_of(
          stmt.begin(), stmt.end(), [&](const Tok& t) {
            return thread_hostile_types_.count(t.text) > 0;
          });
      std::string name;
      int line_no = 0;
      for (const Tok& t : stmt) {
        if (IsIdent(t.text) && t.text.rfind("g_", 0) == 0) {
          name = t.text;
          line_no = t.line;
          break;
        }
      }
      if (name.empty() && hostile && !StmtContains(stmt, "(")) {
        // Last identifier is the declared name (`TraceRecorder shared;`).
        for (const Tok& t : stmt) {
          if (IsIdent(t.text) && thread_hostile_types_.count(t.text) == 0 &&
              t.text != "std" && t.text != "mutable" && t.text != "static") {
            name = t.text;
            line_no = t.line;
          }
        }
      }
      if (!name.empty()) {
        mutable_globals_.push_back(GlobalDef{name, path, line_no, hostile});
      }
    }
    stmt.clear();
  };

  for (const Tok& t : tokens) {
    if (t.text == "{") {
      open_brace(t.line);
      continue;
    }
    if (t.text == "}") {
      if (!stack.empty()) {
        const Scope done = stack.back();
        stack.pop_back();
        if (done.kind == Scope::kFunction) {
          functions_[done.func].body_end = t.line;
        }
        if (!done.keep_stmt) stmt.clear();
      }
      continue;
    }
    if (t.text == ";") {
      end_statement();
      continue;
    }
    if (t.text == "(") {
      const size_t fn = enclosing_function();
      if (fn != npos && !stmt.empty() && IsIdent(stmt.back().text) &&
          !IsKeyword(stmt.back().text)) {
        functions_[fn].calls.push_back(
            CallSite{stmt.back().text, stmt.back().line});
      }
    }
    stmt.push_back(t);
  }
  // An unterminated function (unbalanced braces) keeps a best-effort
  // body_end at the last line so range queries stay sane.
  for (FunctionDef& f : functions_) {
    if (f.body_end == 0) f.body_end = static_cast<int>(text.code.size());
  }
}

void SymbolIndex::Finish() {
  by_name_.clear();
  for (size_t i = 0; i < functions_.size(); ++i) {
    by_name_[functions_[i].name].push_back(i);
  }
}

const std::vector<size_t>& SymbolIndex::Resolve(const std::string& name) const {
  static const std::vector<size_t> kEmpty;
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kEmpty : it->second;
}

size_t SymbolIndex::FunctionAt(const std::string& file, int line) const {
  size_t best = npos;
  for (size_t i = 0; i < functions_.size(); ++i) {
    const FunctionDef& f = functions_[i];
    if (f.file != file || line < f.line || line > f.body_end) continue;
    if (best == npos || f.line >= functions_[best].line) best = i;
  }
  return best;
}

std::map<size_t, Taint> PropagateTaint(
    const SymbolIndex& index, const std::vector<TaintSource>& sources) {
  // Reverse adjacency: callee -> callers, via unqualified-name binding.
  std::map<size_t, std::set<size_t>> callers;
  const auto& functions = index.functions();
  for (size_t i = 0; i < functions.size(); ++i) {
    for (const CallSite& call : functions[i].calls) {
      for (size_t j : index.Resolve(call.callee)) {
        if (j != i) callers[j].insert(i);
      }
    }
  }
  std::map<size_t, Taint> taint;
  std::deque<size_t> queue;
  for (const TaintSource& s : sources) {
    if (taint.count(s.function) > 0) continue;
    taint[s.function] = Taint{s.label, s.file, s.line, {s.function}};
    queue.push_back(s.function);
  }
  while (!queue.empty()) {
    const size_t f = queue.front();
    queue.pop_front();
    const Taint& t = taint[f];
    const auto it = callers.find(f);
    if (it == callers.end()) continue;
    for (size_t caller : it->second) {
      if (taint.count(caller) > 0) continue;
      Taint propagated{t.label, t.file, t.line, {caller}};
      propagated.chain.insert(propagated.chain.end(), t.chain.begin(),
                              t.chain.end());
      taint[caller] = std::move(propagated);
      queue.push_back(caller);
    }
  }
  return taint;
}

std::map<size_t, std::vector<size_t>> ReachableFrom(
    const SymbolIndex& index, const std::vector<std::string>& roots) {
  std::map<size_t, std::vector<size_t>> reached;
  std::deque<size_t> queue;
  for (const std::string& root : roots) {
    for (size_t i : index.Resolve(root)) {
      if (reached.count(i) > 0) continue;
      reached[i] = {i};
      queue.push_back(i);
    }
  }
  const auto& functions = index.functions();
  while (!queue.empty()) {
    const size_t f = queue.front();
    queue.pop_front();
    const std::vector<size_t> chain = reached[f];
    for (const CallSite& call : functions[f].calls) {
      for (size_t j : index.Resolve(call.callee)) {
        if (reached.count(j) > 0) continue;
        std::vector<size_t> next = chain;
        next.push_back(j);
        reached[j] = std::move(next);
        queue.push_back(j);
      }
    }
  }
  return reached;
}

}  // namespace fela::lint
