// Scale-out regression suite for the hierarchical fabric + SoA worker
// state: (1) every engine's transcript stays byte-identical run-to-run
// under the composite chaos spec (TS crash + partition + gray latency +
// lossy control plane) — the restructured per-worker hot state must not
// perturb event order; (2) a 1k-worker racked run conserves tokens and
// samples and produces attribution fractions that sum to one; (3) sync
// transfer counts grow linearly, not quadratically, with worker count.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/fela_engine.h"
#include "model/partition.h"
#include "model/profile.h"
#include "model/zoo.h"
#include "runtime/determinism.h"
#include "sim/faults.h"
#include "sim/topology.h"
#include "suite/suite.h"

namespace fela::runtime {
namespace {

ExperimentSpec ChaosSpec() {
  ExperimentSpec spec;
  spec.total_batch = 256;
  spec.iterations = 4;
  spec.num_workers = 8;
  return spec;
}

/// The control-plane chaos bench's hardest determinism case, plus a
/// seeded lossy control plane so dropped and duplicated messages (the
/// rewritten SendControl retransmit path) are in the transcript too.
FaultFactory CompositeChaos() {
  return [](int n) -> std::unique_ptr<sim::FaultSchedule> {
    std::vector<std::unique_ptr<sim::FaultSchedule>> parts;
    parts.push_back(std::make_unique<sim::ScriptedCrashes>(
        std::vector<sim::CrashEvent>{{/*worker=*/0, 2.0, 12.0}}));
    sim::PartitionEvent ev;
    ev.start = 4.0;
    ev.end = 8.0;
    for (int w = 0; w < n / 2; ++w) ev.side_a.push_back(w);
    parts.push_back(std::make_unique<sim::NetworkPartition>(
        std::vector<sim::PartitionEvent>{ev}));
    parts.push_back(std::make_unique<sim::GrayFailures>(
        std::vector<sim::GrayEvent>{{/*worker=*/3, 5.0, 30.0, 4.0}}));
    parts.push_back(std::make_unique<sim::LossyControlPlane>(
        /*drop_prob=*/0.05, /*dup_prob=*/0.05, /*seed=*/11));
    return std::make_unique<sim::CompositeFaults>(std::move(parts));
  };
}

void ExpectChaosDeterministic(const EngineFactory& factory,
                              ExperimentSpec spec = ChaosSpec()) {
  const DeterminismReport report = VerifyDeterminism(
      spec, factory, NoStragglerFactory(), CompositeChaos());
  EXPECT_TRUE(report.deterministic) << report.ToString();
  EXPECT_NE(report.hash_first, 0u);
}

int Vgg19Levels() {
  return static_cast<int>(
      model::BinPartitioner()
          .Partition(model::zoo::Vgg19(), model::ProfileRepository::Default())
          .size());
}

TEST(ScaleChaosDeterminism, FelaEngine) {
  ExpectChaosDeterministic(suite::FelaFactory(
      model::zoo::Vgg19(), core::FelaConfig::Defaults(Vgg19Levels(), 8)));
}

TEST(ScaleChaosDeterminism, DpEngine) {
  ExpectChaosDeterministic(suite::DpFactory(model::zoo::Vgg19()));
}

TEST(ScaleChaosDeterminism, PsDpEngine) {
  ExpectChaosDeterministic(suite::PsDpFactory(model::zoo::Vgg19()));
}

TEST(ScaleChaosDeterminism, MpEngine) {
  ExpectChaosDeterministic(suite::MpFactory(model::zoo::Vgg19()));
}

TEST(ScaleChaosDeterminism, HpEngine) {
  ExpectChaosDeterministic(suite::HpFactory(model::zoo::GoogLeNet()));
}

TEST(ScaleChaosDeterminism, ElasticMpEngine) {
  ExpectChaosDeterministic(suite::ElasticMpFactory(model::zoo::Vgg19()));
}

TEST(ScaleChaosDeterminism, FelaOnRackedTopology) {
  // The hierarchical collective and rack channels must replay
  // byte-identically under the same chaos.
  ExperimentSpec spec = ChaosSpec();
  spec.calibration.topology = sim::Topology::Racked(4, 5e9, 5e-6);
  ExpectChaosDeterministic(
      suite::FelaFactory(model::zoo::Vgg19(),
                         core::FelaConfig::Defaults(Vgg19Levels(), 8)),
      spec);
}

// The 1k-worker smoke: a racked Fela run at the bench's scale point must
// finish with a clean token ledger, exact sample conservation, and
// attribution fractions that sum to one on every worker.
TEST(ThousandWorkerSmoke, TokenLedgerSamplesAndAttribution) {
  const int kWorkers = 1024;
  const int kIterations = 2;
  const int levels = Vgg19Levels();
  ExperimentSpec spec;
  spec.total_batch = 16.0 * kWorkers;
  spec.iterations = kIterations;
  spec.num_workers = kWorkers;
  spec.calibration.topology = sim::Topology::Racked(32, 5e9, 5e-6);
  spec.observe = true;
  bool probed = false;
  spec.post_run_probe = [&](const Engine& engine, Cluster& cluster) {
    probed = true;
    const auto& fela = dynamic_cast<const core::FelaEngine&>(engine);
    EXPECT_TRUE(fela.token_server().CheckInvariants().empty());
    EXPECT_TRUE(fela.CheckFailoverInvariants().empty());
    double samples = 0.0;
    for (int w = 0; w < kWorkers; ++w) {
      samples += fela.worker(w).samples_trained();
    }
    EXPECT_NEAR(samples, spec.total_batch * levels * kIterations,
                spec.total_batch * 1e-9);
    // The racked fabric actually routed cross-rack traffic.
    EXPECT_GT(cluster.fabric().cross_rack_transfer_count(), 0u);
  };
  const ExperimentResult result = RunExperiment(
      spec,
      suite::FelaFactory(model::zoo::Vgg19(),
                         core::FelaConfig::Defaults(levels, kWorkers)),
      NoStragglerFactory());
  EXPECT_TRUE(probed);
  EXPECT_FALSE(result.stats.stalled);
  EXPECT_EQ(result.stats.iteration_count(), kIterations);
  ASSERT_TRUE(result.observed);
  ASSERT_EQ(static_cast<int>(result.attribution.workers.size()), kWorkers);
  for (const auto& w : result.attribution.workers) {
    if (w.run.total <= 0.0) continue;
    double sum = 0.0;
    for (const double s : w.run.seconds) sum += s;
    EXPECT_NEAR(sum / w.run.total, 1.0, 1e-9);
  }
  const obs::PhaseBreakdown cluster_wide = result.attribution.Cluster();
  double cluster_sum = 0.0;
  for (const double s : cluster_wide.seconds) cluster_sum += s;
  EXPECT_NEAR(cluster_sum / cluster_wide.total, 1.0, 1e-9);
}

// Linearity regression at engine level: quadrupling the workers on the
// racked fabric must not grow per-iteration sync transfers by ~16x (the
// quadratic ring signature); the hierarchical collective keeps it ~4x.
TEST(ScaleLinearity, SyncTransfersGrowLinearlyWithWorkers) {
  const int levels = Vgg19Levels();
  auto transfers_at = [&](int workers) {
    ExperimentSpec spec;
    spec.total_batch = 16.0 * workers;
    spec.iterations = 2;
    spec.num_workers = workers;
    spec.calibration.topology = sim::Topology::Racked(32, 5e9, 5e-6);
    uint64_t transfers = 0;
    spec.post_run_probe = [&transfers](const Engine&, Cluster& cluster) {
      transfers = cluster.fabric().data_transfer_count();
    };
    const ExperimentResult result = RunExperiment(
        spec,
        suite::FelaFactory(model::zoo::Vgg19(),
                           core::FelaConfig::Defaults(levels, workers)),
        NoStragglerFactory());
    EXPECT_FALSE(result.stats.stalled);
    return transfers;
  };
  const uint64_t at64 = transfers_at(64);
  const uint64_t at256 = transfers_at(256);
  ASSERT_GT(at64, 0u);
  // Linear scaling predicts 4x; leave headroom for per-rack constants.
  EXPECT_LT(at256, at64 * 8u);
  EXPECT_GT(at256, at64);
}

}  // namespace
}  // namespace fela::runtime
