#include "core/ssp_extension.h"

// Header-only logic; this translation unit anchors the target.
