// fela-lint fixture: the untraced-event rule must fire on line 11 (the
// Schedule call in a FELA_TRACE-free function) and nowhere else.
namespace fela::fixture {

struct Sim {
  void Schedule(double delay, int payload);
};

void Kick(Sim* sim_) {
  int payload = 7;
  sim_->Schedule(0.0, payload);
}

void TracedKick(Sim* sim_) {
  FELA_TRACE(trace_, 0.0, 0, kind, FELA_TOK("kick"));
  sim_->Schedule(0.0, 0);
}

}  // namespace fela::fixture
