#include "core/token.h"

#include <gtest/gtest.h>

namespace fela::core {
namespace {

TEST(TokenTest, DefaultsAreInvalid) {
  Token t;
  EXPECT_EQ(t.id, kInvalidTokenId);
  EXPECT_EQ(t.level, 0);
  EXPECT_TRUE(t.deps.empty());
  EXPECT_EQ(t.sample_home, -1);
}

TEST(TokenTest, DepIdsExtractsIds) {
  Token t;
  t.deps = {{3, 16.0}, {7, 16.0}};
  EXPECT_EQ(t.DepIds(), (std::vector<TokenId>{3, 7}));
}

TEST(TokenTest, ToStringUsesPaperNotation) {
  Token t;
  t.id = 8;
  t.level = 1;  // T-2 in paper notation
  t.iteration = 0;
  t.batch = 32;
  t.deps = {{0, 16.0}, {1, 16.0}};
  const std::string s = t.ToString();
  // The paper's Fig. 3 example: Token_8 is a T-2 token generated from
  // Token_0 and Token_1.
  EXPECT_NE(s.find("T-2"), std::string::npos);
  EXPECT_NE(s.find("Token_8"), std::string::npos);
  EXPECT_NE(s.find("deps=[0,1]"), std::string::npos);
  EXPECT_NE(s.find("b=32"), std::string::npos);
}

TEST(TokenTest, LevelZeroHasNoDeps) {
  Token t;
  t.id = 0;
  t.level = 0;
  EXPECT_EQ(t.ToString().find("deps=[]") != std::string::npos, true);
}

}  // namespace
}  // namespace fela::core
