// Figure 9: AT and per-iteration delay (PID) in the round-robin
// straggler scenario: worker (iteration mod N) is slowed by d seconds.
//
// Paper reference (VGG19): Fela improves AT by 28.6%~60.0% vs DP,
// 3.01x~4.87x vs MP, 41.61%~84.16% vs HP; and reduces PID by
// 30.35%~68.19% vs DP, 26.00%~64.86% vs HP. PID of Fela can exceed MP
// (MP's idle workers absorb the sleep).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/zoo.h"

int main(int argc, char** argv) {
  using namespace fela;
  const bench::BenchOptions opts = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader("Figure 9: Round-Robin Straggler Scenario");

  struct ModelCase {
    model::Model model;
    double batch;
    std::vector<double> delays;
    const char* label;
  };
  // The paper fixes a training batch and sweeps d (VGG19: 2..10s,
  // GoogLeNet: 1..5s). We use the mid-sweep batch for each benchmark.
  std::vector<ModelCase> cases = {
      {model::zoo::Vgg19(), 512, {2, 4, 6, 8, 10}, "VGG19"},
      {model::zoo::GoogLeNet(), 2048, {1, 2, 3, 4, 5}, "GoogLeNet"},
  };
  if (opts.smoke) cases.erase(cases.begin() + 1, cases.end());

  // Stage every (model, d) point on the sweep runner, then render
  // serially in sweep order — output is byte-identical for any --jobs.
  struct Point {
    size_t case_index;
    double d;
    runtime::PidResult dp, mp, hp, fela;
  };
  std::vector<Point> points;
  for (size_t ci = 0; ci < cases.size(); ++ci) {
    for (double d : opts.Sweep(cases[ci].delays)) {
      points.push_back(Point{ci, d, {}, {}, {}, {}});
    }
  }
  runtime::SweepRunner runner = opts.Runner();
  for (Point& pt : points) {
    runner.Add([&opts, &cases, &pt] {
      const auto& mc = cases[pt.case_index];
      const double d = pt.d;
      auto stragglers = [d](int n) {
        return std::make_unique<sim::RoundRobinStragglers>(n, d);
      };
      runtime::ExperimentSpec spec;
      spec.total_batch = mc.batch;
      spec.iterations = opts.iterations();
      spec.observe = opts.json;
      // Elastic tuning happens in-situ: the warm-up sees the stragglers.
      const auto cfg = suite::TunedFelaConfig(
          mc.model, mc.batch, 8, opts.smoke ? 1 : 5,
          sim::Calibration::Default(), stragglers);

      auto pid_of = [&](const runtime::EngineFactory& f) {
        return runtime::RunPidExperiment(spec, f, stragglers);
      };
      pt.dp = pid_of(suite::DpFactory(mc.model));
      pt.mp = pid_of(suite::MpFactory(mc.model));
      pt.hp = pid_of(suite::HpFactory(mc.model));
      pt.fela = pid_of(suite::FelaFactory(mc.model, cfg));
    });
  }
  runner.RunAll();

  obs::BenchReport report("fig9_roundrobin");
  size_t next_point = 0;
  for (size_t ci = 0; ci < cases.size(); ++ci) {
    const auto& mc = cases[ci];
    std::vector<runtime::ComparisonRow> at_rows;
    std::vector<runtime::ComparisonRow> pid_rows;
    for (; next_point < points.size() && points[next_point].case_index == ci;
         ++next_point) {
      const Point& pt = points[next_point];
      const double d = pt.d;
      const auto& dp = pt.dp;
      const auto& mp = pt.mp;
      const auto& hp = pt.hp;
      const auto& fela = pt.fela;
      for (const auto* pr : {&dp, &mp, &hp, &fela}) {
        report.Add(pr->with_stragglers, d);
      }
      if (fela.with_stragglers.observed) {
        std::printf("\n[%s d=%g]\n", mc.label, d);
        std::cout << runtime::RenderAttributionTable(
            fela.with_stragglers.attribution);
      }
      at_rows.push_back(runtime::ComparisonRow{
          d,
          {dp.with_stragglers.average_throughput,
           mp.with_stragglers.average_throughput,
           hp.with_stragglers.average_throughput,
           fela.with_stragglers.average_throughput}});
      pid_rows.push_back(runtime::ComparisonRow{
          d,
          {dp.per_iteration_delay, mp.per_iteration_delay,
           hp.per_iteration_delay, fela.per_iteration_delay}});
    }

    std::printf("\n%s (total batch %g):\n", mc.label, mc.batch);
    std::cout << runtime::RenderComparisonTable(
        "average throughput (samples/s) vs straggler delay d", "d (s)",
        suite::EngineNames(), at_rows, suite::kFelaColumn);
    bench::PrintGainSummary(mc.label, at_rows);

    common::TablePrinter pid_table({"d (s)", "DP PID", "MP PID", "HP PID",
                                    "Fela PID", "Fela vs DP", "Fela vs HP"});
    for (const auto& row : pid_rows) {
      pid_table.AddRow(
          {common::TablePrinter::Num(row.x, 0),
           common::TablePrinter::Num(row.values[0], 2),
           common::TablePrinter::Num(row.values[1], 2),
           common::TablePrinter::Num(row.values[2], 2),
           common::TablePrinter::Num(row.values[3], 2),
           common::TablePrinter::Percent(1 - row.values[3] / row.values[0]),
           common::TablePrinter::Percent(1 - row.values[3] / row.values[2])});
    }
    std::printf("\nper-iteration delay (Eq. 4, seconds):\n");
    pid_table.Print(std::cout);
  }
  std::printf(
      "\npaper (VGG19): Fela PID 30.35%%~68.19%% below DP, "
      "26.00%%~64.86%% below HP.\n");
  runtime::ExperimentSpec gate;
  gate.total_batch = 256;
  gate.iterations = 4;
  const int rc = bench::VerifyDeterminismGate(
      opts, "fig9", gate,
      suite::FelaFactory(model::zoo::Vgg19(),
                         core::FelaConfig::Defaults(3, 8)),
      [](int n) -> std::unique_ptr<sim::StragglerSchedule> {
        return std::make_unique<sim::RoundRobinStragglers>(n, 4.0);
      });
  return bench::FinishBench(opts, report) | rc;
}
