# Empty compiler generated dependencies file for custom_model_tuning.
# This may be replaced when dependencies are built.
