#include "lint/lint.h"

#include <algorithm>
#include <chrono>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <tuple>
#include <utility>

#include "common/json.h"
#include "common/string_util.h"
#include "common/table.h"
#include "lint/callgraph.h"
#include "lint/include_graph.h"
#include "lint/lexer.h"

namespace fela::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"wall-clock",
     "wall-clock time source in deterministic simulation code (use "
     "sim::Simulator::now())"},
    {"unseeded-rng",
     "unseeded or global randomness (all stochastic behaviour must flow "
     "through a seeded fela::common::Rng)"},
    {"unordered-iter",
     "iteration over a std::unordered_{map,set} member whose body emits "
     "events/output/IDs (iterate a sorted key snapshot instead)"},
    {"discarded-status", "discarded Status/Result return value"},
    {"float-eq",
     "exact floating-point ==/!= comparison in simulation code (compare "
     "against an epsilon, or suppress if exactness is intended)"},
    {"untraced-event",
     "event-queue mutation (Schedule/ScheduleAt) in an engine hot path "
     "whose function records no FELA_TRACE"},
    {"untokenized-trace",
     "raw string detail at a trace/span call site (FELA_TRACE, "
     "Record, Emit); tokenize with FELA_TOK so the hot path stays "
     "allocation-free"},
    {"bare-allow",
     "suppression comment without a justification; write "
     "`// fela-lint: allow(<rule>): <reason>`"},
    {"transitive-wall-clock",
     "simulation code calls a function that (transitively) reaches a "
     "wall-clock time source"},
    {"transitive-rng",
     "simulation code calls a function that (transitively) reaches "
     "unseeded/global randomness"},
    {"order-leak",
     "simulation code calls a function that (transitively) iterates an "
     "unordered container, leaking hash order into results"},
    {"guarded-by",
     "FELA_GUARDED_BY member accessed by a method that neither declares "
     "FELA_REQUIRES(mutex) nor takes a lock on the mutex"},
    {"sweep-shared-state",
     "mutable namespace-scope global, or function-local static reachable "
     "from a sweep task body; sweep workers share it across tasks"},
};

/// Wall time for the lint engine's own pass timers. Deliberately
/// uniquely named: fela-lint lints its own sources, and a generic
/// "NowSeconds" could name-collide into the call graph of real code.
double LintNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Suppressions: `// fela-lint: allow(rule-a, rule-b): rationale`.
// A suppression on a comment-only line also covers the next code line.
// The justification (": rationale" after the close paren) is required;
// an allow() without one still suppresses its rules but is itself a
// bare-allow finding.
// ---------------------------------------------------------------------------

struct SuppressionInfo {
  /// Per-line set of rule ids allowed on that line.
  std::vector<std::set<std::string>> allowed;

  struct BareAllow {
    size_t line_index = 0;   // 0-based
    std::string rules;       // comma-joined rule list, for the message
  };
  /// allow() comments missing the `: reason` justification.
  std::vector<BareAllow> bare;
};

SuppressionInfo ParseSuppressions(const FileText& text) {
  SuppressionInfo info;
  info.allowed.resize(text.comments.size());
  for (size_t i = 0; i < text.comments.size(); ++i) {
    const std::string& comment = text.comments[i];
    const size_t tag = comment.find("fela-lint:");
    if (tag == std::string::npos) continue;
    const size_t open = comment.find("allow(", tag);
    if (open == std::string::npos) continue;
    const size_t close = comment.find(')', open);
    if (close == std::string::npos) continue;
    std::string rule;
    std::string joined;
    for (size_t p = open + 6; p <= close; ++p) {
      const char c = p < close ? comment[p] : ',';
      if (c == ',' || c == ' ') {
        if (!rule.empty()) {
          info.allowed[i].insert(rule);
          if (!joined.empty()) joined += ", ";
          joined += rule;
        }
        rule.clear();
      } else {
        rule += c;
      }
    }
    // Justified form: `allow(...): reason`, reason non-empty.
    size_t p = close + 1;
    while (p < comment.size() && comment[p] == ' ') ++p;
    const bool justified = p < comment.size() && comment[p] == ':' &&
                           !Trim(comment.substr(p + 1)).empty();
    if (!justified) {
      info.bare.push_back(SuppressionInfo::BareAllow{i, joined});
    }
  }
  return info;
}

bool LineHasCode(const std::string& code_line) {
  return std::any_of(code_line.begin(), code_line.end(), [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) == 0;
  });
}

bool Suppressed(const std::vector<std::set<std::string>>& allowed,
                const std::vector<std::string>& code, size_t line_index,
                const std::string& rule) {
  if (line_index < allowed.size() && allowed[line_index].count(rule) > 0) {
    return true;
  }
  // Walk back over comment-only / blank lines: their allow() covers the
  // next code line (this one).
  for (size_t i = line_index; i > 0;) {
    --i;
    if (LineHasCode(code[i])) break;
    if (allowed[i].count(rule) > 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Hazard matchers, shared by the per-file rules and the taint scanner
// ---------------------------------------------------------------------------

const char* const kWallClockPatterns[] = {
    "system_clock",     "steady_clock", "high_resolution_clock",
    "gettimeofday",     "clock_gettime", "timespec_get",
    "QueryPerformanceCounter",
};

const char* const kRngPatterns[] = {
    "rand",        "srand",         "random_device",
    "mt19937",     "mt19937_64",    "default_random_engine",
    "minstd_rand", "random_shuffle", "drand48",
};

/// True when `line` contains a bare call `p(` where p is "time" or
/// "clock" (member calls like `x.time()` do not match).
bool HasBareCall(const std::string& line, const char* p) {
  size_t pos = FindWord(line, p);
  while (pos != std::string::npos) {
    const size_t q = pos + std::string(p).size();
    const bool member = pos >= 1 && (line[pos - 1] == '.' ||
                                     (pos >= 2 && line[pos - 2] == '-' &&
                                      line[pos - 1] == '>'));
    if (!member && q < line.size() && line[q] == '(') return true;
    pos = FindWord(line, p, pos + 1);
  }
  return false;
}

/// Label of the first wall-clock hazard on `line`, or "".
std::string MatchWallClockLabel(const std::string& line) {
  for (const char* p : kWallClockPatterns) {
    if (ContainsWord(line, p)) return p;
  }
  for (const char* p : {"time", "clock"}) {
    if (HasBareCall(line, p)) return std::string(p) + "()";
  }
  return std::string();
}

/// Label of the first unseeded-RNG hazard on `line`, or "".
std::string MatchRngLabel(const std::string& line) {
  for (const char* p : kRngPatterns) {
    if (ContainsWord(line, p)) return p;
  }
  return std::string();
}

// ---------------------------------------------------------------------------
// Small scanning helpers
// ---------------------------------------------------------------------------

/// The last identifier of an operand chain read backwards from `pos`
/// (exclusive): `a.when` -> "when", `h.sum()` -> "sum", `x` -> "x".
std::string OperandIdentBackward(const std::string& line, size_t pos) {
  size_t i = pos;
  while (i > 0 && line[i - 1] == ' ') --i;
  // Balance back over a trailing call `(...)`.
  if (i > 0 && line[i - 1] == ')') {
    int depth = 0;
    while (i > 0) {
      --i;
      if (line[i] == ')') ++depth;
      if (line[i] == '(') {
        --depth;
        if (depth == 0) break;
      }
    }
  }
  size_t end = i;
  while (i > 0 && IsIdentChar(line[i - 1])) --i;
  return line.substr(i, end - i);
}

/// The last identifier of an operand chain read forwards from `pos`:
/// `b.when` -> "when", `b.duration()` -> "duration", `0.0` -> "".
std::string OperandIdentForward(const std::string& line, size_t pos,
                                bool* is_float_literal) {
  *is_float_literal = false;
  size_t i = pos;
  while (i < line.size() && (line[i] == ' ' || line[i] == '-' ||
                             line[i] == '+' || line[i] == '(')) {
    ++i;
  }
  if (i < line.size() && std::isdigit(static_cast<unsigned char>(line[i]))) {
    // Number literal: float iff it has a '.' or exponent (and isn't hex).
    const size_t start = i;
    bool has_dot = false;
    bool has_exp = false;
    bool hex = i + 1 < line.size() && line[i] == '0' &&
               (line[i + 1] == 'x' || line[i + 1] == 'X');
    while (i < line.size() &&
           (IsIdentChar(line[i]) || line[i] == '.' ||
            ((line[i] == '+' || line[i] == '-') && i > start &&
             (line[i - 1] == 'e' || line[i - 1] == 'E')))) {
      if (line[i] == '.') has_dot = true;
      if (!hex && (line[i] == 'e' || line[i] == 'E')) has_exp = true;
      ++i;
    }
    *is_float_literal = !hex && (has_dot || has_exp);
    return std::string();
  }
  std::string last;
  while (i < line.size()) {
    if (IsIdentChar(line[i])) {
      size_t start = i;
      while (i < line.size() && IsIdentChar(line[i])) ++i;
      last = line.substr(start, i - start);
      continue;
    }
    if (line[i] == '.' || (line[i] == '-' && i + 1 < line.size() &&
                           line[i + 1] == '>')) {
      i += line[i] == '.' ? 1 : 2;
      continue;
    }
    break;
  }
  return last;
}

/// True when the operand ending just before `pos` is a float literal,
/// e.g. `bytes == 0.0` checking the right side of `==` is handled by
/// OperandIdentForward; this covers `0.0 == bytes`.
bool FloatLiteralBackward(const std::string& line, size_t pos) {
  size_t i = pos;
  while (i > 0 && line[i - 1] == ' ') --i;
  size_t end = i;
  bool has_dot = false;
  while (i > 0 && (IsIdentChar(line[i - 1]) || line[i - 1] == '.')) {
    --i;
    if (line[i] == '.') has_dot = true;
  }
  if (i == end) return false;
  if (std::isdigit(static_cast<unsigned char>(line[i])) == 0) return false;
  return has_dot || line.substr(i, end - i).find_first_of("eE") !=
                        std::string::npos;
}

// ---------------------------------------------------------------------------
// Declaration collectors
// ---------------------------------------------------------------------------

/// Member/local names declared as std::unordered_{map,set} in this file.
std::set<std::string> CollectUnorderedMembers(const FileText& text) {
  std::set<std::string> members;
  for (const std::string& line : text.code) {
    if (line.find("unordered_map<") == std::string::npos &&
        line.find("unordered_set<") == std::string::npos) {
      continue;
    }
    // Declarations only: `std::unordered_map<K, V> name_;` — skip
    // function signatures / parameters (they contain a '(').
    if (line.find('(') != std::string::npos) continue;
    const size_t semi = line.rfind(';');
    if (semi == std::string::npos) continue;
    size_t e = semi;
    while (e > 0 && std::isspace(static_cast<unsigned char>(line[e - 1]))) --e;
    size_t b = e;
    while (b > 0 && IsIdentChar(line[b - 1])) --b;
    if (b < e) members.insert(line.substr(b, e - b));
  }
  return members;
}

/// Names of functions declared/defined with a Status or Result<> return
/// type anywhere in the file.
void CollectStatusFunctions(const FileText& text,
                            std::set<std::string>* names) {
  for (const std::string& line : text.code) {
    for (const char* ret : {"Status", "Result"}) {
      size_t pos = FindWord(line, ret);
      while (pos != std::string::npos) {
        size_t p = pos + std::string(ret).size();
        if (std::string(ret) == "Result") {
          // Skip the template argument list `<T>`.
          if (p >= line.size() || line[p] != '<') {
            pos = FindWord(line, ret, pos + 1);
            continue;
          }
          int depth = 0;
          while (p < line.size()) {
            if (line[p] == '<') ++depth;
            if (line[p] == '>') {
              --depth;
              if (depth == 0) {
                ++p;
                break;
              }
            }
            ++p;
          }
        }
        while (p < line.size() && (line[p] == ' ' || line[p] == '&')) ++p;
        size_t b = p;
        while (p < line.size() && IsIdentChar(line[p])) ++p;
        if (p > b && p < line.size() && line[p] == '(') {
          const std::string name = line.substr(b, p - b);
          // Constructors/factories named like the type are fine; also
          // skip macro-ish all-caps names.
          if (name != "Status" && name != "Result") names->insert(name);
        }
        pos = FindWord(line, ret, pos + 1);
      }
    }
  }
}

/// Identifiers declared with a floating-point type in this file
/// (variables, members, and functions returning double/float/SimTime).
std::set<std::string> CollectFloatIdents(const FileText& text) {
  std::set<std::string> idents;
  for (const std::string& line : text.code) {
    for (const char* type : {"double", "float", "SimTime"}) {
      size_t pos = FindWord(line, type);
      while (pos != std::string::npos) {
        size_t p = pos + std::string(type).size();
        while (p < line.size() && (line[p] == ' ' || line[p] == '&' ||
                                   line[p] == '*')) {
          ++p;
        }
        size_t b = p;
        while (p < line.size() && IsIdentChar(line[p])) ++p;
        if (p > b) idents.insert(line.substr(b, p - b));
        pos = FindWord(line, type, pos + 1);
      }
    }
  }
  return idents;
}

// ---------------------------------------------------------------------------
// Unordered-container loop finder (shared by unordered-iter and the
// order-leak taint scanner)
// ---------------------------------------------------------------------------

struct UnorderedLoop {
  size_t line_index = 0;         // 0-based line of the `for`
  const char* emitter = nullptr; // emitting call in the body, or nullptr
};

/// Joins code lines [start, end] into one string for multi-line matching.
std::string JoinCode(const FileText& text, size_t start, size_t end) {
  std::string out;
  for (size_t i = start; i <= end && i < text.code.size(); ++i) {
    out += text.code[i];
    out += '\n';
  }
  return out;
}

std::vector<UnorderedLoop> FindUnorderedLoops(
    const FileText& text, const std::set<std::string>& members) {
  std::vector<UnorderedLoop> loops;
  if (members.empty()) return loops;
  static const char* kEmitters[] = {
      "Emit(",       "Record(",     "RecordLazy(",  "FELA_TRACE",
      "Schedule(",   "ScheduleAt(", "Push(",        "push_back(",
      "emplace_back(", "Append(",   "AddRow(",      "printf",
      "<<",          "SendControl(", "Transfer(",   "deliver_grant",
      "send_report", "send_request", "Increment(",  "Observe(",
  };
  const auto& code = text.code;
  for (size_t i = 0; i < code.size(); ++i) {
    const size_t for_pos = FindWord(code[i], "for");
    if (for_pos == std::string::npos) continue;
    // Collect the parenthesized loop header, possibly spanning lines.
    size_t line = i;
    size_t pos = code[i].find('(', for_pos);
    if (pos == std::string::npos) continue;
    std::string header;
    int depth = 0;
    size_t body_line = line;
    size_t body_col = 0;
    bool closed = false;
    while (line < code.size() && !closed) {
      for (size_t c = line == i ? pos : 0; c < code[line].size(); ++c) {
        const char ch = code[line][c];
        if (ch == '(') ++depth;
        if (ch == ')') {
          --depth;
          if (depth == 0) {
            closed = true;
            body_line = line;
            body_col = c + 1;
            break;
          }
        }
        header += ch;
      }
      if (!closed) ++line;
    }
    if (!closed) continue;
    // Range-for over a tracked member, or iterator loop on its begin().
    bool over_member = false;
    const size_t colon = header.find(':');
    if (colon != std::string::npos && header.find("::") != colon &&
        header.find(';') == std::string::npos) {
      const std::string range = header.substr(colon + 1);
      for (const auto& m : members) {
        if (ContainsWord(range, m)) {
          over_member = true;
          break;
        }
      }
    }
    if (!over_member) {
      for (const auto& m : members) {
        if (header.find(m + ".begin(") != std::string::npos ||
            header.find(m + ".cbegin(") != std::string::npos) {
          over_member = true;
          break;
        }
      }
    }
    if (!over_member) continue;
    // Find the loop body: `{...}` or a single statement up to ';'.
    size_t bl = body_line;
    size_t bc = body_col;
    while (bl < code.size()) {
      while (bc < code[bl].size() &&
             std::isspace(static_cast<unsigned char>(code[bl][bc]))) {
        ++bc;
      }
      if (bc < code[bl].size()) break;
      ++bl;
      bc = 0;
    }
    if (bl >= code.size()) continue;
    size_t end_line = bl;
    if (code[bl][bc] == '{') {
      int braces = 0;
      bool done = false;
      for (size_t l = bl; l < code.size() && !done; ++l) {
        for (size_t c = l == bl ? bc : 0; c < code[l].size(); ++c) {
          if (code[l][c] == '{') ++braces;
          if (code[l][c] == '}') {
            --braces;
            if (braces == 0) {
              end_line = l;
              done = true;
              break;
            }
          }
        }
      }
    } else {
      while (end_line < code.size() &&
             code[end_line].find(';') == std::string::npos) {
        ++end_line;
      }
    }
    const std::string body = JoinCode(text, bl, end_line);
    UnorderedLoop loop;
    loop.line_index = i;
    for (const char* e : kEmitters) {
      if (body.find(e) != std::string::npos) {
        loop.emitter = e;
        break;
      }
    }
    loops.push_back(loop);
  }
  return loops;
}

// ---------------------------------------------------------------------------
// Per-file rules
// ---------------------------------------------------------------------------

struct RuleContext {
  const std::string& path;
  const FileText& text;
  const std::vector<std::set<std::string>>& allowed;
  std::vector<Finding>* findings;

  void Report(size_t line_index, const char* rule, std::string message) {
    if (Suppressed(allowed, text.code, line_index, rule)) return;
    findings->push_back(Finding{path, static_cast<int>(line_index) + 1, rule,
                                std::move(message)});
  }
};

void CheckWallClock(RuleContext& ctx) {
  for (size_t i = 0; i < ctx.text.code.size(); ++i) {
    const std::string& line = ctx.text.code[i];
    for (const char* p : kWallClockPatterns) {
      if (ContainsWord(line, p)) {
        ctx.Report(i, "wall-clock",
                   common::StrFormat("wall-clock source '%s' in simulation "
                                     "code; use sim::Simulator::now()",
                                     p));
        break;
      }
    }
    // Bare time()/clock() calls (member functions like busy_time() have
    // an identifier character before the word and do not match).
    for (const char* p : {"time", "clock"}) {
      if (HasBareCall(line, p)) {
        ctx.Report(i, "wall-clock",
                   common::StrFormat("call to %s() in simulation code; use "
                                     "sim::Simulator::now()",
                                     p));
      }
    }
  }
}

void CheckUnseededRng(RuleContext& ctx) {
  for (size_t i = 0; i < ctx.text.code.size(); ++i) {
    const std::string& line = ctx.text.code[i];
    for (const char* p : kRngPatterns) {
      if (ContainsWord(line, p)) {
        ctx.Report(i, "unseeded-rng",
                   common::StrFormat("'%s' in simulation code; all "
                                     "randomness must flow through a seeded "
                                     "fela::common::Rng",
                                     p));
        break;
      }
    }
  }
}

void CheckUnorderedIter(RuleContext& ctx,
                        const std::set<std::string>& members) {
  for (const UnorderedLoop& loop : FindUnorderedLoops(ctx.text, members)) {
    if (loop.emitter == nullptr) continue;
    ctx.Report(loop.line_index, "unordered-iter",
               common::StrFormat(
                   "iteration over unordered container emits output "
                   "('%s'); iterate a sorted key snapshot instead",
                   loop.emitter));
  }
}

void CheckDiscardedStatus(RuleContext& ctx,
                          const std::set<std::string>& status_fns) {
  if (status_fns.empty()) return;
  const auto& code = ctx.text.code;
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string trimmed = Trim(code[i]);
    if (trimmed.empty()) continue;
    // Statement must start the line: optional `ns::` qualifiers, then a
    // tracked name, then '('.
    size_t p = 0;
    std::string name;
    while (p < trimmed.size()) {
      size_t b = p;
      while (p < trimmed.size() && IsIdentChar(trimmed[p])) ++p;
      if (p == b) break;
      name = trimmed.substr(b, p - b);
      if (p + 1 < trimmed.size() && trimmed[p] == ':' &&
          trimmed[p + 1] == ':') {
        p += 2;
        continue;
      }
      break;
    }
    if (name.empty() || status_fns.count(name) == 0) continue;
    if (p >= trimmed.size() || trimmed[p] != '(') continue;
    // Previous code line must end a statement (not an expression
    // continuation or a return/assignment spanning lines).
    size_t prev = i;
    std::string prev_trimmed;
    while (prev > 0) {
      --prev;
      prev_trimmed = Trim(code[prev]);
      if (!prev_trimmed.empty()) break;
    }
    if (!prev_trimmed.empty()) {
      const char last = prev_trimmed.back();
      if (last != ';' && last != '{' && last != '}' && last != ':') continue;
    }
    // Balance parens from the call across lines; the statement discards
    // the Status iff the matching ')' is immediately followed by ';'.
    int depth = 0;
    size_t l = i;
    size_t c = code[i].find('(', code[i].find(name));
    bool discarded = false;
    bool done = false;
    for (; l < code.size() && !done; ++l, c = 0) {
      for (size_t k = c; k < code[l].size(); ++k) {
        const char ch = code[l][k];
        if (ch == '(') ++depth;
        if (ch == ')') {
          --depth;
          if (depth == 0) {
            size_t q = k + 1;
            while (q < code[l].size() && code[l][q] == ' ') ++q;
            // `.ok()` / `;` etc: only a bare `;` discards.
            discarded = q < code[l].size() && code[l][q] == ';';
            done = true;
            break;
          }
        }
      }
    }
    if (discarded) {
      ctx.Report(i, "discarded-status",
                 common::StrFormat("result of Status-returning '%s' is "
                                   "discarded",
                                   name.c_str()));
    }
  }
}

void CheckFloatEq(RuleContext& ctx) {
  const std::set<std::string> floats = CollectFloatIdents(ctx.text);
  const auto& code = ctx.text.code;
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    for (size_t pos = 0; pos + 1 < line.size(); ++pos) {
      const char a = line[pos];
      const char b = line[pos + 1];
      if (!((a == '=' && b == '=') || (a == '!' && b == '='))) continue;
      // Skip <=, >=, ===-ish, != inside 'operator!=' declarations.
      if (pos > 0 && (line[pos - 1] == '<' || line[pos - 1] == '>' ||
                      line[pos - 1] == '=' || line[pos - 1] == '!')) {
        continue;
      }
      if (pos + 2 < line.size() && line[pos + 2] == '=') continue;
      if (pos >= 8 && line.compare(pos - 8, 8, "operator") == 0) continue;
      const std::string left = OperandIdentBackward(line, pos);
      bool right_literal = false;
      const std::string right =
          OperandIdentForward(line, pos + 2, &right_literal);
      // Pointer/bool comparisons are fine even when the other operand's
      // name shadows a float.
      if (left == "nullptr" || right == "nullptr" || left == "true" ||
          right == "true" || left == "false" || right == "false") {
        continue;
      }
      const bool left_literal = FloatLiteralBackward(line, pos);
      const bool left_float = !left.empty() && floats.count(left) > 0;
      const bool right_float = !right.empty() && floats.count(right) > 0;
      if (left_literal || right_literal || left_float || right_float) {
        ctx.Report(i, "float-eq",
                   common::StrFormat(
                       "exact floating-point %s comparison ('%s' vs '%s')",
                       a == '=' ? "==" : "!=",
                       left_literal ? "<literal>" : left.c_str(),
                       right_literal ? "<literal>" : right.c_str()));
        pos += 2;
      }
    }
  }
}

void CheckUntracedEvent(RuleContext& ctx) {
  const auto& code = ctx.text.code;
  // Track namespace depth so function definitions (at namespace scope,
  // column 0 in this codebase's style) can be delimited by brace depth.
  int depth = 0;
  int ns_depth = 0;
  size_t fn_start = 0;
  bool in_fn = false;
  bool has_trace = false;
  int first_schedule = -1;
  auto finish_fn = [&](size_t) {
    if (first_schedule >= 0 && !has_trace) {
      ctx.Report(static_cast<size_t>(first_schedule), "untraced-event",
                 "Schedule()/ScheduleAt() in an engine hot path but the "
                 "enclosing function records no FELA_TRACE");
    }
    in_fn = false;
    has_trace = false;
    first_schedule = -1;
  };
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    const std::string trimmed = Trim(line);
    const bool is_namespace = trimmed.rfind("namespace", 0) == 0;
    if (!in_fn && depth == ns_depth && !trimmed.empty() &&
        trimmed[0] != '#' && trimmed[0] != '}' && !is_namespace &&
        line.find('(') != std::string::npos &&
        trimmed.rfind("using", 0) != 0 && trimmed.rfind("static_assert", 0) !=
            0) {
      in_fn = true;
      fn_start = i;
      has_trace = false;
      first_schedule = -1;
    }
    if (in_fn) {
      if (line.find("FELA_TRACE") != std::string::npos) has_trace = true;
      if (first_schedule < 0) {
        for (const char* p : {"Schedule(", "ScheduleAt("}) {
          const size_t pos = line.find(p);
          if (pos != std::string::npos && pos > 0 &&
              (line[pos - 1] == '.' || line[pos - 1] == '>')) {
            first_schedule = static_cast<int>(i);
            break;
          }
        }
      }
    }
    for (char c : line) {
      if (c == '{') {
        if (is_namespace && depth == ns_depth) ++ns_depth;
        ++depth;
      }
      if (c == '}') {
        --depth;
        if (depth < ns_depth) ns_depth = depth;
        if (in_fn && depth == ns_depth && i > fn_start) finish_fn(i);
      }
    }
    if (in_fn && depth == ns_depth && !trimmed.empty() &&
        trimmed.back() == ';' && i == fn_start &&
        line.find('{') == std::string::npos) {
      // A declaration, not a definition.
      in_fn = false;
    }
  }
  if (in_fn) finish_fn(code.size() - 1);
}

/// Flags trace/span call sites whose argument list still carries raw
/// string detail: a quoted literal outside any FELA_TOK(...) extent, or
/// a StrFormat/to_string/ToString call building the detail at runtime.
/// Both defeat tokenized tracing — the disabled hot path must stay
/// allocation-free and the binary transcript only carries tokens.
void CheckUntokenizedTrace(RuleContext& ctx) {
  const auto& code = ctx.text.code;
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    // Anchor on call sites: the FELA_TRACE macro, or a member call to
    // Record/RecordLazy/Emit (`x.Record(` / `p->Emit(`). Definitions and
    // qualified declarations (`TraceRecorder::Record(`) do not anchor.
    std::vector<size_t> opens;
    size_t pos = FindWord(line, "FELA_TRACE");
    while (pos != std::string::npos) {
      size_t p = pos + 10;
      while (p < line.size() && line[p] == ' ') ++p;
      if (p < line.size() && line[p] == '(') opens.push_back(p);
      pos = FindWord(line, "FELA_TRACE", pos + 1);
    }
    for (const char* fn : {"Record(", "RecordLazy(", "Emit("}) {
      const size_t len = std::string(fn).size();
      size_t q = line.find(fn);
      while (q != std::string::npos) {
        if (q > 0 && (line[q - 1] == '.' || line[q - 1] == '>')) {
          opens.push_back(q + len - 1);
        }
        q = line.find(fn, q + 1);
      }
    }
    for (size_t open : opens) {
      // Collect the full parenthesized extent, possibly spanning lines.
      std::string extent;
      int depth = 0;
      bool closed = false;
      for (size_t l = i; l < code.size() && !closed; ++l) {
        for (size_t c = l == i ? open : 0; c < code[l].size(); ++c) {
          const char ch = code[l][c];
          extent += ch;
          if (ch == '(') ++depth;
          if (ch == ')') {
            --depth;
            if (depth == 0) {
              closed = true;
              break;
            }
          }
        }
        extent += '\n';
      }
      if (!closed) continue;
      // Blank FELA_TOK(...) sub-extents — their format literal IS the
      // tokenized path this rule asks for.
      size_t tok = FindWord(extent, "FELA_TOK");
      while (tok != std::string::npos) {
        size_t p = extent.find('(', tok);
        int d = 0;
        size_t end = p;
        for (; p != std::string::npos && p < extent.size(); ++p) {
          if (extent[p] == '(') ++d;
          if (extent[p] == ')') {
            --d;
            if (d == 0) {
              end = p + 1;
              break;
            }
          }
        }
        for (size_t b = tok; b < end; ++b) extent[b] = ' ';
        tok = FindWord(extent, "FELA_TOK", end);
      }
      const char* culprit = nullptr;
      if (extent.find('"') != std::string::npos) {
        culprit = "string literal";
      } else if (ContainsWord(extent, "StrFormat")) {
        culprit = "StrFormat";
      } else if (ContainsWord(extent, "to_string") ||
                 ContainsWord(extent, "ToString")) {
        culprit = "to_string/ToString";
      }
      if (culprit != nullptr) {
        ctx.Report(i, "untokenized-trace",
                   common::StrFormat("raw %s detail at a trace call site; "
                                     "tokenize with FELA_TOK (or suppress "
                                     "for genuinely dynamic text)",
                                     culprit));
        break;  // one finding per line is enough
      }
    }
  }
}

void CheckBareAllow(RuleContext& ctx, const SuppressionInfo& sup) {
  for (const SuppressionInfo::BareAllow& b : sup.bare) {
    ctx.Report(b.line_index, "bare-allow",
               common::StrFormat(
                   "suppression 'allow(%s)' has no justification; write "
                   "'// fela-lint: allow(%s): <reason>'",
                   b.rules.c_str(), b.rules.c_str()));
  }
}

// ---------------------------------------------------------------------------
// Scoping + file orchestration
// ---------------------------------------------------------------------------

bool RuleEnabled(const Options& options, const char* rule) {
  return options.rules.empty() || options.rules.count(rule) > 0;
}

bool IsSimScoped(const std::vector<std::string>& parts) {
  return HasComponent(parts, {"sim", "core", "baselines", "runtime"});
}

bool IsSimScopedPath(const std::string& path) {
  return IsSimScoped(PathComponents(path));
}

bool IsEngineScoped(const std::string& path,
                    const std::vector<std::string>& parts) {
  const bool cc = path.size() > 3 && (path.rfind(".cc") == path.size() - 3 ||
                                      path.rfind(".cpp") == path.size() - 4);
  return cc && HasComponent(parts, {"core", "baselines"});
}

std::string SiblingHeaderPath(const std::string& path) {
  const size_t dot = path.rfind('.');
  if (dot == std::string::npos) return std::string();
  const std::string ext = path.substr(dot);
  if (ext != ".cc" && ext != ".cpp") return std::string();
  return path.substr(0, dot) + ".h";
}

std::vector<Finding> LintFileImpl(const std::string& path,
                                  const FileText& text,
                                  const SuppressionInfo& sup,
                                  const Options& options,
                                  const std::set<std::string>& extra_members,
                                  const std::set<std::string>& status_fns) {
  const std::vector<std::string> parts = PathComponents(path);
  std::vector<Finding> findings;
  RuleContext ctx{path, text, sup.allowed, &findings};

  if (IsSimScoped(parts)) {
    if (RuleEnabled(options, "wall-clock")) CheckWallClock(ctx);
    if (RuleEnabled(options, "unseeded-rng")) CheckUnseededRng(ctx);
    if (RuleEnabled(options, "float-eq")) CheckFloatEq(ctx);
    if (RuleEnabled(options, "untokenized-trace")) CheckUntokenizedTrace(ctx);
  }
  if (RuleEnabled(options, "unordered-iter")) {
    std::set<std::string> members = CollectUnorderedMembers(text);
    members.insert(extra_members.begin(), extra_members.end());
    CheckUnorderedIter(ctx, members);
  }
  if (RuleEnabled(options, "discarded-status")) {
    std::set<std::string> fns = status_fns;
    CollectStatusFunctions(text, &fns);
    CheckDiscardedStatus(ctx, fns);
  }
  if (IsEngineScoped(path, parts) && RuleEnabled(options, "untraced-event")) {
    CheckUntracedEvent(ctx);
  }
  if (RuleEnabled(options, "bare-allow")) CheckBareAllow(ctx, sup);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

// ---------------------------------------------------------------------------
// Interprocedural rules (whole-tree only)
// ---------------------------------------------------------------------------

struct TreeContext {
  const Options& options;
  const std::map<std::string, FileText>& texts;
  const std::map<std::string, SuppressionInfo>& sups;
  const SymbolIndex& index;
  std::vector<Finding>* findings;

  bool SuppressedAt(const std::string& file, int line, const char* rule) const {
    const auto si = sups.find(file);
    const auto ti = texts.find(file);
    if (si == sups.end() || ti == texts.end()) return false;
    return Suppressed(si->second.allowed, ti->second.code,
                      static_cast<size_t>(line) - 1, rule);
  }
};

std::string ChainString(const SymbolIndex& index,
                        const std::vector<size_t>& chain,
                        const std::string& head) {
  std::string out = head;
  for (size_t i : chain) {
    if (!out.empty()) out += " -> ";
    out += index.functions()[i].name;
  }
  return out;
}

/// Fires `rule` at every call site in sim-scoped code whose callee is a
/// non-sim function tainted by one of `sources`. Boundary-only: calls
/// between two sim-scoped functions never fire (the callee gets its own
/// boundary finding where it crosses out of sim code), so one hazard
/// yields one finding per crossing, not one per chain link.
void CheckTransitiveRule(TreeContext& t, const char* rule, const char* what,
                         const std::vector<TaintSource>& sources) {
  if (!RuleEnabled(t.options, rule) || sources.empty()) return;
  const std::map<size_t, Taint> taint = PropagateTaint(t.index, sources);
  const auto& fns = t.index.functions();
  std::set<std::pair<std::string, int>> seen;  // (file, line) per rule
  for (const FunctionDef& f : fns) {
    if (!IsSimScopedPath(f.file)) continue;
    for (const CallSite& call : f.calls) {
      for (size_t j : t.index.Resolve(call.callee)) {
        if (IsSimScopedPath(fns[j].file)) continue;
        const auto it = taint.find(j);
        if (it == taint.end()) continue;
        if (!seen.insert({f.file, call.line}).second) break;
        if (!t.SuppressedAt(f.file, call.line, rule)) {
          const Taint& tt = it->second;
          t.findings->push_back(Finding{
              f.file, call.line, rule,
              common::StrFormat(
                  "call to '%s' reaches %s '%s' in %s via %s",
                  call.callee.c_str(), what, tt.label.c_str(),
                  NormalizePath(tt.file).c_str(),
                  ChainString(t.index, tt.chain, f.name).c_str())});
        }
        break;  // one tainted binding per call site is enough
      }
    }
  }
}

void CheckGuardedBy(TreeContext& t) {
  if (!RuleEnabled(t.options, "guarded-by")) return;
  static const char* kLockMarkers[] = {"lock_guard", "unique_lock",
                                       "scoped_lock"};
  for (const GuardedMember& gm : t.index.guarded_members()) {
    for (const FunctionDef& f : t.index.functions()) {
      if (f.class_name != gm.class_name || gm.class_name.empty()) continue;
      // Constructors/destructors own the object exclusively.
      if (f.name == gm.class_name || f.name == "~" + gm.class_name) continue;
      const auto ti = t.texts.find(f.file);
      if (ti == t.texts.end()) continue;
      const auto& code = ti->second.code;
      bool holds_lock =
          std::find(f.requires_locks.begin(), f.requires_locks.end(),
                    gm.mutex) != f.requires_locks.end();
      int access_line = 0;
      const int last =
          std::min(f.body_end, static_cast<int>(code.size()));
      for (int l = f.body_begin; l >= 1 && l <= last; ++l) {
        const std::string& line = code[l - 1];
        if (access_line == 0 && ContainsWord(line, gm.member)) {
          access_line = l;
        }
        if (!holds_lock && ContainsWord(line, gm.mutex)) {
          for (const char* marker : kLockMarkers) {
            if (line.find(marker) != std::string::npos) holds_lock = true;
          }
          if (line.find(".lock(") != std::string::npos ||
              line.find(".Lock(") != std::string::npos) {
            holds_lock = true;
          }
        }
      }
      if (access_line == 0 || holds_lock) continue;
      if (t.SuppressedAt(f.file, access_line, "guarded-by")) continue;
      t.findings->push_back(Finding{
          f.file, access_line, "guarded-by",
          common::StrFormat(
              "'%s::%s' accesses '%s' (FELA_GUARDED_BY '%s') without "
              "FELA_REQUIRES(%s) or a lock on '%s'",
              gm.class_name.c_str(), f.name.c_str(), gm.member.c_str(),
              gm.mutex.c_str(), gm.mutex.c_str(), gm.mutex.c_str())});
    }
  }
}

void CheckSweepSharedState(TreeContext& t) {
  if (!RuleEnabled(t.options, "sweep-shared-state")) return;
  for (const GlobalDef& g : t.index.mutable_globals()) {
    if (t.SuppressedAt(g.file, g.line, "sweep-shared-state")) continue;
    std::string message;
    if (g.thread_hostile_type) {
      message = common::StrFormat(
          "namespace-scope instance '%s' of a FELA_THREAD_HOSTILE type; "
          "sweep workers would share it — confine it to one task",
          g.name.c_str());
    } else {
      message = common::StrFormat(
          "mutable namespace-scope global '%s'; sweep workers share it — "
          "make it const, thread_local, or per-task state",
          g.name.c_str());
    }
    t.findings->push_back(
        Finding{g.file, g.line, "sweep-shared-state", std::move(message)});
  }
  // Function-local mutable statics are only a hazard when sweep task
  // bodies can actually reach them.
  const std::map<size_t, std::vector<size_t>> reached = ReachableFrom(
      t.index, {"RunSweep", "RunExperiment", "VerifyDeterminism"});
  const auto& fns = t.index.functions();
  for (const auto& [fi, chain] : reached) {
    const FunctionDef& f = fns[fi];
    for (int line : f.mutable_static_lines) {
      if (t.SuppressedAt(f.file, line, "sweep-shared-state")) continue;
      t.findings->push_back(Finding{
          f.file, line, "sweep-shared-state",
          common::StrFormat(
              "mutable function-local static in '%s' is reachable from a "
              "sweep task body via %s; sweep workers share it across tasks",
              f.name.c_str(),
              ChainString(t.index, chain, std::string()).c_str())});
    }
  }
}

bool WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << contents;
  out.close();
  return static_cast<bool>(out);
}

common::Json FindingsDoc(const std::vector<Finding>& findings) {
  common::Json doc = common::Json::Object();
  doc.Set("count", static_cast<int>(findings.size()));
  common::Json arr = common::Json::Array();
  for (const Finding& f : findings) {
    common::Json row = common::Json::Object();
    row.Set("file", f.file);
    row.Set("line", f.line);
    row.Set("rule", f.rule);
    row.Set("message", f.message);
    arr.Append(std::move(row));
  }
  doc.Set("findings", std::move(arr));
  return doc;
}

}  // namespace

const std::vector<RuleInfo>& Rules() { return kRules; }

bool IsKnownRule(const std::string& rule) {
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const RuleInfo& r) { return rule == r.id; });
}

std::vector<Finding> LintFile(const std::string& path,
                              const std::string& contents,
                              const Options& options,
                              const std::set<std::string>&
                                  extra_unordered_members,
                              const std::set<std::string>& status_functions) {
  const FileText text = Preprocess(contents);
  const SuppressionInfo sup = ParseSuppressions(text);
  return LintFileImpl(path, text, sup, options, extra_unordered_members,
                      status_functions);
}

bool LintTree(const std::vector<std::string>& roots, const Options& options,
              std::vector<Finding>* findings, std::string* error,
              Timings* timings) {
  namespace fs = std::filesystem;
  const double t_start = LintNowSeconds();
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (auto it = fs::recursive_directory_iterator(root, ec);
           it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (ec) break;
        if (!it->is_regular_file()) continue;
        const std::string p = it->path().string();
        const std::string ext = it->path().extension().string();
        if (ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp") {
          files.push_back(p);
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      if (error != nullptr) *error = "cannot read " + root;
      return false;
    }
  }
  std::sort(files.begin(), files.end());

  // Pass 1: lex — read and blank every file once; everything downstream
  // shares these FileTexts.
  double t0 = LintNowSeconds();
  std::map<std::string, std::string> loaded;
  std::map<std::string, FileText> texts;
  std::map<std::string, SuppressionInfo> sups;
  for (const std::string& f : files) {
    std::string contents;
    if (!ReadFile(f, &contents)) {
      if (error != nullptr) *error = "cannot read " + f;
      return false;
    }
    FileText text = Preprocess(contents);
    sups[f] = ParseSuppressions(text);
    texts[f] = std::move(text);
    loaded[f] = std::move(contents);
  }
  const double lex_seconds = LintNowSeconds() - t0;

  // Pass 2: project include graph (cycle-safe transitive closure).
  t0 = LintNowSeconds();
  const IncludeGraph graph = IncludeGraph::Build(loaded);
  const double graph_seconds = LintNowSeconds() - t0;

  // Pass 3: symbol index + call graph.
  t0 = LintNowSeconds();
  SymbolIndex index;
  for (const std::string& f : files) index.IndexFile(f, texts[f]);
  index.Finish();
  const double index_seconds = LintNowSeconds() - t0;

  // Pass 4: rules.
  t0 = LintNowSeconds();
  std::set<std::string> status_fns;
  std::map<std::string, std::set<std::string>> header_members;
  for (const std::string& f : files) {
    CollectStatusFunctions(texts[f], &status_fns);
    header_members[f] = CollectUnorderedMembers(texts[f]);
  }

  findings->clear();
  std::vector<TaintSource> wall_sources;
  std::vector<TaintSource> rng_sources;
  std::vector<TaintSource> leak_sources;
  for (const std::string& f : files) {
    // A file inherits unordered members from its sibling header and
    // from every project header in its transitive include closure (the
    // include graph replaces the old direct-only suffix matching).
    std::set<std::string> extra;
    auto merge_header = [&](const std::string& header_path) {
      const auto it = header_members.find(header_path);
      if (it != header_members.end()) {
        extra.insert(it->second.begin(), it->second.end());
        return;
      }
      // The header may live outside the scanned roots.
      std::string contents;
      if (ReadFile(header_path, &contents)) {
        const std::set<std::string> m =
            CollectUnorderedMembers(Preprocess(contents));
        extra.insert(m.begin(), m.end());
      }
    };
    const std::string sibling = SiblingHeaderPath(f);
    if (!sibling.empty()) merge_header(sibling);
    for (const std::string& dep : graph.Transitive(f)) {
      const auto it = header_members.find(dep);
      if (it != header_members.end()) {
        extra.insert(it->second.begin(), it->second.end());
      }
    }
    const size_t slash = f.find_last_of("/\\");
    const std::string dir =
        slash == std::string::npos ? std::string() : f.substr(0, slash + 1);
    for (const std::string& inc : graph.Missing(f)) {
      // Unscanned headers resolve relative to the includer's directory.
      merge_header(dir + inc);
    }

    std::vector<Finding> file_findings =
        LintFileImpl(f, texts[f], sups[f], options, extra, status_fns);
    findings->insert(findings->end(), file_findings.begin(),
                     file_findings.end());

    // Taint sources live in NON-sim files: a hazard inside sim code is
    // the direct rules' finding, and a suppressed hazard is an accepted
    // one — neither should re-fire at every sim call site.
    if (IsSimScopedPath(f)) continue;
    const auto& code = texts[f].code;
    const auto& allowed = sups[f].allowed;
    for (size_t i = 0; i < code.size(); ++i) {
      const std::string wall = MatchWallClockLabel(code[i]);
      if (!wall.empty() && !Suppressed(allowed, code, i, "wall-clock") &&
          !Suppressed(allowed, code, i, "transitive-wall-clock")) {
        const size_t fn = index.FunctionAt(f, static_cast<int>(i) + 1);
        if (fn != SymbolIndex::npos) {
          wall_sources.push_back(
              TaintSource{fn, wall, f, static_cast<int>(i) + 1});
        }
      }
      const std::string rng = MatchRngLabel(code[i]);
      if (!rng.empty() && !Suppressed(allowed, code, i, "unseeded-rng") &&
          !Suppressed(allowed, code, i, "transitive-rng")) {
        const size_t fn = index.FunctionAt(f, static_cast<int>(i) + 1);
        if (fn != SymbolIndex::npos) {
          rng_sources.push_back(
              TaintSource{fn, rng, f, static_cast<int>(i) + 1});
        }
      }
    }
    // Order-leak sources: NON-emitting iteration over an unordered
    // container (emitting loops already fire unordered-iter on the spot).
    std::set<std::string> members = CollectUnorderedMembers(texts[f]);
    members.insert(extra.begin(), extra.end());
    for (const UnorderedLoop& loop : FindUnorderedLoops(texts[f], members)) {
      if (loop.emitter != nullptr) continue;
      if (Suppressed(allowed, code, loop.line_index, "unordered-iter") ||
          Suppressed(allowed, code, loop.line_index, "order-leak")) {
        continue;
      }
      const size_t fn =
          index.FunctionAt(f, static_cast<int>(loop.line_index) + 1);
      if (fn != SymbolIndex::npos) {
        leak_sources.push_back(TaintSource{
            fn, "unordered iteration", f,
            static_cast<int>(loop.line_index) + 1});
      }
    }
  }

  TreeContext tree{options, texts, sups, index, findings};
  CheckTransitiveRule(tree, "transitive-wall-clock", "wall-clock source",
                      wall_sources);
  CheckTransitiveRule(tree, "transitive-rng", "unseeded-RNG source",
                      rng_sources);
  CheckTransitiveRule(tree, "order-leak", "order-leaking", leak_sources);
  CheckGuardedBy(tree);
  CheckSweepSharedState(tree);
  const double rules_seconds = LintNowSeconds() - t0;

  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  if (timings != nullptr) {
    timings->lex_seconds = lex_seconds;
    timings->include_graph_seconds = graph_seconds;
    timings->index_seconds = index_seconds;
    timings->rules_seconds = rules_seconds;
    timings->total_seconds = LintNowSeconds() - t_start;
    timings->files = files.size();
  }
  return true;
}

std::string FindingsToJson(const std::vector<Finding>& findings) {
  common::Json doc = FindingsDoc(findings);
  doc.SortKeysRecursive();
  return doc.Dump(1);
}

std::string ReportToJson(const std::vector<Finding>& findings,
                         const Timings& timings) {
  common::Json doc = FindingsDoc(findings);
  common::Json t = common::Json::Object();
  t.Set("files", static_cast<int>(timings.files));
  t.Set("lex_seconds", timings.lex_seconds);
  t.Set("include_graph_seconds", timings.include_graph_seconds);
  t.Set("index_seconds", timings.index_seconds);
  t.Set("rules_seconds", timings.rules_seconds);
  t.Set("total_seconds", timings.total_seconds);
  doc.Set("timings", std::move(t));
  doc.SortKeysRecursive();
  return doc.Dump(1);
}

std::string TimingsToBenchJson(const Timings& timings) {
  common::Json doc = common::Json::Object();
  doc.Set("bench", "lint");
  common::Json results = common::Json::Array();
  const std::pair<const char*, double> passes[] = {
      {"lex", timings.lex_seconds},
      {"include-graph", timings.include_graph_seconds},
      {"index", timings.index_seconds},
      {"rules", timings.rules_seconds},
      {"total", timings.total_seconds},
  };
  for (const auto& [pass, seconds] : passes) {
    common::Json row = common::Json::Object();
    row.Set("engine", pass);
    row.Set("x", 0.0);
    row.Set("iterations", 1);
    row.Set("mean_iteration_seconds", seconds);
    row.Set("total_seconds", seconds);
    row.Set("average_throughput",
            seconds > 0.0 ? static_cast<double>(timings.files) / seconds
                          : 0.0);
    row.Set("gpu_utilization", 0.0);
    row.Set("stalled", false);
    results.Append(std::move(row));
  }
  doc.Set("results", std::move(results));
  doc.SortKeysRecursive();
  return doc.Dump(1);
}

std::string FindingsToTable(const std::vector<Finding>& findings) {
  if (findings.empty()) return "fela-lint: clean\n";
  common::TablePrinter table({"location", "rule", "message"});
  for (const Finding& f : findings) {
    table.AddRow({common::StrFormat("%s:%d", f.file.c_str(), f.line), f.rule,
                  f.message});
  }
  return table.ToString() +
         common::StrFormat("\nfela-lint: %zu finding(s)\n", findings.size());
}

// ---------------------------------------------------------------------------
// Findings baseline
// ---------------------------------------------------------------------------

std::string NormalizePath(const std::string& path) {
  const std::vector<std::string> parts = PathComponents(path);
  size_t start = 0;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (parts[i] == "src" || parts[i] == "tools" || parts[i] == "tests" ||
        parts[i] == "bench" || parts[i] == "examples") {
      start = i;
      break;
    }
  }
  std::string out;
  for (size_t i = start; i < parts.size(); ++i) {
    if (!out.empty()) out += '/';
    out += parts[i];
  }
  return out;
}

bool ParseBaseline(const std::string& json, Baseline* baseline,
                   std::string* error) {
  common::Json doc;
  if (!common::Json::Parse(json, &doc, error)) return false;
  if (!doc.is_object()) {
    if (error != nullptr) *error = "baseline: document is not an object";
    return false;
  }
  const common::Json* arr = doc.Find("findings");
  if (arr == nullptr || !arr->is_array()) {
    if (error != nullptr) *error = "baseline: missing \"findings\" array";
    return false;
  }
  baseline->entries.clear();
  for (const common::Json& item : arr->items()) {
    BaselineEntry entry;
    for (const char* key : {"file", "rule", "message"}) {
      const common::Json* v = item.Find(key);
      if (v == nullptr || !v->is_string()) {
        if (error != nullptr) {
          *error = common::StrFormat("baseline: entry missing \"%s\"", key);
        }
        return false;
      }
    }
    entry.file = item.Find("file")->string_value();
    entry.rule = item.Find("rule")->string_value();
    entry.message = item.Find("message")->string_value();
    const common::Json* why = item.Find("why");
    if (why != nullptr && why->is_string()) entry.why = why->string_value();
    baseline->entries.push_back(std::move(entry));
  }
  return true;
}

BaselineResult ApplyBaseline(const Baseline& baseline,
                             const std::vector<Finding>& findings) {
  using Key = std::tuple<std::string, std::string, std::string>;
  std::map<Key, std::vector<size_t>> credit;
  for (size_t i = 0; i < baseline.entries.size(); ++i) {
    const BaselineEntry& e = baseline.entries[i];
    credit[{NormalizePath(e.file), e.rule, e.message}].push_back(i);
  }
  BaselineResult result;
  std::set<size_t> consumed;
  for (const Finding& f : findings) {
    const Key key{NormalizePath(f.file), f.rule, f.message};
    const auto it = credit.find(key);
    if (it != credit.end() && !it->second.empty()) {
      consumed.insert(it->second.back());
      it->second.pop_back();
      ++result.matched;
    } else {
      result.fresh.push_back(f);
    }
  }
  for (size_t i = 0; i < baseline.entries.size(); ++i) {
    if (consumed.count(i) == 0) result.stale.push_back(baseline.entries[i]);
  }
  return result;
}

std::string BaselineToJson(const std::vector<Finding>& findings,
                           const Baseline& previous) {
  using Key = std::tuple<std::string, std::string, std::string>;
  std::map<Key, std::string> why;
  for (const BaselineEntry& e : previous.entries) {
    if (e.why.empty()) continue;
    why.emplace(Key{NormalizePath(e.file), e.rule, e.message}, e.why);
  }
  std::vector<BaselineEntry> entries;
  for (const Finding& f : findings) {
    BaselineEntry e;
    e.file = NormalizePath(f.file);
    e.rule = f.rule;
    e.message = f.message;
    const auto it = why.find(Key{e.file, e.rule, e.message});
    if (it != why.end()) e.why = it->second;
    entries.push_back(std::move(e));
  }
  std::sort(entries.begin(), entries.end(),
            [](const BaselineEntry& a, const BaselineEntry& b) {
              return std::tie(a.file, a.rule, a.message) <
                     std::tie(b.file, b.rule, b.message);
            });
  common::Json doc = common::Json::Object();
  common::Json arr = common::Json::Array();
  for (const BaselineEntry& e : entries) {
    common::Json row = common::Json::Object();
    row.Set("file", e.file);
    row.Set("rule", e.rule);
    row.Set("message", e.message);
    if (!e.why.empty()) row.Set("why", e.why);
    arr.Append(std::move(row));
  }
  doc.Set("findings", std::move(arr));
  doc.Set("version", 1);
  doc.SortKeysRecursive();
  return doc.Dump(1);
}

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  std::string format = "table";
  std::string baseline_path;
  std::string bench_out;
  bool update_baseline = false;
  Options options;
  std::vector<std::string> paths;
  for (const std::string& arg : args) {
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "table" && format != "json") {
        err << "fela-lint: unknown format '" << format << "'\n";
        return 2;
      }
    } else if (arg.rfind("--rules=", 0) == 0) {
      std::string rule;
      for (char c : arg.substr(8) + ",") {
        if (c == ',') {
          if (!rule.empty()) {
            if (!IsKnownRule(rule)) {
              err << "fela-lint: unknown rule '" << rule << "'\n";
              return 2;
            }
            options.rules.insert(rule);
          }
          rule.clear();
        } else {
          rule += c;
        }
      }
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg.rfind("--bench-out=", 0) == 0) {
      bench_out = arg.substr(12);
    } else if (arg == "--list-rules") {
      for (const RuleInfo& r : Rules()) {
        out << r.id << ": " << r.summary << "\n";
      }
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      err << "fela-lint: unknown flag '" << arg << "'\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (update_baseline && baseline_path.empty()) {
    err << "fela-lint: --update-baseline requires --baseline=FILE\n";
    return 2;
  }
  if (paths.empty()) {
    err << "usage: fela-lint [--format=table|json] [--rules=a,b] "
           "[--list-rules] [--baseline=FILE] [--update-baseline] "
           "[--bench-out=FILE] <path>...\n";
    return 2;
  }
  std::vector<Finding> findings;
  std::string error;
  Timings timings;
  if (!LintTree(paths, options, &findings, &error, &timings)) {
    err << "fela-lint: " << error << "\n";
    return 2;
  }
  if (!bench_out.empty() &&
      !WriteTextFile(bench_out, TimingsToBenchJson(timings) + "\n")) {
    err << "fela-lint: cannot write " << bench_out << "\n";
    return 2;
  }
  if (update_baseline) {
    Baseline previous;
    std::string prev_json;
    if (ReadFile(baseline_path, &prev_json) &&
        !ParseBaseline(prev_json, &previous, &error)) {
      err << "fela-lint: " << error << "\n";
      return 2;
    }
    if (!WriteTextFile(baseline_path,
                       BaselineToJson(findings, previous) + "\n")) {
      err << "fela-lint: cannot write " << baseline_path << "\n";
      return 2;
    }
    out << "fela-lint: baseline updated (" << findings.size()
        << " entr" << (findings.size() == 1 ? "y" : "ies") << ")\n";
    return 0;
  }
  if (!baseline_path.empty()) {
    std::string json;
    if (!ReadFile(baseline_path, &json)) {
      err << "fela-lint: cannot read " << baseline_path << "\n";
      return 2;
    }
    Baseline baseline;
    if (!ParseBaseline(json, &baseline, &error)) {
      err << "fela-lint: " << error << "\n";
      return 2;
    }
    const BaselineResult result = ApplyBaseline(baseline, findings);
    out << (format == "json" ? ReportToJson(result.fresh, timings)
                             : FindingsToTable(result.fresh));
    if (result.matched > 0) {
      err << "fela-lint: " << result.matched
          << " baselined finding(s) tolerated\n";
    }
    if (!result.stale.empty()) {
      err << "fela-lint: " << result.stale.size()
          << " stale baseline entr"
          << (result.stale.size() == 1 ? "y" : "ies")
          << "; run --update-baseline to prune\n";
    }
    return result.fresh.empty() ? 0 : 1;
  }
  out << (format == "json" ? ReportToJson(findings, timings)
                           : FindingsToTable(findings));
  return findings.empty() ? 0 : 1;
}

}  // namespace fela::lint
