#ifndef FELA_MODEL_MEMORY_MODEL_H_
#define FELA_MODEL_MEMORY_MODEL_H_

#include "model/model.h"
#include "sim/calibration.h"

namespace fela::model {

/// Device-memory footprint model. Holding layers [lo, hi] resident with a
/// given batch costs
///
///   params * replicas * 4B            (weights + grads + momentum)
/// + activations * batch * 4B * overhead_factor
///
/// Calibrated so a full VGG19 fits on the 12 GB K40c at batch 32 but not
/// at 64 (the paper's footnote 3 reports OOM above 32 under PyTorch).
class MemoryModel {
 public:
  explicit MemoryModel(const sim::Calibration& cal) : cal_(cal) {}

  /// Bytes required to train layers [lo, hi] of `model` at `batch`.
  double BytesForRange(const Model& model, int lo, int hi,
                       double batch) const;

  double BytesForModel(const Model& model, double batch) const {
    return BytesForRange(model, 0, model.layer_count() - 1, batch);
  }

  bool FitsRange(const Model& model, int lo, int hi, double batch) const {
    return BytesForRange(model, lo, hi, batch) <= cal_.gpu_memory_bytes;
  }

  bool FitsModel(const Model& model, double batch) const {
    return FitsRange(model, 0, model.layer_count() - 1, batch);
  }

  /// Largest integer batch for which layers [lo, hi] fit in device memory
  /// (0 if even batch 1 does not fit).
  int MaxBatchForRange(const Model& model, int lo, int hi) const;

  int MaxBatchForModel(const Model& model) const {
    return MaxBatchForRange(model, 0, model.layer_count() - 1);
  }

 private:
  sim::Calibration cal_;
};

}  // namespace fela::model

#endif  // FELA_MODEL_MEMORY_MODEL_H_
