#ifndef FELA_BASELINES_HP_ENGINE_H_
#define FELA_BASELINES_HP_ENGINE_H_

#include <optional>
#include <string>
#include <vector>

#include "model/cost_model.h"
#include "model/model.h"
#include "runtime/cluster.h"
#include "runtime/engine.h"
#include "sim/span.h"

namespace fela::baselines {

/// The hybrid-parallel (HP) baseline after Stanza (§V-A, [6]): layer
/// separation with the paper's inherited configuration — N-1 CONV
/// workers train the convolutional front data-parallel, while a single
/// FC worker (the last node) owns all FC layers. Per iteration:
///
///   1. each CONV worker forwards its batch shard and ships the boundary
///      activations to the FC worker (in-cast);
///   2. the FC worker aggregates whatever shards have arrived into one
///      batched FC forward+backward pass (amortizing the FC latency
///      region) and returns the boundary gradients to those senders;
///   3. CONV workers run their backward pass;
///   4. CONV workers ring-all-reduce the CONV parameters (FC parameters
///      live only on the FC worker — no synchronization).
///
/// The FC worker idles at the front of each iteration and becomes an
/// in-cast bottleneck as the batch grows — the two behaviours the paper
/// uses to explain HP's crossover against DP (Fig. 8 discussion).
class HpEngine : public runtime::Engine {
 public:
  HpEngine(runtime::Cluster* cluster, const model::Model& model,
           double total_batch);

  std::string name() const override { return "HP"; }
  runtime::RunStats Run(int iterations) override;

  int fc_first_layer() const { return fc_first_layer_; }
  int conv_worker_count() const { return cluster_->num_workers() - 1; }
  sim::NodeId fc_worker() const { return cluster_->num_workers() - 1; }

 private:
  void StartIteration(int iteration);
  void OnConvForwardDone(int conv_worker);
  void OnActivationsAtFc(int conv_worker);
  void PumpFc();
  void OnFcPassDone(std::vector<int> shard_owners);
  void OnGradsAtConv(int conv_worker);
  void OnConvBackwardDone(int conv_worker);
  void OnConvAllReduceDone();

  double BoundaryBytesPerShard() const;

  runtime::Cluster* cluster_;
  model::Model model_;
  model::LayerCostModel cost_;
  double total_batch_;
  double shard_batch_;      // per CONV worker
  int fc_first_layer_;      // first FC layer index
  double conv_param_bytes_;

  int target_iterations_ = 0;
  int current_iteration_ = 0;
  sim::SimTime iteration_start_ = 0.0;
  int conv_pending_ = 0;
  std::vector<int> fc_waiting_;  // conv workers whose shards await FC
  bool fc_busy_ = false;
  bool run_complete_ = false;
  runtime::RunStats stats_;
  /// Iteration framing span on the driver track (= num_workers).
  std::optional<obs::ScopedSpan> iter_span_;
};

}  // namespace fela::baselines

#endif  // FELA_BASELINES_HP_ENGINE_H_
