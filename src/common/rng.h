#ifndef FELA_COMMON_RNG_H_
#define FELA_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fela::common {

/// Deterministic pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. All stochastic behaviour in the simulator flows through
/// this class so that experiments are exactly reproducible per seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (stable across platforms);
  /// used to give each worker / injector its own stream.
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Stateless SplitMix64-style mix of three words into one seed. Lets
/// callers derive an independent deterministic stream per (seed, index,
/// salt) tuple without carrying generator state — the same scheme the
/// fault and straggler schedules use for per-decision draws.
uint64_t MixSeed(uint64_t a, uint64_t b, uint64_t c);

/// Exponential backoff delay with deterministic jitter:
/// min(base * multiplier^attempt, max) scaled by a factor in [1.0, 1.5)
/// drawn from Rng(MixSeed(seed, stream, attempt)). Jitter only ever
/// *stretches* the delay — a jittered retry never fires before the
/// un-jittered schedule would, so merely arming retry timers (an inert
/// fault schedule) cannot perturb a run that never needed them. Same
/// inputs, same delay, on every platform. `max_sec <= 0` means uncapped;
/// `seed == 0` disables jitter (pure exponential). attempt 0 is the
/// first retry.
double JitteredBackoffSec(double base_sec, double multiplier, double max_sec,
                          int attempt, uint64_t seed, uint64_t stream);

}  // namespace fela::common

#endif  // FELA_COMMON_RNG_H_
