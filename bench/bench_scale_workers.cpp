// Scale-out sweep: one Fela job at 8 -> 1024 workers on a racked
// two-tier fabric (32-node racks, 40 Gbps uplinks), weak-scaled so every
// worker trains a constant share of the batch. The point of the bench is
// the simulator itself: with the topology-dispatched hierarchical
// collective a sync schedules O(P) transfers where the flat ring
// schedules 2P(P-1), and with the per-rack Token Server sub-distributors
// a grant costs O(rack_size) where the monolithic server scanned all P
// workers. The bench fails (non-zero exit) if transfers per iteration
// ever grow super-linearly, or if the sharded per-event TS cost at 1024
// workers exceeds 4x the 256-worker cost — the regression gates for the
// two O(P^2)-ish paths PR 9 and PR 10 flattened. ts_shards=1 comparison
// points at 256 and 1024 keep the monolithic trajectory visible.
//
// Deterministic outputs (stdout table, scale_workers.csv, and
// BENCH_scale_workers.json under --json) carry only simulated
// quantities, so they byte-match across --jobs values for the nightly
// serial-vs-parallel diff. Wall-clock simulation rates and the µs/grant
// TS-cost column (the bench/baselines/ trajectory numbers) go to
// stderr, and to the machine-specific baseline artifact under
// --baseline-out=PATH — regenerate it like BENCH_micro_core.json, on
// the reference machine.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/csv.h"
#include "common/string_util.h"
#include "common/units.h"
#include "core/fela_engine.h"
#include "model/zoo.h"
#include "sim/topology.h"

namespace {

// fela-lint: allow(wall-clock): this bench measures the simulator's own
// wall-clock rate (the bench/baselines/ trajectory metric); the values
// only reach stderr and the machine-specific baseline artifact, never a
// deterministic output.
using WallClock = std::chrono::steady_clock;

/// Per-point deterministic counters captured by the post-run probe, plus
/// the wall-clock window from engine construction to probe time.
struct PointStats {
  uint64_t events = 0;
  uint64_t transfers = 0;
  uint64_t cross_rack = 0;
  uint64_t grants = 0;
  int ts_shards = 0;  // resolved shard count (auto -> rack count)
  WallClock::time_point start;
  double wall_seconds = 0.0;
};

/// One sweep point: worker count plus the ts_shards override (0 = auto,
/// one sub-distributor per rack; 1 = the monolithic pre-shard server).
struct PointSpec {
  int workers = 0;
  int ts_shards = 0;
};

/// Per-worker samples per iteration: weak scaling, so the per-point
/// workload grows with P and iterations/sec isolates the simulator's
/// scaling behaviour.
constexpr double kSamplesPerWorker = 16.0;

fela::sim::Topology RackedTopology() {
  // 32-node racks with 40 Gbps uplinks and 5 us per ToR<->agg hop: a
  // mildly oversubscribed (8:1 at 10 Gbps NICs) production-shaped pod.
  return fela::sim::Topology::Racked(
      32, fela::common::GbpsToBytesPerSec(40.0), 5e-6);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fela;
  std::string baseline_out;
  {
    // Peel the bench-specific flag before the shared parser (which warns
    // on unknown flags).
    std::vector<char*> rest;
    for (int i = 0; i < argc; ++i) {
      if (std::strncmp(argv[i], "--baseline-out=", 15) == 0) {
        baseline_out = argv[i] + 15;
      } else {
        rest.push_back(argv[i]);
      }
    }
    argc = static_cast<int>(rest.size());
    for (int i = 0; i < argc; ++i) argv[i] = rest[static_cast<size_t>(i)];
  }
  const bench::BenchOptions opts = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader("Worker Scale-Out: Hierarchical Sync at 8 -> 1024");

  const model::Model model = model::zoo::Vgg19();
  // The engine partitions with the bin partitioner; the untuned uniform
  // config just needs one weight per resulting level.
  const int num_levels = static_cast<int>(
      model::BinPartitioner()
          .Partition(model, model::ProfileRepository::Default())
          .size());
  const std::vector<int> worker_counts = opts.Sweep<int>({8, 64, 256, 1024});
  const int iterations = opts.smoke ? 2 : 20;

  // The auto-sharded trajectory, then ts_shards=1 twins of the two
  // largest points so the nightly numbers keep the monolithic server's
  // cost curve next to the sharded one.
  std::vector<PointSpec> point_specs;
  for (int workers : worker_counts) point_specs.push_back({workers, 0});
  for (int workers : worker_counts) {
    if (workers == 256 || workers == 1024) point_specs.push_back({workers, 1});
  }

  // One probe slot per point, allocated up front so the staged lambdas
  // hold stable pointers across the (possibly parallel) sweep.
  std::vector<PointStats> points(point_specs.size());
  std::vector<runtime::SweepItem> items;
  for (size_t i = 0; i < point_specs.size(); ++i) {
    const int workers = point_specs[i].workers;
    runtime::ExperimentSpec spec;
    spec.total_batch = kSamplesPerWorker * workers;
    spec.iterations = iterations;
    spec.num_workers = workers;
    spec.calibration.topology = RackedTopology();
    spec.observe = false;
    PointStats* slot = &points[i];
    spec.post_run_probe = [slot](const runtime::Engine& engine,
                                 runtime::Cluster& cluster) {
      slot->events = cluster.simulator().events_processed();
      slot->transfers = cluster.fabric().data_transfer_count();
      slot->cross_rack = cluster.fabric().cross_rack_transfer_count();
      if (const auto* fela = dynamic_cast<const core::FelaEngine*>(&engine)) {
        slot->grants = fela->ts_stats().grants;
        slot->ts_shards = fela->ts_shard_count();
      }
      slot->wall_seconds =
          std::chrono::duration<double>(WallClock::now() - slot->start)
              .count();
    };
    core::FelaConfig cfg = core::FelaConfig::Defaults(num_levels, workers);
    cfg.ts_shards = point_specs[i].ts_shards;
    // Wrap the factory to stamp the wall-clock start right before engine
    // construction: each point runs single-threaded, so the window is
    // valid under any --jobs.
    runtime::EngineFactory factory =
        [slot, base = suite::FelaFactory(model, cfg)](
            runtime::Cluster& cluster, double total_batch) {
          slot->start = WallClock::now();
          return base(cluster, total_batch);
        };
    items.push_back(runtime::SweepItem{spec, std::move(factory),
                                       runtime::NoStragglerFactory(),
                                       nullptr});
  }
  const std::vector<runtime::ExperimentResult> results =
      runtime::RunSweep(items, opts.jobs);

  std::ofstream csv_file("scale_workers.csv");
  common::CsvWriter csv(csv_file);
  csv.WriteRow({"workers", "ts_shards", "iterations", "sim_seconds",
                "throughput_samples_per_sec", "events_per_iteration",
                "transfers_per_iteration", "cross_rack_per_iteration"});

  obs::BenchReport report("scale_workers");
  common::Json baseline_rows = common::Json::Array();
  std::printf("\nVGG19, weak-scaled (%.0f samples/worker), racked fabric "
              "(32/rack, 40 Gbps uplinks), %d iterations:\n\n",
              kSamplesPerWorker, iterations);
  std::printf("  %8s %7s %12s %14s %12s %12s %12s\n", "workers", "shards",
              "sim_s", "samples/s", "events/iter", "xfers/iter", "xrack/iter");
  int rc = 0;
  // Per-event wall cost of the auto-sharded 256/1024 points, for the
  // blast-radius gate below.
  double sharded_cost_256 = 0.0;
  double sharded_cost_1024 = 0.0;
  for (size_t i = 0; i < point_specs.size(); ++i) {
    const int workers = point_specs[i].workers;
    const runtime::ExperimentResult& r = results[i];
    const PointStats& p = points[i];
    report.Add(r, static_cast<double>(workers));
    const double events_per_iter =
        static_cast<double>(p.events) / iterations;
    const double xfers_per_iter =
        static_cast<double>(p.transfers) / iterations;
    const double xrack_per_iter =
        static_cast<double>(p.cross_rack) / iterations;
    std::printf("  %8d %7d %12.3f %14.1f %12.1f %12.1f %12.1f\n", workers,
                p.ts_shards, r.stats.total_time, r.average_throughput,
                events_per_iter, xfers_per_iter, xrack_per_iter);
    csv.WriteRow({common::StrFormat("%d", workers),
                  common::StrFormat("%d", p.ts_shards),
                  common::StrFormat("%d", iterations),
                  common::StrFormat("%.6f", r.stats.total_time),
                  common::StrFormat("%.3f", r.average_throughput),
                  common::StrFormat("%.1f", events_per_iter),
                  common::StrFormat("%.1f", xfers_per_iter),
                  common::StrFormat("%.1f", xrack_per_iter)});
    // Wall-clock rates are machine-specific: stderr only, so stdout
    // stays byte-identical across machines and --jobs values. The TS
    // cost column: wall microseconds per simulated event and per grant —
    // the number the sub-distributor split is meant to flatten.
    const double iters_per_sec =
        p.wall_seconds > 0.0 ? iterations / p.wall_seconds : 0.0;
    const double us_per_event =
        p.events > 0 ? 1e6 * p.wall_seconds / static_cast<double>(p.events)
                     : 0.0;
    const double us_per_grant =
        p.grants > 0 ? 1e6 * p.wall_seconds / static_cast<double>(p.grants)
                     : 0.0;
    std::fprintf(stderr,
                 "wall[%d workers, %d shard(s)]: %.2f iterations/sec "
                 "(%.3fs for %d); ts-cost %.2f us/event, %.2f us/grant\n",
                 workers, p.ts_shards, iters_per_sec, p.wall_seconds,
                 iterations, us_per_event, us_per_grant);
    if (p.ts_shards > 1) {
      if (workers == 256) sharded_cost_256 = us_per_event;
      if (workers == 1024) sharded_cost_1024 = us_per_event;
    }

    common::Json row = common::Json::Object();
    row.Set("engine", r.engine_name);
    row.Set("x", static_cast<double>(workers));
    row.Set("ts_shards", p.ts_shards);
    row.Set("iterations", r.stats.iteration_count());
    row.Set("mean_iteration_seconds", r.stats.MeanIterationSeconds());
    row.Set("total_seconds", r.stats.total_time);
    row.Set("average_throughput", r.average_throughput);
    row.Set("gpu_utilization", r.gpu_utilization);
    row.Set("stalled", r.stats.stalled);
    row.Set("wall_iterations_per_sec", iters_per_sec);
    row.Set("wall_us_per_event", us_per_event);
    row.Set("wall_us_per_grant", us_per_grant);
    row.Set("events_per_iteration", events_per_iter);
    row.Set("transfers_per_iteration", xfers_per_iter);
    row.Set("cross_rack_per_iteration", xrack_per_iter);
    baseline_rows.Append(std::move(row));

    // The O(P) gate: a flat ring schedules 2P(P-1) transfers per sync
    // (~2000x P at 1024 workers); the hierarchical collective schedules
    // ~2P per level. Fetches and multi-level syncs contribute a few more
    // multiples of P, so 64*P per iteration is a generous linear bound
    // that the quadratic path exceeds by orders of magnitude.
    if (xfers_per_iter > 64.0 * workers) {
      std::fprintf(stderr,
                   "FAIL: %d workers schedule %.0f transfers/iteration "
                   "(> 64*P = %d): sync path is super-linear again\n",
                   workers, xfers_per_iter, 64 * workers);
      rc = 1;
    }
    if (workers > 32 && p.cross_rack == 0) {
      std::fprintf(stderr,
                   "FAIL: %d workers on a 32/rack topology produced no "
                   "cross-rack traffic — hierarchical path not exercised\n",
                   workers);
      rc = 1;
    }
  }
  std::printf("\nwrote scale_workers.csv\n");

  // The per-grant O(rack_size) gate: with one sub-distributor per rack
  // the TS work per event must stop growing with P — the monolithic
  // server's victim scans made 1024 workers ~17x costlier per event than
  // 256. Wall-clock based, so it only arms on full (non-smoke) runs,
  // and 4x leaves generous headroom over the ~1-2x a flat per-event
  // profile shows in practice.
  if (!opts.smoke && sharded_cost_256 > 0.0 && sharded_cost_1024 > 0.0) {
    const double ratio = sharded_cost_1024 / sharded_cost_256;
    std::fprintf(stderr,
                 "ts-cost ratio (sharded 1024 vs 256): %.2fx "
                 "(%.2f vs %.2f us/event)\n",
                 ratio, sharded_cost_1024, sharded_cost_256);
    if (ratio > 4.0) {
      std::fprintf(stderr,
                   "FAIL: sharded per-event TS cost grew %.2fx from 256 to "
                   "1024 workers (> 4x): the sub-distributor split is no "
                   "longer containing the per-grant scan\n",
                   ratio);
      rc = 1;
    }
  }

  if (!baseline_out.empty()) {
    common::Json doc = common::Json::Object();
    doc.Set("bench", std::string("scale_workers"));
    doc.Set("results", baseline_rows);
    doc.SortKeysRecursive();
    std::string error;
    if (!obs::ValidateBenchReportJson(doc, &error)) {
      std::fprintf(stderr, "baseline failed validation: %s\n", error.c_str());
      return 1;
    }
    std::ofstream out(baseline_out);
    out << doc.Dump(1) << "\n";
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", baseline_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", baseline_out.c_str());
  }

  // Determinism gate on a racked mid-size point: the hierarchical
  // collective, rack channels, and per-rack sub-distributors must replay
  // byte-identically.
  runtime::ExperimentSpec gate;
  gate.total_batch = kSamplesPerWorker * 64;
  gate.iterations = 3;
  gate.num_workers = 64;
  gate.calibration.topology = RackedTopology();
  rc |= bench::VerifyDeterminismGate(
      opts, "scale_workers", gate,
      suite::FelaFactory(model, core::FelaConfig::Defaults(num_levels, 64)),
      runtime::NoStragglerFactory());
  return bench::FinishBench(opts, report) | rc;
}
