#ifndef FELA_CORE_FELA_CONFIG_H_
#define FELA_CORE_FELA_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/partition.h"

namespace fela::core {

/// User/tuner-facing knobs of the Fela engine.
struct FelaConfig {
  /// Parallelism-degree weights, one per sub-model; w[0] must be 1 and
  /// the sequence must be non-decreasing (§IV-B). Weight w[i] multiplies
  /// the base token batch for sub-model i; the token count shrinks by the
  /// same factor (DESIGN.md §1 item 1 documents this reading of the
  /// paper's n_i formula).
  std::vector<int> weights;

  /// Conditional Token Distribution subset size |S| (§III-F). Workers
  /// 0..subset-1 form S. Equal to the worker count = CTD disabled.
  int ctd_subset_size = 8;

  /// Policy toggles for the ablation study (Fig. 7).
  bool ads_enabled = true;  // Aggressive Depth-First Scheduling (§III-D)
  bool hf_enabled = true;   // Hierarchical Fetching / STBs (§III-E)

  /// Fault-tolerance knobs. Every grant carries a lease: if the worker
  /// has not reported completion within `lease_timeout_sec` the token
  /// server reclaims the token and re-grants it elsewhere. Workers resend
  /// an unanswered token request after `retry_timeout_sec` (covers grants
  /// or requests lost on a lossy control plane).
  double lease_timeout_sec = 15.0;
  double retry_timeout_sec = 5.0;

  /// Retry backoff: the k-th consecutive retry of the same request waits
  /// min(retry_timeout_sec * retry_backoff_mult^k, retry_timeout_max_sec)
  /// scaled by deterministic jitter in [0.5, 1) seeded from
  /// `retry_jitter_seed` (0 disables jitter; mult 1.0 recovers the old
  /// fixed-interval behaviour). Keeps a partitioned minority from
  /// hammering the control plane in lockstep while it waits for a heal.
  double retry_backoff_mult = 2.0;
  double retry_timeout_max_sec = 60.0;
  uint64_t retry_jitter_seed = 0x5eedbacc0ffULL;

  /// Control-plane survivability. The Token Server checkpoints its full
  /// state every `ts_checkpoint_interval_sec` of simulated time; when its
  /// hosting node crashes (or lands on a minority partition side) a
  /// standby restores from the last checkpoint `ts_failover_timeout_sec`
  /// later — the simulated detection + election delay.
  double ts_checkpoint_interval_sec = 5.0;
  double ts_failover_timeout_sec = 10.0;

  /// Token Server shard count. 0 = auto: one sub-distributor per
  /// topology rack (a flat cluster gets exactly one shard, which is
  /// byte-identical to the unsharded server). An explicit value forces
  /// that many shards over contiguous worker blocks regardless of the
  /// topology; 1 pins the single-server behaviour.
  int ts_shards = 0;

  std::string ToString() const;

  /// Uniform weights {1,1,...}; the untuned default.
  static FelaConfig Defaults(int num_sub_models, int num_workers);
};

/// Per-level schedule derived from (model partition, config, total batch,
/// worker count): how many tokens exist per level, their batch sizes, and
/// the generation ratio from the level below.
struct LevelPlan {
  int level = 0;
  double token_batch = 0.0;  // samples per token
  int token_count = 0;       // n_i tokens per iteration
  /// Completed level-(i-1) tokens consumed per generated level-i token
  /// (w[i]/w[i-1]); 0 for level 0.
  int generation_ratio = 0;
  /// Bytes of boundary activations a level-i token must gather per
  /// *dependency token* (input boundary elems * dep batch * 4B).
  double dep_bytes_per_sample = 0.0;
  /// Bytes of raw training samples per sample (level 0 only).
  double sample_bytes_per_sample = 0.0;
  /// Parameter bytes synchronized for this sub-model each iteration.
  double sync_bytes = 0.0;
  bool communication_intensive = false;
};

/// Validated execution plan for one Fela run.
struct FelaPlan {
  std::vector<LevelPlan> levels;
  double total_batch = 0.0;
  int num_workers = 0;

  int num_levels() const { return static_cast<int>(levels.size()); }
  const LevelPlan& level(int i) const {
    return levels[static_cast<size_t>(i)];
  }
  int TotalTokens() const;
  std::string ToString() const;
};

/// Validates the config against the partition (weight count, w[0]==1,
/// non-decreasing, power-of-two weights <= num_workers, subset in
/// [1, num_workers]).
common::Status ValidateConfig(const FelaConfig& config, int num_sub_models,
                              int num_workers);

/// Validates everything BuildPlan consumes: worker count and total batch
/// positive, a non-empty partition whose sub-models cover sane layer
/// ranges of `model` with positive threshold batches, and (via
/// ValidateConfig) a config consistent with that partition. Returns the
/// first problem found; BuildPlan CHECK-fails on a non-OK status.
common::Status ValidatePlanInputs(const model::Model& model,
                                  const std::vector<model::SubModel>& sub_models,
                                  const FelaConfig& config, double total_batch,
                                  int num_workers);

/// Builds the plan per §III-B / §IV-B:
///   n_0   = max(ceil(total_batch / threshold_0), N)
///   b_0   = total_batch / n_0
///   b_i   = w_i * b_0,   n_i = ceil(n_0 / w_i)
/// Requires a valid config.
FelaPlan BuildPlan(const model::Model& model,
                   const std::vector<model::SubModel>& sub_models,
                   const FelaConfig& config, double total_batch,
                   int num_workers, double bytes_per_scalar = 4.0);

}  // namespace fela::core

#endif  // FELA_CORE_FELA_CONFIG_H_
