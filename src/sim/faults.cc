#include "sim/faults.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace fela::sim {

namespace {

/// Each (seed, index, salt) decision is an independent, platform-stable
/// draw via common::MixSeed feeding a seeded fela Rng.
bool SeededBernoulli(uint64_t seed, uint64_t index, uint64_t salt, double p) {
  if (p <= 0.0) return false;
  common::Rng rng(common::MixSeed(seed, index, salt));
  return rng.Bernoulli(p);
}

/// Windows to scan past the query point before concluding "no more
/// transitions". With any realistic crash probability the first hit is
/// found within a handful of windows; the cap only guards degenerate
/// configurations from spinning forever.
constexpr int64_t kMaxWindowScan = 1 << 20;

}  // namespace

bool FaultSchedule::AnyDownDuring(SimTime t0, SimTime t1, int worker) const {
  if (!Active()) return false;
  if (IsDownAt(t0, worker) || IsDownAt(t1, worker)) return true;
  SimTime t = NextTransitionAfter(t0);
  while (t <= t1) {
    if (IsDownAt(t, worker)) return true;
    const SimTime next = NextTransitionAfter(t);
    if (next <= t) break;  // defensive: schedules must make progress
    t = next;
  }
  return false;
}

SimTime FaultSchedule::NextUpAfter(SimTime t, int worker) const {
  if (!IsDownAt(t, worker)) return t;
  SimTime cur = t;
  while (true) {
    const SimTime next = NextTransitionAfter(cur);
    if (IsNever(next) || next <= cur) return kNeverTime;
    if (!IsDownAt(next, worker)) return next;
    cur = next;
  }
}

bool FaultSchedule::AnyUnreachableDuring(SimTime t0, SimTime t1, int worker,
                                         int anchor) const {
  if (!Active()) return false;
  auto unreachable = [&](SimTime t) {
    return IsDownAt(t, worker) || Partitioned(t, worker, anchor);
  };
  if (unreachable(t0) || unreachable(t1)) return true;
  SimTime t = NextTransitionAfter(t0);
  while (t <= t1) {
    if (unreachable(t)) return true;
    const SimTime next = NextTransitionAfter(t);
    if (next <= t) break;  // defensive: schedules must make progress
    t = next;
  }
  return false;
}

SimTime FaultSchedule::NextReachableAfter(SimTime t, int worker,
                                          int anchor) const {
  auto unreachable = [&](SimTime when) {
    return IsDownAt(when, worker) || Partitioned(when, worker, anchor);
  };
  if (!unreachable(t)) return t;
  SimTime cur = t;
  while (true) {
    const SimTime next = NextTransitionAfter(cur);
    if (IsNever(next) || next <= cur) return kNeverTime;
    if (!unreachable(next)) return next;
    cur = next;
  }
}

// -- ScriptedCrashes --------------------------------------------------------

ScriptedCrashes::ScriptedCrashes(std::vector<CrashEvent> events)
    : events_(std::move(events)) {
  for (const CrashEvent& e : events_) {
    FELA_CHECK_GE(e.worker, 0);
    FELA_CHECK_GE(e.crash_time, 0.0);
    FELA_CHECK_GT(e.recover_time, e.crash_time);
  }
}

bool ScriptedCrashes::IsDownAt(SimTime time, int worker) const {
  for (const CrashEvent& e : events_) {
    if (e.worker == worker && time >= e.crash_time && time < e.recover_time) {
      return true;
    }
  }
  return false;
}

SimTime ScriptedCrashes::NextTransitionAfter(SimTime t) const {
  SimTime best = kNeverTime;
  for (const CrashEvent& e : events_) {
    if (e.crash_time > t) best = std::min(best, e.crash_time);
    if (e.recover_time > t && !IsNever(e.recover_time)) {
      best = std::min(best, e.recover_time);
    }
  }
  return best;
}

common::Status ScriptedCrashes::Validate(int num_workers) const {
  for (const CrashEvent& e : events_) {
    if (e.worker < 0 || e.worker >= num_workers) {
      return common::Status::InvalidArgument(common::StrFormat(
          "scripted crash references worker %d outside [0, %d)", e.worker,
          num_workers));
    }
  }
  return common::Status::Ok();
}

std::string ScriptedCrashes::ToString() const {
  std::string out = "scripted(";
  for (size_t i = 0; i < events_.size(); ++i) {
    const CrashEvent& e = events_[i];
    if (i > 0) out += ", ";
    if (IsNever(e.recover_time)) {
      out += common::StrFormat("w%d@%.2fs", e.worker, e.crash_time);
    } else {
      out += common::StrFormat("w%d@[%.2fs,%.2fs)", e.worker, e.crash_time,
                               e.recover_time);
    }
  }
  return out + ")";
}

// -- RandomCrashes ----------------------------------------------------------

RandomCrashes::RandomCrashes(int num_workers, double crash_prob,
                             SimTime window_sec, SimTime down_sec,
                             uint64_t seed, int first_worker)
    : num_workers_(num_workers),
      crash_prob_(crash_prob),
      window_sec_(window_sec),
      down_sec_(down_sec),
      seed_(seed),
      first_worker_(first_worker) {
  FELA_CHECK_GT(num_workers, 0);
  FELA_CHECK(crash_prob >= 0.0 && crash_prob <= 1.0) << crash_prob;
  FELA_CHECK_GT(window_sec, 0.0);
  FELA_CHECK_GT(down_sec, 0.0);
  FELA_CHECK(first_worker >= 0 && first_worker < num_workers) << first_worker;
}

bool RandomCrashes::CrashesInWindow(int64_t window, int worker) const {
  if (window < 0 || worker < first_worker_) return false;
  return SeededBernoulli(seed_, static_cast<uint64_t>(window) * 131071ULL +
                                    static_cast<uint64_t>(worker),
                         0xc2a50001ULL, crash_prob_);
}

bool RandomCrashes::IsDownAt(SimTime time, int worker) const {
  if (crash_prob_ <= 0.0 || time < 0.0) return false;
  // A crash in window k downs the worker over [k*W, k*W + down_sec).
  const int64_t last = static_cast<int64_t>(std::floor(time / window_sec_));
  const int64_t from =
      IsNever(down_sec_)
          ? 0
          : std::max<int64_t>(
                0, last - static_cast<int64_t>(
                              std::ceil(down_sec_ / window_sec_)));
  for (int64_t k = from; k <= last; ++k) {
    if (!CrashesInWindow(k, worker)) continue;
    const SimTime crash = static_cast<SimTime>(k) * window_sec_;
    if (time >= crash && (IsNever(down_sec_) || time < crash + down_sec_)) {
      return true;
    }
  }
  return false;
}

SimTime RandomCrashes::NextTransitionAfter(SimTime t) const {
  if (crash_prob_ <= 0.0) return kNeverTime;
  const int64_t span =
      IsNever(down_sec_)
          ? 0
          : static_cast<int64_t>(std::ceil(down_sec_ / window_sec_));
  const int64_t from = std::max<int64_t>(
      0, static_cast<int64_t>(std::floor(t / window_sec_)) - span);
  SimTime best = kNeverTime;
  for (int64_t k = from; k < from + kMaxWindowScan; ++k) {
    const SimTime crash = static_cast<SimTime>(k) * window_sec_;
    if (crash > t && crash >= best) break;  // later windows only get later
    for (int w = first_worker_; w < num_workers_; ++w) {
      if (!CrashesInWindow(k, w)) continue;
      if (crash > t) best = std::min(best, crash);
      if (!IsNever(down_sec_) && crash + down_sec_ > t) {
        best = std::min(best, crash + down_sec_);
      }
    }
  }
  return best;
}

std::string RandomCrashes::ToString() const {
  return common::StrFormat("random-crashes(p=%.3f/%.1fs, down=%s)",
                           crash_prob_, window_sec_,
                           IsNever(down_sec_)
                               ? "forever"
                               : common::StrFormat("%.1fs", down_sec_).c_str());
}

// -- LossyControlPlane ------------------------------------------------------

LossyControlPlane::LossyControlPlane(double drop_prob, double dup_prob,
                                     uint64_t seed)
    : drop_prob_(drop_prob), dup_prob_(dup_prob), seed_(seed) {
  FELA_CHECK(drop_prob >= 0.0 && drop_prob < 1.0) << drop_prob;
  FELA_CHECK(dup_prob >= 0.0 && dup_prob <= 1.0) << dup_prob;
}

bool LossyControlPlane::DropControl(uint64_t seq) const {
  return SeededBernoulli(seed_, seq, 0xd20b0001ULL, drop_prob_);
}

bool LossyControlPlane::DuplicateControl(uint64_t seq) const {
  return SeededBernoulli(seed_, seq, 0xd0b1e002ULL, dup_prob_);
}

std::string LossyControlPlane::ToString() const {
  return common::StrFormat("lossy-control(drop=%.3f, dup=%.3f)", drop_prob_,
                           dup_prob_);
}

// -- NetworkPartition -------------------------------------------------------

NetworkPartition::NetworkPartition(std::vector<PartitionEvent> events)
    : events_(std::move(events)) {
  for (PartitionEvent& e : events_) {
    FELA_CHECK_GE(e.start, 0.0);
    FELA_CHECK_GT(e.end, e.start);
    std::sort(e.side_a.begin(), e.side_a.end());
    for (int w : e.side_a) FELA_CHECK_GE(w, 0);
  }
}

SimTime NetworkPartition::NextTransitionAfter(SimTime t) const {
  SimTime best = kNeverTime;
  for (const PartitionEvent& e : events_) {
    if (e.start > t) best = std::min(best, e.start);
    if (e.end > t && !IsNever(e.end)) best = std::min(best, e.end);
  }
  return best;
}

bool NetworkPartition::Partitioned(SimTime time, int a, int b) const {
  if (a == b) return false;
  for (const PartitionEvent& e : events_) {
    if (time < e.start || time >= e.end) continue;
    const bool a_in = std::binary_search(e.side_a.begin(), e.side_a.end(), a);
    const bool b_in = std::binary_search(e.side_a.begin(), e.side_a.end(), b);
    if (a_in != b_in) return true;
  }
  return false;
}

common::Status NetworkPartition::Validate(int num_workers) const {
  for (const PartitionEvent& e : events_) {
    for (int w : e.side_a) {
      if (w < 0 || w >= num_workers) {
        return common::Status::InvalidArgument(common::StrFormat(
            "partition side references worker %d outside [0, %d)", w,
            num_workers));
      }
    }
  }
  return common::Status::Ok();
}

std::string NetworkPartition::ToString() const {
  std::string out = "partition(";
  for (size_t i = 0; i < events_.size(); ++i) {
    const PartitionEvent& e = events_[i];
    if (i > 0) out += ", ";
    out += common::StrFormat("%zu-node side @", e.side_a.size());
    if (IsNever(e.end)) {
      out += common::StrFormat("%.2fs", e.start);
    } else {
      out += common::StrFormat("[%.2fs,%.2fs)", e.start, e.end);
    }
  }
  return out + ")";
}

// -- GrayFailures -----------------------------------------------------------

GrayFailures::GrayFailures(std::vector<GrayEvent> events)
    : events_(std::move(events)) {
  for (const GrayEvent& e : events_) {
    FELA_CHECK_GE(e.worker, 0);
    FELA_CHECK_GE(e.start, 0.0);
    FELA_CHECK_GT(e.end, e.start);
    FELA_CHECK_GE(e.delay_factor, 1.0);
  }
}

double GrayFailures::ControlDelayFactor(SimTime time, int worker) const {
  double factor = 1.0;
  for (const GrayEvent& e : events_) {
    if (e.worker == worker && time >= e.start && time < e.end) {
      factor = std::max(factor, e.delay_factor);
    }
  }
  return factor;
}

common::Status GrayFailures::Validate(int num_workers) const {
  for (const GrayEvent& e : events_) {
    if (e.worker < 0 || e.worker >= num_workers) {
      return common::Status::InvalidArgument(common::StrFormat(
          "gray failure references worker %d outside [0, %d)", e.worker,
          num_workers));
    }
  }
  return common::Status::Ok();
}

std::string GrayFailures::ToString() const {
  std::string out = "gray(";
  for (size_t i = 0; i < events_.size(); ++i) {
    const GrayEvent& e = events_[i];
    if (i > 0) out += ", ";
    out += common::StrFormat("w%d x%.1f @[%.2fs,%.2fs)", e.worker,
                             e.delay_factor, e.start, e.end);
  }
  return out + ")";
}

// -- CompositeFaults --------------------------------------------------------

CompositeFaults::CompositeFaults(
    std::vector<std::unique_ptr<FaultSchedule>> parts)
    : parts_(std::move(parts)) {
  for (const auto& p : parts_) FELA_CHECK(p != nullptr);
}

bool CompositeFaults::IsDownAt(SimTime time, int worker) const {
  for (const auto& p : parts_) {
    if (p->IsDownAt(time, worker)) return true;
  }
  return false;
}

SimTime CompositeFaults::NextTransitionAfter(SimTime t) const {
  SimTime best = kNeverTime;
  for (const auto& p : parts_) best = std::min(best, p->NextTransitionAfter(t));
  return best;
}

bool CompositeFaults::DropControl(uint64_t seq) const {
  for (const auto& p : parts_) {
    if (p->DropControl(seq)) return true;
  }
  return false;
}

bool CompositeFaults::DuplicateControl(uint64_t seq) const {
  for (const auto& p : parts_) {
    if (p->DuplicateControl(seq)) return true;
  }
  return false;
}

bool CompositeFaults::Partitioned(SimTime time, int a, int b) const {
  for (const auto& p : parts_) {
    if (p->Partitioned(time, a, b)) return true;
  }
  return false;
}

double CompositeFaults::ControlDelayFactor(SimTime time, int worker) const {
  double factor = 1.0;
  for (const auto& p : parts_) {
    factor = std::max(factor, p->ControlDelayFactor(time, worker));
  }
  return factor;
}

common::Status CompositeFaults::Validate(int num_workers) const {
  for (const auto& p : parts_) {
    common::Status s = p->Validate(num_workers);
    if (!s.ok()) return s;
  }
  return common::Status::Ok();
}

std::string CompositeFaults::ToString() const {
  std::string out = "composite(";
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) out += " + ";
    out += parts_[i]->ToString();
  }
  return out + ")";
}

// -- FaultMonitor -----------------------------------------------------------

FaultMonitor::FaultMonitor(Simulator* sim, const FaultSchedule* faults,
                           int num_workers, Callbacks cbs)
    : sim_(sim), faults_(faults), cbs_(std::move(cbs)) {
  FELA_CHECK(sim != nullptr && faults != nullptr);
  FELA_CHECK_GT(num_workers, 0);
  down_.assign(static_cast<size_t>(num_workers), false);
  cut_.assign(static_cast<size_t>(num_workers), false);
}

void FaultMonitor::Start() {
  if (!faults_->Active()) return;
  const SimTime now = sim_->now();
  for (size_t w = 0; w < down_.size(); ++w) {
    down_[w] = faults_->IsDownAt(now, static_cast<int>(w));
    if (down_[w] && cbs_.on_crash) cbs_.on_crash(static_cast<int>(w));
  }
  RefreshCuts();
  ScheduleNext(now);
}

void FaultMonitor::Stop() {
  if (pending_ != kInvalidEventId) {
    sim_->Cancel(pending_);
    pending_ = kInvalidEventId;
  }
}

void FaultMonitor::ScheduleNext(SimTime after) {
  const SimTime next = faults_->NextTransitionAfter(after);
  if (IsNever(next)) return;
  pending_ = sim_->ScheduleAt(next, [this] {
    pending_ = kInvalidEventId;
    OnWakeup();
  });
}

void FaultMonitor::OnWakeup() {
  const SimTime now = sim_->now();
  for (size_t w = 0; w < down_.size(); ++w) {
    const bool d = faults_->IsDownAt(now, static_cast<int>(w));
    if (d == down_[w]) continue;
    down_[w] = d;
    if (d) {
      if (cbs_.on_crash) cbs_.on_crash(static_cast<int>(w));
    } else {
      if (cbs_.on_recover) cbs_.on_recover(static_cast<int>(w));
    }
  }
  RefreshCuts();
  ScheduleNext(now);
}

void FaultMonitor::RefreshCuts() {
  if (!anchor_ || !faults_->Active()) return;
  const SimTime now = sim_->now();
  const int anchor = anchor_();
  // Two passes: settle all state first so callbacks observe a consistent
  // IsCut view (the engine's quorum check reads it mid-callback).
  std::vector<int> cuts;
  std::vector<int> heals;
  for (size_t w = 0; w < cut_.size(); ++w) {
    const int worker = static_cast<int>(w);
    const bool c = faults_->Partitioned(now, worker, anchor);
    if (c == cut_[w]) continue;
    cut_[w] = c;
    (c ? cuts : heals).push_back(worker);
  }
  for (int w : cuts) {
    if (cbs_.on_cut) cbs_.on_cut(w);
  }
  for (int w : heals) {
    if (cbs_.on_heal) cbs_.on_heal(w);
  }
}

}  // namespace fela::sim
