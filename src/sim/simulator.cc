#include "sim/simulator.h"

#include <utility>

#include "common/logging.h"

namespace fela::sim {

EventId Simulator::Schedule(SimTime delay, EventFn fn) {
  FELA_CHECK_GE(delay, 0.0);
  return queue_.Push(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(SimTime when, EventFn fn) {
  FELA_CHECK_GE(when, now_);
  return queue_.Push(when, std::move(fn));
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  auto [when, fn] = queue_.Pop();
  if (when < now_) {
    ++causality_violations_;  // the clock never runs backwards
  } else {
    now_ = when;
  }
  ++events_processed_;
  fn();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.PeekTime() <= deadline) {
    Step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace fela::sim
