#ifndef FELA_LINT_CALLGRAPH_H_
#define FELA_LINT_CALLGRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"

namespace fela::lint {

/// A conservative whole-tree symbol index and call graph: the IR the
/// interprocedural rules (transitive-wall-clock, transitive-rng,
/// order-leak, guarded-by, sweep-shared-state) run on. It is built
/// from the lexed token stream with a scope-tracking parser, not a real
/// C++ frontend, so it deliberately over-approximates: every
/// `identifier(` inside a function body is a potential call, and calls
/// bind to *every* function definition sharing the callee's unqualified
/// name. Over-approximation keeps the analysis sound for the rules'
/// purpose (missing a determinism leak is worse than naming one extra
/// chain); suppressions and the findings baseline absorb the rest.

/// One potential call inside a function body.
struct CallSite {
  std::string callee;  // unqualified name as written
  int line = 0;        // 1-based
};

/// One function (or method) definition.
struct FunctionDef {
  std::string name;        // unqualified ("Register", "~TokenRegistry")
  std::string class_name;  // enclosing class or out-of-line qualifier; ""
  std::string file;
  int line = 0;        // 1-based line the signature starts on
  int body_begin = 0;  // line of the opening '{'
  int body_end = 0;    // line of the closing '}'
  std::vector<std::string> requires_locks;  // FELA_REQUIRES(...) mutexes
  std::vector<CallSite> calls;
  std::vector<int> mutable_static_lines;  // non-const function-local statics
};

/// One `member FELA_GUARDED_BY(mutex)` annotation.
struct GuardedMember {
  std::string member;
  std::string mutex;
  std::string class_name;
  std::string file;
  int line = 0;
};

/// One namespace-scope mutable global (the codebase's `g_*` idiom, or
/// an instance of a FELA_THREAD_HOSTILE-annotated type).
struct GlobalDef {
  std::string name;
  std::string file;
  int line = 0;
  bool thread_hostile_type = false;
};

class SymbolIndex {
 public:
  /// Indexes one lexed file; call once per file, in sorted path order,
  /// then Finish() before querying.
  void IndexFile(const std::string& path, const FileText& text);

  /// Builds the name lookup; required before Resolve/taint queries.
  void Finish();

  const std::vector<FunctionDef>& functions() const { return functions_; }
  const std::vector<GuardedMember>& guarded_members() const {
    return guarded_members_;
  }
  const std::vector<GlobalDef>& mutable_globals() const {
    return mutable_globals_;
  }
  const std::set<std::string>& thread_hostile_types() const {
    return thread_hostile_types_;
  }

  /// Indices of every definition named `name` (unqualified match).
  const std::vector<size_t>& Resolve(const std::string& name) const;

  /// Index of the innermost function in `file` whose body spans `line`,
  /// or npos.
  size_t FunctionAt(const std::string& file, int line) const;

  static constexpr size_t npos = static_cast<size_t>(-1);

 private:
  std::vector<FunctionDef> functions_;
  std::vector<GuardedMember> guarded_members_;
  std::vector<GlobalDef> mutable_globals_;
  std::set<std::string> thread_hostile_types_;
  std::map<std::string, std::vector<size_t>> by_name_;
};

/// A taint source: function `function` directly contains hazard
/// `label` (e.g. "steady_clock") at `file`:`line`.
struct TaintSource {
  size_t function = 0;
  std::string label;
  std::string file;
  int line = 0;
};

/// The taint state of one function: the hazard it reaches and the call
/// chain (function indices, this function first, source function last)
/// that reaches it.
struct Taint {
  std::string label;
  std::string file;  // where the hazard itself lives
  int line = 0;
  std::vector<size_t> chain;
};

/// Propagates taint from `sources` to every function that (transitively)
/// calls one, by BFS over reversed call edges. Deterministic: shortest
/// chain wins, ties broken by function index order.
std::map<size_t, Taint> PropagateTaint(const SymbolIndex& index,
                                       const std::vector<TaintSource>& sources);

/// Every function reachable from definitions named by `roots` (the
/// roots themselves included), mapped to the call chain from its root
/// (root first). Deterministic BFS, shortest chain wins.
std::map<size_t, std::vector<size_t>> ReachableFrom(
    const SymbolIndex& index, const std::vector<std::string>& roots);

}  // namespace fela::lint

#endif  // FELA_LINT_CALLGRAPH_H_
