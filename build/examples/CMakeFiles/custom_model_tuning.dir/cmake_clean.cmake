file(REMOVE_RECURSE
  "CMakeFiles/custom_model_tuning.dir/custom_model_tuning.cpp.o"
  "CMakeFiles/custom_model_tuning.dir/custom_model_tuning.cpp.o.d"
  "custom_model_tuning"
  "custom_model_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_model_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
