#ifndef FELA_BASELINES_DP_ENGINE_H_
#define FELA_BASELINES_DP_ENGINE_H_

#include <memory>
#include <optional>
#include <string>

#include "model/cost_model.h"
#include "model/memory_model.h"
#include "model/model.h"
#include "runtime/cluster.h"
#include "runtime/engine.h"
#include "sim/span.h"

namespace fela::baselines {

/// The data-parallel (DP) baseline: every worker holds a full model
/// replica and trains total_batch / N samples per iteration under BSP,
/// synchronizing all parameters with a ring all-reduce (the Gloo pattern
/// of the paper's prototype). When the per-worker batch exceeds device
/// memory, the worker falls back to gradient accumulation over the
/// largest micro-batch that fits (DESIGN.md §1 item 3).
///
/// Fault behavior (the honest contrast to Fela's elasticity): DP has a
/// fixed membership, so a crash-affected worker must redo its whole
/// per-worker batch once it is back up — every peer waits at the barrier
/// meanwhile — and a worker that never recovers stalls the job forever
/// (RunStats::stalled).
class DpEngine : public runtime::Engine {
 public:
  DpEngine(runtime::Cluster* cluster, const model::Model& model,
           double total_batch);

  std::string name() const override { return "DP"; }
  runtime::RunStats Run(int iterations) override;

  /// Per-worker batch after the even split.
  double per_worker_batch() const { return per_worker_batch_; }
  /// Micro-batch actually executed (== per-worker batch when it fits).
  double micro_batch() const { return micro_batch_; }
  int micro_steps() const { return micro_steps_; }

 private:
  void StartIteration(int iteration);
  void EnqueueCompute(int worker, double seconds);
  void OnWorkerComputeDone(int worker, double seconds);
  void OnAllReduceDone();

  runtime::Cluster* cluster_;
  model::Model model_;
  model::LayerCostModel cost_;
  model::MemoryModel memory_;
  double total_batch_;
  double per_worker_batch_;
  double micro_batch_;
  int micro_steps_;
  double param_bytes_;

  int target_iterations_ = 0;
  int current_iteration_ = 0;
  sim::SimTime iteration_start_ = 0.0;
  int workers_pending_ = 0;
  bool run_complete_ = false;
  /// When each worker's current compute attempt started (crash overlap
  /// with [start, finish] invalidates the attempt).
  std::vector<sim::SimTime> attempt_start_;
  runtime::RunStats stats_;
  /// Iteration framing span on the driver track (= num_workers).
  std::optional<obs::ScopedSpan> iter_span_;
};

}  // namespace fela::baselines

#endif  // FELA_BASELINES_DP_ENGINE_H_
