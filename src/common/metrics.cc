#include "common/metrics.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace fela::obs {

FixedHistogram::FixedHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  FELA_CHECK(!bounds_.empty()) << "histogram needs at least one bound";
  FELA_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
  counts_.assign(bounds_.size() + 1, 0);  // +1: overflow bucket
}

size_t FixedHistogram::BucketOf(double x) const {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  return static_cast<size_t>(it - bounds_.begin());
}

void FixedHistogram::Observe(double x) {
  FELA_CHECK(!counts_.empty()) << "observing a default-constructed histogram";
  ++counts_[BucketOf(x)];
  ++total_count_;
  sum_ += x;
}

void FixedHistogram::Merge(const FixedHistogram& other) {
  if (other.counts_.empty()) return;
  if (counts_.empty()) {
    *this = other;
    return;
  }
  FELA_CHECK(bounds_ == other.bounds_)
      << "merging histograms with different bucket bounds";
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_count_ += other.total_count_;
  sum_ += other.sum_;
}

double FixedHistogram::upper_bound(size_t bucket) const {
  if (bucket >= bounds_.size()) return std::numeric_limits<double>::infinity();
  return bounds_[bucket];
}

namespace {
std::string KeyOf(const std::string& name, const std::string& labels) {
  return name + "{" + labels + "}";
}

const char* KindName(int kind) {
  switch (kind) {
    case 0: return "counter";
    case 1: return "gauge";
    case 2: return "histogram";
  }
  return "?";
}
}  // namespace

MetricsRegistry::Entry& MetricsRegistry::GetOrCreate(
    Kind kind, const std::string& name, const std::string& labels) {
  const std::string key = KeyOf(name, labels);
  auto [it, inserted] = entries_.try_emplace(key);
  if (inserted) {
    it->second.kind = kind;
    it->second.name = name;
    it->second.labels = labels;
  } else {
    FELA_CHECK(it->second.kind == kind)
        << key << " already registered with a different metric kind";
  }
  return it->second;
}

const MetricsRegistry::Entry* MetricsRegistry::FindEntry(
    Kind kind, const std::string& name, const std::string& labels) const {
  const auto it = entries_.find(KeyOf(name, labels));
  if (it == entries_.end() || it->second.kind != kind) return nullptr;
  return &it->second;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& labels) {
  return GetOrCreate(Kind::kCounter, name, labels).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& labels) {
  return GetOrCreate(Kind::kGauge, name, labels).gauge;
}

FixedHistogram& MetricsRegistry::GetHistogram(const std::string& name,
                                              const std::string& labels,
                                              std::vector<double> bounds) {
  Entry& e = GetOrCreate(Kind::kHistogram, name, labels);
  if (e.histogram.bucket_count() == 0) {
    e.histogram = FixedHistogram(std::move(bounds));
  }
  return e.histogram;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name,
                                            const std::string& labels) const {
  const Entry* e = FindEntry(Kind::kCounter, name, labels);
  return e == nullptr ? nullptr : &e->counter;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name,
                                        const std::string& labels) const {
  const Entry* e = FindEntry(Kind::kGauge, name, labels);
  return e == nullptr ? nullptr : &e->gauge;
}

const FixedHistogram* MetricsRegistry::FindHistogram(
    const std::string& name, const std::string& labels) const {
  const Entry* e = FindEntry(Kind::kHistogram, name, labels);
  return e == nullptr ? nullptr : &e->histogram;
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [key, e] : other.entries_) {
    Entry& mine = GetOrCreate(e.kind, e.name, e.labels);
    switch (e.kind) {
      case Kind::kCounter:
        mine.counter.Increment(e.counter.value());
        break;
      case Kind::kGauge:
        mine.gauge.Set(e.gauge.value());
        break;
      case Kind::kHistogram:
        mine.histogram.Merge(e.histogram);
        break;
    }
  }
}

void MetricsRegistry::Clear() { entries_.clear(); }

std::string MetricsRegistry::ToCsv() const {
  std::string out = "kind,name,labels,field,value\n";
  for (const auto& [key, e] : entries_) {
    const std::string prefix = common::StrFormat(
        "%s,%s,\"%s\",", KindName(static_cast<int>(e.kind)), e.name.c_str(),
        e.labels.c_str());
    switch (e.kind) {
      case Kind::kCounter:
        out += prefix + common::StrFormat("value,%llu\n",
            static_cast<unsigned long long>(e.counter.value()));
        break;
      case Kind::kGauge:
        out += prefix + common::StrFormat("value,%.9g\n", e.gauge.value());
        break;
      case Kind::kHistogram: {
        const FixedHistogram& h = e.histogram;
        for (size_t b = 0; b < h.bucket_count(); ++b) {
          const std::string le =
              b + 1 == h.bucket_count()
                  ? std::string("+inf")
                  : common::StrFormat("%.9g", h.upper_bound(b));
          out += prefix + common::StrFormat(
              "le=%s,%llu\n", le.c_str(),
              static_cast<unsigned long long>(h.count(b)));
        }
        out += prefix + common::StrFormat("sum,%.9g\n", h.sum());
        out += prefix + common::StrFormat("count,%llu\n",
            static_cast<unsigned long long>(h.total_count()));
        break;
      }
    }
  }
  return out;
}

common::Json MetricsRegistry::ToJson() const {
  common::Json arr = common::Json::Array();
  for (const auto& [key, e] : entries_) {
    common::Json m = common::Json::Object();
    m.Set("kind", KindName(static_cast<int>(e.kind)));
    m.Set("name", e.name);
    m.Set("labels", e.labels);
    switch (e.kind) {
      case Kind::kCounter:
        m.Set("value", static_cast<double>(e.counter.value()));
        break;
      case Kind::kGauge:
        m.Set("value", e.gauge.value());
        break;
      case Kind::kHistogram: {
        const FixedHistogram& h = e.histogram;
        // `bounds` holds only the finite upper bounds; `counts` has one
        // extra trailing entry, the overflow bucket (JSON has no +inf).
        common::Json bounds = common::Json::Array();
        common::Json counts = common::Json::Array();
        for (const double b : h.bounds()) bounds.Append(b);
        for (size_t b = 0; b < h.bucket_count(); ++b) {
          counts.Append(static_cast<double>(h.count(b)));
        }
        m.Set("bounds", std::move(bounds));
        m.Set("counts", std::move(counts));
        m.Set("sum", h.sum());
        m.Set("count", static_cast<double>(h.total_count()));
        break;
      }
    }
    arr.Append(std::move(m));
  }
  // Entries are already ordered by the registry's sorted key map; this
  // canonicalizes member order inside each entry too, so two exports of
  // equal registries are byte-identical however they were built.
  arr.SortKeysRecursive();
  return arr;
}

}  // namespace fela::obs
