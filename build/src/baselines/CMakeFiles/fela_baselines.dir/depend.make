# Empty dependencies file for fela_baselines.
# This may be replaced when dependencies are built.
