// Figure 8: average-throughput comparison in the non-straggler scenario
// (Fela vs DP / MP / HP, VGG19 and GoogLeNet, 100 iterations each).
//
// Paper reference:
//   VGG19:     Fela vs DP 9.98%~3.23x, vs MP 5.18x~8.12x, vs HP 15.77%~49.65%
//   GoogLeNet: Fela vs DP 13.25%~2.15x, vs MP 3.63x~12.22x, vs HP 19.01%~1.85x

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/zoo.h"

int main(int argc, char** argv) {
  using namespace fela;
  const bench::BenchOptions opts = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader("Figure 8: AT Comparison in Non-Straggler Scenario");

  struct ModelCase {
    model::Model model;
    std::vector<double> batches;
    const char* panel;
  };
  std::vector<ModelCase> cases = {
      {model::zoo::Vgg19(), bench::Vgg19Batches(), "(a) VGG19"},
      {model::zoo::GoogLeNet(), bench::GoogLeNetBatches(), "(b) GoogLeNet"},
  };
  if (opts.smoke) cases.erase(cases.begin() + 1, cases.end());

  // Stage every (model, batch) point on the sweep runner, then render
  // serially in sweep order — output is byte-identical for any --jobs.
  struct Point {
    size_t case_index;
    double batch;
    suite::FourWayResult result;
  };
  std::vector<Point> points;
  for (size_t ci = 0; ci < cases.size(); ++ci) {
    for (double batch : opts.Sweep(cases[ci].batches)) {
      points.push_back(Point{ci, batch, {}});
    }
  }
  runtime::SweepRunner runner = opts.Runner();
  for (Point& pt : points) {
    runner.Add([&opts, &cases, &pt] {
      const auto& mc = cases[pt.case_index];
      runtime::ExperimentSpec spec;
      spec.total_batch = pt.batch;
      spec.iterations = opts.iterations();
      spec.observe = opts.json;
      const auto cfg = suite::TunedFelaConfig(mc.model, pt.batch, 8,
                                              opts.smoke ? 1 : 5);
      pt.result = suite::CompareAll(mc.model, spec,
                                    runtime::NoStragglerFactory(), cfg);
    });
  }
  runner.RunAll();

  obs::BenchReport report("fig8_nonstraggler");
  size_t next_point = 0;
  for (size_t ci = 0; ci < cases.size(); ++ci) {
    const auto& mc = cases[ci];
    std::vector<runtime::ComparisonRow> rows;
    for (; next_point < points.size() && points[next_point].case_index == ci;
         ++next_point) {
      const Point& pt = points[next_point];
      const suite::FourWayResult& r = pt.result;
      rows.push_back(runtime::ComparisonRow{pt.batch, r.Throughputs()});
      for (const auto* er : {&r.dp, &r.mp, &r.hp, &r.fela}) {
        report.Add(*er, pt.batch);
      }
      if (r.fela.observed) {
        std::printf("\n[batch %g]\n", pt.batch);
        std::cout << runtime::RenderAttributionTable(r.fela.attribution);
      }
    }
    std::printf("\n%s\n", mc.panel);
    std::cout << runtime::RenderComparisonTable(
        "average throughput (samples/s) vs total batch size", "batch",
        suite::EngineNames(), rows, suite::kFelaColumn);
    bench::PrintGainSummary(mc.model.name(), rows);
  }
  std::printf(
      "\npaper: VGG19 Fela vs DP 9.98%%~3.23x, MP 5.18x~8.12x, HP "
      "15.77%%~49.65%%\n"
      "       GoogLeNet Fela vs DP 13.25%%~2.15x, MP 3.63x~12.22x, HP "
      "19.01%%~1.85x\n");
  runtime::ExperimentSpec gate;
  gate.total_batch = 256;
  gate.iterations = 4;
  const int rc = bench::VerifyDeterminismGate(
      opts, "fig8", gate,
      suite::FelaFactory(model::zoo::GoogLeNet(),
                         core::FelaConfig::Defaults(3, 8)),
      runtime::NoStragglerFactory());
  return bench::FinishBench(opts, report) | rc;
}
