#include "sim/gpu.h"

#include <gtest/gtest.h>

namespace fela::sim {
namespace {

TEST(GpuTest, TasksRunFifo) {
  Simulator sim;
  GpuDevice gpu(&sim, 0);
  SimTime a = 0.0, b = 0.0;
  gpu.Enqueue(1.0, [&] { a = sim.now(); });
  gpu.Enqueue(2.0, [&] { b = sim.now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(a, 1.0);
  EXPECT_DOUBLE_EQ(b, 3.0);
}

TEST(GpuTest, BusyTimeAccumulates) {
  Simulator sim;
  GpuDevice gpu(&sim, 0);
  gpu.Enqueue(1.5, [] {});
  gpu.Enqueue(0.5, [] {});
  sim.Run();
  EXPECT_DOUBLE_EQ(gpu.busy_time(), 2.0);
}

TEST(GpuTest, LateSubmissionStartsAtNow) {
  Simulator sim;
  GpuDevice gpu(&sim, 0);
  SimTime done = 0.0;
  sim.Schedule(5.0, [&] {
    gpu.Enqueue(1.0, [&] { done = sim.now(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(done, 6.0);
  EXPECT_DOUBLE_EQ(gpu.busy_time(), 1.0);  // idle gap not counted
}

TEST(GpuTest, BlockUntilDelaysSubsequentWork) {
  Simulator sim;
  GpuDevice gpu(&sim, 0);
  gpu.BlockUntil(2.0);
  SimTime done = 0.0;
  gpu.Enqueue(1.0, [&] { done = sim.now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(done, 3.0);
  EXPECT_DOUBLE_EQ(gpu.injected_sleep(), 2.0);
  EXPECT_DOUBLE_EQ(gpu.busy_time(), 1.0);
}

TEST(GpuTest, BlockUntilPastTimeIsNoOp) {
  Simulator sim;
  GpuDevice gpu(&sim, 0);
  gpu.Enqueue(5.0, [] {});
  gpu.BlockUntil(1.0);  // device already busy past 1.0
  EXPECT_DOUBLE_EQ(gpu.injected_sleep(), 0.0);
  EXPECT_DOUBLE_EQ(gpu.free_at(), 5.0);
}

TEST(GpuTest, BlockExtendsBusyDevice) {
  Simulator sim;
  GpuDevice gpu(&sim, 0);
  gpu.Enqueue(1.0, [] {});
  gpu.BlockUntil(4.0);
  SimTime done = 0.0;
  gpu.Enqueue(1.0, [&] { done = sim.now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(done, 5.0);
  EXPECT_DOUBLE_EQ(gpu.injected_sleep(), 3.0);
}

TEST(GpuTest, ZeroDurationTaskAllowed) {
  Simulator sim;
  GpuDevice gpu(&sim, 0);
  bool fired = false;
  gpu.Enqueue(0.0, [&] { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
}

TEST(GpuTest, ResetStatsClears) {
  Simulator sim;
  GpuDevice gpu(&sim, 0);
  gpu.BlockUntil(1.0);
  gpu.Enqueue(1.0, [] {});
  sim.Run();
  gpu.ResetStats();
  EXPECT_DOUBLE_EQ(gpu.busy_time(), 0.0);
  EXPECT_DOUBLE_EQ(gpu.injected_sleep(), 0.0);
}

TEST(GpuDeathTest, NegativeDurationAborts) {
  Simulator sim;
  GpuDevice gpu(&sim, 0);
  EXPECT_DEATH(gpu.Enqueue(-1.0, [] {}), "Check failed");
}

}  // namespace
}  // namespace fela::sim
