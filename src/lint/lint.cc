#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "common/json.h"
#include "common/string_util.h"
#include "common/table.h"

namespace fela::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"wall-clock",
     "wall-clock time source in deterministic simulation code (use "
     "sim::Simulator::now())"},
    {"unseeded-rng",
     "unseeded or global randomness (all stochastic behaviour must flow "
     "through a seeded fela::common::Rng)"},
    {"unordered-iter",
     "iteration over a std::unordered_{map,set} member whose body emits "
     "events/output/IDs (iterate a sorted key snapshot instead)"},
    {"discarded-status", "discarded Status/Result return value"},
    {"float-eq",
     "exact floating-point ==/!= comparison in simulation code (compare "
     "against an epsilon, or suppress if exactness is intended)"},
    {"untraced-event",
     "event-queue mutation (Schedule/ScheduleAt) in an engine hot path "
     "whose function records no FELA_TRACE"},
    {"untokenized-trace",
     "raw string detail at a trace/span call site (FELA_TRACE, "
     "Record, Emit); tokenize with FELA_TOK so the hot path stays "
     "allocation-free"},
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ---------------------------------------------------------------------------
// Preprocessing: split source text into per-line code (comments blanked,
// string/char literal contents blanked) and per-line comment text. Keeping
// the columns aligned makes reported positions meaningful and lets the
// rules do plain substring scans without tripping on literals.
// ---------------------------------------------------------------------------

struct FileText {
  std::vector<std::string> code;
  std::vector<std::string> comments;
};

FileText Preprocess(const std::string& contents) {
  FileText out;
  std::string code_line;
  std::string comment_line;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  bool escaped = false;

  auto flush_line = [&] {
    out.code.push_back(code_line);
    out.comments.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
  };

  for (size_t i = 0; i < contents.size(); ++i) {
    const char c = contents[i];
    const char next = i + 1 < contents.size() ? contents[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      escaped = false;
      flush_line();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          code_line += '"';
        } else if (c == '\'') {
          state = State::kChar;
          code_line += '\'';
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        code_line += ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += "  ";
          ++i;
        } else {
          comment_line += c;
          code_line += ' ';
        }
        break;
      case State::kString:
        if (escaped) {
          escaped = false;
          code_line += ' ';
        } else if (c == '\\') {
          escaped = true;
          code_line += ' ';
        } else if (c == '"') {
          state = State::kCode;
          code_line += '"';
        } else {
          code_line += ' ';
        }
        break;
      case State::kChar:
        if (escaped) {
          escaped = false;
          code_line += ' ';
        } else if (c == '\\') {
          escaped = true;
          code_line += ' ';
        } else if (c == '\'') {
          state = State::kCode;
          code_line += '\'';
        } else {
          code_line += ' ';
        }
        break;
    }
  }
  flush_line();
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions: `// fela-lint: allow(rule-a, rule-b) optional rationale`.
// A suppression on a comment-only line also covers the next code line.
// ---------------------------------------------------------------------------

std::vector<std::set<std::string>> ParseSuppressions(const FileText& text) {
  std::vector<std::set<std::string>> allowed(text.comments.size());
  for (size_t i = 0; i < text.comments.size(); ++i) {
    const std::string& comment = text.comments[i];
    const size_t tag = comment.find("fela-lint:");
    if (tag == std::string::npos) continue;
    const size_t open = comment.find("allow(", tag);
    if (open == std::string::npos) continue;
    const size_t close = comment.find(')', open);
    if (close == std::string::npos) continue;
    std::string rule;
    for (size_t p = open + 6; p <= close; ++p) {
      const char c = p < close ? comment[p] : ',';
      if (c == ',' || c == ' ') {
        if (!rule.empty()) allowed[i].insert(rule);
        rule.clear();
      } else {
        rule += c;
      }
    }
  }
  return allowed;
}

bool LineHasCode(const std::string& code_line) {
  return std::any_of(code_line.begin(), code_line.end(), [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) == 0;
  });
}

bool Suppressed(const std::vector<std::set<std::string>>& allowed,
                const std::vector<std::string>& code, size_t line_index,
                const std::string& rule) {
  if (line_index < allowed.size() && allowed[line_index].count(rule) > 0) {
    return true;
  }
  // Walk back over comment-only / blank lines: their allow() covers the
  // next code line (this one).
  for (size_t i = line_index; i > 0;) {
    --i;
    if (LineHasCode(code[i])) break;
    if (allowed[i].count(rule) > 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Small scanning helpers
// ---------------------------------------------------------------------------

/// Position of `word` in `line` with identifier boundaries on both sides,
/// or npos.
size_t FindWord(const std::string& line, const std::string& word,
                size_t from = 0) {
  size_t pos = line.find(word, from);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return pos;
    pos = line.find(word, pos + 1);
  }
  return std::string::npos;
}

bool ContainsWord(const std::string& line, const std::string& word) {
  return FindWord(line, word) != std::string::npos;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Path components of `path`, e.g. "src/core/worker.cc" -> {src,core,...}.
std::vector<std::string> PathComponents(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '/' || c == '\\') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

bool HasComponent(const std::vector<std::string>& parts,
                  std::initializer_list<const char*> names) {
  for (const auto& p : parts) {
    for (const char* n : names) {
      if (p == n) return true;
    }
  }
  return false;
}

/// The last identifier of an operand chain read backwards from `pos`
/// (exclusive): `a.when` -> "when", `h.sum()` -> "sum", `x` -> "x".
std::string OperandIdentBackward(const std::string& line, size_t pos) {
  size_t i = pos;
  while (i > 0 && line[i - 1] == ' ') --i;
  // Balance back over a trailing call `(...)`.
  if (i > 0 && line[i - 1] == ')') {
    int depth = 0;
    while (i > 0) {
      --i;
      if (line[i] == ')') ++depth;
      if (line[i] == '(') {
        --depth;
        if (depth == 0) break;
      }
    }
  }
  size_t end = i;
  while (i > 0 && IsIdentChar(line[i - 1])) --i;
  return line.substr(i, end - i);
}

/// The last identifier of an operand chain read forwards from `pos`:
/// `b.when` -> "when", `b.duration()` -> "duration", `0.0` -> "".
std::string OperandIdentForward(const std::string& line, size_t pos,
                                bool* is_float_literal) {
  *is_float_literal = false;
  size_t i = pos;
  while (i < line.size() && (line[i] == ' ' || line[i] == '-' ||
                             line[i] == '+' || line[i] == '(')) {
    ++i;
  }
  if (i < line.size() && std::isdigit(static_cast<unsigned char>(line[i]))) {
    // Number literal: float iff it has a '.' or exponent (and isn't hex).
    const size_t start = i;
    bool has_dot = false;
    bool has_exp = false;
    bool hex = i + 1 < line.size() && line[i] == '0' &&
               (line[i + 1] == 'x' || line[i + 1] == 'X');
    while (i < line.size() &&
           (IsIdentChar(line[i]) || line[i] == '.' ||
            ((line[i] == '+' || line[i] == '-') && i > start &&
             (line[i - 1] == 'e' || line[i - 1] == 'E')))) {
      if (line[i] == '.') has_dot = true;
      if (!hex && (line[i] == 'e' || line[i] == 'E')) has_exp = true;
      ++i;
    }
    *is_float_literal = !hex && (has_dot || has_exp);
    return std::string();
  }
  std::string last;
  while (i < line.size()) {
    if (IsIdentChar(line[i])) {
      size_t start = i;
      while (i < line.size() && IsIdentChar(line[i])) ++i;
      last = line.substr(start, i - start);
      continue;
    }
    if (line[i] == '.' || (line[i] == '-' && i + 1 < line.size() &&
                           line[i + 1] == '>')) {
      i += line[i] == '.' ? 1 : 2;
      continue;
    }
    break;
  }
  return last;
}

/// True when the operand ending just before `pos` is a float literal,
/// e.g. `bytes == 0.0` checking the right side of `==` is handled by
/// OperandIdentForward; this covers `0.0 == bytes`.
bool FloatLiteralBackward(const std::string& line, size_t pos) {
  size_t i = pos;
  while (i > 0 && line[i - 1] == ' ') --i;
  size_t end = i;
  bool has_dot = false;
  while (i > 0 && (IsIdentChar(line[i - 1]) || line[i - 1] == '.')) {
    --i;
    if (line[i] == '.') has_dot = true;
  }
  if (i == end) return false;
  if (std::isdigit(static_cast<unsigned char>(line[i])) == 0) return false;
  return has_dot || line.substr(i, end - i).find_first_of("eE") !=
                        std::string::npos;
}

// ---------------------------------------------------------------------------
// Declaration collectors
// ---------------------------------------------------------------------------

/// Member/local names declared as std::unordered_{map,set} in this file.
std::set<std::string> CollectUnorderedMembers(const FileText& text) {
  std::set<std::string> members;
  for (const std::string& line : text.code) {
    if (line.find("unordered_map<") == std::string::npos &&
        line.find("unordered_set<") == std::string::npos) {
      continue;
    }
    // Declarations only: `std::unordered_map<K, V> name_;` — skip
    // function signatures / parameters (they contain a '(').
    if (line.find('(') != std::string::npos) continue;
    const size_t semi = line.rfind(';');
    if (semi == std::string::npos) continue;
    size_t e = semi;
    while (e > 0 && std::isspace(static_cast<unsigned char>(line[e - 1]))) --e;
    size_t b = e;
    while (b > 0 && IsIdentChar(line[b - 1])) --b;
    if (b < e) members.insert(line.substr(b, e - b));
  }
  return members;
}

/// Names of functions declared/defined with a Status or Result<> return
/// type anywhere in the file.
void CollectStatusFunctions(const FileText& text,
                            std::set<std::string>* names) {
  for (const std::string& line : text.code) {
    for (const char* ret : {"Status", "Result"}) {
      size_t pos = FindWord(line, ret);
      while (pos != std::string::npos) {
        size_t p = pos + std::string(ret).size();
        if (std::string(ret) == "Result") {
          // Skip the template argument list `<T>`.
          if (p >= line.size() || line[p] != '<') {
            pos = FindWord(line, ret, pos + 1);
            continue;
          }
          int depth = 0;
          while (p < line.size()) {
            if (line[p] == '<') ++depth;
            if (line[p] == '>') {
              --depth;
              if (depth == 0) {
                ++p;
                break;
              }
            }
            ++p;
          }
        }
        while (p < line.size() && (line[p] == ' ' || line[p] == '&')) ++p;
        size_t b = p;
        while (p < line.size() && IsIdentChar(line[p])) ++p;
        if (p > b && p < line.size() && line[p] == '(') {
          const std::string name = line.substr(b, p - b);
          // Constructors/factories named like the type are fine; also
          // skip macro-ish all-caps names.
          if (name != "Status" && name != "Result") names->insert(name);
        }
        pos = FindWord(line, ret, pos + 1);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

struct RuleContext {
  const std::string& path;
  const FileText& text;
  const std::vector<std::set<std::string>>& allowed;
  std::vector<Finding>* findings;

  void Report(size_t line_index, const char* rule, std::string message) {
    if (Suppressed(allowed, text.code, line_index, rule)) return;
    findings->push_back(Finding{path, static_cast<int>(line_index) + 1, rule,
                                std::move(message)});
  }
};

void CheckWallClock(RuleContext& ctx) {
  static const char* kPatterns[] = {
      "system_clock",     "steady_clock", "high_resolution_clock",
      "gettimeofday",     "clock_gettime", "timespec_get",
      "QueryPerformanceCounter",
  };
  for (size_t i = 0; i < ctx.text.code.size(); ++i) {
    const std::string& line = ctx.text.code[i];
    for (const char* p : kPatterns) {
      if (ContainsWord(line, p)) {
        ctx.Report(i, "wall-clock",
                   common::StrFormat("wall-clock source '%s' in simulation "
                                     "code; use sim::Simulator::now()",
                                     p));
        break;
      }
    }
    // Bare time()/clock() calls (member functions like busy_time() have
    // an identifier character before the word and do not match).
    for (const char* p : {"time", "clock"}) {
      size_t pos = FindWord(line, p);
      bool hit = false;
      while (pos != std::string::npos) {
        size_t q = pos + std::string(p).size();
        const bool member =
            pos >= 1 && (line[pos - 1] == '.' ||
                         (pos >= 2 && line[pos - 2] == '-' &&
                          line[pos - 1] == '>'));
        if (!member && q < line.size() && line[q] == '(') {
          hit = true;
          break;
        }
        pos = FindWord(line, p, pos + 1);
      }
      if (hit) {
        ctx.Report(i, "wall-clock",
                   common::StrFormat("call to %s() in simulation code; use "
                                     "sim::Simulator::now()",
                                     p));
      }
    }
  }
}

void CheckUnseededRng(RuleContext& ctx) {
  static const char* kPatterns[] = {
      "rand",        "srand",         "random_device",
      "mt19937",     "mt19937_64",    "default_random_engine",
      "minstd_rand", "random_shuffle", "drand48",
  };
  for (size_t i = 0; i < ctx.text.code.size(); ++i) {
    const std::string& line = ctx.text.code[i];
    for (const char* p : kPatterns) {
      if (ContainsWord(line, p)) {
        ctx.Report(i, "unseeded-rng",
                   common::StrFormat("'%s' in simulation code; all "
                                     "randomness must flow through a seeded "
                                     "fela::common::Rng",
                                     p));
        break;
      }
    }
  }
}

/// Joins code lines [start, end] into one string for multi-line matching.
std::string JoinCode(const FileText& text, size_t start, size_t end) {
  std::string out;
  for (size_t i = start; i <= end && i < text.code.size(); ++i) {
    out += text.code[i];
    out += '\n';
  }
  return out;
}

void CheckUnorderedIter(RuleContext& ctx,
                        const std::set<std::string>& members) {
  if (members.empty()) return;
  static const char* kEmitters[] = {
      "Emit(",       "Record(",     "RecordLazy(",  "FELA_TRACE",
      "Schedule(",   "ScheduleAt(", "Push(",        "push_back(",
      "emplace_back(", "Append(",   "AddRow(",      "printf",
      "<<",          "SendControl(", "Transfer(",   "deliver_grant",
      "send_report", "send_request", "Increment(",  "Observe(",
  };
  const auto& code = ctx.text.code;
  for (size_t i = 0; i < code.size(); ++i) {
    const size_t for_pos = FindWord(code[i], "for");
    if (for_pos == std::string::npos) continue;
    // Collect the parenthesized loop header, possibly spanning lines.
    size_t line = i;
    size_t pos = code[i].find('(', for_pos);
    if (pos == std::string::npos) continue;
    std::string header;
    int depth = 0;
    size_t body_line = line;
    size_t body_col = 0;
    bool closed = false;
    while (line < code.size() && !closed) {
      for (size_t c = line == i ? pos : 0; c < code[line].size(); ++c) {
        const char ch = code[line][c];
        if (ch == '(') ++depth;
        if (ch == ')') {
          --depth;
          if (depth == 0) {
            closed = true;
            body_line = line;
            body_col = c + 1;
            break;
          }
        }
        header += ch;
      }
      if (!closed) ++line;
    }
    if (!closed) continue;
    // Range-for over a tracked member, or iterator loop on its begin().
    bool over_member = false;
    const size_t colon = header.find(':');
    if (colon != std::string::npos && header.find("::") != colon &&
        header.find(';') == std::string::npos) {
      const std::string range = header.substr(colon + 1);
      for (const auto& m : members) {
        if (ContainsWord(range, m)) {
          over_member = true;
          break;
        }
      }
    }
    if (!over_member) {
      for (const auto& m : members) {
        if (header.find(m + ".begin(") != std::string::npos ||
            header.find(m + ".cbegin(") != std::string::npos) {
          over_member = true;
          break;
        }
      }
    }
    if (!over_member) continue;
    // Find the loop body: `{...}` or a single statement up to ';'.
    size_t bl = body_line;
    size_t bc = body_col;
    while (bl < code.size()) {
      while (bc < code[bl].size() &&
             std::isspace(static_cast<unsigned char>(code[bl][bc]))) {
        ++bc;
      }
      if (bc < code[bl].size()) break;
      ++bl;
      bc = 0;
    }
    if (bl >= code.size()) continue;
    size_t end_line = bl;
    if (code[bl][bc] == '{') {
      int braces = 0;
      bool done = false;
      for (size_t l = bl; l < code.size() && !done; ++l) {
        for (size_t c = l == bl ? bc : 0; c < code[l].size(); ++c) {
          if (code[l][c] == '{') ++braces;
          if (code[l][c] == '}') {
            --braces;
            if (braces == 0) {
              end_line = l;
              done = true;
              break;
            }
          }
        }
      }
    } else {
      while (end_line < code.size() &&
             code[end_line].find(';') == std::string::npos) {
        ++end_line;
      }
    }
    const std::string body = JoinCode(ctx.text, bl, end_line);
    for (const char* e : kEmitters) {
      if (body.find(e) != std::string::npos) {
        ctx.Report(i, "unordered-iter",
                   common::StrFormat(
                       "iteration over unordered container emits output "
                       "('%s'); iterate a sorted key snapshot instead",
                       e));
        break;
      }
    }
  }
}

void CheckDiscardedStatus(RuleContext& ctx,
                          const std::set<std::string>& status_fns) {
  if (status_fns.empty()) return;
  const auto& code = ctx.text.code;
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string trimmed = Trim(code[i]);
    if (trimmed.empty()) continue;
    // Statement must start the line: optional `ns::` qualifiers, then a
    // tracked name, then '('.
    size_t p = 0;
    std::string name;
    while (p < trimmed.size()) {
      size_t b = p;
      while (p < trimmed.size() && IsIdentChar(trimmed[p])) ++p;
      if (p == b) break;
      name = trimmed.substr(b, p - b);
      if (p + 1 < trimmed.size() && trimmed[p] == ':' &&
          trimmed[p + 1] == ':') {
        p += 2;
        continue;
      }
      break;
    }
    if (name.empty() || status_fns.count(name) == 0) continue;
    if (p >= trimmed.size() || trimmed[p] != '(') continue;
    // Previous code line must end a statement (not an expression
    // continuation or a return/assignment spanning lines).
    size_t prev = i;
    std::string prev_trimmed;
    while (prev > 0) {
      --prev;
      prev_trimmed = Trim(code[prev]);
      if (!prev_trimmed.empty()) break;
    }
    if (!prev_trimmed.empty()) {
      const char last = prev_trimmed.back();
      if (last != ';' && last != '{' && last != '}' && last != ':') continue;
    }
    // Balance parens from the call across lines; the statement discards
    // the Status iff the matching ')' is immediately followed by ';'.
    int depth = 0;
    size_t l = i;
    size_t c = code[i].find(trimmed.substr(p), 0);
    c = code[i].find('(', code[i].find(name));
    bool discarded = false;
    bool done = false;
    for (; l < code.size() && !done; ++l, c = 0) {
      for (size_t k = c; k < code[l].size(); ++k) {
        const char ch = code[l][k];
        if (ch == '(') ++depth;
        if (ch == ')') {
          --depth;
          if (depth == 0) {
            size_t q = k + 1;
            while (q < code[l].size() && code[l][q] == ' ') ++q;
            // `.ok()` / `;` etc: only a bare `;` discards.
            discarded = q < code[l].size() && code[l][q] == ';';
            done = true;
            break;
          }
        }
      }
    }
    if (discarded) {
      ctx.Report(i, "discarded-status",
                 common::StrFormat("result of Status-returning '%s' is "
                                   "discarded",
                                   name.c_str()));
    }
  }
}

/// Identifiers declared with a floating-point type in this file
/// (variables, members, and functions returning double/float/SimTime).
std::set<std::string> CollectFloatIdents(const FileText& text) {
  std::set<std::string> idents;
  for (const std::string& line : text.code) {
    for (const char* type : {"double", "float", "SimTime"}) {
      size_t pos = FindWord(line, type);
      while (pos != std::string::npos) {
        size_t p = pos + std::string(type).size();
        while (p < line.size() && (line[p] == ' ' || line[p] == '&' ||
                                   line[p] == '*')) {
          ++p;
        }
        size_t b = p;
        while (p < line.size() && IsIdentChar(line[p])) ++p;
        if (p > b) idents.insert(line.substr(b, p - b));
        pos = FindWord(line, type, pos + 1);
      }
    }
  }
  return idents;
}

void CheckFloatEq(RuleContext& ctx) {
  const std::set<std::string> floats = CollectFloatIdents(ctx.text);
  const auto& code = ctx.text.code;
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    for (size_t pos = 0; pos + 1 < line.size(); ++pos) {
      const char a = line[pos];
      const char b = line[pos + 1];
      if (!((a == '=' && b == '=') || (a == '!' && b == '='))) continue;
      // Skip <=, >=, ===-ish, != inside 'operator!=' declarations.
      if (pos > 0 && (line[pos - 1] == '<' || line[pos - 1] == '>' ||
                      line[pos - 1] == '=' || line[pos - 1] == '!')) {
        continue;
      }
      if (pos + 2 < line.size() && line[pos + 2] == '=') continue;
      if (pos >= 8 && line.compare(pos - 8, 8, "operator") == 0) continue;
      const std::string left = OperandIdentBackward(line, pos);
      bool right_literal = false;
      const std::string right =
          OperandIdentForward(line, pos + 2, &right_literal);
      // Pointer/bool comparisons are fine even when the other operand's
      // name shadows a float.
      if (left == "nullptr" || right == "nullptr" || left == "true" ||
          right == "true" || left == "false" || right == "false") {
        continue;
      }
      const bool left_literal = FloatLiteralBackward(line, pos);
      const bool left_float = !left.empty() && floats.count(left) > 0;
      const bool right_float = !right.empty() && floats.count(right) > 0;
      if (left_literal || right_literal || left_float || right_float) {
        ctx.Report(i, "float-eq",
                   common::StrFormat(
                       "exact floating-point %s comparison ('%s' vs '%s')",
                       a == '=' ? "==" : "!=",
                       left_literal ? "<literal>" : left.c_str(),
                       right_literal ? "<literal>" : right.c_str()));
        pos += 2;
      }
    }
  }
}

void CheckUntracedEvent(RuleContext& ctx) {
  const auto& code = ctx.text.code;
  // Track namespace depth so function definitions (at namespace scope,
  // column 0 in this codebase's style) can be delimited by brace depth.
  int depth = 0;
  int ns_depth = 0;
  size_t fn_start = 0;
  bool in_fn = false;
  bool has_trace = false;
  int first_schedule = -1;
  auto finish_fn = [&](size_t) {
    if (first_schedule >= 0 && !has_trace) {
      ctx.Report(static_cast<size_t>(first_schedule), "untraced-event",
                 "Schedule()/ScheduleAt() in an engine hot path but the "
                 "enclosing function records no FELA_TRACE");
    }
    in_fn = false;
    has_trace = false;
    first_schedule = -1;
  };
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    const std::string trimmed = Trim(line);
    const bool is_namespace = trimmed.rfind("namespace", 0) == 0;
    if (!in_fn && depth == ns_depth && !trimmed.empty() &&
        trimmed[0] != '#' && trimmed[0] != '}' && !is_namespace &&
        line.find('(') != std::string::npos &&
        trimmed.rfind("using", 0) != 0 && trimmed.rfind("static_assert", 0) !=
            0) {
      in_fn = true;
      fn_start = i;
      has_trace = false;
      first_schedule = -1;
    }
    if (in_fn) {
      if (line.find("FELA_TRACE") != std::string::npos) has_trace = true;
      if (first_schedule < 0) {
        for (const char* p : {"Schedule(", "ScheduleAt("}) {
          const size_t pos = line.find(p);
          if (pos != std::string::npos && pos > 0 &&
              (line[pos - 1] == '.' || line[pos - 1] == '>')) {
            first_schedule = static_cast<int>(i);
            break;
          }
        }
      }
    }
    for (char c : line) {
      if (c == '{') {
        if (is_namespace && depth == ns_depth) ++ns_depth;
        ++depth;
      }
      if (c == '}') {
        --depth;
        if (depth < ns_depth) ns_depth = depth;
        if (in_fn && depth == ns_depth && i > fn_start) finish_fn(i);
      }
    }
    if (in_fn && depth == ns_depth && !trimmed.empty() &&
        trimmed.back() == ';' && i == fn_start &&
        line.find('{') == std::string::npos) {
      // A declaration, not a definition.
      in_fn = false;
    }
  }
  if (in_fn) finish_fn(code.size() - 1);
}

/// Flags trace/span call sites whose argument list still carries raw
/// string detail: a quoted literal outside any FELA_TOK(...) extent, or
/// a StrFormat/to_string/ToString call building the detail at runtime.
/// Both defeat tokenized tracing — the disabled hot path must stay
/// allocation-free and the binary transcript only carries tokens.
void CheckUntokenizedTrace(RuleContext& ctx) {
  const auto& code = ctx.text.code;
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    // Anchor on call sites: the FELA_TRACE macro, or a member call to
    // Record/RecordLazy/Emit (`x.Record(` / `p->Emit(`). Definitions and
    // qualified declarations (`TraceRecorder::Record(`) do not anchor.
    std::vector<size_t> opens;
    size_t pos = FindWord(line, "FELA_TRACE");
    while (pos != std::string::npos) {
      size_t p = pos + 10;
      while (p < line.size() && line[p] == ' ') ++p;
      if (p < line.size() && line[p] == '(') opens.push_back(p);
      pos = FindWord(line, "FELA_TRACE", pos + 1);
    }
    for (const char* fn : {"Record(", "RecordLazy(", "Emit("}) {
      const size_t len = std::string(fn).size();
      size_t q = line.find(fn);
      while (q != std::string::npos) {
        if (q > 0 && (line[q - 1] == '.' || line[q - 1] == '>')) {
          opens.push_back(q + len - 1);
        }
        q = line.find(fn, q + 1);
      }
    }
    for (size_t open : opens) {
      // Collect the full parenthesized extent, possibly spanning lines.
      std::string extent;
      int depth = 0;
      bool closed = false;
      for (size_t l = i; l < code.size() && !closed; ++l) {
        for (size_t c = l == i ? open : 0; c < code[l].size(); ++c) {
          const char ch = code[l][c];
          extent += ch;
          if (ch == '(') ++depth;
          if (ch == ')') {
            --depth;
            if (depth == 0) {
              closed = true;
              break;
            }
          }
        }
        extent += '\n';
      }
      if (!closed) continue;
      // Blank FELA_TOK(...) sub-extents — their format literal IS the
      // tokenized path this rule asks for.
      size_t tok = FindWord(extent, "FELA_TOK");
      while (tok != std::string::npos) {
        size_t p = extent.find('(', tok);
        int d = 0;
        size_t end = p;
        for (; p != std::string::npos && p < extent.size(); ++p) {
          if (extent[p] == '(') ++d;
          if (extent[p] == ')') {
            --d;
            if (d == 0) {
              end = p + 1;
              break;
            }
          }
        }
        for (size_t b = tok; b < end; ++b) extent[b] = ' ';
        tok = FindWord(extent, "FELA_TOK", end);
      }
      const char* culprit = nullptr;
      if (extent.find('"') != std::string::npos) {
        culprit = "string literal";
      } else if (ContainsWord(extent, "StrFormat")) {
        culprit = "StrFormat";
      } else if (ContainsWord(extent, "to_string") ||
                 ContainsWord(extent, "ToString")) {
        culprit = "to_string/ToString";
      }
      if (culprit != nullptr) {
        ctx.Report(i, "untokenized-trace",
                   common::StrFormat("raw %s detail at a trace call site; "
                                     "tokenize with FELA_TOK (or suppress "
                                     "for genuinely dynamic text)",
                                     culprit));
        break;  // one finding per line is enough
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Scoping + file orchestration
// ---------------------------------------------------------------------------

bool RuleEnabled(const Options& options, const char* rule) {
  return options.rules.empty() || options.rules.count(rule) > 0;
}

bool IsSimScoped(const std::vector<std::string>& parts) {
  return HasComponent(parts, {"sim", "core", "baselines", "runtime"});
}

bool IsEngineScoped(const std::string& path,
                    const std::vector<std::string>& parts) {
  const bool cc = path.size() > 3 && (path.rfind(".cc") == path.size() - 3 ||
                                      path.rfind(".cpp") == path.size() - 4);
  return cc && HasComponent(parts, {"core", "baselines"});
}

std::string SiblingHeaderPath(const std::string& path) {
  const size_t dot = path.rfind('.');
  if (dot == std::string::npos) return std::string();
  const std::string ext = path.substr(dot);
  if (ext != ".cc" && ext != ".cpp") return std::string();
  return path.substr(0, dot) + ".h";
}

/// Quoted #include targets of a file ("core/token_server.h"; angle
/// includes are system headers and carry no project members). Parsed
/// from the raw text — Preprocess blanks string literals, include
/// paths among them.
std::vector<std::string> CollectIncludes(const std::string& contents) {
  std::vector<std::string> out;
  std::istringstream in(contents);
  std::string line;
  while (std::getline(in, line)) {
    const std::string t = Trim(line);
    if (t.rfind("#include", 0) != 0) continue;
    const size_t open = t.find('"');
    if (open == std::string::npos) continue;
    const size_t close = t.find('"', open + 1);
    if (close == std::string::npos || close == open + 1) continue;
    out.push_back(t.substr(open + 1, close - open - 1));
  }
  return out;
}

/// True when `path` names `include_spec` (equal, or ends with
/// "/<include_spec>" — include specs are root-relative, scanned paths
/// may carry the root prefix).
bool PathMatchesInclude(const std::string& path,
                        const std::string& include_spec) {
  if (path == include_spec) return true;
  if (path.size() <= include_spec.size()) return false;
  return path.compare(path.size() - include_spec.size(), include_spec.size(),
                      include_spec) == 0 &&
         path[path.size() - include_spec.size() - 1] == '/';
}

bool ReadFile(const std::string& path, std::string* contents) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *contents = ss.str();
  return true;
}

}  // namespace

const std::vector<RuleInfo>& Rules() { return kRules; }

bool IsKnownRule(const std::string& rule) {
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const RuleInfo& r) { return rule == r.id; });
}

std::vector<Finding> LintFile(const std::string& path,
                              const std::string& contents,
                              const Options& options,
                              const std::set<std::string>&
                                  extra_unordered_members,
                              const std::set<std::string>& status_functions) {
  const FileText text = Preprocess(contents);
  const std::vector<std::set<std::string>> allowed = ParseSuppressions(text);
  const std::vector<std::string> parts = PathComponents(path);
  std::vector<Finding> findings;
  RuleContext ctx{path, text, allowed, &findings};

  if (IsSimScoped(parts)) {
    if (RuleEnabled(options, "wall-clock")) CheckWallClock(ctx);
    if (RuleEnabled(options, "unseeded-rng")) CheckUnseededRng(ctx);
    if (RuleEnabled(options, "float-eq")) CheckFloatEq(ctx);
    if (RuleEnabled(options, "untokenized-trace")) CheckUntokenizedTrace(ctx);
  }
  if (RuleEnabled(options, "unordered-iter")) {
    std::set<std::string> members = CollectUnorderedMembers(text);
    members.insert(extra_unordered_members.begin(),
                   extra_unordered_members.end());
    CheckUnorderedIter(ctx, members);
  }
  if (RuleEnabled(options, "discarded-status")) {
    std::set<std::string> fns = status_functions;
    CollectStatusFunctions(text, &fns);
    CheckDiscardedStatus(ctx, fns);
  }
  if (IsEngineScoped(path, parts) && RuleEnabled(options, "untraced-event")) {
    CheckUntracedEvent(ctx);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

bool LintTree(const std::vector<std::string>& roots, const Options& options,
              std::vector<Finding>* findings, std::string* error) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (auto it = fs::recursive_directory_iterator(root, ec);
           it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (ec) break;
        if (!it->is_regular_file()) continue;
        const std::string p = it->path().string();
        const std::string ext = it->path().extension().string();
        if (ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp") {
          files.push_back(p);
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      if (error != nullptr) *error = "cannot read " + root;
      return false;
    }
  }
  std::sort(files.begin(), files.end());

  // Pass 1: cross-file declaration collection.
  std::set<std::string> status_fns;
  std::map<std::string, std::set<std::string>> header_members;
  std::map<std::string, std::string> loaded;
  for (const std::string& f : files) {
    std::string contents;
    if (!ReadFile(f, &contents)) {
      if (error != nullptr) *error = "cannot read " + f;
      return false;
    }
    const FileText text = Preprocess(contents);
    CollectStatusFunctions(text, &status_fns);
    header_members[f] = CollectUnorderedMembers(text);
    loaded[f] = std::move(contents);
  }

  // Pass 2: lint each file. A file inherits unordered members from its
  // sibling header and from every directly-included project header, so
  // loops over containers declared one header away are still caught.
  findings->clear();
  for (const std::string& f : files) {
    std::set<std::string> extra;
    auto merge_header = [&](const std::string& header_path) {
      const auto it = header_members.find(header_path);
      if (it != header_members.end()) {
        extra.insert(it->second.begin(), it->second.end());
        return;
      }
      // The header may live outside the scanned roots.
      std::string contents;
      if (ReadFile(header_path, &contents)) {
        const std::set<std::string> m =
            CollectUnorderedMembers(Preprocess(contents));
        extra.insert(m.begin(), m.end());
      }
    };
    const std::string sibling = SiblingHeaderPath(f);
    if (!sibling.empty()) merge_header(sibling);
    const size_t slash = f.find_last_of("/\\");
    const std::string dir =
        slash == std::string::npos ? std::string() : f.substr(0, slash + 1);
    for (const std::string& inc : CollectIncludes(loaded[f])) {
      bool matched = false;
      for (const auto& [path, members] : header_members) {
        if (PathMatchesInclude(path, inc)) {
          extra.insert(members.begin(), members.end());
          matched = true;
        }
      }
      // Unscanned headers resolve relative to the includer's directory
      // (the other root-relative form was covered by the match above).
      if (!matched) merge_header(dir + inc);
    }
    std::vector<Finding> file_findings =
        LintFile(f, loaded[f], options, extra, status_fns);
    findings->insert(findings->end(), file_findings.begin(),
                     file_findings.end());
  }
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return true;
}

std::string FindingsToJson(const std::vector<Finding>& findings) {
  common::Json doc = common::Json::Object();
  doc.Set("count", static_cast<int>(findings.size()));
  common::Json arr = common::Json::Array();
  for (const Finding& f : findings) {
    common::Json row = common::Json::Object();
    row.Set("file", f.file);
    row.Set("line", f.line);
    row.Set("rule", f.rule);
    row.Set("message", f.message);
    arr.Append(std::move(row));
  }
  doc.Set("findings", std::move(arr));
  doc.SortKeysRecursive();
  return doc.Dump(1);
}

std::string FindingsToTable(const std::vector<Finding>& findings) {
  if (findings.empty()) return "fela-lint: clean\n";
  common::TablePrinter table({"location", "rule", "message"});
  for (const Finding& f : findings) {
    table.AddRow({common::StrFormat("%s:%d", f.file.c_str(), f.line), f.rule,
                  f.message});
  }
  return table.ToString() +
         common::StrFormat("\nfela-lint: %zu finding(s)\n", findings.size());
}

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  std::string format = "table";
  Options options;
  std::vector<std::string> paths;
  for (const std::string& arg : args) {
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "table" && format != "json") {
        err << "fela-lint: unknown format '" << format << "'\n";
        return 2;
      }
    } else if (arg.rfind("--rules=", 0) == 0) {
      std::string rule;
      for (char c : arg.substr(8) + ",") {
        if (c == ',') {
          if (!rule.empty()) {
            if (!IsKnownRule(rule)) {
              err << "fela-lint: unknown rule '" << rule << "'\n";
              return 2;
            }
            options.rules.insert(rule);
          }
          rule.clear();
        } else {
          rule += c;
        }
      }
    } else if (arg == "--list-rules") {
      for (const RuleInfo& r : Rules()) {
        out << r.id << ": " << r.summary << "\n";
      }
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      err << "fela-lint: unknown flag '" << arg << "'\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    err << "usage: fela-lint [--format=table|json] [--rules=a,b] "
           "[--list-rules] <path>...\n";
    return 2;
  }
  std::vector<Finding> findings;
  std::string error;
  if (!LintTree(paths, options, &findings, &error)) {
    err << "fela-lint: " << error << "\n";
    return 2;
  }
  out << (format == "json" ? FindingsToJson(findings)
                           : FindingsToTable(findings));
  return findings.empty() ? 0 : 1;
}

}  // namespace fela::lint
