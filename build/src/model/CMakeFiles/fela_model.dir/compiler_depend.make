# Empty compiler generated dependencies file for fela_model.
# This may be replaced when dependencies are built.
