#ifndef FELA_SIM_SIMULATOR_H_
#define FELA_SIM_SIMULATOR_H_

#include "sim/event_fn.h"
#include "sim/event_queue.h"
#include "sim/types.h"

namespace fela::sim {

/// The discrete-event simulation driver. Engines schedule callbacks;
/// Run() advances virtual time until no work remains. Single-threaded
/// and deterministic.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time in seconds.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  /// Accepts any void() callable (see EventFn: small captures schedule
  /// allocation-free).
  EventId Schedule(SimTime delay, EventFn fn);

  /// Schedules `fn` at absolute time `when` (>= now()).
  EventId ScheduleAt(SimTime when, EventFn fn);

  /// Cancels a pending event.
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  /// Executes the earliest pending event; returns false if none remain.
  bool Step();

  /// Runs until the queue is empty.
  void Run();

  /// Runs until the queue is empty or virtual time would exceed
  /// `deadline`; events after the deadline stay queued.
  void RunUntil(SimTime deadline);

  /// Number of events executed so far.
  uint64_t events_processed() const { return events_processed_; }

  /// Events that popped with a fire time earlier than the clock — i.e.
  /// the queue handed back an event from the past. Always 0 for a
  /// healthy queue; counted (rather than crashed on) so the invariant
  /// oracles can report the violation with full run context.
  uint64_t causality_violations() const { return causality_violations_; }

  bool idle() const { return queue_.empty(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  uint64_t events_processed_ = 0;
  uint64_t causality_violations_ = 0;
};

}  // namespace fela::sim

#endif  // FELA_SIM_SIMULATOR_H_
