// fela-lint fixture: the discarded-status rule must fire on line 9 (the
// bare DoWork() call) and nowhere else in this file.
namespace fela::fixture {

common::Status DoWork();

void Caller() {
  int kept = 0;
  DoWork();
  kept += 1;
  if (!DoWork().ok()) kept -= 1;
}

}  // namespace fela::fixture
