#ifndef FELA_SIM_TRACE_H_
#define FELA_SIM_TRACE_H_

#include <string>
#include <vector>

#include "sim/types.h"

namespace fela::sim {

/// Event categories recorded by engines when tracing is enabled.
enum class TraceKind {
  kIterationStart,
  kIterationEnd,
  kTokenRequest,
  kTokenGrant,
  kTokenComplete,
  kFetchStart,
  kFetchEnd,
  kComputeStart,
  kComputeEnd,
  kSyncStart,
  kSyncEnd,
  kStragglerSleep,
  kHelperSteal,
  kConflict,
  kWorkerCrash,
  kWorkerRecover,
  kControlDrop,
  kControlDup,
  kTokenReclaim,
  kRequestRetry,
};

const char* TraceKindName(TraceKind kind);

struct TraceEvent {
  SimTime time;
  NodeId node;
  TraceKind kind;
  std::string detail;
};

/// Bounded in-memory recorder for scheduling timelines. Disabled by
/// default (engines skip recording when !enabled()) so the hot path
/// stays allocation-free during large sweeps.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 100000) : capacity_(capacity) {}

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void Record(SimTime time, NodeId node, TraceKind kind, std::string detail);

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t dropped() const { return dropped_; }
  void Clear();

  /// Pretty timeline, one event per line: "[  1.2345s] w3 ComputeStart ...".
  std::string ToString() const;

 private:
  size_t capacity_;
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
  size_t dropped_ = 0;
};

}  // namespace fela::sim

#endif  // FELA_SIM_TRACE_H_
