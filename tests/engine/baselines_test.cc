#include <gtest/gtest.h>

#include "baselines/dp_engine.h"
#include "baselines/hp_engine.h"
#include "baselines/mp_engine.h"
#include "model/zoo.h"
#include "runtime/cluster.h"
#include "sim/collectives.h"

namespace fela::baselines {
namespace {

std::unique_ptr<runtime::Cluster> CleanCluster(int n = 8) {
  return runtime::Cluster::MakeDefault(n);
}

// ---------------------------------------------------------------- DP --

TEST(DpEngineTest, SplitsBatchEvenly) {
  auto cluster = CleanCluster();
  DpEngine dp(cluster.get(), model::zoo::Vgg19(), 256);
  EXPECT_DOUBLE_EQ(dp.per_worker_batch(), 32.0);
  EXPECT_EQ(dp.micro_steps(), 1);
}

TEST(DpEngineTest, GradientAccumulationWhenMemoryBound) {
  // VGG19 tops out below batch 64 on the 12 GB device; per-worker 128
  // must split into micro-steps.
  auto cluster = CleanCluster();
  DpEngine dp(cluster.get(), model::zoo::Vgg19(), 1024);
  EXPECT_DOUBLE_EQ(dp.per_worker_batch(), 128.0);
  EXPECT_GT(dp.micro_steps(), 1);
  EXPECT_LE(dp.micro_batch(), 64.0);
  EXPECT_NEAR(dp.micro_batch() * dp.micro_steps(), 128.0, 1e-9);
}

TEST(DpEngineTest, MovesFullModelRingAllReduceBytes) {
  auto cluster = CleanCluster();
  const model::Model m = model::zoo::Vgg19();
  DpEngine dp(cluster.get(), m, 256);
  const auto stats = dp.Run(2);
  // Ring all-reduce link bytes per iteration: 2*(P-1)*param_bytes.
  const double expected_per_iter = 2.0 * 7 * m.TotalParams() * 4.0;
  EXPECT_NEAR(stats.total_data_bytes, 2 * expected_per_iter,
              expected_per_iter * 0.01);
}

TEST(DpEngineTest, NetworkBytesIndependentOfBatch) {
  // §V-C1: "the amount of network transfer in DP does not change as the
  // batch size grows".
  auto c1 = CleanCluster();
  DpEngine small(c1.get(), model::zoo::Vgg19(), 64);
  auto c2 = CleanCluster();
  DpEngine large(c2.get(), model::zoo::Vgg19(), 1024);
  EXPECT_NEAR(small.Run(1).total_data_bytes, large.Run(1).total_data_bytes,
              1.0);
}

TEST(DpEngineTest, StragglerAddsFullDelayUnderBsp) {
  auto clean = CleanCluster();
  DpEngine e1(clean.get(), model::zoo::Vgg19(), 256);
  const double t_clean = e1.Run(4).total_time;
  runtime::Cluster slow(8, sim::Calibration::Default(),
                        std::make_unique<sim::RoundRobinStragglers>(8, 3.0));
  DpEngine e2(&slow, model::zoo::Vgg19(), 256);
  const double t_slow = e2.Run(4).total_time;
  // BSP waits for the straggler: every iteration pays the full d.
  EXPECT_NEAR(t_slow - t_clean, 4 * 3.0, 0.01);
}

TEST(DpEngineTest, IterationsUniformWithoutStragglers) {
  auto cluster = CleanCluster();
  DpEngine dp(cluster.get(), model::zoo::Vgg19(), 256);
  const auto stats = dp.Run(5);
  const double first = stats.iterations[0].duration();
  for (const auto& it : stats.iterations) {
    EXPECT_NEAR(it.duration(), first, 1e-9);
  }
}

// ---------------------------------------------------------------- MP --

TEST(MpEngineTest, StagesCoverModel) {
  auto cluster = CleanCluster();
  MpEngine mp(cluster.get(), model::zoo::Vgg19(), 128);
  EXPECT_EQ(mp.num_stages(), 8);
  EXPECT_EQ(mp.stages().front().first, 0);
  EXPECT_EQ(mp.stages().back().second, 18);
}

TEST(MpEngineTest, MicroBatchCount) {
  auto cluster = CleanCluster();
  MpEngine mp(cluster.get(), model::zoo::Vgg19(), 128, 4.0);
  EXPECT_EQ(mp.num_micro_batches(), 32);
}

TEST(MpEngineTest, RaggedLastMicroBatchHandled) {
  auto cluster = CleanCluster();
  MpEngine mp(cluster.get(), model::zoo::Vgg19(), 130, 4.0);
  EXPECT_EQ(mp.num_micro_batches(), 33);
  const auto stats = mp.Run(1);
  EXPECT_EQ(stats.iteration_count(), 1);
}

TEST(MpEngineTest, NoParameterSynchronizationTraffic) {
  // Each stage owns its parameters; only boundary activations move —
  // far less than DP's ring all-reduce of the full model.
  auto cluster = CleanCluster();
  const model::Model m = model::zoo::Vgg19();
  MpEngine mp(cluster.get(), m, 64, 8.0);
  const auto stats = mp.Run(1);
  const double dp_ring_bytes = 2.0 * 7 * m.TotalParams() * 4.0;
  EXPECT_LT(stats.total_data_bytes, dp_ring_bytes * 0.5);
  EXPECT_GT(stats.total_data_bytes, 0.0);
  // Exact expectation: fwd + bwd boundary bytes for every stage cut.
  double expected = 0.0;
  for (size_t s = 1; s < mp.stages().size(); ++s) {
    expected += 2.0 * m.BoundaryActivationElems(mp.stages()[s].first) * 64 * 4;
  }
  EXPECT_NEAR(stats.total_data_bytes, expected, expected * 1e-9);
}

TEST(MpEngineTest, PipelineSlowerThanPerfectScaling) {
  // The fill/drain bubble + micro-batch underutilization must make MP
  // clearly worse than work/8.
  auto cluster = CleanCluster();
  const model::Model m = model::zoo::Vgg19();
  MpEngine mp(cluster.get(), m, 256, 4.0);
  const auto stats = mp.Run(1);
  model::LayerCostModel cost(sim::Calibration::Default(),
                             &model::ProfileRepository::Default());
  const double ideal = cost.RangeSeconds(m, 0, 18, 256) / 8.0;
  EXPECT_GT(stats.MeanIterationSeconds(), 1.5 * ideal);
}

TEST(MpEngineTest, SmallerMicroBatchesAreSlower) {
  // The underutilization the paper blames on "small and fixed
  // micro-batches".
  auto c1 = CleanCluster();
  MpEngine fine(c1.get(), model::zoo::Vgg19(), 256, 2.0);
  auto c2 = CleanCluster();
  MpEngine coarse(c2.get(), model::zoo::Vgg19(), 256, 16.0);
  EXPECT_GT(fine.Run(1).total_time, coarse.Run(1).total_time);
}

TEST(MpEngineTest, FewerStagesThanWorkersForTinyModels) {
  auto cluster = CleanCluster(8);
  std::vector<model::Layer> layers;
  layers.push_back(model::Layer::Conv("c1", 3, 8, 8, 8));
  layers.push_back(model::Layer::Fc("f1", 512, 10));
  model::Model tiny("tiny", std::move(layers));
  MpEngine mp(cluster.get(), tiny, 32, 4.0);
  EXPECT_EQ(mp.num_stages(), 2);
  EXPECT_EQ(mp.Run(1).iteration_count(), 1);
}

// ---------------------------------------------------------------- HP --

TEST(HpEngineTest, ConfigurationMatchesStanza) {
  // §V-C1: "7 CONV workers and 1 FC worker".
  auto cluster = CleanCluster();
  HpEngine hp(cluster.get(), model::zoo::Vgg19(), 256);
  EXPECT_EQ(hp.conv_worker_count(), 7);
  EXPECT_EQ(hp.fc_worker(), 7);
  EXPECT_EQ(hp.fc_first_layer(), 16);
}

TEST(HpEngineTest, SyncsOnlyConvParameters) {
  auto cluster = CleanCluster();
  const model::Model m = model::zoo::Vgg19();
  HpEngine hp(cluster.get(), m, 64);
  const auto stats = hp.Run(1);
  const double conv_params_bytes = m.ParamsInRange(0, 15) * 4.0;
  const double ring_bytes = 2.0 * 6 * conv_params_bytes;  // 7-node ring
  // Conv all-reduce plus the boundary in-cast, but nowhere near a full
  // model sync.
  EXPECT_GT(stats.total_data_bytes, ring_bytes);
  EXPECT_LT(stats.total_data_bytes, m.TotalParams() * 4.0 * 2 * 7);
}

TEST(HpEngineTest, InCastGrowsWithBatch) {
  // §V-C1: "the network transfer amount of HP is proportional to the
  // batch size" (the FC worker in-cast).
  auto c1 = CleanCluster();
  HpEngine small(c1.get(), model::zoo::Vgg19(), 64);
  auto c2 = CleanCluster();
  HpEngine large(c2.get(), model::zoo::Vgg19(), 1024);
  EXPECT_GT(large.Run(1).total_data_bytes, small.Run(1).total_data_bytes);
}

TEST(HpEngineTest, FcWorkerIdlesDuringConvPhases) {
  // "Bad work conservation": the FC worker's GPU utilization is well
  // below the conv workers'.
  auto cluster = CleanCluster();
  HpEngine hp(cluster.get(), model::zoo::Vgg19(), 256);
  hp.Run(2);
  const double conv_busy = cluster->gpu(0).busy_time();
  const double fc_busy = cluster->gpu(7).busy_time();
  EXPECT_LT(fc_busy, conv_busy * 0.8);
}

TEST(HpEngineDeathTest, PureConvModelRejected) {
  auto cluster = CleanCluster();
  std::vector<model::Layer> layers;
  layers.push_back(model::Layer::Conv("c1", 3, 8, 8, 8));
  model::Model conv_only("conv", std::move(layers));
  EXPECT_DEATH(HpEngine(cluster.get(), conv_only, 64), "CONV \\+ FC");
}

// -------------------------------------------------- cross-engine ------

TEST(BaselineCrossTest, AllEnginesDeterministic) {
  for (int variant = 0; variant < 2; ++variant) {
    auto c1 = CleanCluster();
    auto c2 = CleanCluster();
    DpEngine d1(c1.get(), model::zoo::GoogLeNet(), 512);
    DpEngine d2(c2.get(), model::zoo::GoogLeNet(), 512);
    EXPECT_DOUBLE_EQ(d1.Run(3).total_time, d2.Run(3).total_time);
  }
}

TEST(BaselineCrossTest, HpBeatsDpAtSmallBatchLosesAtLarge) {
  // The crossover the paper explains in §V-C1.
  const model::Model m = model::zoo::Vgg19();
  auto at = [&](double batch, bool hp) {
    auto cluster = CleanCluster();
    std::unique_ptr<runtime::Engine> e;
    if (hp) {
      e = std::make_unique<HpEngine>(cluster.get(), m, batch);
    } else {
      e = std::make_unique<DpEngine>(cluster.get(), m, batch);
    }
    return e->Run(3).AverageThroughput(batch);
  };
  EXPECT_GT(at(64, true), at(64, false));     // HP wins small
  EXPECT_LT(at(1024, true), at(1024, false)); // DP wins large
}

TEST(BaselineCrossTest, MpIsTheSlowestEngine) {
  const model::Model m = model::zoo::Vgg19();
  const double batch = 256;
  auto c1 = CleanCluster();
  auto c2 = CleanCluster();
  auto c3 = CleanCluster();
  DpEngine dp(c1.get(), m, batch);
  MpEngine mp(c2.get(), m, batch);
  HpEngine hp(c3.get(), m, batch);
  const double at_dp = dp.Run(2).AverageThroughput(batch);
  const double at_mp = mp.Run(2).AverageThroughput(batch);
  const double at_hp = hp.Run(2).AverageThroughput(batch);
  EXPECT_LT(at_mp, at_dp);
  EXPECT_LT(at_mp, at_hp);
}

}  // namespace
}  // namespace fela::baselines
