#ifndef FELA_TESTING_ORACLE_H_
#define FELA_TESTING_ORACLE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "runtime/experiment.h"
#include "testing/spec_gen.h"

namespace fela::testing {

/// One broken invariant, attributed to the oracle that caught it.
struct Violation {
  std::string oracle;  // short kebab-case oracle name
  std::string detail;  // what exactly was violated, with numbers
};

/// A runtime invariant checker. Oracles get two windows onto a run:
///  * Probe() fires inside ExperimentSpec::post_run_probe, while the
///    engine and cluster are still alive — the only chance to audit live
///    internals (token-server ledger, simulator counters, plan memory).
///  * Check() fires on the finished ExperimentResult.
/// Oracles accumulate violations; one instance audits one run.
class InvariantOracle {
 public:
  virtual ~InvariantOracle() = default;

  virtual std::string name() const = 0;

  virtual void Probe(const FuzzSpec& spec, const runtime::Engine& engine,
                     runtime::Cluster& cluster) {
    (void)spec;
    (void)engine;
    (void)cluster;
  }

  virtual void Check(const FuzzSpec& spec,
                     const runtime::ExperimentResult& result) {
    (void)spec;
    (void)result;
  }

  const std::vector<Violation>& violations() const { return violations_; }

 protected:
  void Report(std::string detail) {
    violations_.push_back(Violation{name(), std::move(detail)});
  }

 private:
  std::vector<Violation> violations_;
};

/// Token accounting must balance: grants == completions + reclaims +
/// live leases, regrants only of reclaimed tokens, expirations a subset
/// of reclaims, per-level completion/generation never past the plan.
/// Audits FelaEngine runs via TokenServer::CheckInvariants; other
/// engines have no token ledger and pass vacuously.
class TokenConservationOracle final : public InvariantOracle {
 public:
  std::string name() const override { return "token-conservation"; }
  void Probe(const FuzzSpec& spec, const runtime::Engine& engine,
             runtime::Cluster& cluster) override;
};

/// The event queue must never hand back an event from the past
/// (Simulator::causality_violations() == 0 after every run).
class CausalityOracle final : public InvariantOracle {
 public:
  std::string name() const override { return "event-causality"; }
  void Probe(const FuzzSpec& spec, const runtime::Engine& engine,
             runtime::Cluster& cluster) override;
};

/// No engine may schedule a resident batch that exceeds what the memory
/// model says fits: DP/PS-DP micro-batches against the full model, Fela
/// token batches against their sub-model's layer range.
class MemoryBoundsOracle final : public InvariantOracle {
 public:
  std::string name() const override { return "memory-bounds"; }
  void Probe(const FuzzSpec& spec, const runtime::Engine& engine,
             runtime::Cluster& cluster) override;
};

/// Attribution phase fractions must sum to 1 (per worker, per cluster,
/// and per critical path) whenever attributed time exists — the
/// sum-to-one construction DESIGN.md documents. Observed runs only.
class AttributionOracle final : public InvariantOracle {
 public:
  std::string name() const override { return "attribution-sum"; }
  void Check(const FuzzSpec& spec,
             const runtime::ExperimentResult& result) override;
};

/// Cross-field sanity of the result scalars: iteration windows are
/// well-formed and ordered, a non-stalled run completed every requested
/// iteration, a stalled run reports zero effective throughput, GPU
/// utilization lands in [0, 1], and fault counters are self-consistent
/// (regrants <= reclaims).
class StatsSanityOracle final : public InvariantOracle {
 public:
  std::string name() const override { return "stats-sanity"; }
  void Check(const FuzzSpec& spec,
             const runtime::ExperimentResult& result) override;
};

/// Token conservation must survive Token Server failover: summed over
/// every incarnation, grants + leases_restored == completions +
/// tokens_reclaimed + live leases — i.e. no token is double-granted or
/// lost when a standby restores from a checkpoint. Audits FelaEngine
/// runs via FelaEngine::CheckFailoverInvariants; vacuous elsewhere.
class FailoverSafetyOracle final : public InvariantOracle {
 public:
  std::string name() const override { return "failover-safety"; }
  void Probe(const FuzzSpec& spec, const runtime::Engine& engine,
             runtime::Cluster& cluster) override;
};

/// Sharded Token Server books must balance per sub-distributor, not just
/// in aggregate: each shard's conservation identity holds on its own
/// ledger, the per-shard availability caches agree with a recount of the
/// buckets the shard owns (a donation that double-counts a token trips
/// this), and no token id is schedulable or leased in two shards at
/// once. On fault-free runs every cross-shard grant must carry exactly
/// one donor-side donation. Vacuous off-Fela and on single-shard runs.
class ShardConservationOracle final : public InvariantOracle {
 public:
  std::string name() const override { return "shard-conservation"; }
  void Probe(const FuzzSpec& spec, const runtime::Engine& engine,
             runtime::Cluster& cluster) override;
};

/// Partitions and gray failures are survivable for every engine except
/// the checkpoint-free PS baseline (which aborts by design): generated
/// partition windows always heal and gray workers are never down, so a
/// run that stalls under a pure kPartition / kGrayFailure schedule lost
/// liveness it should have kept.
class PartitionHealingOracle final : public InvariantOracle {
 public:
  std::string name() const override { return "partition-healing"; }
  void Check(const FuzzSpec& spec,
             const runtime::ExperimentResult& result) override;
};

/// The full oracle battery, fresh instances (one audit per run).
std::vector<std::unique_ptr<InvariantOracle>> DefaultOracles();

}  // namespace fela::testing

#endif  // FELA_TESTING_ORACLE_H_
