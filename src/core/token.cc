#include "core/token.h"

#include "common/string_util.h"

namespace fela::core {

std::vector<TokenId> Token::DepIds() const {
  std::vector<TokenId> ids;
  ids.reserve(deps.size());
  for (const auto& d : deps) ids.push_back(d.id);
  return ids;
}

std::string Token::ToString() const {
  std::string deps_str = common::Join(DepIds(), ",");
  return common::StrFormat("T-%d Token_%lld(it=%d, b=%g, deps=[%s])",
                           level + 1, static_cast<long long>(id), iteration,
                           batch, deps_str.c_str());
}

}  // namespace fela::core
