#ifndef FELA_MODEL_MODEL_H_
#define FELA_MODEL_MODEL_H_

#include <string>
#include <vector>

#include "model/layer.h"

namespace fela::model {

/// A sequential training model: an ordered list of layers. (All models in
/// the paper — VGG19 and a coarsened GoogLeNet — are trained as sequential
/// chains; inception modules are aggregate layers.)
class Model {
 public:
  Model(std::string name, std::vector<Layer> layers);

  const std::string& name() const { return name_; }
  const std::vector<Layer>& layers() const { return layers_; }
  const Layer& layer(int i) const { return layers_[static_cast<size_t>(i)]; }
  int layer_count() const { return static_cast<int>(layers_.size()); }

  /// Number of weighted layers (CONV/FC/inception; pooling excluded),
  /// the counting convention behind Table I.
  int WeightedLayerCount() const;

  /// Publication metadata for the Table I reproduction.
  int year() const { return year_; }
  void set_year(int year) { year_ = year; }
  /// Layer count as published (may exceed WeightedLayerCount for models
  /// we deliberately coarsen, e.g. GoogLeNet's 22 vs 12 training units).
  int published_layer_count() const { return published_layer_count_; }
  void set_published_layer_count(int n) { published_layer_count_ = n; }

  /// Input sample element count (C*H*W) fed to layer 0.
  double input_elems_per_sample() const { return input_elems_; }
  void set_input_elems_per_sample(double elems) { input_elems_ = elems; }

  // -- Aggregates over [lo, hi] inclusive layer ranges ---------------------
  double ParamsInRange(int lo, int hi) const;
  double FlopsPerSampleInRange(int lo, int hi) const;
  double ActivationElemsInRange(int lo, int hi) const;

  double TotalParams() const { return ParamsInRange(0, layer_count() - 1); }
  double TotalFlopsPerSample() const {
    return FlopsPerSampleInRange(0, layer_count() - 1);
  }
  double TotalActivationElems() const {
    return ActivationElemsInRange(0, layer_count() - 1);
  }

  /// Activation elements per sample crossing the boundary *into* layer
  /// `layer_index` (output of the previous layer, or the raw input for
  /// layer 0). This is what model-parallel cuts must transfer.
  double BoundaryActivationElems(int layer_index) const;

  /// One line per layer: index, kind, shape, params, flops.
  std::string Describe() const;

 private:
  void CheckRange(int lo, int hi) const;

  std::string name_;
  std::vector<Layer> layers_;
  int year_ = 0;
  int published_layer_count_ = 0;
  double input_elems_ = 0.0;
};

}  // namespace fela::model

#endif  // FELA_MODEL_MODEL_H_
