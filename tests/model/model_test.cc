#include "model/model.h"

#include <gtest/gtest.h>

#include "model/zoo.h"

namespace fela::model {
namespace {

Model TinyModel() {
  std::vector<Layer> layers;
  layers.push_back(Layer::Conv("c1", 3, 8, 16, 16));
  layers.push_back(Layer::Pool("p1", 8, 8, 8));
  layers.push_back(Layer::Fc("f1", 512, 10));
  return Model("tiny", std::move(layers));
}

TEST(ModelTest, LayerAccessors) {
  Model m = TinyModel();
  EXPECT_EQ(m.layer_count(), 3);
  EXPECT_EQ(m.layer(0).name, "c1");
  EXPECT_EQ(m.name(), "tiny");
}

TEST(ModelTest, WeightedLayerCountExcludesPooling) {
  EXPECT_EQ(TinyModel().WeightedLayerCount(), 2);
}

TEST(ModelTest, RangeAggregatesSum) {
  Model m = TinyModel();
  EXPECT_DOUBLE_EQ(m.TotalParams(),
                   m.ParamsInRange(0, 0) + m.ParamsInRange(1, 2));
  EXPECT_DOUBLE_EQ(
      m.TotalFlopsPerSample(),
      m.FlopsPerSampleInRange(0, 1) + m.FlopsPerSampleInRange(2, 2));
}

TEST(ModelTest, InputElemsInferredFromFirstLayer) {
  Model m = TinyModel();
  EXPECT_DOUBLE_EQ(m.input_elems_per_sample(), 3.0 * 16 * 16);
}

TEST(ModelTest, BoundaryActivations) {
  Model m = TinyModel();
  // Into layer 0: the raw input.
  EXPECT_DOUBLE_EQ(m.BoundaryActivationElems(0), 3.0 * 16 * 16);
  // Into layer 1: output of c1.
  EXPECT_DOUBLE_EQ(m.BoundaryActivationElems(1), 8.0 * 16 * 16);
  // Into layer 2: output of the pool.
  EXPECT_DOUBLE_EQ(m.BoundaryActivationElems(2), 8.0 * 8 * 8);
}

TEST(ModelTest, DescribeMentionsEveryLayer) {
  Model m = TinyModel();
  const std::string d = m.Describe();
  EXPECT_NE(d.find("c1"), std::string::npos);
  EXPECT_NE(d.find("tiny"), std::string::npos);
  EXPECT_NE(d.find("FC"), std::string::npos);
}

TEST(ModelDeathTest, BadRangeAborts) {
  Model m = TinyModel();
  EXPECT_DEATH(m.ParamsInRange(2, 1), "Check failed");
  EXPECT_DEATH(m.ParamsInRange(0, 3), "Check failed");
  EXPECT_DEATH(m.ParamsInRange(-1, 1), "Check failed");
}

TEST(ModelTest, Vgg19TotalParamsMatchPublished) {
  // Published VGG19: 143.67M parameters.
  Model m = zoo::Vgg19();
  EXPECT_NEAR(m.TotalParams() / 1e6, 143.67, 0.2);
}

TEST(ModelTest, Vgg19FlopsMatchPublished) {
  // Published VGG19: ~19.6 GMACs forward = ~39.3 GFLOPs.
  Model m = zoo::Vgg19();
  EXPECT_NEAR(m.TotalFlopsPerSample() / 1e9, 39.3, 1.0);
}

TEST(ModelTest, Vgg19FcDominatesParams) {
  // The FC layers hold ~86% of VGG19's parameters — the reason its
  // synchronization is communication-bound (§III-F).
  Model m = zoo::Vgg19();
  const double fc_params = m.ParamsInRange(16, 18);
  EXPECT_GT(fc_params / m.TotalParams(), 0.8);
}

TEST(ModelTest, Vgg19ConvDominatesCompute) {
  // ...while the CONV layers hold >90% of the compute (§III-F).
  Model m = zoo::Vgg19();
  const double conv_flops = m.FlopsPerSampleInRange(0, 15);
  EXPECT_GT(conv_flops / m.TotalFlopsPerSample(), 0.9);
}

}  // namespace
}  // namespace fela::model
