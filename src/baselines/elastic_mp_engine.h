#ifndef FELA_BASELINES_ELASTIC_MP_ENGINE_H_
#define FELA_BASELINES_ELASTIC_MP_ENGINE_H_

#include <optional>
#include <string>
#include <vector>

#include "model/cost_model.h"
#include "model/model.h"
#include "model/partition.h"
#include "runtime/cluster.h"
#include "runtime/engine.h"
#include "sim/span.h"

namespace fela::baselines {

/// ElasticPipe-style model parallelism ([15], the authors' own prior
/// system): the GPipe pipeline of MpEngine plus a head-node auto-tuner
/// that re-partitions the stages every `profile_period` iterations using
/// the *previous* period's measured per-worker slowdown. This is the
/// proactive/periodic scheduling the paper contrasts with Fela's reactive
/// token pulling (§I, §III-C): with a persistent straggler the profile is
/// accurate and re-balancing helps; with transient or rotating stragglers
/// the profile is stale by the time it is applied — the tuner takes work
/// away from workers that have already recovered and piles it onto
/// workers about to slow down, which can make things worse.
class ElasticMpEngine : public runtime::Engine {
 public:
  ElasticMpEngine(runtime::Cluster* cluster, const model::Model& model,
                  double total_batch, double micro_batch = 4.0,
                  int profile_period = 5);

  std::string name() const override { return "ElasticMP"; }
  runtime::RunStats Run(int iterations) override;

  const std::vector<std::pair<int, int>>& stages() const { return stages_; }
  int repartition_count() const { return repartition_count_; }

 private:
  void StartIteration(int iteration);
  void EnqueueForward(int stage, int micro);
  void OnForwardDone(int stage, int micro);
  void EnqueueBackward(int stage, int micro);
  void OnBackwardDone(int stage, int micro);
  void FinishIteration();
  /// Head-node auto-tuning: re-balance stage layer ranges against the
  /// measured per-worker slowdown of the elapsed profiling period.
  void Repartition();

  double BoundaryBytes(int stage, int micro) const;
  double MicroBatchOf(int micro) const;

  runtime::Cluster* cluster_;
  model::Model model_;
  model::LayerCostModel cost_;
  double total_batch_;
  double micro_batch_;
  int num_micros_;
  int profile_period_;
  std::vector<std::pair<int, int>> stages_;

  // Profiling state: per-worker GPU busy + injected sleep at the start
  // of the current period.
  std::vector<double> period_busy_start_;
  std::vector<double> period_sleep_start_;
  int repartition_count_ = 0;

  int target_iterations_ = 0;
  int current_iteration_ = 0;
  sim::SimTime iteration_start_ = 0.0;
  int backwards_pending_ = 0;
  int tail_forwards_done_ = 0;
  bool run_complete_ = false;
  runtime::RunStats stats_;
  /// Iteration framing span on the driver track (= num_workers).
  std::optional<obs::ScopedSpan> iter_span_;
};

}  // namespace fela::baselines

#endif  // FELA_BASELINES_ELASTIC_MP_ENGINE_H_
