#ifndef FELA_COMMON_ARENA_H_
#define FELA_COMMON_ARENA_H_

#include <cstddef>
#include <new>
#include <utility>

#include "common/logging.h"

namespace fela::common {

/// A fixed-capacity arena of T: one contiguous allocation, objects
/// constructed in place in insertion order, addresses stable for the
/// arena's lifetime. Replaces vector<unique_ptr<T>> for per-worker hot
/// state — a 1k–10k-worker run walks one cache-resident slab instead of
/// chasing thousands of scattered heap nodes, and construction is a
/// single allocation instead of N.
///
/// Capacity is fixed at Reserve() time (engines know the worker count up
/// front); EmplaceBack past capacity is a checked failure, so pointers
/// and references handed out never dangle from reallocation.
template <typename T>
class ObjectArena {
 public:
  ObjectArena() = default;
  explicit ObjectArena(size_t capacity) { Reserve(capacity); }

  ObjectArena(const ObjectArena&) = delete;
  ObjectArena& operator=(const ObjectArena&) = delete;

  ~ObjectArena() {
    Clear();
    ::operator delete(data_, std::align_val_t{alignof(T)});
  }

  /// Allocates storage for exactly `capacity` objects. May only be
  /// called once, on an empty arena.
  void Reserve(size_t capacity) {
    FELA_CHECK(data_ == nullptr) << "arena capacity is fixed after Reserve";
    capacity_ = capacity;
    if (capacity_ > 0) {
      data_ = static_cast<T*>(::operator new(capacity * sizeof(T),
                                             std::align_val_t{alignof(T)}));
    }
  }

  template <typename... Args>
  T& EmplaceBack(Args&&... args) {
    FELA_CHECK_LT(size_, capacity_) << "arena full";
    T* obj = new (data_ + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *obj;
  }

  /// Destroys all objects (newest first) but keeps the storage, so the
  /// arena can be refilled up to the same capacity.
  void Clear() {
    while (size_ > 0) {
      --size_;
      data_[size_].~T();
    }
  }

  T& operator[](size_t i) {
    FELA_CHECK_LT(i, size_);
    return data_[i];
  }
  const T& operator[](size_t i) const {
    FELA_CHECK_LT(i, size_);
    return data_[i];
  }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace fela::common

#endif  // FELA_COMMON_ARENA_H_
