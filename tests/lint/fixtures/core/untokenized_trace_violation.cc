// fela-lint fixture: the untokenized-trace rule must fire on line 11
// (raw string detail at a FELA_TRACE call site) and nowhere else; the
// tokenized sibling below stays clean.
namespace fela::fixture {

struct Recorder {
  void Record(double t, int node, int kind, const char* detail);
};

void Raw(Recorder* trace_) {
  FELA_TRACE(trace_, 0.0, 0, kind, "iteration stalled");
}

void Tokenized(Recorder* trace_) {
  FELA_TRACE(trace_, 0.0, 0, kind, FELA_TOK("it=%d"), 7);
}

}  // namespace fela::fixture
