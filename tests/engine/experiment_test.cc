#include "runtime/experiment.h"

#include <gtest/gtest.h>

#include "model/zoo.h"
#include "runtime/report.h"
#include "suite/suite.h"

namespace fela::runtime {
namespace {

ExperimentSpec SmallSpec(double batch = 128) {
  ExperimentSpec spec;
  spec.total_batch = batch;
  spec.iterations = 4;
  return spec;
}

TEST(RunStatsTest, AverageThroughputIsEqThree) {
  RunStats stats;
  stats.iterations.resize(100);
  stats.total_time = 50.0;
  // AT = total_batch * iter_n / total_time.
  EXPECT_DOUBLE_EQ(stats.AverageThroughput(256), 256.0 * 100 / 50.0);
}

TEST(RunStatsTest, MeanIterationSeconds) {
  RunStats stats;
  stats.iterations.push_back({0.0, 2.0});
  stats.iterations.push_back({2.0, 3.0});
  EXPECT_DOUBLE_EQ(stats.MeanIterationSeconds(), 1.5);
}

TEST(PerIterationDelayTest, IsEqFour) {
  RunStats clean;
  clean.iterations.resize(100);
  clean.total_time = 100.0;
  RunStats slow = clean;
  slow.total_time = 250.0;
  // PID = (total_time_s - total_time_0) / iter_n.
  EXPECT_DOUBLE_EQ(PerIterationDelay(slow, clean), 1.5);
}

TEST(ExperimentTest, RunsEngineAndDerivesMetrics) {
  const auto result =
      RunExperiment(SmallSpec(), suite::DpFactory(model::zoo::Vgg19()),
                    NoStragglerFactory());
  EXPECT_EQ(result.engine_name, "DP");
  EXPECT_EQ(result.stats.iteration_count(), 4);
  EXPECT_GT(result.average_throughput, 0.0);
  EXPECT_GT(result.gpu_utilization, 0.0);
  EXPECT_LE(result.gpu_utilization, 1.0);
}

TEST(ExperimentTest, PidExperimentComputesDelay) {
  auto stragglers = [](int n) {
    return std::make_unique<sim::RoundRobinStragglers>(n, 2.0);
  };
  const auto pid = RunPidExperiment(
      SmallSpec(), suite::DpFactory(model::zoo::Vgg19()), stragglers);
  EXPECT_NEAR(pid.per_iteration_delay, 2.0, 0.01);  // BSP pays full d
  EXPECT_LT(pid.with_stragglers.average_throughput,
            pid.clean.average_throughput);
}

TEST(ExperimentTest, FourEngineFactoriesWork) {
  const model::Model m = model::zoo::GoogLeNet();
  core::FelaConfig cfg = core::FelaConfig::Defaults(3, 8);
  const auto results = suite::CompareAll(m, SmallSpec(512),
                                         NoStragglerFactory(), cfg);
  EXPECT_EQ(results.dp.engine_name, "DP");
  EXPECT_EQ(results.mp.engine_name, "MP");
  EXPECT_EQ(results.hp.engine_name, "HP");
  EXPECT_EQ(results.fela.engine_name, "Fela");
  for (double at : results.Throughputs()) EXPECT_GT(at, 0.0);
}

TEST(ReportTest, ComparisonTableHasRatioColumns) {
  std::vector<ComparisonRow> rows = {{64, {10, 5, 20, 40}},
                                     {128, {20, 10, 30, 60}}};
  const std::string table = RenderComparisonTable(
      "Fig X", "batch", suite::EngineNames(), rows, suite::kFelaColumn);
  EXPECT_NE(table.find("Fela/DP"), std::string::npos);
  EXPECT_NE(table.find("Fela/MP"), std::string::npos);
  EXPECT_NE(table.find("4.00x"), std::string::npos);  // 40/10
  EXPECT_NE(table.find("Fig X"), std::string::npos);
}

TEST(ReportTest, GainRangeFindsMinMax) {
  std::vector<ComparisonRow> rows = {{1, {10, 0, 0, 20}},
                                     {2, {10, 0, 0, 15}},
                                     {3, {10, 0, 0, 32}}};
  const auto [lo, hi] = GainRange(rows, 3, 0);
  EXPECT_DOUBLE_EQ(lo, 1.5);
  EXPECT_DOUBLE_EQ(hi, 3.2);
}

TEST(ReportTest, FormatGainMatchesPaperStyle) {
  // The paper writes small gains as percentages and large ones as "Nx".
  EXPECT_EQ(FormatGain(1.0998), "9.98%");
  EXPECT_EQ(FormatGain(3.23), "3.23x");
  EXPECT_EQ(FormatGain(1.85), "85.00%");
  EXPECT_EQ(FormatGain(2.0), "2.00x");
}

TEST(ExperimentTest, SpecIterationsHonored) {
  ExperimentSpec spec = SmallSpec();
  spec.iterations = 7;
  const auto result = RunExperiment(
      spec, suite::MpFactory(model::zoo::GoogLeNet()), NoStragglerFactory());
  EXPECT_EQ(result.stats.iteration_count(), 7);
}

TEST(ExperimentTest, CalibrationIsConfigurable) {
  ExperimentSpec fast = SmallSpec();
  fast.calibration.gpu_effective_flops *= 4.0;  // a 4x faster GPU
  const auto slow_result = RunExperiment(
      SmallSpec(), suite::DpFactory(model::zoo::Vgg19()), NoStragglerFactory());
  const auto fast_result = RunExperiment(
      fast, suite::DpFactory(model::zoo::Vgg19()), NoStragglerFactory());
  EXPECT_GT(fast_result.average_throughput, slow_result.average_throughput);
}

}  // namespace
}  // namespace fela::runtime
