// fela-lint fixture: half of a deliberate include cycle with cycle_b.h.
// The include graph must report the cycle once and the transitive
// closure must still terminate.
#include "cycle_b.h"

namespace fela::fixture {
struct CycleA {
  int value = 0;
};
}  // namespace fela::fixture
