// fela-lint's own test suite: every rule fires on its fixture at the
// documented line, suppressions silence it, the interprocedural rules
// name full call chains, the findings baseline ratchets, and the CLI
// exit codes follow the 0/1/2 contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/json.h"
#include "lint/include_graph.h"
#include "lint/lint.h"
#include "runtime/bench_json.h"

namespace fela::lint {
namespace {

#ifndef FELA_LINT_FIXTURE_DIR
#error "build must define FELA_LINT_FIXTURE_DIR"
#endif

const char* const kFixtureDir = FELA_LINT_FIXTURE_DIR;

std::vector<Finding> LintFixtures() {
  std::vector<Finding> findings;
  std::string error;
  EXPECT_TRUE(LintTree({kFixtureDir}, Options{}, &findings, &error)) << error;
  return findings;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

const Finding* FindInFile(const std::vector<Finding>& findings,
                          const char* file_suffix,
                          const char* rule = nullptr) {
  const auto it = std::find_if(
      findings.begin(), findings.end(), [&](const Finding& f) {
        return EndsWith(f.file, file_suffix) &&
               (rule == nullptr || f.rule == rule);
      });
  return it == findings.end() ? nullptr : &*it;
}

std::vector<Finding> FindingsIn(const std::vector<Finding>& findings,
                                const char* file_suffix) {
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    if (EndsWith(f.file, file_suffix)) out.push_back(f);
  }
  return out;
}

/// A scratch file under gtest's temp dir, removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }

  const std::string& path() const { return path_; }

  void Write(const std::string& contents) const {
    std::ofstream out(path_, std::ios::binary);
    out << contents;
  }

  std::string Read() const {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

 private:
  std::string path_;
};

TEST(LintRulesTest, EveryRuleFiresExactlyOnceOnItsFixture) {
  const std::vector<Finding> findings = LintFixtures();
  ASSERT_EQ(findings.size(), 16u);

  struct Expected {
    const char* rule;
    const char* file_suffix;
    int line;
  };
  const Expected expected[] = {
      {"wall-clock", "core/wall_clock_violation.cc", 6},
      {"unseeded-rng", "core/unseeded_rng_violation.cc", 6},
      {"unordered-iter", "core/unordered_iter_violation.cc", 10},
      {"unordered-iter", "core/cross_header_member_violation.cc", 9},
      {"unordered-iter", "core/local_unordered_violation.cc", 12},
      {"discarded-status", "core/discarded_status_violation.cc", 9},
      {"float-eq", "core/float_eq_violation.cc", 6},
      {"untraced-event", "core/untraced_event_violation.cc", 11},
      {"untokenized-trace", "core/untokenized_trace_violation.cc", 11},
      {"bare-allow", "core/bare_allow_violation.cc", 7},
      {"guarded-by", "core/guarded_by_violation.cc", 13},
      {"transitive-wall-clock", "core/transitive_violation.cc", 14},
      {"transitive-rng", "core/transitive_violation.cc", 15},
      {"order-leak", "core/transitive_violation.cc", 16},
  };
  for (const Expected& e : expected) {
    const Finding* f = FindInFile(findings, e.file_suffix, e.rule);
    ASSERT_NE(f, nullptr) << e.file_suffix << " produced no " << e.rule;
    EXPECT_EQ(f->line, e.line) << e.file_suffix << " " << e.rule;
  }
  // sweep-shared-state fires twice (global + reachable local static) and
  // is covered by its own test below; everything else is single-shot.
  EXPECT_EQ(
      FindingsIn(findings, "core/sweep_shared_state_violation.cc").size(), 2u);
}

TEST(LintRulesTest, SuppressedFixtureIsClean) {
  std::vector<Finding> findings;
  std::string error;
  ASSERT_TRUE(LintTree({std::string(kFixtureDir) + "/core/suppressed.cc"},
                       Options{}, &findings, &error))
      << error;
  EXPECT_TRUE(findings.empty())
      << findings.size() << " finding(s), first: " << findings[0].rule;
}

TEST(LintRulesTest, RuleFilterRestrictsFindings) {
  Options options;
  options.rules.insert("float-eq");
  std::vector<Finding> findings;
  std::string error;
  ASSERT_TRUE(LintTree({kFixtureDir}, options, &findings, &error)) << error;
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "float-eq");
}

TEST(LintRulesTest, FindingsAreSortedByFileLineRule) {
  const std::vector<Finding> findings = LintFixtures();
  for (size_t i = 1; i < findings.size(); ++i) {
    EXPECT_LE(std::tie(findings[i - 1].file, findings[i - 1].line),
              std::tie(findings[i].file, findings[i].line));
  }
}

// ---------------------------------------------------------------------------
// Interprocedural rules
// ---------------------------------------------------------------------------

TEST(LintTransitiveTest, ThreeDeepChainIsNamedInFull) {
  const std::vector<Finding> findings = LintFixtures();
  const Finding* wall = FindInFile(findings, "core/transitive_violation.cc",
                                   "transitive-wall-clock");
  ASSERT_NE(wall, nullptr);
  EXPECT_NE(wall->message.find("StepSim -> ChainA -> ChainB -> ChainC"),
            std::string::npos)
      << wall->message;
  EXPECT_NE(wall->message.find("steady_clock"), std::string::npos)
      << wall->message;
  // The hazard's file appears normalized, with no line number (messages
  // are baseline keys and must survive unrelated edits).
  EXPECT_NE(wall->message.find("tests/lint/fixtures/model/chain_helpers.cc"),
            std::string::npos)
      << wall->message;

  const Finding* rng = FindInFile(findings, "core/transitive_violation.cc",
                                  "transitive-rng");
  ASSERT_NE(rng, nullptr);
  EXPECT_NE(rng->message.find("StepSim -> JitterSeed -> RawJitter"),
            std::string::npos)
      << rng->message;
  EXPECT_NE(rng->message.find("rand"), std::string::npos) << rng->message;

  const Finding* leak =
      FindInFile(findings, "core/transitive_violation.cc", "order-leak");
  ASSERT_NE(leak, nullptr);
  EXPECT_NE(leak->message.find("unordered iteration"), std::string::npos)
      << leak->message;
}

TEST(LintTransitiveTest, HelperFileItselfStaysClean) {
  // The hazards live in non-sim files: the direct rules must not fire
  // there, and the transitive rules only fire at the sim-side boundary.
  const std::vector<Finding> findings = LintFixtures();
  EXPECT_TRUE(FindingsIn(findings, "model/chain_helpers.cc").empty());
  EXPECT_TRUE(FindingsIn(findings, "model/order_leak_helper.cc").empty());
}

TEST(LintGuardedByTest, FiresOnUnlockedAccessOnlyAndNamesTheMutex) {
  const std::vector<Finding> findings =
      FindingsIn(LintFixtures(), "core/guarded_by_violation.cc");
  // Peek fires; the lock_guard, FELA_REQUIRES, and suppressed accessors
  // are the negative twins and must not.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "guarded-by");
  EXPECT_EQ(findings[0].line, 13);
  EXPECT_NE(findings[0].message.find("'GuardedCounter::Peek'"),
            std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("FELA_REQUIRES(mu_)"), std::string::npos)
      << findings[0].message;
}

TEST(LintSweepSharedStateTest, FlagsGlobalAndReachableStaticWithChain) {
  const std::vector<Finding> findings =
      FindingsIn(LintFixtures(), "core/sweep_shared_state_violation.cc");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "sweep-shared-state");
  EXPECT_EQ(findings[0].line, 9);
  EXPECT_NE(findings[0].message.find("g_fixture_ticks"), std::string::npos);
  EXPECT_EQ(findings[1].rule, "sweep-shared-state");
  EXPECT_EQ(findings[1].line, 12);
  EXPECT_NE(findings[1].message.find("RunExperiment -> Tick"),
            std::string::npos)
      << findings[1].message;
  // Helper() is unreachable from the sweep roots: its static is silent.
}

TEST(LintBareAllowTest, BareSuppressionStillSilencesButIsItselfFlagged) {
  const std::vector<Finding> findings =
      FindingsIn(LintFixtures(), "core/bare_allow_violation.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "bare-allow");
  EXPECT_EQ(findings[0].line, 7);
  EXPECT_NE(findings[0].message.find("float-eq"), std::string::npos)
      << findings[0].message;
}

// ---------------------------------------------------------------------------
// Include graph
// ---------------------------------------------------------------------------

TEST(IncludeGraphTest, ReportsCycleOnceAndClosureTerminates) {
  const std::map<std::string, std::string> sources = {
      {"a/cycle_a.h", "#include \"cycle_b.h\"\n"},
      {"a/cycle_b.h", "#include \"cycle_a.h\"\n"},
      {"a/use.cc", "#include \"cycle_a.h\"\n"},
  };
  const IncludeGraph graph = IncludeGraph::Build(sources);
  ASSERT_EQ(graph.Cycles().size(), 1u);
  EXPECT_EQ(graph.Cycles()[0],
            (std::vector<std::string>{"a/cycle_a.h", "a/cycle_b.h"}));
  // Cycle-safe transitive closure: both headers, each exactly once.
  EXPECT_EQ(graph.Transitive("a/use.cc"),
            (std::vector<std::string>{"a/cycle_a.h", "a/cycle_b.h"}));
}

TEST(IncludeGraphTest, RecordsUnresolvedIncludes) {
  const std::map<std::string, std::string> sources = {
      {"x.cc", "#include \"nope.h\"\n#include <vector>\n"},
  };
  const IncludeGraph graph = IncludeGraph::Build(sources);
  // Angle includes are system headers, never "missing".
  EXPECT_EQ(graph.Missing("x.cc"), (std::vector<std::string>{"nope.h"}));
  EXPECT_TRUE(graph.Direct("x.cc").empty());
}

TEST(IncludeGraphTest, FixtureCycleNeitherHangsNorFindsAnything) {
  std::vector<Finding> findings;
  std::string error;
  ASSERT_TRUE(LintTree({std::string(kFixtureDir) + "/include_graph"},
                       Options{}, &findings, &error))
      << error;
  EXPECT_TRUE(findings.empty())
      << findings.size() << " finding(s), first: " << findings[0].rule;
}

// ---------------------------------------------------------------------------
// Per-file behaviors (unchanged from v1)
// ---------------------------------------------------------------------------

TEST(LintFileTest, SameLineSuppressionOnlyCoversNamedRule) {
  const std::string path = "src/core/synthetic.cc";
  const std::string src =
      "namespace f {\n"
      "bool Cmp(double a, double b) {\n"
      "  return a == b;  // fela-lint: allow(wall-clock): wrong rule\n"
      "}\n"
      "}\n";
  const std::vector<Finding> findings = LintFile(path, src, Options{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "float-eq");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintFileTest, PatternsInsideStringsAndCommentsDoNotFire) {
  const std::string path = "src/sim/synthetic.cc";
  const std::string src =
      "namespace f {\n"
      "// rand() and system_clock in a comment are fine\n"
      "const char* kMsg = \"rand() system_clock mt19937\";\n"
      "/* block comment: random_device */\n"
      "}\n";
  EXPECT_TRUE(LintFile(path, src, Options{}).empty());
}

TEST(LintFileTest, ScopingLimitsSimRulesToSimPaths) {
  // The same float comparison: flagged under src/core, ignored in a
  // bench file (sim-scoped rules only apply to sim|core|baselines|runtime).
  const std::string src =
      "namespace f {\n"
      "bool Cmp(double a, double b) { return a == b; }\n"
      "}\n";
  EXPECT_EQ(LintFile("src/core/x.cc", src, Options{}).size(), 1u);
  EXPECT_TRUE(LintFile("bench/x.cc", src, Options{}).empty());
}

TEST(LintFileTest, SeededRngClassIsNotFlagged) {
  const std::string src =
      "#include \"common/rng.h\"\n"
      "namespace f {\n"
      "double Draw(fela::common::Rng& rng) { return rng.Uniform(); }\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/sim/x.cc", src, Options{}).empty());
}

TEST(LintFileTest, NullptrComparisonAgainstFloatNameIsNotFlagged) {
  const std::string src =
      "namespace f {\n"
      "bool Check(const double* p) { return p != nullptr; }\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/sim/x.cc", src, Options{}).empty());
}

TEST(LintFileTest, UntokenizedTraceAnchorsOnMemberCallsOnly) {
  // A raw string at a member Emit() call fires; the same detail routed
  // through FELA_TOK is clean, and an Emit *declaration* never anchors.
  const std::string bad =
      "namespace f {\n"
      "void E(SpanSink* s) { s->Emit(Span{0, \"w\"}); }\n"
      "}\n";
  const std::vector<Finding> findings =
      LintFile("src/sim/x.cc", bad, Options{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "untokenized-trace");
  EXPECT_EQ(findings[0].line, 2);

  const std::string ok =
      "namespace f {\n"
      "void Emit(const char* detail);\n"
      "void E(SpanSink* s) { s->Emit(Span{0, FELA_TOK(\"w\")}); }\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/sim/x.cc", ok, Options{}).empty());
}

// ---------------------------------------------------------------------------
// JSON output
// ---------------------------------------------------------------------------

TEST(LintJsonTest, JsonReportParsesAndMatchesFindings) {
  const std::vector<Finding> findings = LintFixtures();
  const std::string json = FindingsToJson(findings);
  common::Json doc;
  std::string error;
  ASSERT_TRUE(common::Json::Parse(json, &doc, &error)) << error;
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.Find("count"), nullptr);
  EXPECT_EQ(static_cast<size_t>(doc.Find("count")->number_value()),
            findings.size());
  ASSERT_NE(doc.Find("findings"), nullptr);
  ASSERT_EQ(doc.Find("findings")->size(), findings.size());
  const common::Json& first = doc.Find("findings")->at(0);
  EXPECT_EQ(first.Find("rule")->string_value(), findings[0].rule);
  EXPECT_EQ(static_cast<int>(first.Find("line")->number_value()),
            findings[0].line);
}

TEST(LintJsonTest, FindingsJsonIsByteStableAcrossRuns) {
  const std::string first = FindingsToJson(LintFixtures());
  const std::string second = FindingsToJson(LintFixtures());
  EXPECT_EQ(first, second);
}

TEST(LintJsonTest, ReportPassesSharedLintValidator) {
  std::vector<Finding> findings;
  std::string error;
  Timings timings;
  ASSERT_TRUE(LintTree({kFixtureDir}, Options{}, &findings, &error, &timings))
      << error;
  EXPECT_EQ(timings.files, 22u);  // every fixture .h/.cc was scanned
  common::Json doc;
  ASSERT_TRUE(common::Json::Parse(ReportToJson(findings, timings), &doc,
                                  &error))
      << error;
  EXPECT_TRUE(obs::ValidateLintReportJson(doc, &error)) << error;
}

TEST(LintJsonTest, TimingsExportPassesBenchReportValidator) {
  std::vector<Finding> findings;
  std::string error;
  Timings timings;
  ASSERT_TRUE(LintTree({kFixtureDir}, Options{}, &findings, &error, &timings))
      << error;
  common::Json doc;
  ASSERT_TRUE(common::Json::Parse(TimingsToBenchJson(timings), &doc, &error))
      << error;
  EXPECT_TRUE(obs::ValidateBenchReportJson(doc, &error)) << error;
  // One row per pass plus the total.
  EXPECT_EQ(doc.Find("results")->size(), 5u);
  EXPECT_EQ(doc.Find("bench")->string_value(), "lint");
}

TEST(LintJsonTest, LintValidatorRejectsBrokenDocuments) {
  std::string error;
  common::Json doc;
  ASSERT_TRUE(common::Json::Parse(R"({"count": 1, "findings": []})", &doc,
                                  &error));
  EXPECT_FALSE(obs::ValidateLintReportJson(doc, &error));
  EXPECT_NE(error.find("count"), std::string::npos) << error;
  ASSERT_TRUE(common::Json::Parse(
      R"({"count": 0, "findings": [], "timings": {}})", &doc, &error));
  EXPECT_FALSE(obs::ValidateLintReportJson(doc, &error));
  EXPECT_NE(error.find("files"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Baseline ratchet
// ---------------------------------------------------------------------------

TEST(LintBaselineTest, MatchedFindingsAreToleratedAndKeyIgnoresLines) {
  const std::vector<Finding> findings = LintFixtures();
  Baseline baseline;
  std::string error;
  ASSERT_TRUE(ParseBaseline(BaselineToJson(findings, Baseline{}), &baseline,
                            &error))
      << error;
  ASSERT_EQ(baseline.entries.size(), findings.size());

  BaselineResult result = ApplyBaseline(baseline, findings);
  EXPECT_TRUE(result.fresh.empty());
  EXPECT_TRUE(result.stale.empty());
  EXPECT_EQ(result.matched, findings.size());

  // Line drift must not break the match: the key is (file, rule,
  // message), never the line number.
  std::vector<Finding> drifted = findings;
  for (Finding& f : drifted) f.line += 40;
  result = ApplyBaseline(baseline, drifted);
  EXPECT_TRUE(result.fresh.empty());
  EXPECT_EQ(result.matched, drifted.size());
}

TEST(LintBaselineTest, FreshFindingFailsAndStaleEntryIsReported) {
  const std::vector<Finding> findings = LintFixtures();
  Baseline baseline;
  std::string error;
  ASSERT_TRUE(ParseBaseline(BaselineToJson(findings, Baseline{}), &baseline,
                            &error))
      << error;

  // A finding the baseline has never seen is fresh — the ratchet bites.
  std::vector<Finding> with_new = findings;
  with_new.push_back(
      Finding{"src/core/new_code.cc", 3, "wall-clock", "brand new"});
  BaselineResult result = ApplyBaseline(baseline, with_new);
  ASSERT_EQ(result.fresh.size(), 1u);
  EXPECT_EQ(result.fresh[0].message, "brand new");

  // A fixed finding leaves its entry stale (prune candidate), and stale
  // entries alone never fail the run.
  std::vector<Finding> fixed = findings;
  fixed.pop_back();
  result = ApplyBaseline(baseline, fixed);
  EXPECT_TRUE(result.fresh.empty());
  EXPECT_EQ(result.stale.size(), 1u);
}

TEST(LintBaselineTest, RegenerationIsStableAndKeepsWhyNotes) {
  const std::vector<Finding> findings = LintFixtures();
  const std::string first = BaselineToJson(findings, Baseline{});

  Baseline annotated;
  std::string error;
  ASSERT_TRUE(ParseBaseline(first, &annotated, &error)) << error;
  annotated.entries[0].why = "legacy: tracked in the cleanup epic";

  // Regenerating from the same findings is deterministic and carries
  // the hand-written why through.
  const std::string second = BaselineToJson(findings, annotated);
  EXPECT_NE(second.find("legacy: tracked in the cleanup epic"),
            std::string::npos);
  Baseline reparsed;
  ASSERT_TRUE(ParseBaseline(second, &reparsed, &error)) << error;
  EXPECT_EQ(reparsed.entries[0].why, "legacy: tracked in the cleanup epic");
  EXPECT_EQ(BaselineToJson(findings, reparsed), second);
}

TEST(LintBaselineTest, ParseRejectsMalformedDocuments) {
  Baseline baseline;
  std::string error;
  EXPECT_FALSE(ParseBaseline("not json", &baseline, &error));
  EXPECT_FALSE(ParseBaseline(R"({"version": 1})", &baseline, &error));
  EXPECT_FALSE(ParseBaseline(R"({"findings": [{"file": "x"}]})", &baseline,
                             &error));
}

TEST(LintBaselineTest, CliRatchetToleratesBaselinedAndRejectsFresh) {
  TempFile baseline("lint_test_baseline.json");
  std::ostringstream out;
  std::ostringstream err;

  // --update-baseline captures the current findings and exits 0.
  ASSERT_EQ(RunCli({"--baseline=" + baseline.path(), "--update-baseline",
                    kFixtureDir},
                   out, err),
            0)
      << err.str();
  EXPECT_NE(out.str().find("baseline updated (16 entries)"),
            std::string::npos)
      << out.str();

  // Screening against that baseline tolerates everything.
  out.str("");
  err.str("");
  EXPECT_EQ(RunCli({"--baseline=" + baseline.path(), kFixtureDir}, out, err),
            0)
      << out.str();
  EXPECT_NE(err.str().find("16 baselined finding(s) tolerated"),
            std::string::npos)
      << err.str();

  // Regeneration over an unchanged tree is a byte-stable fixed point.
  const std::string before = baseline.Read();
  ASSERT_EQ(RunCli({"--baseline=" + baseline.path(), "--update-baseline",
                    kFixtureDir},
                   out, err),
            0);
  EXPECT_EQ(baseline.Read(), before);

  // An empty baseline makes every finding fresh: exit 1.
  baseline.Write("{\"findings\": [], \"version\": 1}\n");
  out.str("");
  err.str("");
  EXPECT_EQ(RunCli({"--baseline=" + baseline.path(), kFixtureDir}, out, err),
            1);

  // A baseline-only entry is stale: reported to stderr, still exit 0
  // when the only scanned file is clean.
  baseline.Write(
      "{\"findings\": [{\"file\": \"gone.cc\", \"message\": \"m\", "
      "\"rule\": \"wall-clock\", \"why\": \"\"}], \"version\": 1}\n");
  out.str("");
  err.str("");
  EXPECT_EQ(RunCli({"--baseline=" + baseline.path(),
                    std::string(kFixtureDir) + "/core/suppressed.cc"},
                   out, err),
            0);
  EXPECT_NE(err.str().find("1 stale baseline entry"), std::string::npos)
      << err.str();
}

// ---------------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------------

TEST(LintCliTest, ExitCodesFollowContract) {
  std::ostringstream out;
  std::ostringstream err;
  // 1: findings reported.
  EXPECT_EQ(RunCli({kFixtureDir}, out, err), 1);
  // 0: clean tree (the suppressed fixture alone).
  EXPECT_EQ(RunCli({std::string(kFixtureDir) + "/core/suppressed.cc"}, out,
                   err),
            0);
  // 0: --list-rules.
  EXPECT_EQ(RunCli({"--list-rules"}, out, err), 0);
  // 2: no paths.
  EXPECT_EQ(RunCli({}, out, err), 2);
  // 2: unknown rule / unknown format / unknown flag / unreadable path.
  EXPECT_EQ(RunCli({"--rules=bogus", kFixtureDir}, out, err), 2);
  EXPECT_EQ(RunCli({"--format=xml", kFixtureDir}, out, err), 2);
  EXPECT_EQ(RunCli({"--frobnicate", kFixtureDir}, out, err), 2);
  EXPECT_EQ(RunCli({"/nonexistent/fela/path"}, out, err), 2);
  // 2: baseline misuse (orphan --update-baseline, unreadable file).
  EXPECT_EQ(RunCli({"--update-baseline", kFixtureDir}, out, err), 2);
  EXPECT_EQ(RunCli({"--baseline=/nonexistent/fela/baseline.json",
                    kFixtureDir},
                   out, err),
            2);
}

TEST(LintCliTest, BenchOutWritesValidatedTimings) {
  TempFile bench("lint_test_bench.json");
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(RunCli({"--bench-out=" + bench.path(),
                    std::string(kFixtureDir) + "/core/suppressed.cc"},
                   out, err),
            0)
      << err.str();
  common::Json doc;
  std::string error;
  ASSERT_TRUE(common::Json::Parse(bench.Read(), &doc, &error)) << error;
  EXPECT_TRUE(obs::ValidateBenchReportJson(doc, &error)) << error;
}

TEST(LintCliTest, TableOutputNamesEveryRule) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(RunCli({"--format=table", kFixtureDir}, out, err), 1);
  const std::string table = out.str();
  for (const RuleInfo& r : Rules()) {
    EXPECT_NE(table.find(r.id), std::string::npos) << r.id;
  }
  EXPECT_NE(table.find("16 finding(s)"), std::string::npos);
}

TEST(LintCliTest, ListRulesCoversEveryRule) {
  std::ostringstream out;
  std::ostringstream err;
  ASSERT_EQ(RunCli({"--list-rules"}, out, err), 0);
  EXPECT_EQ(Rules().size(), 13u);
  for (const RuleInfo& r : Rules()) {
    EXPECT_NE(out.str().find(r.id), std::string::npos) << r.id;
    EXPECT_TRUE(IsKnownRule(r.id));
  }
  EXPECT_FALSE(IsKnownRule("not-a-rule"));
}

}  // namespace
}  // namespace fela::lint
