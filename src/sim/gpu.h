#ifndef FELA_SIM_GPU_H_
#define FELA_SIM_GPU_H_

#include "sim/event_fn.h"
#include "sim/simulator.h"
#include "sim/span.h"
#include "sim/types.h"

namespace fela::sim {

/// One accelerator device. Kernels (already costed in seconds by the
/// model-layer cost model) execute FIFO; the device tracks cumulative
/// busy time so experiments can report GPU utilization.
class GpuDevice {
 public:
  GpuDevice(Simulator* sim, NodeId node);

  GpuDevice(const GpuDevice&) = delete;
  GpuDevice& operator=(const GpuDevice&) = delete;

  NodeId node() const { return node_; }

  /// When set (and enabled), every Enqueue emits a kCompute span and
  /// every BlockUntil emits its phase's span on this node's track, so
  /// all engines get compute/straggler intervals without per-engine
  /// instrumentation.
  void set_span_sink(obs::SpanSink* spans) { spans_ = spans; }

  /// Enqueues a compute task lasting `duration` seconds; `done` fires
  /// when it finishes. Tasks run back-to-back in submission order.
  void Enqueue(double duration, EventFn done);

  /// Blocks the device until at least `until` (used for straggler
  /// injection: the paper injects sleep before computation). `phase`
  /// labels the blocked interval in the span timeline — kStraggler for
  /// injected slowdown, kCrashed when an engine models crash redo time.
  void BlockUntil(SimTime until, obs::Phase phase = obs::Phase::kStraggler);

  /// Time at which the device next becomes free.
  SimTime free_at() const { return free_at_; }

  /// Total seconds of real compute executed (excludes injected sleeps).
  double busy_time() const { return busy_time_; }

  /// Total seconds of injected straggler sleep.
  double injected_sleep() const { return injected_sleep_; }

  void ResetStats();

 private:
  Simulator* sim_;
  NodeId node_;
  obs::SpanSink* spans_ = nullptr;
  SimTime free_at_ = 0.0;
  double busy_time_ = 0.0;
  double injected_sleep_ = 0.0;
};

}  // namespace fela::sim

#endif  // FELA_SIM_GPU_H_
