#ifndef FELA_MODEL_ZOO_H_
#define FELA_MODEL_ZOO_H_

#include <vector>

#include "model/model.h"

namespace fela::model::zoo {

/// The two evaluation benchmarks of the paper. Layer lists contain only
/// weighted layers (pooling folded into spatial dimensions) so that layer
/// numbering matches the paper's L1..L19 / L1..L12.
///
/// VGG19 with (3, 224, 224) input: 16 CONV + 3 FC layers, with calibrated
/// threshold batch sizes that bin-partition (bin = 16) into the paper's
/// {L1-8, L9-16, L17-19}.
Model Vgg19();

/// GoogLeNet with (3, 32, 32) input (the paper's GoogLeNet input shape),
/// coarsened to 12 training units: 2 stem CONVs, 9 inception modules, and
/// the classifier FC — bin-partitioning into the paper's
/// {L1-4, L5-9, L10-12}.
Model GoogLeNet();

// -- Table I models (layer-count survey) -----------------------------------
Model LeNet5();     // 1998, 5 layers
Model AlexNet();    // 2012, 8 layers
Model ZfNet();      // 2013, 8 layers
Model Vgg16();      // 2014, 16 layers
Model GoogLeNet22();// 2014, 22 published layers (training model above)
Model ResNet152();  // 2015, 152 layers (built block-by-block)
Model CuImage();    // 2016, 1207 layers (synthetic stand-in; see DESIGN.md)
Model SeNet154();   // 2017, 154 layers

/// All Table I models in the paper's row order.
std::vector<Model> TableOneModels();

}  // namespace fela::model::zoo

#endif  // FELA_MODEL_ZOO_H_
