// Microbenchmarks of the scheduling-path data structures (google-benchmark):
// event queue churn, token-bucket selection under ADS, locality scoring,
// and a full simulated Fela iteration. These bound the *scheduling*
// overhead Fela adds per token — the paper argues it is negligible next
// to training compute.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "common/tokenize.h"
#include "core/fela_engine.h"
#include "core/token_bucket.h"
#include "model/zoo.h"
#include "runtime/cluster.h"
#include "runtime/determinism.h"
#include "runtime/sweep.h"
#include "sim/simulator.h"
#include "suite/suite.h"

namespace {

using namespace fela;

// The pre-slab EventQueue (priority_queue of std::function events plus
// two unordered_sets for cancel bookkeeping), kept verbatim as the
// before/after baseline for the slab + generation-tag rework. The BENCH
// baseline pins the comparison: BM_EventQueue* must beat BM_Legacy* by
// >= 2x on the push/pop path.
class LegacyEventQueue {
 public:
  sim::EventId Push(sim::SimTime when, std::function<void()> fn) {
    const sim::EventId id = next_id_++;
    heap_.push(Event{when, id, std::move(fn)});
    pending_.insert(id);
    ++size_;
    return id;
  }

  bool Cancel(sim::EventId id) {
    if (pending_.erase(id) == 0) return false;
    cancelled_.insert(id);
    --size_;
    return true;
  }

  bool empty() const { return size_ == 0; }

  std::pair<sim::SimTime, std::function<void()>> Pop() {
    SkipCancelled();
    Event& top = const_cast<Event&>(heap_.top());
    std::pair<sim::SimTime, std::function<void()>> out{top.when,
                                                       std::move(top.fn)};
    pending_.erase(top.id);
    heap_.pop();
    --size_;
    return out;
  }

 private:
  struct Event {
    sim::SimTime when;
    sim::EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (!sim::TimeEq(a.when, b.when)) return a.when > b.when;
      return a.id > b.id;
    }
  };

  void SkipCancelled() {
    while (!heap_.empty()) {
      auto found = cancelled_.find(heap_.top().id);
      if (found == cancelled_.end()) return;
      cancelled_.erase(found);
      heap_.pop();
    }
  }

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<sim::EventId> pending_;
  std::unordered_set<sim::EventId> cancelled_;
  sim::EventId next_id_ = 1;
  size_t size_ = 0;
};

template <typename Queue>
void EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Queue q;
    for (int i = 0; i < n; ++i) {
      q.Push(static_cast<double>((i * 2654435761u) % 1000), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.Pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_EventQueuePushPop(benchmark::State& state) {
  EventQueuePushPop<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_LegacyEventQueuePushPop(benchmark::State& state) {
  EventQueuePushPop<LegacyEventQueue>(state);
}
BENCHMARK(BM_LegacyEventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384);

// Cancel-dominated churn: the retry-timer pattern (arm a future event,
// cancel it, re-arm) over a base of long-lived events. Exercises the
// O(1) slab cancel against the legacy hash-set bookkeeping, and the
// compaction that keeps the heap from accreting dead entries.
template <typename Queue>
void EventQueueCancelHeavy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Queue q;
    for (int i = 0; i < 16; ++i) q.Push(1e9 + i, [] {});
    for (int i = 0; i < n; ++i) {
      auto id = q.Push(1e6 + i, [] {});
      benchmark::DoNotOptimize(q.Cancel(id));
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.Pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  EventQueueCancelHeavy<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(1024)->Arg(16384);

void BM_LegacyEventQueueCancelHeavy(benchmark::State& state) {
  EventQueueCancelHeavy<LegacyEventQueue>(state);
}
BENCHMARK(BM_LegacyEventQueueCancelHeavy)->Arg(1024)->Arg(16384);

void BM_SimulatorEventChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    int remaining = n;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.Schedule(1e-6, tick);
    };
    sim.Schedule(0.0, tick);
    sim.Run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatorEventChain)->Arg(1000)->Arg(100000);

void BM_TokenBucketAdsTake(benchmark::State& state) {
  const int tokens = static_cast<int>(state.range(0));
  core::InfoMapping info;
  for (int i = 0; i < tokens; ++i) {
    info.RecordCompleted(i, i % 8);
  }
  for (auto _ : state) {
    state.PauseTiming();
    core::TokenBucket bucket;
    for (int i = 0; i < tokens; ++i) {
      core::Token t;
      t.id = tokens + i;
      t.level = 1;
      t.batch = 32;
      t.deps = {{i, 16.0}, {(i + 1) % tokens, 16.0}};
      bucket.Add(std::move(t));
    }
    state.ResumeTiming();
    while (!bucket.empty()) {
      benchmark::DoNotOptimize(bucket.Take(3, info, {1}, true));
    }
  }
  state.SetItemsProcessed(state.iterations() * tokens);
}
BENCHMARK(BM_TokenBucketAdsTake)->Arg(8)->Arg(64)->Arg(512);

void BM_LocalityScore(benchmark::State& state) {
  core::InfoMapping info;
  for (int i = 0; i < 64; ++i) info.RecordCompleted(i, i % 8);
  std::vector<core::TokenDep> deps;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    deps.push_back({i, 16.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(info.LocalityScore(3, deps));
  }
}
BENCHMARK(BM_LocalityScore)->Arg(2)->Arg(8)->Arg(32);

void BM_FelaFullIteration(benchmark::State& state) {
  const double batch = static_cast<double>(state.range(0));
  const model::Model m = model::zoo::Vgg19();
  for (auto _ : state) {
    runtime::Cluster cluster(8, sim::Calibration::Default(), nullptr);
    core::FelaConfig cfg = core::FelaConfig::Defaults(3, 8);
    cfg.weights = {1, 2, 4};
    core::FelaEngine engine(&cluster, m, cfg, batch);
    benchmark::DoNotOptimize(engine.Run(1).total_time);
  }
}
BENCHMARK(BM_FelaFullIteration)->Arg(128)->Arg(1024);

// Same iteration with the observability layer armed: spans + trace
// recorded end-to-end. Compare against BM_FelaFullIteration to see the
// cost of observation; the disabled path must stay within noise of the
// pre-observability engine (a null-sink check per hook, no allocation).
void BM_FelaFullIterationObserved(benchmark::State& state) {
  const double batch = static_cast<double>(state.range(0));
  const model::Model m = model::zoo::Vgg19();
  for (auto _ : state) {
    runtime::Cluster cluster(8, sim::Calibration::Default(), nullptr);
    cluster.SetObservability(true);
    core::FelaConfig cfg = core::FelaConfig::Defaults(3, 8);
    cfg.weights = {1, 2, 4};
    core::FelaEngine engine(&cluster, m, cfg, batch);
    benchmark::DoNotOptimize(engine.Run(1).total_time);
    benchmark::DoNotOptimize(cluster.spans().size());
  }
}
BENCHMARK(BM_FelaFullIterationObserved)->Arg(128)->Arg(1024);

// The span sink's hot path in isolation: ring-buffer emit of a span
// carrying a tokenized detail (the production shape after the FELA_TOK
// migration — a trivially-copyable struct store, no allocation),
// including wrap-around eviction once the sink is full. The BENCH
// baseline pins BM_SpanSinkEmit >= 3x BM_LegacySpanSinkEmitText.
void BM_SpanSinkEmit(benchmark::State& state) {
  obs::SpanSink sink(/*capacity=*/4096);
  sink.set_enabled(true);
  double t = 0.0;
  int it = 0;
  for (auto _ : state) {
    sink.Emit(obs::Span{
        0, obs::Phase::kCompute, t, t + 1.0, it,
        common::TokenizedDetail(FELA_TOK("it=%d b=%g"), it, t)});
    t += 1.0;
    ++it;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanSinkEmit);

// The pre-tokenization span path, kept verbatim as the before/after
// baseline: detail is a freshly formatted std::string, so every emit
// pays an StrFormat plus a string copy into the ring.
struct LegacySpan {
  sim::NodeId track = 0;
  obs::Phase phase = obs::Phase::kIdle;
  sim::SimTime begin = 0.0;
  sim::SimTime end = 0.0;
  int iteration = -1;
  std::string detail;
};

class LegacySpanSink {
 public:
  explicit LegacySpanSink(size_t capacity) : capacity_(capacity) {}

  void Emit(LegacySpan span) {
    if (spans_.size() < capacity_) {
      spans_.push_back(std::move(span));
      return;
    }
    spans_[next_] = std::move(span);
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
  }

  size_t size() const { return spans_.size(); }

 private:
  size_t capacity_;
  std::vector<LegacySpan> spans_;
  size_t next_ = 0;
  size_t dropped_ = 0;
};

void BM_LegacySpanSinkEmitText(benchmark::State& state) {
  LegacySpanSink sink(/*capacity=*/4096);
  double t = 0.0;
  int it = 0;
  for (auto _ : state) {
    sink.Emit(LegacySpan{0, obs::Phase::kCompute, t, t + 1.0, it,
                         common::StrFormat("it=%d b=%g", it, t)});
    t += 1.0;
    ++it;
  }
  benchmark::DoNotOptimize(sink.size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LegacySpanSinkEmitText);

// The trace recorder's *enabled* tokenized path: what FELA_TRACE costs
// when tracing is on — a fixed-width record store, no formatting.
void BM_TraceRecorderRecord(benchmark::State& state) {
  sim::TraceRecorder trace(/*capacity=*/4096);
  trace.set_enabled(true);
  double t = 0.0;
  int it = 0;
  for (auto _ : state) {
    FELA_TRACE(&trace, t, 0, sim::TraceKind::kTokenGrant,
               FELA_TOK("Token_%lld b=%g"), static_cast<long long>(it), t);
    t += 1.0;
    ++it;
  }
  benchmark::DoNotOptimize(trace.size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecorderRecord);

// The same record through the legacy dynamic-string overload (the
// escape hatch tokenization replaced on hot paths).
void BM_LegacyTraceRecorderRecordText(benchmark::State& state) {
  sim::TraceRecorder trace(/*capacity=*/4096);
  trace.set_enabled(true);
  double t = 0.0;
  int it = 0;
  for (auto _ : state) {
    trace.Record(t, 0, sim::TraceKind::kTokenGrant,
                 common::StrFormat("Token_%lld b=%g",
                                   static_cast<long long>(it), t));
    t += 1.0;
    ++it;
  }
  benchmark::DoNotOptimize(trace.size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LegacyTraceRecorderRecordText);

/// One observed GoogLeNet run shared by the transcript benches (built
/// once — the benches measure transcript serialization, not the run).
const runtime::ExperimentResult& ObservedResultForTranscripts() {
  static const runtime::ExperimentResult* result = [] {
    runtime::ExperimentSpec spec;
    spec.total_batch = 256;
    spec.iterations = 4;
    spec.observe = true;
    return new runtime::ExperimentResult(runtime::RunExperiment(
        spec,
        suite::FelaFactory(model::zoo::GoogLeNet(),
                           core::FelaConfig::Defaults(3, 8)),
        runtime::NoStragglerFactory()));
  }();
  return *result;
}

// Binary determinism transcript (FELADET1 + FELATRB1): what
// VerifyDeterminism and the bench --verify-determinism gates hash on
// every run pair. Baseline pins >= 3x over BM_TranscriptWriteText.
void BM_TranscriptWrite(benchmark::State& state) {
  const runtime::ExperimentResult& result = ObservedResultForTranscripts();
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime::BinaryTranscript(result));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TranscriptWrite);

// The canonical text transcript (StrFormat per scalar + rendered trace
// text), now only produced on divergence for human diffing.
void BM_TranscriptWriteText(benchmark::State& state) {
  const runtime::ExperimentResult& result = ObservedResultForTranscripts();
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime::DeterminismTranscript(result));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TranscriptWriteText);

void BM_BinPartition(benchmark::State& state) {
  const model::Model m = model::zoo::Vgg19();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::BinPartitioner().Partition(
        m, model::ProfileRepository::Default()));
  }
}
BENCHMARK(BM_BinPartition);

}  // namespace

// Hand-rolled BENCHMARK_MAIN(): google-benchmark rejects flags it does
// not know, so the sweep-recipe flags shared by the other benches
// (--verify-determinism, --jobs N, and the no-ops --json/--smoke) are
// stripped from argv before benchmark::Initialize sees them.
int main(int argc, char** argv) {
  bool verify = false;
  int jobs = 1;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify-determinism") == 0) {
      verify = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
    } else if (std::strcmp(argv[i], "--json") == 0 ||
               std::strcmp(argv[i], "--smoke") == 0) {
      // accepted for uniformity with the sweep benches; no effect here
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (jobs <= 0) jobs = fela::runtime::SweepRunner::HardwareJobs();
  if (verify) {
    using namespace fela;
    runtime::ExperimentSpec spec;
    spec.total_batch = 256;
    spec.iterations = 4;
    const runtime::DeterminismReport report = runtime::VerifyDeterminism(
        spec,
        suite::FelaFactory(model::zoo::GoogLeNet(),
                           core::FelaConfig::Defaults(3, 8)),
        runtime::NoStragglerFactory(), /*fault_factory=*/nullptr, jobs);
    std::printf("determinism[micro_core]: %s\n", report.ToString().c_str());
    if (!report.deterministic) return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
