#include "model/profile.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fela::model {

void ProfileRepository::Register(const std::string& shape_key,
                                 double threshold_batch) {
  FELA_CHECK_GT(threshold_batch, 0.0);
  thresholds_[shape_key] = threshold_batch;
}

double ProfileRepository::Lookup(const std::string& shape_key) const {
  auto it = thresholds_.find(shape_key);
  return it == thresholds_.end() ? 0.0 : it->second;
}

bool ProfileRepository::Contains(const std::string& shape_key) const {
  return thresholds_.count(shape_key) > 0;
}

double ProfileRepository::ThresholdFor(const Layer& layer) const {
  if (layer.threshold_batch > 0.0) return layer.threshold_batch;
  const double repo = Lookup(layer.ShapeKey());
  if (repo > 0.0) return repo;
  return HeuristicThreshold(layer);
}

const ProfileRepository& ProfileRepository::Default() {
  static const ProfileRepository* kRepo = [] {
    auto* repo = new ProfileRepository();
    // Fig. 1 shapes, as measured on the K40c.
    repo->Register("conv(64,64,224,224,k3)", 16.0);
    repo->Register("conv(512,512,14,14,k3)", 38.0);
    repo->Register("fc(4096,4096)", 2048.0);
    return repo;
  }();
  return *kRepo;
}

double HeuristicThreshold(const Layer& layer) {
  switch (layer.kind) {
    case LayerKind::kFc: {
      // FC saturation scales inversely with the GEMM width; anchored at
      // 2048 for a 4096-wide layer, clamped to a sane range.
      const double anchor = 2048.0 * 4096.0 / std::max(layer.c_out, 1);
      return std::clamp(anchor, 256.0, 4096.0);
    }
    case LayerKind::kPool:
      return 16.0;
    case LayerKind::kConv:
    case LayerKind::kInception: {
      // Per-sample output parallelism c_out*h*w; the anchor shape
      // (64,64,224,224) has 3.21M output elements and threshold 16.
      const double parallelism =
          std::max(1.0, static_cast<double>(layer.c_out) * layer.h * layer.w);
      const double anchor_parallelism = 64.0 * 224.0 * 224.0;
      const double thr =
          16.0 * std::pow(anchor_parallelism / parallelism, 0.28);
      return std::clamp(thr, 16.0, 64.0);
    }
  }
  return 16.0;
}

double RoundUpPow2(double v) {
  double p = 1.0;
  while (p < v) p *= 2.0;
  return p;
}

}  // namespace fela::model
