#ifndef FELA_CORE_TOKEN_H_
#define FELA_CORE_TOKEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace fela::core {

using TokenId = int64_t;

inline constexpr TokenId kInvalidTokenId = -1;

/// Reference to a completed lower-level token whose output parameters a
/// generated token consumes.
struct TokenDep {
  TokenId id = kInvalidTokenId;
  double batch = 0.0;  // samples covered by the dependency's output
};

/// A unit of schedulable work: "one token represents training one
/// sub-model with a certain batch size" (§III-A). Level i tokens train
/// sub-model i; tokens above level 0 are generated from completed tokens
/// of the level below and carry those as dependencies.
struct Token {
  TokenId id = kInvalidTokenId;
  int level = 0;       // sub-model index (paper's "T-(level+1) Token")
  int iteration = 0;
  double batch = 0.0;  // samples represented by this token
  /// Completed lower-level tokens whose output parameters this token's
  /// training consumes (empty for level 0).
  std::vector<TokenDep> deps;
  /// For level-0 tokens: the worker whose local storage holds this
  /// token's training samples (its original STB owner). -1 otherwise.
  sim::NodeId sample_home = -1;
  /// Grant attempt count: 0 for a first grant, incremented each time the
  /// token is reclaimed from a crashed/silent worker and re-granted.
  int attempt = 0;

  std::vector<TokenId> DepIds() const;
  std::string ToString() const;
};

}  // namespace fela::core

#endif  // FELA_CORE_TOKEN_H_
