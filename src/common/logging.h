#ifndef FELA_COMMON_LOGGING_H_
#define FELA_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

namespace fela::common {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError, kFatal };

/// Process-wide minimum level; messages below it are dropped.
/// Tests raise this to keep output quiet. The initial value honors the
/// FELA_LOG_LEVEL environment variable (debug|info|warning|error|fatal,
/// case-insensitive, or a numeric level) so sweeps can silence INFO
/// without code changes; it defaults to kInfo when unset or unparsable.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

/// Parses a level name ("debug", "INFO", ...) or digit ("0".."4") into
/// `out`. Returns false (leaving `out` untouched) on anything else.
bool ParseLogLevel(std::string_view text, LogLevel* out);

namespace internal_logging {

/// Stream-style log sink. Emits on destruction; aborts for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Turns the streamed chain into void inside the ternary; & binds looser
/// than << so the whole chain is evaluated first (the glog idiom).
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace fela::common

#define FELA_LOG(level)                                                    \
  (::fela::common::LogLevel::k##level < ::fela::common::MinLogLevel())     \
      ? (void)0                                                            \
      : ::fela::common::internal_logging::Voidify() &                      \
            ::fela::common::internal_logging::LogMessage(                  \
                ::fela::common::LogLevel::k##level, __FILE__, __LINE__)    \
                .stream()

/// CHECK-style invariant assertion: always on, aborts with a message.
#define FELA_CHECK(cond)                                                    \
  (cond) ? (void)0                                                          \
         : ::fela::common::internal_logging::Voidify() &                    \
               ::fela::common::internal_logging::LogMessage(                \
                   ::fela::common::LogLevel::kFatal, __FILE__, __LINE__)    \
                   .stream()                                                \
                   << "Check failed: " #cond " "

#define FELA_CHECK_OK(expr)                                              \
  do {                                                                   \
    const auto& fela_check_status_ = (expr);                             \
    FELA_CHECK(fela_check_status_.ok()) << fela_check_status_.ToString(); \
  } while (false)

#define FELA_CHECK_EQ(a, b) FELA_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define FELA_CHECK_NE(a, b) FELA_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define FELA_CHECK_LT(a, b) FELA_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define FELA_CHECK_LE(a, b) FELA_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define FELA_CHECK_GT(a, b) FELA_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define FELA_CHECK_GE(a, b) FELA_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // FELA_COMMON_LOGGING_H_
