#ifndef FELA_COMMON_TOKENIZE_H_
#define FELA_COMMON_TOKENIZE_H_

#include <bit>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/annotations.h"

namespace fela::common {

/// Pigweed-style tokenized tracing: the format string of a hot-path
/// trace/span detail is hashed to a 32-bit token at compile time, and
/// the call site stores only {token, packed args} — a handful of raw
/// stores instead of an StrFormat + std::string allocation. The text is
/// reconstructed on demand (in-process via the global TokenRegistry, or
/// offline by tools/fela-detok against the checked-in tools/tokens.csv)
/// byte-identically to what StrFormat would have produced.

/// 32-bit FNV-1a over the format string; constexpr so FELA_TOK sites
/// bake the token into the binary with zero runtime hashing.
constexpr uint32_t TokenHash32(std::string_view s) {
  uint32_t hash = 2166136261u;
  for (const char c : s) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 16777619u;
  }
  return hash;
}

/// Up to four arguments packed into fixed-width slots. Integers widen
/// to 64 bits (so `%d` vs `%zu` call sites need no per-type storage),
/// doubles are stored as their bit pattern; a 2-bit tag per slot keeps
/// the detokenizer honest about which reading to use.
enum class TokArgType : uint8_t { kNone = 0, kInt = 1, kUint = 2, kDouble = 3 };

struct TokArgs {
  uint64_t values[4] = {0, 0, 0, 0};
  uint8_t count = 0;
  uint8_t types = 0;  // 2 bits per slot, slot 0 in the low bits

  TokArgType type(int slot) const {
    return static_cast<TokArgType>((types >> (2 * slot)) & 3u);
  }

  template <typename T>
  void Push(T v) {
    static_assert(std::is_arithmetic_v<T>,
                  "tokenized details take only numeric args; tokenize the "
                  "whole string instead of passing one");
    if constexpr (std::is_floating_point_v<T>) {
      Put(std::bit_cast<uint64_t>(static_cast<double>(v)),
          TokArgType::kDouble);
    } else if constexpr (std::is_signed_v<T>) {
      Put(static_cast<uint64_t>(static_cast<int64_t>(v)), TokArgType::kInt);
    } else {
      Put(static_cast<uint64_t>(v), TokArgType::kUint);
    }
  }

 private:
  void Put(uint64_t bits, TokArgType type) {
    values[count] = bits;
    types = static_cast<uint8_t>(types |
                                 (static_cast<uint8_t>(type) << (2 * count)));
    ++count;
  }
};

/// What FELA_TOK yields: the compile-time token plus the literal it
/// hashes (kept for in-process registration and rendering).
struct TokenizedFmt {
  uint32_t token;
  const char* fmt;
};

/// The stored form of a trace/span detail. token == 0 means "no
/// detail"; construction from FELA_TOK packs the args immediately, so
/// recording is a trivially-copyable struct store.
struct TokenizedDetail {
  uint32_t token = 0;
  TokArgs args;

  TokenizedDetail() = default;
  template <typename... Args>
  explicit TokenizedDetail(TokenizedFmt fmt, Args... a) : token(fmt.token) {
    static_assert(sizeof...(Args) <= 4,
                  "tokenized details pack at most 4 args");
    (args.Push(a), ...);
  }

  bool empty() const { return token == 0; }
};

/// token -> format string map. The process-global instance is filled
/// lazily by FELA_TOK sites on first execution; tools build their own
/// from tokens.csv. Register detects collisions (same token, different
/// format) — the build-time fela-tokendb scan catches them first, this
/// is the runtime backstop.
class TokenRegistry {
 public:
  /// False iff `token` is already mapped to a different format string.
  bool Register(uint32_t token, std::string_view fmt,
                std::string* error = nullptr);

  /// The format for `token`, or nullptr. The pointer stays valid for
  /// the registry's lifetime (entries are never removed).
  const std::string* Find(uint32_t token) const;

  /// All (token, fmt) pairs sorted by token.
  std::vector<std::pair<uint32_t, std::string>> Entries() const;
  size_t size() const;

  static TokenRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<uint32_t, std::string> entries_ FELA_GUARDED_BY(mu_);
};

/// Renders `fmt` with the packed args, byte-identical to what the
/// original printf-family call would have produced: integer conversions
/// are re-run at 64-bit width (`%d` -> `%lld` etc. — same digits for
/// every in-range value), floats as double. `%%` passes through; `%s`
/// and other non-packable conversions render as their literal spec text
/// (fela-tokendb rejects them at build time).
std::string DetokFormat(const std::string& fmt, const TokArgs& args);

/// Renders a stored detail via `registry` (the process-global one when
/// null). An empty detail renders as ""; an unknown token renders as
/// "<token %08x?>" so a stale tokens.csv is visible, not silent.
std::string Detokenize(const TokenizedDetail& detail,
                       const TokenRegistry* registry = nullptr);

/// tokens.csv serialization: one "token,fmt" row per entry sorted by
/// token, the format CSV-quoted. LoadTokenDbCsv accepts exactly what
/// TokenDbCsv emits (and what fela-tokendb writes).
std::string TokenDbCsv(const TokenRegistry& registry);
bool LoadTokenDbCsv(std::string_view csv, TokenRegistry* registry,
                    std::string* error);

namespace internal_tokenize {
/// FELA_TOK backing: registers into the global registry, CHECK-failing
/// on a collision (two distinct live format strings, one token).
bool RegisterSiteOrDie(uint32_t token, const char* fmt);
}  // namespace internal_tokenize

}  // namespace fela::common

/// Tokenizes a format-string literal at compile time. Yields a
/// TokenizedFmt; pair it with up to 4 numeric args via TokenizedDetail:
///
///   FELA_TRACE(trace, now, id, kind, FELA_TOK("it=%d n=%llu"), it, n);
///   ScopedSpan s(sink, w, phase, it,
///                common::TokenizedDetail(FELA_TOK("it=%d"), it));
///
/// The one-time registration (a static local) is what lets in-process
/// renderers detokenize without the csv database.
#define FELA_TOK(fmt)                                                       \
  ([] {                                                                     \
    constexpr uint32_t fela_tok_hash_ = ::fela::common::TokenHash32(fmt);   \
    static const bool fela_tok_registered_ =                                \
        ::fela::common::internal_tokenize::RegisterSiteOrDie(fela_tok_hash_, \
                                                             fmt);          \
    (void)fela_tok_registered_;                                             \
    return ::fela::common::TokenizedFmt{fela_tok_hash_, fmt};               \
  }())

#endif  // FELA_COMMON_TOKENIZE_H_
