#include "model/partition.h"

#include <gtest/gtest.h>

#include "model/zoo.h"

namespace fela::model {
namespace {

TEST(BinPartitionerTest, BinIndexing) {
  BinPartitioner p(16.0);
  EXPECT_EQ(p.BinOf(0.0), 0);
  EXPECT_EQ(p.BinOf(15.9), 0);
  EXPECT_EQ(p.BinOf(16.0), 1);
  EXPECT_EQ(p.BinOf(31.9), 1);
  EXPECT_EQ(p.BinOf(32.0), 2);
  EXPECT_EQ(p.BinOf(2048.0), 128);
}

TEST(BinPartitionerTest, Vgg19MatchesPaperPartition) {
  // §IV-A / Fig. 5: bin size 16 partitions VGG19 into
  // {L1-8 (CONV), L9-16 (CONV), L17-19 (FC)}.
  const auto sub = BinPartitioner().Partition(zoo::Vgg19(),
                                              ProfileRepository::Default());
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub[0].first_layer, 0);
  EXPECT_EQ(sub[0].last_layer, 7);
  EXPECT_EQ(sub[1].first_layer, 8);
  EXPECT_EQ(sub[1].last_layer, 15);
  EXPECT_EQ(sub[2].first_layer, 16);
  EXPECT_EQ(sub[2].last_layer, 18);
}

TEST(BinPartitionerTest, Vgg19RepresentativeThresholds) {
  // Bin lower edges: 16, 32 (and the FC bin edge), the §III-B values.
  const auto sub = BinPartitioner().Partition(zoo::Vgg19(),
                                              ProfileRepository::Default());
  EXPECT_DOUBLE_EQ(sub[0].threshold_batch, 16.0);
  EXPECT_DOUBLE_EQ(sub[1].threshold_batch, 32.0);
  EXPECT_DOUBLE_EQ(sub[2].threshold_batch, 2048.0);
}

TEST(BinPartitionerTest, Vgg19CommIntensityFlags) {
  const auto sub = BinPartitioner().Partition(zoo::Vgg19(),
                                              ProfileRepository::Default());
  EXPECT_FALSE(sub[0].communication_intensive);
  EXPECT_FALSE(sub[1].communication_intensive);
  EXPECT_TRUE(sub[2].communication_intensive);
}

TEST(BinPartitionerTest, GoogLeNetMatchesPaperPartition) {
  // §IV-A: GoogLeNet partitions into {L1-4, L5-9, L10-12 (CONV+FC)}.
  const auto sub = BinPartitioner().Partition(zoo::GoogLeNet(),
                                              ProfileRepository::Default());
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub[0].first_layer, 0);
  EXPECT_EQ(sub[0].last_layer, 3);
  EXPECT_EQ(sub[1].first_layer, 4);
  EXPECT_EQ(sub[1].last_layer, 8);
  EXPECT_EQ(sub[2].first_layer, 9);
  EXPECT_EQ(sub[2].last_layer, 11);
  EXPECT_TRUE(sub[2].communication_intensive);  // contains the FC
}

TEST(BinPartitionerTest, SubModelAggregatesSumToModel) {
  Model m = zoo::Vgg19();
  const auto sub =
      BinPartitioner().Partition(m, ProfileRepository::Default());
  double params = 0.0, flops = 0.0;
  for (const auto& sm : sub) {
    params += sm.params;
    flops += sm.flops_per_sample;
  }
  EXPECT_NEAR(params, m.TotalParams(), 1.0);
  EXPECT_NEAR(flops, m.TotalFlopsPerSample(), 1.0);
}

TEST(BinPartitionerTest, BoundariesChainCorrectly) {
  Model m = zoo::Vgg19();
  const auto sub =
      BinPartitioner().Partition(m, ProfileRepository::Default());
  for (size_t i = 1; i < sub.size(); ++i) {
    EXPECT_DOUBLE_EQ(sub[i].input_boundary_elems,
                     sub[i - 1].output_boundary_elems);
  }
  EXPECT_DOUBLE_EQ(sub[0].input_boundary_elems, m.input_elems_per_sample());
  // The FC input boundary is conv5_4's 512*7*7... (paper: fc6 input is
  // 25088); in our pooling-folded geometry it is 512*14*14.
  EXPECT_DOUBLE_EQ(sub[2].input_boundary_elems, 512.0 * 14 * 14);
}

TEST(BinPartitionerTest, FinerBinsMakeMoreSubModels) {
  Model m = zoo::Vgg19();
  const auto coarse =
      BinPartitioner(64.0).Partition(m, ProfileRepository::Default());
  const auto fine =
      BinPartitioner(4.0).Partition(m, ProfileRepository::Default());
  EXPECT_LE(coarse.size(), 3u);
  EXPECT_GE(fine.size(), 3u);
}

TEST(SubModelsForRangesTest, UserDefinedPartition) {
  Model m = zoo::Vgg19();
  const auto sub = SubModelsForRanges(m, ProfileRepository::Default(),
                                      {{0, 9}, {10, 18}});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub[0].layer_count(), 10);
  EXPECT_EQ(sub[1].layer_count(), 9);
  EXPECT_TRUE(sub[1].communication_intensive);
}

TEST(SubModelsForRangesDeathTest, RejectsGapsAndBadCoverage) {
  Model m = zoo::Vgg19();
  EXPECT_DEATH(SubModelsForRanges(m, ProfileRepository::Default(),
                                  {{0, 5}, {7, 18}}),
               "Check failed");
  EXPECT_DEATH(
      SubModelsForRanges(m, ProfileRepository::Default(), {{0, 5}}),
      "Check failed");
  EXPECT_DEATH(SubModelsForRanges(m, ProfileRepository::Default(),
                                  {{1, 18}}),
               "Check failed");
}

TEST(BalancedFlopsPartitionTest, CoversModelContiguously) {
  Model m = zoo::Vgg19();
  const auto ranges = BalancedFlopsPartition(m, 8);
  ASSERT_EQ(ranges.size(), 8u);
  EXPECT_EQ(ranges.front().first, 0);
  EXPECT_EQ(ranges.back().second, 18);
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i].first, ranges[i - 1].second + 1);
  }
}

TEST(BalancedFlopsPartitionTest, RoughlyBalanced) {
  Model m = zoo::Vgg19();
  const auto ranges = BalancedFlopsPartition(m, 4);
  const double target = m.TotalFlopsPerSample() / 4;
  for (const auto& [lo, hi] : ranges) {
    const double f = m.FlopsPerSampleInRange(lo, hi);
    EXPECT_LT(f, target * 2.2) << lo << ".." << hi;
  }
}

TEST(BalancedFlopsPartitionTest, SingleStageIsWholeModel) {
  Model m = zoo::GoogLeNet();
  const auto ranges = BalancedFlopsPartition(m, 1);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], std::make_pair(0, 11));
}

TEST(BalancedFlopsPartitionTest, StagesEqualLayersDegenerate) {
  Model m = zoo::GoogLeNet();
  const auto ranges = BalancedFlopsPartition(m, 12);
  ASSERT_EQ(ranges.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(ranges[static_cast<size_t>(i)],
              std::make_pair(i, i));
  }
}

TEST(EqualLayerCountPartitionTest, EvenSplit) {
  Model m = zoo::GoogLeNet();  // 12 layers
  const auto ranges = EqualLayerCountPartition(m, 4);
  ASSERT_EQ(ranges.size(), 4u);
  for (const auto& [lo, hi] : ranges) EXPECT_EQ(hi - lo + 1, 3);
}

TEST(EqualLayerCountPartitionTest, RemainderGoesToFront) {
  Model m = zoo::Vgg19();  // 19 layers over 8 stages: 3,3,3,2,2,2,2,2
  const auto ranges = EqualLayerCountPartition(m, 8);
  ASSERT_EQ(ranges.size(), 8u);
  EXPECT_EQ(ranges[0].second - ranges[0].first + 1, 3);
  EXPECT_EQ(ranges[7].second - ranges[7].first + 1, 2);
  EXPECT_EQ(ranges.back().second, 18);
}

TEST(SubModelTest, ToStringIsInformative) {
  const auto sub = BinPartitioner().Partition(zoo::Vgg19(),
                                              ProfileRepository::Default());
  const std::string s = sub[2].ToString();
  EXPECT_NE(s.find("SM-3"), std::string::npos);
  EXPECT_NE(s.find("comm-intensive"), std::string::npos);
}

}  // namespace
}  // namespace fela::model
