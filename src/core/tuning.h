#ifndef FELA_CORE_TUNING_H_
#define FELA_CORE_TUNING_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/fela_config.h"
#include "model/model.h"
#include "sim/calibration.h"
#include "sim/straggler.h"

namespace fela::core {

/// One evaluated configuration case of the §IV-B warm-up search.
struct TuningCase {
  int case_index = 0;
  FelaConfig config;
  double per_iteration_seconds = 0.0;
  bool phase2 = false;
};

/// Outcome of the two-phase runtime configuration tuning.
struct TuningReport {
  std::vector<TuningCase> cases;
  FelaConfig best_config;
  int best_case_index = 0;
  double best_seconds = 0.0;
  /// Best-vs-worst savings fractions, (worst - best) / worst — the
  /// quantities behind Fig. 6(b).
  double phase1_gap = 0.0;
  double phase2_gap = 0.0;
  double overall_gap = 0.0;

  /// Per-case values min-max normalized to [0,1] (Fig. 6(a)'s scheme).
  std::vector<double> NormalizedSeconds() const;
  std::string ToString() const;
};

/// Phase 1 candidates: weight sequences {1, w_2, ..., w_M}, non-decreasing,
/// values from {1, 2, 4, ..., 2^floor(log2 N)} (§IV-B). For M=3, N=8 this
/// is the paper's 10 cases, in the paper's Case-0..Case-9 order.
std::vector<std::vector<int>> EnumerateWeightCandidates(int num_sub_models,
                                                        int num_workers);

/// Phase 2 candidates: subset sizes N, N/2, ..., 1 (§IV-B footnote 15:
/// non-divisor sizes are skipped for load balance).
std::vector<int> EnumerateSubsetSizes(int num_workers);

/// Measures the mean per-iteration seconds of a configuration.
using ConfigEvaluator = std::function<double(const FelaConfig&)>;

/// Runs the two-phase search: Phase 1 fixes the parallelism degrees, then
/// Phase 2 (reusing the Phase-1 winner for subset = N) searches the
/// conditional subset size. For M=3, N=8: 10 + 4 - 1 = 13 cases.
TuningReport TuneConfiguration(int num_sub_models, int num_workers,
                               const ConfigEvaluator& evaluator);

/// Creates the (possibly straggler-injecting) schedule for a warm-up
/// cluster; nullptr-returning factories mean "no stragglers".
using WarmupStragglerFactory =
    std::function<std::unique_ptr<sim::StragglerSchedule>(int num_workers)>;

/// The standard evaluator: builds a fresh default cluster, runs a Fela
/// engine for `iterations` warm-up iterations (the paper uses 5), and
/// returns the mean per-iteration time. The warm-up happens in the same
/// environment the training will run in — pass the experiment's
/// straggler factory so the tuner sees the stragglers it must live with
/// (the paper's tuning is in-situ, §IV-B).
ConfigEvaluator MakeSimulatedEvaluator(
    const model::Model& model, double total_batch, int num_workers,
    int iterations = 5,
    const sim::Calibration& cal = sim::Calibration::Default(),
    WarmupStragglerFactory stragglers = nullptr);

/// Variant with an explicit (user-defined or custom-profiled) partition;
/// required whenever the model's sub-models do not come from the default
/// ProfileRepository bin partition.
ConfigEvaluator MakeSimulatedEvaluator(
    const model::Model& model, std::vector<model::SubModel> sub_models,
    double total_batch, int num_workers, int iterations = 5,
    const sim::Calibration& cal = sim::Calibration::Default(),
    WarmupStragglerFactory stragglers = nullptr);

}  // namespace fela::core

#endif  // FELA_CORE_TUNING_H_
