#ifndef FELA_SIM_TYPES_H_
#define FELA_SIM_TYPES_H_

#include <cstdint>

namespace fela::sim {

/// Simulated time in seconds since experiment start.
using SimTime = double;

/// Cluster node index, 0-based. Workers are nodes; the token server is
/// co-located with node 0 (the paper notes TS is not compute-intensive).
using NodeId = int;

/// Handle returned by Simulator::Schedule (usable for cancellation).
using EventId = uint64_t;

inline constexpr EventId kInvalidEventId = 0;

}  // namespace fela::sim

#endif  // FELA_SIM_TYPES_H_
