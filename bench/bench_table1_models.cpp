// Table I: "Growing Neural Network Layer Numbers" — the model-zoo survey
// of published layer counts, regenerated from our model definitions.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "model/zoo.h"

namespace {

std::string RenderTableOne(int jobs) {
  using namespace fela;
  // Each model's row is independent; stage them on the sweep runner and
  // assemble the table in model order, so bytes match any --jobs value.
  const std::vector<model::Model> models = model::zoo::TableOneModels();
  std::vector<std::vector<std::string>> rows(models.size());
  runtime::SweepRunner runner(jobs);
  for (size_t i = 0; i < models.size(); ++i) {
    runner.Add([&models, &rows, i] {
      const model::Model& m = models[i];
      rows[i] = {m.name(), std::to_string(m.year()),
                 std::to_string(m.published_layer_count()),
                 std::to_string(m.WeightedLayerCount()),
                 common::TablePrinter::Num(m.TotalParams() / 1e6, 1),
                 common::TablePrinter::Num(m.TotalFlopsPerSample() / 1e9, 2)};
    });
  }
  runner.RunAll();
  common::TablePrinter table(
      {"Model", "Year", "Layer Number", "built layers", "params (M)",
       "fwd GFLOP/sample"});
  for (std::vector<std::string>& row : rows) table.AddRow(std::move(row));
  return table.ToString();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fela;
  const bench::BenchOptions opts = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader("Table I: Growing Neural Network Layer Numbers");

  std::cout << RenderTableOne(opts.jobs);
  std::printf(
      "\n('built layers' counts the weighted layers of our constructed\n"
      "model; GoogLeNet trains as 12 coarse units, see DESIGN.md.)\n");
  return bench::VerifyRenderDeterminism(
      opts, "table1", [&opts] { return RenderTableOne(opts.jobs); });
}
