#include "tokendb/tokendb.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/string_util.h"
#include "lint/lexer.h"

namespace fela::tokendb {

namespace {

int LineOfOffset(const std::string& src, size_t offset) {
  return 1 + static_cast<int>(
                 std::count(src.begin(), src.begin() + offset, '\n'));
}

size_t SkipWhitespace(const std::string& src, size_t pos) {
  while (pos < src.size() &&
         std::isspace(static_cast<unsigned char>(src[pos]))) {
    ++pos;
  }
  return pos;
}

bool IsHex(char c) { return std::isxdigit(static_cast<unsigned char>(c)); }
bool IsOctal(char c) { return c >= '0' && c <= '7'; }

/// Parses one "..." literal starting at the opening quote, appending
/// the unescaped contents. On success *pos is one past the closing
/// quote.
bool ParseOneLiteral(const std::string& src, size_t* pos, std::string* out,
                     std::string* why) {
  size_t i = *pos + 1;  // past the opening quote
  while (i < src.size() && src[i] != '"') {
    if (src[i] != '\\') {
      if (src[i] == '\n') {
        *why = "unterminated string literal";
        return false;
      }
      out->push_back(src[i++]);
      continue;
    }
    if (i + 1 >= src.size()) {
      *why = "dangling backslash";
      return false;
    }
    const char e = src[++i];
    ++i;
    switch (e) {
      case '\\': out->push_back('\\'); break;
      case '"': out->push_back('"'); break;
      case '\'': out->push_back('\''); break;
      case 'n': out->push_back('\n'); break;
      case 't': out->push_back('\t'); break;
      case 'r': out->push_back('\r'); break;
      case 'a': out->push_back('\a'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'v': out->push_back('\v'); break;
      case '0': out->push_back('\0'); break;
      case 'x': {
        int v = 0, digits = 0;
        while (i < src.size() && IsHex(src[i]) && digits < 2) {
          v = v * 16 + (std::isdigit(static_cast<unsigned char>(src[i]))
                            ? src[i] - '0'
                            : (std::tolower(src[i]) - 'a' + 10));
          ++i;
          ++digits;
        }
        if (digits == 0) {
          *why = "\\x with no hex digits";
          return false;
        }
        out->push_back(static_cast<char>(v));
        break;
      }
      default:
        if (IsOctal(e)) {
          int v = e - '0', digits = 1;
          while (i < src.size() && IsOctal(src[i]) && digits < 3) {
            v = v * 8 + (src[i] - '0');
            ++i;
            ++digits;
          }
          out->push_back(static_cast<char>(v));
          break;
        }
        *why = common::StrFormat("unsupported escape \\%c", e);
        return false;
    }
  }
  if (i >= src.size()) {
    *why = "unterminated string literal";
    return false;
  }
  *pos = i + 1;
  return true;
}

/// Validates a format against what the 4-slot numeric arg pack can
/// carry; returns false with a reason otherwise.
bool ValidateFmt(const std::string& fmt, std::string* why) {
  int specs = 0;
  for (size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] != '%') continue;
    if (i + 1 < fmt.size() && fmt[i + 1] == '%') {
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < fmt.size() &&
           std::string_view("-+ #0123456789.lhzjtL").find(fmt[j]) !=
               std::string_view::npos) {
      ++j;
    }
    if (j >= fmt.size()) {
      *why = "dangling % at end of format";
      return false;
    }
    const char conv = fmt[j];
    if (conv == 's' || conv == 'p' || conv == 'n') {
      *why = common::StrFormat(
          "%%%c cannot be tokenized (args are packed numerics); use the "
          "std::string Record overload for dynamic text",
          conv);
      return false;
    }
    ++specs;
    i = j;
  }
  if (specs > 4) {
    *why = common::StrFormat("%d conversion specs; tokenized details carry "
                             "at most 4 args",
                             specs);
    return false;
  }
  return true;
}

}  // namespace

bool ExtractTokenFmts(const std::string& path, const std::string& source,
                      std::vector<TokenSite>* out, std::string* error) {
  // The shared lexer's comment-blanking view: comments gone, string
  // literals intact, so FELA_TOK examples in doc comments never reach
  // the scanner but real format literals do.
  const std::string src = lint::StripComments(source);
  size_t pos = 0;
  while (pos < src.size()) {
    // Walk code skipping string/char literal contents, so a FELA_TOK
    // spelled inside a quoted string (lint fixtures, scanner tests)
    // is never mistaken for a real site.
    if (src[pos] == '"' || src[pos] == '\'') {
      const char quote = src[pos];
      ++pos;
      while (pos < src.size() && src[pos] != quote) {
        pos += src[pos] == '\\' ? 2 : 1;
      }
      if (pos < src.size()) ++pos;  // past the closing quote
      continue;
    }
    if (src.compare(pos, 8, "FELA_TOK") != 0) {
      ++pos;
      continue;
    }
    const size_t site = pos;
    pos += 8;  // past "FELA_TOK"
    // Must be the exact identifier, not a prefix of a longer one.
    if (site > 0 && (std::isalnum(static_cast<unsigned char>(src[site - 1])) ||
                     src[site - 1] == '_')) {
      continue;
    }
    if (pos < src.size() &&
        (std::isalnum(static_cast<unsigned char>(src[pos])) ||
         src[pos] == '_')) {
      continue;
    }
    size_t p = SkipWhitespace(src, pos);
    if (p >= src.size() || src[p] != '(') continue;  // e.g. prose mention
    p = SkipWhitespace(src, p + 1);
    if (p >= src.size() || src[p] != '"') {
      // The macro's own definition (`FELA_TOK(fmt)`) lands here; any
      // other non-literal argument defeats compile-time hashing.
      if (p < src.size() && src.compare(p, 4, "fmt)") == 0) continue;
      if (error != nullptr) {
        *error = common::StrFormat(
            "%s:%d: FELA_TOK argument must be a string literal",
            path.c_str(), LineOfOffset(src, site));
      }
      return false;
    }
    std::string fmt;
    std::string why;
    // Adjacent literals ("a" "b") concatenate, as in C++.
    while (p < src.size() && src[p] == '"') {
      if (!ParseOneLiteral(src, &p, &fmt, &why)) {
        if (error != nullptr) {
          *error = common::StrFormat("%s:%d: %s", path.c_str(),
                                     LineOfOffset(src, site), why.c_str());
        }
        return false;
      }
      p = SkipWhitespace(src, p);
    }
    if (p >= src.size() || src[p] != ')') {
      if (error != nullptr) {
        *error = common::StrFormat(
            "%s:%d: FELA_TOK takes exactly one string literal",
            path.c_str(), LineOfOffset(src, site));
      }
      return false;
    }
    if (!ValidateFmt(fmt, &why)) {
      if (error != nullptr) {
        *error = common::StrFormat("%s:%d: \"%s\": %s", path.c_str(),
                                   LineOfOffset(src, site), fmt.c_str(),
                                   why.c_str());
      }
      return false;
    }
    out->push_back(TokenSite{path, LineOfOffset(src, site), fmt});
    pos = p + 1;
  }
  return true;
}

bool RegisterSites(const std::vector<TokenSite>& sites,
                   common::TokenRegistry* registry, std::string* error) {
  for (const TokenSite& site : sites) {
    std::string why;
    if (!registry->Register(common::TokenHash32(site.fmt), site.fmt, &why)) {
      if (error != nullptr) {
        *error = common::StrFormat("%s:%d: %s", site.file.c_str(), site.line,
                                   why.c_str());
      }
      return false;
    }
  }
  return true;
}

bool BuildTokenDb(const std::vector<std::string>& roots, std::string* csv,
                  std::string* error) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (auto it = fs::recursive_directory_iterator(root, ec);
           it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (ec) break;
        if (!it->is_regular_file()) continue;
        const std::string ext = it->path().extension().string();
        if (ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp") {
          files.push_back(it->path().string());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      if (error != nullptr) *error = "cannot read " + root;
      return false;
    }
  }
  std::sort(files.begin(), files.end());

  common::TokenRegistry registry;
  for (const std::string& f : files) {
    std::string contents;
    if (!lint::ReadFile(f, &contents)) {
      if (error != nullptr) *error = "cannot read " + f;
      return false;
    }
    std::vector<TokenSite> sites;
    if (!ExtractTokenFmts(f, contents, &sites, error)) return false;
    if (!RegisterSites(sites, &registry, error)) return false;
  }
  *csv = common::TokenDbCsv(registry);
  return true;
}

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  std::string check_path;
  std::string out_path;
  std::vector<std::string> roots;
  for (const std::string& a : args) {
    if (a.rfind("--check=", 0) == 0) {
      check_path = a.substr(8);
    } else if (a.rfind("--out=", 0) == 0) {
      out_path = a.substr(6);
    } else if (a.rfind("--", 0) == 0) {
      err << "fela-tokendb: unknown flag " << a << "\n";
      return 2;
    } else {
      roots.push_back(a);
    }
  }
  if (roots.empty() || (!check_path.empty() && !out_path.empty())) {
    err << "usage: fela-tokendb [--check=<csv> | --out=<csv>] <path>...\n";
    return 2;
  }

  std::string csv;
  std::string error;
  if (!BuildTokenDb(roots, &csv, &error)) {
    err << "fela-tokendb: " << error << "\n";
    // I/O problems are usage-class failures; collisions and bad sites
    // are findings the build should fail on.
    return error.rfind("cannot read", 0) == 0 ? 2 : 1;
  }

  if (!check_path.empty()) {
    std::string existing;
    if (!lint::ReadFile(check_path, &existing)) {
      err << "fela-tokendb: cannot read " << check_path << "\n";
      return 2;
    }
    if (existing != csv) {
      err << "fela-tokendb: " << check_path
          << " is stale; regenerate with:\n  fela-tokendb --out="
          << check_path;
      for (const std::string& r : roots) err << " " << r;
      err << "\n";
      return 1;
    }
    out << "fela-tokendb: " << check_path << " is current ("
        << std::count(csv.begin(), csv.end(), '\n') - 1 << " tokens)\n";
    return 0;
  }

  if (!out_path.empty()) {
    std::ofstream f(out_path, std::ios::binary);
    if (!f) {
      err << "fela-tokendb: cannot write " << out_path << "\n";
      return 2;
    }
    f << csv;
    return 0;
  }

  out << csv;
  return 0;
}

}  // namespace fela::tokendb
