#include "runtime/engine.h"

#include "common/logging.h"

namespace fela::runtime {

double RunStats::MeanIterationSeconds() const {
  if (iterations.empty()) return 0.0;
  double s = 0.0;
  for (const auto& it : iterations) s += it.duration();
  return s / static_cast<double>(iterations.size());
}

double RunStats::AverageThroughput(double total_batch) const {
  FELA_CHECK_GT(total_time, 0.0);
  return total_batch * static_cast<double>(iterations.size()) / total_time;
}

double RunStats::EffectiveThroughput(double total_batch) const {
  if (stalled) return 0.0;
  return AverageThroughput(total_batch);
}

double PerIterationDelay(const RunStats& with_stragglers,
                         const RunStats& baseline) {
  FELA_CHECK_EQ(with_stragglers.iterations.size(), baseline.iterations.size());
  FELA_CHECK(!baseline.iterations.empty());
  return (with_stragglers.total_time - baseline.total_time) /
         static_cast<double>(baseline.iterations.size());
}

}  // namespace fela::runtime
