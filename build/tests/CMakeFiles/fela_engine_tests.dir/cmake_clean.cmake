file(REMOVE_RECURSE
  "CMakeFiles/fela_engine_tests.dir/engine/baselines_test.cc.o"
  "CMakeFiles/fela_engine_tests.dir/engine/baselines_test.cc.o.d"
  "CMakeFiles/fela_engine_tests.dir/engine/deep_model_test.cc.o"
  "CMakeFiles/fela_engine_tests.dir/engine/deep_model_test.cc.o.d"
  "CMakeFiles/fela_engine_tests.dir/engine/experiment_test.cc.o"
  "CMakeFiles/fela_engine_tests.dir/engine/experiment_test.cc.o.d"
  "CMakeFiles/fela_engine_tests.dir/engine/extra_baselines_test.cc.o"
  "CMakeFiles/fela_engine_tests.dir/engine/extra_baselines_test.cc.o.d"
  "CMakeFiles/fela_engine_tests.dir/engine/fela_engine_test.cc.o"
  "CMakeFiles/fela_engine_tests.dir/engine/fela_engine_test.cc.o.d"
  "CMakeFiles/fela_engine_tests.dir/engine/integration_test.cc.o"
  "CMakeFiles/fela_engine_tests.dir/engine/integration_test.cc.o.d"
  "CMakeFiles/fela_engine_tests.dir/engine/properties_test.cc.o"
  "CMakeFiles/fela_engine_tests.dir/engine/properties_test.cc.o.d"
  "fela_engine_tests"
  "fela_engine_tests.pdb"
  "fela_engine_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fela_engine_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
