#ifndef FELA_RUNTIME_SWEEP_H_
#define FELA_RUNTIME_SWEEP_H_

#include <functional>
#include <vector>

#include "common/annotations.h"
#include "runtime/experiment.h"

namespace fela::runtime {

/// Runs a batch of independent tasks across a small thread pool.
///
/// Each task is an ordinary single-threaded computation (typically one
/// `RunExperiment` replica, which is deterministic and shares nothing
/// mutable with its peers — the profile repository and calibration
/// singletons are const after initialization). Parallelism exists only
/// *between* tasks, so the per-replica simulation transcript is
/// bit-identical regardless of `jobs`. Callers stage results into
/// storage they own, run, then render serially in task order — which
/// makes the rendered output byte-identical to a serial run: `jobs`
/// changes wall-clock time and nothing else.
class FELA_THREAD_HOSTILE SweepRunner {
 public:
  /// jobs <= 1 runs every task inline on the calling thread, in
  /// submission order, creating no threads at all.
  explicit SweepRunner(int jobs = 1);

  int jobs() const { return jobs_; }

  /// Queues a task for RunAll. Tasks must be mutually independent and
  /// must not touch shared mutable state; each writes its outcome into
  /// a caller-owned slot (e.g. `results[i]`).
  void Add(std::function<void()> task);

  /// Runs every queued task, returning once all have completed. With
  /// jobs > 1 the tasks are claimed from an atomic counter by jobs
  /// threads (the calling thread included), so completion order is
  /// unspecified — which is why results are staged, not streamed. The
  /// queue is left empty.
  void RunAll();

  /// Default for `--jobs` auto mode: the hardware concurrency, >= 1.
  static int HardwareJobs();

 private:
  int jobs_;
  std::vector<std::function<void()>> tasks_;
};

/// One point of an experiment sweep, self-contained so it can run on
/// any thread: the spec plus the factories that build its engine and
/// schedules.
struct SweepItem {
  ExperimentSpec spec;
  EngineFactory engine;
  StragglerFactory stragglers;
  FaultFactory faults;  // null => fault-free run
};

/// Runs every item (in parallel when jobs > 1) and returns the results
/// in item order regardless of completion order.
std::vector<ExperimentResult> RunSweep(const std::vector<SweepItem>& items,
                                       int jobs);

}  // namespace fela::runtime

#endif  // FELA_RUNTIME_SWEEP_H_
