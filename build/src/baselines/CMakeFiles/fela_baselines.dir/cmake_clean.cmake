file(REMOVE_RECURSE
  "CMakeFiles/fela_baselines.dir/dp_engine.cc.o"
  "CMakeFiles/fela_baselines.dir/dp_engine.cc.o.d"
  "CMakeFiles/fela_baselines.dir/elastic_mp_engine.cc.o"
  "CMakeFiles/fela_baselines.dir/elastic_mp_engine.cc.o.d"
  "CMakeFiles/fela_baselines.dir/hp_engine.cc.o"
  "CMakeFiles/fela_baselines.dir/hp_engine.cc.o.d"
  "CMakeFiles/fela_baselines.dir/mp_engine.cc.o"
  "CMakeFiles/fela_baselines.dir/mp_engine.cc.o.d"
  "CMakeFiles/fela_baselines.dir/ps_engine.cc.o"
  "CMakeFiles/fela_baselines.dir/ps_engine.cc.o.d"
  "libfela_baselines.a"
  "libfela_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fela_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
