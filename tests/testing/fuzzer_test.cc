// The fuzz loop end to end: cases are deterministic, the mutation canary
// proves the oracles can bite, and the shrinker turns a failing spec
// into a small replayable repro.

#include "testing/fuzzer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/json.h"
#include "core/token_server.h"
#include "testing/spec_gen.h"

namespace fela::testing {
namespace {

TEST(FuzzerTest, CaseIsDeterministic) {
  const FuzzSpec spec = GenerateSpec(5);
  const FuzzCaseResult a = RunFuzzCase(spec);
  const FuzzCaseResult b = RunFuzzCase(spec);
  EXPECT_EQ(CaseSummaryLine(0, a), CaseSummaryLine(0, b));
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

TEST(FuzzerTest, CaseSummaryLineIsStable) {
  FuzzSpec spec = GenerateSpec(3);
  FuzzCaseResult r;
  r.spec = spec;
  r.result.stats.total_time = 2.5;
  r.result.average_throughput = 100.0;
  const std::string line = CaseSummaryLine(3, r);
  EXPECT_NE(line.find("case 0003"), std::string::npos);
  EXPECT_NE(line.find("-> ok"), std::string::npos);
  EXPECT_NE(line.find(SpecLabel(spec)), std::string::npos);

  r.violations.push_back(Violation{"stats-sanity", "synthetic"});
  const std::string bad = CaseSummaryLine(4, r);
  EXPECT_NE(bad.find("VIOLATION x1 [stats-sanity] synthetic"),
            std::string::npos);
}

TEST(FuzzerTest, ShrinkOfPassingSpecIsANoOp) {
  const FuzzSpec spec = GenerateSpec(1);
  const ShrinkResult shrunk = Shrink(spec);
  EXPECT_EQ(shrunk.reductions, 0);
  EXPECT_EQ(shrunk.attempts, 1);  // just the re-run that found no target
  EXPECT_TRUE(shrunk.violations.empty());
}

/// The mutation canary: a test-only hook in the token server silently
/// swallows every 7th completion report. With it armed the oracles MUST
/// catch real Fela runs — if they stay quiet, the whole battery is
/// decorative.
class MutationCanaryTest : public ::testing::Test {
 protected:
  void SetUp() override { core::SetTokenServerMutationForTesting(true); }
  void TearDown() override { core::SetTokenServerMutationForTesting(false); }
};

TEST_F(MutationCanaryTest, OracleTripsAndShrinkerMinimizes) {
  // Find a Fela case the canary breaks (needs >= 7 completion reports).
  FuzzSpec failing;
  bool found = false;
  for (uint64_t seed = 1; seed <= 60 && !found; ++seed) {
    const FuzzSpec spec = GenerateSpec(seed);
    if (spec.engine != EngineKind::kFela) continue;
    const FuzzCaseResult r = RunFuzzCase(spec);
    for (const Violation& v : r.violations) {
      if (v.oracle == "token-conservation") {
        failing = spec;
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found) << "mutation canary never tripped token-conservation";

  // The shrinker must bring the repro down to a debuggable size while
  // still tripping the same oracle.
  const ShrinkResult shrunk = Shrink(failing);
  EXPECT_LE(shrunk.spec.num_workers, 4);
  EXPECT_LE(shrunk.spec.iterations, 10);
  bool still_trips = false;
  for (const Violation& v : shrunk.violations) {
    if (v.oracle == "token-conservation") still_trips = true;
  }
  EXPECT_TRUE(still_trips);

  // The repro must survive the JSON round-trip and still fail on replay
  // (this is exactly what `fela-fuzz --replay` does).
  common::Json parsed;
  std::string error;
  ASSERT_TRUE(common::Json::Parse(SpecToJson(shrunk.spec).Dump(1), &parsed,
                                  &error))
      << error;
  FuzzSpec replayed;
  ASSERT_TRUE(SpecFromJson(parsed, &replayed, &error)) << error;
  const FuzzCaseResult again = RunFuzzCase(replayed);
  bool replay_trips = false;
  for (const Violation& v : again.violations) {
    if (v.oracle == "token-conservation") replay_trips = true;
  }
  EXPECT_TRUE(replay_trips);
}

/// A sharded spec with one rack of degraded devices: the fast rack
/// drains its own sub-distributor and must steal cross-shard, so every
/// run executes at least one donation — the operation the shard
/// mutation canary poisons.
FuzzSpec DonatingShardSpec() {
  FuzzSpec spec;  // seed 0: hand-built
  spec.engine = EngineKind::kFela;
  spec.model = ModelKind::kVgg19;
  spec.num_workers = 8;
  spec.total_batch = 256.0;
  spec.iterations = 3;
  spec.rack_size = 4;       // two racks -> two sub-distributors
  spec.fela_ts_shards = 0;  // auto: shard per rack
  spec.straggler = StragglerKind::kHeterogeneous;
  spec.straggler_victim = 0;
  spec.straggler_slowdown = 4.0;
  return spec;
}

/// The sharding mutation canary: the root skips the donor-side
/// availability decrement when a token migrates between shards, so the
/// donor's books double-count it. If the shard-conservation oracle
/// stays quiet under this, the per-shard audit is decorative.
class ShardMutationCanaryTest : public ::testing::Test {
 protected:
  void SetUp() override { core::SetShardDonationMutationForTesting(true); }
  void TearDown() override { core::SetShardDonationMutationForTesting(false); }
};

TEST_F(ShardMutationCanaryTest, ShardConservationOracleBites) {
  const FuzzCaseResult r = RunFuzzCase(DonatingShardSpec());
  bool tripped = false;
  for (const Violation& v : r.violations) {
    if (v.oracle == "shard-conservation") tripped = true;
  }
  EXPECT_TRUE(tripped)
      << "donor double-count never tripped shard-conservation ("
      << r.violations.size() << " violation(s) total)";
}

TEST(ShardFuzzTest, DonatingShardSpecIsCleanWithoutTheCanary) {
  // The same spec with honest books passes the whole battery — proving
  // the canary test above fails because of the mutation, not the spec.
  const FuzzCaseResult r = RunFuzzCase(DonatingShardSpec());
  EXPECT_TRUE(r.ok()) << r.violations.front().oracle << ": "
                      << r.violations.front().detail;
}

TEST(ShardFuzzTest, InertShardTwinRunsOnFlatUnshardedFelaSpecs) {
  // A flat unsharded Fela spec triggers metamorphic twin 1b
  // (ts_shards=1 must be byte-identical); a healthy server passes.
  FuzzSpec spec = DonatingShardSpec();
  spec.rack_size = 0;
  spec.straggler = StragglerKind::kNone;
  const FuzzCaseResult r = RunFuzzCase(spec);
  EXPECT_TRUE(r.ok()) << r.violations.front().oracle << ": "
                      << r.violations.front().detail;
}

TEST_F(MutationCanaryTest, CanaryOnlyAffectsFelaRuns) {
  FuzzSpec spec = GenerateSpec(2);
  spec.engine = EngineKind::kDp;
  spec.fault = FaultKind::kNone;
  spec.straggler = StragglerKind::kNone;
  const FuzzCaseResult r = RunFuzzCase(spec);
  EXPECT_TRUE(r.ok()) << r.violations.front().detail;
}

}  // namespace
}  // namespace fela::testing
