#ifndef FELA_RUNTIME_CLUSTER_H_
#define FELA_RUNTIME_CLUSTER_H_

#include <memory>
#include <vector>

#include "common/arena.h"
#include "common/metrics.h"
#include "sim/calibration.h"
#include "sim/fabric.h"
#include "sim/faults.h"
#include "sim/gpu.h"
#include "sim/simulator.h"
#include "sim/span.h"
#include "sim/straggler.h"
#include "sim/trace.h"

namespace fela::runtime {

/// The simulated testbed an engine runs on: N nodes, one GPU and one NIC
/// each, a shared switch fabric, a straggler schedule, and a fault
/// schedule (crashes + lossy control plane; defaults to NoFaults). Owns
/// the simulator; engines borrow pointers.
class Cluster {
 public:
  Cluster(int num_workers, const sim::Calibration& cal,
          std::unique_ptr<sim::StragglerSchedule> stragglers,
          std::unique_ptr<sim::FaultSchedule> faults = nullptr);

  /// Convenience: the paper's 8-node testbed with default calibration and
  /// no stragglers.
  static std::unique_ptr<Cluster> MakeDefault(int num_workers = 8);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_workers() const { return num_workers_; }
  sim::Simulator& simulator() { return sim_; }
  sim::Fabric& fabric() { return fabric_; }
  sim::GpuDevice& gpu(int worker) { return gpus_[static_cast<size_t>(worker)]; }
  const sim::Calibration& calibration() const { return cal_; }
  const sim::StragglerSchedule& stragglers() const { return *stragglers_; }
  const sim::FaultSchedule& faults() const { return *faults_; }
  sim::TraceRecorder& trace() { return trace_; }
  obs::SpanSink& spans() { return spans_; }
  const obs::SpanSink& spans() const { return spans_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Master switch for the observability layer: enables (or disables)
  /// both the span sink and the trace recorder. Off by default so sweeps
  /// pay nothing; devices/fabric/collectives are pre-wired to the sink
  /// either way and check enabled() per record.
  void SetObservability(bool enabled);
  bool observability() const { return spans_.enabled(); }

  /// Total GPU busy seconds across workers (utilization numerator).
  double TotalGpuBusy() const;

 private:
  int num_workers_;
  sim::Calibration cal_;
  sim::Simulator sim_;
  sim::Fabric fabric_;
  /// One contiguous arena (common/arena.h): per-device hot state stays
  /// cache-resident at 1k+ workers.
  common::ObjectArena<sim::GpuDevice> gpus_;
  std::unique_ptr<sim::StragglerSchedule> stragglers_;
  std::unique_ptr<sim::FaultSchedule> faults_;
  sim::TraceRecorder trace_;
  obs::SpanSink spans_;
  obs::MetricsRegistry metrics_;
};

}  // namespace fela::runtime

#endif  // FELA_RUNTIME_CLUSTER_H_
