#ifndef FELA_RUNTIME_ENGINE_H_
#define FELA_RUNTIME_ENGINE_H_

#include <string>
#include <vector>

#include "runtime/cluster.h"
#include "sim/types.h"

namespace fela::runtime {

/// Timing record of one BSP iteration.
struct IterationStats {
  sim::SimTime start = 0.0;
  sim::SimTime end = 0.0;
  double duration() const { return end - start; }
};

/// Aggregate outcome of a training run.
struct RunStats {
  std::vector<IterationStats> iterations;
  double total_time = 0.0;        // seconds to finish all iterations
  double total_data_bytes = 0.0;  // bulk bytes moved on the fabric
  double total_gpu_busy = 0.0;    // sum of per-GPU busy seconds
  uint64_t control_messages = 0;  // token-protocol messages

  int iteration_count() const { return static_cast<int>(iterations.size()); }
  /// Average per-iteration seconds.
  double MeanIterationSeconds() const;
  /// Average throughput per the paper's Eq. 3 (samples/second).
  double AverageThroughput(double total_batch) const;
};

/// A distributed-training engine (Fela or one of the baselines) executing
/// on a Cluster. Engines schedule their whole protocol onto the cluster's
/// simulator; Run() drives it to completion and reports statistics.
class Engine {
 public:
  virtual ~Engine() = default;

  virtual std::string name() const = 0;

  /// Runs `iterations` BSP iterations and returns timing statistics.
  /// May be called once per engine instance.
  virtual RunStats Run(int iterations) = 0;
};

/// Per-iteration delay (PID) per the paper's Eq. 4: the extra seconds per
/// iteration a straggler scenario costs relative to the clean run.
double PerIterationDelay(const RunStats& with_stragglers,
                         const RunStats& baseline);

}  // namespace fela::runtime

#endif  // FELA_RUNTIME_ENGINE_H_
