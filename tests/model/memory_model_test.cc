#include "model/memory_model.h"

#include <gtest/gtest.h>

#include "model/zoo.h"

namespace fela::model {
namespace {

class MemoryModelTest : public ::testing::Test {
 protected:
  MemoryModelTest() : mem_(sim::Calibration::Default()) {}
  MemoryModel mem_;
};

TEST_F(MemoryModelTest, Vgg19FitsAtBatch32ButNotAt64) {
  // Paper footnote 3: "while training a complete VGG19 model with
  // PyTorch on Tesla K40c GPU, the batch size larger than 32 has
  // exceeded the GPU memory."
  Model m = zoo::Vgg19();
  EXPECT_TRUE(mem_.FitsModel(m, 32));
  EXPECT_FALSE(mem_.FitsModel(m, 64));
}

TEST_F(MemoryModelTest, MaxBatchBetween32And64ForVgg19) {
  Model m = zoo::Vgg19();
  const int max = mem_.MaxBatchForModel(m);
  EXPECT_GE(max, 32);
  EXPECT_LT(max, 64);
}

TEST_F(MemoryModelTest, BytesGrowLinearlyWithBatch) {
  Model m = zoo::Vgg19();
  const double b32 = mem_.BytesForModel(m, 32);
  const double b64 = mem_.BytesForModel(m, 64);
  const double param_bytes = m.TotalParams() * 3 * 4;
  EXPECT_NEAR(b64 - param_bytes, 2 * (b32 - param_bytes), 1.0);
}

TEST_F(MemoryModelTest, SubRangesNeedLessMemory) {
  Model m = zoo::Vgg19();
  EXPECT_LT(mem_.BytesForRange(m, 0, 7, 32), mem_.BytesForModel(m, 32));
  EXPECT_LT(mem_.BytesForRange(m, 16, 18, 32), mem_.BytesForModel(m, 32));
}

TEST_F(MemoryModelTest, SubModelsAllowLargerBatches) {
  // The flexible-parallelism premise: a worker holding only a sub-model
  // can afford much larger batches than one holding the full model.
  Model m = zoo::Vgg19();
  EXPECT_GT(mem_.MaxBatchForRange(m, 16, 18),
            4 * mem_.MaxBatchForModel(m));
}

TEST_F(MemoryModelTest, GoogLeNetFitsComfortably) {
  Model g = zoo::GoogLeNet();
  EXPECT_TRUE(mem_.FitsModel(g, 1024));
  EXPECT_GT(mem_.MaxBatchForModel(g), 1024);
}

TEST_F(MemoryModelTest, FitsIsConsistentWithMaxBatch) {
  Model m = zoo::Vgg19();
  const int max = mem_.MaxBatchForModel(m);
  EXPECT_TRUE(mem_.FitsModel(m, max));
  EXPECT_FALSE(mem_.FitsModel(m, max + 1));
}

TEST_F(MemoryModelTest, OversizedModelReportsZero) {
  // A model whose parameters alone exceed device memory.
  std::vector<Layer> layers;
  layers.push_back(Layer::Fc("huge", 65536, 65536));  // 4.3B params * 12B
  Model m("huge", std::move(layers));
  EXPECT_EQ(mem_.MaxBatchForModel(m), 0);
  EXPECT_FALSE(mem_.FitsModel(m, 1));
}

}  // namespace
}  // namespace fela::model
