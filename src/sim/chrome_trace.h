#ifndef FELA_SIM_CHROME_TRACE_H_
#define FELA_SIM_CHROME_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/tokenize.h"
#include "sim/span.h"
#include "sim/trace.h"

namespace fela::obs {

/// Converts a run's spans + trace events into the Chrome trace-event
/// JSON format, loadable in Perfetto (ui.perfetto.dev) or
/// chrome://tracing. Layout: pid 0 = the cluster; one tid ("thread")
/// per worker plus one for the token server / driver (any span track
/// >= num_workers). Spans become "X" complete events with microsecond
/// ts/dur; TraceRecorder events become "i" instant markers on their
/// node's track, so token grants and crashes line up against the
/// compute/sync intervals they explain.
common::Json ChromeTraceJson(const SpanSink& spans,
                             const sim::TraceRecorder* trace, int num_workers);

/// The same conversion from already-extracted data — what both the live
/// path above and the offline binary-trace converter (tools/fela-detok)
/// call, so their outputs are byte-identical. Span details are
/// detokenized through `registry` (the process-global one when null);
/// `has_trace` mirrors "was a TraceRecorder attached" (it controls the
/// trace_events_dropped field even when no events were recorded).
common::Json ChromeTraceJsonData(const std::vector<Span>& spans,
                                 uint64_t spans_dropped, bool has_trace,
                                 const std::vector<sim::TraceEvent>& events,
                                 uint64_t events_dropped, int num_workers,
                                 const common::TokenRegistry* registry =
                                     nullptr);

/// ChromeTraceJson serialized ready to write to a .json file.
std::string ChromeTraceString(const SpanSink& spans,
                              const sim::TraceRecorder* trace,
                              int num_workers);

}  // namespace fela::obs

#endif  // FELA_SIM_CHROME_TRACE_H_
