#ifndef FELA_COMMON_ANNOTATIONS_H_
#define FELA_COMMON_ANNOTATIONS_H_

/// Concurrency annotation macros, consumed by two analyzers:
///
///  - fela-lint's `guarded-by` and `sweep-shared-state` rules parse them
///    textually from the whole-tree symbol index (always on, any
///    toolchain);
///  - clang's -Wthread-safety maps them onto its capability attributes
///    when the compiler is clang, so the same annotations also get a
///    real flow-sensitive check in the clang-tidy CI job.
///
/// Usage:
///   std::map<...> entries_ FELA_GUARDED_BY(mu_);   // member needs mu_
///   void CompactLocked() FELA_REQUIRES(mu_);       // caller holds mu_
///   class FELA_THREAD_HOSTILE SweepRunner { ... }; // never share across
///                                                  // sweep tasks
///
/// FELA_THREAD_HOSTILE marks types whose instances must stay confined to
/// one sweep task: fela-lint flags namespace-scope instances of such
/// types. It expands to nothing — it exists for the analyzers, not
/// codegen.

#if defined(__clang__)
#define FELA_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define FELA_TS_ATTRIBUTE(x)
#endif

#define FELA_GUARDED_BY(x) FELA_TS_ATTRIBUTE(guarded_by(x))
#define FELA_REQUIRES(...) \
  FELA_TS_ATTRIBUTE(exclusive_locks_required(__VA_ARGS__))
#define FELA_THREAD_HOSTILE

#endif  // FELA_COMMON_ANNOTATIONS_H_
