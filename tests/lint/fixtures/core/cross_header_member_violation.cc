// fela-lint fixture: the unordered-iter rule must fire on line 9 even
// though `entries_` is declared in a different (non-sibling) header —
// member collection follows directly-included project headers.
#include "cross_header_member.h"

namespace fela::fixture {

void Registry::EmitAll() {
  for (const auto& [id, value] : entries_) {
    Emit(id);
  }
}

}  // namespace fela::fixture
