
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_partition.cpp" "bench/CMakeFiles/bench_fig5_partition.dir/bench_fig5_partition.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_partition.dir/bench_fig5_partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/suite/CMakeFiles/fela_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fela_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/fela_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fela_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/fela_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fela_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fela_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
