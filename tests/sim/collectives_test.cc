#include "sim/collectives.h"

#include <gtest/gtest.h>

namespace fela::sim {
namespace {

Calibration TestCal() {
  Calibration cal;
  cal.nic_bandwidth_bytes_per_sec = 1e9;
  cal.message_latency_sec = 1e-3;
  return cal;
}

class CollectivesTest : public ::testing::Test {
 protected:
  CollectivesTest() : fabric_(&sim_, 8, TestCal()) {}
  Simulator sim_;
  Fabric fabric_;
};

TEST_F(CollectivesTest, SingleParticipantCompletesImmediately) {
  SimTime done = -1.0;
  RingAllReduce(&sim_, &fabric_, {3}, 1e9, [&] { done = sim_.now(); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(done, 0.0);
  EXPECT_DOUBLE_EQ(fabric_.total_data_bytes(), 0.0);
}

TEST_F(CollectivesTest, RingMatchesIdealOnCleanFabric) {
  const double bytes = 4e8;
  SimTime done = 0.0;
  RingAllReduce(&sim_, &fabric_, {0, 1, 2, 3}, bytes,
                [&] { done = sim_.now(); });
  sim_.Run();
  EXPECT_NEAR(done, RingAllReduceIdealSeconds(4, bytes, TestCal()), 1e-9);
}

TEST_F(CollectivesTest, IdealSecondsFormula) {
  // 2*(P-1) rounds of (bytes/P)/bw + latency.
  const double t = RingAllReduceIdealSeconds(8, 8e8, TestCal());
  EXPECT_NEAR(t, 2 * 7 * (1e8 / 1e9 + 1e-3), 1e-12);
  EXPECT_DOUBLE_EQ(RingAllReduceIdealSeconds(1, 8e8, TestCal()), 0.0);
}

TEST_F(CollectivesTest, RingMovesExpectedBytes) {
  const double bytes = 4e8;
  RingAllReduce(&sim_, &fabric_, {0, 1, 2, 3}, bytes, [] {});
  sim_.Run();
  // Each of 4 nodes sends a chunk (bytes/4) in each of 2*(4-1) rounds.
  EXPECT_NEAR(fabric_.total_data_bytes(), 2 * 3 * 4 * (bytes / 4), 1.0);
}

TEST_F(CollectivesTest, LargerRingsTakeLonger) {
  const double b = 1e8;
  EXPECT_LT(RingAllReduceIdealSeconds(2, b, TestCal()),
            RingAllReduceIdealSeconds(4, b, TestCal()));
  EXPECT_LT(RingAllReduceIdealSeconds(4, b, TestCal()),
            RingAllReduceIdealSeconds(8, b, TestCal()));
}

TEST_F(CollectivesTest, GatherToRootSerializesOnRootInLink) {
  SimTime done = 0.0;
  GatherTo(&sim_, &fabric_, /*root=*/0, {1, 2, 3}, 1e9,
           [&] { done = sim_.now(); });
  sim_.Run();
  // Three 1s transfers serialize on node 0's inbound link.
  EXPECT_NEAR(done, 3 * (1.0 + 1e-3), 1e-9);
}

TEST_F(CollectivesTest, ScatterFromRootSerializesOnRootOutLink) {
  SimTime done = 0.0;
  ScatterFrom(&sim_, &fabric_, /*root=*/5, {1, 2, 3, 4}, 5e8,
              [&] { done = sim_.now(); });
  sim_.Run();
  EXPECT_NEAR(done, 4 * (0.5 + 1e-3), 1e-9);
}

TEST_F(CollectivesTest, GatherWithNoSendersCompletes) {
  SimTime done = -1.0;
  GatherTo(&sim_, &fabric_, 0, {}, 1e6, [&] { done = sim_.now(); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(done, 0.0);
}

TEST_F(CollectivesTest, ConcurrentRingsContendOnSharedLinks) {
  SimTime a = 0.0, b = 0.0;
  RingAllReduce(&sim_, &fabric_, {0, 1}, 1e9, [&] { a = sim_.now(); });
  RingAllReduce(&sim_, &fabric_, {0, 1}, 1e9, [&] { b = sim_.now(); });
  sim_.Run();
  const double one_alone = RingAllReduceIdealSeconds(2, 1e9, TestCal());
  EXPECT_GT(b, one_alone * 1.5);  // the second ring queued behind the first
  EXPECT_GT(a, one_alone - 1e-9);
}

}  // namespace
}  // namespace fela::sim
