#include "common/json.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace fela::common {

const Json* Json::Find(std::string_view key) const {
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  return &members_[it->second].second;
}

void Json::Set(std::string key, Json value) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    members_[it->second].second = std::move(value);
    return;
  }
  index_.emplace(key, members_.size());
  members_.emplace_back(std::move(key), std::move(value));
}

void Json::SortKeysRecursive() {
  for (Json& item : items_) item.SortKeysRecursive();
  if (type_ != Type::kObject) return;
  std::sort(members_.begin(), members_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  index_.clear();
  for (size_t i = 0; i < members_.size(); ++i) {
    index_.emplace(members_[i].first, i);
    members_[i].second.SortKeysRecursive();
  }
}

std::string Json::Quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

std::string NumberToString(double n) {
  if (!std::isfinite(n)) return "null";  // JSON has no Inf/NaN
  if (n == static_cast<double>(static_cast<long long>(n)) &&
      std::abs(n) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(n));
  }
  return StrFormat("%.17g", n);
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<size_t>(indent * (depth + 1)), ' ') : "";
  const std::string close_pad =
      pretty ? std::string(static_cast<size_t>(indent * depth), ' ') : "";
  const char* nl = pretty ? "\n" : "";
  const char* colon = pretty ? ": " : ":";
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      *out += NumberToString(number_);
      return;
    case Type::kString:
      *out += Quote(string_);
      return;
    case Type::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      *out += '[';
      *out += nl;
      for (size_t i = 0; i < items_.size(); ++i) {
        *out += pad;
        items_[i].DumpTo(out, indent, depth + 1);
        if (i + 1 < items_.size()) *out += ',';
        *out += nl;
      }
      *out += close_pad;
      *out += ']';
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      *out += '{';
      *out += nl;
      for (size_t i = 0; i < members_.size(); ++i) {
        *out += pad;
        *out += Quote(members_[i].first);
        *out += colon;
        members_[i].second.DumpTo(out, indent, depth + 1);
        if (i + 1 < members_.size()) *out += ',';
        *out += nl;
      }
      *out += close_pad;
      *out += '}';
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(Json* out) {
    SkipWhitespace();
    if (!ParseValue(out, 0)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = StrFormat("JSON parse error at offset %zu: %s", pos_,
                          what.c_str());
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (!ConsumeLiteral("null")) return Fail("bad literal");
        *out = Json();
        return true;
      case 't':
        if (!ConsumeLiteral("true")) return Fail("bad literal");
        *out = Json(true);
        return true;
      case 'f':
        if (!ConsumeLiteral("false")) return Fail("bad literal");
        *out = Json(false);
        return true;
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = Json(std::move(s));
        return true;
      }
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Fail("bad escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs collapse to
          // two 3-byte sequences; good enough for trace details).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(Json* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("bad number");
    *out = Json(value);
    return true;
  }

  bool ParseArray(Json* out, int depth) {
    Consume('[');
    *out = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return true;
    while (true) {
      Json item;
      SkipWhitespace();
      if (!ParseValue(&item, depth + 1)) return false;
      out->Append(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return true;
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(Json* out, int depth) {
    Consume('{');
    *out = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return true;
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      Json value;
      SkipWhitespace();
      if (!ParseValue(&value, depth + 1)) return false;
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return true;
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool Json::Parse(std::string_view text, Json* out, std::string* error) {
  return Parser(text, error).Parse(out);
}

}  // namespace fela::common
