#include "common/status.h"

#include <gtest/gtest.h>

namespace fela::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
  EXPECT_FALSE(Status::Internal("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::NotFound("missing token").ToString(),
            "NotFound: missing token");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StatusCodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    FELA_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);

  auto succeeds = [] { return Status::Ok(); };
  auto wrapper2 = [&]() -> Status {
    FELA_RETURN_IF_ERROR(succeeds());
    return Status::NotFound("end");
  };
  EXPECT_EQ(wrapper2().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("no");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, ArrowOperatorWorks) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r = std::vector<int>{1, 2};
  r->push_back(3);
  EXPECT_EQ(r.value().size(), 3u);
}

}  // namespace
}  // namespace fela::common
