#include "sim/calibration.h"

namespace fela::sim {

const Calibration& Calibration::Default() {
  static const Calibration kDefault;
  return kDefault;
}

}  // namespace fela::sim
