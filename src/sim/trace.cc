#include "sim/trace.h"

#include <utility>

#include "common/string_util.h"

namespace fela::sim {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kIterationStart:
      return "IterationStart";
    case TraceKind::kIterationEnd:
      return "IterationEnd";
    case TraceKind::kTokenRequest:
      return "TokenRequest";
    case TraceKind::kTokenGrant:
      return "TokenGrant";
    case TraceKind::kTokenComplete:
      return "TokenComplete";
    case TraceKind::kFetchStart:
      return "FetchStart";
    case TraceKind::kFetchEnd:
      return "FetchEnd";
    case TraceKind::kComputeStart:
      return "ComputeStart";
    case TraceKind::kComputeEnd:
      return "ComputeEnd";
    case TraceKind::kSyncStart:
      return "SyncStart";
    case TraceKind::kSyncEnd:
      return "SyncEnd";
    case TraceKind::kStragglerSleep:
      return "StragglerSleep";
    case TraceKind::kHelperSteal:
      return "HelperSteal";
    case TraceKind::kConflict:
      return "Conflict";
    case TraceKind::kWorkerCrash:
      return "WorkerCrash";
    case TraceKind::kWorkerRecover:
      return "WorkerRecover";
    case TraceKind::kControlDrop:
      return "ControlDrop";
    case TraceKind::kControlDup:
      return "ControlDup";
    case TraceKind::kTokenReclaim:
      return "TokenReclaim";
    case TraceKind::kRequestRetry:
      return "RequestRetry";
    case TraceKind::kPartitionDrop:
      return "PartitionDrop";
    case TraceKind::kPartitionCut:
      return "PartitionCut";
    case TraceKind::kPartitionHeal:
      return "PartitionHeal";
    case TraceKind::kTsFailover:
      return "TsFailover";
  }
  return "Unknown";
}

void TraceRecorder::Record(SimTime time, NodeId node, TraceKind kind,
                           std::string detail) {
  if (!enabled_ || capacity_ == 0) return;
  TraceEvent event{time, node, kind, std::move(detail)};
  if (events_.size() < capacity_) {
    events_.push_back(std::move(event));
    return;
  }
  events_[next_] = std::move(event);  // evict the oldest
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> ordered;
  ordered.reserve(events_.size());
  // next_ is the oldest slot once the ring has wrapped (dropped_ > 0);
  // before wrapping the vector is already oldest-first from slot 0.
  const size_t start = dropped_ > 0 ? next_ : 0;
  for (size_t i = 0; i < events_.size(); ++i) {
    ordered.push_back(events_[(start + i) % events_.size()]);
  }
  return ordered;
}

void TraceRecorder::Clear() {
  events_.clear();
  next_ = 0;
  dropped_ = 0;
}

std::string TraceRecorder::ToString() const {
  std::string out;
  if (dropped_ > 0) {
    out += common::StrFormat(
        "... %zu oldest events dropped (ring capacity %zu)\n", dropped_,
        capacity_);
  }
  for (const auto& e : events()) {
    out += common::StrFormat("[%10.6fs] w%-2d %-15s %s\n", e.time, e.node,
                             TraceKindName(e.kind), e.detail.c_str());
  }
  return out;
}

}  // namespace fela::sim
