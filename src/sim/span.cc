#include "sim/span.h"

namespace fela::obs {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kCrashed:
      return "crashed";
    case Phase::kCompute:
      return "compute";
    case Phase::kSyncWait:
      return "sync_wait";
    case Phase::kTransfer:
      return "transfer";
    case Phase::kTokenWait:
      return "token_wait";
    case Phase::kStraggler:
      return "straggler";
    case Phase::kIteration:
      return "iteration";
    case Phase::kIdle:
      return "idle";
  }
  return "?";
}

void SpanSink::Emit(const Span& span) {
  if (!enabled_ || capacity_ == 0) return;
  if (spans_.size() < capacity_) {
    spans_.push_back(span);
    return;
  }
  spans_[next_] = span;  // evict the oldest
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<Span> SpanSink::spans() const {
  std::vector<Span> ordered;
  ordered.reserve(spans_.size());
  const size_t start = dropped_ > 0 ? next_ : 0;
  for (size_t i = 0; i < spans_.size(); ++i) {
    ordered.push_back(spans_[(start + i) % spans_.size()]);
  }
  return ordered;
}

void SpanSink::Clear() {
  spans_.clear();
  next_ = 0;
  dropped_ = 0;
}

}  // namespace fela::obs
