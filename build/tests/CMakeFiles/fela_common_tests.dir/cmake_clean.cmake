file(REMOVE_RECURSE
  "CMakeFiles/fela_common_tests.dir/common/csv_test.cc.o"
  "CMakeFiles/fela_common_tests.dir/common/csv_test.cc.o.d"
  "CMakeFiles/fela_common_tests.dir/common/logging_test.cc.o"
  "CMakeFiles/fela_common_tests.dir/common/logging_test.cc.o.d"
  "CMakeFiles/fela_common_tests.dir/common/rng_test.cc.o"
  "CMakeFiles/fela_common_tests.dir/common/rng_test.cc.o.d"
  "CMakeFiles/fela_common_tests.dir/common/stats_test.cc.o"
  "CMakeFiles/fela_common_tests.dir/common/stats_test.cc.o.d"
  "CMakeFiles/fela_common_tests.dir/common/status_test.cc.o"
  "CMakeFiles/fela_common_tests.dir/common/status_test.cc.o.d"
  "CMakeFiles/fela_common_tests.dir/common/string_util_test.cc.o"
  "CMakeFiles/fela_common_tests.dir/common/string_util_test.cc.o.d"
  "CMakeFiles/fela_common_tests.dir/common/table_test.cc.o"
  "CMakeFiles/fela_common_tests.dir/common/table_test.cc.o.d"
  "CMakeFiles/fela_common_tests.dir/common/units_test.cc.o"
  "CMakeFiles/fela_common_tests.dir/common/units_test.cc.o.d"
  "fela_common_tests"
  "fela_common_tests.pdb"
  "fela_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fela_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
