// Table I: "Growing Neural Network Layer Numbers" — the model-zoo survey
// of published layer counts, regenerated from our model definitions.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/zoo.h"

int main() {
  using namespace fela;
  bench::PrintHeader("Table I: Growing Neural Network Layer Numbers");

  common::TablePrinter table(
      {"Model", "Year", "Layer Number", "built layers", "params (M)",
       "fwd GFLOP/sample"});
  for (const model::Model& m : model::zoo::TableOneModels()) {
    table.AddRow({m.name(), std::to_string(m.year()),
                  std::to_string(m.published_layer_count()),
                  std::to_string(m.WeightedLayerCount()),
                  common::TablePrinter::Num(m.TotalParams() / 1e6, 1),
                  common::TablePrinter::Num(m.TotalFlopsPerSample() / 1e9, 2)});
  }
  table.Print(std::cout);
  std::printf(
      "\n('built layers' counts the weighted layers of our constructed\n"
      "model; GoogLeNet trains as 12 coarse units, see DESIGN.md.)\n");
  return 0;
}
