#include "sim/collectives.h"

#include <gtest/gtest.h>

namespace fela::sim {
namespace {

Calibration TestCal() {
  Calibration cal;
  cal.nic_bandwidth_bytes_per_sec = 1e9;
  cal.message_latency_sec = 1e-3;
  return cal;
}

class CollectivesTest : public ::testing::Test {
 protected:
  CollectivesTest() : fabric_(&sim_, 8, TestCal()) {}
  Simulator sim_;
  Fabric fabric_;
};

TEST_F(CollectivesTest, SingleParticipantCompletesImmediately) {
  SimTime done = -1.0;
  RingAllReduce(&sim_, &fabric_, {3}, 1e9, [&] { done = sim_.now(); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(done, 0.0);
  EXPECT_DOUBLE_EQ(fabric_.total_data_bytes(), 0.0);
}

TEST_F(CollectivesTest, RingMatchesIdealOnCleanFabric) {
  const double bytes = 4e8;
  SimTime done = 0.0;
  RingAllReduce(&sim_, &fabric_, {0, 1, 2, 3}, bytes,
                [&] { done = sim_.now(); });
  sim_.Run();
  EXPECT_NEAR(done, RingAllReduceIdealSeconds(4, bytes, TestCal()), 1e-9);
}

TEST_F(CollectivesTest, IdealSecondsFormula) {
  // 2*(P-1) rounds of (bytes/P)/bw + latency.
  const double t = RingAllReduceIdealSeconds(8, 8e8, TestCal());
  EXPECT_NEAR(t, 2 * 7 * (1e8 / 1e9 + 1e-3), 1e-12);
  EXPECT_DOUBLE_EQ(RingAllReduceIdealSeconds(1, 8e8, TestCal()), 0.0);
}

TEST_F(CollectivesTest, RingMovesExpectedBytes) {
  const double bytes = 4e8;
  RingAllReduce(&sim_, &fabric_, {0, 1, 2, 3}, bytes, [] {});
  sim_.Run();
  // Each of 4 nodes sends a chunk (bytes/4) in each of 2*(4-1) rounds.
  EXPECT_NEAR(fabric_.total_data_bytes(), 2 * 3 * 4 * (bytes / 4), 1.0);
}

TEST_F(CollectivesTest, LargerRingsTakeLonger) {
  const double b = 1e8;
  EXPECT_LT(RingAllReduceIdealSeconds(2, b, TestCal()),
            RingAllReduceIdealSeconds(4, b, TestCal()));
  EXPECT_LT(RingAllReduceIdealSeconds(4, b, TestCal()),
            RingAllReduceIdealSeconds(8, b, TestCal()));
}

TEST_F(CollectivesTest, GatherToRootSerializesOnRootInLink) {
  SimTime done = 0.0;
  GatherTo(&sim_, &fabric_, /*root=*/0, {1, 2, 3}, 1e9,
           [&] { done = sim_.now(); });
  sim_.Run();
  // Three 1s transfers serialize on node 0's inbound link.
  EXPECT_NEAR(done, 3 * (1.0 + 1e-3), 1e-9);
}

TEST_F(CollectivesTest, ScatterFromRootSerializesOnRootOutLink) {
  SimTime done = 0.0;
  ScatterFrom(&sim_, &fabric_, /*root=*/5, {1, 2, 3, 4}, 5e8,
              [&] { done = sim_.now(); });
  sim_.Run();
  EXPECT_NEAR(done, 4 * (0.5 + 1e-3), 1e-9);
}

TEST_F(CollectivesTest, GatherWithNoSendersCompletes) {
  SimTime done = -1.0;
  GatherTo(&sim_, &fabric_, 0, {}, 1e6, [&] { done = sim_.now(); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(done, 0.0);
}

TEST_F(CollectivesTest, ConcurrentRingsContendOnSharedLinks) {
  SimTime a = 0.0, b = 0.0;
  RingAllReduce(&sim_, &fabric_, {0, 1}, 1e9, [&] { a = sim_.now(); });
  RingAllReduce(&sim_, &fabric_, {0, 1}, 1e9, [&] { b = sim_.now(); });
  sim_.Run();
  const double one_alone = RingAllReduceIdealSeconds(2, 1e9, TestCal());
  EXPECT_GT(b, one_alone * 1.5);  // the second ring queued behind the first
  EXPECT_GT(a, one_alone - 1e-9);
}

// Regression: the ctor used to compute bytes/P and 2*(P-1) before
// Start()'s guard, so an empty participant set divided by zero and a
// singleton left negative-round state. Both must now complete
// immediately without touching the fabric.
TEST_F(CollectivesTest, EmptyParticipantSetCompletesImmediately) {
  SimTime done = -1.0;
  RingAllReduce(&sim_, &fabric_, {}, 1e9, [&] { done = sim_.now(); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(done, 0.0);
  EXPECT_EQ(fabric_.data_transfer_count(), 0u);
}

TEST_F(CollectivesTest, SingletonHasNoNegativeRoundState) {
  // A singleton ring must fire its callback exactly once and schedule no
  // transfers (2*(1-1) = 0 rounds, not -something wrapped around).
  int calls = 0;
  RingAllReduce(&sim_, &fabric_, {5}, 1e9, [&] { ++calls; });
  sim_.Run();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(fabric_.data_transfer_count(), 0u);
}

// ---- Hierarchical all-reduce -------------------------------------------

Calibration RackedCal() {
  Calibration cal = TestCal();
  cal.topology = Topology::Racked(4, 1e9, 1e-4);  // 4-node racks
  return cal;
}

class HierarchicalCollectivesTest : public ::testing::Test {
 protected:
  HierarchicalCollectivesTest() : fabric_(&sim_, 8, RackedCal()) {}
  Simulator sim_;
  Fabric fabric_;
};

TEST_F(HierarchicalCollectivesTest, CompletesAndSchedulesLinearTransfers) {
  SimTime done = -1.0;
  HierarchicalAllReduce(&sim_, &fabric_, {0, 1, 2, 3, 4, 5, 6, 7}, 1e8,
                        [&] { done = sim_.now(); });
  sim_.Run();
  EXPECT_GT(done, 0.0);
  // P=8 participants in G=2 racks: 2(P-G) intra-rack + 2(G-1) cross-rack
  // transfers — 14, where the ring would schedule 2*7*8 = 112.
  EXPECT_EQ(fabric_.data_transfer_count(), 14u);
  EXPECT_EQ(fabric_.cross_rack_transfer_count(), 2u);
}

TEST_F(HierarchicalCollectivesTest, SingleRackSkipsCrossRackPhases) {
  HierarchicalAllReduce(&sim_, &fabric_, {0, 1, 2, 3}, 1e8, [] {});
  sim_.Run();
  EXPECT_EQ(fabric_.data_transfer_count(), 6u);  // 2*(4-1), leader 0
  EXPECT_EQ(fabric_.cross_rack_transfer_count(), 0u);
}

TEST_F(HierarchicalCollectivesTest, EmptyAndSingletonCompleteImmediately) {
  int calls = 0;
  HierarchicalAllReduce(&sim_, &fabric_, {}, 1e8, [&] { ++calls; });
  HierarchicalAllReduce(&sim_, &fabric_, {6}, 1e8, [&] { ++calls; });
  sim_.Run();
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(fabric_.data_transfer_count(), 0u);
}

TEST_F(CollectivesTest, HierarchicalOnFlatFabricDegeneratesToStarGather) {
  // On a flat topology every node lands in rack 0: one gather + one
  // broadcast through the first participant, 2*(P-1) transfers.
  SimTime done = -1.0;
  HierarchicalAllReduce(&sim_, &fabric_, {0, 1, 2, 3}, 1e8,
                        [&] { done = sim_.now(); });
  sim_.Run();
  EXPECT_GT(done, 0.0);
  EXPECT_EQ(fabric_.data_transfer_count(), 6u);
}

TEST_F(CollectivesTest, AllReduceDispatchesToRingOnFlatTopology) {
  AllReduce(&sim_, &fabric_, {0, 1, 2, 3}, 4e8, [] {});
  sim_.Run();
  EXPECT_EQ(fabric_.data_transfer_count(), 2u * 3u * 4u);  // ring rounds
}

TEST_F(HierarchicalCollectivesTest, AllReduceDispatchesToHierarchical) {
  AllReduce(&sim_, &fabric_, {0, 1, 2, 3, 4, 5, 6, 7}, 1e8, [] {});
  sim_.Run();
  EXPECT_EQ(fabric_.data_transfer_count(), 14u);
}

}  // namespace
}  // namespace fela::sim
