// fela-tokendb scanner tests: FELA_TOK extraction (concatenation,
// escapes, string-literal blindness), format-policy rejection, and
// collision detection on strings crafted to share an FNV-1a hash.

#include "tokendb/tokendb.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/tokenize.h"

namespace fela::tokendb {
namespace {

std::vector<TokenSite> Extract(const std::string& source) {
  std::vector<TokenSite> sites;
  std::string error;
  EXPECT_TRUE(ExtractTokenFmts("x.cc", source, &sites, &error)) << error;
  return sites;
}

TEST(ExtractTest, FindsSitesWithLinesAndUnescapes) {
  const auto sites = Extract(
      "int a;\n"
      "auto t = FELA_TOK(\"it=%d\");\n"
      "auto u = FELA_TOK(\"tab\\t\" \"joined %g\");\n");
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0].line, 2);
  EXPECT_EQ(sites[0].fmt, "it=%d");
  EXPECT_EQ(sites[1].line, 3);
  EXPECT_EQ(sites[1].fmt, "tab\tjoined %g");
}

TEST(ExtractTest, SkipsCommentsStringsAndTheMacroDefinition) {
  const auto sites = Extract(
      "// FELA_TOK(\"in a comment %d\")\n"
      "/* FELA_TOK(\"in a block %d\") */\n"
      "const char* s = \"FELA_TOK(\\\"inside a string %s\\\")\";\n"
      "#define FELA_TOK(fmt) ...\n"
      "auto real = FELA_TOK(\"kept %d\");\n");
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].fmt, "kept %d");
  EXPECT_EQ(sites[0].line, 5);
}

TEST(ExtractTest, RejectsPolicyViolations) {
  std::vector<TokenSite> sites;
  std::string error;
  // %s cannot pack into a fixed-width slot.
  EXPECT_FALSE(ExtractTokenFmts("x.cc", "FELA_TOK(\"name=%s\");\n", &sites,
                                &error));
  EXPECT_NE(error.find("x.cc:1"), std::string::npos) << error;
  // More than four conversions exceed the arg slots.
  EXPECT_FALSE(ExtractTokenFmts(
      "x.cc", "FELA_TOK(\"%d %d %d %d %d\");\n", &sites, &error));
  // A non-literal argument cannot be hashed at scan time.
  EXPECT_FALSE(ExtractTokenFmts("x.cc", "FELA_TOK(fmt_var);\n", &sites,
                                &error));
}

TEST(RegisterSitesTest, DetectsCraftedCollisions) {
  // "costarring" and "liquid" are a known FNV-1a-32 colliding pair: two
  // distinct formats, one token. The scanner must refuse to emit a DB
  // where one row would shadow the other.
  ASSERT_EQ(common::TokenHash32("costarring"), common::TokenHash32("liquid"));
  const std::vector<TokenSite> sites = {
      {"a.cc", 1, "costarring"},
      {"b.cc", 9, "liquid"},
  };
  common::TokenRegistry registry;
  std::string error;
  EXPECT_FALSE(RegisterSites(sites, &registry, &error));
  EXPECT_NE(error.find("costarring"), std::string::npos) << error;
  EXPECT_NE(error.find("liquid"), std::string::npos) << error;

  // The same format at two sites is not a collision.
  const std::vector<TokenSite> dup = {
      {"a.cc", 1, "it=%d"},
      {"b.cc", 2, "it=%d"},
  };
  common::TokenRegistry registry2;
  EXPECT_TRUE(RegisterSites(dup, &registry2, &error)) << error;
  EXPECT_EQ(registry2.size(), 1u);
}

}  // namespace
}  // namespace fela::tokendb
