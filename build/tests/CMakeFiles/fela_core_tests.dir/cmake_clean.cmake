file(REMOVE_RECURSE
  "CMakeFiles/fela_core_tests.dir/core/fela_config_test.cc.o"
  "CMakeFiles/fela_core_tests.dir/core/fela_config_test.cc.o.d"
  "CMakeFiles/fela_core_tests.dir/core/info_mapping_test.cc.o"
  "CMakeFiles/fela_core_tests.dir/core/info_mapping_test.cc.o.d"
  "CMakeFiles/fela_core_tests.dir/core/ssp_extension_test.cc.o"
  "CMakeFiles/fela_core_tests.dir/core/ssp_extension_test.cc.o.d"
  "CMakeFiles/fela_core_tests.dir/core/token_bucket_test.cc.o"
  "CMakeFiles/fela_core_tests.dir/core/token_bucket_test.cc.o.d"
  "CMakeFiles/fela_core_tests.dir/core/token_server_test.cc.o"
  "CMakeFiles/fela_core_tests.dir/core/token_server_test.cc.o.d"
  "CMakeFiles/fela_core_tests.dir/core/token_test.cc.o"
  "CMakeFiles/fela_core_tests.dir/core/token_test.cc.o.d"
  "CMakeFiles/fela_core_tests.dir/core/tuning_test.cc.o"
  "CMakeFiles/fela_core_tests.dir/core/tuning_test.cc.o.d"
  "fela_core_tests"
  "fela_core_tests.pdb"
  "fela_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fela_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
