#include "sim/fabric.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace fela::sim {

Fabric::Fabric(Simulator* sim, int num_nodes, const Calibration& cal)
    : sim_(sim),
      num_nodes_(num_nodes),
      cal_(cal),
      out_free_(num_nodes, 0.0),
      in_free_(num_nodes, 0.0),
      bytes_sent_(num_nodes, 0.0),
      bytes_received_(num_nodes, 0.0),
      out_busy_(num_nodes, 0.0),
      in_busy_(num_nodes, 0.0) {
  FELA_CHECK_GT(num_nodes, 0);
  if (cal_.topology.hierarchical()) {
    FELA_CHECK_GT(cal_.topology.rack_size, 0);
    const size_t racks =
        static_cast<size_t>(cal_.topology.NumRacks(num_nodes));
    rack_up_free_.assign(racks, 0.0);
    rack_down_free_.assign(racks, 0.0);
  }
}

void Fabric::CheckNode(NodeId node) const {
  FELA_CHECK(node >= 0 && node < num_nodes_) << "node " << node;
}

SimTime Fabric::NextFreeTime(NodeId src, NodeId dst) const {
  CheckNode(src);
  CheckNode(dst);
  const Topology& topo = cal_.topology;
  if (topo.hierarchical() && topo.RackOf(src) != topo.RackOf(dst)) {
    return std::max({sim_->now(), out_free_[src], in_free_[dst],
                     rack_up_free_[static_cast<size_t>(topo.RackOf(src))],
                     rack_down_free_[static_cast<size_t>(topo.RackOf(dst))]});
  }
  return std::max({sim_->now(), out_free_[src], in_free_[dst]});
}

void Fabric::Transfer(NodeId src, NodeId dst, double bytes, EventFn done) {
  CheckNode(src);
  CheckNode(dst);
  FELA_CHECK_GE(bytes, 0.0);
  // fela-lint: allow(float-eq): exactly-zero payloads skip the network.
  if (src == dst || bytes == 0.0) {
    // Device-local data; no network involvement.
    sim_->Schedule(0.0, std::move(done));
    return;
  }
  const Topology& topo = cal_.topology;
  const bool cross_rack =
      topo.hierarchical() && topo.RackOf(src) != topo.RackOf(dst);
  const SimTime start = NextFreeTime(src, dst);
  double bandwidth = cal_.nic_bandwidth_bytes_per_sec;
  double latency = cal_.message_latency_sec;
  if (cross_rack) {
    // The flow crosses ToR -> aggregation -> ToR: it is clocked at the
    // slower of the NIC and the rack uplink, and pays the two extra
    // switch hops.
    if (topo.uplink_bandwidth_bytes_per_sec > 0.0) {
      bandwidth = std::min(bandwidth, topo.uplink_bandwidth_bytes_per_sec);
    }
    latency += 2.0 * topo.rack_hop_latency_sec;
  }
  const double wire = bytes / bandwidth;
  const SimTime finish = start + latency + wire;
  out_free_[src] = finish;
  in_free_[dst] = finish;
  out_busy_[src] += finish - start;
  in_busy_[dst] += finish - start;
  if (cross_rack) {
    rack_up_free_[static_cast<size_t>(topo.RackOf(src))] = finish;
    rack_down_free_[static_cast<size_t>(topo.RackOf(dst))] = finish;
    ++cross_rack_transfer_count_;
    cross_rack_bytes_ += bytes;
  }
  bytes_sent_[src] += bytes;
  bytes_received_[dst] += bytes;
  total_data_bytes_ += bytes;
  ++data_transfer_count_;
  if (spans_ != nullptr && spans_->enabled()) {
    spans_->Emit(obs::Span{dst, obs::Phase::kTransfer, start, finish, -1, {}});
  }
  sim_->ScheduleAt(finish, std::move(done));
}

void Fabric::SetFaults(const FaultSchedule* faults, TraceRecorder* trace) {
  faults_ = faults;
  fault_trace_ = trace;
}

void Fabric::SendControl(NodeId src, NodeId dst, std::function<void()> done) {
  CheckNode(src);
  CheckNode(dst);
  ++control_message_count_;
  bool duplicated = false;
  // Gray failures inflate control latency at either endpoint; 1.0 when no
  // schedule is active or no gray interval covers the endpoints.
  double delay_factor = 1.0;
  if (faults_ != nullptr && faults_->Active()) {
    const uint64_t seq = control_seq_++;
    const SimTime now = sim_->now();
    // A dead endpoint neither emits nor absorbs control traffic; live
    // messages may additionally be eaten or duplicated by the lossy
    // control plane.
    if (faults_->IsDownAt(now, src) || faults_->IsDownAt(now, dst) ||
        faults_->DropControl(seq)) {
      ++control_dropped_count_;
      FELA_TRACE(fault_trace_, now, dst, TraceKind::kControlDrop,
                 FELA_TOK("src=%d seq=%llu"), src,
                 static_cast<unsigned long long>(seq));
      return;
    }
    // A partition cut is reachability, not death: both endpoints live,
    // but nothing crosses the cut until the partition heals.
    if (faults_->Partitioned(now, src, dst)) {
      ++control_dropped_count_;
      ++control_partition_dropped_count_;
      FELA_TRACE(fault_trace_, now, dst, TraceKind::kPartitionDrop,
                 FELA_TOK("src=%d seq=%llu"), src,
                 static_cast<unsigned long long>(seq));
      return;
    }
    if (faults_->DuplicateControl(seq)) {
      duplicated = true;
      ++control_duplicated_count_;
      FELA_TRACE(fault_trace_, now, dst, TraceKind::kControlDup,
                 FELA_TOK("src=%d seq=%llu"), src,
                 static_cast<unsigned long long>(seq));
    }
    delay_factor = std::max(faults_->ControlDelayFactor(now, src),
                            faults_->ControlDelayFactor(now, dst));
  }
  const Topology& topo = cal_.topology;
  const bool cross_rack =
      topo.hierarchical() && topo.RackOf(src) != topo.RackOf(dst);
  const double latency =
      (cal_.message_latency_sec +
       (cross_rack ? 2.0 * topo.rack_hop_latency_sec : 0.0)) *
      delay_factor;
  // One-way path delay: zero on loopback (co-located roles, e.g. the TS
  // talking to the worker on its own node, short-circuit the NIC),
  // latency + wire time on a remote path.
  double path_delay = 0.0;
  if (src != dst) {
    const double wire =
        cal_.control_message_bytes / cal_.nic_bandwidth_bytes_per_sec;
    path_delay = latency + wire;
  }
  if (duplicated) {
    // A retransmitted duplicate leaves one sender timeout (modelled as
    // one message latency) after the original and traverses the same
    // path — on loopback too: retransmission implies a timeout at the
    // sender, not a second instantaneous local delivery. The original is
    // scheduled first so that when both land at the same timestamp (a
    // zero-latency calibration) FIFO event order still delivers the
    // original before its copy.
    sim_->Schedule(path_delay, done);
    sim_->Schedule(latency + path_delay, std::move(done));
    return;
  }
  sim_->Schedule(path_delay, std::move(done));
}

void Fabric::ResetStats() {
  std::fill(bytes_sent_.begin(), bytes_sent_.end(), 0.0);
  std::fill(bytes_received_.begin(), bytes_received_.end(), 0.0);
  std::fill(out_busy_.begin(), out_busy_.end(), 0.0);
  std::fill(in_busy_.begin(), in_busy_.end(), 0.0);
  total_data_bytes_ = 0.0;
  data_transfer_count_ = 0;
  cross_rack_transfer_count_ = 0;
  cross_rack_bytes_ = 0.0;
  control_message_count_ = 0;
  control_dropped_count_ = 0;
  control_duplicated_count_ = 0;
  control_partition_dropped_count_ = 0;
  control_seq_ = 0;
}

}  // namespace fela::sim
