#ifndef FELA_CORE_FELA_ENGINE_H_
#define FELA_CORE_FELA_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/fela_config.h"
#include "core/token_server.h"
#include "core/worker.h"
#include "model/cost_model.h"
#include "model/model.h"
#include "model/partition.h"
#include "runtime/cluster.h"
#include "runtime/engine.h"

namespace fela::core {

/// The Fela engine (§III): a Token Server co-located with node 0 plus one
/// FelaWorker per node, running BSP iterations of token-scheduled hybrid-
/// parallel training. Per-sub-model parameter synchronization (ring
/// all-reduce; subset-limited for CTD levels) overlaps with the remaining
/// training of the iteration; the iteration ends when every token is
/// trained and every sub-model synchronized.
///
/// Under an active FaultSchedule the engine degrades gracefully (elastic
/// scale-in/out): a crashed worker is excluded, its in-flight token is
/// reclaimed by the TS lease path and re-granted (helpers steal the rest
/// of its STB), parameter syncs shrink to the admitted workers, and a
/// recovered worker is re-admitted at the next iteration boundary — or
/// immediately if it is the only survivor.
class FelaEngine : public runtime::Engine {
 public:
  /// Partitions the model with the paper's bin partitioner (§IV-A).
  FelaEngine(runtime::Cluster* cluster, const model::Model& model,
             const FelaConfig& config, double total_batch);

  /// Uses an explicit, user-defined partition (§III-B).
  FelaEngine(runtime::Cluster* cluster, const model::Model& model,
             std::vector<model::SubModel> sub_models, const FelaConfig& config,
             double total_batch);

  std::string name() const override { return "Fela"; }
  runtime::RunStats Run(int iterations) override;

  const FelaPlan& plan() const { return plan_; }
  const FelaConfig& config() const { return config_; }
  const std::vector<model::SubModel>& sub_models() const {
    return sub_models_;
  }
  const TokenServer::Stats& ts_stats() const { return ts_->stats(); }
  /// Live token server, for post-run invariant probes (the oracles audit
  /// its ledger through ExperimentSpec::post_run_probe).
  const TokenServer& token_server() const { return *ts_; }
  const FelaWorker& worker(int i) const {
    return *workers_[static_cast<size_t>(i)];
  }
  bool admitted(int i) const { return admitted_[static_cast<size_t>(i)]; }

 private:
  void StartIteration(int iteration);
  void DeliverGrant(sim::NodeId worker, const Grant& grant);
  void OnLevelComplete(int level);
  void OnSyncDone(int level);
  void OnAllLevelsComplete();
  void MaybeFinishIteration();
  void OnWorkerCrash(int worker);
  void OnWorkerRecover(int worker);
  void ReAdmit(int worker);
  bool faults_active() const { return cluster_->faults().Active(); }

  runtime::Cluster* cluster_;
  model::Model model_;
  std::vector<model::SubModel> sub_models_;
  FelaConfig config_;
  model::LayerCostModel cost_;
  FelaPlan plan_;

  std::unique_ptr<TokenServer> ts_;
  std::vector<std::unique_ptr<FelaWorker>> workers_;
  std::unique_ptr<sim::FaultMonitor> monitor_;  // only under active faults
  /// admitted_[w]: w participates in scheduling and syncs. Cleared on
  /// crash; set again when a recovered worker is re-admitted.
  std::vector<bool> admitted_;
  /// Recovery time of workers waiting for re-admission, or -1.
  std::vector<sim::SimTime> recover_pending_;

  // TS placement: co-located with worker 0 (§III-A).
  static constexpr sim::NodeId kTsNode = 0;

  int target_iterations_ = 0;
  int current_iteration_ = 0;
  sim::SimTime iteration_start_ = 0.0;
  int syncs_done_ = 0;
  bool tokens_done_ = false;
  bool run_complete_ = false;
  runtime::RunStats stats_;

  /// Framing span for the running iteration on the token-server track.
  std::optional<obs::ScopedSpan> iter_span_;
  /// Open kCrashed span per worker while it is excluded (crash -> the
  /// re-admission boundary, or run end if it never comes back).
  std::vector<std::optional<obs::ScopedSpan>> crash_spans_;
};

}  // namespace fela::core

#endif  // FELA_CORE_FELA_ENGINE_H_
