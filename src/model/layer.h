#ifndef FELA_MODEL_LAYER_H_
#define FELA_MODEL_LAYER_H_

#include <string>

namespace fela::model {

/// Kinds of network layers the cost model distinguishes. Inception units
/// are kept as single aggregate layers (the paper partitions GoogLeNet at
/// module granularity).
enum class LayerKind { kConv, kFc, kPool, kInception };

const char* LayerKindName(LayerKind kind);

/// One weighted (or pooling) layer of a sequential model. Dimensions use
/// the paper's (C_in, C_out, H, W) convention where H and W describe the
/// *output* feature map. FC layers use H = W = 1.
///
/// FLOPs / parameter counts are derived from the shape; `flops_override`
/// and `params_override` (when > 0) replace the derivation for aggregate
/// layers such as inception modules.
struct Layer {
  std::string name;
  LayerKind kind = LayerKind::kConv;
  int c_in = 0;
  int c_out = 0;
  int h = 1;
  int w = 1;
  int kernel = 3;

  /// Profiled threshold batch size: the smallest batch that saturates the
  /// GPU for this layer (Fig. 1 / Fig. 5). Zero means "unprofiled"; the
  /// ProfileRepository / heuristic then supplies a value.
  double threshold_batch = 0.0;

  double flops_override = 0.0;
  double params_override = 0.0;
  double activation_override = 0.0;

  /// Trainable parameter count (weights + biases).
  double Params() const;

  /// Forward-pass FLOPs for a single sample (multiply-add counted as 2).
  double FlopsPerSample() const;

  /// Output activation element count per sample (c_out * h * w).
  double OutputActivationElems() const;

  /// True for layers whose synchronization dominates their compute
  /// (FC layers; §III-F: ">90% of sync cost, <10% of compute").
  bool IsCommunicationIntensive() const { return kind == LayerKind::kFc; }

  /// Shape signature used as the ProfileRepository key, e.g.
  /// "conv(64,64,224,224,k3)" or "fc(4096,4096)". Layers with identical
  /// signatures share one profiled threshold (§IV-A: layers come in a
  /// limited number of shapes).
  std::string ShapeKey() const;

  /// Convenience factories.
  static Layer Conv(std::string name, int c_in, int c_out, int h, int w,
                    int kernel = 3);
  static Layer Fc(std::string name, int c_in, int c_out);
  static Layer Pool(std::string name, int c_in, int h, int w);
  static Layer Inception(std::string name, int c_in, int c_out, int h, int w,
                         double flops, double params);
};

}  // namespace fela::model

#endif  // FELA_MODEL_LAYER_H_
