// End-to-end checks for the observability layer: a seeded observed run
// exports a loadable Chrome trace with one track per worker, attribution
// fractions sum to exactly 1, and unobserved runs carry no artifacts.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/tokenize.h"
#include "model/zoo.h"
#include "runtime/attribution.h"
#include "runtime/bench_json.h"
#include "runtime/experiment.h"
#include "runtime/report.h"
#include "sim/faults.h"
#include "sim/trace_io.h"
#include "suite/suite.h"

namespace fela::runtime {
namespace {

ExperimentSpec ObservedSpec() {
  ExperimentSpec spec;
  spec.total_batch = 256;
  spec.iterations = 4;
  spec.observe = true;
  return spec;
}

ExperimentResult ObservedFelaRun() {
  const model::Model m = model::zoo::GoogLeNet();
  core::FelaConfig cfg = core::FelaConfig::Defaults(3, 8);
  return RunExperiment(ObservedSpec(), suite::FelaFactory(m, cfg),
                       NoStragglerFactory());
}

void ExpectFractionsSumToOne(const obs::AttributionReport& report,
                             int expected_workers, int expected_iterations) {
  ASSERT_EQ(report.num_workers, expected_workers);
  ASSERT_EQ(static_cast<int>(report.workers.size()), expected_workers);
  for (const auto& w : report.workers) {
    double run_sum = 0.0;
    for (int p = 0; p < obs::kNumPhases; ++p) {
      const double f = w.run.fraction(static_cast<obs::Phase>(p));
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0 + 1e-9);
      run_sum += f;
    }
    EXPECT_NEAR(run_sum, 1.0, 1e-9) << "worker " << w.worker;
    ASSERT_EQ(static_cast<int>(w.iterations.size()), expected_iterations);
    for (size_t it = 0; it < w.iterations.size(); ++it) {
      double it_sum = 0.0;
      for (int p = 0; p < obs::kNumPhases; ++p) {
        it_sum += w.iterations[it].fraction(static_cast<obs::Phase>(p));
      }
      EXPECT_NEAR(it_sum, 1.0, 1e-9)
          << "worker " << w.worker << " iteration " << it;
    }
  }
}

TEST(ObservabilityTest, UnobservedRunCarriesNoArtifacts) {
  ExperimentSpec spec = ObservedSpec();
  spec.observe = false;
  const auto result = RunExperiment(
      spec, suite::DpFactory(model::zoo::GoogLeNet()), NoStragglerFactory());
  EXPECT_FALSE(result.observed);
  EXPECT_TRUE(result.chrome_trace.empty());
  EXPECT_TRUE(result.attribution.workers.empty());
  EXPECT_EQ(result.metrics.size(), 0u);
}

TEST(ObservabilityTest, FelaAttributionFractionsSumToOne) {
  const auto result = ObservedFelaRun();
  ASSERT_TRUE(result.observed);
  ExpectFractionsSumToOne(result.attribution, 8, 4);
  EXPECT_EQ(result.attribution.engine, "Fela");
  // Every iteration names a bottleneck from the critical-path walk.
  ASSERT_EQ(result.attribution.critical.size(), 4u);
  for (const auto& cp : result.attribution.critical) {
    EXPECT_GE(cp.last_finisher, 0);
    EXPECT_GT(cp.path.total, 0.0);
  }
}

TEST(ObservabilityTest, DpAttributionFractionsSumToOne) {
  const auto result =
      RunExperiment(ObservedSpec(), suite::DpFactory(model::zoo::Vgg19()),
                    NoStragglerFactory());
  ASSERT_TRUE(result.observed);
  ExpectFractionsSumToOne(result.attribution, 8, 4);
  // DP computes on every worker each iteration.
  for (const auto& w : result.attribution.workers) {
    EXPECT_GT(w.run.fraction(obs::Phase::kCompute), 0.0);
  }
}

TEST(ObservabilityTest, ChromeTraceIsValidJsonWithTrackPerWorker) {
  const auto result = ObservedFelaRun();
  ASSERT_FALSE(result.chrome_trace.empty());

  common::Json doc;
  std::string error;
  ASSERT_TRUE(common::Json::Parse(result.chrome_trace, &doc, &error)) << error;
  ASSERT_TRUE(doc.is_object());

  const common::Json* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // One thread_name metadata entry per used track; the engine emits
  // iteration framing on the driver track, so all 8 workers + driver
  // should appear.
  int metadata = 0;
  int complete = 0;
  for (const auto& e : events->items()) {
    const common::Json* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string_value() == "M") ++metadata;
    if (ph->string_value() == "X") ++complete;
  }
  EXPECT_GE(metadata, 9);  // 8 worker tracks + token-server/driver track
  EXPECT_GT(complete, 0);

  const common::Json* other = doc.Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_DOUBLE_EQ(other->Find("num_workers")->number_value(), 8.0);
}

TEST(ObservabilityTest, RunMetricsCarryTokenServerCounters) {
  const auto result = ObservedFelaRun();
  const auto* grants = result.metrics.FindCounter("ts_grants", "engine=Fela");
  ASSERT_NE(grants, nullptr);
  EXPECT_GT(grants->value(), 0u);
  const auto* iters =
      result.metrics.FindCounter("iterations", "engine=Fela");
  ASSERT_NE(iters, nullptr);
  EXPECT_EQ(iters->value(), 4u);
}

TEST(ObservabilityTest, AttributionJsonRoundTrips) {
  const auto result = ObservedFelaRun();
  const common::Json doc = obs::AttributionToJson(result.attribution);
  common::Json parsed;
  std::string error;
  ASSERT_TRUE(common::Json::Parse(doc.Dump(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.Find("engine")->string_value(), "Fela");
  ASSERT_NE(parsed.Find("workers"), nullptr);
  EXPECT_EQ(parsed.Find("workers")->size(), 8u);
}

TEST(ObservabilityTest, BenchReportValidatesSchema) {
  obs::BenchReport report("unit");
  report.Add(ObservedFelaRun(), /*x=*/1.0);
  std::string error;
  EXPECT_TRUE(obs::ValidateBenchReportJson(report.ToJson(), &error)) << error;

  // A broken document is rejected.
  common::Json bad = common::Json::Object();
  bad.Set("bench", "unit");
  EXPECT_FALSE(obs::ValidateBenchReportJson(bad, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ObservabilityTest, BinaryTraceRoundTripsByteIdenticalUnderFaults) {
  // A composite-fault observed run — crashes plus a lossy control plane
  // exercise the fault-path trace kinds — must produce a binary
  // transcript that an *offline* registry (built only from the CSV form,
  // exactly what fela-detok loads) re-renders byte-identically to the
  // in-process Chrome trace.
  const FaultFactory faults = [](int n) {
    std::vector<std::unique_ptr<sim::FaultSchedule>> parts;
    parts.push_back(std::make_unique<sim::RandomCrashes>(
        n, /*crash_prob=*/0.2, /*window_sec=*/2.0, /*down_sec=*/0.5,
        /*seed=*/7));
    parts.push_back(std::make_unique<sim::LossyControlPlane>(
        /*drop_prob=*/0.05, /*dup_prob=*/0.05, /*seed=*/11));
    return std::make_unique<sim::CompositeFaults>(std::move(parts));
  };
  const model::Model m = model::zoo::GoogLeNet();
  core::FelaConfig cfg = core::FelaConfig::Defaults(3, 8);
  const auto result = RunExperiment(ObservedSpec(), suite::FelaFactory(m, cfg),
                                    NoStragglerFactory(), faults);
  ASSERT_TRUE(result.observed);
  ASSERT_FALSE(result.binary_trace.empty());

  obs::BinaryTraceData data;
  std::string error;
  ASSERT_TRUE(obs::ParseBinaryTrace(result.binary_trace, &data, &error))
      << error;
  EXPECT_FALSE(data.truncated);
  EXPECT_TRUE(data.has_trace);
  EXPECT_FALSE(data.events.empty());

  common::TokenRegistry offline;
  ASSERT_TRUE(common::LoadTokenDbCsv(
      common::TokenDbCsv(common::TokenRegistry::Global()), &offline, &error))
      << error;
  EXPECT_EQ(obs::RenderChromeTrace(data, &offline), result.chrome_trace);
}

TEST(ObservabilityTest, AttributionTableRendersEveryWorker) {
  const auto result = ObservedFelaRun();
  const std::string table = RenderAttributionTable(result.attribution);
  for (int w = 0; w < 8; ++w) {
    EXPECT_NE(table.find("w" + std::to_string(w)), std::string::npos);
  }
  EXPECT_NE(table.find("compute"), std::string::npos);
}

}  // namespace
}  // namespace fela::runtime
