// Invariant oracles: each one must stay silent on healthy runs and must
// fire on synthetically broken inputs — an oracle that can't detect the
// violation it exists for is worse than no oracle at all.

#include "testing/oracle.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "runtime/cluster.h"
#include "runtime/experiment.h"
#include "sim/calibration.h"
#include "sim/span.h"
#include "testing/fuzzer.h"
#include "testing/spec_gen.h"

namespace fela::testing {
namespace {

runtime::ExperimentResult HealthyResult(const FuzzSpec& spec) {
  runtime::ExperimentResult r;
  for (int i = 0; i < spec.iterations; ++i) {
    runtime::IterationStats it;
    it.start = static_cast<double>(i);
    it.end = static_cast<double>(i) + 0.5;
    r.stats.iterations.push_back(it);
  }
  r.stats.total_time = static_cast<double>(spec.iterations);
  r.average_throughput = 10.0;
  r.gpu_utilization = 0.5;
  return r;
}

TEST(StatsSanityOracleTest, SilentOnHealthyResult) {
  const FuzzSpec spec = GenerateSpec(1);
  StatsSanityOracle oracle;
  oracle.Check(spec, HealthyResult(spec));
  EXPECT_TRUE(oracle.violations().empty());
}

TEST(StatsSanityOracleTest, CatchesMissingIterations) {
  const FuzzSpec spec = GenerateSpec(1);
  runtime::ExperimentResult r = HealthyResult(spec);
  r.stats.iterations.pop_back();
  StatsSanityOracle oracle;
  oracle.Check(spec, r);
  ASSERT_EQ(oracle.violations().size(), 1u);
  EXPECT_NE(oracle.violations()[0].detail.find("iterations"),
            std::string::npos);
}

TEST(StatsSanityOracleTest, CatchesStalledRunWithThroughput) {
  const FuzzSpec spec = GenerateSpec(1);
  runtime::ExperimentResult r = HealthyResult(spec);
  r.stats.stalled = true;
  StatsSanityOracle oracle;
  oracle.Check(spec, r);
  ASSERT_EQ(oracle.violations().size(), 1u);
  EXPECT_NE(oracle.violations()[0].detail.find("stalled"), std::string::npos);
}

TEST(StatsSanityOracleTest, CatchesDisorderedIterationWindows) {
  const FuzzSpec spec = GenerateSpec(1);
  runtime::ExperimentResult r = HealthyResult(spec);
  r.stats.iterations[0].end = r.stats.iterations[0].start - 1.0;  // inverted
  r.stats.iterations[1].start = -5.0;  // before iteration 0 ended
  StatsSanityOracle oracle;
  oracle.Check(spec, r);
  EXPECT_EQ(oracle.violations().size(), 2u);
}

TEST(StatsSanityOracleTest, CatchesBadScalars) {
  const FuzzSpec spec = GenerateSpec(1);
  runtime::ExperimentResult r = HealthyResult(spec);
  r.gpu_utilization = 1.5;
  r.stats.faults.regrants = 3;  // regrants with nothing reclaimed
  r.stats.total_gpu_busy = -1.0;
  StatsSanityOracle oracle;
  oracle.Check(spec, r);
  EXPECT_EQ(oracle.violations().size(), 3u);
}

TEST(AttributionOracleTest, CatchesFractionsNotSummingToOne) {
  const FuzzSpec spec = GenerateSpec(1);
  runtime::ExperimentResult r = HealthyResult(spec);
  r.observed = true;
  obs::WorkerAttribution w;
  w.worker = 0;
  w.run.total = 1.0;
  w.run.seconds[static_cast<size_t>(obs::Phase::kCompute)] = 0.5;  // sums 0.5
  r.attribution.workers.push_back(w);
  AttributionOracle oracle;
  oracle.Check(spec, r);
  // The broken worker breakdown is also the cluster merge, so both fire.
  EXPECT_EQ(oracle.violations().size(), 2u);
}

TEST(AttributionOracleTest, IgnoresEmptyBreakdownsAndUnobservedRuns) {
  const FuzzSpec spec = GenerateSpec(1);
  runtime::ExperimentResult r = HealthyResult(spec);
  AttributionOracle oracle;
  oracle.Check(spec, r);  // not observed: vacuous
  r.observed = true;
  obs::WorkerAttribution w;  // total == 0: no attributed time, no claim
  r.attribution.workers.push_back(w);
  oracle.Check(spec, r);
  EXPECT_TRUE(oracle.violations().empty());
}

TEST(TokenConservationOracleTest, VacuousForBaselineEngines) {
  FuzzSpec spec = GenerateSpec(1);
  spec.engine = EngineKind::kDp;
  runtime::Cluster cluster(spec.num_workers, sim::Calibration::Default(),
                           nullptr);
  const std::unique_ptr<runtime::Engine> engine =
      MakeEngineFactory(spec)(cluster, spec.total_batch);
  TokenConservationOracle oracle;
  oracle.Probe(spec, *engine, cluster);  // never ran: nothing to audit
  EXPECT_TRUE(oracle.violations().empty());
}

TEST(OracleBatteryTest, SilentOnHealthyRunsOfEveryEngine) {
  // One full probed run per engine kind; the battery must stay quiet.
  for (int e = 0; e < kNumEngineKinds; ++e) {
    FuzzSpec spec = GenerateSpec(3);  // clean: no stragglers, no faults
    spec.straggler = StragglerKind::kNone;
    spec.fault = FaultKind::kNone;
    spec.engine = static_cast<EngineKind>(e);
    spec.observe = true;  // exercise the attribution oracle too
    const FuzzCaseResult r = RunFuzzCase(spec);
    EXPECT_TRUE(r.ok()) << EngineKindName(spec.engine) << ": "
                        << (r.violations.empty()
                                ? ""
                                : r.violations.front().detail);
  }
}

}  // namespace
}  // namespace fela::testing
