#include "sim/chrome_trace.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/string_util.h"

namespace fela::obs {

namespace {

constexpr double kSecToMicro = 1e6;

std::string TrackName(int track, int num_workers) {
  if (track >= num_workers) return "token-server";
  return common::StrFormat("worker %d", track);
}

common::Json ThreadNameMeta(int tid, const std::string& name) {
  common::Json e = common::Json::Object();
  e.Set("name", "thread_name");
  e.Set("ph", "M");
  e.Set("pid", 0);
  e.Set("tid", tid);
  common::Json args = common::Json::Object();
  args.Set("name", name);
  e.Set("args", std::move(args));
  return e;
}

}  // namespace

common::Json ChromeTraceJsonData(const std::vector<Span>& spans,
                                 uint64_t spans_dropped, bool has_trace,
                                 const std::vector<sim::TraceEvent>& events,
                                 uint64_t events_dropped, int num_workers,
                                 const common::TokenRegistry* registry) {
  common::Json out_events = common::Json::Array();

  // One metadata row per track that actually appears, so empty clusters
  // don't fabricate threads but every used tid is named.
  std::set<int> tracks;
  for (int w = 0; w < num_workers; ++w) tracks.insert(w);
  for (const Span& s : spans) tracks.insert(s.track);
  for (const int t : tracks) {
    out_events.Append(ThreadNameMeta(t, TrackName(t, num_workers)));
  }

  for (const Span& s : spans) {
    common::Json e = common::Json::Object();
    e.Set("name", PhaseName(s.phase));
    e.Set("cat", "span");
    e.Set("ph", "X");
    e.Set("ts", s.begin * kSecToMicro);
    e.Set("dur", std::max(0.0, s.duration()) * kSecToMicro);
    e.Set("pid", 0);
    e.Set("tid", s.track);
    common::Json args = common::Json::Object();
    if (s.iteration >= 0) args.Set("iteration", s.iteration);
    if (!s.detail.empty()) {
      args.Set("detail", common::Detokenize(s.detail, registry));
    }
    e.Set("args", std::move(args));
    out_events.Append(std::move(e));
  }

  if (has_trace) {
    for (const sim::TraceEvent& t : events) {
      common::Json e = common::Json::Object();
      e.Set("name", sim::TraceKindName(t.kind));
      e.Set("cat", "event");
      e.Set("ph", "i");
      e.Set("ts", t.time * kSecToMicro);
      e.Set("pid", 0);
      e.Set("tid", t.node);
      e.Set("s", "t");  // thread-scoped instant marker
      common::Json args = common::Json::Object();
      if (!t.detail.empty()) args.Set("detail", t.detail);
      e.Set("args", std::move(args));
      out_events.Append(std::move(e));
    }
  }

  common::Json doc = common::Json::Object();
  doc.Set("displayTimeUnit", "ms");
  doc.Set("traceEvents", std::move(out_events));
  common::Json meta = common::Json::Object();
  meta.Set("num_workers", num_workers);
  meta.Set("spans_dropped", static_cast<double>(spans_dropped));
  if (has_trace) {
    meta.Set("trace_events_dropped", static_cast<double>(events_dropped));
  }
  doc.Set("otherData", std::move(meta));
  return doc;
}

common::Json ChromeTraceJson(const SpanSink& spans,
                             const sim::TraceRecorder* trace,
                             int num_workers) {
  return ChromeTraceJsonData(
      spans.spans(), spans.dropped(), trace != nullptr,
      trace != nullptr ? trace->events() : std::vector<sim::TraceEvent>{},
      trace != nullptr ? trace->dropped() : 0, num_workers);
}

std::string ChromeTraceString(const SpanSink& spans,
                              const sim::TraceRecorder* trace,
                              int num_workers) {
  return ChromeTraceJson(spans, trace, num_workers).Dump(1);
}

}  // namespace fela::obs
