// Table II: qualitative comparison of representative DML solutions. The
// Fela row's checkmarks are *verified empirically* against this library:
// each claimed property maps to a measurable invariant of our engines.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/zoo.h"
#include "runtime/experiment.h"

int main(int argc, char** argv) {
  using namespace fela;
  const bench::BenchOptions opts = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader("Table II: Comparison of Representative DML Solutions");

  common::TablePrinter table({"Solution", "Parallel Mode", "Flexible Par.",
                              "Straggler Mit.", "Comm. Eff.", "Work Cons.",
                              "Reproducibility"});
  table.AddRow({"LazyTable", "Model-Parallel", "x", "Y", "Y", "Y", "x"});
  table.AddRow({"FlexRR", "Data-Parallel", "x", "Y", "x", "Y", "x"});
  table.AddRow({"FlexPS", "Data-Parallel", "Y", "x", "x", "Y", "Y"});
  table.AddRow({"PipeDream", "Model-Parallel", "x", "x", "Y", "x", "x"});
  table.AddRow({"ElasticPipe", "Model-Parallel", "x", "Y", "Y", "x", "Y"});
  table.AddRow({"Stanza", "Hybrid-Parallel", "x", "Y", "Y", "x", "Y"});
  table.AddRow({"Fela", "Hybrid-Parallel", "Y", "Y", "Y", "Y", "Y"});
  table.Print(std::cout);

  // Empirical spot-checks of the Fela row on the simulated testbed.
  std::printf("\nEmpirical verification of the Fela row:\n");
  const model::Model m = model::zoo::Vgg19();
  runtime::ExperimentSpec spec;
  spec.total_batch = 128;  // a point where the tuner engages CTD
  spec.iterations = 20;

  // The spot-check experiments are independent chains; stage them on
  // the sweep runner (the Fela chain reuses its tuned config) and print
  // serially afterwards, so output bytes match any --jobs value.
  auto stragglers = [](int n) {
    return std::make_unique<sim::RoundRobinStragglers>(n, 4.0);
  };
  core::FelaConfig cfg;
  runtime::ExperimentResult fela, dp, mp;
  runtime::PidResult pid_fela, pid_dp;
  runtime::SweepRunner runner = opts.Runner();
  runner.Add([&] {
    cfg = suite::TunedFelaConfig(m, spec.total_batch, 8);
    fela = RunExperiment(spec, suite::FelaFactory(m, cfg),
                         runtime::NoStragglerFactory());
    pid_fela = RunPidExperiment(spec, suite::FelaFactory(m, cfg), stragglers);
  });
  runner.Add([&] {
    dp = RunExperiment(spec, suite::DpFactory(m),
                       runtime::NoStragglerFactory());
    pid_dp = RunPidExperiment(spec, suite::DpFactory(m), stragglers);
  });
  runner.Add([&] {
    mp = RunExperiment(spec, suite::MpFactory(m),
                       runtime::NoStragglerFactory());
  });
  runner.RunAll();
  std::printf(
      "  flexible parallelism : tuned per-sub-model weights = {%d,%d,%d}\n",
      cfg.weights[0], cfg.weights[1], cfg.weights[2]);
  std::printf(
      "  straggler mitigation : PID %.2fs (Fela) vs %.2fs (DP barrier)\n",
      pid_fela.per_iteration_delay, pid_dp.per_iteration_delay);
  std::printf(
      "  comm. efficiency     : %.2f GB/iter (Fela) vs %.2f GB/iter (DP)\n",
      fela.stats.total_data_bytes / spec.iterations / 1e9,
      dp.stats.total_data_bytes / spec.iterations / 1e9);
  std::printf(
      "  work conservation    : GPU util %.1f%% (Fela) vs %.1f%% (MP)\n",
      fela.gpu_utilization * 100, mp.gpu_utilization * 100);
  std::printf(
      "  reproducibility      : BSP semantics, bit-identical reruns "
      "(tested)\n");
  // The reproducibility row, verified live rather than asserted: the
  // tuned Fela configuration replays byte-identically.
  runtime::ExperimentSpec gate = spec;
  gate.iterations = 4;
  return bench::VerifyDeterminismGate(opts, "table2", gate,
                                      suite::FelaFactory(m, cfg),
                                      runtime::NoStragglerFactory());
}
