file(REMOVE_RECURSE
  "CMakeFiles/fela_suite.dir/suite.cc.o"
  "CMakeFiles/fela_suite.dir/suite.cc.o.d"
  "libfela_suite.a"
  "libfela_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fela_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
