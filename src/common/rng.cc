#include "common/rng.h"

#include <limits>

namespace fela::common {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

Rng Rng::Fork() { return Rng(Next()); }

uint64_t MixSeed(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t x = a * 0x9e3779b97f4a7c15ULL + b * 0xbf58476d1ce4e5b9ULL +
               c * 0x94d049bb133111ebULL + 0x2545f4914f6cdd1dULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double JitteredBackoffSec(double base_sec, double multiplier, double max_sec,
                          int attempt, uint64_t seed, uint64_t stream) {
  double delay = base_sec;
  for (int i = 0; i < attempt; ++i) {
    delay *= multiplier;
    if (max_sec > 0.0 && delay >= max_sec) break;  // cap reached; stop early
  }
  if (max_sec > 0.0 && delay > max_sec) delay = max_sec;
  if (seed != 0) {
    // Jitter stretches, never shrinks: a jittered retry must not fire
    // before the un-jittered schedule would, or arming the timers alone
    // (an inert fault schedule) could perturb a run that never needed
    // the retry. Decorrelation only needs spread, not direction.
    Rng rng(MixSeed(seed, stream, static_cast<uint64_t>(attempt)));
    delay *= 1.0 + 0.5 * rng.UniformDouble();
  }
  return delay;
}

}  // namespace fela::common
