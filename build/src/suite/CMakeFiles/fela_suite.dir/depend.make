# Empty dependencies file for fela_suite.
# This may be replaced when dependencies are built.
