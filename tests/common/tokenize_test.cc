// Tokenized-tracing unit tests: the compile-time FNV-1a hash, collision
// detection on known colliding strings, byte-identical re-rendering of
// packed args, and the tokens.csv round trip fela-detok depends on.

#include "common/tokenize.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/string_util.h"

namespace fela::common {
namespace {

// The hash must be computable at compile time — that is the whole point
// of FELA_TOK.
static_assert(TokenHash32("") == 2166136261u, "FNV-1a basis");

/// Packs `args` exactly as a FELA_TOK call site would and re-renders.
template <typename... Args>
std::string Detok(const char* fmt, Args... args) {
  const TokenizedDetail detail(TokenizedFmt{TokenHash32(fmt), fmt}, args...);
  return DetokFormat(fmt, detail.args);
}

TEST(TokenHashTest, MatchesFnv1aReferenceValues) {
  EXPECT_EQ(TokenHash32(""), 2166136261u);
  EXPECT_EQ(TokenHash32("a"), 0xe40c292cu);
  EXPECT_EQ(TokenHash32("foobar"), 0xbf9cf968u);
  EXPECT_NE(TokenHash32("it=%d"), TokenHash32("it=%u"));
}

TEST(TokenHashTest, KnownCollidingPairsCollide) {
  // Famous 32-bit FNV-1a collisions — the fixtures for collision
  // handling below and in the fela-tokendb scanner tests.
  EXPECT_EQ(TokenHash32("costarring"), TokenHash32("liquid"));
  EXPECT_EQ(TokenHash32("declinate"), TokenHash32("macallums"));
  EXPECT_NE(TokenHash32("costarring"), TokenHash32("declinate"));
}

TEST(TokenRegistryTest, RegisterDetectsCollisions) {
  const uint32_t token = TokenHash32("costarring");
  ASSERT_EQ(token, TokenHash32("liquid"));
  TokenRegistry registry;
  std::string error;
  EXPECT_TRUE(registry.Register(token, "costarring", &error));
  EXPECT_TRUE(registry.Register(token, "costarring", &error));  // idempotent
  EXPECT_FALSE(registry.Register(token, "liquid", &error));
  EXPECT_NE(error.find("collision"), std::string::npos) << error;
  EXPECT_NE(error.find("costarring"), std::string::npos) << error;
  EXPECT_NE(error.find("liquid"), std::string::npos) << error;
  // The first registration survives the rejected one.
  ASSERT_NE(registry.Find(token), nullptr);
  EXPECT_EQ(*registry.Find(token), "costarring");
}

TEST(TokenMacroTest, FelaTokYieldsHashAndRegistersGlobally) {
  const TokenizedFmt fmt = FELA_TOK("tokenize_test unique %d");
  EXPECT_EQ(fmt.token, TokenHash32("tokenize_test unique %d"));
  const std::string* found = TokenRegistry::Global().Find(fmt.token);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, "tokenize_test unique %d");
}

TEST(DetokFormatTest, ByteIdenticalToPrintfAcrossConversions) {
  EXPECT_EQ(Detok("it=%d", -42), StrFormat("it=%d", -42));
  EXPECT_EQ(Detok("w%-3d|", 7), StrFormat("w%-3d|", 7));
  EXPECT_EQ(Detok("|%5d|", 42), StrFormat("|%5d|", 42));
  EXPECT_EQ(Detok("%u", 4000000000u), StrFormat("%u", 4000000000u));
  EXPECT_EQ(Detok("n=%zu", static_cast<size_t>(123456789)),
            StrFormat("n=%zu", static_cast<size_t>(123456789)));
  EXPECT_EQ(Detok("%llu", ~0ull), StrFormat("%llu", ~0ull));
  EXPECT_EQ(Detok("%x/%X", 0xdeadbeefu, 0xcafeu),
            StrFormat("%x/%X", 0xdeadbeefu, 0xcafeu));
  EXPECT_EQ(Detok("%08x", 0xbeefu), StrFormat("%08x", 0xbeefu));
  EXPECT_EQ(Detok("b=%g", 0.25), StrFormat("b=%g", 0.25));
  EXPECT_EQ(Detok("%.4f", 2.718281828), StrFormat("%.4f", 2.718281828));
  EXPECT_EQ(Detok("%e", 1234.5678), StrFormat("%e", 1234.5678));
  EXPECT_EQ(Detok("SM-%d %.1fMB among %zu", 3, 12.5, static_cast<size_t>(4)),
            StrFormat("SM-%d %.1fMB among %zu", 3, 12.5,
                      static_cast<size_t>(4)));
  EXPECT_EQ(Detok("%c%c", 'o', 'k'), StrFormat("%c%c", 'o', 'k'));
  EXPECT_EQ(Detok("100%% done in %d", 3), StrFormat("100%% done in %d", 3));
}

TEST(DetokFormatTest, IntegerWidthModifiersAreTransparent) {
  // %d vs %lld vs %zd: the packed value is always 64-bit, so dropping
  // the call site's length modifier renders the same digits.
  EXPECT_EQ(Detok("Token_%lld b=%g", -9000000000ll, 1.5),
            StrFormat("Token_%lld b=%g", -9000000000ll, 1.5));
  EXPECT_EQ(Detok("%hd", static_cast<short>(-7)),
            StrFormat("%hd", static_cast<short>(-7)));
}

TEST(DetokFormatTest, UnpackableSpecsSurfaceVerbatim) {
  // %s never packs (fela-tokendb rejects it); rendering keeps the spec
  // text instead of inventing bytes. Same for excess specs.
  EXPECT_EQ(Detok("%s unsupported"), "%s unsupported");
  EXPECT_EQ(Detok("%d then %d", 7), "7 then %d");
  EXPECT_EQ(Detok("dangling %"), "dangling %");
}

TEST(DetokenizeTest, EmptyAndUnknownTokensRenderHonestly) {
  TokenRegistry registry;  // deliberately empty
  EXPECT_EQ(Detokenize(TokenizedDetail{}, &registry), "");
  TokenizedDetail unknown(TokenizedFmt{0xffu, "?"});
  EXPECT_EQ(Detokenize(unknown, &registry), "<token 000000ff?>");
}

TEST(TokenDbCsvTest, RoundTripsIncludingQuotedQuotes) {
  TokenRegistry registry;
  ASSERT_TRUE(registry.Register(TokenHash32("it=%d"), "it=%d"));
  ASSERT_TRUE(registry.Register(TokenHash32("say \"hi\" %d times"),
                                "say \"hi\" %d times"));
  ASSERT_TRUE(registry.Register(TokenHash32("plain"), "plain"));
  const std::string csv = TokenDbCsv(registry);
  TokenRegistry loaded;
  std::string error;
  ASSERT_TRUE(LoadTokenDbCsv(csv, &loaded, &error)) << error;
  EXPECT_EQ(loaded.Entries(), registry.Entries());
}

TEST(TokenDbCsvTest, MalformedRowsAreRejectedWithLineNumbers) {
  TokenRegistry registry;
  std::string error;
  EXPECT_FALSE(LoadTokenDbCsv("token,fmt\nzz,\"x\"\n", &registry, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_FALSE(LoadTokenDbCsv("token,fmt\n12345678,unquoted\n", &registry,
                              &error));
  EXPECT_FALSE(LoadTokenDbCsv("token,fmt\n12345678,\"open\n", &registry,
                              &error));
}

TEST(TokArgsTest, TypeTagsTrackSignedness) {
  TokArgs args;
  args.Push(-1);
  args.Push(2u);
  args.Push(0.5);
  ASSERT_EQ(args.count, 3);
  EXPECT_EQ(args.type(0), TokArgType::kInt);
  EXPECT_EQ(args.type(1), TokArgType::kUint);
  EXPECT_EQ(args.type(2), TokArgType::kDouble);
  EXPECT_EQ(args.type(3), TokArgType::kNone);
}

}  // namespace
}  // namespace fela::common
