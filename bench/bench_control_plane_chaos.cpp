// Control-plane chaos sweep: throughput retention under partitions, gray
// failures, and Token Server loss, for Fela against the DP and PS-DP
// baselines. Each scenario's retention is its throughput divided by the
// same engine's clean-run throughput, so the comparison is on
// degradation, not workload-shaped absolutes.
//
// The headline contrast is `ts-failstop`: worker 0 — the initial Token
// Server host — dies and never returns. Fela fences the dead TS,
// promotes a standby from the last checkpoint, and finishes the job on
// the survivors; DP waits at the barrier forever (stalled, retention 0)
// and PS-DP aborts by design. `ts-crash` is the recovering variant, and
// `chaos` composes a TS crash with a partition window and a gray worker.
//
// Emits a machine-readable CSV (control_plane_chaos.csv) beside the
// table and, under --json, BENCH_control_plane_chaos.json.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/csv.h"
#include "common/string_util.h"
#include "model/zoo.h"
#include "sim/faults.h"

namespace {

using fela::sim::CrashEvent;
using fela::sim::FaultSchedule;
using fela::sim::GrayEvent;
using fela::sim::PartitionEvent;
using fela::sim::kNeverTime;

struct Scenario {
  std::string name;
  fela::runtime::FaultFactory faults;  // nullptr = clean baseline
};

std::unique_ptr<FaultSchedule> TsCrash(double crash, double recover) {
  return std::make_unique<fela::sim::ScriptedCrashes>(
      std::vector<CrashEvent>{{/*worker=*/0, crash, recover}});
}

std::unique_ptr<FaultSchedule> MidPartition(int n) {
  // [10s, 25s): the upper half of the cluster loses the lower half
  // (and with it whichever node hosts the coordinator).
  PartitionEvent ev;
  ev.start = 10.0;
  ev.end = 25.0;
  for (int w = 0; w < n / 2; ++w) ev.side_a.push_back(w);
  return std::make_unique<fela::sim::NetworkPartition>(
      std::vector<PartitionEvent>{ev});
}

std::unique_ptr<FaultSchedule> GrayWorker() {
  // Worker 3's control latency inflates 4x for 25 simulated seconds.
  return std::make_unique<fela::sim::GrayFailures>(
      std::vector<GrayEvent>{{/*worker=*/3, 5.0, 30.0, 4.0}});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fela;
  const bench::BenchOptions opts = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader("Control-Plane Chaos: Throughput Retention");

  const model::Model model = model::zoo::Vgg19();
  const double kBatch = 512.0;
  const int kWorkers = 8;

  runtime::ExperimentSpec spec;
  spec.total_batch = kBatch;
  spec.iterations = opts.iterations();
  spec.num_workers = kWorkers;
  spec.observe = false;

  const core::FelaConfig cfg =
      suite::TunedFelaConfig(model, kBatch, kWorkers, opts.smoke ? 1 : 5);

  std::vector<Scenario> scenarios;
  scenarios.push_back({"clean", nullptr});
  scenarios.push_back(
      {"gray", [](int) { return GrayWorker(); }});
  scenarios.push_back(
      {"partition", [](int n) { return MidPartition(n); }});
  scenarios.push_back(
      {"ts-crash", [](int) { return TsCrash(6.0, 40.0); }});
  scenarios.push_back(
      {"ts-failstop", [](int) { return TsCrash(6.0, kNeverTime); }});
  scenarios.push_back(
      {"chaos", [](int n) -> std::unique_ptr<FaultSchedule> {
         std::vector<std::unique_ptr<FaultSchedule>> parts;
         parts.push_back(TsCrash(6.0, 40.0));
         parts.push_back(MidPartition(n));
         parts.push_back(GrayWorker());
         return std::make_unique<sim::CompositeFaults>(std::move(parts));
       }});
  if (opts.smoke) {
    // Keep the clean baseline (retention needs it) plus the headline
    // TS scenarios.
    std::vector<Scenario> small;
    for (auto& s : scenarios) {
      if (s.name == "clean" || s.name == "ts-crash" ||
          s.name == "ts-failstop") {
        small.push_back(std::move(s));
      }
    }
    scenarios = std::move(small);
  }

  const std::vector<std::string> engines = {"DP", "PS-DP", "Fela"};
  const std::vector<runtime::EngineFactory> factories = {
      suite::DpFactory(model), suite::PsDpFactory(model),
      suite::FelaFactory(model, cfg)};

  // Stage every (scenario, engine) run on the sweep runner, then render
  // serially in sweep order — table, CSV, and JSON bytes match any
  // --jobs value.
  std::vector<runtime::SweepItem> items;
  for (const Scenario& sc : scenarios) {
    for (const runtime::EngineFactory& factory : factories) {
      items.push_back(runtime::SweepItem{spec, factory,
                                         runtime::NoStragglerFactory(),
                                         sc.faults});
    }
  }
  const std::vector<runtime::ExperimentResult> results =
      runtime::RunSweep(items, opts.jobs);

  std::ofstream csv_file("control_plane_chaos.csv");
  common::CsvWriter csv(csv_file);
  csv.WriteRow({"scenario", "engine", "throughput_samples_per_sec",
                "retention", "stalled", "ts_failovers", "leases_restored",
                "partition_cuts", "partition_heals", "crashes",
                "tokens_reclaimed"});

  obs::BenchReport report("control_plane_chaos");
  std::vector<double> clean_thr(engines.size(), 0.0);
  std::vector<std::string> fault_lines;
  std::printf("\nVGG19 (total batch %g, %d workers), retention = "
              "throughput / same engine's clean throughput:\n\n", kBatch,
              kWorkers);
  std::printf("  %-12s", "scenario");
  for (const std::string& e : engines) std::printf("  %8s %9s", e.c_str(),
                                                   "retain");
  std::printf("\n");
  for (size_t si = 0; si < scenarios.size(); ++si) {
    std::printf("  %-12s", scenarios[si].name.c_str());
    for (size_t ei = 0; ei < engines.size(); ++ei) {
      const runtime::ExperimentResult& r = results[si * engines.size() + ei];
      report.Add(r, static_cast<double>(si));
      if (scenarios[si].name == "clean") {
        clean_thr[ei] = r.average_throughput;
      }
      const double retention = clean_thr[ei] > 0.0
                                   ? r.average_throughput / clean_thr[ei]
                                   : 0.0;
      if (r.stats.stalled) {
        std::printf("  %8s %9s", "stalled", "0.00");
      } else {
        std::printf("  %8.1f %8.2f%%", r.average_throughput,
                    100.0 * retention);
      }
      const runtime::FaultStats& f = r.stats.faults;
      csv.WriteRow({scenarios[si].name, engines[ei],
                    common::StrFormat("%.3f", r.average_throughput),
                    common::StrFormat("%.4f", retention),
                    r.stats.stalled ? "1" : "0",
                    common::StrFormat("%llu", static_cast<unsigned long long>(
                                                  f.ts_failovers)),
                    common::StrFormat("%llu", static_cast<unsigned long long>(
                                                  f.leases_restored)),
                    common::StrFormat("%llu", static_cast<unsigned long long>(
                                                  f.partition_cuts)),
                    common::StrFormat("%llu", static_cast<unsigned long long>(
                                                  f.partition_heals)),
                    common::StrFormat("%llu", static_cast<unsigned long long>(
                                                  f.crashes)),
                    common::StrFormat("%llu", static_cast<unsigned long long>(
                                                  f.tokens_reclaimed))});
      const std::string line = runtime::RenderFaultSummary(
          common::StrFormat("%s %s", scenarios[si].name.c_str(),
                            engines[ei].c_str()),
          r.stats);
      if (!line.empty()) fault_lines.push_back(line);
    }
    std::printf("\n");
  }

  std::printf("\nper-run fault accounting:\n");
  for (const auto& line : fault_lines) std::printf("  %s\n", line.c_str());
  std::printf("\nwrote control_plane_chaos.csv\n");

  // The hardest determinism case this bench adds: TS failover + partition
  // + gray latency must replay byte-identically.
  runtime::ExperimentSpec gate = spec;
  gate.iterations = 4;
  const int rc = bench::VerifyDeterminismGate(
      opts, "control_plane_chaos", gate, suite::FelaFactory(model, cfg),
      runtime::NoStragglerFactory(),
      [](int n) -> std::unique_ptr<FaultSchedule> {
        std::vector<std::unique_ptr<FaultSchedule>> parts;
        parts.push_back(TsCrash(2.0, 12.0));
        PartitionEvent ev;
        ev.start = 4.0;
        ev.end = 8.0;
        for (int w = 0; w < n / 2; ++w) ev.side_a.push_back(w);
        parts.push_back(std::make_unique<sim::NetworkPartition>(
            std::vector<PartitionEvent>{ev}));
        parts.push_back(GrayWorker());
        return std::make_unique<sim::CompositeFaults>(std::move(parts));
      });
  return bench::FinishBench(opts, report) | rc;
}
