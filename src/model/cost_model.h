#ifndef FELA_MODEL_COST_MODEL_H_
#define FELA_MODEL_COST_MODEL_H_

#include <vector>

#include "model/model.h"
#include "model/profile.h"
#include "sim/calibration.h"

namespace fela::model {

/// Result of one simulated profiling sweep point (Fig. 1).
struct ThroughputPoint {
  double batch;
  double samples_per_sec;
};

/// GPU execution-time model. A training pass (forward + backward) over a
/// layer with batch b costs
///
///     time(layer, b) = per_sample * b^g * thr^(1-g)   b <  thr
///     time(layer, b) = per_sample * b                 b >= thr
///
/// where per_sample = training FLOPs / effective GPU rate, thr is the
/// layer's profiled threshold batch size, and g is the calibration's
/// latency-region exponent (DESIGN.md §4). Below the threshold the
/// device is occupancy-bound, so throughput grows with batch; at the
/// threshold it saturates and stays flat — the Fig. 1 shape, and the
/// reason flexible parallelism (bigger batches for deeper sub-models)
/// buys real speedups.
class LayerCostModel {
 public:
  LayerCostModel(const sim::Calibration& cal, const ProfileRepository* repo);

  /// Per-sample training time (fwd+bwd, seconds).
  double PerSampleSeconds(const Layer& layer) const;

  /// Extra seconds a pass at `batch` pays over the saturated ideal
  /// (batch * per_sample); zero at or above the threshold.
  double UnderutilizationSeconds(const Layer& layer, double batch) const;

  /// Full training pass for one layer at the given batch size.
  double PassSeconds(const Layer& layer, double batch) const;

  /// Training pass over layers [lo, hi] of `model` at the given batch.
  double RangeSeconds(const Model& model, int lo, int hi, double batch) const;

  /// Samples/second achieved by one device on this layer at this batch.
  double Throughput(const Layer& layer, double batch) const;

  /// Resolved threshold batch for a layer (profiled or heuristic).
  double ThresholdBatch(const Layer& layer) const {
    return repo_->ThresholdFor(layer);
  }

  /// Simulated profiling sweep over power-of-two batches in
  /// [1, max_batch]: the experiment behind Fig. 1.
  std::vector<ThroughputPoint> SweepThroughput(const Layer& layer,
                                               double max_batch) const;

  /// Smallest swept batch achieving >= `fraction` of the sweep's peak
  /// throughput — the "measured" threshold of §IV-A.
  double MeasureThresholdBatch(const Layer& layer, double max_batch,
                               double fraction = 0.95) const;

  /// Training-FLOPs multiplier over forward FLOPs (fwd + bwd ~ 3x fwd).
  static constexpr double kTrainingFlopsMultiplier = 3.0;

  const sim::Calibration& calibration() const { return cal_; }

 private:
  sim::Calibration cal_;
  const ProfileRepository* repo_;
};

}  // namespace fela::model

#endif  // FELA_MODEL_COST_MODEL_H_
