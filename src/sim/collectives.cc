#include "sim/collectives.h"

#include <memory>
#include <utility>

#include "common/logging.h"

namespace fela::sim {

namespace {

/// Shared countdown that fires a callback when it reaches zero.
class Barrier {
 public:
  Barrier(int count, EventFn done)
      : remaining_(count), done_(std::move(done)) {
    FELA_CHECK_GT(count, 0);
  }

  void Arrive() {
    FELA_CHECK_GT(remaining_, 0);
    if (--remaining_ == 0) done_();
  }

 private:
  int remaining_;
  EventFn done_;
};

/// Drives one ring all-reduce: 2*(P-1) synchronous rounds; in each round
/// every node sends a bytes/P chunk to its ring successor. Rounds are
/// barrier-separated, matching a BSP collective where every step waits
/// for the slowest link.
class RingAllReduceOp : public std::enable_shared_from_this<RingAllReduceOp> {
 public:
  RingAllReduceOp(Simulator* sim, Fabric* fabric,
                  std::vector<NodeId> participants, double bytes_per_node,
                  EventFn done, obs::SpanSink* spans)
      : sim_(sim),
        fabric_(fabric),
        participants_(std::move(participants)),
        done_(std::move(done)),
        spans_(spans) {
    const int p = static_cast<int>(participants_.size());
    // Guard before dividing: an empty or singleton set has no ring (P=0
    // would divide by zero and P=1 would leave a negative round count);
    // Start() completes such a collective immediately.
    if (p > 1) {
      chunk_bytes_ = bytes_per_node / static_cast<double>(p);
      total_rounds_ = 2 * (p - 1);
    }
  }

  void Start() {
    if (total_rounds_ == 0) {
      sim_->Schedule(0.0, std::move(done_));
      return;
    }
    begin_ = sim_->now();
    RunRound(0);
  }

 private:
  void RunRound(int round) {
    if (round == total_rounds_) {
      if (spans_ != nullptr && spans_->enabled()) {
        const SimTime end = sim_->now();
        for (const NodeId node : participants_) {
          spans_->Emit(obs::Span{node, obs::Phase::kSyncWait, begin_, end, -1, {}});
        }
      }
      done_();
      return;
    }
    auto self = shared_from_this();
    auto barrier = std::make_shared<Barrier>(
        static_cast<int>(participants_.size()),
        [self, round] { self->RunRound(round + 1); });
    const size_t p = participants_.size();
    for (size_t i = 0; i < p; ++i) {
      const NodeId src = participants_[i];
      const NodeId dst = participants_[(i + 1) % p];
      fabric_->Transfer(src, dst, chunk_bytes_,
                        [barrier] { barrier->Arrive(); });
    }
  }

  Simulator* sim_;
  Fabric* fabric_;
  std::vector<NodeId> participants_;
  EventFn done_;
  obs::SpanSink* spans_;
  SimTime begin_ = 0.0;
  double chunk_bytes_ = 0.0;
  int total_rounds_ = 0;
};

/// Drives one hierarchical all-reduce in four barrier-separated phases:
/// (1) intra-rack reduce — every non-leader sends its gradient to its
/// rack leader; (2) cross-rack gather — every leader sends the rack
/// aggregate to the root leader; (3) cross-rack scatter — the root sends
/// the global result back to the other leaders; (4) intra-rack broadcast
/// — leaders forward it to their members. 2(P-G) + 2(G-1) transfers
/// total for P participants in G racks: O(P) events per sync, vs the
/// ring's 2P(P-1). Only the cross-rack phases touch the rack uplinks.
class HierarchicalAllReduceOp
    : public std::enable_shared_from_this<HierarchicalAllReduceOp> {
 public:
  HierarchicalAllReduceOp(Simulator* sim, Fabric* fabric,
                          std::vector<NodeId> participants,
                          double bytes_per_node, EventFn done,
                          obs::SpanSink* spans)
      : sim_(sim),
        fabric_(fabric),
        participants_(std::move(participants)),
        bytes_(bytes_per_node),
        done_(std::move(done)),
        spans_(spans) {
    // Group by rack, preserving participant order within each rack; the
    // first participant seen in a rack leads it, and the first group's
    // leader is the global root. Groups appear in participant order, so
    // the schedule is a pure function of the participant vector (and of
    // the fabric's static topology) — deterministic by construction.
    const Topology& topo = fabric_->topology();
    std::vector<int> group_rack;
    for (const NodeId node : participants_) {
      const int rack = topo.RackOf(node);
      size_t g = 0;
      while (g < group_rack.size() && group_rack[g] != rack) ++g;
      if (g == group_rack.size()) {
        group_rack.push_back(rack);
        groups_.emplace_back();
      }
      groups_[g].push_back(node);
    }
  }

  void Start() {
    if (participants_.size() <= 1) {
      sim_->Schedule(0.0, std::move(done_));
      return;
    }
    begin_ = sim_->now();
    auto self = shared_from_this();
    auto barrier = std::make_shared<Barrier>(
        static_cast<int>(groups_.size()),
        [self] { self->CrossRackGather(); });
    for (const auto& group : groups_) {
      GatherTo(sim_, fabric_, group[0], Members(group), bytes_,
               [barrier] { barrier->Arrive(); });
    }
  }

 private:
  /// Everyone in the group except its leader.
  static std::vector<NodeId> Members(const std::vector<NodeId>& group) {
    return {group.begin() + 1, group.end()};
  }

  std::vector<NodeId> OtherLeaders() const {
    std::vector<NodeId> leaders;
    for (size_t g = 1; g < groups_.size(); ++g) {
      leaders.push_back(groups_[g][0]);
    }
    return leaders;
  }

  NodeId root() const { return groups_[0][0]; }

  void CrossRackGather() {
    auto self = shared_from_this();
    GatherTo(sim_, fabric_, root(), OtherLeaders(), bytes_,
             [self] { self->CrossRackScatter(); });
  }

  void CrossRackScatter() {
    auto self = shared_from_this();
    ScatterFrom(sim_, fabric_, root(), OtherLeaders(), bytes_,
                [self] { self->Broadcast(); });
  }

  void Broadcast() {
    auto self = shared_from_this();
    auto barrier = std::make_shared<Barrier>(
        static_cast<int>(groups_.size()), [self] { self->Finish(); });
    for (const auto& group : groups_) {
      ScatterFrom(sim_, fabric_, group[0], Members(group), bytes_,
                  [barrier] { barrier->Arrive(); });
    }
  }

  void Finish() {
    if (spans_ != nullptr && spans_->enabled()) {
      const SimTime end = sim_->now();
      for (const NodeId node : participants_) {
        spans_->Emit(
            obs::Span{node, obs::Phase::kSyncWait, begin_, end, -1, {}});
      }
    }
    done_();
  }

  Simulator* sim_;
  Fabric* fabric_;
  std::vector<NodeId> participants_;
  /// groups_[g][0] is rack g's leader; groups_[0][0] is the root.
  std::vector<std::vector<NodeId>> groups_;
  double bytes_;
  EventFn done_;
  obs::SpanSink* spans_;
  SimTime begin_ = 0.0;
};

}  // namespace

void RingAllReduce(Simulator* sim, Fabric* fabric,
                   std::vector<NodeId> participants, double bytes_per_node,
                   EventFn done, obs::SpanSink* spans) {
  auto op = std::make_shared<RingAllReduceOp>(sim, fabric,
                                              std::move(participants),
                                              bytes_per_node, std::move(done),
                                              spans);
  op->Start();
}

void HierarchicalAllReduce(Simulator* sim, Fabric* fabric,
                           std::vector<NodeId> participants,
                           double bytes_per_node, EventFn done,
                           obs::SpanSink* spans) {
  auto op = std::make_shared<HierarchicalAllReduceOp>(
      sim, fabric, std::move(participants), bytes_per_node, std::move(done),
      spans);
  op->Start();
}

void AllReduce(Simulator* sim, Fabric* fabric,
               std::vector<NodeId> participants, double bytes_per_node,
               EventFn done, obs::SpanSink* spans) {
  if (fabric->topology().hierarchical()) {
    HierarchicalAllReduce(sim, fabric, std::move(participants),
                          bytes_per_node, std::move(done), spans);
    return;
  }
  RingAllReduce(sim, fabric, std::move(participants), bytes_per_node,
                std::move(done), spans);
}

double RingAllReduceIdealSeconds(int participants, double bytes_per_node,
                                 const Calibration& cal) {
  if (participants <= 1) return 0.0;
  const double p = static_cast<double>(participants);
  const double chunk = bytes_per_node / p;
  const double per_round =
      cal.message_latency_sec + chunk / cal.nic_bandwidth_bytes_per_sec;
  return 2.0 * (p - 1.0) * per_round;
}

void GatherTo(Simulator* sim, Fabric* fabric, NodeId root,
              std::vector<NodeId> senders, double bytes_each, EventFn done) {
  if (senders.empty()) {
    sim->Schedule(0.0, std::move(done));
    return;
  }
  auto barrier = std::make_shared<Barrier>(static_cast<int>(senders.size()),
                                           std::move(done));
  for (NodeId src : senders) {
    fabric->Transfer(src, root, bytes_each, [barrier] { barrier->Arrive(); });
  }
}

void ScatterFrom(Simulator* sim, Fabric* fabric, NodeId root,
                 std::vector<NodeId> receivers, double bytes_each,
                 EventFn done) {
  if (receivers.empty()) {
    sim->Schedule(0.0, std::move(done));
    return;
  }
  auto barrier = std::make_shared<Barrier>(static_cast<int>(receivers.size()),
                                           std::move(done));
  for (NodeId dst : receivers) {
    fabric->Transfer(root, dst, bytes_each, [barrier] { barrier->Arrive(); });
  }
}

}  // namespace fela::sim
