#include "baselines/hp_engine.h"

#include "common/logging.h"
#include "sim/collectives.h"

namespace fela::baselines {

namespace {
constexpr double kForwardShare = 1.0 / 3.0;
}  // namespace

HpEngine::HpEngine(runtime::Cluster* cluster, const model::Model& model,
                   double total_batch)
    : cluster_(cluster),
      model_(model),
      cost_(cluster->calibration(), &model::ProfileRepository::Default()),
      total_batch_(total_batch) {
  FELA_CHECK_GT(total_batch, 0.0);
  FELA_CHECK_GE(cluster->num_workers(), 2);
  shard_batch_ = total_batch / static_cast<double>(conv_worker_count());
  fc_first_layer_ = -1;
  for (int i = 0; i < model_.layer_count(); ++i) {
    if (model_.layer(i).kind == model::LayerKind::kFc) {
      fc_first_layer_ = i;
      break;
    }
  }
  FELA_CHECK_GE(fc_first_layer_, 1) << "HP baseline needs CONV + FC layers";
  conv_param_bytes_ = model_.ParamsInRange(0, fc_first_layer_ - 1) *
                      cluster_->calibration().bytes_per_scalar;
}

double HpEngine::BoundaryBytesPerShard() const {
  return model_.BoundaryActivationElems(fc_first_layer_) * shard_batch_ *
         cluster_->calibration().bytes_per_scalar;
}

void HpEngine::StartIteration(int iteration) {
  current_iteration_ = iteration;
  iteration_start_ = cluster_->simulator().now();
  conv_pending_ = conv_worker_count();
  if (cluster_->spans().enabled()) {
    iter_span_.emplace(&cluster_->spans(), cluster_->num_workers(),
                       obs::Phase::kIteration, iteration);
  }
  for (int w = 0; w < cluster_->num_workers(); ++w) {
    const double delay = cluster_->stragglers().DelayFor(iteration, w);
    if (delay > 0.0) {
      cluster_->gpu(w).BlockUntil(cluster_->simulator().now() + delay);
    }
  }
  for (int w = 0; w < conv_worker_count(); ++w) {
    const double fwd = cost_.RangeSeconds(model_, 0, fc_first_layer_ - 1,
                                          shard_batch_) *
                       kForwardShare *
                       cluster_->stragglers().SlowdownFor(iteration, w);
    cluster_->gpu(w).Enqueue(fwd, [this, w] { OnConvForwardDone(w); });
  }
}

void HpEngine::OnConvForwardDone(int conv_worker) {
  cluster_->fabric().Transfer(
      conv_worker, fc_worker(), BoundaryBytesPerShard(),
      [this, conv_worker] { OnActivationsAtFc(conv_worker); });
}

void HpEngine::OnActivationsAtFc(int conv_worker) {
  fc_waiting_.push_back(conv_worker);
  PumpFc();
}

void HpEngine::PumpFc() {
  if (fc_busy_ || fc_waiting_.empty()) return;
  // Stanza keeps per-worker shards separate (each conv worker's
  // activations round-trip independently), so the FC worker runs one
  // pass per shard, FIFO. This is what turns the FC worker into the
  // bottleneck as the batch grows (§V-C1 discussion).
  std::vector<int> owners = {fc_waiting_.front()};
  fc_waiting_.erase(fc_waiting_.begin());
  const double fc_seconds =
      cost_.RangeSeconds(model_, fc_first_layer_, model_.layer_count() - 1,
                         shard_batch_) *
      cluster_->stragglers().SlowdownFor(current_iteration_, fc_worker());
  fc_busy_ = true;
  cluster_->gpu(fc_worker())
      .Enqueue(fc_seconds, [this, owners = std::move(owners)]() mutable {
        OnFcPassDone(std::move(owners));
      });
}

void HpEngine::OnFcPassDone(std::vector<int> shard_owners) {
  fc_busy_ = false;
  for (int conv_worker : shard_owners) {
    cluster_->fabric().Transfer(
        fc_worker(), conv_worker, BoundaryBytesPerShard(),
        [this, conv_worker] { OnGradsAtConv(conv_worker); });
  }
  PumpFc();
}

void HpEngine::OnGradsAtConv(int conv_worker) {
  const double bwd = cost_.RangeSeconds(model_, 0, fc_first_layer_ - 1,
                                        shard_batch_) *
                     (1.0 - kForwardShare) *
                     cluster_->stragglers().SlowdownFor(current_iteration_,
                                                        conv_worker);
  cluster_->gpu(conv_worker)
      .Enqueue(bwd, [this, conv_worker] { OnConvBackwardDone(conv_worker); });
}

void HpEngine::OnConvBackwardDone(int) {
  if (--conv_pending_ > 0) return;
  std::vector<sim::NodeId> conv_workers;
  for (int i = 0; i < conv_worker_count(); ++i) conv_workers.push_back(i);
  sim::AllReduce(&cluster_->simulator(), &cluster_->fabric(),
                 std::move(conv_workers), conv_param_bytes_,
                 [this] { OnConvAllReduceDone(); }, &cluster_->spans());
}

void HpEngine::OnConvAllReduceDone() {
  stats_.iterations.push_back(runtime::IterationStats{
      iteration_start_, cluster_->simulator().now()});
  iter_span_.reset();  // emits the iteration framing span
  if (current_iteration_ + 1 < target_iterations_) {
    StartIteration(current_iteration_ + 1);
  } else {
    run_complete_ = true;
  }
}

runtime::RunStats HpEngine::Run(int iterations) {
  FELA_CHECK_GT(iterations, 0);
  FELA_CHECK(stats_.iterations.empty());
  target_iterations_ = iterations;
  cluster_->fabric().ResetStats();
  StartIteration(0);
  cluster_->simulator().Run();
  FELA_CHECK(run_complete_);
  stats_.total_time = cluster_->simulator().now();
  stats_.total_data_bytes = cluster_->fabric().total_data_bytes();
  stats_.total_gpu_busy = cluster_->TotalGpuBusy();
  stats_.control_messages = cluster_->fabric().control_message_count();
  return stats_;
}

}  // namespace fela::baselines
