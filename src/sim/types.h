#ifndef FELA_SIM_TYPES_H_
#define FELA_SIM_TYPES_H_

#include <cstdint>
#include <limits>

namespace fela::sim {

/// Simulated time in seconds since experiment start.
using SimTime = double;

/// "Never happens" sentinel (e.g. FaultSchedule::NextTransitionAfter when
/// no transition remains, CrashEvent::recover_time for fail-stop).
inline constexpr SimTime kNeverTime =
    std::numeric_limits<SimTime>::infinity();

/// True iff `t` is the kNeverTime sentinel. The dedicated helper (rather
/// than `t == kNeverTime` at call sites) keeps exact sentinel tests out
/// of the float-eq lint rule's way: infinity is the one SimTime value
/// strictly above max().
constexpr bool IsNever(SimTime t) {
  return t > std::numeric_limits<SimTime>::max();
}

/// Exact SimTime equality for intentional tie-breaks on event times that
/// are copied, never recomputed (two spans ending at the same instant,
/// a residue of exactly zero). Written without `==` so intentional exact
/// comparisons are distinguishable from accidental ones, which the
/// float-eq lint rule continues to flag.
constexpr bool TimeEq(SimTime a, SimTime b) { return !(a < b) && !(b < a); }

/// Cluster node index, 0-based. Workers are nodes; the token server is
/// co-located with node 0 (the paper notes TS is not compute-intensive).
using NodeId = int;

/// Handle returned by Simulator::Schedule (usable for cancellation).
using EventId = uint64_t;

inline constexpr EventId kInvalidEventId = 0;

}  // namespace fela::sim

#endif  // FELA_SIM_TYPES_H_
