#ifndef FELA_RUNTIME_ENGINE_H_
#define FELA_RUNTIME_ENGINE_H_

#include <string>
#include <vector>

#include "runtime/cluster.h"
#include "sim/types.h"

namespace fela::runtime {

/// Timing record of one BSP iteration.
struct IterationStats {
  sim::SimTime start = 0.0;
  sim::SimTime end = 0.0;
  double duration() const { return end - start; }
};

/// Fault-injection accounting for one run: what failed, what the engine
/// did about it, and what it cost (the robustness-side companions of the
/// paper's Eq. 3/Eq. 4 metrics).
struct FaultStats {
  uint64_t crashes = 0;              // worker crash events observed
  uint64_t recoveries = 0;           // worker recover events observed
  uint64_t control_dropped = 0;      // control messages lost in flight
  uint64_t control_duplicated = 0;   // control messages delivered twice
  uint64_t tokens_reclaimed = 0;     // in-flight grants pulled back
  uint64_t regrants = 0;             // grants of previously reclaimed tokens
  uint64_t request_retries = 0;      // worker-side request retransmissions
  uint64_t duplicate_reports = 0;    // reports ignored as duplicate/stale
  uint64_t readmissions = 0;         // recovered workers re-admitted
  double recovery_latency_total = 0.0;  // recover event -> re-admission secs
  uint64_t ts_failovers = 0;         // token-server standby promotions
  /// Checkpoints taken by the token server. NOT part of the determinism
  /// transcript: boundary checkpoints fire whenever a fault schedule is
  /// merely *attached*, so an inert schedule would diverge from the
  /// faultless twin on this counter alone.
  uint64_t ts_checkpoints = 0;
  uint64_t partition_cuts = 0;       // workers cut off from the TS host
  uint64_t partition_heals = 0;      // cut workers reconnected
  uint64_t leases_restored = 0;      // leases re-armed from a checkpoint

  bool any() const {
    return crashes + control_dropped + control_duplicated + tokens_reclaimed +
               request_retries + duplicate_reports + ts_failovers +
               partition_cuts >
           0;
  }
  double MeanRecoveryLatency() const {
    return readmissions == 0
               ? 0.0
               : recovery_latency_total / static_cast<double>(readmissions);
  }
};

/// Aggregate outcome of a training run.
struct RunStats {
  std::vector<IterationStats> iterations;
  double total_time = 0.0;        // seconds to finish all iterations
  double total_data_bytes = 0.0;  // bulk bytes moved on the fabric
  double total_gpu_busy = 0.0;    // sum of per-GPU busy seconds
  uint64_t control_messages = 0;  // token-protocol messages
  FaultStats faults;              // fault events and recovery work
  /// True when the engine could not survive a fault and gave up (BSP
  /// baselines stall at the barrier / abort): `iterations` then holds
  /// only the iterations completed before the failure.
  bool stalled = false;

  int iteration_count() const { return static_cast<int>(iterations.size()); }
  /// Average per-iteration seconds.
  double MeanIterationSeconds() const;
  /// Average throughput per the paper's Eq. 3 (samples/second).
  double AverageThroughput(double total_batch) const;
  /// Throughput a scheduler-facing client observes: 0 for a stalled run
  /// (the job never finishes without intervention), Eq. 3 otherwise.
  double EffectiveThroughput(double total_batch) const;
};

/// A distributed-training engine (Fela or one of the baselines) executing
/// on a Cluster. Engines schedule their whole protocol onto the cluster's
/// simulator; Run() drives it to completion and reports statistics.
class Engine {
 public:
  virtual ~Engine() = default;

  virtual std::string name() const = 0;

  /// Runs `iterations` BSP iterations and returns timing statistics.
  /// May be called once per engine instance.
  virtual RunStats Run(int iterations) = 0;
};

/// Per-iteration delay (PID) per the paper's Eq. 4: the extra seconds per
/// iteration a straggler scenario costs relative to the clean run.
double PerIterationDelay(const RunStats& with_stragglers,
                         const RunStats& baseline);

}  // namespace fela::runtime

#endif  // FELA_RUNTIME_ENGINE_H_
