// Using Fela on a model that is NOT in the zoo: define the layers,
// profile their threshold batch sizes with the simulated sweep (or let
// the heuristic fill them in), bin-partition, tune, and train.
//
//   ./build/examples/custom_model_tuning

#include <cstdio>

#include "core/fela_engine.h"
#include "model/cost_model.h"
#include "model/partition.h"
#include "model/zoo.h"
#include "runtime/experiment.h"
#include "suite/suite.h"

int main() {
  using namespace fela;

  // A custom 10-layer CNN ("AlexNet-and-a-half"). No thresholds given:
  // the ProfileRepository resolves them via profiling + heuristics.
  std::vector<model::Layer> layers;
  layers.push_back(model::Layer::Conv("conv1", 3, 96, 112, 112, 7));
  layers.push_back(model::Layer::Conv("conv2", 96, 192, 56, 56));
  layers.push_back(model::Layer::Conv("conv3", 192, 256, 28, 28));
  layers.push_back(model::Layer::Conv("conv4", 256, 384, 28, 28));
  layers.push_back(model::Layer::Conv("conv5", 384, 384, 14, 14));
  layers.push_back(model::Layer::Conv("conv6", 384, 384, 14, 14));
  layers.push_back(model::Layer::Conv("conv7", 384, 256, 14, 14));
  layers.push_back(model::Layer::Fc("fc1", 256 * 7 * 7, 4096));
  layers.push_back(model::Layer::Fc("fc2", 4096, 4096));
  layers.push_back(model::Layer::Fc("fc3", 4096, 1000));
  model::Model custom("CustomNet", std::move(layers));
  custom.set_input_elems_per_sample(3.0 * 224 * 224);

  // Step 1: offline profiling — measure each layer's threshold batch via
  // the Fig. 1 sweep and store it in a repository (§IV-A: "once and for
  // all").
  model::ProfileRepository repo;
  {
    const model::LayerCostModel probe(sim::Calibration::Default(), &repo);
    for (const model::Layer& l : custom.layers()) {
      repo.Register(l.ShapeKey(), probe.MeasureThresholdBatch(l, 4096));
    }
  }
  std::printf("%s\n", custom.Describe().c_str());
  std::printf("profiled thresholds:\n");
  for (const model::Layer& l : custom.layers()) {
    std::printf("  %-10s %-26s -> %.0f\n", l.name.c_str(),
                l.ShapeKey().c_str(), repo.ThresholdFor(l));
  }

  // Step 2: offline bin partition.
  const auto sub_models = model::BinPartitioner().Partition(custom, repo);
  std::printf("\nbin partition (%zu sub-models):\n", sub_models.size());
  for (const auto& sm : sub_models) std::printf("  %s\n", sm.ToString().c_str());

  // Step 3: runtime two-phase tuning, then training. (The suite helper
  // re-partitions internally with the default repository, so we pass an
  // explicit partition + evaluator here.)
  const double batch = 256;
  const int workers = 8;
  const auto evaluator =
      core::MakeSimulatedEvaluator(custom, sub_models, batch, workers);
  const core::TuningReport tuning = core::TuneConfiguration(
      static_cast<int>(sub_models.size()), workers, evaluator);
  std::printf("\n%s\n", tuning.ToString().c_str());

  runtime::Cluster cluster(workers, sim::Calibration::Default(), nullptr);
  core::FelaEngine engine(&cluster, custom, sub_models, tuning.best_config,
                          batch);
  const auto stats = engine.Run(50);
  std::printf("trained 50 iterations: %.1f samples/s, %.3f s/iter, "
              "%.2f GB network/iter\n",
              stats.AverageThroughput(batch), stats.MeanIterationSeconds(),
              stats.total_data_bytes / 50 / 1e9);
  return 0;
}
