file(REMOVE_RECURSE
  "CMakeFiles/fela_model.dir/cost_model.cc.o"
  "CMakeFiles/fela_model.dir/cost_model.cc.o.d"
  "CMakeFiles/fela_model.dir/layer.cc.o"
  "CMakeFiles/fela_model.dir/layer.cc.o.d"
  "CMakeFiles/fela_model.dir/memory_model.cc.o"
  "CMakeFiles/fela_model.dir/memory_model.cc.o.d"
  "CMakeFiles/fela_model.dir/model.cc.o"
  "CMakeFiles/fela_model.dir/model.cc.o.d"
  "CMakeFiles/fela_model.dir/partition.cc.o"
  "CMakeFiles/fela_model.dir/partition.cc.o.d"
  "CMakeFiles/fela_model.dir/profile.cc.o"
  "CMakeFiles/fela_model.dir/profile.cc.o.d"
  "CMakeFiles/fela_model.dir/zoo.cc.o"
  "CMakeFiles/fela_model.dir/zoo.cc.o.d"
  "libfela_model.a"
  "libfela_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fela_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
