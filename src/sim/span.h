#ifndef FELA_SIM_SPAN_H_
#define FELA_SIM_SPAN_H_

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/tokenize.h"
#include "sim/types.h"

namespace fela::obs {

/// What a worker was doing during an interval. Declared in descending
/// attribution priority: when spans overlap on one track, each instant
/// is charged to the highest-priority covering phase (see
/// runtime/attribution.h), which is what makes per-worker fractions sum
/// to exactly 1. kIteration is a framing span (driver/token-server
/// track), never attributed; kIdle only appears as the attribution
/// remainder, never in recorded spans.
enum class Phase {
  kCrashed,    // worker down, or re-executing lost work after a crash
  kCompute,    // GPU busy on forward/backward
  kSyncWait,   // inside a gradient-sync window (allreduce / PS push+pull)
  kTransfer,   // async parameter/activation fetch on the wire
  kTokenWait,  // waiting for the token server to grant work
  kStraggler,  // injected slowdown sleep
  kIteration,  // framing span: one global iteration (driver track)
  kIdle,       // attribution remainder only
};

inline constexpr int kNumPhases = 8;

const char* PhaseName(Phase phase);

/// One closed interval of activity on a track. `track` is the worker's
/// NodeId; tracks >= the cluster's worker count belong to the token
/// server / driver (the Chrome exporter names them accordingly). The
/// detail is tokenized (FELA_TOK + packed args), which keeps Span
/// trivially copyable — SpanSink::Emit is a struct store, no
/// allocation even on the enabled path.
struct Span {
  sim::NodeId track = 0;
  Phase phase = Phase::kIdle;
  sim::SimTime begin = 0.0;
  sim::SimTime end = 0.0;
  int iteration = -1;  // -1: not attributable to a single iteration
  common::TokenizedDetail detail;

  sim::SimTime duration() const { return end - begin; }
};

/// Bounded collector of Spans for one run. Disabled by default — every
/// instrumentation site checks enabled() first, so a production sweep
/// pays one branch per site and zero allocations. The clock callback
/// (wired to Simulator::now by Cluster) lets ScopedSpan read simulated
/// time without a Simulator dependency. Ring semantics match
/// TraceRecorder: past capacity, newest evicts oldest and dropped()
/// counts the evictions.
class SpanSink {
 public:
  explicit SpanSink(size_t capacity = 200000) : capacity_(capacity) {}

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void set_clock(std::function<sim::SimTime()> clock) {
    clock_ = std::move(clock);
  }
  sim::SimTime Now() const { return clock_ ? clock_() : 0.0; }

  void Emit(const Span& span);

  /// Spans oldest-first (by emission order, i.e. ordered by `end`).
  std::vector<Span> spans() const;
  size_t size() const { return spans_.size(); }
  size_t capacity() const { return capacity_; }
  size_t dropped() const { return dropped_; }
  void Clear();

 private:
  size_t capacity_;
  bool enabled_ = false;
  std::function<sim::SimTime()> clock_;
  std::vector<Span> spans_;
  size_t next_ = 0;  // ring cursor once full
  size_t dropped_ = 0;
};

/// RAII span: captures the sink's clock at construction, emits the
/// completed interval at destruction (or Close()). Because the "clock"
/// is simulated time, a ScopedSpan can live across simulator callbacks —
/// e.g. a worker holds one in a std::optional from token request until
/// grant. Construction against a disabled sink records nothing.
class ScopedSpan {
 public:
  ScopedSpan(SpanSink* sink, sim::NodeId track, Phase phase,
             int iteration = -1, common::TokenizedDetail detail = {})
      : sink_(sink != nullptr && sink->enabled() ? sink : nullptr),
        track_(track),
        phase_(phase),
        iteration_(iteration),
        detail_(detail),
        begin_(sink_ != nullptr ? sink_->Now() : 0.0) {}

  ~ScopedSpan() { Close(); }

  ScopedSpan(ScopedSpan&& other) noexcept { *this = std::move(other); }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    if (this != &other) {
      Close();
      sink_ = std::exchange(other.sink_, nullptr);
      track_ = other.track_;
      phase_ = other.phase_;
      iteration_ = other.iteration_;
      detail_ = other.detail_;
      begin_ = other.begin_;
    }
    return *this;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_iteration(int iteration) { iteration_ = iteration; }
  void set_detail(common::TokenizedDetail detail) { detail_ = detail; }

  /// Emits now instead of at destruction; idempotent.
  void Close() {
    if (sink_ == nullptr) return;
    sink_->Emit(
        Span{track_, phase_, begin_, sink_->Now(), iteration_, detail_});
    sink_ = nullptr;
  }

  /// Drops the span without emitting (e.g. the awaited grant never came
  /// because the run ended); idempotent.
  void Cancel() { sink_ = nullptr; }

 private:
  SpanSink* sink_ = nullptr;
  sim::NodeId track_ = 0;
  Phase phase_ = Phase::kIdle;
  int iteration_ = -1;
  common::TokenizedDetail detail_;
  sim::SimTime begin_ = 0.0;
};

}  // namespace fela::obs

#endif  // FELA_SIM_SPAN_H_
