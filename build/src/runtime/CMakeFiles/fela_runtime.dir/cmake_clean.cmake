file(REMOVE_RECURSE
  "CMakeFiles/fela_runtime.dir/cluster.cc.o"
  "CMakeFiles/fela_runtime.dir/cluster.cc.o.d"
  "CMakeFiles/fela_runtime.dir/engine.cc.o"
  "CMakeFiles/fela_runtime.dir/engine.cc.o.d"
  "CMakeFiles/fela_runtime.dir/experiment.cc.o"
  "CMakeFiles/fela_runtime.dir/experiment.cc.o.d"
  "CMakeFiles/fela_runtime.dir/report.cc.o"
  "CMakeFiles/fela_runtime.dir/report.cc.o.d"
  "libfela_runtime.a"
  "libfela_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fela_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
