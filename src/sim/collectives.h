#ifndef FELA_SIM_COLLECTIVES_H_
#define FELA_SIM_COLLECTIVES_H_

#include <vector>

#include "sim/event_fn.h"
#include "sim/fabric.h"
#include "sim/simulator.h"
#include "sim/span.h"
#include "sim/types.h"

namespace fela::sim {

/// Ring all-reduce of `bytes_per_node` across `participants`, executed as
/// real transfers on the fabric (2*(P-1) rounds of bytes/P chunks), the
/// synchronization pattern Gloo uses for the paper's BSP baselines.
/// `done` fires once, when the slowest participant completes. Empty and
/// singleton participant sets have no ring and complete immediately. The
/// ring order follows the participant vector.
///
/// When `spans` is set (and enabled), each participant gets a kSyncWait
/// span covering the whole collective on its own track (all participants
/// finish together — every round is barrier-separated). Attribution then
/// charges compute-overlapped portions to compute and only the blocked
/// remainder to sync (the Fela overlap semantics).
void RingAllReduce(Simulator* sim, Fabric* fabric,
                   std::vector<NodeId> participants, double bytes_per_node,
                   EventFn done, obs::SpanSink* spans = nullptr);

/// Analytic cost of the above on an uncontended fabric; used by tests and
/// by quick capacity estimates. Returns seconds.
double RingAllReduceIdealSeconds(int participants, double bytes_per_node,
                                 const Calibration& cal);

/// Hierarchical (rack-aware) all-reduce: intra-rack reduce into each rack
/// leader, leader gather/scatter through a root across racks, intra-rack
/// broadcast back — four barrier-separated phases, 2(P-G) + 2(G-1)
/// transfers for P participants in G racks. O(P) events per sync where
/// the ring schedules 2P(P-1), which is what makes 1k+-worker runs
/// tractable. Rack assignment comes from the fabric's Topology; on a
/// flat fabric everything lands in one rack and this degrades to a
/// gather+broadcast tree (still O(P), but with no uplink modelling).
/// Span semantics match RingAllReduce: one kSyncWait per participant
/// covering the whole collective.
void HierarchicalAllReduce(Simulator* sim, Fabric* fabric,
                           std::vector<NodeId> participants,
                           double bytes_per_node, EventFn done,
                           obs::SpanSink* spans = nullptr);

/// Topology-dispatched all-reduce, the call engines should make: the ring
/// on a flat fabric (byte-identical to the paper figures), the
/// hierarchical collective when the fabric is racked. Empty and singleton
/// participant sets complete immediately on every path.
void AllReduce(Simulator* sim, Fabric* fabric, std::vector<NodeId> participants,
               double bytes_per_node, EventFn done,
               obs::SpanSink* spans = nullptr);

/// All participants send `bytes_each` to `root` (in-cast); `done` fires
/// when the last byte lands. Used by the Stanza-style HP baseline, where
/// the FC worker is the in-cast root.
void GatherTo(Simulator* sim, Fabric* fabric, NodeId root,
              std::vector<NodeId> senders, double bytes_each, EventFn done);

/// `root` sends `bytes_each` to every receiver; `done` fires when the
/// last transfer completes.
void ScatterFrom(Simulator* sim, Fabric* fabric, NodeId root,
                 std::vector<NodeId> receivers, double bytes_each,
                 EventFn done);

}  // namespace fela::sim

#endif  // FELA_SIM_COLLECTIVES_H_
