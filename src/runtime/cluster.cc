#include "runtime/cluster.h"

#include "common/logging.h"

namespace fela::runtime {

Cluster::Cluster(int num_workers, const sim::Calibration& cal,
                 std::unique_ptr<sim::StragglerSchedule> stragglers,
                 std::unique_ptr<sim::FaultSchedule> faults)
    : num_workers_(num_workers),
      cal_(cal),
      fabric_(&sim_, num_workers, cal),
      stragglers_(std::move(stragglers)),
      faults_(std::move(faults)) {
  FELA_CHECK_GT(num_workers, 0);
  if (!stragglers_) stragglers_ = std::make_unique<sim::NoStragglers>();
  if (!faults_) faults_ = std::make_unique<sim::NoFaults>();
  FELA_CHECK_OK(faults_->Validate(num_workers));
  fabric_.SetFaults(faults_.get(), &trace_);
  spans_.set_clock([this] { return sim_.now(); });
  fabric_.set_span_sink(&spans_);
  gpus_.Reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    gpus_.EmplaceBack(&sim_, i).set_span_sink(&spans_);
  }
}

void Cluster::SetObservability(bool enabled) {
  spans_.set_enabled(enabled);
  trace_.set_enabled(enabled);
}

std::unique_ptr<Cluster> Cluster::MakeDefault(int num_workers) {
  return std::make_unique<Cluster>(num_workers, sim::Calibration::Default(),
                                   std::make_unique<sim::NoStragglers>());
}

double Cluster::TotalGpuBusy() const {
  double s = 0.0;
  for (const auto& g : gpus_) s += g.busy_time();
  return s;
}

}  // namespace fela::runtime
