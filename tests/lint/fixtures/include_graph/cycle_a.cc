// fela-lint fixture: pulls the cycle_a.h <-> cycle_b.h cycle into the
// graph from a .cc root, and names one header no scanned path matches
// (the graph must record it under Missing, not error out).
#include "cycle_a.h"
#include "no_such_header.h"

namespace fela::fixture {

int UseCycle() {
  CycleA a;
  CycleB b;
  return a.value + b.value;
}

}  // namespace fela::fixture
