file(REMOVE_RECURSE
  "libfela_runtime.a"
)
