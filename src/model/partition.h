#ifndef FELA_MODEL_PARTITION_H_
#define FELA_MODEL_PARTITION_H_

#include <string>
#include <vector>

#include "model/model.h"
#include "model/profile.h"

namespace fela::model {

/// A contiguous slice of the model trained as one unit; the object tokens
/// refer to ("one token represents training one sub-model with a certain
/// batch size", §III-A).
struct SubModel {
  int index = 0;
  int first_layer = 0;  // inclusive
  int last_layer = 0;   // inclusive
  /// Representative threshold batch (lower edge of the partition bin).
  double threshold_batch = 0.0;
  double params = 0.0;
  double flops_per_sample = 0.0;
  /// Activation elements per sample entering / leaving the sub-model.
  double input_boundary_elems = 0.0;
  double output_boundary_elems = 0.0;
  /// True when the slice contains FC layers (sync-heavy; CTD target).
  bool communication_intensive = false;

  int layer_count() const { return last_layer - first_layer + 1; }
  std::string ToString() const;
};

/// The paper's offline *bin-partitioned method* (§IV-A): resolve each
/// layer's threshold batch size, map it to a bin of width `bin_size`
/// ([0,16), [16,32), ...), and group maximal runs of consecutive layers
/// sharing a bin into sub-models. With the calibrated VGG19 profile and
/// bin size 16 this yields exactly the paper's {L1-8, L9-16, L17-19}.
class BinPartitioner {
 public:
  explicit BinPartitioner(double bin_size = 16.0);

  /// Bin index for a threshold value.
  int BinOf(double threshold) const;

  std::vector<SubModel> Partition(const Model& model,
                                  const ProfileRepository& repo) const;

  double bin_size() const { return bin_size_; }

 private:
  double bin_size_;
};

/// Splits a model into `num_stages` contiguous stages with approximately
/// equal training FLOPs. Each returned pair is an inclusive [first, last]
/// layer range.
std::vector<std::pair<int, int>> BalancedFlopsPartition(const Model& model,
                                                        int num_stages);

/// Splits a model into `num_stages` contiguous stages with approximately
/// equal *layer counts* — the naive pipeline partition of the paper's MP
/// baseline ("model partition can be hardly balanced", §I); the FLOP
/// imbalance across stages is part of what the paper measures against.
std::vector<std::pair<int, int>> EqualLayerCountPartition(const Model& model,
                                                          int num_stages);

/// Builds SubModel records for an explicit list of inclusive layer ranges
/// (user-defined partition schemes, §III-B: "the partition scheme can be
/// user-defined").
std::vector<SubModel> SubModelsForRanges(
    const Model& model, const ProfileRepository& repo,
    const std::vector<std::pair<int, int>>& ranges);

}  // namespace fela::model

#endif  // FELA_MODEL_PARTITION_H_
