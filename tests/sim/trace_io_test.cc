// FELATRB1 binary-trace codec tests: serialize → parse → re-render must
// be byte-identical to the in-process renderers, a truncated stream
// still parses up to the cut with an explicit end-of-stream marker, and
// malformed headers are rejected.

#include "sim/trace_io.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "common/tokenize.h"
#include "sim/chrome_trace.h"
#include "sim/span.h"
#include "sim/trace.h"

namespace fela::obs {
namespace {

/// One of everything: tokenized details, detail-less events, a legacy
/// dynamic-string detail, and enough records to overflow the trace ring.
struct Artifacts {
  SpanSink spans{8};
  sim::TraceRecorder trace{3};

  Artifacts() {
    spans.set_enabled(true);
    trace.set_enabled(true);
    spans.Emit(Span{0, Phase::kCompute, 0.0, 1.0, 2,
                    common::TokenizedDetail(FELA_TOK("w=%d b=%g"), 5, 0.25)});
    spans.Emit(Span{1, Phase::kTokenWait, 0.5, 0.75, 2, {}});
    FELA_TRACE(&trace, 0.5, 1, sim::TraceKind::kTokenRequest,
               FELA_TOK("it=%d n=%zu"), 3, static_cast<size_t>(1024));
    FELA_TRACE(&trace, 1.5, 2, sim::TraceKind::kFetchEnd);
    trace.Record(2.0, 0, sim::TraceKind::kConflict,
                 std::string("dynamic text"));
    // A 4th record on a capacity-3 ring: the oldest event drops and the
    // serialized form must carry the dropped count.
    FELA_TRACE(&trace, 2.5, 0, sim::TraceKind::kSyncEnd);
  }
};

TEST(TraceIoTest, RoundTripRendersByteIdenticalText) {
  Artifacts a;
  ASSERT_EQ(a.trace.dropped(), 1u);
  const std::string bytes = SerializeBinaryTrace(a.spans, &a.trace, 4);

  BinaryTraceData data;
  std::string error;
  ASSERT_TRUE(ParseBinaryTrace(bytes, &data, &error)) << error;
  EXPECT_FALSE(data.truncated);
  EXPECT_EQ(data.num_workers, 4);
  EXPECT_TRUE(data.has_trace);
  EXPECT_EQ(data.spans.size(), 2u);
  EXPECT_EQ(data.events.size(), 3u);
  EXPECT_EQ(data.trace_dropped, 1u);
  EXPECT_EQ(data.trace_capacity, 3u);

  EXPECT_EQ(RenderTraceText(data), a.trace.ToString());
  EXPECT_EQ(RenderChromeTrace(data), ChromeTraceString(a.spans, &a.trace, 4));
}

TEST(TraceIoTest, RoundTripWithoutTraceRecorder) {
  Artifacts a;
  const std::string bytes = SerializeBinaryTrace(a.spans, nullptr, 4);
  BinaryTraceData data;
  std::string error;
  ASSERT_TRUE(ParseBinaryTrace(bytes, &data, &error)) << error;
  EXPECT_FALSE(data.has_trace);
  EXPECT_TRUE(data.events.empty());
  EXPECT_EQ(RenderChromeTrace(data), ChromeTraceString(a.spans, nullptr, 4));
}

TEST(TraceIoTest, OfflineRegistryFromCsvMatchesInProcessRendering) {
  // Simulates fela-detok: a registry built *only* from the CSV form of
  // the global registry must reproduce the in-process bytes.
  Artifacts a;
  const std::string bytes = SerializeBinaryTrace(a.spans, &a.trace, 4);
  common::TokenRegistry offline;
  std::string error;
  ASSERT_TRUE(common::LoadTokenDbCsv(
      common::TokenDbCsv(common::TokenRegistry::Global()), &offline, &error))
      << error;
  BinaryTraceData data;
  ASSERT_TRUE(ParseBinaryTrace(bytes, &data, &error)) << error;
  EXPECT_EQ(RenderTraceText(data, &offline), a.trace.ToString());
  EXPECT_EQ(RenderChromeTrace(data, &offline),
            ChromeTraceString(a.spans, &a.trace, 4));
}

TEST(TraceIoTest, TruncatedStreamParsesWithEndOfStreamMarker) {
  Artifacts a;
  const std::string bytes = SerializeBinaryTrace(a.spans, &a.trace, 4);
  const std::string header(kBinaryTraceMagic);
  // Every cut from just-past-the-header to missing-trailer-byte parses,
  // reports truncation, and renders the explicit marker.
  for (const size_t cut : {header.size() + 5, bytes.size() / 2,
                           bytes.size() - kBinaryTraceTrailer.size(),
                           bytes.size() - 1}) {
    BinaryTraceData data;
    std::string error;
    ASSERT_TRUE(ParseBinaryTrace(bytes.substr(0, cut), &data, &error))
        << "cut=" << cut << ": " << error;
    EXPECT_TRUE(data.truncated) << "cut=" << cut;
    const std::string text = RenderTraceText(data);
    const std::string marker = "<truncated binary trace: end of stream>\n";
    ASSERT_GE(text.size(), marker.size()) << "cut=" << cut;
    EXPECT_EQ(text.substr(text.size() - marker.size()), marker)
        << "cut=" << cut;
  }
}

TEST(TraceIoTest, MalformedHeaderIsRejected) {
  BinaryTraceData data;
  std::string error;
  EXPECT_FALSE(ParseBinaryTrace("NOTAMAGICNUMBER", &data, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(ParseBinaryTrace("FELA", &data, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(ParseBinaryTrace("", &data, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace fela::obs
