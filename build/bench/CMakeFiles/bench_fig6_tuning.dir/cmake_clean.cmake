file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_tuning.dir/bench_fig6_tuning.cpp.o"
  "CMakeFiles/bench_fig6_tuning.dir/bench_fig6_tuning.cpp.o.d"
  "bench_fig6_tuning"
  "bench_fig6_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
