# Empty dependencies file for fela_common_tests.
# This may be replaced when dependencies are built.
