#include "core/tuning.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "model/zoo.h"

namespace fela::core {
namespace {

TEST(EnumerateWeightsTest, PaperTenCasesForM3N8) {
  // §IV-B: M=3, N=8 gives 4+3+2+1 = 10 candidate sequences.
  const auto cands = EnumerateWeightCandidates(3, 8);
  EXPECT_EQ(cands.size(), 10u);
  for (const auto& w : cands) {
    ASSERT_EQ(w.size(), 3u);
    EXPECT_EQ(w[0], 1);
    EXPECT_LE(w[1], w[2]);
  }
}

TEST(EnumerateWeightsTest, PaperCaseNumbering) {
  // Fig. 6 discussion: Case 2 is {1,1,4}, Case 9 is {1,8,8}.
  const auto cands = EnumerateWeightCandidates(3, 8);
  EXPECT_EQ(cands[2], (std::vector<int>{1, 1, 4}));
  EXPECT_EQ(cands[9], (std::vector<int>{1, 8, 8}));
  EXPECT_EQ(cands[0], (std::vector<int>{1, 1, 1}));
}

TEST(EnumerateWeightsTest, AllUnique) {
  const auto cands = EnumerateWeightCandidates(3, 8);
  std::set<std::vector<int>> unique(cands.begin(), cands.end());
  EXPECT_EQ(unique.size(), cands.size());
}

TEST(EnumerateWeightsTest, SingleSubModel) {
  const auto cands = EnumerateWeightCandidates(1, 8);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0], (std::vector<int>{1}));
}

TEST(EnumerateWeightsTest, TwoSubModelsFourWorkers) {
  // Candidates {1,2,4}: sequences {1,1},{1,2},{1,4} = 3.
  const auto cands = EnumerateWeightCandidates(2, 4);
  EXPECT_EQ(cands.size(), 3u);
}

TEST(EnumerateSubsetsTest, HalvingFromN) {
  // §IV-B Phase 2: 8, 4, 2, 1.
  EXPECT_EQ(EnumerateSubsetSizes(8), (std::vector<int>{8, 4, 2, 1}));
  EXPECT_EQ(EnumerateSubsetSizes(4), (std::vector<int>{4, 2, 1}));
  EXPECT_EQ(EnumerateSubsetSizes(1), (std::vector<int>{1}));
}

TEST(TuneConfigurationTest, ThirteenCasesTotal) {
  // 10 + 4 - 1 = 13 cases (§IV-B).
  int calls = 0;
  auto eval = [&calls](const FelaConfig&) {
    ++calls;
    return 1.0;
  };
  const TuningReport report = TuneConfiguration(3, 8, eval);
  EXPECT_EQ(calls, 13);
  EXPECT_EQ(report.cases.size(), 13u);
  int phase2 = 0;
  for (const auto& c : report.cases) {
    if (c.phase2) ++phase2;
  }
  EXPECT_EQ(phase2, 3);
}

TEST(TuneConfigurationTest, PicksGlobalBestOfGreedySearch) {
  // Synthetic landscape: weights {1,1,4} best in phase 1; subset 1 best
  // in phase 2 (the paper's batch-64 outcome: Case 2 then Case 12).
  auto eval = [](const FelaConfig& cfg) {
    double t = 10.0;
    if (cfg.weights == std::vector<int>{1, 1, 4}) t = 5.0;
    if (cfg.ctd_subset_size == 1) t -= 1.0;
    return t;
  };
  const TuningReport report = TuneConfiguration(3, 8, eval);
  EXPECT_EQ(report.best_config.weights, (std::vector<int>{1, 1, 4}));
  EXPECT_EQ(report.best_config.ctd_subset_size, 1);
  EXPECT_DOUBLE_EQ(report.best_seconds, 4.0);
  EXPECT_EQ(report.best_case_index, 12);
}

TEST(TuneConfigurationTest, GapsComputed) {
  auto eval = [](const FelaConfig& cfg) {
    // Phase 1 spread 4..13; phase 2 improves on the winner.
    double t = 4.0 + cfg.weights[1] + cfg.weights[2] / 2.0;
    if (cfg.ctd_subset_size < 8) t -= 0.5;
    return t;
  };
  const TuningReport report = TuneConfiguration(3, 8, eval);
  EXPECT_GT(report.phase1_gap, 0.0);
  EXPECT_GT(report.phase2_gap, 0.0);
  EXPECT_GE(report.overall_gap, report.phase1_gap);
  EXPECT_LE(report.overall_gap, 1.0);
}

TEST(TuneConfigurationTest, BestIsMinimumOfAllCases) {
  auto eval = [](const FelaConfig& cfg) {
    return 1.0 + 0.1 * cfg.weights[2] + 0.01 * cfg.ctd_subset_size;
  };
  const TuningReport report = TuneConfiguration(3, 8, eval);
  for (const auto& c : report.cases) {
    EXPECT_GE(c.per_iteration_seconds, report.best_seconds - 1e-12);
  }
}

TEST(TuneConfigurationTest, NormalizedSeriesInUnitInterval) {
  auto eval = [](const FelaConfig& cfg) {
    return 1.0 + cfg.weights[1] + cfg.ctd_subset_size * 0.1;
  };
  const TuningReport report = TuneConfiguration(3, 8, eval);
  const auto norm = report.NormalizedSeconds();
  ASSERT_EQ(norm.size(), 13u);
  double mn = 1e9, mx = -1e9;
  for (double v : norm) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_DOUBLE_EQ(mn, 0.0);
  EXPECT_DOUBLE_EQ(mx, 1.0);
}

TEST(TuneConfigurationTest, ReportToStringMarksBest) {
  auto eval = [](const FelaConfig&) { return 2.0; };
  const TuningReport report = TuneConfiguration(3, 8, eval);
  EXPECT_NE(report.ToString().find("<= best"), std::string::npos);
}

TEST(SimulatedEvaluatorTest, ReturnsPositiveIterationTime) {
  const auto eval =
      MakeSimulatedEvaluator(model::zoo::Vgg19(), 128, 8, /*iterations=*/2);
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  const double t = eval(cfg);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 100.0);
}

TEST(SimulatedEvaluatorTest, DeterministicAcrossCalls) {
  const auto eval =
      MakeSimulatedEvaluator(model::zoo::Vgg19(), 128, 8, 2);
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  EXPECT_DOUBLE_EQ(eval(cfg), eval(cfg));
}

TEST(SimulatedEvaluatorTest, StragglersRaiseIterationTime) {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  const auto clean =
      MakeSimulatedEvaluator(model::zoo::Vgg19(), 128, 8, 3);
  const auto slow = MakeSimulatedEvaluator(
      model::zoo::Vgg19(), 128, 8, 3, sim::Calibration::Default(),
      [](int n) { return std::make_unique<sim::RoundRobinStragglers>(n, 2.0); });
  EXPECT_GT(slow(cfg), clean(cfg));
}

}  // namespace
}  // namespace fela::core
