#include "core/tuning.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "core/fela_engine.h"
#include "runtime/cluster.h"

namespace fela::core {

std::vector<double> TuningReport::NormalizedSeconds() const {
  std::vector<double> values;
  values.reserve(cases.size());
  for (const auto& c : cases) values.push_back(c.per_iteration_seconds);
  return common::NormalizeToUnit(values);
}

std::string TuningReport::ToString() const {
  std::string out;
  for (const auto& c : cases) {
    out += common::StrFormat("Case %2d [%s]: %s -> %.4fs/iter%s\n",
                             c.case_index, c.phase2 ? "P2" : "P1",
                             c.config.ToString().c_str(),
                             c.per_iteration_seconds,
                             c.case_index == best_case_index ? "  <= best" : "");
  }
  out += common::StrFormat(
      "best=Case %d (%.4fs); gaps: phase1=%.2f%% phase2=%.2f%% overall=%.2f%%\n",
      best_case_index, best_seconds, phase1_gap * 100.0, phase2_gap * 100.0,
      overall_gap * 100.0);
  return out;
}

std::vector<std::vector<int>> EnumerateWeightCandidates(int num_sub_models,
                                                        int num_workers) {
  FELA_CHECK_GT(num_sub_models, 0);
  FELA_CHECK_GT(num_workers, 0);
  std::vector<int> values;
  for (int v = 1; v <= num_workers; v *= 2) values.push_back(v);

  std::vector<std::vector<int>> out;
  std::vector<int> current(static_cast<size_t>(num_sub_models), 1);
  // Depth-first enumeration of non-decreasing tails after w[0] = 1,
  // emitting in lexicographic order (the paper's case numbering).
  std::function<void(int, int)> rec = [&](int pos, int min_value) {
    if (pos == num_sub_models) {
      out.push_back(current);
      return;
    }
    for (int v : values) {
      if (v < min_value) continue;
      current[static_cast<size_t>(pos)] = v;
      rec(pos + 1, v);
    }
  };
  if (num_sub_models == 1) {
    out.push_back(current);
  } else {
    rec(1, 1);
  }
  return out;
}

std::vector<int> EnumerateSubsetSizes(int num_workers) {
  std::vector<int> out;
  for (int s = num_workers; s >= 1; s /= 2) out.push_back(s);
  return out;
}

TuningReport TuneConfiguration(int num_sub_models, int num_workers,
                               const ConfigEvaluator& evaluator) {
  TuningReport report;
  int case_index = 0;

  // Phase 1: parallelism-degree tuning (subset = N, i.e. no CTD).
  double phase1_best = 0.0;
  double phase1_worst = 0.0;
  FelaConfig phase1_best_config;
  int phase1_best_case = 0;
  for (const auto& weights : EnumerateWeightCandidates(num_sub_models,
                                                       num_workers)) {
    FelaConfig cfg = FelaConfig::Defaults(num_sub_models, num_workers);
    cfg.weights = weights;
    const double t = evaluator(cfg);
    report.cases.push_back(TuningCase{case_index, cfg, t, false});
    if (case_index == 0 || t < phase1_best) {
      phase1_best = t;
      phase1_best_config = cfg;
      phase1_best_case = case_index;
    }
    phase1_worst = std::max(phase1_worst, t);
    ++case_index;
  }

  // Phase 2: conditional subset tuning on top of the Phase-1 winner. The
  // subset = N case is the Phase-1 winner itself (10 + 4 - 1 cases).
  double phase2_best = phase1_best;
  double phase2_worst = phase1_best;
  FelaConfig best_config = phase1_best_config;
  int best_case = phase1_best_case;
  for (int subset : EnumerateSubsetSizes(num_workers)) {
    if (subset == num_workers) continue;  // already measured in Phase 1
    FelaConfig cfg = phase1_best_config;
    cfg.ctd_subset_size = subset;
    const double t = evaluator(cfg);
    report.cases.push_back(TuningCase{case_index, cfg, t, true});
    if (t < phase2_best) {
      phase2_best = t;
      best_config = cfg;
      best_case = case_index;
    }
    phase2_worst = std::max(phase2_worst, t);
    ++case_index;
  }

  report.best_config = best_config;
  report.best_case_index = best_case;
  report.best_seconds = phase2_best;
  report.phase1_gap =
      phase1_worst > 0.0 ? (phase1_worst - phase1_best) / phase1_worst : 0.0;
  report.phase2_gap =
      phase2_worst > 0.0 ? (phase2_worst - phase2_best) / phase2_worst : 0.0;
  double overall_worst = 0.0;
  for (const auto& c : report.cases) {
    overall_worst = std::max(overall_worst, c.per_iteration_seconds);
  }
  report.overall_gap = overall_worst > 0.0
                           ? (overall_worst - phase2_best) / overall_worst
                           : 0.0;
  return report;
}

ConfigEvaluator MakeSimulatedEvaluator(const model::Model& model,
                                       double total_batch, int num_workers,
                                       int iterations,
                                       const sim::Calibration& cal,
                                       WarmupStragglerFactory stragglers) {
  return MakeSimulatedEvaluator(
      model,
      model::BinPartitioner().Partition(model,
                                        model::ProfileRepository::Default()),
      total_batch, num_workers, iterations, cal, std::move(stragglers));
}

ConfigEvaluator MakeSimulatedEvaluator(const model::Model& model,
                                       std::vector<model::SubModel> sub_models,
                                       double total_batch, int num_workers,
                                       int iterations,
                                       const sim::Calibration& cal,
                                       WarmupStragglerFactory stragglers) {
  // Copy the model and partition; the evaluator outlives the caller.
  return [model, sub_models = std::move(sub_models), total_batch, num_workers,
          iterations, cal, stragglers](const FelaConfig& cfg) {
    std::unique_ptr<sim::StragglerSchedule> schedule =
        stragglers ? stragglers(num_workers)
                   : std::make_unique<sim::NoStragglers>();
    runtime::Cluster cluster(num_workers, cal, std::move(schedule));
    FelaEngine engine(&cluster, model, sub_models, cfg, total_batch);
    const runtime::RunStats stats = engine.Run(iterations);
    return stats.MeanIterationSeconds();
  };
}

}  // namespace fela::core
