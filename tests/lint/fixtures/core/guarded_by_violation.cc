// fela-lint fixture: the guarded-by rule must fire exactly once, on
// line 13 (Peek reads hits_ with no lock). The three sibling accessors
// prove the negatives: a lock_guard on mu_, a FELA_REQUIRES(mu_)
// signature, and an explicit suppression each keep the rule quiet.
#include <mutex>

#include "common/annotations.h"

namespace fela::fixture {

class GuardedCounter {
 public:
  int Peek() const { return hits_; }

  int PeekLocked() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }

  int PeekHeld() const FELA_REQUIRES(mu_) { return hits_; }

  int PeekRacy() const {
    // fela-lint: allow(guarded-by): fixture: monitoring read tolerates a
    // torn value
    return hits_;
  }

 private:
  mutable std::mutex mu_;
  int hits_ FELA_GUARDED_BY(mu_) = 0;
};

}  // namespace fela::fixture
