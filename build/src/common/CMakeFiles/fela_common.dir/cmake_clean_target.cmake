file(REMOVE_RECURSE
  "libfela_common.a"
)
