// Figure 1: training throughput vs batch size for three layer shapes on
// one simulated K40c — the flexible-parallelism motivation experiment.
//
//   (a) CONV (64,64,224,224)  — saturates around batch 16
//   (b) CONV (512,512,14,14)  — saturates around batch 64
//   (c) FC (4096,4096)        — saturates around batch 2048

#include <cstdio>
#include <iostream>
#include <iterator>

#include "bench_util.h"
#include "common/string_util.h"
#include "model/cost_model.h"

int main(int argc, char** argv) {
  using namespace fela;
  const bench::BenchOptions opts = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader(
      "Figure 1: Training throughput with different batch sizes");

  const model::LayerCostModel cost(sim::Calibration::Default(),
                                   &model::ProfileRepository::Default());
  struct Panel {
    const char* label;
    model::Layer layer;
    double max_batch;
  };
  const Panel panels[] = {
      {"(a) CONV layer (64,64,224,224)",
       model::Layer::Conv("conv", 64, 64, 224, 224), 256},
      {"(b) CONV layer (512,512,14,14)",
       model::Layer::Conv("conv", 512, 512, 14, 14), 512},
      {"(c) FC layer (4096,4096)", model::Layer::Fc("fc", 4096, 4096), 4096},
  };

  // Each panel's saturation sweep is independent; stage the three on
  // the sweep runner and print in panel order (bytes match any --jobs).
  struct PanelResult {
    std::vector<model::ThroughputPoint> sweep;
    double threshold = 0.0;
  };
  std::vector<PanelResult> results(std::size(panels));
  runtime::SweepRunner runner = opts.Runner();
  for (size_t i = 0; i < results.size(); ++i) {
    runner.Add([&cost, &panels, &results, i] {
      const Panel& p = panels[i];
      results[i].sweep = cost.SweepThroughput(p.layer, p.max_batch);
      results[i].threshold = cost.MeasureThresholdBatch(p.layer, p.max_batch);
    });
  }
  runner.RunAll();

  for (size_t i = 0; i < results.size(); ++i) {
    const Panel& p = panels[i];
    std::printf("\n%s\n", p.label);
    common::TablePrinter table({"batch", "throughput (samples/s)",
                                "of peak"});
    const auto& sweep = results[i].sweep;
    double peak = 0.0;
    for (const auto& pt : sweep) peak = std::max(peak, pt.samples_per_sec);
    for (const auto& pt : sweep) {
      table.AddRow({common::TablePrinter::Num(pt.batch, 0),
                    common::TablePrinter::Num(pt.samples_per_sec, 1),
                    common::TablePrinter::Percent(pt.samples_per_sec / peak)});
    }
    table.Print(std::cout);
    std::printf("measured threshold batch (95%% of peak): %.0f\n",
                results[i].threshold);
  }
  std::printf(
      "\nPaper reference: thresholds 16 / 64 / 2048 for panels a/b/c.\n");
  return bench::VerifyRenderDeterminism(opts, "fig1", [&cost] {
    std::string out;
    const model::Layer fc = model::Layer::Fc("fc", 4096, 4096);
    for (const auto& pt : cost.SweepThroughput(fc, 4096)) {
      out += common::StrFormat("%.17g:%.17g\n", pt.batch, pt.samples_per_sec);
    }
    return out;
  });
}
