// fela-lint's own test suite: every rule fires on its fixture at the
// documented line, suppressions silence it, the CLI exit codes follow
// the 0/1/2 contract, and the real src/ tree scan is representable.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/json.h"
#include "lint/lint.h"

namespace fela::lint {
namespace {

#ifndef FELA_LINT_FIXTURE_DIR
#error "build must define FELA_LINT_FIXTURE_DIR"
#endif

const char* const kFixtureDir = FELA_LINT_FIXTURE_DIR;

std::vector<Finding> LintFixtures() {
  std::vector<Finding> findings;
  std::string error;
  EXPECT_TRUE(LintTree({kFixtureDir}, Options{}, &findings, &error)) << error;
  return findings;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

const Finding* FindInFile(const std::vector<Finding>& findings,
                          const char* file_suffix) {
  const auto it =
      std::find_if(findings.begin(), findings.end(),
                   [&](const Finding& f) { return EndsWith(f.file,
                                                           file_suffix); });
  return it == findings.end() ? nullptr : &*it;
}

TEST(LintRulesTest, EveryRuleFiresExactlyOnceOnItsFixture) {
  const std::vector<Finding> findings = LintFixtures();
  ASSERT_EQ(findings.size(), 9u);

  struct Expected {
    const char* rule;
    const char* file_suffix;
    int line;
  };
  const Expected expected[] = {
      {"wall-clock", "core/wall_clock_violation.cc", 6},
      {"unseeded-rng", "core/unseeded_rng_violation.cc", 6},
      {"unordered-iter", "core/unordered_iter_violation.cc", 10},
      {"unordered-iter", "core/cross_header_member_violation.cc", 9},
      {"unordered-iter", "core/local_unordered_violation.cc", 12},
      {"discarded-status", "core/discarded_status_violation.cc", 9},
      {"float-eq", "core/float_eq_violation.cc", 6},
      {"untraced-event", "core/untraced_event_violation.cc", 11},
      {"untokenized-trace", "core/untokenized_trace_violation.cc", 11},
  };
  for (const Expected& e : expected) {
    const Finding* f = FindInFile(findings, e.file_suffix);
    ASSERT_NE(f, nullptr) << e.file_suffix << " produced no finding";
    EXPECT_EQ(f->rule, e.rule) << e.file_suffix;
    EXPECT_EQ(f->line, e.line) << e.file_suffix;
  }
}

TEST(LintRulesTest, SuppressedFixtureIsClean) {
  std::vector<Finding> findings;
  std::string error;
  ASSERT_TRUE(LintTree({std::string(kFixtureDir) + "/core/suppressed.cc"},
                       Options{}, &findings, &error))
      << error;
  EXPECT_TRUE(findings.empty())
      << findings.size() << " finding(s), first: " << findings[0].rule;
}

TEST(LintRulesTest, RuleFilterRestrictsFindings) {
  Options options;
  options.rules.insert("float-eq");
  std::vector<Finding> findings;
  std::string error;
  ASSERT_TRUE(LintTree({kFixtureDir}, options, &findings, &error)) << error;
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "float-eq");
}

TEST(LintRulesTest, FindingsAreSortedByFileLineRule) {
  const std::vector<Finding> findings = LintFixtures();
  for (size_t i = 1; i < findings.size(); ++i) {
    EXPECT_LE(std::tie(findings[i - 1].file, findings[i - 1].line),
              std::tie(findings[i].file, findings[i].line));
  }
}

TEST(LintFileTest, SameLineSuppressionOnlyCoversNamedRule) {
  const std::string path = "src/core/synthetic.cc";
  const std::string src =
      "namespace f {\n"
      "bool Cmp(double a, double b) {\n"
      "  return a == b;  // fela-lint: allow(wall-clock) wrong rule\n"
      "}\n"
      "}\n";
  const std::vector<Finding> findings = LintFile(path, src, Options{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "float-eq");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintFileTest, PatternsInsideStringsAndCommentsDoNotFire) {
  const std::string path = "src/sim/synthetic.cc";
  const std::string src =
      "namespace f {\n"
      "// rand() and system_clock in a comment are fine\n"
      "const char* kMsg = \"rand() system_clock mt19937\";\n"
      "/* block comment: random_device */\n"
      "}\n";
  EXPECT_TRUE(LintFile(path, src, Options{}).empty());
}

TEST(LintFileTest, ScopingLimitsSimRulesToSimPaths) {
  // The same float comparison: flagged under src/core, ignored in a
  // bench file (sim-scoped rules only apply to sim|core|baselines|runtime).
  const std::string src =
      "namespace f {\n"
      "bool Cmp(double a, double b) { return a == b; }\n"
      "}\n";
  EXPECT_EQ(LintFile("src/core/x.cc", src, Options{}).size(), 1u);
  EXPECT_TRUE(LintFile("bench/x.cc", src, Options{}).empty());
}

TEST(LintFileTest, SeededRngClassIsNotFlagged) {
  const std::string src =
      "#include \"common/rng.h\"\n"
      "namespace f {\n"
      "double Draw(fela::common::Rng& rng) { return rng.Uniform(); }\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/sim/x.cc", src, Options{}).empty());
}

TEST(LintFileTest, NullptrComparisonAgainstFloatNameIsNotFlagged) {
  const std::string src =
      "namespace f {\n"
      "bool Check(const double* p) { return p != nullptr; }\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/sim/x.cc", src, Options{}).empty());
}

TEST(LintFileTest, UntokenizedTraceAnchorsOnMemberCallsOnly) {
  // A raw string at a member Emit() call fires; the same detail routed
  // through FELA_TOK is clean, and an Emit *declaration* never anchors.
  const std::string bad =
      "namespace f {\n"
      "void E(SpanSink* s) { s->Emit(Span{0, \"w\"}); }\n"
      "}\n";
  const std::vector<Finding> findings =
      LintFile("src/sim/x.cc", bad, Options{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "untokenized-trace");
  EXPECT_EQ(findings[0].line, 2);

  const std::string ok =
      "namespace f {\n"
      "void Emit(const char* detail);\n"
      "void E(SpanSink* s) { s->Emit(Span{0, FELA_TOK(\"w\")}); }\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/sim/x.cc", ok, Options{}).empty());
}

TEST(LintJsonTest, JsonReportParsesAndMatchesFindings) {
  const std::vector<Finding> findings = LintFixtures();
  const std::string json = FindingsToJson(findings);
  common::Json doc;
  std::string error;
  ASSERT_TRUE(common::Json::Parse(json, &doc, &error)) << error;
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.Find("count"), nullptr);
  EXPECT_EQ(static_cast<size_t>(doc.Find("count")->number_value()),
            findings.size());
  ASSERT_NE(doc.Find("findings"), nullptr);
  ASSERT_EQ(doc.Find("findings")->size(), findings.size());
  const common::Json& first = doc.Find("findings")->at(0);
  EXPECT_EQ(first.Find("rule")->string_value(), findings[0].rule);
  EXPECT_EQ(static_cast<int>(first.Find("line")->number_value()),
            findings[0].line);
}

TEST(LintCliTest, ExitCodesFollowContract) {
  std::ostringstream out;
  std::ostringstream err;
  // 1: findings reported.
  EXPECT_EQ(RunCli({kFixtureDir}, out, err), 1);
  // 0: clean tree (the suppressed fixture alone).
  EXPECT_EQ(RunCli({std::string(kFixtureDir) + "/core/suppressed.cc"}, out,
                   err),
            0);
  // 0: --list-rules.
  EXPECT_EQ(RunCli({"--list-rules"}, out, err), 0);
  // 2: no paths.
  EXPECT_EQ(RunCli({}, out, err), 2);
  // 2: unknown rule / unknown format / unknown flag / unreadable path.
  EXPECT_EQ(RunCli({"--rules=bogus", kFixtureDir}, out, err), 2);
  EXPECT_EQ(RunCli({"--format=xml", kFixtureDir}, out, err), 2);
  EXPECT_EQ(RunCli({"--frobnicate", kFixtureDir}, out, err), 2);
  EXPECT_EQ(RunCli({"/nonexistent/fela/path"}, out, err), 2);
}

TEST(LintCliTest, TableOutputNamesEveryRule) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(RunCli({"--format=table", kFixtureDir}, out, err), 1);
  const std::string table = out.str();
  for (const RuleInfo& r : Rules()) {
    EXPECT_NE(table.find(r.id), std::string::npos) << r.id;
  }
  EXPECT_NE(table.find("9 finding(s)"), std::string::npos);
}

TEST(LintCliTest, ListRulesCoversEveryRule) {
  std::ostringstream out;
  std::ostringstream err;
  ASSERT_EQ(RunCli({"--list-rules"}, out, err), 0);
  EXPECT_EQ(Rules().size(), 7u);
  for (const RuleInfo& r : Rules()) {
    EXPECT_NE(out.str().find(r.id), std::string::npos) << r.id;
    EXPECT_TRUE(IsKnownRule(r.id));
  }
  EXPECT_FALSE(IsKnownRule("not-a-rule"));
}

}  // namespace
}  // namespace fela::lint
