file(REMOVE_RECURSE
  "libfela_sim.a"
)
