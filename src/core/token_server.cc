#include "core/token_server.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/string_util.h"

namespace fela::core {

namespace {

// Mutation-canary state (see SetTokenServerMutationForTesting). Process
// globals, not members: the canary must survive engine construction so a
// test can arm it before the run it wants to poison.
bool g_mutation_enabled = false;
uint64_t g_mutation_report_count = 0;

}  // namespace

void SetTokenServerMutationForTesting(bool enabled) {
  g_mutation_enabled = enabled;
  g_mutation_report_count = 0;
}

bool TokenServerMutationForTesting() { return g_mutation_enabled; }

TokenServer::Stats& TokenServer::Stats::operator+=(const Stats& other) {
  grants += other.grants;
  steals += other.steals;
  conflicts += other.conflicts;
  enqueued_waits += other.enqueued_waits;
  conflict_delay_total += other.conflict_delay_total;
  remote_dep_fetches += other.remote_dep_fetches;
  local_dep_hits += other.local_dep_hits;
  completions += other.completions;
  tokens_reclaimed += other.tokens_reclaimed;
  lease_expirations += other.lease_expirations;
  regrants += other.regrants;
  duplicate_reports += other.duplicate_reports;
  stale_reports += other.stale_reports;
  redundant_requests += other.redundant_requests;
  leases_restored += other.leases_restored;
  return *this;
}

TokenServer::TokenServer(sim::Simulator* sim, const sim::Calibration* cal,
                         const FelaPlan* plan, const FelaConfig* config,
                         Callbacks cbs)
    : sim_(sim), cal_(cal), plan_(plan), config_(config), cbs_(std::move(cbs)) {
  FELA_CHECK(sim != nullptr && cal != nullptr && plan != nullptr &&
             config != nullptr);
  FELA_CHECK_GT(plan_->num_levels(), 0);
  stbs_.resize(hf() ? static_cast<size_t>(num_workers()) : 1);
  waiting_.assign(static_cast<size_t>(num_workers()), false);
  helping_.assign(static_cast<size_t>(num_workers()), -1);
  helper_count_.assign(static_cast<size_t>(num_workers()), 0);
  outstanding_.assign(static_cast<size_t>(num_workers()), kInvalidTokenId);
  down_.assign(static_cast<size_t>(num_workers()), false);
}

void TokenServer::BeginIteration(int iteration) {
  iteration_ = iteration;
  info_.Reset();
  for (auto& b : stbs_) b.Clear();
  pending_.assign(static_cast<size_t>(plan_->num_levels()),
                  std::vector<std::deque<TokenDep>>(
                      hf() ? static_cast<size_t>(num_workers()) : 1));
  completed_count_.assign(static_cast<size_t>(plan_->num_levels()), 0);
  generated_count_.assign(static_cast<size_t>(plan_->num_levels()), 0);
  std::fill(helping_.begin(), helping_.end(), -1);
  std::fill(helper_count_.begin(), helper_count_.end(), 0);
  lock_free_at_ = 0.0;
  all_done_announced_ = false;

  // The iteration's T-1 tokens, sharded round-robin: token i's training
  // samples live on worker (i mod N), and with HF that worker's STB owns
  // the token. Crashed workers are skipped — their sample shards are
  // re-read from the surviving replicas — unless the whole cluster is
  // down, in which case the clean layout is kept for whoever recovers.
  std::vector<sim::NodeId> homes;
  for (sim::NodeId w = 0; w < num_workers(); ++w) {
    if (!down_[static_cast<size_t>(w)]) homes.push_back(w);
  }
  if (homes.empty()) {
    for (sim::NodeId w = 0; w < num_workers(); ++w) homes.push_back(w);
  }
  const LevelPlan& l0 = plan_->level(0);
  generated_count_[0] = l0.token_count;
  for (int i = 0; i < l0.token_count; ++i) {
    Token t;
    t.id = next_token_id_++;
    t.level = 0;
    t.iteration = iteration;
    t.batch = l0.token_batch;
    t.sample_home = homes[static_cast<size_t>(i) % homes.size()];
    const size_t bucket = hf() ? static_cast<size_t>(t.sample_home) : 0;
    stbs_[bucket].Add(std::move(t));
  }
  // Requests that were still in flight (or queued) when the previous
  // iteration turned over are valid for this one.
  ServeWaiters();
}

bool TokenServer::AllLevelsComplete() const {
  for (int l = 0; l < plan_->num_levels(); ++l) {
    if (completed_count_[static_cast<size_t>(l)] <
        plan_->level(l).token_count) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> TokenServer::CheckInvariants() const {
  std::vector<std::string> out;
  const uint64_t live = static_cast<uint64_t>(leases_.size());
  if (stats_.grants + stats_.leases_restored !=
      stats_.completions + stats_.tokens_reclaimed + live) {
    out.push_back(common::StrFormat(
        "token conservation violated: grants=%llu + restored=%llu != "
        "completions=%llu + reclaimed=%llu + live_leases=%llu",
        static_cast<unsigned long long>(stats_.grants),
        static_cast<unsigned long long>(stats_.leases_restored),
        static_cast<unsigned long long>(stats_.completions),
        static_cast<unsigned long long>(stats_.tokens_reclaimed),
        static_cast<unsigned long long>(live)));
  }
  // A restored incarnation may re-grant bucket tokens whose reclaim was
  // counted by a previous incarnation (attempt > 0 survives the
  // checkpoint — even when the checkpoint held no live leases), so
  // regrants <= reclaimed only binds for never-restored incarnations.
  if (!restored_from_checkpoint_ &&
      stats_.regrants > stats_.tokens_reclaimed) {
    out.push_back(common::StrFormat(
        "regrants without reclaim: regrants=%llu > reclaimed=%llu",
        static_cast<unsigned long long>(stats_.regrants),
        static_cast<unsigned long long>(stats_.tokens_reclaimed)));
  }
  if (stats_.lease_expirations > stats_.tokens_reclaimed) {
    out.push_back(common::StrFormat(
        "expirations exceed reclaims: expirations=%llu > reclaimed=%llu",
        static_cast<unsigned long long>(stats_.lease_expirations),
        static_cast<unsigned long long>(stats_.tokens_reclaimed)));
  }
  if (stats_.steals > stats_.grants) {
    out.push_back(common::StrFormat(
        "steals exceed grants: steals=%llu > grants=%llu",
        static_cast<unsigned long long>(stats_.steals),
        static_cast<unsigned long long>(stats_.grants)));
  }
  for (int l = 0; l < plan_->num_levels(); ++l) {
    const int cap = plan_->level(l).token_count;
    if (completed_count_[static_cast<size_t>(l)] > cap) {
      out.push_back(common::StrFormat(
          "level %d over-completed: %d completions for %d tokens", l,
          completed_count_[static_cast<size_t>(l)], cap));
    }
    if (generated_count_[static_cast<size_t>(l)] > cap) {
      out.push_back(common::StrFormat(
          "level %d over-generated: %d generated for %d planned", l,
          generated_count_[static_cast<size_t>(l)], cap));
    }
  }
  // Outstanding grants and live leases are two views of the same set.
  uint64_t outstanding_live = 0;
  for (sim::NodeId w = 0; w < num_workers(); ++w) {
    const TokenId id = outstanding_[static_cast<size_t>(w)];
    if (id == kInvalidTokenId) continue;
    ++outstanding_live;
    if (leases_.find(id) == leases_.end()) {
      out.push_back(common::StrFormat(
          "worker %d holds token %llu with no lease record", w,
          static_cast<unsigned long long>(id)));
    }
  }
  if (outstanding_live != live) {
    out.push_back(common::StrFormat(
        "lease ledger mismatch: %llu outstanding grants vs %llu leases",
        static_cast<unsigned long long>(outstanding_live),
        static_cast<unsigned long long>(live)));
  }
  // No token is ever double-granted: a token id lives in at most one
  // place — one bucket slot or one lease, never both, never twice. This
  // is the structural half of the failover-safety oracle (a restore that
  // duplicated a token would trip it).
  std::map<TokenId, int> seen;
  for (const TokenBucket& b : stbs_) {
    for (const Token& t : b.Snapshot()) ++seen[t.id];
  }
  for (const auto& [id, lease] : leases_) ++seen[id];
  for (const auto& [id, count] : seen) {
    if (count > 1) {
      out.push_back(common::StrFormat(
          "token %llu is schedulable/leased in %d places at once",
          static_cast<unsigned long long>(id), count));
    }
  }
  return out;
}

TokenServer::Checkpoint TokenServer::MakeCheckpoint() const {
  Checkpoint cp;
  cp.valid = true;
  cp.taken_at = sim_->now();
  cp.iteration = iteration_;
  cp.next_token_id = next_token_id_;
  cp.all_done_announced = all_done_announced_;
  cp.info = info_;
  cp.buckets.reserve(stbs_.size());
  for (const TokenBucket& b : stbs_) cp.buckets.push_back(b.Snapshot());
  cp.pending = pending_;
  cp.completed_count = completed_count_;
  cp.generated_count = generated_count_;
  cp.waiters = waiters_;
  cp.waiting = waiting_;
  cp.helping = helping_;
  cp.helper_count = helper_count_;
  // leases_ iterates in sorted key order (a flat sorted vector), so the
  // lease list is deterministic.
  cp.leases.reserve(leases_.size());
  for (const auto& [id, lease] : leases_) {
    cp.leases.emplace_back(lease.token, lease.worker);
  }
  return cp;
}

void TokenServer::Restore(const Checkpoint& cp,
                          const std::vector<bool>& down_now) {
  FELA_CHECK(cp.valid);
  FELA_CHECK(leases_.empty()) << "Restore requires a fresh server";
  restored_from_checkpoint_ = true;
  iteration_ = cp.iteration;
  next_token_id_ = cp.next_token_id;
  all_done_announced_ = cp.all_done_announced;
  info_ = cp.info;
  FELA_CHECK_EQ(cp.buckets.size(), stbs_.size());
  for (size_t i = 0; i < stbs_.size(); ++i) {
    stbs_[i].Clear();
    for (const Token& t : cp.buckets[i]) stbs_[i].Add(t);
  }
  pending_ = cp.pending;
  completed_count_ = cp.completed_count;
  generated_count_ = cp.generated_count;
  waiters_ = cp.waiters;
  waiting_ = cp.waiting;
  helping_ = cp.helping;
  helper_count_ = cp.helper_count;
  lock_free_at_ = 0.0;
  std::fill(down_.begin(), down_.end(), false);
  // Replay what the leases imply: the checkpointed holders are presumed
  // still computing, so their grants stay live with fresh deadlines. A
  // holder that finished meanwhile reports and completes normally; one
  // that lost its grant in the failover window goes silent and the
  // re-armed expiry reclaims the token.
  const sim::SimTime now = sim_->now();
  for (const auto& [token, worker] : cp.leases) {
    const TokenId id = token.id;
    Lease lease;
    lease.token = token;
    lease.worker = worker;
    if (leases_enabled_) {
      // fela-lint: allow(untraced-event): expiry traces as kTokenReclaim
      // when the lease actually fires; re-arming it is silent by design.
      lease.timer = sim_->ScheduleAt(now + config_->lease_timeout_sec,
                                     [this, id] { OnLeaseExpired(id); });
    }
    outstanding_[static_cast<size_t>(worker)] = id;
    leases_[id] = std::move(lease);
    ++stats_.leases_restored;
  }
  // Apply the present down/cut picture (reclaims leases of dead holders),
  // then serve whoever was waiting.
  for (sim::NodeId w = 0; w < num_workers(); ++w) {
    if (down_now[static_cast<size_t>(w)]) SetWorkerDown(w, true);
  }
  ServeWaiters();
}

void TokenServer::FinalizeForFailover() {
  for (auto& [id, lease] : leases_) {
    if (lease.timer != sim::kInvalidEventId) sim_->Cancel(lease.timer);
    outstanding_[static_cast<size_t>(lease.worker)] = kInvalidTokenId;
    // The work in flight dies with this incarnation; counting it as
    // reclaimed closes the ledger exactly (no callbacks — the standby
    // replays from the checkpoint, not from this state).
    ++stats_.tokens_reclaimed;
  }
  leases_.clear();
}

size_t TokenServer::PendingTokenCount() const {
  size_t n = 0;
  for (const auto& b : stbs_) n += b.size();
  return n;
}

double TokenServer::AcquireLock() {
  const sim::SimTime now = sim_->now();
  const sim::SimTime serve = std::max(now, lock_free_at_);
  double delay = serve - now;
  const bool conflicted = lock_free_at_ > now;
  lock_free_at_ = serve + cal_->ts_service_time_sec;
  if (conflicted) {
    // Fetching failure: the token this worker raced for went to another
    // worker; the distributor rolls back and re-distributes (§III-E).
    delay += cal_->fetch_conflict_penalty_sec;
    ++stats_.conflicts;
    stats_.conflict_delay_total += delay;
  }
  if (spans_ != nullptr && spans_->enabled() && delay > 0.0) {
    // The wait + conflict penalty shows on the token-server track; the
    // requester's own track sees it inside its token-wait span.
    spans_->Emit(obs::Span{
        num_workers(), obs::Phase::kTokenWait, now, now + delay, iteration_,
        conflicted ? common::TokenizedDetail(FELA_TOK("lock conflict"))
                   : common::TokenizedDetail(FELA_TOK("lock wait"))});
  }
  return delay;
}

sim::NodeId TokenServer::ChooseVictim(sim::NodeId thief,
                                      const std::vector<int>& order) const {
  // "New helpers will be prioritized to assist the straggler with the
  // least helpers and the slowest progress" — progress proxied by tokens
  // remaining in the victim's STB (more remaining = slower).
  sim::NodeId best = -1;
  int best_helpers = 0;
  size_t best_remaining = 0;
  for (sim::NodeId v = 0; v < num_workers(); ++v) {
    if (v == thief) continue;
    const TokenBucket& b = stbs_[static_cast<size_t>(v)];
    if (!b.HasTokenForOrder(order)) continue;
    const int helpers = helper_count_[static_cast<size_t>(v)];
    const size_t remaining = b.size();
    if (best < 0 || helpers < best_helpers ||
        (helpers == best_helpers && remaining > best_remaining)) {
      best = v;
      best_helpers = helpers;
      best_remaining = remaining;
    }
  }
  return best;
}

std::optional<Token> TokenServer::TakeFor(sim::NodeId worker, bool* stolen,
                                          double* extra_delay) {
  *stolen = false;
  *extra_delay = 0.0;
  // CTD liveness valve: workers outside S never see communication-
  // intensive levels, so if every subset worker is down those tokens
  // have no eligible taker and the iteration wedges on processes that
  // may never return. While S is entirely down, relax the scoping and
  // let the survivors drain comm tokens; the scoping resumes as soon as
  // any subset worker comes back up.
  bool ctd_relaxed = CtdActive();
  for (int w = 0; ctd_relaxed && w < config_->ctd_subset_size; ++w) {
    if (!down_[static_cast<size_t>(w)]) ctd_relaxed = false;
  }
  const std::vector<int> order =
      LevelPriorityFor(worker, *config_, *plan_, ctd_relaxed);
  if (order.empty()) return std::nullopt;
  const bool use_locality = config_->ads_enabled;

  if (!hf()) {
    // Single Token Bucket: every distribution serializes on the lock.
    if (!stbs_[0].HasTokenForOrder(order)) return std::nullopt;
    *extra_delay = AcquireLock();
    return stbs_[0].Take(worker, info_, order, use_locality);
  }

  TokenBucket& own = stbs_[static_cast<size_t>(worker)];

  // CTD: subset workers hunt communication-intensive tokens cluster-wide
  // before anything else (their priority is T-comm > rest, §III-F).
  if (CtdActive() && worker < config_->ctd_subset_size) {
    std::vector<int> comm_order;
    for (int l : order) {
      if (plan_->level(l).communication_intensive) comm_order.push_back(l);
    }
    if (!comm_order.empty()) {
      if (own.HasTokenForOrder(comm_order)) {
        return own.Take(worker, info_, comm_order, use_locality);
      }
      const sim::NodeId victim = ChooseVictim(worker, comm_order);
      if (victim >= 0) {
        *stolen = true;
        *extra_delay = AcquireLock();
        return stbs_[static_cast<size_t>(victim)].Take(worker, info_,
                                                       comm_order,
                                                       use_locality);
      }
    }
  }

  // Own STB first: conflict-free, no locking (§III-E target 1).
  if (own.HasTokenForOrder(order)) {
    return own.Take(worker, info_, order, use_locality);
  }

  // Helper mode: steal from the neediest straggler, under the lock.
  const sim::NodeId victim = ChooseVictim(worker, order);
  if (victim < 0) return std::nullopt;
  *stolen = true;
  *extra_delay = AcquireLock();
  std::optional<Token> token =
      stbs_[static_cast<size_t>(victim)].Take(worker, info_, order,
                                              use_locality);
  if (token.has_value()) {
    // Re-point this helper at its new victim.
    const sim::NodeId prev = helping_[static_cast<size_t>(worker)];
    if (prev >= 0) --helper_count_[static_cast<size_t>(prev)];
    helping_[static_cast<size_t>(worker)] = victim;
    ++helper_count_[static_cast<size_t>(victim)];
  }
  return token;
}

Grant TokenServer::MakeGrant(Token token, sim::NodeId worker, bool stolen,
                             double delay) {
  Grant grant;
  grant.stolen = stolen;
  grant.extra_delay = delay;
  if (token.level == 0) {
    if (token.sample_home >= 0 && token.sample_home != worker) {
      grant.remote_fetches.emplace_back(
          token.sample_home,
          plan_->level(0).sample_bytes_per_sample * token.batch);
      ++stats_.remote_dep_fetches;
    } else {
      ++stats_.local_dep_hits;
    }
  } else {
    const double per_sample = plan_->level(token.level).dep_bytes_per_sample;
    for (const TokenDep& dep : token.deps) {
      const sim::NodeId holder = info_.HolderOf(dep.id);
      FELA_CHECK_GE(holder, 0) << "dependency " << dep.id << " not completed";
      if (holder == worker) {
        ++stats_.local_dep_hits;
        continue;
      }
      grant.remote_fetches.emplace_back(holder, per_sample * dep.batch);
      ++stats_.remote_dep_fetches;
    }
  }
  info_.RecordAssigned(token.id, worker);
  grant.token = std::move(token);
  return grant;
}

bool TokenServer::TryGrant(sim::NodeId worker) {
  // No grants to crashed workers, and at most one live grant per worker
  // — a second grant while one is outstanding could only mean the first
  // was lost, which the lease expiry path recovers.
  if (down_[static_cast<size_t>(worker)] ||
      outstanding_[static_cast<size_t>(worker)] != kInvalidTokenId) {
    return false;
  }
  bool stolen = false;
  double delay = 0.0;
  std::optional<Token> token = TakeFor(worker, &stolen, &delay);
  if (!token.has_value()) return false;
  ++stats_.grants;
  if (stolen) ++stats_.steals;
  if (token->attempt > 0) ++stats_.regrants;
  Grant grant = MakeGrant(std::move(*token), worker, stolen, delay);
  const TokenId id = grant.token.id;
  outstanding_[static_cast<size_t>(worker)] = id;
  // The lease record always exists (SetWorkerDown reclaims through it);
  // the expiry timer is only armed when leasing is on, so fault-free
  // runs schedule no extra events and replay bit-identically.
  Lease lease;
  lease.token = grant.token;
  lease.worker = worker;
  if (leases_enabled_) {
    grant.lease_deadline = sim_->now() + config_->lease_timeout_sec;
    // fela-lint: allow(untraced-event): expiry traces as kTokenReclaim
    // when the lease actually fires; arming it is silent by design.
    lease.timer = sim_->ScheduleAt(grant.lease_deadline,
                                   [this, id] { OnLeaseExpired(id); });
  }
  leases_[id] = std::move(lease);
  cbs_.deliver_grant(worker, grant);
  return true;
}

void TokenServer::HandleRequest(sim::NodeId worker) {
  if (down_[static_cast<size_t>(worker)]) return;
  if (outstanding_[static_cast<size_t>(worker)] != kInvalidTokenId) {
    // A retransmitted request racing a grant already in flight (or whose
    // grant was lost). Park the worker; it is served as soon as its
    // lease resolves — granting a second token now would double-book it.
    ++stats_.redundant_requests;
    if (!waiting_[static_cast<size_t>(worker)]) {
      waiting_[static_cast<size_t>(worker)] = true;
      waiters_.push_back(worker);
    }
    return;
  }
  if (TryGrant(worker)) return;
  if (!waiting_[static_cast<size_t>(worker)]) {
    waiting_[static_cast<size_t>(worker)] = true;
    waiters_.push_back(worker);
    ++stats_.enqueued_waits;
  }
}

void TokenServer::ServeWaiters() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = waiters_.begin(); it != waiters_.end();) {
      if (TryGrant(*it)) {
        waiting_[static_cast<size_t>(*it)] = false;
        it = waiters_.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
  }
}

Token TokenServer::MakeGeneratedToken(int level, std::vector<TokenDep> deps) {
  Token t;
  t.id = next_token_id_++;
  t.level = level;
  t.iteration = iteration_;
  double batch = 0.0;
  for (const auto& d : deps) batch += d.batch;
  t.batch = batch;
  t.deps = std::move(deps);
  ++generated_count_[static_cast<size_t>(level)];
  return t;
}

void TokenServer::AddFreshToken(Token token, sim::NodeId source) {
  const size_t bucket = hf() ? static_cast<size_t>(source) : 0;
  stbs_[bucket].Add(std::move(token));
}

void TokenServer::GenerateAfterCompletion(const Token& completed,
                                          sim::NodeId reporter) {
  const int level = completed.level;
  const int next = level + 1;
  if (next >= plan_->num_levels()) return;
  const size_t pool = hf() ? static_cast<size_t>(reporter) : 0;
  auto& pending = pending_[static_cast<size_t>(level)][pool];
  pending.push_back(TokenDep{completed.id, completed.batch});

  const int ratio = plan_->level(next).generation_ratio;
  FELA_CHECK_GT(ratio, 0);
  while (static_cast<int>(pending.size()) >= ratio) {
    std::vector<TokenDep> deps;
    deps.reserve(static_cast<size_t>(ratio));
    for (int k = 0; k < ratio; ++k) {
      deps.push_back(pending.front());
      pending.pop_front();
    }
    AddFreshToken(MakeGeneratedToken(next, std::move(deps)), reporter);
  }
}

void TokenServer::FlushResidualPools(int level) {
  // The level is fully completed; any residual completions (pools that
  // never reached the generation ratio) are merged — cross-worker deps
  // are unavoidable for this remainder — and emitted as final tokens.
  const int next = level + 1;
  if (next >= plan_->num_levels()) return;
  std::deque<TokenDep> merged;
  for (auto& pool : pending_[static_cast<size_t>(level)]) {
    while (!pool.empty()) {
      merged.push_back(pool.front());
      pool.pop_front();
    }
  }
  const int ratio = plan_->level(next).generation_ratio;
  while (!merged.empty()) {
    std::vector<TokenDep> deps;
    while (!merged.empty() && static_cast<int>(deps.size()) < ratio) {
      deps.push_back(merged.front());
      merged.pop_front();
    }
    // Route the remainder token to the holder of its first dependency —
    // the best locality available for a cross-worker remainder.
    const sim::NodeId source = info_.HolderOf(deps.front().id);
    AddFreshToken(MakeGeneratedToken(next, std::move(deps)),
                  source >= 0 ? source : 0);
  }
  FELA_CHECK_EQ(generated_count_[static_cast<size_t>(next)],
                plan_->level(next).token_count)
      << "level " << next << " token count mismatch";
}

void TokenServer::SetWorkerDown(sim::NodeId worker, bool down) {
  const size_t w = static_cast<size_t>(worker);
  if (down_[w] == down) return;
  down_[w] = down;
  if (!down) return;  // recovered workers re-enter by requesting work
  // Drop the crashed worker from the wait queue.
  if (waiting_[w]) {
    waiting_[w] = false;
    waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), worker),
                   waiters_.end());
  }
  // Its helper assignment is void.
  const sim::NodeId victim = helping_[w];
  if (victim >= 0) {
    --helper_count_[static_cast<size_t>(victim)];
    helping_[w] = -1;
  }
  // Whatever it was training is lost; pull the token back now rather
  // than waiting out the lease.
  if (outstanding_[w] != kInvalidTokenId) ReclaimLease(outstanding_[w], false);
}

sim::NodeId TokenServer::ReclaimDestination(const Token& token) const {
  auto up = [&](sim::NodeId w) {
    return w >= 0 && w < num_workers() && !down_[static_cast<size_t>(w)];
  };
  if (token.level == 0 && up(token.sample_home)) return token.sample_home;
  for (const TokenDep& dep : token.deps) {
    const sim::NodeId holder = info_.HolderOf(dep.id);
    if (up(holder)) return holder;
  }
  for (sim::NodeId w = 0; w < num_workers(); ++w) {
    if (!down_[static_cast<size_t>(w)]) return w;
  }
  return 0;
}

void TokenServer::ReclaimLease(TokenId id, bool expired) {
  auto it = leases_.find(id);
  if (it == leases_.end()) return;
  Lease lease = std::move(it->second);
  leases_.erase(it);
  if (!expired && lease.timer != sim::kInvalidEventId) {
    sim_->Cancel(lease.timer);
  }
  FELA_CHECK_EQ(outstanding_[static_cast<size_t>(lease.worker)], id);
  outstanding_[static_cast<size_t>(lease.worker)] = kInvalidTokenId;
  ++stats_.tokens_reclaimed;
  if (expired) ++stats_.lease_expirations;
  Token token = std::move(lease.token);
  ++token.attempt;
  if (cbs_.on_reclaim) cbs_.on_reclaim(token, lease.worker);
  const sim::NodeId home = ReclaimDestination(token);
  const size_t bucket = hf() ? static_cast<size_t>(home) : 0;
  stbs_[bucket].Add(std::move(token));
  ServeWaiters();
}

void TokenServer::OnLeaseExpired(TokenId id) { ReclaimLease(id, true); }

void TokenServer::CancelAllLeases() {
  for (auto& [id, lease] : leases_) {
    if (lease.timer != sim::kInvalidEventId) sim_->Cancel(lease.timer);
    outstanding_[static_cast<size_t>(lease.worker)] = kInvalidTokenId;
  }
  leases_.clear();
}

void TokenServer::HandleReport(sim::NodeId worker, const Token& token) {
  const size_t w = static_cast<size_t>(worker);
  if (token.iteration != iteration_) {
    // A delayed/duplicated report straddled an iteration turnover.
    ++stats_.stale_reports;
    return;
  }
  // Accept a completion only from the worker we believe holds the token:
  // anything else is a duplicated report, or a report for a grant that
  // was already reclaimed (the work will be redone elsewhere).
  if (outstanding_[w] != token.id) {
    ++stats_.duplicate_reports;
    // The combined message still carries an implicit request: honor it
    // if the worker is idle from our point of view.
    if (!down_[w] && outstanding_[w] == kInvalidTokenId) HandleRequest(worker);
    return;
  }
  outstanding_[w] = kInvalidTokenId;
  auto lease = leases_.find(token.id);
  if (lease != leases_.end()) {
    if (lease->second.timer != sim::kInvalidEventId) {
      sim_->Cancel(lease->second.timer);
    }
    leases_.erase(lease);
  }
  // Mutation canary: while armed, every 7th accepted completion is
  // leaked from the ledger — behavior is untouched, the accounting lies.
  if (!g_mutation_enabled || ++g_mutation_report_count % 7 != 0) {
    ++stats_.completions;
  }
  info_.RecordCompleted(token.id, worker);
  const size_t level = static_cast<size_t>(token.level);
  ++completed_count_[level];
  FELA_CHECK_LE(completed_count_[level], plan_->level(token.level).token_count);

  GenerateAfterCompletion(token, worker);
  const bool level_done =
      completed_count_[level] == plan_->level(token.level).token_count;
  if (level_done) {
    FlushResidualPools(token.level);
  }

  // Combined report + request (§III-D). Under ADS Principle 1 the
  // reporter's implicit request is served first — it holds the freshest
  // dependencies, so granting it the just-generated token avoids the
  // remote fetches another worker would pay. Without ADS the distributor
  // is a plain FIFO: queued waiters go first.
  auto enqueue_reporter = [&] {
    if (!waiting_[static_cast<size_t>(worker)]) {
      waiting_[static_cast<size_t>(worker)] = true;
      waiters_.push_back(worker);
    }
  };
  if (config_->ads_enabled) {
    if (!TryGrant(worker)) enqueue_reporter();
    ServeWaiters();
  } else {
    enqueue_reporter();
    ServeWaiters();
  }

  if (level_done) {
    cbs_.on_level_complete(token.level);
    if (!all_done_announced_ && AllLevelsComplete()) {
      all_done_announced_ = true;
      cbs_.on_all_levels_complete();
    }
  }
}

}  // namespace fela::core
