// fela-lint fixture header: declares an unordered member that a separate
// .cc file (cross_header_member_violation.cc) iterates over. Clean on
// its own — the violation lives in the includer.
#ifndef FELA_LINT_FIXTURE_CROSS_HEADER_MEMBER_H_
#define FELA_LINT_FIXTURE_CROSS_HEADER_MEMBER_H_

#include <unordered_map>

namespace fela::fixture {

class Registry {
 public:
  void EmitAll();

 private:
  void Emit(int id);
  std::unordered_map<int, double> entries_;
};

}  // namespace fela::fixture

#endif  // FELA_LINT_FIXTURE_CROSS_HEADER_MEMBER_H_
