#include "core/info_mapping.h"

#include <algorithm>

#include "common/logging.h"

namespace fela::core {

void InfoMapping::RecordAssigned(TokenId token, sim::NodeId worker) {
  assignee_[token] = worker;
}

void InfoMapping::RecordCompleted(TokenId token, sim::NodeId worker) {
  FELA_CHECK(holder_.find(token) == holder_.end())
      << "token " << token << " completed twice";
  holder_[token] = worker;
  completed_by_[worker].insert(token);
  assignee_.erase(token);
}

sim::NodeId InfoMapping::HolderOf(TokenId token) const {
  auto it = holder_.find(token);
  return it == holder_.end() ? -1 : it->second;
}

sim::NodeId InfoMapping::AssigneeOf(TokenId token) const {
  auto it = assignee_.find(token);
  return it == assignee_.end() ? -1 : it->second;
}

bool InfoMapping::IsCompleted(TokenId token) const {
  return holder_.count(token) > 0;
}

const std::unordered_set<TokenId>& InfoMapping::CompletedBy(
    sim::NodeId worker) const {
  static const std::unordered_set<TokenId> kEmpty;
  auto it = completed_by_.find(worker);
  return it == completed_by_.end() ? kEmpty : it->second;
}

std::vector<TokenId> InfoMapping::CompletedBySorted(sim::NodeId worker) const {
  const auto& held = CompletedBy(worker);
  std::vector<TokenId> out(held.begin(), held.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TokenId> InfoMapping::CompletedTokensSorted() const {
  std::vector<TokenId> out;
  out.reserve(holder_.size());
  // fela-lint: allow(unordered-iter): this IS the snapshot pattern: the
  // collected keys are sorted before anything observes them.
  for (const auto& [token, worker] : holder_) out.push_back(token);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<TokenId, sim::NodeId>> InfoMapping::AssignmentsSorted()
    const {
  std::vector<std::pair<TokenId, sim::NodeId>> out(assignee_.begin(),
                                                   assignee_.end());
  std::sort(out.begin(), out.end());
  return out;
}

double InfoMapping::LocalityScore(sim::NodeId worker,
                                  const std::vector<TokenId>& deps) const {
  if (deps.empty()) return 1.0;
  const auto& held = CompletedBy(worker);
  size_t hits = 0;
  for (TokenId d : deps) {
    if (held.count(d) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(deps.size());
}

double InfoMapping::LocalityScore(sim::NodeId worker,
                                  const std::vector<TokenDep>& deps) const {
  if (deps.empty()) return 1.0;
  const auto& held = CompletedBy(worker);
  size_t hits = 0;
  for (const auto& d : deps) {
    if (held.count(d.id) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(deps.size());
}

void InfoMapping::Reset() {
  holder_.clear();
  assignee_.clear();
  completed_by_.clear();
}

}  // namespace fela::core
