// Figure 6: the two-phase runtime configuration tuning (§IV-B).
//   (a) normalized per-iteration time for the 13 cases at each total
//       batch size (training VGG19);
//   (b) best-vs-worst performance gaps for Phase 1, Phase 2, overall.
//
// Paper reference: Phase 1 saves 8.51%~51.69%, Phase 2 5.31%~41.25%,
// overall 8.51%~66.78%; at batch 64 the winner is Case 2 = {1,1,4} with
// subset 1; at batch 1024 it is Case 9 = {1,8,8} with subset 8.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "model/zoo.h"

int main(int argc, char** argv) {
  using namespace fela;
  const bench::BenchOptions opts = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader("Figure 6: Configuration tuning (VGG19, 13 cases)");

  const model::Model m = model::zoo::Vgg19();
  // Each batch's 13-case warm-up is an independent replica; tune them
  // in parallel under --jobs and keep the report order by batch.
  std::vector<core::TuningReport> reports(bench::Vgg19Batches().size());
  runtime::SweepRunner runner = opts.Runner();
  for (size_t i = 0; i < reports.size(); ++i) {
    runner.Add([&m, &reports, i] {
      reports[i] = suite::TuneFela(m, bench::Vgg19Batches()[i], 8,
                                   /*warmup_iterations=*/5);
    });
  }
  runner.RunAll();

  // Panel (a): normalized per-iteration times, one column per batch.
  std::printf("\n(a) Performance tuning with different configuration cases\n");
  std::printf("    (per-iteration time, min-max normalized per column)\n");
  std::vector<std::string> headers = {"case", "config"};
  for (double b : bench::Vgg19Batches()) {
    headers.push_back(common::StrFormat("batch %g", b));
  }
  common::TablePrinter table(headers);
  std::vector<std::vector<double>> norm;
  for (const auto& r : reports) norm.push_back(r.NormalizedSeconds());
  for (size_t c = 0; c < 13; ++c) {
    std::vector<std::string> row;
    row.push_back(std::to_string(c));
    row.push_back(reports[0].cases[c].config.ToString());
    for (size_t b = 0; b < reports.size(); ++b) {
      std::string cell = common::TablePrinter::Num(norm[b][c], 3);
      if (static_cast<int>(c) == reports[b].best_case_index) cell += " *";
      row.push_back(std::move(cell));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("(* = the batch's winning case; configs show Phase-1 weights;"
              " cases 10-12 re-use the Phase-1 winner's weights)\n");

  // Panel (b): best-worst gaps.
  std::printf("\n(b) Best-worst performance gaps\n");
  common::TablePrinter gaps(
      {"batch", "phase 1 gap", "phase 2 gap", "overall gap", "winner"});
  double lo1 = 1, hi1 = 0, lo2 = 1, hi2 = 0, loo = 1, hio = 0;
  for (size_t i = 0; i < reports.size(); ++i) {
    const auto& r = reports[i];
    gaps.AddRow({common::TablePrinter::Num(bench::Vgg19Batches()[i], 0),
                 common::TablePrinter::Percent(r.phase1_gap),
                 common::TablePrinter::Percent(r.phase2_gap),
                 common::TablePrinter::Percent(r.overall_gap),
                 common::StrFormat("Case %d: %s", r.best_case_index,
                                   r.best_config.ToString().c_str())});
    lo1 = std::min(lo1, r.phase1_gap);
    hi1 = std::max(hi1, r.phase1_gap);
    lo2 = std::min(lo2, r.phase2_gap);
    hi2 = std::max(hi2, r.phase2_gap);
    loo = std::min(loo, r.overall_gap);
    hio = std::max(hio, r.overall_gap);
  }
  gaps.Print(std::cout);

  std::printf("\nmeasured: phase1 %.2f%%~%.2f%%, phase2 %.2f%%~%.2f%%, "
              "overall %.2f%%~%.2f%%\n",
              lo1 * 100, hi1 * 100, lo2 * 100, hi2 * 100, loo * 100,
              hio * 100);
  std::printf("paper:    phase1 8.51%%~51.69%%, phase2 5.31%%~41.25%%, "
              "overall 8.51%%~66.78%%\n");
  // Tuning determinism: the whole two-phase warm-up (13 cases) must pick
  // the same winner with the same normalized timings on a re-run.
  return bench::VerifyRenderDeterminism(opts, "fig6", [&m] {
    const core::TuningReport r =
        suite::TuneFela(m, 64, 8, /*warmup_iterations=*/1);
    std::string out = common::StrFormat("best=%d\n", r.best_case_index);
    for (const double s : r.NormalizedSeconds()) {
      out += common::StrFormat("%.17g\n", s);
    }
    return out;
  });
}
