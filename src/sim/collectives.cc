#include "sim/collectives.h"

#include <memory>
#include <utility>

#include "common/logging.h"

namespace fela::sim {

namespace {

/// Shared countdown that fires a callback when it reaches zero.
class Barrier {
 public:
  Barrier(int count, EventFn done)
      : remaining_(count), done_(std::move(done)) {
    FELA_CHECK_GT(count, 0);
  }

  void Arrive() {
    FELA_CHECK_GT(remaining_, 0);
    if (--remaining_ == 0) done_();
  }

 private:
  int remaining_;
  EventFn done_;
};

/// Drives one ring all-reduce: 2*(P-1) synchronous rounds; in each round
/// every node sends a bytes/P chunk to its ring successor. Rounds are
/// barrier-separated, matching a BSP collective where every step waits
/// for the slowest link.
class RingAllReduceOp : public std::enable_shared_from_this<RingAllReduceOp> {
 public:
  RingAllReduceOp(Simulator* sim, Fabric* fabric,
                  std::vector<NodeId> participants, double bytes_per_node,
                  EventFn done, obs::SpanSink* spans)
      : sim_(sim),
        fabric_(fabric),
        participants_(std::move(participants)),
        done_(std::move(done)),
        spans_(spans) {
    const int p = static_cast<int>(participants_.size());
    chunk_bytes_ = bytes_per_node / static_cast<double>(p);
    total_rounds_ = 2 * (p - 1);
  }

  void Start() {
    if (participants_.size() <= 1 || total_rounds_ == 0) {
      sim_->Schedule(0.0, std::move(done_));
      return;
    }
    begin_ = sim_->now();
    RunRound(0);
  }

 private:
  void RunRound(int round) {
    if (round == total_rounds_) {
      if (spans_ != nullptr && spans_->enabled()) {
        const SimTime end = sim_->now();
        for (const NodeId node : participants_) {
          spans_->Emit(obs::Span{node, obs::Phase::kSyncWait, begin_, end, -1, {}});
        }
      }
      done_();
      return;
    }
    auto self = shared_from_this();
    auto barrier = std::make_shared<Barrier>(
        static_cast<int>(participants_.size()),
        [self, round] { self->RunRound(round + 1); });
    const size_t p = participants_.size();
    for (size_t i = 0; i < p; ++i) {
      const NodeId src = participants_[i];
      const NodeId dst = participants_[(i + 1) % p];
      fabric_->Transfer(src, dst, chunk_bytes_,
                        [barrier] { barrier->Arrive(); });
    }
  }

  Simulator* sim_;
  Fabric* fabric_;
  std::vector<NodeId> participants_;
  EventFn done_;
  obs::SpanSink* spans_;
  SimTime begin_ = 0.0;
  double chunk_bytes_ = 0.0;
  int total_rounds_ = 0;
};

}  // namespace

void RingAllReduce(Simulator* sim, Fabric* fabric,
                   std::vector<NodeId> participants, double bytes_per_node,
                   EventFn done, obs::SpanSink* spans) {
  FELA_CHECK(!participants.empty());
  auto op = std::make_shared<RingAllReduceOp>(sim, fabric,
                                              std::move(participants),
                                              bytes_per_node, std::move(done),
                                              spans);
  op->Start();
}

double RingAllReduceIdealSeconds(int participants, double bytes_per_node,
                                 const Calibration& cal) {
  if (participants <= 1) return 0.0;
  const double p = static_cast<double>(participants);
  const double chunk = bytes_per_node / p;
  const double per_round =
      cal.message_latency_sec + chunk / cal.nic_bandwidth_bytes_per_sec;
  return 2.0 * (p - 1.0) * per_round;
}

void GatherTo(Simulator* sim, Fabric* fabric, NodeId root,
              std::vector<NodeId> senders, double bytes_each, EventFn done) {
  if (senders.empty()) {
    sim->Schedule(0.0, std::move(done));
    return;
  }
  auto barrier = std::make_shared<Barrier>(static_cast<int>(senders.size()),
                                           std::move(done));
  for (NodeId src : senders) {
    fabric->Transfer(src, root, bytes_each, [barrier] { barrier->Arrive(); });
  }
}

void ScatterFrom(Simulator* sim, Fabric* fabric, NodeId root,
                 std::vector<NodeId> receivers, double bytes_each,
                 EventFn done) {
  if (receivers.empty()) {
    sim->Schedule(0.0, std::move(done));
    return;
  }
  auto barrier = std::make_shared<Barrier>(static_cast<int>(receivers.size()),
                                           std::move(done));
  for (NodeId dst : receivers) {
    fabric->Transfer(root, dst, bytes_each, [barrier] { barrier->Arrive(); });
  }
}

}  // namespace fela::sim
