#ifndef FELA_SIM_TRACE_H_
#define FELA_SIM_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/tokenize.h"
#include "sim/types.h"

namespace fela::sim {

/// Event categories recorded by engines when tracing is enabled.
/// Extend kNumTraceKinds (and TraceKindName) together — the
/// static_assert below and the exhaustive switch keep them honest.
enum class TraceKind {
  kIterationStart,
  kIterationEnd,
  kTokenRequest,
  kTokenGrant,
  kTokenComplete,
  kFetchStart,
  kFetchEnd,
  kComputeStart,
  kComputeEnd,
  kSyncStart,
  kSyncEnd,
  kStragglerSleep,
  kHelperSteal,
  kConflict,
  kWorkerCrash,
  kWorkerRecover,
  kControlDrop,
  kControlDup,
  kTokenReclaim,
  kRequestRetry,
  kPartitionDrop,
  kPartitionCut,
  kPartitionHeal,
  kTsFailover,
};

/// One past the last TraceKind value. TraceKindName's switch has no
/// default, so adding a kind without a name breaks the -Werror build;
/// this constant lets tests (and the binary codec) iterate all kinds.
inline constexpr int kNumTraceKinds = static_cast<int>(TraceKind::kTsFailover)
                                      + 1;

const char* TraceKindName(TraceKind kind);

/// Rendered view of one recorded event — what tests and exporters
/// consume. The stored form is the fixed-width TraceRecord below;
/// `detail` here is detokenized on access.
struct TraceEvent {
  SimTime time;
  NodeId node;
  TraceKind kind;
  std::string detail;
};

/// The stored fixed-width form: no strings, trivially copyable, cheap
/// to ring-buffer and to serialize. `token`/args hold the tokenized
/// detail; records carrying a legacy std::string detail (the escape
/// hatch for genuinely dynamic text) set kDynamicDetailFlag and park
/// the string in a parallel slot.
struct TraceRecord {
  SimTime time = 0.0;
  uint64_t args[4] = {0, 0, 0, 0};
  NodeId node = 0;
  uint32_t token = 0;
  uint8_t kind = 0;
  uint8_t arg_count = 0;
  uint8_t arg_types = 0;
  uint8_t flags = 0;
};

inline constexpr uint8_t kDynamicDetailFlag = 1;

/// Bounded in-memory recorder for scheduling timelines. Disabled by
/// default (engines skip recording when !enabled()) so the hot path
/// stays allocation-free during large sweeps; the *enabled* tokenized
/// path is a fixed-width struct store — no formatting, no allocation.
///
/// Storage is a ring: once `capacity` events have been recorded, each
/// new event evicts the oldest one, so a long run keeps the *most
/// recent* window of activity — the part a crash or stall post-mortem
/// actually needs. `dropped()` counts the evictions.
class FELA_THREAD_HOSTILE TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 100000) : capacity_(capacity) {}

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Tokenized hot path: FELA_TRACE lands here.
  void Record(SimTime time, NodeId node, TraceKind kind,
              common::TokenizedDetail detail = {});

  /// Legacy/dynamic-detail path for text a fixed-arg token cannot
  /// carry. Costs a string move per event — keep it off hot paths.
  void Record(SimTime time, NodeId node, TraceKind kind, std::string detail);

  /// Lazy-detail overload: `detail_fn` (any callable returning something
  /// convertible to std::string) is only invoked when the recorder is
  /// enabled, so hot paths pay nothing — not even the StrFormat — when
  /// tracing is off. Prefer the FELA_TRACE macro at call sites.
  template <typename DetailFn>
  void RecordLazy(SimTime time, NodeId node, TraceKind kind,
                  DetailFn&& detail_fn) {
    if (!enabled_) return;
    Record(time, node, kind,
           std::string(std::forward<DetailFn>(detail_fn)()));
  }

  /// Events oldest-first with details rendered (detokenized via the
  /// global registry). Returns by value: the underlying ring storage is
  /// rotated and the copy is only taken by tests and exporters.
  std::vector<TraceEvent> events() const;

  /// Raw stored records oldest-first, plus the parallel dynamic-detail
  /// strings (empty unless kDynamicDetailFlag is set).
  std::vector<TraceRecord> records() const;
  std::vector<std::string> dynamic_details() const;

  size_t size() const { return records_.size(); }
  size_t capacity() const { return capacity_; }
  size_t dropped() const { return dropped_; }
  void Clear();

  /// Pretty timeline, one event per line: "[  1.2345s] w3 ComputeStart ...".
  std::string ToString() const;

 private:
  void Store(TraceRecord record, std::string dynamic);

  size_t capacity_;
  bool enabled_ = false;
  std::vector<TraceRecord> records_;
  std::vector<std::string> dynamic_;  // slot-parallel to records_
  size_t next_ = 0;  // ring cursor: slot the next event overwrites
  size_t dropped_ = 0;
};

/// Shared text-rendering pieces, used by TraceRecorder::ToString and by
/// the offline detokenizer (tools/fela-detok) so the two outputs are
/// byte-identical.
void AppendTraceDroppedHeader(std::string* out, size_t dropped,
                              size_t capacity);
void AppendTraceLine(std::string* out, SimTime time, NodeId node,
                     TraceKind kind, const std::string& detail);

/// Renders one stored record's detail (token, dynamic string, or "").
std::string RenderTraceDetail(const TraceRecord& record,
                              const std::string& dynamic,
                              const common::TokenRegistry* registry = nullptr);

}  // namespace fela::sim

/// Records a trace event without evaluating the detail unless the
/// recorder is enabled. `recorder` is a TraceRecorder*; the detail is
/// either absent or a FELA_TOK format plus up to 4 numeric args (the
/// tokenized hot path). Text a token cannot carry goes through
/// TraceRecorder::Record's std::string overload directly.
///
///   FELA_TRACE(trace, now, id, TraceKind::kSyncEnd);
///   FELA_TRACE(trace, now, id, TraceKind::kTokenRequest,
///              FELA_TOK("it=%d"), iteration);
#define FELA_TRACE(recorder, time, node, kind, ...)                        \
  do {                                                                     \
    ::fela::sim::TraceRecorder* fela_trace_rec_ = (recorder);              \
    if (fela_trace_rec_ != nullptr && fela_trace_rec_->enabled())          \
      fela_trace_rec_->Record((time), (node), (kind)                       \
                                  __VA_OPT__(, ::fela::common::            \
                                                 TokenizedDetail(          \
                                                     __VA_ARGS__)));       \
  } while (false)

#endif  // FELA_SIM_TRACE_H_
