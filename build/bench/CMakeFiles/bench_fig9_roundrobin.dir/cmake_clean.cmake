file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_roundrobin.dir/bench_fig9_roundrobin.cpp.o"
  "CMakeFiles/bench_fig9_roundrobin.dir/bench_fig9_roundrobin.cpp.o.d"
  "bench_fig9_roundrobin"
  "bench_fig9_roundrobin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_roundrobin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
