#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace fela::sim {
namespace {

TEST(EventQueueTest, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(3.0, [&] { order.push_back(3); });
  q.Push(1.0, [&] { order.push_back(1); });
  q.Push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.Pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.Pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, PeekTimeReportsEarliest) {
  EventQueue q;
  q.Push(7.0, [] {});
  q.Push(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.PeekTime(), 2.0);
}

TEST(EventQueueTest, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  EventId id = q.Push(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelledEventSkippedOnPop) {
  EventQueue q;
  std::vector<int> order;
  q.Push(1.0, [&] { order.push_back(1); });
  EventId id = q.Push(2.0, [&] { order.push_back(2); });
  q.Push(3.0, [&] { order.push_back(3); });
  q.Cancel(id);
  while (!q.empty()) q.Pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
  EXPECT_FALSE(q.Cancel(9999));
}

TEST(EventQueueTest, DoubleCancelFails) {
  EventQueue q;
  EventId id = q.Push(1.0, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

// Regression: cancelling an id that already fired used to decrement
// size_ (empty() reported true with events still queued, so a Run()
// loop dropped them) and leak the id in the cancelled set forever. The
// cancel must be rejected and the pending event must stay poppable.
TEST(EventQueueTest, CancelAfterFireFailsAndPreservesPendingEvents) {
  EventQueue q;
  EventId a = q.Push(1.0, [] {});
  bool b_fired = false;
  q.Push(2.0, [&] { b_fired = true; });
  q.Pop().second();  // fires a
  EXPECT_FALSE(q.Cancel(a));
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.size(), 1u);
  q.Pop().second();
  EXPECT_TRUE(b_fired);
  EXPECT_TRUE(q.empty());
}

// The same corruption repeated: every stale cancel used to eat one live
// event's worth of size_, so a handful of late cancels could zero out
// an arbitrarily full queue.
TEST(EventQueueTest, RepeatedStaleCancelsNeverAffectSize) {
  EventQueue q;
  std::vector<EventId> fired_ids;
  for (int i = 0; i < 4; ++i) fired_ids.push_back(q.Push(1.0, [] {}));
  for (int i = 0; i < 4; ++i) q.Pop().second();
  for (int i = 0; i < 16; ++i) q.Push(2.0, [] {});
  for (EventId id : fired_ids) EXPECT_FALSE(q.Cancel(id));
  EXPECT_EQ(q.size(), 16u);
}

// Slots are recycled through a free list; a handle minted before the
// recycle must not be able to cancel the unrelated event that now
// occupies the same slot (the generation tag makes it stale).
TEST(EventQueueTest, StaleHandleAfterSlotReuseIsRejected) {
  EventQueue q;
  EventId old_id = q.Push(1.0, [] {});
  ASSERT_TRUE(q.Cancel(old_id));  // slot goes back on the free list
  bool fired = false;
  EventId new_id = q.Push(2.0, [&] { fired = true; });
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(q.Cancel(old_id));  // stale generation
  EXPECT_EQ(q.size(), 1u);
  q.Pop().second();
  EXPECT_TRUE(fired);
}

// Pathological churn: a retry timer that is re-armed and cancelled a
// million times (the shape fault-injected token leases produce). Lazy
// deletion alone would grow the heap by one dead entry per cycle;
// compaction must keep both the heap and the slab at O(live events).
TEST(EventQueueTest, FootprintStaysBoundedAcrossPushCancelCycles) {
  EventQueue q;
  // A few long-lived events so compaction has live entries to keep.
  for (int i = 0; i < 8; ++i) q.Push(1e9 + i, [] {});
  for (int i = 0; i < 1'000'000; ++i) {
    EventId id = q.Push(1e6 + i, [] {});
    ASSERT_TRUE(q.Cancel(id));
  }
  EXPECT_EQ(q.size(), 8u);
  // Compaction triggers once dead entries outnumber live ones, so the
  // heap never exceeds ~2x live (plus the small pre-compaction floor).
  EXPECT_LE(q.heap_entries(), 128u);
  // Only one churn event is ever pending at a time, so the slab's
  // high-water mark is live events + 1.
  EXPECT_LE(q.slab_slots(), 16u);
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  EventId a = q.Push(1.0, [] {});
  q.Push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.Pop();
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace fela::sim
