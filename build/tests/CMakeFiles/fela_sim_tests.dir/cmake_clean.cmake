file(REMOVE_RECURSE
  "CMakeFiles/fela_sim_tests.dir/sim/collectives_test.cc.o"
  "CMakeFiles/fela_sim_tests.dir/sim/collectives_test.cc.o.d"
  "CMakeFiles/fela_sim_tests.dir/sim/event_queue_test.cc.o"
  "CMakeFiles/fela_sim_tests.dir/sim/event_queue_test.cc.o.d"
  "CMakeFiles/fela_sim_tests.dir/sim/fabric_test.cc.o"
  "CMakeFiles/fela_sim_tests.dir/sim/fabric_test.cc.o.d"
  "CMakeFiles/fela_sim_tests.dir/sim/gpu_test.cc.o"
  "CMakeFiles/fela_sim_tests.dir/sim/gpu_test.cc.o.d"
  "CMakeFiles/fela_sim_tests.dir/sim/simulator_test.cc.o"
  "CMakeFiles/fela_sim_tests.dir/sim/simulator_test.cc.o.d"
  "CMakeFiles/fela_sim_tests.dir/sim/straggler_test.cc.o"
  "CMakeFiles/fela_sim_tests.dir/sim/straggler_test.cc.o.d"
  "CMakeFiles/fela_sim_tests.dir/sim/trace_test.cc.o"
  "CMakeFiles/fela_sim_tests.dir/sim/trace_test.cc.o.d"
  "fela_sim_tests"
  "fela_sim_tests.pdb"
  "fela_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fela_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
