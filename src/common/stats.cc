#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace fela::common {

void SummaryStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void SummaryStats::Merge(const SummaryStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double n = static_cast<double>(count_);
  const double m = static_cast<double>(other.count_);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  mean_ = (n * mean_ + m * other.mean_) / (n + m);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SummaryStats::Reset() { *this = SummaryStats(); }

double SummaryStats::min() const { return count_ == 0 ? 0.0 : min_; }
double SummaryStats::max() const { return count_ == 0 ? 0.0 : max_; }

double SummaryStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

std::string SummaryStats::ToString() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " stddev=" << stddev()
     << " min=" << min() << " max=" << max();
  return os.str();
}

double Samples::Sum() const {
  double s = 0.0;
  for (double v : values_) s += v;
  return s;
}

double Samples::Mean() const {
  return values_.empty() ? 0.0 : Sum() / static_cast<double>(values_.size());
}

double Samples::Min() const {
  FELA_CHECK(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::Max() const {
  FELA_CHECK(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::Percentile(double q) const {
  FELA_CHECK(!values_.empty());
  FELA_CHECK(q >= 0.0 && q <= 100.0) << q;
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  FELA_CHECK_GT(hi, lo);
  FELA_CHECK_GT(buckets, 0u);
}

size_t Histogram::BucketOf(double x) const {
  if (x < lo_) return 0;
  size_t b = static_cast<size_t>((x - lo_) / width_);
  return std::min(b, counts_.size() - 1);
}

void Histogram::Add(double x) {
  ++counts_[BucketOf(x)];
  ++total_;
}

double Histogram::bucket_lo(size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket);
}

double Histogram::bucket_hi(size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket + 1);
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  for (size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    os << "[" << bucket_lo(b) << ", " << bucket_hi(b) << "): " << counts_[b]
       << "\n";
  }
  return os.str();
}

std::vector<double> NormalizeToUnit(const std::vector<double>& values) {
  if (values.empty()) return {};
  const double mn = *std::min_element(values.begin(), values.end());
  const double mx = *std::max_element(values.begin(), values.end());
  std::vector<double> out(values.size(), 0.0);
  if (mx == mn) return out;
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = (values[i] - mn) / (mx - mn);
  }
  return out;
}

}  // namespace fela::common
