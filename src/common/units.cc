#include "common/units.h"

#include "common/string_util.h"

namespace fela::common {

std::string FormatBytes(double bytes) {
  if (bytes >= kGiB) return StrFormat("%.2f GiB", bytes / kGiB);
  if (bytes >= kMiB) return StrFormat("%.2f MiB", bytes / kMiB);
  if (bytes >= kKiB) return StrFormat("%.2f KiB", bytes / kKiB);
  return StrFormat("%.0f B", bytes);
}

std::string FormatSeconds(double seconds) {
  if (seconds >= 1.0) return StrFormat("%.3f s", seconds);
  if (seconds >= 1e-3) return StrFormat("%.3f ms", seconds * 1e3);
  return StrFormat("%.3f us", seconds * 1e6);
}

}  // namespace fela::common
