#include "core/token_server.h"

#include <gtest/gtest.h>

#include <map>

#include "model/zoo.h"

namespace fela::core {
namespace {

/// Harness driving a TokenServer directly (no workers): grants are
/// captured; reports are injected manually.
class TokenServerHarness {
 public:
  TokenServerHarness(FelaConfig config, double total_batch = 128,
                     int num_workers = 8)
      : config_(std::move(config)),
        sub_models_(model::BinPartitioner().Partition(
            model::zoo::Vgg19(), model::ProfileRepository::Default())),
        plan_(BuildPlan(model::zoo::Vgg19(), sub_models_, config_,
                        total_batch, num_workers)) {
    TokenServer::Callbacks cbs;
    cbs.deliver_grant = [this](sim::NodeId w, const Grant& g) {
      grants.emplace_back(w, g);
    };
    cbs.on_level_complete = [this](int level) {
      completed_levels.push_back(level);
    };
    cbs.on_all_levels_complete = [this] { all_done = true; };
    ts_ = std::make_unique<TokenServer>(&sim_, &cal_, &plan_, &config_,
                                        std::move(cbs));
  }

  TokenServer& ts() { return *ts_; }
  const FelaPlan& plan() const { return plan_; }

  /// Pops the oldest undelivered grant for any worker.
  std::pair<sim::NodeId, Grant> PopGrant() {
    EXPECT_FALSE(grants.empty());
    auto g = grants.front();
    grants.erase(grants.begin());
    return g;
  }

  /// Completes a granted token on behalf of its worker.
  void Complete(sim::NodeId worker, const Token& token) {
    ts_->HandleReport(worker, token);
  }

  /// Runs request/complete loops until the iteration finishes; returns
  /// tokens trained per worker.
  std::map<sim::NodeId, int> DrainIteration() {
    std::map<sim::NodeId, int> trained;
    int guard = 0;
    while (!all_done && guard++ < 10000) {
      if (grants.empty()) break;
      auto [w, g] = PopGrant();
      ++trained[w];
      Complete(w, g.token);
    }
    return trained;
  }

  sim::Simulator sim_;
  sim::Calibration cal_;
  FelaConfig config_;
  std::vector<model::SubModel> sub_models_;
  FelaPlan plan_;
  std::unique_ptr<TokenServer> ts_;

  std::vector<std::pair<sim::NodeId, Grant>> grants;
  std::vector<int> completed_levels;
  bool all_done = false;
};

FelaConfig PaperConfig() {
  FelaConfig cfg = FelaConfig::Defaults(3, 8);
  cfg.weights = {1, 2, 4};
  return cfg;
}

TEST(TokenServerTest, InitialTokensFillStbsRoundRobin) {
  TokenServerHarness h(PaperConfig());
  h.ts().BeginIteration(0);
  EXPECT_EQ(h.ts().PendingTokenCount(), 8u);  // n_1 = 8 at batch 128
  // Every worker's request is served from its own STB with its own
  // sample shard (no remote fetches).
  for (int w = 0; w < 8; ++w) h.ts().HandleRequest(w);
  EXPECT_EQ(h.grants.size(), 8u);
  for (auto& [w, g] : h.grants) {
    EXPECT_EQ(g.token.sample_home, w);
    EXPECT_TRUE(g.remote_fetches.empty());
    EXPECT_FALSE(g.stolen);
  }
}

TEST(TokenServerTest, GenerationFollowsPaperRatios) {
  // §III-B: 2 completed T-1 tokens generate 1 T-2; 2 T-2 generate 1 T-3.
  TokenServerHarness h(PaperConfig());
  h.ts().BeginIteration(0);
  h.ts().HandleRequest(0);
  auto [w0, g0] = h.PopGrant();
  h.Complete(w0, g0.token);
  // One completion: no T-2 yet; the implicit request got another T-1.
  EXPECT_EQ(h.ts().tokens_completed(0), 1);
  auto [w1, g1] = h.PopGrant();
  EXPECT_EQ(g1.token.level, 0);
  h.Complete(w1, g1.token);
  // Two completions by worker 0: a T-2 exists and is granted to the
  // reporter (combined report+request, ADS highest level first).
  auto [w2, g2] = h.PopGrant();
  EXPECT_EQ(w2, 0);
  EXPECT_EQ(g2.token.level, 1);
  ASSERT_EQ(g2.token.deps.size(), 2u);
  EXPECT_DOUBLE_EQ(g2.token.batch, 32.0);
  // Both deps completed by worker 0 itself -> fully local.
  EXPECT_TRUE(g2.remote_fetches.empty());
}

TEST(TokenServerTest, FullIterationCompletesAllLevels) {
  TokenServerHarness h(PaperConfig());
  h.ts().BeginIteration(0);
  for (int w = 0; w < 8; ++w) h.ts().HandleRequest(w);
  auto trained = h.DrainIteration();
  EXPECT_TRUE(h.all_done);
  EXPECT_EQ(h.completed_levels, (std::vector<int>{0, 1, 2}));
  int total = 0;
  for (auto& [w, n] : trained) total += n;
  EXPECT_EQ(total, h.plan().TotalTokens());
}

TEST(TokenServerTest, TokenCountsMatchPlanPerLevel) {
  TokenServerHarness h(PaperConfig());
  h.ts().BeginIteration(0);
  for (int w = 0; w < 8; ++w) h.ts().HandleRequest(w);
  (void)h.DrainIteration();
  for (int l = 0; l < 3; ++l) {
    EXPECT_EQ(h.ts().tokens_completed(l), h.plan().level(l).token_count);
  }
}

TEST(TokenServerTest, WaiterQueuedWhenNoTokens) {
  // Batch 128 -> 8 T-1 tokens; a 9th request must wait (the "locking
  // problem" of §III-D).
  TokenServerHarness h(PaperConfig());
  h.ts().BeginIteration(0);
  for (int w = 0; w < 8; ++w) h.ts().HandleRequest(w);
  h.grants.clear();
  h.ts().HandleRequest(3);  // worker 3 asks again; everything is granted
  EXPECT_EQ(h.ts().waiter_count(), 1u);
  EXPECT_TRUE(h.grants.empty());
}

TEST(TokenServerTest, WaitersServedWhenLevelFlushGeneratesTokens) {
  // At batch 128 every worker holds exactly one T-1 token, so no
  // per-worker completion pool ever reaches the generation ratio; the
  // T-2 tokens appear in the level-0 completion flush, which must then
  // serve the queued (reporter) waiters.
  TokenServerHarness h(PaperConfig());
  h.ts().BeginIteration(0);
  for (int w = 0; w < 8; ++w) h.ts().HandleRequest(w);
  std::vector<std::pair<sim::NodeId, Grant>> first = h.grants;
  h.grants.clear();
  // Complete the first 7: their implicit requests all queue (no tokens
  // remain anywhere).
  for (int i = 0; i < 7; ++i) h.Complete(first[i].first, first[i].second.token);
  EXPECT_TRUE(h.grants.empty());
  EXPECT_EQ(h.ts().waiter_count(), 7u);
  // The 8th completion finishes level 0: 4 T-2 tokens are flushed out
  // and granted to the reporter + three waiters.
  h.Complete(first[7].first, first[7].second.token);
  EXPECT_EQ(h.grants.size(), 4u);
  for (auto& [w, g] : h.grants) EXPECT_EQ(g.token.level, 1);
  EXPECT_EQ(h.ts().waiter_count(), 4u);
}

TEST(TokenServerTest, HelperStealsFromStragglersBucket) {
  TokenServerHarness h(PaperConfig(), /*total_batch=*/256);  // 16 T-1s
  h.ts().BeginIteration(0);
  // Worker 5 churns through its own two STB tokens (each completion's
  // implicit request grants the next) and the T-2 they generate; its
  // next grant must be a steal from some straggler's untouched bucket.
  h.ts().HandleRequest(5);
  auto [w0, g0] = h.PopGrant();
  EXPECT_FALSE(g0.stolen);
  h.Complete(5, g0.token);
  auto [w1, g1] = h.PopGrant();
  EXPECT_EQ(g1.token.level, 0);
  EXPECT_FALSE(g1.stolen);
  h.Complete(5, g1.token);
  auto [w2, g2] = h.PopGrant();
  EXPECT_EQ(g2.token.level, 1);  // ADS grants the generated T-2 first
  h.Complete(5, g2.token);
  auto [w3, g3] = h.PopGrant();
  EXPECT_EQ(g3.token.level, 0);
  EXPECT_TRUE(g3.stolen);
  EXPECT_EQ(h.ts().stats().steals, 1u);
  // The stolen T-1 token's samples live on its home worker -> remote.
  EXPECT_EQ(g3.remote_fetches.size(), 1u);
}

TEST(TokenServerTest, RedundantRequestParksInsteadOfDoubleGranting) {
  // The lease protocol allows one live grant per worker: a request while
  // a grant is outstanding (a retry whose grant was not lost) parks the
  // worker in the wait queue instead of double-booking it.
  TokenServerHarness h(PaperConfig(), /*total_batch=*/256);
  h.ts().BeginIteration(0);
  h.ts().HandleRequest(5);
  EXPECT_EQ(h.grants.size(), 1u);
  h.ts().HandleRequest(5);
  h.ts().HandleRequest(5);
  EXPECT_EQ(h.grants.size(), 1u);
  EXPECT_EQ(h.ts().stats().redundant_requests, 2u);
  EXPECT_EQ(h.ts().waiter_count(), 1u);  // parked once, not twice
}

TEST(TokenServerTest, NoHfUsesGlobalBucketAndLock) {
  FelaConfig cfg = PaperConfig();
  cfg.hf_enabled = false;
  TokenServerHarness h(cfg);
  h.ts().BeginIteration(0);
  // Two simultaneous requests: the second conflicts on the lock.
  h.ts().HandleRequest(0);
  h.ts().HandleRequest(1);
  ASSERT_EQ(h.grants.size(), 2u);
  EXPECT_DOUBLE_EQ(h.grants[0].second.extra_delay, 0.0);
  EXPECT_GT(h.grants[1].second.extra_delay, 0.0);
  EXPECT_EQ(h.ts().stats().conflicts, 1u);
}

TEST(TokenServerTest, HfOwnBucketGrantsAreConflictFree) {
  TokenServerHarness h(PaperConfig());
  h.ts().BeginIteration(0);
  for (int w = 0; w < 8; ++w) h.ts().HandleRequest(w);
  EXPECT_EQ(h.ts().stats().conflicts, 0u);
  for (auto& [w, g] : h.grants) EXPECT_DOUBLE_EQ(g.extra_delay, 0.0);
}

TEST(TokenServerTest, CtdRestrictsCommTokensToSubset) {
  FelaConfig cfg = PaperConfig();
  cfg.ctd_subset_size = 2;  // S = {0, 1}; level 2 (FC) is comm-intensive
  TokenServerHarness h(cfg);
  h.ts().BeginIteration(0);
  for (int w = 0; w < 8; ++w) h.ts().HandleRequest(w);
  auto trained_by = [&] {
    std::map<int, std::vector<int>> by_level;
    int guard = 0;
    while (!h.all_done && guard++ < 10000 && !h.grants.empty()) {
      auto [w, g] = h.PopGrant();
      by_level[g.token.level].push_back(w);
      h.Complete(w, g.token);
    }
    return by_level;
  }();
  EXPECT_TRUE(h.all_done);
  for (int w : trained_by[2]) {
    EXPECT_LT(w, 2) << "comm token trained outside the CTD subset";
  }
}

TEST(TokenServerTest, RemainderTokensFlushedAtLevelCompletion) {
  // Batch 96 -> n_1 = 8 (min one per worker), batch 12 each; weights
  // {1,2,4} -> n_2 = 4, n_3 = 2; completions spread across 8 workers
  // leave residual single-completion pools that must be flushed.
  TokenServerHarness h(PaperConfig(), /*total_batch=*/96);
  h.ts().BeginIteration(0);
  for (int w = 0; w < 8; ++w) h.ts().HandleRequest(w);
  (void)h.DrainIteration();
  EXPECT_TRUE(h.all_done);
  for (int l = 0; l < 3; ++l) {
    EXPECT_EQ(h.ts().tokens_completed(l), h.plan().level(l).token_count);
  }
}

TEST(TokenServerTest, SamplesConservedAcrossLevels) {
  TokenServerHarness h(PaperConfig(), 128);
  h.ts().BeginIteration(0);
  std::map<int, double> samples_per_level;
  for (int w = 0; w < 8; ++w) h.ts().HandleRequest(w);
  int guard = 0;
  while (!h.all_done && guard++ < 10000 && !h.grants.empty()) {
    auto [w, g] = h.PopGrant();
    samples_per_level[g.token.level] += g.token.batch;
    h.Complete(w, g.token);
  }
  for (int l = 0; l < 3; ++l) {
    EXPECT_NEAR(samples_per_level[l], 128.0, 1e-9) << "level " << l;
  }
}

TEST(TokenServerTest, SecondIterationReusesServer) {
  TokenServerHarness h(PaperConfig());
  for (int it = 0; it < 3; ++it) {
    h.all_done = false;
    h.completed_levels.clear();
    h.ts().BeginIteration(it);
    for (int w = 0; w < 8; ++w) h.ts().HandleRequest(w);
    (void)h.DrainIteration();
    EXPECT_TRUE(h.all_done) << "iteration " << it;
  }
}

TEST(TokenServerTest, GrantRecordsAssignmentInInfoMapping) {
  TokenServerHarness h(PaperConfig());
  h.ts().BeginIteration(0);
  h.ts().HandleRequest(2);
  auto [w, g] = h.PopGrant();
  EXPECT_EQ(h.ts().info().AssigneeOf(g.token.id), 2);
}

TEST(TokenServerTest, ReportForWrongIterationCountedAndDropped) {
  // Under a lossy control plane a duplicated report can straddle the
  // iteration turnover, so a wrong-iteration report is not a protocol
  // violation anymore: it is counted and ignored.
  TokenServerHarness h(PaperConfig());
  h.ts().BeginIteration(0);
  Token stale;
  stale.id = 999;
  stale.iteration = 5;
  h.ts().HandleReport(0, stale);
  EXPECT_EQ(h.ts().stats().stale_reports, 1u);
  EXPECT_EQ(h.ts().stats().completions, 0u);
  EXPECT_TRUE(h.grants.empty());  // no implicit request honored
}

}  // namespace
}  // namespace fela::core
