#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

namespace fela::obs {
namespace {

TEST(FixedHistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  FixedHistogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.bucket_count(), 4u);  // 3 finite + overflow
  // The Prometheus "le" convention: x lands in the smallest bucket with
  // x <= bound.
  EXPECT_EQ(h.BucketOf(0.5), 0u);
  EXPECT_EQ(h.BucketOf(1.0), 0u);  // boundary is inclusive
  EXPECT_EQ(h.BucketOf(1.0001), 1u);
  EXPECT_EQ(h.BucketOf(2.0), 1u);
  EXPECT_EQ(h.BucketOf(4.0), 2u);
  EXPECT_EQ(h.BucketOf(4.0001), 3u);  // overflow
  EXPECT_DOUBLE_EQ(h.upper_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(h.upper_bound(2), 4.0);
  EXPECT_TRUE(std::isinf(h.upper_bound(3)));
}

TEST(FixedHistogramTest, ObserveAccumulatesSumAndCount) {
  FixedHistogram h({1.0, 2.0});
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(10.0);
  EXPECT_EQ(h.total_count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 12.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
}

TEST(FixedHistogramTest, MergeAddsMatchingBuckets) {
  FixedHistogram a({1.0, 2.0});
  FixedHistogram b({1.0, 2.0});
  a.Observe(0.5);
  b.Observe(0.5);
  b.Observe(1.5);
  a.Merge(b);
  EXPECT_EQ(a.total_count(), 3u);
  EXPECT_EQ(a.count(0), 2u);
  EXPECT_EQ(a.count(1), 1u);
  EXPECT_DOUBLE_EQ(a.sum(), 2.5);
}

TEST(MetricsRegistryTest, CountersAndGaugesByNameAndLabels) {
  MetricsRegistry reg;
  reg.GetCounter("grants", "engine=Fela").Increment(3);
  reg.GetCounter("grants", "engine=Fela").Increment();
  reg.GetCounter("grants", "engine=DP").Increment();
  reg.GetGauge("util", "worker=0").Set(0.5);
  reg.GetGauge("util", "worker=0").Set(0.75);  // last write wins

  ASSERT_NE(reg.FindCounter("grants", "engine=Fela"), nullptr);
  EXPECT_EQ(reg.FindCounter("grants", "engine=Fela")->value(), 4u);
  EXPECT_EQ(reg.FindCounter("grants", "engine=DP")->value(), 1u);
  EXPECT_DOUBLE_EQ(reg.FindGauge("util", "worker=0")->value(), 0.75);
  EXPECT_EQ(reg.FindCounter("grants", "engine=HP"), nullptr);
  EXPECT_EQ(reg.FindGauge("grants", "engine=Fela"), nullptr);  // kind mismatch
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistryTest, HandlesStayValidAcrossInsertions) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("first");
  for (int i = 0; i < 100; ++i) {
    reg.GetCounter("other_" + std::to_string(i)).Increment();
  }
  c.Increment(7);
  EXPECT_EQ(reg.FindCounter("first")->value(), 7u);
}

TEST(MetricsRegistryTest, MergeFoldsRegistries) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("n").Increment(2);
  b.GetCounter("n").Increment(3);
  b.GetCounter("only_b").Increment();
  a.GetGauge("g").Set(1.0);
  b.GetGauge("g").Set(2.0);
  a.GetHistogram("h", "", {1.0}).Observe(0.5);
  b.GetHistogram("h", "", {1.0}).Observe(2.0);

  a.Merge(b);
  EXPECT_EQ(a.FindCounter("n")->value(), 5u);
  EXPECT_EQ(a.FindCounter("only_b")->value(), 1u);
  EXPECT_DOUBLE_EQ(a.FindGauge("g")->value(), 2.0);
  EXPECT_EQ(a.FindHistogram("h")->total_count(), 2u);
}

TEST(MetricsRegistryTest, CsvExpandsHistogramBuckets) {
  MetricsRegistry reg;
  reg.GetCounter("grants", "engine=Fela").Increment(4);
  reg.GetHistogram("lat", "", {0.1, 0.2}).Observe(0.15);
  const std::string csv = reg.ToCsv();
  EXPECT_NE(csv.find("counter,grants,\"engine=Fela\",value,4"),
            std::string::npos);
  EXPECT_NE(csv.find("le=0.1"), std::string::npos);
  EXPECT_NE(csv.find("le=0.2"), std::string::npos);
  EXPECT_NE(csv.find("le=+inf"), std::string::npos);
  EXPECT_NE(csv.find("count"), std::string::npos);
  EXPECT_NE(csv.find("sum"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonExportIsParsableAndTyped) {
  MetricsRegistry reg;
  reg.GetCounter("c").Increment(2);
  reg.GetGauge("g", "a=b").Set(1.5);
  reg.GetHistogram("h", "", {1.0}).Observe(0.5);
  const common::Json doc = reg.ToJson();
  ASSERT_TRUE(doc.is_array());
  EXPECT_EQ(doc.size(), 3u);
  // Re-parse through the serializer for wire-compat.
  common::Json parsed;
  std::string error;
  ASSERT_TRUE(common::Json::Parse(doc.Dump(), &parsed, &error)) << error;
  bool saw_counter = false;
  for (const auto& m : parsed.items()) {
    if (m.Find("kind")->string_value() == "counter") {
      saw_counter = true;
      EXPECT_EQ(m.Find("name")->string_value(), "c");
      EXPECT_DOUBLE_EQ(m.Find("value")->number_value(), 2.0);
    }
  }
  EXPECT_TRUE(saw_counter);
}


// -------------------------------------------------------------------
// Histogram edge cases: exact-boundary observations, negative values,
// and the le=+inf overflow row staying consistent between the CSV and
// JSON exports.
// -------------------------------------------------------------------

TEST(FixedHistogramTest, ExactBoundaryObservationsStayInLowerBucket) {
  FixedHistogram h({1.0, 2.0, 4.0});
  h.Observe(1.0);  // each lands in the bucket whose bound it equals
  h.Observe(2.0);
  h.Observe(4.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(3), 0u);  // nothing overflows
  EXPECT_EQ(h.total_count(), 3u);
}

TEST(FixedHistogramTest, NegativeObservationsLandInFirstBucket) {
  FixedHistogram h({1.0, 2.0});
  h.Observe(-3.0);
  h.Observe(-0.0);
  EXPECT_EQ(h.BucketOf(-3.0), 0u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_DOUBLE_EQ(h.sum(), -3.0);  // sum keeps the sign
}

TEST(MetricsRegistryTest, CsvBucketRowsSumToTheCountRow) {
  MetricsRegistry reg;
  FixedHistogram& h = reg.GetHistogram("lat", "engine=Fela", {1.0, 2.0});
  h.Observe(-1.0);  // first bucket
  h.Observe(1.0);   // exact boundary
  h.Observe(1.5);
  h.Observe(99.0);  // overflow -> le=+inf row
  const std::string csv = reg.ToCsv();

  // CSV rows are per-bucket (non-cumulative); the le=+inf row is the
  // overflow bucket, and the bucket rows must add up to the count row.
  uint64_t bucket_sum = 0;
  uint64_t count_row = 0;
  uint64_t inf_row = 0;
  bool saw_inf = false;
  std::istringstream lines(csv);
  std::string line;
  while (std::getline(lines, line)) {
    const size_t field = line.find(",le=");
    const size_t last_comma = line.rfind(',');
    if (field != std::string::npos) {
      const uint64_t n = std::stoull(line.substr(last_comma + 1));
      bucket_sum += n;
      if (line.find("le=+inf") != std::string::npos) {
        saw_inf = true;
        inf_row = n;
      }
    } else if (line.find(",count,") != std::string::npos) {
      count_row = std::stoull(line.substr(last_comma + 1));
    }
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(inf_row, 1u);       // only the 99.0 observation overflowed
  EXPECT_EQ(bucket_sum, 4u);
  EXPECT_EQ(count_row, 4u);     // buckets partition the observations
}

TEST(MetricsRegistryTest, JsonHistogramMatchesCsvBucketCounts) {
  MetricsRegistry reg;
  FixedHistogram& h = reg.GetHistogram("lat", "", {1.0, 2.0});
  h.Observe(-1.0);
  h.Observe(1.0);
  h.Observe(1.5);
  h.Observe(99.0);
  const common::Json doc = reg.ToJson();
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.size(), 1u);
  const common::Json& m = doc.at(0);
  // counts has one trailing overflow entry beyond bounds (JSON's stand-
  // in for the CSV's le=+inf row).
  ASSERT_EQ(m.Find("bounds")->size(), 2u);
  ASSERT_EQ(m.Find("counts")->size(), 3u);
  double json_sum = 0.0;
  for (const auto& c : m.Find("counts")->items()) {
    json_sum += c.number_value();
  }
  EXPECT_DOUBLE_EQ(json_sum, m.Find("count")->number_value());
  EXPECT_DOUBLE_EQ(m.Find("counts")->at(2).number_value(), 1.0);
  EXPECT_DOUBLE_EQ(m.Find("counts")->at(0).number_value(), 2.0);
  EXPECT_DOUBLE_EQ(m.Find("sum")->number_value(), -1.0 + 1.0 + 1.5 + 99.0);
}

}  // namespace
}  // namespace fela::obs
