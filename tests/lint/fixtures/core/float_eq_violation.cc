// fela-lint fixture: the float-eq rule must fire on line 6 (the exact
// double comparison) and nowhere else in this file.
namespace fela::fixture {

bool SameTime(double a, double b) {
  return a == b;
}

bool SameCount(int a_count, int b_count) {
  return a_count == b_count;
}

}  // namespace fela::fixture
