// fela-lint fixture header: declares an unordered member whose
// non-emitting iteration (order_leak_helper.cc) taints Sum() as an
// order-leak source for the sim-scoped caller fixture.
#ifndef FELA_LINT_FIXTURE_ORDER_LEAK_HELPER_H_
#define FELA_LINT_FIXTURE_ORDER_LEAK_HELPER_H_

#include <unordered_set>

namespace fela::fixture {

class OrderLeakHelper {
 public:
  int Sum() const;

 private:
  std::unordered_set<int> ids_;
};

}  // namespace fela::fixture

#endif  // FELA_LINT_FIXTURE_ORDER_LEAK_HELPER_H_
