#include "model/profile.h"

#include <gtest/gtest.h>

namespace fela::model {
namespace {

TEST(ProfileRepositoryTest, RegisterAndLookup) {
  ProfileRepository repo;
  repo.Register("conv(1,2,3,4,k3)", 24.0);
  EXPECT_DOUBLE_EQ(repo.Lookup("conv(1,2,3,4,k3)"), 24.0);
  EXPECT_DOUBLE_EQ(repo.Lookup("unknown"), 0.0);
  EXPECT_TRUE(repo.Contains("conv(1,2,3,4,k3)"));
  EXPECT_FALSE(repo.Contains("unknown"));
  EXPECT_EQ(repo.size(), 1u);
}

TEST(ProfileRepositoryTest, ReRegisterOverwrites) {
  ProfileRepository repo;
  repo.Register("fc(8,8)", 100.0);
  repo.Register("fc(8,8)", 200.0);
  EXPECT_DOUBLE_EQ(repo.Lookup("fc(8,8)"), 200.0);
  EXPECT_EQ(repo.size(), 1u);
}

TEST(ProfileRepositoryTest, ExplicitLayerThresholdWins) {
  ProfileRepository repo;
  Layer l = Layer::Conv("x", 64, 64, 224, 224);
  repo.Register(l.ShapeKey(), 99.0);
  l.threshold_batch = 7.0;
  EXPECT_DOUBLE_EQ(repo.ThresholdFor(l), 7.0);
}

TEST(ProfileRepositoryTest, RepositoryBeatsHeuristic) {
  ProfileRepository repo;
  Layer l = Layer::Conv("x", 64, 64, 224, 224);
  repo.Register(l.ShapeKey(), 99.0);
  EXPECT_DOUBLE_EQ(repo.ThresholdFor(l), 99.0);
}

TEST(ProfileRepositoryTest, HeuristicIsLastResort) {
  ProfileRepository repo;
  Layer l = Layer::Conv("x", 64, 64, 224, 224);
  EXPECT_DOUBLE_EQ(repo.ThresholdFor(l), HeuristicThreshold(l));
}

TEST(ProfileRepositoryTest, DefaultHasFigureOneShapes) {
  const ProfileRepository& repo = ProfileRepository::Default();
  EXPECT_TRUE(repo.Contains("conv(64,64,224,224,k3)"));
  EXPECT_TRUE(repo.Contains("conv(512,512,14,14,k3)"));
  EXPECT_TRUE(repo.Contains("fc(4096,4096)"));
  EXPECT_DOUBLE_EQ(repo.Lookup("conv(64,64,224,224,k3)"), 16.0);
}

TEST(HeuristicTest, FrontConvAnchorsAt16) {
  EXPECT_NEAR(HeuristicThreshold(Layer::Conv("x", 64, 64, 224, 224)), 16.0,
              0.1);
}

TEST(HeuristicTest, SmallerFeatureMapsNeedBiggerBatches) {
  const double front =
      HeuristicThreshold(Layer::Conv("a", 64, 64, 224, 224));
  const double back = HeuristicThreshold(Layer::Conv("b", 512, 512, 14, 14));
  EXPECT_GT(back, front);
  EXPECT_LE(back, 64.0);  // clamped to the profiled CONV range
}

TEST(HeuristicTest, FcAnchorsAt2048) {
  EXPECT_NEAR(HeuristicThreshold(Layer::Fc("x", 4096, 4096)), 2048.0, 1.0);
}

TEST(HeuristicTest, FcClampRange) {
  EXPECT_LE(HeuristicThreshold(Layer::Fc("x", 100, 10)), 4096.0);
  EXPECT_GE(HeuristicThreshold(Layer::Fc("x", 64000, 64000)), 256.0);
}

TEST(RoundUpPow2Test, Basics) {
  EXPECT_DOUBLE_EQ(RoundUpPow2(1.0), 1.0);
  EXPECT_DOUBLE_EQ(RoundUpPow2(3.0), 4.0);
  EXPECT_DOUBLE_EQ(RoundUpPow2(16.0), 16.0);
  EXPECT_DOUBLE_EQ(RoundUpPow2(17.0), 32.0);
  EXPECT_DOUBLE_EQ(RoundUpPow2(0.3), 1.0);
}

}  // namespace
}  // namespace fela::model
