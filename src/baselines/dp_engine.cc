#include "baselines/dp_engine.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "sim/collectives.h"

namespace fela::baselines {

DpEngine::DpEngine(runtime::Cluster* cluster, const model::Model& model,
                   double total_batch)
    : cluster_(cluster),
      model_(model),
      cost_(cluster->calibration(), &model::ProfileRepository::Default()),
      memory_(cluster->calibration()),
      total_batch_(total_batch) {
  FELA_CHECK_GT(total_batch, 0.0);
  const int n = cluster_->num_workers();
  per_worker_batch_ = total_batch / static_cast<double>(n);
  const int max_fit = memory_.MaxBatchForModel(model_);
  FELA_CHECK_GT(max_fit, 0) << "model does not fit on the device at batch 1";
  if (per_worker_batch_ <= static_cast<double>(max_fit)) {
    micro_batch_ = per_worker_batch_;
    micro_steps_ = 1;
  } else {
    micro_steps_ = static_cast<int>(
        std::ceil(per_worker_batch_ / static_cast<double>(max_fit)));
    micro_batch_ = per_worker_batch_ / static_cast<double>(micro_steps_);
  }
  param_bytes_ =
      model_.TotalParams() * cluster_->calibration().bytes_per_scalar;
  attempt_start_.assign(static_cast<size_t>(n), 0.0);
}

void DpEngine::StartIteration(int iteration) {
  current_iteration_ = iteration;
  iteration_start_ = cluster_->simulator().now();
  workers_pending_ = cluster_->num_workers();
  if (cluster_->spans().enabled()) {
    iter_span_.emplace(&cluster_->spans(), cluster_->num_workers(),
                       obs::Phase::kIteration, iteration);
  }
  // One full training pass per micro-step; micro-steps run back-to-back
  // on the device (gradient accumulation).
  const double micro_seconds = cost_.RangeSeconds(
      model_, 0, model_.layer_count() - 1, micro_batch_);
  const double compute_seconds =
      micro_seconds * static_cast<double>(micro_steps_);
  for (int w = 0; w < cluster_->num_workers(); ++w) {
    sim::GpuDevice& gpu = cluster_->gpu(w);
    const double delay = cluster_->stragglers().DelayFor(iteration, w);
    if (delay > 0.0) {
      gpu.BlockUntil(cluster_->simulator().now() + delay);
    }
    const double slowdown = cluster_->stragglers().SlowdownFor(iteration, w);
    EnqueueCompute(w, compute_seconds * slowdown);
  }
}

void DpEngine::EnqueueCompute(int worker, double seconds) {
  sim::GpuDevice& gpu = cluster_->gpu(worker);
  // The attempt starts when the device actually picks it up, not at
  // enqueue time — redo attempts queue behind the recovery block.
  attempt_start_[static_cast<size_t>(worker)] =
      std::max(cluster_->simulator().now(), gpu.free_at());
  gpu.Enqueue(seconds, [this, worker, seconds] {
    OnWorkerComputeDone(worker, seconds);
  });
}

void DpEngine::OnWorkerComputeDone(int worker, double seconds) {
  const sim::FaultSchedule& faults = cluster_->faults();
  if (faults.Active() &&
      faults.AnyUnreachableDuring(attempt_start_[static_cast<size_t>(worker)],
                                  cluster_->simulator().now(), worker,
                                  /*anchor=*/0)) {
    // The replica died mid-batch — or a partition hid it from the ring's
    // anchor: its gradient is gone. No membership change is possible
    // under DP, so the whole attempt is redone once the node is back and
    // reachable — or never, stalling the barrier.
    ++stats_.faults.crashes;
    const sim::SimTime up =
        faults.NextReachableAfter(cluster_->simulator().now(), worker,
                                  /*anchor=*/0);
    if (sim::IsNever(up)) {
      stats_.stalled = true;
      return;  // peers wait at the barrier forever
    }
    ++stats_.faults.recoveries;
    if (up > cluster_->simulator().now()) {
      cluster_->gpu(worker).BlockUntil(up, obs::Phase::kCrashed);
    }
    EnqueueCompute(worker, seconds);
    return;
  }
  if (--workers_pending_ > 0) return;
  // BSP barrier reached; synchronize all parameters.
  std::vector<sim::NodeId> all;
  for (int i = 0; i < cluster_->num_workers(); ++i) all.push_back(i);
  sim::AllReduce(&cluster_->simulator(), &cluster_->fabric(), std::move(all),
                 param_bytes_, [this] { OnAllReduceDone(); },
                 &cluster_->spans());
}

void DpEngine::OnAllReduceDone() {
  stats_.iterations.push_back(runtime::IterationStats{
      iteration_start_, cluster_->simulator().now()});
  iter_span_.reset();  // emits the iteration framing span
  if (current_iteration_ + 1 < target_iterations_) {
    StartIteration(current_iteration_ + 1);
  } else {
    run_complete_ = true;
  }
}

runtime::RunStats DpEngine::Run(int iterations) {
  FELA_CHECK_GT(iterations, 0);
  FELA_CHECK(stats_.iterations.empty());
  target_iterations_ = iterations;
  cluster_->fabric().ResetStats();
  StartIteration(0);
  cluster_->simulator().Run();
  FELA_CHECK(run_complete_ || stats_.stalled)
      << "simulation drained before finishing";
  if (iter_span_) {
    // A stalled barrier never ends the iteration; drop the framing span
    // instead of charging the stall window to it.
    iter_span_->Cancel();
    iter_span_.reset();
  }
  stats_.total_time = cluster_->simulator().now();
  stats_.total_data_bytes = cluster_->fabric().total_data_bytes();
  stats_.total_gpu_busy = cluster_->TotalGpuBusy();
  stats_.control_messages = cluster_->fabric().control_message_count();
  return stats_;
}

}  // namespace fela::baselines
