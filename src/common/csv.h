#ifndef FELA_COMMON_CSV_H_
#define FELA_COMMON_CSV_H_

#include <ostream>
#include <string>
#include <vector>

namespace fela::common {

/// Minimal CSV emitter (RFC-4180 quoting) so benchmark harnesses can dump
/// machine-readable series next to the human-readable tables.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void WriteRow(const std::vector<std::string>& cells);

  /// Quotes a cell if it contains a comma, quote, or newline.
  static std::string Escape(const std::string& cell);

 private:
  std::ostream& os_;
};

}  // namespace fela::common

#endif  // FELA_COMMON_CSV_H_
