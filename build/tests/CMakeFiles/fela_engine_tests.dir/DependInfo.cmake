
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/engine/baselines_test.cc" "tests/CMakeFiles/fela_engine_tests.dir/engine/baselines_test.cc.o" "gcc" "tests/CMakeFiles/fela_engine_tests.dir/engine/baselines_test.cc.o.d"
  "/root/repo/tests/engine/deep_model_test.cc" "tests/CMakeFiles/fela_engine_tests.dir/engine/deep_model_test.cc.o" "gcc" "tests/CMakeFiles/fela_engine_tests.dir/engine/deep_model_test.cc.o.d"
  "/root/repo/tests/engine/experiment_test.cc" "tests/CMakeFiles/fela_engine_tests.dir/engine/experiment_test.cc.o" "gcc" "tests/CMakeFiles/fela_engine_tests.dir/engine/experiment_test.cc.o.d"
  "/root/repo/tests/engine/extra_baselines_test.cc" "tests/CMakeFiles/fela_engine_tests.dir/engine/extra_baselines_test.cc.o" "gcc" "tests/CMakeFiles/fela_engine_tests.dir/engine/extra_baselines_test.cc.o.d"
  "/root/repo/tests/engine/fela_engine_test.cc" "tests/CMakeFiles/fela_engine_tests.dir/engine/fela_engine_test.cc.o" "gcc" "tests/CMakeFiles/fela_engine_tests.dir/engine/fela_engine_test.cc.o.d"
  "/root/repo/tests/engine/integration_test.cc" "tests/CMakeFiles/fela_engine_tests.dir/engine/integration_test.cc.o" "gcc" "tests/CMakeFiles/fela_engine_tests.dir/engine/integration_test.cc.o.d"
  "/root/repo/tests/engine/properties_test.cc" "tests/CMakeFiles/fela_engine_tests.dir/engine/properties_test.cc.o" "gcc" "tests/CMakeFiles/fela_engine_tests.dir/engine/properties_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/suite/CMakeFiles/fela_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fela_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/fela_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fela_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/fela_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fela_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fela_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
