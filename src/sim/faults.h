#ifndef FELA_SIM_FAULTS_H_
#define FELA_SIM_FAULTS_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/types.h"

namespace fela::sim {

// kNeverTime and its IsNever() test live in sim/types.h alongside SimTime.

/// Fault injection schedule, the failure-side sibling of
/// StragglerSchedule: *worker crash / recover* events at simulated times
/// and *control-message drop / duplicate* events on the token protocol's
/// control plane. Every decision is a pure function of (time, worker) or
/// of a message sequence number plus a seed, so two runs with the same
/// schedule replay bit-identically (the property the determinism
/// regression tests pin down).
///
/// Model boundaries (see DESIGN.md "Fault model & recovery"):
///  * A down worker neither computes usefully nor exchanges control
///    messages; work in flight on it at crash time is lost.
///  * Bulk data transfers still complete even when an endpoint is down
///    (parameter chunks / sample shards are assumed recoverable from
///    node-local persistent storage, as with a replicated PS).
///  * Node 0 hosts the Token Server; schedules that crash worker 0 take
///    the control plane down with it (TS high availability is out of
///    scope), so experiments normally spare worker 0.
class FaultSchedule {
 public:
  virtual ~FaultSchedule() = default;

  /// False only for the no-op schedule; engines use this to keep the
  /// clean path entirely free of fault bookkeeping.
  virtual bool Active() const { return true; }

  /// True if `worker` is crashed (down) at simulated time `time`.
  /// Down intervals are half-open: [crash_time, recover_time).
  virtual bool IsDownAt(SimTime time, int worker) const = 0;

  /// Earliest candidate time strictly after `t` at which some worker's
  /// up/down state may change, or kNeverTime. Spurious candidates (times
  /// where nothing actually changes) are allowed; missed real transitions
  /// are not.
  virtual SimTime NextTransitionAfter(SimTime t) const = 0;

  /// True if the control message with fabric sequence number `seq`
  /// vanishes in flight.
  virtual bool DropControl(uint64_t seq) const {
    (void)seq;
    return false;
  }

  /// True if the control message with sequence number `seq` is delivered
  /// twice (a retransmitted duplicate).
  virtual bool DuplicateControl(uint64_t seq) const {
    (void)seq;
    return false;
  }

  /// Human-readable description for reports.
  virtual std::string ToString() const = 0;

  // -- Derived helpers (implemented with the virtuals) --------------------

  /// True if `worker` is down at any point in [t0, t1].
  bool AnyDownDuring(SimTime t0, SimTime t1, int worker) const;

  /// Earliest time >= t at which `worker` is up, or kNeverTime.
  SimTime NextUpAfter(SimTime t, int worker) const;
};

/// Baseline: nothing ever fails.
class NoFaults final : public FaultSchedule {
 public:
  bool Active() const override { return false; }
  bool IsDownAt(SimTime, int) const override { return false; }
  SimTime NextTransitionAfter(SimTime) const override { return kNeverTime; }
  std::string ToString() const override { return "none"; }
};

/// One scripted crash: `worker` dies at `crash_time` and comes back at
/// `recover_time` (kNeverTime = never recovers).
struct CrashEvent {
  int worker = 0;
  SimTime crash_time = 0.0;
  SimTime recover_time = kNeverTime;
};

/// Deterministic scripted crash/recover windows (the unit-test workhorse
/// and the "crash worker w at iteration k" building block).
class ScriptedCrashes final : public FaultSchedule {
 public:
  explicit ScriptedCrashes(std::vector<CrashEvent> events);
  bool IsDownAt(SimTime time, int worker) const override;
  SimTime NextTransitionAfter(SimTime t) const override;
  std::string ToString() const override;

  const std::vector<CrashEvent>& events() const { return events_; }

 private:
  std::vector<CrashEvent> events_;
};

/// Probabilistic crashes: simulated time is divided into fixed windows of
/// `window_sec`; at the start of each window every worker in
/// [first_worker, num_workers) independently crashes with probability
/// `crash_prob`, staying down for `down_sec` (kNeverTime = fail-stop).
/// Deterministic in (seed, window, worker). `first_worker` defaults to 1
/// so the Token Server host (node 0) survives; pass 0 to allow it.
class RandomCrashes final : public FaultSchedule {
 public:
  RandomCrashes(int num_workers, double crash_prob, SimTime window_sec,
                SimTime down_sec, uint64_t seed, int first_worker = 1);
  bool IsDownAt(SimTime time, int worker) const override;
  SimTime NextTransitionAfter(SimTime t) const override;
  std::string ToString() const override;

 private:
  bool CrashesInWindow(int64_t window, int worker) const;

  int num_workers_;
  double crash_prob_;
  SimTime window_sec_;
  SimTime down_sec_;
  uint64_t seed_;
  int first_worker_;
};

/// Lossy control plane: each control message is dropped with probability
/// `drop_prob` and duplicated with probability `dup_prob`, independently,
/// keyed on the fabric's message sequence number. No crashes.
class LossyControlPlane final : public FaultSchedule {
 public:
  LossyControlPlane(double drop_prob, double dup_prob, uint64_t seed);
  bool IsDownAt(SimTime, int) const override { return false; }
  SimTime NextTransitionAfter(SimTime) const override { return kNeverTime; }
  bool DropControl(uint64_t seq) const override;
  bool DuplicateControl(uint64_t seq) const override;
  std::string ToString() const override;

 private:
  double drop_prob_;
  double dup_prob_;
  uint64_t seed_;
};

/// OR-composition of several schedules (e.g. scripted crashes plus a
/// lossy control plane).
class CompositeFaults final : public FaultSchedule {
 public:
  explicit CompositeFaults(std::vector<std::unique_ptr<FaultSchedule>> parts);
  bool IsDownAt(SimTime time, int worker) const override;
  SimTime NextTransitionAfter(SimTime t) const override;
  bool DropControl(uint64_t seq) const override;
  bool DuplicateControl(uint64_t seq) const override;
  std::string ToString() const override;

 private:
  std::vector<std::unique_ptr<FaultSchedule>> parts_;
};

/// Replays a FaultSchedule onto a running simulation: walks the
/// schedule's transition times and invokes on_crash / on_recover exactly
/// when a worker's state flips. Engines that react to crashes (Fela's
/// elastic scale-in/out) drive their handlers from this. Stop() must be
/// called when the run completes so pending wake-ups do not keep the
/// event queue alive.
class FaultMonitor {
 public:
  struct Callbacks {
    std::function<void(int worker)> on_crash;
    std::function<void(int worker)> on_recover;
  };

  FaultMonitor(Simulator* sim, const FaultSchedule* faults, int num_workers,
               Callbacks cbs);

  FaultMonitor(const FaultMonitor&) = delete;
  FaultMonitor& operator=(const FaultMonitor&) = delete;

  /// Captures the current up/down state and schedules the first wake-up.
  /// Workers already down at start are reported via on_crash immediately.
  void Start();
  void Stop();

  bool IsDown(int worker) const {
    return down_[static_cast<size_t>(worker)];
  }

 private:
  void OnWakeup();
  void ScheduleNext(SimTime after);

  Simulator* sim_;
  const FaultSchedule* faults_;
  Callbacks cbs_;
  std::vector<bool> down_;
  EventId pending_ = kInvalidEventId;
};

}  // namespace fela::sim

#endif  // FELA_SIM_FAULTS_H_
