#ifndef FELA_CORE_TOKEN_BUCKET_H_
#define FELA_CORE_TOKEN_BUCKET_H_

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "core/fela_config.h"
#include "core/info_mapping.h"
#include "core/token.h"

namespace fela::core {

/// Builds the level scan order the Token Distributor uses for `worker`:
///  * ADS on (§III-D Principle 1): highest level first.
///  * ADS off: lowest level first (breadth-first / FIFO baseline).
///  * CTD (§III-F), when the subset S = {0..subset-1} is smaller than the
///    cluster: workers in S scan communication-intensive levels first
///    (T-2 > T-3 > T-1 in the paper's example); workers outside S never
///    see communication-intensive levels.
/// `ctd_relaxed` suppresses the CTD scoping: the Token Server sets it
/// while every subset worker is down, so the survivors can still drain
/// communication-intensive tokens instead of wedging the iteration on
/// workers that may never return (liveness valve).
std::vector<int> LevelPriorityFor(sim::NodeId worker, const FelaConfig& config,
                                  const FelaPlan& plan,
                                  bool ctd_relaxed = false);

/// A bucket of schedulable tokens (the global Token Bucket, or one
/// sub-Token Bucket when HF partitions it, §III-E). Selection follows the
/// provided level order; within a level, ADS Principle 2 picks the token
/// with the highest Eq. 1 locality score for the requesting worker
/// (ties: smallest token id). With locality scoring disabled the bucket
/// degrades to sequential (smallest-id) selection.
class TokenBucket {
 public:
  TokenBucket() = default;

  void Add(Token token);

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  size_t CountAtLevel(int level) const;

  /// True if any stored token belongs to a level in `order`.
  bool HasTokenForOrder(const std::vector<int>& order) const;

  /// Removes and returns the best token for `worker` following `order`,
  /// or nullopt if no token matches. For level-0 tokens the locality
  /// score is 1 when the worker holds the token's training samples
  /// (sample_home), 0 otherwise — the sample-storage analogue of Eq. 1.
  std::optional<Token> Take(sim::NodeId worker, const InfoMapping& info,
                            const std::vector<int>& order, bool use_locality);

  /// Removes and returns the token with the given id, or nullopt if it is
  /// not stored here. Used by the sharded Token Server's failover path to
  /// pull a fence-parked token back out when its checkpointed lease is
  /// restored.
  std::optional<Token> TakeById(TokenId id);

  /// Locality score used by Take (exposed for tests).
  static double ScoreFor(sim::NodeId worker, const InfoMapping& info,
                         const Token& token);

  /// Every stored token, level-ascending then FIFO within a level — the
  /// same order a sequence of Add calls would rebuild. The deterministic
  /// serialization the Token Server's checkpoint uses.
  std::vector<Token> Snapshot() const;

  void Clear();

 private:
  std::map<int, std::deque<Token>> by_level_;
  size_t size_ = 0;
};

}  // namespace fela::core

#endif  // FELA_CORE_TOKEN_BUCKET_H_
