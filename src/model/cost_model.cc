#include "model/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fela::model {

LayerCostModel::LayerCostModel(const sim::Calibration& cal,
                               const ProfileRepository* repo)
    : cal_(cal), repo_(repo) {
  FELA_CHECK(repo != nullptr);
}

double LayerCostModel::PerSampleSeconds(const Layer& layer) const {
  return layer.FlopsPerSample() * kTrainingFlopsMultiplier /
         cal_.gpu_effective_flops;
}

double LayerCostModel::UnderutilizationSeconds(const Layer& layer,
                                               double batch) const {
  const double threshold = repo_->ThresholdFor(layer);
  if (batch >= threshold) return 0.0;
  const double g = cal_.latency_region_exponent;
  const double occupancy_bound_time =
      PerSampleSeconds(layer) * std::pow(batch, g) * std::pow(threshold, 1.0 - g);
  return occupancy_bound_time - PerSampleSeconds(layer) * batch;
}

double LayerCostModel::PassSeconds(const Layer& layer, double batch) const {
  FELA_CHECK_GT(batch, 0.0);
  return batch * PerSampleSeconds(layer) +
         UnderutilizationSeconds(layer, batch);
}

double LayerCostModel::RangeSeconds(const Model& model, int lo, int hi,
                                    double batch) const {
  double s = 0.0;
  for (int i = lo; i <= hi; ++i) s += PassSeconds(model.layer(i), batch);
  return s;
}

double LayerCostModel::Throughput(const Layer& layer, double batch) const {
  return batch / PassSeconds(layer, batch);
}

std::vector<ThroughputPoint> LayerCostModel::SweepThroughput(
    const Layer& layer, double max_batch) const {
  std::vector<ThroughputPoint> points;
  for (double b = 1.0; b <= max_batch; b *= 2.0) {
    points.push_back(ThroughputPoint{b, Throughput(layer, b)});
  }
  return points;
}

double LayerCostModel::MeasureThresholdBatch(const Layer& layer,
                                             double max_batch,
                                             double fraction) const {
  const auto points = SweepThroughput(layer, max_batch);
  FELA_CHECK(!points.empty());
  double peak = 0.0;
  for (const auto& p : points) peak = std::max(peak, p.samples_per_sec);
  for (const auto& p : points) {
    if (p.samples_per_sec >= fraction * peak) return p.batch;
  }
  return points.back().batch;
}

}  // namespace fela::model
