#include "common/arena.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fela::common {
namespace {

/// Counts live instances and records destruction order.
struct Probe {
  explicit Probe(int id) : id(id) { ++live; }
  ~Probe() {
    --live;
    destroyed_order.push_back(id);
  }
  Probe(const Probe&) = delete;
  Probe& operator=(const Probe&) = delete;

  int id;
  static int live;
  static std::vector<int> destroyed_order;
};
int Probe::live = 0;
std::vector<int> Probe::destroyed_order;

TEST(ObjectArenaTest, EmplaceConstructsInPlaceInOrder) {
  ObjectArena<std::string> arena(3);
  arena.EmplaceBack("a");
  arena.EmplaceBack(2, 'b');
  EXPECT_EQ(arena.size(), 2u);
  EXPECT_EQ(arena.capacity(), 3u);
  EXPECT_EQ(arena[0], "a");
  EXPECT_EQ(arena[1], "bb");
}

TEST(ObjectArenaTest, AddressesAreStableAcrossFill) {
  // The whole point of the fixed-capacity contract: pointers handed out
  // by early EmplaceBacks never dangle from a reallocation.
  ObjectArena<int> arena(100);
  int* first = &arena.EmplaceBack(7);
  for (int i = 1; i < 100; ++i) arena.EmplaceBack(i);
  EXPECT_EQ(first, &arena[0]);
  EXPECT_EQ(*first, 7);
  EXPECT_EQ(arena.end() - arena.begin(), 100);
}

TEST(ObjectArenaTest, ClearDestroysNewestFirstAndKeepsStorage) {
  Probe::destroyed_order.clear();
  ObjectArena<Probe> arena(2);
  arena.EmplaceBack(1);
  arena.EmplaceBack(2);
  EXPECT_EQ(Probe::live, 2);
  arena.Clear();
  EXPECT_EQ(Probe::live, 0);
  EXPECT_EQ(Probe::destroyed_order, (std::vector<int>{2, 1}));
  // Storage survives: the arena refills to the same capacity.
  arena.EmplaceBack(3);
  EXPECT_EQ(arena.size(), 1u);
  EXPECT_EQ(arena[0].id, 3);
}

TEST(ObjectArenaTest, DestructorDestroysContents) {
  Probe::destroyed_order.clear();
  {
    ObjectArena<Probe> arena(1);
    arena.EmplaceBack(9);
    EXPECT_EQ(Probe::live, 1);
  }
  EXPECT_EQ(Probe::live, 0);
}

TEST(ObjectArenaTest, RangeForIteratesInInsertionOrder) {
  ObjectArena<int> arena(4);
  for (int i = 0; i < 4; ++i) arena.EmplaceBack(i * i);
  int expected = 0, idx = 0;
  for (const int v : arena) {
    expected += v;
    EXPECT_EQ(v, idx * idx);
    ++idx;
  }
  EXPECT_EQ(expected, 0 + 1 + 4 + 9);
}

TEST(ObjectArenaTest, EmptyArenaIsIterableAndEmpty) {
  ObjectArena<int> arena;
  EXPECT_TRUE(arena.empty());
  EXPECT_EQ(arena.begin(), arena.end());
}

TEST(ObjectArenaDeathTest, OverfillAndReReserveAreCheckedFailures) {
  // volatile keeps the capacity opaque, so the compiler cannot prove the
  // overfilling EmplaceBack (which the CHECK aborts at runtime) writes
  // out of bounds and reject the test at build time.
  volatile size_t cap = 1;
  ObjectArena<int> arena(cap);
  arena.EmplaceBack(1);
  EXPECT_DEATH(arena.EmplaceBack(2), "arena full");
  EXPECT_DEATH(arena.Reserve(5), "fixed after Reserve");
}

}  // namespace
}  // namespace fela::common
