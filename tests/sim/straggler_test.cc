#include "sim/straggler.h"

#include <gtest/gtest.h>

namespace fela::sim {
namespace {

TEST(NoStragglersTest, AlwaysZero) {
  NoStragglers s;
  for (int it = 0; it < 10; ++it) {
    for (int w = 0; w < 8; ++w) EXPECT_DOUBLE_EQ(s.DelayFor(it, w), 0.0);
  }
  EXPECT_EQ(s.ToString(), "none");
}

TEST(RoundRobinTest, ExactlyOneVictimPerIteration) {
  RoundRobinStragglers s(8, 6.0);
  for (int it = 0; it < 24; ++it) {
    int victims = 0;
    for (int w = 0; w < 8; ++w) {
      const double d = s.DelayFor(it, w);
      if (d > 0) {
        ++victims;
        EXPECT_DOUBLE_EQ(d, 6.0);
        EXPECT_EQ(w, it % 8);
      }
    }
    EXPECT_EQ(victims, 1);
  }
}

TEST(RoundRobinTest, RotatesThroughAllWorkers) {
  RoundRobinStragglers s(4, 1.0);
  for (int w = 0; w < 4; ++w) {
    EXPECT_GT(s.DelayFor(w, w), 0.0);
    EXPECT_GT(s.DelayFor(w + 4, w), 0.0);
  }
}

TEST(RoundRobinTest, ToStringMentionsDelay) {
  EXPECT_EQ(RoundRobinStragglers(8, 2.0).ToString(), "round-robin(d=2.0s)");
}

TEST(ProbabilityTest, DeterministicPerSeed) {
  ProbabilityStragglers a(0.3, 6.0, 42);
  ProbabilityStragglers b(0.3, 6.0, 42);
  for (int it = 0; it < 50; ++it) {
    for (int w = 0; w < 8; ++w) {
      EXPECT_DOUBLE_EQ(a.DelayFor(it, w), b.DelayFor(it, w));
    }
  }
}

TEST(ProbabilityTest, DifferentSeedsDiffer) {
  ProbabilityStragglers a(0.5, 1.0, 1);
  ProbabilityStragglers b(0.5, 1.0, 2);
  int diff = 0;
  for (int it = 0; it < 100; ++it) {
    for (int w = 0; w < 8; ++w) {
      if (a.DelayFor(it, w) != b.DelayFor(it, w)) ++diff;
    }
  }
  EXPECT_GT(diff, 100);
}

TEST(ProbabilityTest, ZeroAndOneProbabilities) {
  ProbabilityStragglers never(0.0, 6.0, 7);
  ProbabilityStragglers always(1.0, 6.0, 7);
  for (int it = 0; it < 10; ++it) {
    for (int w = 0; w < 8; ++w) {
      EXPECT_DOUBLE_EQ(never.DelayFor(it, w), 0.0);
      EXPECT_DOUBLE_EQ(always.DelayFor(it, w), 6.0);
    }
  }
}

class ProbabilityRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(ProbabilityRateSweep, EmpiricalRateMatchesP) {
  const double p = GetParam();
  ProbabilityStragglers s(p, 3.0, 1234);
  int hits = 0;
  const int n_iters = 4000;
  for (int it = 0; it < n_iters; ++it) {
    for (int w = 0; w < 8; ++w) {
      if (s.DelayFor(it, w) > 0) ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / (n_iters * 8), p, 0.02);
}

INSTANTIATE_TEST_SUITE_P(PaperRange, ProbabilityRateSweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5));

TEST(TransientTest, OneVictimPerBurstWindow) {
  TransientStragglers s(8, 4.0, 5, 99);
  for (int window = 0; window < 10; ++window) {
    int victim = -1;
    for (int it = window * 5; it < (window + 1) * 5; ++it) {
      int count = 0;
      for (int w = 0; w < 8; ++w) {
        if (s.DelayFor(it, w) > 0) {
          ++count;
          if (victim < 0) victim = w;
          EXPECT_EQ(w, victim) << "victim stable within window";
        }
      }
      EXPECT_EQ(count, 1);
    }
  }
}

TEST(TransientTest, VictimChangesAcrossWindows) {
  TransientStragglers s(8, 4.0, 3, 5);
  int distinct = 0;
  int prev = -1;
  for (int window = 0; window < 20; ++window) {
    for (int w = 0; w < 8; ++w) {
      if (s.DelayFor(window * 3, w) > 0) {
        if (w != prev) ++distinct;
        prev = w;
      }
    }
  }
  EXPECT_GT(distinct, 5);
}

}  // namespace
}  // namespace fela::sim
