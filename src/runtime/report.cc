#include "runtime/report.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/table.h"

namespace fela::runtime {

std::string RenderComparisonTable(const std::string& title,
                                  const std::string& x_label,
                                  const std::vector<std::string>& engine_names,
                                  const std::vector<ComparisonRow>& rows,
                                  size_t fela_column, int precision) {
  FELA_CHECK_LT(fela_column, engine_names.size());
  std::vector<std::string> headers;
  headers.push_back(x_label);
  for (const auto& name : engine_names) headers.push_back(name);
  for (size_t c = 0; c < engine_names.size(); ++c) {
    if (c == fela_column) continue;
    headers.push_back(engine_names[fela_column] + "/" + engine_names[c]);
  }

  common::TablePrinter table(headers);
  for (const auto& row : rows) {
    FELA_CHECK_EQ(row.values.size(), engine_names.size());
    std::vector<std::string> cells;
    cells.push_back(common::StrFormat("%g", row.x));
    for (double v : row.values)
      cells.push_back(common::TablePrinter::Num(v, precision));
    for (size_t c = 0; c < row.values.size(); ++c) {
      if (c == fela_column) continue;
      cells.push_back(
          common::TablePrinter::Ratio(row.values[fela_column] / row.values[c]));
    }
    table.AddRow(std::move(cells));
  }
  return title + "\n" + table.ToString();
}

std::pair<double, double> GainRange(const std::vector<ComparisonRow>& rows,
                                    size_t fela_column, size_t other_column) {
  FELA_CHECK(!rows.empty());
  double lo = rows[0].values[fela_column] / rows[0].values[other_column];
  double hi = lo;
  for (const auto& row : rows) {
    const double g = row.values[fela_column] / row.values[other_column];
    lo = std::min(lo, g);
    hi = std::max(hi, g);
  }
  return {lo, hi};
}

std::string FormatGain(double gain) {
  if (gain >= 2.0) return common::StrFormat("%.2fx", gain);
  return common::StrFormat("%.2f%%", (gain - 1.0) * 100.0);
}

std::string RenderFaultSummary(const std::string& engine_name,
                               const RunStats& stats) {
  const FaultStats& f = stats.faults;
  if (!f.any() && !stats.stalled) return "";
  std::string out = common::StrFormat(
      "%s faults: %llu crashes, %llu recoveries (%llu re-admitted, mean "
      "recovery latency %.2fs)",
      engine_name.c_str(), static_cast<unsigned long long>(f.crashes),
      static_cast<unsigned long long>(f.recoveries),
      static_cast<unsigned long long>(f.readmissions),
      f.MeanRecoveryLatency());
  out += common::StrFormat(
      "; tokens: %llu reclaimed, %llu regranted"
      "; control plane: %llu dropped, %llu duplicated, %llu retries, "
      "%llu duplicate reports",
      static_cast<unsigned long long>(f.tokens_reclaimed),
      static_cast<unsigned long long>(f.regrants),
      static_cast<unsigned long long>(f.control_dropped),
      static_cast<unsigned long long>(f.control_duplicated),
      static_cast<unsigned long long>(f.request_retries),
      static_cast<unsigned long long>(f.duplicate_reports));
  if (f.ts_failovers > 0) {
    out += common::StrFormat(
        "; TS: %llu failovers, %llu leases restored",
        static_cast<unsigned long long>(f.ts_failovers),
        static_cast<unsigned long long>(f.leases_restored));
  }
  if (f.partition_cuts > 0) {
    out += common::StrFormat(
        "; partitions: %llu cuts, %llu heals",
        static_cast<unsigned long long>(f.partition_cuts),
        static_cast<unsigned long long>(f.partition_heals));
  }
  if (stats.stalled) {
    out += common::StrFormat("; STALLED after %d iterations",
                             stats.iteration_count());
  }
  return out;
}

std::string RenderAttributionTable(const obs::AttributionReport& report) {
  if (report.workers.empty() || report.critical.empty()) return "";
  // Column order mirrors how a reader debugs a slow run: did it compute,
  // what blocked it, was it even alive.
  const obs::Phase columns[] = {
      obs::Phase::kCompute,   obs::Phase::kSyncWait, obs::Phase::kTransfer,
      obs::Phase::kTokenWait, obs::Phase::kStraggler, obs::Phase::kCrashed,
      obs::Phase::kIdle,
  };
  std::vector<std::string> headers;
  headers.push_back("worker");
  for (const obs::Phase p : columns) headers.push_back(obs::PhaseName(p));
  headers.push_back("seconds");
  common::TablePrinter table(headers);
  auto add_row = [&](const std::string& label,
                     const obs::PhaseBreakdown& b) {
    std::vector<std::string> cells;
    cells.push_back(label);
    for (const obs::Phase p : columns) {
      cells.push_back(common::TablePrinter::Percent(b.fraction(p), 1));
    }
    cells.push_back(common::TablePrinter::Num(b.total, 3));
    table.AddRow(std::move(cells));
  };
  for (const obs::WorkerAttribution& w : report.workers) {
    add_row(common::StrFormat("w%d", w.worker), w.run);
  }
  add_row("all", report.Cluster());
  std::string out = common::StrFormat("%s time attribution (%d iterations)\n",
                                      report.engine.c_str(),
                                      static_cast<int>(report.critical.size()));
  out += table.ToString();
  out += common::StrFormat("critical-path bottleneck: %s\n",
                           obs::PhaseName(report.RunBottleneck()));
  return out;
}

}  // namespace fela::runtime
