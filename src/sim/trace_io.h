#ifndef FELA_SIM_TRACE_IO_H_
#define FELA_SIM_TRACE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/tokenize.h"
#include "sim/span.h"
#include "sim/trace.h"

namespace fela::obs {

/// Compact binary transcript of one run's observability artifacts: the
/// span ring and (optionally) the trace-event ring, with details stored
/// as 32-bit tokens + packed args instead of text. The format is
/// explicitly little-endian byte-serialized (no struct memcpy), so the
/// bytes are platform-independent and safe to hash for determinism
/// fingerprints.
///
/// Layout ("FELATRB1" format):
///   magic   "FELATRB1" (8 bytes)
///   u32     num_workers
///   u8      has_trace (0/1: was a TraceRecorder attached)
///   span section:
///     u64 count, u64 dropped, u64 capacity
///     count * 64-byte records:
///       f64 begin, f64 end, u64 args[4], i32 track, i32 iteration,
///       u32 token, u8 phase, u8 arg_count, u8 arg_types, u8 pad(=0)
///   trace section (only if has_trace):
///     u64 count, u64 dropped, u64 capacity
///     count * 52-byte records:
///       f64 time, u64 args[4], i32 node, u32 token,
///       u8 kind, u8 arg_count, u8 arg_types, u8 flags
///     ...each record with (flags & kDynamicDetailFlag) followed by
///       u32 len + len bytes of dynamic detail text
///   trailer "FELAEND\n" (8 bytes)
inline constexpr std::string_view kBinaryTraceMagic = "FELATRB1";
inline constexpr std::string_view kBinaryTraceTrailer = "FELAEND\n";

/// Parsed form of a binary trace — everything needed to re-render the
/// text timeline and the Chrome trace offline.
struct BinaryTraceData {
  int num_workers = 0;
  bool has_trace = false;

  std::vector<Span> spans;  // oldest-first, as serialized
  uint64_t spans_dropped = 0;
  uint64_t span_capacity = 0;

  std::vector<sim::TraceRecord> events;       // oldest-first
  std::vector<std::string> dynamic_details;   // slot-parallel to events
  uint64_t trace_dropped = 0;
  uint64_t trace_capacity = 0;

  /// True when the input ended mid-stream: everything parsed up to the
  /// cut is kept, and renderers append an explicit end-of-stream marker.
  bool truncated = false;
};

/// Serializes the current contents of `spans` (+ `trace` if non-null)
/// into the FELATRB1 byte format. Rings are flattened oldest-first.
std::string SerializeBinaryTrace(const SpanSink& spans,
                                 const sim::TraceRecorder* trace,
                                 int num_workers);

/// Parses FELATRB1 bytes. Returns false only on a malformed header
/// (bad magic / impossibly short input); a stream cut off anywhere
/// after the header parses successfully with `out->truncated` set, so
/// a partial flight-recorder dump is still readable.
bool ParseBinaryTrace(std::string_view bytes, BinaryTraceData* out,
                      std::string* error);

/// Re-renders the trace-event timeline text, byte-identical to what
/// TraceRecorder::ToString() produced in-process (given the same token
/// registry), plus a trailing end-of-stream marker when truncated.
std::string RenderTraceText(const BinaryTraceData& data,
                            const common::TokenRegistry* registry = nullptr);

/// Re-renders the Chrome trace JSON, byte-identical to what
/// ChromeTraceString() produced in-process.
std::string RenderChromeTrace(const BinaryTraceData& data,
                              const common::TokenRegistry* registry = nullptr);

}  // namespace fela::obs

#endif  // FELA_SIM_TRACE_IO_H_
