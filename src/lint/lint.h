#ifndef FELA_LINT_LINT_H_
#define FELA_LINT_LINT_H_

#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace fela::lint {

/// One rule violation. `line` is 1-based; `rule` is the kebab-case rule
/// id a suppression comment names: `// fela-lint: allow(<rule>): <why>`.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  friend bool operator==(const Finding& a, const Finding& b) {
    return a.file == b.file && a.line == b.line && a.rule == b.rule &&
           a.message == b.message;
  }
};

/// Static metadata for one lint rule (drives --list-rules and the docs).
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// All rules, in reporting order. Per-file rules:
///   wall-clock       wall-clock time source in deterministic sim code
///   unseeded-rng     unseeded/global randomness (only fela::common::Rng)
///   unordered-iter   emitting iteration over an unordered container
///   discarded-status discarded Status/Result return value
///   float-eq         exact floating-point ==/!= in sim code
///   untraced-event   FELA_TRACE-free event scheduling in engine hot paths
///   untokenized-trace raw string detail at a trace/span call site
///   bare-allow       suppression comment without a justification
/// Whole-tree (interprocedural) rules, only run by LintTree:
///   transitive-wall-clock  sim code calls a helper that reaches a wall clock
///   transitive-rng         sim code calls a helper that reaches unseeded RNG
///   order-leak             sim code calls a helper that iterates unordered
///   guarded-by             FELA_GUARDED_BY member accessed without its lock
///   sweep-shared-state     mutable static/global shared across sweep workers
const std::vector<RuleInfo>& Rules();

/// True when `rule` names a known rule id.
bool IsKnownRule(const std::string& rule);

struct Options {
  /// Rules to run; empty means all.
  std::set<std::string> rules;
};

/// Wall-time spent in each pass of a LintTree run, in seconds, plus the
/// number of files scanned. Reported under "timings" in --format=json
/// and exportable as a BenchReport row set via TimingsToBenchJson.
struct Timings {
  double lex_seconds = 0.0;
  double include_graph_seconds = 0.0;
  double index_seconds = 0.0;
  double rules_seconds = 0.0;
  double total_seconds = 0.0;
  size_t files = 0;
};

/// Lints a single file's `contents` with the per-file rules only (the
/// interprocedural rules need the whole tree and run in LintTree).
/// `path` is used both for reporting and for rule scoping (path
/// components "sim", "core", "baselines", "runtime" mark simulation
/// code). `extra_unordered_members` seeds the unordered-iter rule with
/// member names declared elsewhere (the paired header);
/// `status_functions` seeds discarded-status with the names of
/// Status/Result-returning functions collected across the tree.
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& contents,
                              const Options& options,
                              const std::set<std::string>&
                                  extra_unordered_members = {},
                              const std::set<std::string>& status_functions =
                                  {});

/// Walks `roots` (files or directories), lints every .h/.hpp/.cc/.cpp,
/// and returns findings sorted by (file, line, rule). Passes:
///   lex            read + comment/string blanking (lexer.h)
///   include graph  quoted-include resolution, cycles, transitive closure
///   index          function/method symbol index and call graph
///   rules          per-file rules, then the interprocedural rules
/// A file inherits unordered members from its sibling header and from
/// every project header in its *transitive* include closure. When
/// `timings` is non-null it receives per-pass wall time. Returns false
/// and fills `error` when a root cannot be read.
bool LintTree(const std::vector<std::string>& roots, const Options& options,
              std::vector<Finding>* findings, std::string* error,
              Timings* timings = nullptr);

/// Machine-readable report: {"count":N,"findings":[{file,line,message,rule}]}
/// with keys emitted in sorted order. Pure function of the findings —
/// byte-stable across runs.
std::string FindingsToJson(const std::vector<Finding>& findings);

/// FindingsToJson plus a "timings" object (per-pass seconds + file
/// count); what --format=json prints.
std::string ReportToJson(const std::vector<Finding>& findings,
                         const Timings& timings);

/// The timings as a BenchReport-shaped document (one row per pass) so
/// the standard bench-JSON validator and tooling accept lint timing
/// artifacts (BENCH_lint.json).
std::string TimingsToBenchJson(const Timings& timings);

/// Human-readable aligned table plus a one-line summary.
std::string FindingsToTable(const std::vector<Finding>& findings);

// ---------------------------------------------------------------------------
// Findings baseline (the ratchet)
// ---------------------------------------------------------------------------

/// `path` reduced to its repo-relative tail: components from the first
/// of {src, tools, tests, bench, examples} onward, joined with '/'.
/// Baselines store normalized paths so the file is stable no matter
/// where the tree was checked out or how fela-lint was invoked.
std::string NormalizePath(const std::string& path);

/// One tolerated legacy finding. Matching ignores line numbers (they
/// drift with unrelated edits); the key is (normalized file, rule,
/// message). `why` is a human note carried through regeneration.
struct BaselineEntry {
  std::string file;
  std::string rule;
  std::string message;
  std::string why;
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

/// The result of screening findings against a baseline: `fresh` is what
/// the ratchet rejects, `stale` is baseline entries that no longer
/// match anything (candidates for pruning), `matched` counts tolerated
/// findings.
struct BaselineResult {
  std::vector<Finding> fresh;
  std::vector<BaselineEntry> stale;
  size_t matched = 0;
};

/// Parses a baseline JSON document; false + `error` on malformed input.
bool ParseBaseline(const std::string& json, Baseline* baseline,
                   std::string* error);

/// Screens `findings` against `baseline`. Duplicate keys consume
/// baseline credit one finding at a time.
BaselineResult ApplyBaseline(const Baseline& baseline,
                             const std::vector<Finding>& findings);

/// Serializes `findings` as a fresh baseline, deterministically (sorted
/// entries, sorted keys). Entries that also exist in `previous` keep
/// their `why` notes.
std::string BaselineToJson(const std::vector<Finding>& findings,
                           const Baseline& previous);

/// The fela-lint command line:
///   fela-lint [--format=table|json] [--rules=a,b] [--list-rules]
///             [--baseline=FILE] [--update-baseline] [--bench-out=FILE]
///             <path>...
/// With --baseline, findings matching the baseline are tolerated and
/// only fresh findings fail the run; --update-baseline instead
/// regenerates FILE from the current findings and exits 0.
/// Exit codes: 0 clean, 1 findings reported, 2 usage or I/O error.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace fela::lint

#endif  // FELA_LINT_LINT_H_
