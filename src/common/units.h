#ifndef FELA_COMMON_UNITS_H_
#define FELA_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace fela::common {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

/// Converts a link rate in gigabits per second to bytes per second.
constexpr double GbpsToBytesPerSec(double gbps) { return gbps * 1e9 / 8.0; }

/// "1.50 GiB", "12.00 MiB", "512 B" -- for logs and reports.
std::string FormatBytes(double bytes);

/// "1.234 s", "12.3 ms", "45.6 us" -- for logs and reports.
std::string FormatSeconds(double seconds);

}  // namespace fela::common

#endif  // FELA_COMMON_UNITS_H_
