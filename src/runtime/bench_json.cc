#include "runtime/bench_json.h"

#include <cmath>
#include <fstream>
#include <utility>

#include "common/string_util.h"

namespace fela::obs {

BenchReport::BenchReport(std::string bench_name)
    : name_(std::move(bench_name)) {}

void BenchReport::Add(const runtime::ExperimentResult& result, double x) {
  common::Json row = common::Json::Object();
  row.Set("engine", result.engine_name);
  row.Set("x", x);
  row.Set("iterations", result.stats.iteration_count());
  row.Set("mean_iteration_seconds", result.stats.MeanIterationSeconds());
  row.Set("total_seconds", result.stats.total_time);
  row.Set("average_throughput", result.average_throughput);
  row.Set("gpu_utilization", result.gpu_utilization);
  row.Set("stalled", result.stats.stalled);
  if (result.observed) {
    row.Set("attribution", AttributionToJson(result.attribution));
    row.Set("metrics", result.metrics.ToJson());
  }
  results_.Append(std::move(row));
}

common::Json BenchReport::ToJson() const {
  common::Json doc = common::Json::Object();
  doc.Set("bench", name_);
  doc.Set("results", results_);
  // Canonical sorted key order: two exports of the same results are
  // byte-identical regardless of row-member insertion order.
  doc.SortKeysRecursive();
  return doc;
}

std::string BenchReport::WriteFile() const {
  const std::string path = BenchJsonPath(name_);
  std::ofstream out(path);
  if (!out) return "";
  out << ToJson().Dump(1) << "\n";
  out.close();
  return out ? path : "";
}

std::string BenchJsonPath(const std::string& bench_name) {
  return "BENCH_" + bench_name + ".json";
}

namespace {

bool Fail(std::string* error, std::string what) {
  if (error != nullptr) *error = std::move(what);
  return false;
}

bool CheckNumber(const common::Json& row, const char* key,
                 std::string* error) {
  const common::Json* v = row.Find(key);
  if (v == nullptr || !v->is_number()) {
    return Fail(error, common::StrFormat("missing/invalid \"%s\"", key));
  }
  return true;
}

bool CheckFractionsSumToOne(const common::Json& fractions, std::string* error,
                            const char* where) {
  if (!fractions.is_object()) {
    return Fail(error, common::StrFormat("%s: fractions not an object", where));
  }
  double sum = 0.0;
  for (const auto& [key, value] : fractions.members()) {
    if (!value.is_number()) {
      return Fail(error, common::StrFormat("%s: fraction \"%s\" not a number",
                                           where, key.c_str()));
    }
    sum += value.number_value();
  }
  if (std::abs(sum - 1.0) > 1e-9) {
    return Fail(error, common::StrFormat("%s: fractions sum to %.12f, not 1",
                                         where, sum));
  }
  return true;
}

bool ValidateAttribution(const common::Json& attr, std::string* error) {
  const common::Json* workers = attr.Find("workers");
  if (workers == nullptr || !workers->is_array()) {
    return Fail(error, "attribution missing \"workers\" array");
  }
  for (const common::Json& w : workers->items()) {
    const common::Json* fractions = w.Find("fractions");
    if (fractions == nullptr) {
      return Fail(error, "worker attribution missing \"fractions\"");
    }
    if (!CheckFractionsSumToOne(*fractions, error, "worker")) return false;
    const common::Json* per_iter = w.Find("per_iteration");
    if (per_iter == nullptr || !per_iter->is_array()) {
      return Fail(error, "worker attribution missing \"per_iteration\"");
    }
    for (const common::Json& it : per_iter->items()) {
      if (!CheckFractionsSumToOne(it, error, "iteration")) return false;
    }
  }
  if (attr.Find("run_bottleneck") == nullptr ||
      !attr.Find("run_bottleneck")->is_string()) {
    return Fail(error, "attribution missing \"run_bottleneck\"");
  }
  const common::Json* critical = attr.Find("critical_path");
  if (critical == nullptr || !critical->is_array()) {
    return Fail(error, "attribution missing \"critical_path\"");
  }
  for (const common::Json& c : critical->items()) {
    const common::Json* bottleneck = c.Find("bottleneck");
    if (bottleneck == nullptr || !bottleneck->is_string()) {
      return Fail(error, "critical-path entry missing \"bottleneck\"");
    }
  }
  return true;
}

}  // namespace

bool ValidateBenchReportJson(const common::Json& doc, std::string* error) {
  if (!doc.is_object()) return Fail(error, "document not an object");
  const common::Json* bench = doc.Find("bench");
  if (bench == nullptr || !bench->is_string() ||
      bench->string_value().empty()) {
    return Fail(error, "missing/invalid \"bench\"");
  }
  const common::Json* results = doc.Find("results");
  if (results == nullptr || !results->is_array()) {
    return Fail(error, "missing/invalid \"results\"");
  }
  if (results->size() == 0) return Fail(error, "\"results\" is empty");
  for (const common::Json& row : results->items()) {
    if (!row.is_object()) return Fail(error, "result row not an object");
    const common::Json* engine = row.Find("engine");
    if (engine == nullptr || !engine->is_string()) {
      return Fail(error, "result row missing \"engine\"");
    }
    for (const char* key :
         {"x", "iterations", "mean_iteration_seconds", "total_seconds",
          "average_throughput", "gpu_utilization"}) {
      if (!CheckNumber(row, key, error)) return false;
    }
    const common::Json* stalled = row.Find("stalled");
    if (stalled == nullptr || !stalled->is_bool()) {
      return Fail(error, "result row missing \"stalled\"");
    }
    const common::Json* attr = row.Find("attribution");
    if (attr != nullptr && !ValidateAttribution(*attr, error)) return false;
  }
  return true;
}

bool ValidateLintReportJson(const common::Json& doc, std::string* error) {
  if (!doc.is_object()) return Fail(error, "document not an object");
  const common::Json* count = doc.Find("count");
  if (count == nullptr || !count->is_number()) {
    return Fail(error, "missing/invalid \"count\"");
  }
  const common::Json* findings = doc.Find("findings");
  if (findings == nullptr || !findings->is_array()) {
    return Fail(error, "missing/invalid \"findings\"");
  }
  if (static_cast<size_t>(count->number_value()) != findings->size()) {
    return Fail(error, common::StrFormat(
                           "\"count\" is %d but \"findings\" has %d entries",
                           static_cast<int>(count->number_value()),
                           static_cast<int>(findings->size())));
  }
  for (const common::Json& row : findings->items()) {
    if (!row.is_object()) return Fail(error, "finding row not an object");
    for (const char* key : {"file", "message", "rule"}) {
      const common::Json* v = row.Find(key);
      if (v == nullptr || !v->is_string()) {
        return Fail(error,
                    common::StrFormat("finding missing/invalid \"%s\"", key));
      }
    }
    if (!CheckNumber(row, "line", error)) return false;
  }
  const common::Json* timings = doc.Find("timings");
  if (timings == nullptr || !timings->is_object()) {
    return Fail(error, "missing/invalid \"timings\"");
  }
  for (const char* key :
       {"files", "lex_seconds", "include_graph_seconds", "index_seconds",
        "rules_seconds", "total_seconds"}) {
    if (!CheckNumber(*timings, key, error)) return false;
    if (timings->Find(key)->number_value() < 0.0) {
      return Fail(error, common::StrFormat("timing \"%s\" is negative", key));
    }
  }
  return true;
}

}  // namespace fela::obs
