#ifndef FELA_BENCH_BENCH_UTIL_H_
#define FELA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.h"
#include "runtime/bench_json.h"
#include "runtime/determinism.h"
#include "runtime/report.h"
#include "runtime/sweep.h"
#include "suite/suite.h"

namespace fela::bench {

/// Iterations per measured configuration. The paper trains every
/// configuration for 100 iterations (Eq. 3).
inline constexpr int kIterations = 100;

/// Common command-line switches shared by the quantitative benches:
///   --json   write BENCH_<name>.json (per-engine iteration times plus,
///            for observed runs, the attribution report) and turn
///            observability on for the measured runs;
///   --smoke  shrink the sweep to one tiny point with a few iterations
///            (CI-sized; used by the tier-1 smoke test);
///   --verify-determinism
///            before printing results, run a representative
///            configuration twice and fail (non-zero exit) unless the
///            two transcripts are byte-identical (runtime/determinism.h);
///   --jobs N run the sweep's independent experiment replicas on N
///            threads (N = 0 means hardware concurrency). Each replica
///            stays single-threaded and deterministic, and results are
///            rendered in sweep order, so every byte of stdout, CSV,
///            and BENCH_*.json is identical to a --jobs 1 run.
struct BenchOptions {
  bool json = false;
  bool smoke = false;
  bool verify_determinism = false;
  int jobs = 1;

  /// Sweep iterations honoring --smoke.
  int iterations() const { return smoke ? 3 : kIterations; }
  /// First sweep point only under --smoke.
  template <typename T>
  std::vector<T> Sweep(const std::vector<T>& full) const {
    if (!smoke || full.empty()) return full;
    return {full.front()};
  }
  /// A runner honoring --jobs; benches stage per-point tasks on it.
  runtime::SweepRunner Runner() const { return runtime::SweepRunner(jobs); }
};

inline BenchOptions ParseBenchArgs(int argc, char** argv) {
  BenchOptions opts;
  auto parse_jobs = [&opts](const char* value) {
    const int n = std::atoi(value);
    opts.jobs = n <= 0 ? runtime::SweepRunner::HardwareJobs() : n;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) opts.json = true;
    else if (std::strcmp(argv[i], "--smoke") == 0) opts.smoke = true;
    else if (std::strcmp(argv[i], "--verify-determinism") == 0)
      opts.verify_determinism = true;
    else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      parse_jobs(argv[++i]);
    else if (std::strncmp(argv[i], "--jobs=", 7) == 0)
      parse_jobs(argv[i] + 7);
    else std::fprintf(stderr, "ignoring unknown flag %s\n", argv[i]);
  }
  return opts;
}

/// Writes the report when --json was passed, then re-parses the written
/// file and validates it against the bench schema, so a bench run under
/// --json fails loudly (non-zero exit) if the artifact ever drifts.
/// Returns the bench's exit code.
inline int FinishBench(const BenchOptions& opts,
                       const obs::BenchReport& report) {
  if (!opts.json) return 0;
  const std::string path = report.WriteFile();
  if (path.empty()) {
    std::fprintf(stderr, "failed to write %s\n",
                 obs::BenchJsonPath(report.name()).c_str());
    return 1;
  }
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  common::Json doc;
  std::string error;
  if (!common::Json::Parse(text.str(), &doc, &error) ||
      !obs::ValidateBenchReportJson(doc, &error)) {
    std::fprintf(stderr, "%s failed validation: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu result rows)\n", path.c_str(), report.size());
  return 0;
}

/// Run-twice determinism gate for experiment-driven benches. No-op
/// unless --verify-determinism was passed; then runs `spec` twice
/// (observability forced on; the replicas run concurrently under
/// --jobs > 1) and returns 1 — the bench's failure exit — when the
/// transcripts diverge, printing the first divergent line.
inline int VerifyDeterminismGate(
    const BenchOptions& opts, const std::string& label,
    const runtime::ExperimentSpec& spec,
    const runtime::EngineFactory& engine,
    const runtime::StragglerFactory& stragglers,
    const runtime::FaultFactory& faults = nullptr) {
  if (!opts.verify_determinism) return 0;
  const runtime::DeterminismReport report =
      runtime::VerifyDeterminism(spec, engine, stragglers, faults, opts.jobs);
  std::printf("determinism[%s]: %s\n", label.c_str(),
              report.ToString().c_str());
  return report.deterministic ? 0 : 1;
}

/// Determinism gate for analytic (simulation-free) benches: evaluates
/// `render` twice and byte-compares the output. No-op without
/// --verify-determinism.
inline int VerifyRenderDeterminism(const BenchOptions& opts,
                                   const std::string& label,
                                   const std::function<std::string()>& render) {
  if (!opts.verify_determinism) return 0;
  const std::string first = render();
  const std::string second = render();
  const bool same = first == second;
  std::printf("determinism[%s]: %s hash=%016llx\n", label.c_str(),
              same ? "deterministic" : "DIVERGED",
              static_cast<unsigned long long>(runtime::Fnv1a64(first)));
  return same ? 0 : 1;
}

/// The paper's batch sweeps. VGG19 follows Fig. 6's 64..1024; GoogLeNet
/// uses a larger range (its 32x32 inputs train far more samples/s).
inline const std::vector<double>& Vgg19Batches() {
  static const std::vector<double> kBatches = {64, 128, 256, 512, 1024};
  return kBatches;
}
inline const std::vector<double>& GoogLeNetBatches() {
  static const std::vector<double> kBatches = {128, 256, 512, 1024, 2048};
  return kBatches;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Prints the paper-style "outperforms X by a%~b" summary line.
inline void PrintGainSummary(const std::string& model,
                             const std::vector<runtime::ComparisonRow>& rows) {
  for (size_t other = 0; other + 1 < suite::EngineNames().size(); ++other) {
    const auto [lo, hi] = runtime::GainRange(rows, suite::kFelaColumn, other);
    std::printf("  %s: Fela outperforms %s by %s ~ %s\n", model.c_str(),
                suite::EngineNames()[other].c_str(),
                runtime::FormatGain(lo).c_str(),
                runtime::FormatGain(hi).c_str());
  }
}

}  // namespace fela::bench

#endif  // FELA_BENCH_BENCH_UTIL_H_
