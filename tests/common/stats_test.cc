#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fela::common {
namespace {

TEST(SummaryStatsTest, EmptyIsZeroed) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(SummaryStatsTest, BasicMoments) {
  SummaryStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);  // classic textbook data set
}

TEST(SummaryStatsTest, SumAccumulates) {
  SummaryStats s;
  s.Add(1.5);
  s.Add(2.5);
  EXPECT_DOUBLE_EQ(s.sum(), 4.0);
}

TEST(SummaryStatsTest, MergeMatchesCombinedStream) {
  SummaryStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    double v = i * 0.37 - 3;
    (i % 2 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryStatsTest, MergeWithEmptySides) {
  SummaryStats a;
  SummaryStats b;
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  SummaryStats c;
  a.Merge(c);
  EXPECT_EQ(a.count(), 1u);
}

TEST(SummaryStatsTest, ResetClears) {
  SummaryStats s;
  s.Add(1);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(SamplesTest, ExactPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(90), 90.1, 1e-9);
}

TEST(SamplesTest, SingleSample) {
  Samples s;
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 7.0);
}

TEST(SamplesTest, MinMaxMeanSum) {
  Samples s;
  s.Add(3);
  s.Add(1);
  s.Add(2);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 3.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 6.0);
}

TEST(SamplesDeathTest, PercentileOfEmptyAborts) {
  Samples s;
  EXPECT_DEATH(s.Percentile(50), "Check failed");
}

TEST(HistogramTest, BucketBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.BucketOf(0.0), 0u);
  EXPECT_EQ(h.BucketOf(1.99), 0u);
  EXPECT_EQ(h.BucketOf(2.0), 1u);
  EXPECT_EQ(h.BucketOf(9.99), 4u);
  // Out-of-range clamps.
  EXPECT_EQ(h.BucketOf(-5.0), 0u);
  EXPECT_EQ(h.BucketOf(50.0), 4u);
}

TEST(HistogramTest, CountsAccumulate) {
  Histogram h(0.0, 10.0, 5);
  h.Add(1.0);
  h.Add(1.5);
  h.Add(9.0);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, BucketEdgesReported) {
  Histogram h(10.0, 20.0, 2);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 15.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 20.0);
}

TEST(NormalizeToUnitTest, MapsToUnitInterval) {
  // The paper's Fig. 6(a) normalization scheme.
  std::vector<double> v = {2.0, 4.0, 6.0};
  auto n = NormalizeToUnit(v);
  EXPECT_DOUBLE_EQ(n[0], 0.0);
  EXPECT_DOUBLE_EQ(n[1], 0.5);
  EXPECT_DOUBLE_EQ(n[2], 1.0);
}

TEST(NormalizeToUnitTest, ConstantSeriesIsZero) {
  auto n = NormalizeToUnit({3.0, 3.0, 3.0});
  for (double x : n) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(NormalizeToUnitTest, EmptyInEmptyOut) {
  EXPECT_TRUE(NormalizeToUnit({}).empty());
}

}  // namespace
}  // namespace fela::common
