file(REMOVE_RECURSE
  "CMakeFiles/fela_common.dir/csv.cc.o"
  "CMakeFiles/fela_common.dir/csv.cc.o.d"
  "CMakeFiles/fela_common.dir/logging.cc.o"
  "CMakeFiles/fela_common.dir/logging.cc.o.d"
  "CMakeFiles/fela_common.dir/rng.cc.o"
  "CMakeFiles/fela_common.dir/rng.cc.o.d"
  "CMakeFiles/fela_common.dir/stats.cc.o"
  "CMakeFiles/fela_common.dir/stats.cc.o.d"
  "CMakeFiles/fela_common.dir/status.cc.o"
  "CMakeFiles/fela_common.dir/status.cc.o.d"
  "CMakeFiles/fela_common.dir/string_util.cc.o"
  "CMakeFiles/fela_common.dir/string_util.cc.o.d"
  "CMakeFiles/fela_common.dir/table.cc.o"
  "CMakeFiles/fela_common.dir/table.cc.o.d"
  "CMakeFiles/fela_common.dir/units.cc.o"
  "CMakeFiles/fela_common.dir/units.cc.o.d"
  "libfela_common.a"
  "libfela_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fela_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
