#include "common/table.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace fela::common {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  FELA_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  FELA_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += " | ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    line += "\n";
    return line;
  };

  std::string out = render_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out += "-+-";
    out.append(widths[c], '-');
  }
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

std::string TablePrinter::Num(double v, int precision) {
  return StrFormat("%.*f", precision, v);
}

std::string TablePrinter::Ratio(double v, int precision) {
  return StrFormat("%.*fx", precision, v);
}

std::string TablePrinter::Percent(double v, int precision) {
  return StrFormat("%.*f%%", precision, v * 100.0);
}

}  // namespace fela::common
