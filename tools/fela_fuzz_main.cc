// fela-fuzz: property-based spec fuzzer with runtime invariant oracles.
// Generates random-but-valid experiment compositions (engine x model x
// cluster x stragglers x faults), runs each under the oracle battery
// (token conservation, event causality, memory bounds, attribution sums,
// stats sanity, metamorphic twins), and greedily shrinks any failure to
// a replayable JSON repro. See DESIGN.md "Property-based testing".
//
//   fela-fuzz [--seed N] [--runs N] [--jobs N]   fuzz `runs` cases from N
//             [--shrink-out FILE]                repro path on failure
//             [--replay FILE]                    re-run a repro JSON
//             [--mutate]                         arm the mutation canary
//
// Cases are staged on a SweepRunner and rendered in submission order, so
// stdout is byte-identical for any --jobs value (0 = hardware threads).
// Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/token_server.h"
#include "runtime/sweep.h"
#include "testing/fuzzer.h"
#include "testing/spec_gen.h"

namespace {

using fela::testing::FuzzCaseResult;
using fela::testing::FuzzSpec;

struct Options {
  uint64_t seed = 1;
  int runs = 100;
  int jobs = 1;
  std::string shrink_out = "fela-fuzz-repro.json";
  std::string replay;
  bool mutate = false;
};

bool ParseUint(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

int Usage(std::ostream& err) {
  err << "usage: fela-fuzz [--seed N] [--runs N] [--jobs N] "
         "[--shrink-out FILE] [--replay FILE] [--mutate]\n";
  return 2;
}

bool ParseArgs(const std::vector<std::string>& args, Options* out,
               std::ostream& err) {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&](std::string* value) {
      if (i + 1 >= args.size()) return false;
      *value = args[++i];
      return true;
    };
    std::string v;
    uint64_t n = 0;
    if (a == "--seed") {
      if (!next(&v) || !ParseUint(v, &n)) return false;
      out->seed = n;
    } else if (a == "--runs") {
      if (!next(&v) || !ParseUint(v, &n) || n == 0) return false;
      out->runs = static_cast<int>(n);
    } else if (a == "--jobs") {
      if (!next(&v) || !ParseUint(v, &n)) return false;
      out->jobs = n == 0 ? fela::runtime::SweepRunner::HardwareJobs()
                         : static_cast<int>(n);
    } else if (a == "--shrink-out") {
      if (!next(&v)) return false;
      out->shrink_out = v;
    } else if (a == "--replay") {
      if (!next(&v)) return false;
      out->replay = v;
    } else if (a == "--mutate") {
      out->mutate = true;
    } else {
      err << "fela-fuzz: unknown argument '" << a << "'\n";
      return false;
    }
  }
  return true;
}

void PrintViolations(const FuzzCaseResult& result, std::ostream& os) {
  for (const fela::testing::Violation& v : result.violations) {
    os << "  violation[" << v.oracle << "] " << v.detail << "\n";
  }
}

bool WriteRepro(const FuzzSpec& spec, const std::string& path,
                std::ostream& err) {
  std::ofstream out(path);
  if (!out) {
    err << "fela-fuzz: cannot write repro to '" << path << "'\n";
    return false;
  }
  out << fela::testing::SpecToJson(spec).Dump(1) << "\n";
  return static_cast<bool>(out);
}

int Replay(const Options& opts, std::ostream& os, std::ostream& err) {
  std::ifstream in(opts.replay);
  if (!in) {
    err << "fela-fuzz: cannot read '" << opts.replay << "'\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  fela::common::Json doc;
  std::string error;
  if (!fela::common::Json::Parse(buffer.str(), &doc, &error)) {
    err << "fela-fuzz: bad JSON in '" << opts.replay << "': " << error
        << "\n";
    return 2;
  }
  FuzzSpec spec;
  if (!fela::testing::SpecFromJson(doc, &spec, &error)) {
    err << "fela-fuzz: bad spec in '" << opts.replay << "': " << error
        << "\n";
    return 2;
  }
  const FuzzCaseResult result = fela::testing::RunFuzzCase(spec);
  os << "replay " << fela::testing::SpecLabel(spec) << "\n";
  if (result.ok()) {
    os << "replay ok\n";
    return 0;
  }
  PrintViolations(result, os);
  os << "replay FAILED with " << result.violations.size()
     << " violation(s)\n";
  return 1;
}

int Fuzz(const Options& opts, std::ostream& os, std::ostream& err) {
  os << "fela-fuzz seed=" << opts.seed << " runs=" << opts.runs << "\n";

  // Stage every case on the runner, collect results into slots owned
  // here, then render serially in case order: stdout is byte-identical
  // for any --jobs value.
  std::vector<FuzzCaseResult> results(static_cast<size_t>(opts.runs));
  fela::runtime::SweepRunner runner(opts.jobs);
  for (int i = 0; i < opts.runs; ++i) {
    const uint64_t case_seed = opts.seed + static_cast<uint64_t>(i);
    runner.Add([&results, i, case_seed] {
      results[static_cast<size_t>(i)] =
          fela::testing::RunFuzzCase(fela::testing::GenerateSpec(case_seed));
    });
  }
  runner.RunAll();

  int failing = 0;
  int first_failing = -1;
  for (int i = 0; i < opts.runs; ++i) {
    const FuzzCaseResult& r = results[static_cast<size_t>(i)];
    os << fela::testing::CaseSummaryLine(static_cast<uint64_t>(i), r) << "\n";
    if (!r.ok()) {
      PrintViolations(r, os);
      ++failing;
      if (first_failing < 0) first_failing = i;
    }
  }
  os << "summary: " << opts.runs << " case(s), " << failing
     << " failing\n";
  if (failing == 0) return 0;

  // Minimize the first failure into a replayable repro.
  const FuzzSpec& failed = results[static_cast<size_t>(first_failing)].spec;
  const fela::testing::ShrinkResult shrunk = fela::testing::Shrink(failed);
  os << "shrink: " << shrunk.reductions << " reduction(s) in "
     << shrunk.attempts << " attempt(s) -> "
     << fela::testing::SpecLabel(shrunk.spec) << "\n";
  if (WriteRepro(shrunk.spec, opts.shrink_out, err)) {
    os << "repro written to " << opts.shrink_out << "\n";
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  Options opts;
  if (!ParseArgs(args, &opts, std::cerr)) return Usage(std::cerr);
  if (opts.mutate) {
    // The canary's leak counter is process-global: parallel cases would
    // race it, so mutation runs are forced serial.
    fela::core::SetTokenServerMutationForTesting(true);
    opts.jobs = 1;
  }
  if (!opts.replay.empty()) return Replay(opts, std::cout, std::cerr);
  return Fuzz(opts, std::cout, std::cerr);
}
