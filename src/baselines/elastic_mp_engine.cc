#include "baselines/elastic_mp_engine.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fela::baselines {

namespace {
constexpr double kForwardShare = 1.0 / 3.0;
}  // namespace

ElasticMpEngine::ElasticMpEngine(runtime::Cluster* cluster,
                                 const model::Model& model,
                                 double total_batch, double micro_batch,
                                 int profile_period)
    : cluster_(cluster),
      model_(model),
      cost_(cluster->calibration(), &model::ProfileRepository::Default()),
      total_batch_(total_batch),
      micro_batch_(micro_batch),
      profile_period_(profile_period) {
  FELA_CHECK_GT(total_batch, 0.0);
  FELA_CHECK_GT(micro_batch, 0.0);
  FELA_CHECK_GT(profile_period, 0);
  num_micros_ =
      std::max(1, static_cast<int>(std::ceil(total_batch / micro_batch)));
  const int stages = std::min(cluster->num_workers(), model_.layer_count());
  stages_ = model::EqualLayerCountPartition(model_, stages);
  period_busy_start_.assign(static_cast<size_t>(stages), 0.0);
  period_sleep_start_.assign(static_cast<size_t>(stages), 0.0);
}

double ElasticMpEngine::MicroBatchOf(int micro) const {
  if (micro + 1 < num_micros_) return micro_batch_;
  return total_batch_ - micro_batch_ * static_cast<double>(num_micros_ - 1);
}

double ElasticMpEngine::BoundaryBytes(int stage, int micro) const {
  const int first_layer = stages_[static_cast<size_t>(stage)].first;
  return model_.BoundaryActivationElems(first_layer) * MicroBatchOf(micro) *
         cluster_->calibration().bytes_per_scalar;
}

void ElasticMpEngine::Repartition() {
  // Measured slowdown per worker over the elapsed period: wall GPU time
  // (compute + injected sleep) per second of useful compute.
  const int stages = static_cast<int>(stages_.size());
  std::vector<double> capacity(static_cast<size_t>(stages), 1.0);
  for (int s = 0; s < stages; ++s) {
    const double busy =
        cluster_->gpu(s).busy_time() - period_busy_start_[static_cast<size_t>(s)];
    const double sleep = cluster_->gpu(s).injected_sleep() -
                         period_sleep_start_[static_cast<size_t>(s)];
    // Capacity ~ nominal seconds of the stage's assigned work divided by
    // the wall seconds the device actually needed (slowdowns inflate
    // busy time; sleeps add on top). This is the profile ElasticPipe's
    // head node would gather.
    const auto [lo, hi] = stages_[static_cast<size_t>(s)];
    const double nominal_per_iter =
        cost_.RangeSeconds(model_, lo, hi, micro_batch_) *
        static_cast<double>(num_micros_);
    const double nominal = nominal_per_iter * profile_period_;
    capacity[static_cast<size_t>(s)] =
        (busy + sleep) > 0.0 ? nominal / (busy + sleep) : 1.0;
  }
  double total_capacity = 0.0;
  for (double c : capacity) total_capacity += c;

  // Greedy contiguous re-partition: stage s receives roughly
  // total_flops * capacity_s / total_capacity.
  const double total_flops = model_.TotalFlopsPerSample();
  std::vector<std::pair<int, int>> ranges;
  int start = 0;
  double acc = 0.0;
  int stage = 0;
  for (int i = 0; i < model_.layer_count(); ++i) {
    acc += model_.layer(i).FlopsPerSample();
    const int remaining_layers = model_.layer_count() - i - 1;
    const int stages_after = stages - static_cast<int>(ranges.size()) - 1;
    if (stages_after <= 0) break;
    const double target = total_flops *
                          capacity[static_cast<size_t>(stage)] /
                          total_capacity;
    const bool must_close = remaining_layers == stages_after;
    const bool may_close = remaining_layers >= stages_after;
    if (must_close || (acc >= target && may_close)) {
      ranges.emplace_back(start, i);
      start = i + 1;
      acc = 0.0;
      ++stage;
    }
  }
  ranges.emplace_back(start, model_.layer_count() - 1);
  FELA_CHECK_EQ(ranges.size(), stages_.size());
  stages_ = std::move(ranges);
  ++repartition_count_;
}

void ElasticMpEngine::StartIteration(int iteration) {
  current_iteration_ = iteration;
  iteration_start_ = cluster_->simulator().now();
  backwards_pending_ = num_micros_;
  tail_forwards_done_ = 0;
  if (cluster_->spans().enabled()) {
    iter_span_.emplace(&cluster_->spans(), cluster_->num_workers(),
                       obs::Phase::kIteration, iteration);
  }

  if (iteration > 0 && iteration % profile_period_ == 0) {
    Repartition();
  }
  if (iteration % profile_period_ == 0) {
    for (size_t s = 0; s < stages_.size(); ++s) {
      period_busy_start_[s] = cluster_->gpu(static_cast<int>(s)).busy_time();
      period_sleep_start_[s] =
          cluster_->gpu(static_cast<int>(s)).injected_sleep();
    }
  }

  for (int s = 0; s < static_cast<int>(stages_.size()); ++s) {
    const double delay = cluster_->stragglers().DelayFor(iteration, s);
    if (delay > 0.0) {
      cluster_->gpu(s).BlockUntil(cluster_->simulator().now() + delay);
    }
  }
  for (int k = 0; k < num_micros_; ++k) EnqueueForward(0, k);
}

void ElasticMpEngine::EnqueueForward(int stage, int micro) {
  const auto [lo, hi] = stages_[static_cast<size_t>(stage)];
  const double seconds =
      cost_.RangeSeconds(model_, lo, hi, MicroBatchOf(micro)) * kForwardShare *
      cluster_->stragglers().SlowdownFor(current_iteration_, stage);
  cluster_->gpu(stage).Enqueue(
      seconds, [this, stage, micro] { OnForwardDone(stage, micro); });
}

void ElasticMpEngine::OnForwardDone(int stage, int micro) {
  if (stage + 1 < static_cast<int>(stages_.size())) {
    cluster_->fabric().Transfer(
        stage, stage + 1, BoundaryBytes(stage + 1, micro),
        [this, stage, micro] { EnqueueForward(stage + 1, micro); });
  } else {
    ++tail_forwards_done_;
    if (tail_forwards_done_ == num_micros_) {
      for (int k = num_micros_ - 1; k >= 0; --k) EnqueueBackward(stage, k);
    }
  }
}

void ElasticMpEngine::EnqueueBackward(int stage, int micro) {
  const auto [lo, hi] = stages_[static_cast<size_t>(stage)];
  const double seconds =
      cost_.RangeSeconds(model_, lo, hi, MicroBatchOf(micro)) *
      (1.0 - kForwardShare) *
      cluster_->stragglers().SlowdownFor(current_iteration_, stage);
  cluster_->gpu(stage).Enqueue(
      seconds, [this, stage, micro] { OnBackwardDone(stage, micro); });
}

void ElasticMpEngine::OnBackwardDone(int stage, int micro) {
  if (stage > 0) {
    cluster_->fabric().Transfer(
        stage, stage - 1, BoundaryBytes(stage, micro),
        [this, stage, micro] { EnqueueBackward(stage - 1, micro); });
  } else {
    if (--backwards_pending_ == 0) FinishIteration();
  }
}

void ElasticMpEngine::FinishIteration() {
  // Stage migration cost: moving the re-partitioned parameters happens
  // off the critical path in ElasticPipe; we charge only the pipeline.
  stats_.iterations.push_back(runtime::IterationStats{
      iteration_start_, cluster_->simulator().now()});
  iter_span_.reset();  // emits the iteration framing span
  if (current_iteration_ + 1 < target_iterations_) {
    StartIteration(current_iteration_ + 1);
  } else {
    run_complete_ = true;
  }
}

runtime::RunStats ElasticMpEngine::Run(int iterations) {
  FELA_CHECK_GT(iterations, 0);
  FELA_CHECK(stats_.iterations.empty());
  target_iterations_ = iterations;
  cluster_->fabric().ResetStats();
  StartIteration(0);
  cluster_->simulator().Run();
  FELA_CHECK(run_complete_);
  stats_.total_time = cluster_->simulator().now();
  stats_.total_data_bytes = cluster_->fabric().total_data_bytes();
  stats_.total_gpu_busy = cluster_->TotalGpuBusy();
  stats_.control_messages = cluster_->fabric().control_message_count();
  return stats_;
}

}  // namespace fela::baselines
