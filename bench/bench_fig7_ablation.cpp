// Figure 7 + Table III: ablation study of the scheduling policies. The
// tuned configuration runs with and without each policy; the throughput
// delta is that policy's contribution.
//
// Paper reference (Table III):
//   Parallelism Degree Tuning  8.51% ~ 51.69%
//   ADS Policy                 1.64% ~ 8.21%
//   HF Policy                  44.80% ~ 96.30%
//   CTD Policy                 5.31% ~ 41.25%

#include <cstdio>
#include <iostream>
#include <iterator>

#include "bench_util.h"
#include "common/string_util.h"
#include "model/zoo.h"
#include "runtime/experiment.h"

namespace {

struct AblationPoint {
  size_t case_index = 0;
  double batch = 0;
  double base = 0;         // AT of the tuned config
  double without_ads = 0;  // AT with the ADS policy disabled
  double without_hf = 0;   // AT with the HF policy disabled
  double tuning_gain = 0;  // Fig. 6(b) phase-1 gap
  double ctd_gain = 0;     // Fig. 6(b) phase-2 gap
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fela;
  const bench::BenchOptions opts = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader("Figure 7: Ablation Study (ADS Policy and HF Policy)");

  struct ModelCase {
    model::Model model;
    std::vector<double> batches;
  };
  const ModelCase cases[] = {
      {model::zoo::Vgg19(), bench::Vgg19Batches()},
      {model::zoo::GoogLeNet(), bench::GoogLeNetBatches()},
  };

  // Stage every (model, batch) point on the sweep runner, then render
  // serially in sweep order — output is byte-identical for any --jobs.
  std::vector<AblationPoint> points;
  for (size_t ci = 0; ci < std::size(cases); ++ci) {
    for (double batch : cases[ci].batches) {
      AblationPoint pt;
      pt.case_index = ci;
      pt.batch = batch;
      points.push_back(pt);
    }
  }
  runtime::SweepRunner runner = opts.Runner();
  for (AblationPoint& pt : points) {
    runner.Add([&cases, &pt] {
      const auto& mc = cases[pt.case_index];
      runtime::ExperimentSpec spec;
      spec.total_batch = pt.batch;
      spec.iterations = bench::kIterations;
      const auto report = suite::TuneFela(mc.model, pt.batch, 8);
      const core::FelaConfig tuned = report.best_config;

      auto at = [&](const core::FelaConfig& cfg) {
        return RunExperiment(spec, suite::FelaFactory(mc.model, cfg),
                             runtime::NoStragglerFactory())
            .average_throughput;
      };
      pt.base = at(tuned);
      core::FelaConfig no_ads = tuned;
      no_ads.ads_enabled = false;
      core::FelaConfig no_hf = tuned;
      no_hf.hf_enabled = false;
      pt.without_ads = at(no_ads);
      pt.without_hf = at(no_hf);
      // Table III's tuning and CTD rows are the paper's Fig. 6(b) gaps:
      // Phase-1 (parallelism degrees) and Phase-2 (conditional subset)
      // best-vs-worst savings fractions.
      pt.tuning_gain = report.phase1_gap;
      pt.ctd_gain = report.phase2_gap;
    });
  }
  runner.RunAll();

  double ads_lo = 1e9, ads_hi = -1e9, hf_lo = 1e9, hf_hi = -1e9;
  double tune_lo = 1e9, tune_hi = -1e9, ctd_lo = 1e9, ctd_hi = -1e9;

  size_t next_point = 0;
  for (size_t ci = 0; ci < std::size(cases); ++ci) {
    const auto& mc = cases[ci];
    std::printf("\n%s:\n", mc.model.name().c_str());
    common::TablePrinter table({"batch", "AT tuned", "AT no-ADS",
                                "AT no-HF", "ADS gain", "HF gain",
                                "tuning gain", "CTD gain"});
    for (; next_point < points.size() && points[next_point].case_index == ci;
         ++next_point) {
      const AblationPoint& pt = points[next_point];
      const double batch = pt.batch;
      const double base = pt.base;
      const double without_ads = pt.without_ads;
      const double without_hf = pt.without_hf;
      const double ads_gain = base / without_ads - 1.0;
      const double hf_gain = base / without_hf - 1.0;
      const double tuning_gain = pt.tuning_gain;
      const double ctd_gain = pt.ctd_gain;

      table.AddRow({common::TablePrinter::Num(batch, 0),
                    common::TablePrinter::Num(base, 1),
                    common::TablePrinter::Num(without_ads, 1),
                    common::TablePrinter::Num(without_hf, 1),
                    common::TablePrinter::Percent(ads_gain),
                    common::TablePrinter::Percent(hf_gain),
                    common::TablePrinter::Percent(tuning_gain),
                    common::TablePrinter::Percent(ctd_gain)});
      ads_lo = std::min(ads_lo, ads_gain);
      ads_hi = std::max(ads_hi, ads_gain);
      hf_lo = std::min(hf_lo, hf_gain);
      hf_hi = std::max(hf_hi, hf_gain);
      tune_lo = std::min(tune_lo, tuning_gain);
      tune_hi = std::max(tune_hi, tuning_gain);
      ctd_lo = std::min(ctd_lo, ctd_gain);
      ctd_hi = std::max(ctd_hi, ctd_gain);
    }
    table.Print(std::cout);
  }

  std::printf("\nTable III: Summary of Ablation Study (measured vs paper)\n");
  common::TablePrinter summary({"Strategy/Policy", "measured", "paper"});
  summary.AddRow({"Parallelism Degree Tuning",
                  common::StrFormat("%.2f%% ~ %.2f%%", tune_lo * 100,
                                    tune_hi * 100),
                  "8.51% ~ 51.69%"});
  summary.AddRow({"ADS Policy",
                  common::StrFormat("%.2f%% ~ %.2f%%", ads_lo * 100,
                                    ads_hi * 100),
                  "1.64% ~ 8.21%"});
  summary.AddRow({"HF Policy",
                  common::StrFormat("%.2f%% ~ %.2f%%", hf_lo * 100,
                                    hf_hi * 100),
                  "44.80% ~ 96.30%"});
  summary.AddRow({"CTD Policy",
                  common::StrFormat("%.2f%% ~ %.2f%%", ctd_lo * 100,
                                    ctd_hi * 100),
                  "5.31% ~ 41.25%"});
  summary.Print(std::cout);

  runtime::ExperimentSpec gate;
  gate.total_batch = 256;
  gate.iterations = 4;
  return bench::VerifyDeterminismGate(
      opts, "fig7", gate,
      suite::FelaFactory(model::zoo::Vgg19(),
                         core::FelaConfig::Defaults(3, 8)),
      runtime::NoStragglerFactory());
}
