#ifndef FELA_LINT_INCLUDE_GRAPH_H_
#define FELA_LINT_INCLUDE_GRAPH_H_

#include <map>
#include <string>
#include <vector>

namespace fela::lint {

/// Project include graph over the scanned file set, replacing the old
/// per-file raw-text suffix matching. Quoted includes resolve against
/// the scanned paths (root-relative suffix match, then relative to the
/// includer's directory); angle includes are system headers and are
/// ignored. The graph records what could *not* be resolved and every
/// include cycle it finds, so the analysis engine degrades loudly —
/// a missing header means declarations may be incomplete, a cycle must
/// not hang the transitive walk.
class IncludeGraph {
 public:
  /// `sources` maps each scanned path to its raw contents. Resolution
  /// is deterministic: edges, missing lists, and cycles come out in
  /// sorted order regardless of map iteration quirks.
  static IncludeGraph Build(const std::map<std::string, std::string>& sources);

  /// Directly-included scanned files of `path` (sorted, deduplicated).
  const std::vector<std::string>& Direct(const std::string& path) const;

  /// Every scanned file reachable through includes from `path`
  /// (excluding `path` itself), sorted. Cycle-safe: a file is visited
  /// once no matter how many include paths reach it.
  std::vector<std::string> Transitive(const std::string& path) const;

  /// Include specs of `path` that matched no scanned file (sorted).
  const std::vector<std::string>& Missing(const std::string& path) const;

  /// All include cycles found, each reported once as the sorted list of
  /// files on the cycle. A self-include is a 1-element cycle.
  const std::vector<std::vector<std::string>>& Cycles() const {
    return cycles_;
  }

  /// Every scanned path, sorted.
  const std::vector<std::string>& Files() const { return files_; }

 private:
  std::vector<std::string> files_;
  std::map<std::string, std::vector<std::string>> deps_;
  std::map<std::string, std::vector<std::string>> missing_;
  std::vector<std::vector<std::string>> cycles_;
};

}  // namespace fela::lint

#endif  // FELA_LINT_INCLUDE_GRAPH_H_
