#include "model/partition.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace fela::model {

std::string SubModel::ToString() const {
  return common::StrFormat(
      "SM-%d[L%d..L%d] thr=%g params=%.2fM flops=%.3fG%s", index + 1,
      first_layer + 1, last_layer + 1, threshold_batch, params / 1e6,
      flops_per_sample / 1e9, communication_intensive ? " comm-intensive" : "");
}

BinPartitioner::BinPartitioner(double bin_size) : bin_size_(bin_size) {
  FELA_CHECK_GT(bin_size, 0.0);
}

int BinPartitioner::BinOf(double threshold) const {
  FELA_CHECK_GE(threshold, 0.0);
  return static_cast<int>(std::floor(threshold / bin_size_));
}

std::vector<SubModel> BinPartitioner::Partition(
    const Model& model, const ProfileRepository& repo) const {
  std::vector<std::pair<int, int>> ranges;
  int start = 0;
  int current_bin = BinOf(repo.ThresholdFor(model.layer(0)));
  for (int i = 1; i < model.layer_count(); ++i) {
    const int bin = BinOf(repo.ThresholdFor(model.layer(i)));
    if (bin != current_bin) {
      ranges.emplace_back(start, i - 1);
      start = i;
      current_bin = bin;
    }
  }
  ranges.emplace_back(start, model.layer_count() - 1);

  auto sub_models = SubModelsForRanges(model, repo, ranges);
  // Representative threshold: the lower edge of the group's bin (e.g.
  // [32,48) -> 32), giving the clean 16/32/... values of §III-B.
  for (auto& sm : sub_models) {
    const double thr = repo.ThresholdFor(model.layer(sm.first_layer));
    sm.threshold_batch =
        std::max(1.0, std::floor(thr / bin_size_) * bin_size_);
  }
  return sub_models;
}

std::vector<SubModel> SubModelsForRanges(
    const Model& model, const ProfileRepository& repo,
    const std::vector<std::pair<int, int>>& ranges) {
  FELA_CHECK(!ranges.empty());
  FELA_CHECK_EQ(ranges.front().first, 0);
  FELA_CHECK_EQ(ranges.back().second, model.layer_count() - 1);
  std::vector<SubModel> out;
  out.reserve(ranges.size());
  for (size_t r = 0; r < ranges.size(); ++r) {
    const auto [lo, hi] = ranges[r];
    if (r > 0) FELA_CHECK_EQ(lo, ranges[r - 1].second + 1);
    SubModel sm;
    sm.index = static_cast<int>(r);
    sm.first_layer = lo;
    sm.last_layer = hi;
    // Default representative threshold: max within the group (callers may
    // override, as BinPartitioner does with the bin edge).
    double thr = 0.0;
    bool comm = false;
    for (int i = lo; i <= hi; ++i) {
      thr = std::max(thr, repo.ThresholdFor(model.layer(i)));
      comm = comm || model.layer(i).IsCommunicationIntensive();
    }
    sm.threshold_batch = thr;
    sm.communication_intensive = comm;
    sm.params = model.ParamsInRange(lo, hi);
    sm.flops_per_sample = model.FlopsPerSampleInRange(lo, hi);
    sm.input_boundary_elems = model.BoundaryActivationElems(lo);
    sm.output_boundary_elems =
        model.layer(hi).OutputActivationElems();
    out.push_back(sm);
  }
  return out;
}

std::vector<std::pair<int, int>> BalancedFlopsPartition(const Model& model,
                                                        int num_stages) {
  FELA_CHECK_GT(num_stages, 0);
  FELA_CHECK_LE(num_stages, model.layer_count());
  const double total = model.TotalFlopsPerSample();
  const double target = total / num_stages;
  std::vector<std::pair<int, int>> ranges;
  int start = 0;
  double acc = 0.0;
  for (int i = 0; i < model.layer_count(); ++i) {
    acc += model.layer(i).FlopsPerSample();
    const int remaining_layers = model.layer_count() - i - 1;
    // Stages still to open after closing the current one here.
    const int stages_after = num_stages - static_cast<int>(ranges.size()) - 1;
    if (stages_after <= 0) break;  // last stage absorbs the tail
    const bool must_close = remaining_layers == stages_after;
    const bool may_close = remaining_layers >= stages_after;
    if (must_close || (acc >= target && may_close)) {
      ranges.emplace_back(start, i);
      start = i + 1;
      acc = 0.0;
    }
  }
  ranges.emplace_back(start, model.layer_count() - 1);
  FELA_CHECK_EQ(static_cast<int>(ranges.size()), num_stages);
  return ranges;
}

std::vector<std::pair<int, int>> EqualLayerCountPartition(const Model& model,
                                                          int num_stages) {
  FELA_CHECK_GT(num_stages, 0);
  FELA_CHECK_LE(num_stages, model.layer_count());
  const int n = model.layer_count();
  std::vector<std::pair<int, int>> ranges;
  int start = 0;
  for (int s = 0; s < num_stages; ++s) {
    // Distribute remainder layers over the front stages.
    const int size = n / num_stages + (s < n % num_stages ? 1 : 0);
    ranges.emplace_back(start, start + size - 1);
    start += size;
  }
  FELA_CHECK_EQ(start, n);
  return ranges;
}

}  // namespace fela::model
