#include "core/ssp_extension.h"

#include <gtest/gtest.h>

namespace fela::core {
namespace {

Token TokenAtIteration(int it) {
  Token t;
  t.id = 1;
  t.iteration = it;
  return t;
}

TEST(SspGateTest, BoundZeroIsBsp) {
  SspTokenGate gate(0);
  EXPECT_TRUE(gate.IsBsp());
  EXPECT_FALSE(gate.IsAsp());
  // Under BSP an iteration may only run while it is itself the oldest
  // incomplete one.
  EXPECT_TRUE(gate.CanDistribute(3, 3));
  EXPECT_FALSE(gate.CanDistribute(4, 3));
}

TEST(SspGateTest, NegativeBoundIsAsp) {
  SspTokenGate gate(-1);
  EXPECT_TRUE(gate.IsAsp());
  EXPECT_TRUE(gate.CanDistribute(100, 0));
  EXPECT_TRUE(gate.Admissible(TokenAtIteration(0), 100));
}

TEST(SspGateTest, BoundedStalenessWindow) {
  SspTokenGate gate(2);
  EXPECT_TRUE(gate.CanDistribute(5, 3));   // 2 behind: ok
  EXPECT_FALSE(gate.CanDistribute(6, 3));  // 3 behind: blocked
  EXPECT_TRUE(gate.CanDistribute(3, 3));
}

TEST(SspGateTest, TokenAge) {
  EXPECT_EQ(SspTokenGate::AgeOf(TokenAtIteration(4), 7), 3);
  EXPECT_EQ(SspTokenGate::AgeOf(TokenAtIteration(7), 7), 0);
}

TEST(SspGateTest, AdmissibilityUsesAge) {
  SspTokenGate gate(1);
  EXPECT_TRUE(gate.Admissible(TokenAtIteration(6), 7));
  EXPECT_FALSE(gate.Admissible(TokenAtIteration(5), 7));
}

TEST(SspGateTest, BspGateAdmitsOnlyCurrentIteration) {
  SspTokenGate gate(0);
  EXPECT_TRUE(gate.Admissible(TokenAtIteration(7), 7));
  EXPECT_FALSE(gate.Admissible(TokenAtIteration(6), 7));
}

}  // namespace
}  // namespace fela::core
