#include "sim/span.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/chrome_trace.h"
#include "sim/trace.h"

namespace fela::obs {
namespace {

TEST(PhaseTest, NamesAreDistinctAndStable) {
  EXPECT_STREQ(PhaseName(Phase::kCompute), "compute");
  EXPECT_STREQ(PhaseName(Phase::kSyncWait), "sync_wait");
  EXPECT_STREQ(PhaseName(Phase::kTransfer), "transfer");
  EXPECT_STREQ(PhaseName(Phase::kTokenWait), "token_wait");
  EXPECT_STREQ(PhaseName(Phase::kStraggler), "straggler");
  EXPECT_STREQ(PhaseName(Phase::kCrashed), "crashed");
  EXPECT_STREQ(PhaseName(Phase::kIteration), "iteration");
  EXPECT_STREQ(PhaseName(Phase::kIdle), "idle");
}

TEST(SpanSinkTest, DisabledSinkRecordsNothing) {
  SpanSink sink;
  EXPECT_FALSE(sink.enabled());
  sink.Emit(Span{0, Phase::kCompute, 0.0, 1.0, 0, {}});
  { ScopedSpan s(&sink, 0, Phase::kCompute); }
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(SpanSinkTest, RingEvictsOldest) {
  SpanSink sink(/*capacity=*/3);
  sink.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    sink.Emit(Span{0, Phase::kCompute, static_cast<double>(i),
                   static_cast<double>(i + 1), i, {}});
  }
  EXPECT_EQ(sink.dropped(), 2u);
  const auto spans = sink.spans();
  ASSERT_EQ(spans.size(), 3u);
  // Newest three survive, oldest-first order.
  EXPECT_EQ(spans[0].iteration, 2);
  EXPECT_EQ(spans[1].iteration, 3);
  EXPECT_EQ(spans[2].iteration, 4);
}

TEST(SpanSinkTest, ClearResetsRing) {
  SpanSink sink(/*capacity=*/2);
  sink.set_enabled(true);
  for (int i = 0; i < 4; ++i) {
    sink.Emit(Span{0, Phase::kCompute, 0.0, 1.0, i, {}});
  }
  sink.Clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
  sink.Emit(Span{0, Phase::kCompute, 0.0, 1.0, 7, {}});
  ASSERT_EQ(sink.spans().size(), 1u);
  EXPECT_EQ(sink.spans()[0].iteration, 7);
}

TEST(ScopedSpanTest, ReadsClockAtBeginAndEnd) {
  SpanSink sink;
  sink.set_enabled(true);
  double now = 2.5;
  sink.set_clock([&now] { return now; });
  {
    ScopedSpan s(&sink, 4, Phase::kTokenWait, 9,
                 common::TokenizedDetail(FELA_TOK("waiting")));
    now = 4.0;
  }
  ASSERT_EQ(sink.size(), 1u);
  const std::vector<Span> spans = sink.spans();
  const Span& s = spans[0];
  EXPECT_EQ(s.track, 4);
  EXPECT_EQ(s.phase, Phase::kTokenWait);
  EXPECT_DOUBLE_EQ(s.begin, 2.5);
  EXPECT_DOUBLE_EQ(s.end, 4.0);
  EXPECT_EQ(s.iteration, 9);
  EXPECT_EQ(common::Detokenize(s.detail), "waiting");
}

TEST(ScopedSpanTest, CloseIsIdempotentAndCancelDiscards) {
  SpanSink sink;
  sink.set_enabled(true);
  double now = 0.0;
  sink.set_clock([&now] { return now; });
  {
    ScopedSpan s(&sink, 0, Phase::kCompute);
    now = 1.0;
    s.Close();
    s.Close();  // no double emission
  }
  EXPECT_EQ(sink.size(), 1u);
  {
    ScopedSpan s(&sink, 0, Phase::kCompute);
    s.Cancel();
  }
  EXPECT_EQ(sink.size(), 1u);
}

TEST(ScopedSpanTest, MoveTransfersOwnership) {
  SpanSink sink;
  sink.set_enabled(true);
  double now = 0.0;
  sink.set_clock([&now] { return now; });
  {
    ScopedSpan a(&sink, 1, Phase::kSyncWait);
    ScopedSpan b = std::move(a);
    now = 3.0;
  }
  // Exactly one span from the moved-to object.
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_DOUBLE_EQ(sink.spans()[0].end, 3.0);
}

TEST(ScopedSpanTest, DisabledSinkIsNoOp) {
  SpanSink sink;  // never enabled
  { ScopedSpan s(&sink, 0, Phase::kCompute); }
  EXPECT_EQ(sink.size(), 0u);
  { ScopedSpan s(nullptr, 0, Phase::kCompute); }  // null-safe too
}

TEST(ChromeTraceTest, EmitsValidJsonWithTrackMetadata) {
  SpanSink sink;
  sink.set_enabled(true);
  sink.Emit(Span{0, Phase::kCompute, 0.0, 0.5, 0,
                 common::TokenizedDetail(FELA_TOK("token"))});
  sink.Emit(Span{2, Phase::kIteration, 0.0, 1.0, 0, {}});  // TS track

  sim::TraceRecorder trace;
  trace.set_enabled(true);
  trace.Record(0.25, 1, sim::TraceKind::kTokenGrant, "Token_1");

  const std::string text = ChromeTraceString(sink, &trace, /*num_workers=*/2);
  common::Json doc;
  std::string error;
  ASSERT_TRUE(common::Json::Parse(text, &doc, &error)) << error;
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.Find("displayTimeUnit")->string_value(), "ms");

  const common::Json* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  int metadata = 0, complete = 0, instant = 0;
  bool saw_token_server_name = false;
  for (const auto& e : events->items()) {
    const std::string& ph = e.Find("ph")->string_value();
    if (ph == "M") {
      ++metadata;
      const common::Json* args = e.Find("args");
      if (args != nullptr && args->Find("name") != nullptr &&
          args->Find("name")->string_value() == "token-server") {
        saw_token_server_name = true;
      }
    } else if (ph == "X") {
      ++complete;
    } else if (ph == "i") {
      ++instant;
    }
  }
  // One thread_name per worker track + the token-server track.
  EXPECT_EQ(metadata, 3);
  EXPECT_TRUE(saw_token_server_name);
  // Round-trip: every span and trace event survives into the timeline.
  EXPECT_EQ(complete, 2);
  EXPECT_EQ(instant, 1);
}

TEST(ChromeTraceTest, MicrosecondTimestamps) {
  SpanSink sink;
  sink.set_enabled(true);
  sink.Emit(Span{0, Phase::kCompute, 1.5, 2.0, -1, {}});
  const common::Json doc = ChromeTraceJson(sink, nullptr, 1);
  const common::Json* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  for (const auto& e : events->items()) {
    if (e.Find("ph")->string_value() != "X") continue;
    EXPECT_DOUBLE_EQ(e.Find("ts")->number_value(), 1.5e6);
    EXPECT_DOUBLE_EQ(e.Find("dur")->number_value(), 0.5e6);
  }
}

}  // namespace
}  // namespace fela::obs
