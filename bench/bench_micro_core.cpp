// Microbenchmarks of the scheduling-path data structures (google-benchmark):
// event queue churn, token-bucket selection under ADS, locality scoring,
// and a full simulated Fela iteration. These bound the *scheduling*
// overhead Fela adds per token — the paper argues it is negligible next
// to training compute.

#include <benchmark/benchmark.h>

#include "core/fela_engine.h"
#include "core/token_bucket.h"
#include "model/zoo.h"
#include "runtime/cluster.h"
#include "sim/simulator.h"

namespace {

using namespace fela;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.Push(static_cast<double>((i * 2654435761u) % 1000), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.Pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SimulatorEventChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    int remaining = n;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.Schedule(1e-6, tick);
    };
    sim.Schedule(0.0, tick);
    sim.Run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatorEventChain)->Arg(1000)->Arg(100000);

void BM_TokenBucketAdsTake(benchmark::State& state) {
  const int tokens = static_cast<int>(state.range(0));
  core::InfoMapping info;
  for (int i = 0; i < tokens; ++i) {
    info.RecordCompleted(i, i % 8);
  }
  for (auto _ : state) {
    state.PauseTiming();
    core::TokenBucket bucket;
    for (int i = 0; i < tokens; ++i) {
      core::Token t;
      t.id = tokens + i;
      t.level = 1;
      t.batch = 32;
      t.deps = {{i, 16.0}, {(i + 1) % tokens, 16.0}};
      bucket.Add(std::move(t));
    }
    state.ResumeTiming();
    while (!bucket.empty()) {
      benchmark::DoNotOptimize(bucket.Take(3, info, {1}, true));
    }
  }
  state.SetItemsProcessed(state.iterations() * tokens);
}
BENCHMARK(BM_TokenBucketAdsTake)->Arg(8)->Arg(64)->Arg(512);

void BM_LocalityScore(benchmark::State& state) {
  core::InfoMapping info;
  for (int i = 0; i < 64; ++i) info.RecordCompleted(i, i % 8);
  std::vector<core::TokenDep> deps;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    deps.push_back({i, 16.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(info.LocalityScore(3, deps));
  }
}
BENCHMARK(BM_LocalityScore)->Arg(2)->Arg(8)->Arg(32);

void BM_FelaFullIteration(benchmark::State& state) {
  const double batch = static_cast<double>(state.range(0));
  const model::Model m = model::zoo::Vgg19();
  for (auto _ : state) {
    runtime::Cluster cluster(8, sim::Calibration::Default(), nullptr);
    core::FelaConfig cfg = core::FelaConfig::Defaults(3, 8);
    cfg.weights = {1, 2, 4};
    core::FelaEngine engine(&cluster, m, cfg, batch);
    benchmark::DoNotOptimize(engine.Run(1).total_time);
  }
}
BENCHMARK(BM_FelaFullIteration)->Arg(128)->Arg(1024);

void BM_BinPartition(benchmark::State& state) {
  const model::Model m = model::zoo::Vgg19();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::BinPartitioner().Partition(
        m, model::ProfileRepository::Default()));
  }
}
BENCHMARK(BM_BinPartition);

}  // namespace

BENCHMARK_MAIN();
