// Figure 5: threshold batch sizes of the VGG19 layers and the resulting
// bin partition (§IV-A). Also prints the GoogLeNet partition.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "model/partition.h"
#include "model/zoo.h"

namespace {

std::string RenderPartition(const fela::model::Model& m) {
  using namespace fela;
  const auto& repo = model::ProfileRepository::Default();
  const model::BinPartitioner partitioner(16.0);

  std::string out =
      common::StrFormat("\n%s layer thresholds (bin size 16):\n",
                        m.name().c_str());
  common::TablePrinter table(
      {"layer", "kind", "shape", "threshold batch", "bin"});
  for (int i = 0; i < m.layer_count(); ++i) {
    const model::Layer& l = m.layer(i);
    const double thr = repo.ThresholdFor(l);
    table.AddRow({common::StrFormat("L%d (%s)", i + 1, l.name.c_str()),
                  model::LayerKindName(l.kind), l.ShapeKey(),
                  common::TablePrinter::Num(thr, 0),
                  common::StrFormat("[%d, %d)", partitioner.BinOf(thr) * 16,
                                    (partitioner.BinOf(thr) + 1) * 16)});
  }
  out += table.ToString();

  const auto sub = partitioner.Partition(m, repo);
  out += common::StrFormat("bin partition -> %zu sub-models:\n", sub.size());
  for (const auto& sm : sub) {
    out += common::StrFormat("  %s\n", sm.ToString().c_str());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fela;
  const bench::BenchOptions opts = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader(
      "Figure 5: Threshold Batch Sizes of Different Layers in VGG19");

  // The two partition renderings are independent; stage them on the
  // sweep runner and print in order (bytes match any --jobs value).
  std::string vgg_text, googlenet_text;
  runtime::SweepRunner runner = opts.Runner();
  runner.Add([&vgg_text] { vgg_text = RenderPartition(model::zoo::Vgg19()); });
  runner.Add([&googlenet_text] {
    googlenet_text = RenderPartition(model::zoo::GoogLeNet());
  });
  runner.RunAll();

  std::fputs(vgg_text.c_str(), stdout);
  std::printf(
      "\nPaper reference: VGG19 partitions into L1-8 (CONV), L9-16 "
      "(CONV), L17-19 (FC).\n");
  std::fputs(googlenet_text.c_str(), stdout);
  std::printf(
      "\nPaper reference: GoogLeNet partitions into L1-4, L5-9, L10-12 "
      "(CONV+FC).\n");
  return bench::VerifyRenderDeterminism(opts, "fig5", [] {
    std::string out;
    const auto& repo = model::ProfileRepository::Default();
    const model::BinPartitioner partitioner(16.0);
    for (const auto& sm : partitioner.Partition(model::zoo::Vgg19(), repo)) {
      out += sm.ToString() + "\n";
    }
    return out;
  });
}
