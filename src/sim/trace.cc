#include "sim/trace.h"

#include <utility>

#include "common/string_util.h"

namespace fela::sim {

static_assert(kNumTraceKinds == 24,
              "TraceKind changed: update kNumTraceKinds, TraceKindName, and "
              "any serialized-kind consumers together");

const char* TraceKindName(TraceKind kind) {
  // No default branch on purpose: -Werror=switch turns a TraceKind
  // added without a name into a build failure instead of "Unknown"
  // leaking into transcripts.
  switch (kind) {
    case TraceKind::kIterationStart:
      return "IterationStart";
    case TraceKind::kIterationEnd:
      return "IterationEnd";
    case TraceKind::kTokenRequest:
      return "TokenRequest";
    case TraceKind::kTokenGrant:
      return "TokenGrant";
    case TraceKind::kTokenComplete:
      return "TokenComplete";
    case TraceKind::kFetchStart:
      return "FetchStart";
    case TraceKind::kFetchEnd:
      return "FetchEnd";
    case TraceKind::kComputeStart:
      return "ComputeStart";
    case TraceKind::kComputeEnd:
      return "ComputeEnd";
    case TraceKind::kSyncStart:
      return "SyncStart";
    case TraceKind::kSyncEnd:
      return "SyncEnd";
    case TraceKind::kStragglerSleep:
      return "StragglerSleep";
    case TraceKind::kHelperSteal:
      return "HelperSteal";
    case TraceKind::kConflict:
      return "Conflict";
    case TraceKind::kWorkerCrash:
      return "WorkerCrash";
    case TraceKind::kWorkerRecover:
      return "WorkerRecover";
    case TraceKind::kControlDrop:
      return "ControlDrop";
    case TraceKind::kControlDup:
      return "ControlDup";
    case TraceKind::kTokenReclaim:
      return "TokenReclaim";
    case TraceKind::kRequestRetry:
      return "RequestRetry";
    case TraceKind::kPartitionDrop:
      return "PartitionDrop";
    case TraceKind::kPartitionCut:
      return "PartitionCut";
    case TraceKind::kPartitionHeal:
      return "PartitionHeal";
    case TraceKind::kTsFailover:
      return "TsFailover";
  }
  return "Unknown";  // unreachable: the switch above is exhaustive
}

void TraceRecorder::Store(TraceRecord record, std::string dynamic) {
  if (records_.size() < capacity_) {
    records_.push_back(record);
    dynamic_.push_back(std::move(dynamic));
    return;
  }
  records_[next_] = record;  // evict the oldest
  dynamic_[next_] = std::move(dynamic);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

void TraceRecorder::Record(SimTime time, NodeId node, TraceKind kind,
                           common::TokenizedDetail detail) {
  if (!enabled_ || capacity_ == 0) return;
  TraceRecord record;
  record.time = time;
  record.node = node;
  record.kind = static_cast<uint8_t>(kind);
  record.token = detail.token;
  record.arg_count = detail.args.count;
  record.arg_types = detail.args.types;
  for (int i = 0; i < 4; ++i) record.args[i] = detail.args.values[i];
  Store(record, std::string());
}

void TraceRecorder::Record(SimTime time, NodeId node, TraceKind kind,
                           std::string detail) {
  if (!enabled_ || capacity_ == 0) return;
  TraceRecord record;
  record.time = time;
  record.node = node;
  record.kind = static_cast<uint8_t>(kind);
  record.flags = kDynamicDetailFlag;
  Store(record, std::move(detail));
}

std::string RenderTraceDetail(const TraceRecord& record,
                              const std::string& dynamic,
                              const common::TokenRegistry* registry) {
  if ((record.flags & kDynamicDetailFlag) != 0) return dynamic;
  common::TokenizedDetail detail;
  detail.token = record.token;
  detail.args.count = record.arg_count;
  detail.args.types = record.arg_types;
  for (int i = 0; i < 4; ++i) detail.args.values[i] = record.args[i];
  return common::Detokenize(detail, registry);
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> ordered;
  ordered.reserve(records_.size());
  // next_ is the oldest slot once the ring has wrapped (dropped_ > 0);
  // before wrapping the vector is already oldest-first from slot 0.
  const size_t start = dropped_ > 0 ? next_ : 0;
  for (size_t i = 0; i < records_.size(); ++i) {
    const size_t slot = (start + i) % records_.size();
    const TraceRecord& r = records_[slot];
    ordered.push_back(TraceEvent{r.time, r.node,
                                 static_cast<TraceKind>(r.kind),
                                 RenderTraceDetail(r, dynamic_[slot])});
  }
  return ordered;
}

std::vector<TraceRecord> TraceRecorder::records() const {
  std::vector<TraceRecord> ordered;
  ordered.reserve(records_.size());
  const size_t start = dropped_ > 0 ? next_ : 0;
  for (size_t i = 0; i < records_.size(); ++i) {
    ordered.push_back(records_[(start + i) % records_.size()]);
  }
  return ordered;
}

std::vector<std::string> TraceRecorder::dynamic_details() const {
  std::vector<std::string> ordered;
  ordered.reserve(dynamic_.size());
  const size_t start = dropped_ > 0 ? next_ : 0;
  for (size_t i = 0; i < dynamic_.size(); ++i) {
    ordered.push_back(dynamic_[(start + i) % dynamic_.size()]);
  }
  return ordered;
}

void TraceRecorder::Clear() {
  records_.clear();
  dynamic_.clear();
  next_ = 0;
  dropped_ = 0;
}

void AppendTraceDroppedHeader(std::string* out, size_t dropped,
                              size_t capacity) {
  *out += common::StrFormat(
      "... %zu oldest events dropped (ring capacity %zu)\n", dropped,
      capacity);
}

void AppendTraceLine(std::string* out, SimTime time, NodeId node,
                     TraceKind kind, const std::string& detail) {
  *out += common::StrFormat("[%10.6fs] w%-2d %-15s %s\n", time, node,
                            TraceKindName(kind), detail.c_str());
}

std::string TraceRecorder::ToString() const {
  std::string out;
  if (dropped_ > 0) AppendTraceDroppedHeader(&out, dropped_, capacity_);
  for (const auto& e : events()) {
    AppendTraceLine(&out, e.time, e.node, e.kind, e.detail);
  }
  return out;
}

}  // namespace fela::sim
