# Empty dependencies file for fela_engine_tests.
# This may be replaced when dependencies are built.
