# Empty dependencies file for fela_core_tests.
# This may be replaced when dependencies are built.
