// Tests for the extension baselines: PS-architecture DP and
// ElasticPipe-style proactive MP, plus the straggler schedules that
// motivate them.

#include <gtest/gtest.h>

#include "baselines/dp_engine.h"
#include "core/fela_engine.h"
#include "baselines/elastic_mp_engine.h"
#include "baselines/mp_engine.h"
#include "baselines/ps_engine.h"
#include "model/zoo.h"
#include "runtime/cluster.h"

namespace fela::baselines {
namespace {

std::unique_ptr<runtime::Cluster> CleanCluster(int n = 8) {
  return runtime::Cluster::MakeDefault(n);
}

// -------------------------------------------------------------- PS-DP --

TEST(PsDpEngineTest, ShardsParametersOverServers) {
  auto cluster = CleanCluster();
  const model::Model m = model::zoo::Vgg19();
  PsDpEngine ps(cluster.get(), m, 256, /*num_servers=*/4);
  EXPECT_EQ(ps.num_servers(), 4);
  EXPECT_NEAR(ps.shard_bytes(), m.TotalParams() * 4.0 / 4, 1.0);
}

TEST(PsDpEngineTest, MovesPushPlusPullBytes) {
  auto cluster = CleanCluster();
  const model::Model m = model::zoo::Vgg19();
  PsDpEngine ps(cluster.get(), m, 256, 1);
  const auto stats = ps.Run(1);
  // Every worker pushes and pulls the full parameter set (loopback from
  // the server node to itself is free on the fabric).
  const double per_worker = 2.0 * m.TotalParams() * 4.0;
  EXPECT_NEAR(stats.total_data_bytes, 7 * per_worker, per_worker * 0.01);
}

TEST(PsDpEngineTest, SingleServerIsTheBottleneck) {
  // Table II's "centralized bottleneck at PS": more servers = faster,
  // and the ring all-reduce DP beats the single-server PS.
  const model::Model m = model::zoo::Vgg19();
  auto at = [&](int servers) {
    auto cluster = CleanCluster();
    PsDpEngine ps(cluster.get(), m, 256, servers);
    return ps.Run(2).AverageThroughput(256);
  };
  const double ps1 = at(1);
  const double ps4 = at(4);
  const double ps8 = at(8);
  EXPECT_GT(ps4, ps1 * 1.5);
  EXPECT_GT(ps8, ps4);
  auto cluster = CleanCluster();
  DpEngine ring(cluster.get(), m, 256);
  EXPECT_GT(ring.Run(2).AverageThroughput(256), ps1 * 1.5);
}

TEST(PsDpEngineTest, StragglerAddsFullDelay) {
  const model::Model m = model::zoo::GoogLeNet();
  auto clean = CleanCluster();
  PsDpEngine e1(clean.get(), m, 512, 2);
  const double t_clean = e1.Run(3).total_time;
  runtime::Cluster slow(8, sim::Calibration::Default(),
                        std::make_unique<sim::RoundRobinStragglers>(8, 1.0));
  PsDpEngine e2(&slow, m, 512, 2);
  EXPECT_NEAR(e2.Run(3).total_time - t_clean, 3.0, 0.01);
}

// --------------------------------------------------------- ElasticMP --

TEST(ElasticMpEngineTest, MatchesStaticMpWithoutStragglers) {
  const model::Model m = model::zoo::Vgg19();
  auto c1 = CleanCluster();
  MpEngine mp(c1.get(), m, 256);
  auto c2 = CleanCluster();
  ElasticMpEngine emp(c2.get(), m, 256);
  const double t_static = mp.Run(10).total_time;
  const double t_elastic = emp.Run(10).total_time;
  // Balanced profile -> the re-partition converges near the FLOP-balanced
  // one; allow a modest delta either way.
  EXPECT_NEAR(t_elastic, t_static, t_static * 0.25);
  EXPECT_GT(emp.repartition_count(), 0);
}

TEST(ElasticMpEngineTest, RepartitionsOnSchedule) {
  auto cluster = CleanCluster();
  ElasticMpEngine emp(cluster.get(), model::zoo::Vgg19(), 128, 4.0,
                      /*profile_period=*/3);
  emp.Run(10);
  EXPECT_EQ(emp.repartition_count(), 3);  // at iterations 3, 6, 9
}

TEST(ElasticMpEngineTest, HelpsAgainstHeterogeneousWorker) {
  // The scenario proactive tuning is designed for: a persistently slow
  // device. ElasticMP shifts layers away from it; static MP cannot.
  const model::Model m = model::zoo::Vgg19();
  auto make_schedule = [] {
    return std::make_unique<sim::HeterogeneousWorker>(3, 2.0);
  };
  runtime::Cluster c1(8, sim::Calibration::Default(), make_schedule());
  MpEngine mp(&c1, m, 256);
  runtime::Cluster c2(8, sim::Calibration::Default(), make_schedule());
  ElasticMpEngine emp(&c2, m, 256);
  const double t_static = mp.Run(20).total_time;
  const double t_elastic = emp.Run(20).total_time;
  EXPECT_LT(t_elastic, t_static * 0.85);
}

TEST(ElasticMpEngineTest, MisfiresOnTransientStragglers) {
  // §III-C: stale profiles make proactive re-balancing useless or
  // harmful when stragglers rotate faster than the profiling period.
  const model::Model m = model::zoo::Vgg19();
  auto make_schedule = [] {
    return std::make_unique<sim::TransientStragglers>(8, 4.0, 3, 7);
  };
  runtime::Cluster c1(8, sim::Calibration::Default(), make_schedule());
  MpEngine mp(&c1, m, 512);
  runtime::Cluster c2(8, sim::Calibration::Default(), make_schedule());
  ElasticMpEngine emp(&c2, m, 512);
  const double t_static = mp.Run(20).total_time;
  const double t_elastic = emp.Run(20).total_time;
  EXPECT_GT(t_elastic, t_static * 0.98);  // no better than static
}

TEST(ElasticMpEngineTest, StagesStayContiguousAfterRepartition) {
  runtime::Cluster cluster(8, sim::Calibration::Default(),
                           std::make_unique<sim::HeterogeneousWorker>(2, 3.0));
  ElasticMpEngine emp(&cluster, model::zoo::Vgg19(), 256, 4.0, 2);
  emp.Run(8);
  const auto& stages = emp.stages();
  ASSERT_EQ(stages.size(), 8u);
  EXPECT_EQ(stages.front().first, 0);
  EXPECT_EQ(stages.back().second, 18);
  for (size_t s = 1; s < stages.size(); ++s) {
    EXPECT_EQ(stages[s].first, stages[s - 1].second + 1);
  }
}

// ------------------------------------------------- schedules ----------

TEST(HeterogeneousWorkerTest, SlowsOnlyTheVictim) {
  sim::HeterogeneousWorker h(3, 2.5);
  for (int it = 0; it < 5; ++it) {
    for (int w = 0; w < 8; ++w) {
      EXPECT_DOUBLE_EQ(h.SlowdownFor(it, w), w == 3 ? 2.5 : 1.0);
      EXPECT_DOUBLE_EQ(h.DelayFor(it, w), 0.0);
    }
  }
  EXPECT_NE(h.ToString().find("w3"), std::string::npos);
}

TEST(PersistentStragglerTest, FixedVictimEveryIteration) {
  sim::PersistentStraggler p(5, 4.0);
  for (int it = 0; it < 10; ++it) {
    for (int w = 0; w < 8; ++w) {
      EXPECT_DOUBLE_EQ(p.DelayFor(it, w), w == 5 ? 4.0 : 0.0);
    }
  }
}

TEST(SlowdownDefaultTest, BaseScheduleIsNominalSpeed) {
  sim::RoundRobinStragglers rr(8, 2.0);
  EXPECT_DOUBLE_EQ(rr.SlowdownFor(0, 0), 1.0);
  sim::NoStragglers none;
  EXPECT_DOUBLE_EQ(none.SlowdownFor(3, 4), 1.0);
}

TEST(HeterogeneousDpTest, SlowWorkerGatesBsp) {
  // DP under a 2x-slow worker: iteration time doubles (barrier waits).
  const model::Model m = model::zoo::GoogLeNet();
  auto clean = CleanCluster();
  DpEngine e1(clean.get(), m, 512);
  const double t_clean = e1.Run(2).total_time;
  runtime::Cluster slow(8, sim::Calibration::Default(),
                        std::make_unique<sim::HeterogeneousWorker>(0, 2.0));
  DpEngine e2(&slow, m, 512);
  const double t_slow = e2.Run(2).total_time;
  EXPECT_GT(t_slow, t_clean * 1.3);
}

TEST(HeterogeneousFelaTest, ReactiveSchedulingAbsorbsSlowWorker) {
  // Fela: the slow worker simply pulls fewer tokens; the cluster loses
  // far less than the 2x the DP barrier pays.
  const model::Model m = model::zoo::GoogLeNet();
  core::FelaConfig cfg = core::FelaConfig::Defaults(3, 8);
  auto clean = CleanCluster();
  core::FelaEngine e1(clean.get(), m, cfg, 512);
  const double t_clean = e1.Run(2).total_time;
  runtime::Cluster slow(8, sim::Calibration::Default(),
                        std::make_unique<sim::HeterogeneousWorker>(0, 2.0));
  core::FelaEngine e2(&slow, m, cfg, 512);
  const double t_slow = e2.Run(2).total_time;
  EXPECT_LT((t_slow - t_clean) / t_clean, 0.6);
  // The slow worker trained fewer samples than the average fast worker.
  double fast_avg = 0.0;
  for (int w = 1; w < 8; ++w) fast_avg += e2.worker(w).samples_trained();
  fast_avg /= 7.0;
  EXPECT_LT(e2.worker(0).samples_trained(), fast_avg);
}

}  // namespace
}  // namespace fela::baselines
