// fela-tokendb: build-time token-database generator for tokenized
// tracing. Scans source trees for FELA_TOK("...") sites, hashes each
// format with the macro's compile-time FNV-1a, detects collisions, and
// emits the tokens.csv that tools/fela-detok loads offline. See
// src/tokendb/tokendb.h and DESIGN.md §7.
//
//   fela-tokendb [--check=<csv> | --out=<csv>] <path>...
//
// Exit codes: 0 ok, 1 stale DB or collision/policy violation, 2 usage
// or I/O error.

#include <iostream>
#include <string>
#include <vector>

#include "tokendb/tokendb.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return fela::tokendb::RunCli(args, std::cout, std::cerr);
}
