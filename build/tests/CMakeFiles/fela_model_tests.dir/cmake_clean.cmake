file(REMOVE_RECURSE
  "CMakeFiles/fela_model_tests.dir/model/cost_model_test.cc.o"
  "CMakeFiles/fela_model_tests.dir/model/cost_model_test.cc.o.d"
  "CMakeFiles/fela_model_tests.dir/model/layer_test.cc.o"
  "CMakeFiles/fela_model_tests.dir/model/layer_test.cc.o.d"
  "CMakeFiles/fela_model_tests.dir/model/memory_model_test.cc.o"
  "CMakeFiles/fela_model_tests.dir/model/memory_model_test.cc.o.d"
  "CMakeFiles/fela_model_tests.dir/model/model_test.cc.o"
  "CMakeFiles/fela_model_tests.dir/model/model_test.cc.o.d"
  "CMakeFiles/fela_model_tests.dir/model/partition_test.cc.o"
  "CMakeFiles/fela_model_tests.dir/model/partition_test.cc.o.d"
  "CMakeFiles/fela_model_tests.dir/model/profile_test.cc.o"
  "CMakeFiles/fela_model_tests.dir/model/profile_test.cc.o.d"
  "CMakeFiles/fela_model_tests.dir/model/zoo_test.cc.o"
  "CMakeFiles/fela_model_tests.dir/model/zoo_test.cc.o.d"
  "fela_model_tests"
  "fela_model_tests.pdb"
  "fela_model_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fela_model_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
