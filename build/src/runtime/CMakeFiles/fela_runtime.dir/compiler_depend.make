# Empty compiler generated dependencies file for fela_runtime.
# This may be replaced when dependencies are built.
