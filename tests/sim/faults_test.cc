#include "sim/faults.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace fela::sim {
namespace {

TEST(NoFaultsTest, InactiveAndAlwaysUp) {
  NoFaults none;
  EXPECT_FALSE(none.Active());
  EXPECT_FALSE(none.IsDownAt(0.0, 0));
  EXPECT_FALSE(none.IsDownAt(1e9, 7));
  EXPECT_EQ(none.NextTransitionAfter(0.0), kNeverTime);
  EXPECT_FALSE(none.DropControl(42));
  EXPECT_FALSE(none.DuplicateControl(42));
}

TEST(ScriptedCrashesTest, HalfOpenDownInterval) {
  ScriptedCrashes faults({CrashEvent{2, 5.0, 10.0}});
  EXPECT_TRUE(faults.Active());
  EXPECT_FALSE(faults.IsDownAt(4.999, 2));
  EXPECT_TRUE(faults.IsDownAt(5.0, 2));
  EXPECT_TRUE(faults.IsDownAt(9.999, 2));
  EXPECT_FALSE(faults.IsDownAt(10.0, 2));
  EXPECT_FALSE(faults.IsDownAt(7.0, 3));  // other workers unaffected
}

TEST(ScriptedCrashesTest, FailStopNeverRecovers) {
  ScriptedCrashes faults({CrashEvent{1, 3.0, kNeverTime}});
  EXPECT_TRUE(faults.IsDownAt(3.0, 1));
  EXPECT_TRUE(faults.IsDownAt(1e12, 1));
  EXPECT_EQ(faults.NextUpAfter(4.0, 1), kNeverTime);
}

TEST(ScriptedCrashesTest, TransitionsCoverCrashAndRecover) {
  ScriptedCrashes faults({CrashEvent{0, 5.0, 10.0}, CrashEvent{1, 7.0, 8.0}});
  EXPECT_DOUBLE_EQ(faults.NextTransitionAfter(0.0), 5.0);
  EXPECT_DOUBLE_EQ(faults.NextTransitionAfter(5.0), 7.0);
  EXPECT_DOUBLE_EQ(faults.NextTransitionAfter(7.0), 8.0);
  EXPECT_DOUBLE_EQ(faults.NextTransitionAfter(8.0), 10.0);
  EXPECT_EQ(faults.NextTransitionAfter(10.0), kNeverTime);
}

TEST(ScriptedCrashesTest, DerivedHelpers) {
  ScriptedCrashes faults({CrashEvent{4, 5.0, 10.0}});
  EXPECT_TRUE(faults.AnyDownDuring(0.0, 6.0, 4));
  EXPECT_TRUE(faults.AnyDownDuring(6.0, 7.0, 4));
  EXPECT_FALSE(faults.AnyDownDuring(0.0, 4.0, 4));
  EXPECT_FALSE(faults.AnyDownDuring(10.0, 20.0, 4));
  EXPECT_FALSE(faults.AnyDownDuring(0.0, 20.0, 5));
  EXPECT_DOUBLE_EQ(faults.NextUpAfter(7.0, 4), 10.0);
  EXPECT_DOUBLE_EQ(faults.NextUpAfter(2.0, 4), 2.0);  // already up
}

TEST(RandomCrashesTest, DeterministicInSeed) {
  RandomCrashes a(8, 0.3, 10.0, 15.0, 123);
  RandomCrashes b(8, 0.3, 10.0, 15.0, 123);
  RandomCrashes c(8, 0.3, 10.0, 15.0, 124);
  int diff = 0;
  for (int w = 0; w < 8; ++w) {
    for (int k = 0; k < 200; ++k) {
      const SimTime t = 0.5 * k;
      EXPECT_EQ(a.IsDownAt(t, w), b.IsDownAt(t, w));
      if (a.IsDownAt(t, w) != c.IsDownAt(t, w)) ++diff;
    }
  }
  EXPECT_GT(diff, 0) << "different seeds should differ somewhere";
}

TEST(RandomCrashesTest, SparesTokenServerHostByDefault) {
  RandomCrashes faults(8, 1.0, 10.0, 5.0, 7);
  for (int k = 0; k < 100; ++k) {
    EXPECT_FALSE(faults.IsDownAt(1.0 * k, 0));
  }
  // p = 1: every other worker is down at every window start.
  EXPECT_TRUE(faults.IsDownAt(0.0, 1));
  EXPECT_TRUE(faults.IsDownAt(10.0, 5));
}

TEST(RandomCrashesTest, ZeroProbabilityNeverCrashes) {
  RandomCrashes faults(8, 0.0, 10.0, 5.0, 7, 0);
  for (int w = 0; w < 8; ++w) {
    for (int k = 0; k < 100; ++k) EXPECT_FALSE(faults.IsDownAt(2.5 * k, w));
  }
  EXPECT_EQ(faults.NextTransitionAfter(0.0), kNeverTime);
}

TEST(RandomCrashesTest, CrashRateTracksProbability) {
  const double p = 0.2;
  RandomCrashes faults(2, p, 10.0, 5.0, 99);
  int crashed_windows = 0;
  const int kWindows = 2000;
  for (int k = 0; k < kWindows; ++k) {
    // Down exactly at the window start iff the window crashed (the 5s
    // downtime cannot spill into the next 10s window).
    if (faults.IsDownAt(10.0 * k, 1)) ++crashed_windows;
  }
  const double rate = static_cast<double>(crashed_windows) / kWindows;
  EXPECT_NEAR(rate, p, 0.05);
}

TEST(RandomCrashesTest, TransitionsNeverMissed) {
  // Walk transitions and cross-check each flip against IsDownAt.
  RandomCrashes faults(4, 0.3, 5.0, 7.0, 42);
  SimTime t = 0.0;
  int flips = 0;
  for (int i = 0; i < 200; ++i) {
    const SimTime next = faults.NextTransitionAfter(t);
    ASSERT_GT(next, t);
    if (next == kNeverTime) break;
    // No state change strictly inside (t, next).
    for (int w = 1; w < 4; ++w) {
      const bool at_t = faults.IsDownAt(t, w);
      EXPECT_EQ(faults.IsDownAt(t + 0.5 * (next - t), w), at_t)
          << "missed a transition for worker " << w << " in (" << t << ", "
          << next << ")";
      if (faults.IsDownAt(next, w) != at_t) ++flips;
    }
    t = next;
  }
  EXPECT_GT(flips, 0);
}

TEST(LossyControlPlaneTest, DeterministicAndRoughlyCalibrated) {
  LossyControlPlane a(0.1, 0.05, 11);
  LossyControlPlane b(0.1, 0.05, 11);
  int drops = 0, dups = 0;
  const int kMsgs = 5000;
  for (uint64_t s = 0; s < kMsgs; ++s) {
    EXPECT_EQ(a.DropControl(s), b.DropControl(s));
    EXPECT_EQ(a.DuplicateControl(s), b.DuplicateControl(s));
    if (a.DropControl(s)) ++drops;
    if (a.DuplicateControl(s)) ++dups;
  }
  EXPECT_NEAR(drops / static_cast<double>(kMsgs), 0.1, 0.02);
  EXPECT_NEAR(dups / static_cast<double>(kMsgs), 0.05, 0.02);
  EXPECT_FALSE(a.IsDownAt(100.0, 3));
}

TEST(CompositeFaultsTest, OrComposition) {
  std::vector<std::unique_ptr<FaultSchedule>> parts;
  parts.push_back(
      std::make_unique<ScriptedCrashes>(
          std::vector<CrashEvent>{CrashEvent{1, 5.0, 10.0}}));
  parts.push_back(std::make_unique<LossyControlPlane>(0.5, 0.0, 3));
  CompositeFaults faults(std::move(parts));
  EXPECT_TRUE(faults.Active());
  EXPECT_TRUE(faults.IsDownAt(6.0, 1));
  EXPECT_FALSE(faults.IsDownAt(6.0, 2));
  int drops = 0;
  for (uint64_t s = 0; s < 100; ++s) {
    if (faults.DropControl(s)) ++drops;
  }
  EXPECT_GT(drops, 0);  // the lossy part's drops surface through composition
  EXPECT_FALSE(faults.DuplicateControl(0));
  EXPECT_DOUBLE_EQ(faults.NextTransitionAfter(0.0), 5.0);
}

TEST(FaultMonitorTest, ReportsCrashAndRecoveryAtScheduledTimes) {
  Simulator sim;
  ScriptedCrashes faults({CrashEvent{2, 5.0, 10.0}});
  std::vector<std::pair<SimTime, int>> crashes, recoveries;
  FaultMonitor::Callbacks cbs;
  cbs.on_crash = [&](int w) { crashes.emplace_back(sim.now(), w); };
  cbs.on_recover = [&](int w) { recoveries.emplace_back(sim.now(), w); };
  FaultMonitor monitor(&sim, &faults, 4, std::move(cbs));
  monitor.Start();
  sim.Run();
  ASSERT_EQ(crashes.size(), 1u);
  EXPECT_DOUBLE_EQ(crashes[0].first, 5.0);
  EXPECT_EQ(crashes[0].second, 2);
  ASSERT_EQ(recoveries.size(), 1u);
  EXPECT_DOUBLE_EQ(recoveries[0].first, 10.0);
  EXPECT_EQ(recoveries[0].second, 2);
  EXPECT_FALSE(monitor.IsDown(2));
}

TEST(FaultMonitorTest, ReportsAlreadyDownWorkerOnStart) {
  Simulator sim;
  ScriptedCrashes faults({CrashEvent{0, 0.0, 4.0}});
  int crash_count = 0;
  FaultMonitor::Callbacks cbs;
  cbs.on_crash = [&](int) { ++crash_count; };
  cbs.on_recover = [](int) {};
  FaultMonitor monitor(&sim, &faults, 2, std::move(cbs));
  monitor.Start();
  EXPECT_EQ(crash_count, 1);
  EXPECT_TRUE(monitor.IsDown(0));
  sim.Run();
  EXPECT_FALSE(monitor.IsDown(0));
}

TEST(FaultMonitorTest, StopCancelsPendingWakeups) {
  Simulator sim;
  ScriptedCrashes faults({CrashEvent{1, 100.0, 200.0}});
  FaultMonitor::Callbacks cbs;
  cbs.on_crash = [](int) {};
  cbs.on_recover = [](int) {};
  FaultMonitor monitor(&sim, &faults, 2, std::move(cbs));
  monitor.Start();
  EXPECT_FALSE(sim.idle());  // a wakeup is pending at t=100
  monitor.Stop();
  sim.Run();
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);  // nothing left to run
}

}  // namespace
}  // namespace fela::sim
