#include "model/memory_model.h"

#include <cmath>

namespace fela::model {

double MemoryModel::BytesForRange(const Model& model, int lo, int hi,
                                  double batch) const {
  const double param_bytes = model.ParamsInRange(lo, hi) *
                             cal_.optimizer_parameter_replicas *
                             cal_.bytes_per_scalar;
  const double act_bytes = model.ActivationElemsInRange(lo, hi) * batch *
                           cal_.bytes_per_scalar *
                           cal_.activation_overhead_factor;
  return param_bytes + act_bytes;
}

int MemoryModel::MaxBatchForRange(const Model& model, int lo, int hi) const {
  const double param_bytes = model.ParamsInRange(lo, hi) *
                             cal_.optimizer_parameter_replicas *
                             cal_.bytes_per_scalar;
  const double per_sample_act = model.ActivationElemsInRange(lo, hi) *
                                cal_.bytes_per_scalar *
                                cal_.activation_overhead_factor;
  const double budget = cal_.gpu_memory_bytes - param_bytes;
  if (budget < per_sample_act) return 0;
  if (per_sample_act <= 0.0) return 1 << 30;
  return static_cast<int>(std::floor(budget / per_sample_act));
}

}  // namespace fela::model
