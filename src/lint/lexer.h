#ifndef FELA_LINT_LEXER_H_
#define FELA_LINT_LEXER_H_

#include <initializer_list>
#include <string>
#include <vector>

namespace fela::lint {

/// The shared source lexer underneath fela-lint and fela-tokendb: one
/// comment/string-aware scanner instead of per-tool ad-hoc state
/// machines. Both tools need the same invariant — columns and line
/// numbers survive blanking, so every reported position points at the
/// real source — and they need opposite literal treatments (lint blanks
/// string contents so documented anti-patterns never fire; the tokendb
/// scanner keeps them because the FELA_TOK format literal IS the
/// payload). Preprocess and StripComments are those two views of the
/// same pass.

/// Per-line split of one file: `code` holds the source with comments
/// and string/char literal *contents* blanked (quotes kept, columns
/// aligned), `comments` holds the comment text of each line.
struct FileText {
  std::vector<std::string> code;
  std::vector<std::string> comments;
};

/// Splits `contents` into aligned code/comment lines (see FileText).
FileText Preprocess(const std::string& contents);

/// Blanks // and /* */ comment contents (newlines kept so line numbers
/// survive) without touching string or char literals — the tokendb
/// view, where FELA_TOK examples in doc comments must never reach the
/// scanner but real format literals must.
std::string StripComments(const std::string& source);

/// True for [A-Za-z0-9_].
bool IsIdentChar(char c);

/// Position of `word` in `line` with identifier boundaries on both
/// sides, or npos.
size_t FindWord(const std::string& line, const std::string& word,
                size_t from = 0);

bool ContainsWord(const std::string& line, const std::string& word);

/// Leading/trailing whitespace removed.
std::string Trim(const std::string& s);

/// Path components of `path`, e.g. "src/core/worker.cc" -> {src,core,...}.
std::vector<std::string> PathComponents(const std::string& path);

/// True when any component of `parts` equals one of `names`.
bool HasComponent(const std::vector<std::string>& parts,
                  std::initializer_list<const char*> names);

/// Quoted #include targets of a file ("core/token_server.h"; angle
/// includes are system headers and carry no project declarations).
/// Parsed from the raw text — Preprocess blanks string literals, and
/// include paths are string literals.
std::vector<std::string> CollectIncludes(const std::string& contents);

/// True when `path` names `include_spec` (equal, or ends with
/// "/<include_spec>" — include specs are root-relative, scanned paths
/// may carry the root prefix).
bool PathMatchesInclude(const std::string& path,
                        const std::string& include_spec);

/// Reads `path` into `contents`; false on I/O error.
bool ReadFile(const std::string& path, std::string* contents);

}  // namespace fela::lint

#endif  // FELA_LINT_LEXER_H_
