#ifndef FELA_SIM_TOPOLOGY_H_
#define FELA_SIM_TOPOLOGY_H_

namespace fela::sim {

/// Physical shape of the cluster network. The default (`rack_size == 0`)
/// is the paper's testbed: every NIC plugs into one non-blocking switch
/// (a star), and the fabric behaves exactly as it did before this struct
/// existed — the 8-node paper figures stay byte-identical.
///
/// `rack_size > 0` enables the two-tier rack/aggregation model used for
/// 1k+ worker runs: nodes [k*rack_size, (k+1)*rack_size) share
/// top-of-rack switch k. Intra-rack traffic behaves exactly like the
/// star; cross-rack traffic additionally serializes FIFO on the source
/// rack's uplink and the destination rack's downlink (each a full-duplex
/// channel of `uplink_bandwidth_bytes_per_sec`) and pays
/// `rack_hop_latency_sec` per ToR<->aggregation hop (two per crossing).
struct Topology {
  /// Nodes per rack; 0 selects the flat single-switch star.
  int rack_size = 0;

  /// Rack uplink/downlink bandwidth into the aggregation tier, shared by
  /// all cross-rack flows of the rack. 0 means "same as the node NIC"
  /// (a non-oversubscribed fabric).
  double uplink_bandwidth_bytes_per_sec = 0.0;

  /// Extra one-way latency per ToR<->aggregation hop. A cross-rack path
  /// traverses two (up into the aggregation switch, down into the
  /// destination ToR).
  double rack_hop_latency_sec = 0.0;

  bool hierarchical() const { return rack_size > 0; }

  /// Rack (ToR switch) index of a node; 0 for the flat star.
  int RackOf(int node) const {
    return hierarchical() ? node / rack_size : 0;
  }

  int NumRacks(int num_nodes) const {
    if (!hierarchical()) return 1;
    return (num_nodes + rack_size - 1) / rack_size;
  }

  /// The paper's single-switch star (the default-constructed state).
  static Topology Flat() { return Topology{}; }

  static Topology Racked(int rack_size, double uplink_bandwidth_bytes_per_sec,
                         double rack_hop_latency_sec) {
    Topology t;
    t.rack_size = rack_size;
    t.uplink_bandwidth_bytes_per_sec = uplink_bandwidth_bytes_per_sec;
    t.rack_hop_latency_sec = rack_hop_latency_sec;
    return t;
  }
};

}  // namespace fela::sim

#endif  // FELA_SIM_TOPOLOGY_H_
