#include "common/json.h"

#include <gtest/gtest.h>

namespace fela::common {
namespace {

TEST(JsonTest, BuildsAndDumpsCompact) {
  Json doc = Json::Object();
  doc.Set("name", "fela");
  doc.Set("n", 3);
  doc.Set("ok", true);
  doc.Set("none", Json());
  Json arr = Json::Array();
  arr.Append(1.5);
  arr.Append("x");
  doc.Set("items", std::move(arr));
  EXPECT_EQ(doc.Dump(),
            R"({"name":"fela","n":3,"ok":true,"none":null,"items":[1.5,"x"]})");
}

TEST(JsonTest, KeyOrderPreservedAndReplaceInPlace) {
  Json doc = Json::Object();
  doc.Set("b", 1);
  doc.Set("a", 2);
  doc.Set("b", 3);  // replaces, keeps slot
  EXPECT_EQ(doc.Dump(), R"({"b":3,"a":2})");
}

TEST(JsonTest, RoundTripsThroughParse) {
  Json doc = Json::Object();
  doc.Set("text", "line1\n\"quoted\"\t\\slash");
  doc.Set("neg", -12.25);
  doc.Set("big", 1e9);
  Json parsed;
  std::string error;
  ASSERT_TRUE(Json::Parse(doc.Dump(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.Find("text")->string_value(), "line1\n\"quoted\"\t\\slash");
  EXPECT_DOUBLE_EQ(parsed.Find("neg")->number_value(), -12.25);
  EXPECT_DOUBLE_EQ(parsed.Find("big")->number_value(), 1e9);
}

TEST(JsonTest, ParsesNestedDocument) {
  const char* text = R"({
    "a": [1, 2, {"k": null}],
    "b": {"c": false, "d": "e"}
  })";
  Json doc;
  std::string error;
  ASSERT_TRUE(Json::Parse(text, &doc, &error)) << error;
  ASSERT_TRUE(doc.Find("a")->is_array());
  EXPECT_EQ(doc.Find("a")->size(), 3u);
  EXPECT_TRUE(doc.Find("a")->at(2).Find("k")->is_null());
  EXPECT_FALSE(doc.Find("b")->Find("c")->bool_value());
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonTest, RejectsMalformedInput) {
  Json doc;
  std::string error;
  EXPECT_FALSE(Json::Parse("{", &doc, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(Json::Parse("[1, 2,]", &doc, &error));
  EXPECT_FALSE(Json::Parse(R"({"a": 1} trailing)", &doc, &error));
  EXPECT_FALSE(Json::Parse("", &doc, &error));
}

TEST(JsonTest, PrettyPrintIndents) {
  Json doc = Json::Object();
  doc.Set("a", 1);
  const std::string pretty = doc.Dump(2);
  EXPECT_NE(pretty.find("\n  \"a\": 1"), std::string::npos);
}

TEST(JsonTest, QuoteEscapes) {
  EXPECT_EQ(Json::Quote("a\"b\\c\n"), R"("a\"b\\c\n")");
}

}  // namespace
}  // namespace fela::common
