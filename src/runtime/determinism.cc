#include "runtime/determinism.h"

#include <algorithm>
#include <vector>

#include "common/binio.h"
#include "common/string_util.h"
#include "runtime/attribution.h"
#include "runtime/sweep.h"

namespace fela::runtime {
namespace {

void AppendLine(std::string* out, const char* key, const std::string& value) {
  *out += key;
  *out += '=';
  *out += value;
  *out += '\n';
}

std::string Num(double v) { return common::StrFormat("%.17g", v); }
std::string Count(uint64_t v) {
  return common::StrFormat("%llu", static_cast<unsigned long long>(v));
}

}  // namespace

std::string DeterminismTranscript(const ExperimentResult& result) {
  std::string out;
  AppendLine(&out, "engine", result.engine_name);
  AppendLine(&out, "stalled", result.stats.stalled ? "true" : "false");
  AppendLine(&out, "total_time", Num(result.stats.total_time));
  AppendLine(&out, "total_data_bytes", Num(result.stats.total_data_bytes));
  AppendLine(&out, "total_gpu_busy", Num(result.stats.total_gpu_busy));
  AppendLine(&out, "control_messages", Count(result.stats.control_messages));
  AppendLine(&out, "average_throughput", Num(result.average_throughput));
  AppendLine(&out, "gpu_utilization", Num(result.gpu_utilization));
  const FaultStats& f = result.stats.faults;
  AppendLine(&out, "faults.crashes", Count(f.crashes));
  AppendLine(&out, "faults.recoveries", Count(f.recoveries));
  AppendLine(&out, "faults.control_dropped", Count(f.control_dropped));
  AppendLine(&out, "faults.control_duplicated", Count(f.control_duplicated));
  AppendLine(&out, "faults.tokens_reclaimed", Count(f.tokens_reclaimed));
  AppendLine(&out, "faults.regrants", Count(f.regrants));
  AppendLine(&out, "faults.request_retries", Count(f.request_retries));
  AppendLine(&out, "faults.duplicate_reports", Count(f.duplicate_reports));
  AppendLine(&out, "faults.readmissions", Count(f.readmissions));
  AppendLine(&out, "faults.recovery_latency_total",
             Num(f.recovery_latency_total));
  // ts_checkpoints is deliberately absent: boundary checkpoints fire on
  // *attached* (even inert) schedules, so including the counter would
  // break inert-schedule == faultless byte identity.
  AppendLine(&out, "faults.ts_failovers", Count(f.ts_failovers));
  AppendLine(&out, "faults.partition_cuts", Count(f.partition_cuts));
  AppendLine(&out, "faults.partition_heals", Count(f.partition_heals));
  AppendLine(&out, "faults.leases_restored", Count(f.leases_restored));
  for (size_t i = 0; i < result.stats.iterations.size(); ++i) {
    const IterationStats& it = result.stats.iterations[i];
    out += common::StrFormat("iteration[%zu]=%s..%s\n", i,
                             Num(it.start).c_str(), Num(it.end).c_str());
  }
  if (result.observed) {
    out += "--- metrics ---\n";
    out += result.metrics.ToCsv();
    out += "--- attribution ---\n";
    out += obs::AttributionToJson(result.attribution).Dump(1);
    out += '\n';
    out += "--- chrome_trace ---\n";
    out += result.chrome_trace;
    out += '\n';
  }
  return out;
}

std::string BinaryTranscript(const ExperimentResult& result) {
  namespace binio = ::fela::common;
  std::string out;
  out += "FELADET1";
  binio::AppendU32(&out, static_cast<uint32_t>(result.engine_name.size()));
  out += result.engine_name;
  binio::AppendU8(&out, result.stats.stalled ? 1 : 0);
  binio::AppendU8(&out, result.observed ? 1 : 0);
  binio::AppendF64(&out, result.stats.total_time);
  binio::AppendF64(&out, result.stats.total_data_bytes);
  binio::AppendF64(&out, result.stats.total_gpu_busy);
  binio::AppendU64(&out, result.stats.control_messages);
  binio::AppendF64(&out, result.average_throughput);
  binio::AppendF64(&out, result.gpu_utilization);
  const FaultStats& f = result.stats.faults;
  // Same counter set as the text transcript — ts_checkpoints stays out
  // for the same inert-schedule reason documented there.
  binio::AppendU64(&out, f.crashes);
  binio::AppendU64(&out, f.recoveries);
  binio::AppendU64(&out, f.control_dropped);
  binio::AppendU64(&out, f.control_duplicated);
  binio::AppendU64(&out, f.tokens_reclaimed);
  binio::AppendU64(&out, f.regrants);
  binio::AppendU64(&out, f.request_retries);
  binio::AppendU64(&out, f.duplicate_reports);
  binio::AppendU64(&out, f.readmissions);
  binio::AppendF64(&out, f.recovery_latency_total);
  binio::AppendU64(&out, f.ts_failovers);
  binio::AppendU64(&out, f.partition_cuts);
  binio::AppendU64(&out, f.partition_heals);
  binio::AppendU64(&out, f.leases_restored);
  binio::AppendU64(&out, result.stats.iterations.size());
  for (const IterationStats& it : result.stats.iterations) {
    binio::AppendF64(&out, it.start);
    binio::AppendF64(&out, it.end);
  }
  if (result.observed) {
    const std::string csv = result.metrics.ToCsv();
    binio::AppendU64(&out, csv.size());
    out += csv;
    binio::AppendU64(&out, result.binary_trace.size());
    out += result.binary_trace;
  }
  return out;
}

uint64_t Fnv1a64(const std::string& data) {
  uint64_t hash = 14695981039346656037ULL;
  for (const char c : data) {
    hash ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string DeterminismReport::ToString() const {
  if (deterministic) {
    return common::StrFormat("deterministic hash=%016llx",
                             static_cast<unsigned long long>(hash_first));
  }
  return common::StrFormat(
      "DIVERGED at transcript line %d: first run %s | second run %s",
      divergence_line, line_first.c_str(), line_second.c_str());
}

DeterminismReport DiffTranscripts(const std::string& first,
                                  const std::string& second) {
  DeterminismReport report;
  report.hash_first = Fnv1a64(first);
  report.hash_second = Fnv1a64(second);
  report.deterministic = first == second;
  if (report.deterministic) return report;

  const std::vector<std::string> a = common::Split(first, '\n');
  const std::vector<std::string> b = common::Split(second, '\n');
  const size_t n = std::max(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const std::string* la = i < a.size() ? &a[i] : nullptr;
    const std::string* lb = i < b.size() ? &b[i] : nullptr;
    if (la != nullptr && lb != nullptr && *la == *lb) continue;
    report.divergence_line = static_cast<int>(i) + 1;
    report.line_first = la != nullptr ? *la : "<end of transcript>";
    report.line_second = lb != nullptr ? *lb : "<end of transcript>";
    break;
  }
  return report;
}

DeterminismReport VerifyDeterminism(const ExperimentSpec& spec,
                                    const EngineFactory& engine_factory,
                                    const StragglerFactory& straggler_factory,
                                    const FaultFactory& fault_factory,
                                    int jobs) {
  ExperimentSpec observed = spec;
  observed.observe = true;
  const std::vector<SweepItem> items(
      2, SweepItem{observed, engine_factory, straggler_factory,
                   fault_factory});
  const std::vector<ExperimentResult> runs = RunSweep(items, jobs);
  // Binary-first: compare the compact transcripts (cheap, no text
  // formatting), and only render the text form to report the hash — or,
  // on divergence, to pinpoint the first differing line for humans.
  if (BinaryTranscript(runs[0]) == BinaryTranscript(runs[1])) {
    DeterminismReport report;
    report.deterministic = true;
    report.hash_first = report.hash_second =
        Fnv1a64(DeterminismTranscript(runs[0]));
    return report;
  }
  DeterminismReport report = DiffTranscripts(DeterminismTranscript(runs[0]),
                                             DeterminismTranscript(runs[1]));
  if (report.deterministic) {
    // The binary forms differ but their text renderings collide (e.g. a
    // detail whose token changed while detokenizing to the same bytes).
    // Binary is the source of truth — surface the divergence.
    report.deterministic = false;
    report.divergence_line = 0;
    report.line_first = "<binary transcript divergence>";
    report.line_second = "<binary transcript divergence>";
  }
  return report;
}

}  // namespace fela::runtime
