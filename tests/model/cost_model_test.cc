#include "model/cost_model.h"

#include <gtest/gtest.h>

#include "model/zoo.h"

namespace fela::model {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest()
      : cost_(sim::Calibration::Default(), &ProfileRepository::Default()) {}
  LayerCostModel cost_;
};

TEST_F(CostModelTest, PerSampleSecondsFromFlops) {
  Layer l = Layer::Conv("x", 64, 64, 224, 224);
  const double expected = l.FlopsPerSample() *
                          LayerCostModel::kTrainingFlopsMultiplier /
                          sim::Calibration::Default().gpu_effective_flops;
  EXPECT_DOUBLE_EQ(cost_.PerSampleSeconds(l), expected);
}

TEST_F(CostModelTest, SaturatedRegionIsLinear) {
  Layer l = Layer::Conv("x", 64, 64, 224, 224);  // threshold 16
  const double t32 = cost_.PassSeconds(l, 32);
  const double t64 = cost_.PassSeconds(l, 64);
  EXPECT_NEAR(t64 / t32, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(cost_.UnderutilizationSeconds(l, 32), 0.0);
}

TEST_F(CostModelTest, SubThresholdPaysUnderutilization) {
  Layer l = Layer::Fc("x", 4096, 4096);  // threshold 2048
  EXPECT_GT(cost_.UnderutilizationSeconds(l, 32), 0.0);
  // Throughput below threshold is strictly worse than at threshold.
  EXPECT_LT(cost_.Throughput(l, 32), cost_.Throughput(l, 2048));
}

TEST_F(CostModelTest, ThroughputRisesThenPlateaus) {
  // The Fig. 1 shape: throughput monotone non-decreasing in batch, flat
  // above the threshold.
  Layer l = Layer::Conv("x", 512, 512, 14, 14);
  double prev = 0.0;
  for (double b = 1; b <= 512; b *= 2) {
    const double t = cost_.Throughput(l, b);
    EXPECT_GE(t, prev * 0.999) << "batch " << b;
    prev = t;
  }
  EXPECT_NEAR(cost_.Throughput(l, 256), cost_.Throughput(l, 512), 1e-6);
}

TEST_F(CostModelTest, MeasuredThresholdsMatchFigureOne) {
  // The power-of-two profiling sweep must "measure" the Fig. 1
  // saturation points: 16, 64 and 2048 for the three shapes.
  EXPECT_DOUBLE_EQ(
      cost_.MeasureThresholdBatch(Layer::Conv("a", 64, 64, 224, 224), 4096),
      16.0);
  EXPECT_DOUBLE_EQ(
      cost_.MeasureThresholdBatch(Layer::Conv("b", 512, 512, 14, 14), 4096),
      64.0);
  EXPECT_DOUBLE_EQ(
      cost_.MeasureThresholdBatch(Layer::Fc("c", 4096, 4096), 4096), 2048.0);
}

TEST_F(CostModelTest, SweepCoversPowersOfTwo) {
  const auto points =
      cost_.SweepThroughput(Layer::Conv("a", 64, 64, 224, 224), 64);
  ASSERT_EQ(points.size(), 7u);  // 1..64
  EXPECT_DOUBLE_EQ(points.front().batch, 1.0);
  EXPECT_DOUBLE_EQ(points.back().batch, 64.0);
}

TEST_F(CostModelTest, RangeSecondsSumsLayers) {
  Model m = zoo::Vgg19();
  const double whole = cost_.RangeSeconds(m, 0, 18, 32);
  const double split =
      cost_.RangeSeconds(m, 0, 7, 32) + cost_.RangeSeconds(m, 8, 18, 32);
  EXPECT_NEAR(whole, split, 1e-12);
}

TEST_F(CostModelTest, Vgg19SaturatedPassIsPlausible) {
  // ~39.3 GFLOPs fwd * 3 / 2 TFLOP/s ~ 59 ms/sample at saturation.
  Model m = zoo::Vgg19();
  const double t = cost_.RangeSeconds(m, 0, 18, 2048) / 2048;
  EXPECT_NEAR(t, 0.059, 0.005);
}

TEST_F(CostModelTest, LatencyRegionExponentControlsPenalty) {
  sim::Calibration harsh = sim::Calibration::Default();
  harsh.latency_region_exponent = 0.0;  // fully latency-bound
  sim::Calibration mild = sim::Calibration::Default();
  mild.latency_region_exponent = 1.0;  // no penalty
  LayerCostModel harsh_cost(harsh, &ProfileRepository::Default());
  LayerCostModel mild_cost(mild, &ProfileRepository::Default());
  Layer l = Layer::Fc("x", 4096, 4096);
  EXPECT_GT(harsh_cost.PassSeconds(l, 8), mild_cost.PassSeconds(l, 8));
  EXPECT_DOUBLE_EQ(mild_cost.UnderutilizationSeconds(l, 8), 0.0);
  // With gamma = 0, a sub-threshold pass costs the full threshold pass.
  EXPECT_NEAR(harsh_cost.PassSeconds(l, 8), harsh_cost.PassSeconds(l, 2048),
              1e-9);
}

class LayerSweep : public ::testing::TestWithParam<int> {};

TEST_P(LayerSweep, PassTimeMonotoneInBatch) {
  Model m = zoo::Vgg19();
  const Layer& l = m.layer(GetParam());
  LayerCostModel cost(sim::Calibration::Default(),
                      &ProfileRepository::Default());
  double prev = 0.0;
  for (double b = 1; b <= 4096; b *= 2) {
    const double t = cost.PassSeconds(l, b);
    EXPECT_GT(t, prev) << l.name << " batch " << b;
    prev = t;
  }
}

TEST_P(LayerSweep, MeasuredThresholdNearProfiled) {
  Model m = zoo::Vgg19();
  const Layer& l = m.layer(GetParam());
  LayerCostModel cost(sim::Calibration::Default(),
                      &ProfileRepository::Default());
  const double measured = cost.MeasureThresholdBatch(l, 4096);
  // Power-of-two rounding of the continuous threshold: within [t/2, 2t].
  EXPECT_GE(measured, l.threshold_batch / 2);
  EXPECT_LE(measured, l.threshold_batch * 2);
}

INSTANTIATE_TEST_SUITE_P(Vgg19Layers, LayerSweep,
                         ::testing::Range(0, 19));

}  // namespace
}  // namespace fela::model
