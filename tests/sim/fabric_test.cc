#include "sim/fabric.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/faults.h"

namespace fela::sim {
namespace {

/// Duplicates every control message; never crashes or drops.
class AlwaysDuplicate final : public FaultSchedule {
 public:
  bool IsDownAt(SimTime, int) const override { return false; }
  SimTime NextTransitionAfter(SimTime) const override { return kNeverTime; }
  bool DuplicateControl(uint64_t) const override { return true; }
  std::string ToString() const override { return "always-dup"; }
};

Calibration TestCal() {
  Calibration cal;
  cal.nic_bandwidth_bytes_per_sec = 1e9;  // 1 GB/s for round numbers
  cal.message_latency_sec = 1e-3;
  cal.control_message_bytes = 1000;
  return cal;
}

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : fabric_(&sim_, 4, TestCal()) {}
  Simulator sim_;
  Fabric fabric_;
};

TEST_F(FabricTest, TransferTimeIsLatencyPlusWire) {
  SimTime done = 0.0;
  fabric_.Transfer(0, 1, 1e9, [&] { done = sim_.now(); });
  sim_.Run();
  EXPECT_NEAR(done, 1.0 + 1e-3, 1e-12);
}

TEST_F(FabricTest, LocalTransferIsFreeAndInstant) {
  SimTime done = -1.0;
  fabric_.Transfer(2, 2, 1e9, [&] { done = sim_.now(); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(done, 0.0);
  EXPECT_DOUBLE_EQ(fabric_.total_data_bytes(), 0.0);
}

TEST_F(FabricTest, ZeroByteTransferCompletesImmediately) {
  SimTime done = -1.0;
  fabric_.Transfer(0, 1, 0.0, [&] { done = sim_.now(); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(done, 0.0);
}

TEST_F(FabricTest, SameSourceSerializesOnOutboundLink) {
  SimTime first = 0.0, second = 0.0;
  fabric_.Transfer(0, 1, 1e9, [&] { first = sim_.now(); });
  fabric_.Transfer(0, 2, 1e9, [&] { second = sim_.now(); });
  sim_.Run();
  EXPECT_NEAR(first, 1.001, 1e-9);
  EXPECT_NEAR(second, 2.002, 1e-9);  // queued behind the first
}

TEST_F(FabricTest, SameDestinationSerializesOnInboundLink) {
  SimTime first = 0.0, second = 0.0;
  fabric_.Transfer(0, 3, 1e9, [&] { first = sim_.now(); });
  fabric_.Transfer(1, 3, 1e9, [&] { second = sim_.now(); });
  sim_.Run();
  EXPECT_NEAR(first, 1.001, 1e-9);
  EXPECT_NEAR(second, 2.002, 1e-9);
}

TEST_F(FabricTest, DisjointPairsRunInParallel) {
  SimTime a = 0.0, b = 0.0;
  fabric_.Transfer(0, 1, 1e9, [&] { a = sim_.now(); });
  fabric_.Transfer(2, 3, 1e9, [&] { b = sim_.now(); });
  sim_.Run();
  EXPECT_NEAR(a, 1.001, 1e-9);
  EXPECT_NEAR(b, 1.001, 1e-9);  // not queued; different links
}

TEST_F(FabricTest, ControlMessagesBypassDataQueue) {
  // Saturate the 0->1 path with bulk data, then send a control message;
  // it must not wait for the bulk transfer.
  fabric_.Transfer(0, 1, 10e9, [] {});
  SimTime ctrl = 0.0;
  fabric_.SendControl(0, 1, [&] { ctrl = sim_.now(); });
  sim_.Run();
  EXPECT_LT(ctrl, 0.01);
}

TEST_F(FabricTest, ControlLoopbackIsImmediate) {
  SimTime t = -1.0;
  fabric_.SendControl(1, 1, [&] { t = sim_.now(); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(t, 0.0);
  EXPECT_EQ(fabric_.control_message_count(), 1u);
}

TEST_F(FabricTest, DuplicatedControlArrivesOnceNormallyOnceLate) {
  AlwaysDuplicate faults;
  fabric_.SetFaults(&faults, nullptr);
  std::vector<SimTime> deliveries;
  fabric_.SendControl(0, 1, [&] { deliveries.push_back(sim_.now()); });
  sim_.Run();
  const double wire = 1000 / 1e9;  // control_message_bytes / bandwidth
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_NEAR(deliveries[0], 1e-3 + wire, 1e-12);
  EXPECT_NEAR(deliveries[1], 2e-3 + wire, 1e-12);
  EXPECT_EQ(fabric_.control_duplicated_count(), 1u);
}

// Regression: a duplicated loopback message used to deliver both copies
// at the same timestamp, while a duplicated remote message paid one
// extra latency — so the dup penalty silently vanished whenever the two
// roles were co-located. The retransmitted copy must lag by one message
// latency on loopback too.
TEST_F(FabricTest, DuplicatedLoopbackPaysRetransmitLatency) {
  AlwaysDuplicate faults;
  fabric_.SetFaults(&faults, nullptr);
  std::vector<SimTime> deliveries;
  fabric_.SendControl(2, 2, [&] { deliveries.push_back(sim_.now()); });
  sim_.Run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_DOUBLE_EQ(deliveries[0], 0.0);
  EXPECT_NEAR(deliveries[1], 1e-3, 1e-12);
  EXPECT_EQ(fabric_.control_duplicated_count(), 1u);
}

TEST_F(FabricTest, StatisticsTrackBytesAndCounts) {
  fabric_.Transfer(0, 1, 5e8, [] {});
  fabric_.Transfer(1, 0, 25e7, [] {});
  sim_.Run();
  EXPECT_DOUBLE_EQ(fabric_.total_data_bytes(), 7.5e8);
  EXPECT_DOUBLE_EQ(fabric_.bytes_sent(0), 5e8);
  EXPECT_DOUBLE_EQ(fabric_.bytes_received(0), 25e7);
  EXPECT_DOUBLE_EQ(fabric_.bytes_sent(1), 25e7);
  EXPECT_DOUBLE_EQ(fabric_.bytes_received(1), 5e8);
  EXPECT_EQ(fabric_.data_transfer_count(), 2u);
}

TEST_F(FabricTest, LinkBusyAccounting) {
  fabric_.Transfer(0, 1, 1e9, [] {});
  sim_.Run();
  EXPECT_NEAR(fabric_.out_link_busy(0), 1.001, 1e-9);
  EXPECT_NEAR(fabric_.in_link_busy(1), 1.001, 1e-9);
  EXPECT_DOUBLE_EQ(fabric_.out_link_busy(1), 0.0);
}

TEST_F(FabricTest, ResetStatsClearsCounters) {
  fabric_.Transfer(0, 1, 1e9, [] {});
  sim_.Run();
  fabric_.ResetStats();
  EXPECT_DOUBLE_EQ(fabric_.total_data_bytes(), 0.0);
  EXPECT_EQ(fabric_.data_transfer_count(), 0u);
  EXPECT_DOUBLE_EQ(fabric_.out_link_busy(0), 0.0);
}

TEST_F(FabricTest, NextFreeTimeReflectsQueue) {
  EXPECT_DOUBLE_EQ(fabric_.NextFreeTime(0, 1), 0.0);
  fabric_.Transfer(0, 1, 1e9, [] {});
  EXPECT_NEAR(fabric_.NextFreeTime(0, 1), 1.001, 1e-9);
  EXPECT_NEAR(fabric_.NextFreeTime(0, 2), 1.001, 1e-9);  // src busy
  EXPECT_NEAR(fabric_.NextFreeTime(2, 1), 1.001, 1e-9);  // dst busy
  EXPECT_DOUBLE_EQ(fabric_.NextFreeTime(2, 3), 0.0);
}

TEST_F(FabricTest, InvalidNodeAborts) {
  EXPECT_DEATH(fabric_.Transfer(0, 7, 1.0, [] {}), "node");
  EXPECT_DEATH(fabric_.Transfer(-1, 0, 1.0, [] {}), "node");
}

/// Inflates control latency 3x at every endpoint and duplicates every
/// message: exercises the unified retransmit path under gray delay.
class GrayAndDuplicate final : public FaultSchedule {
 public:
  bool IsDownAt(SimTime, int) const override { return false; }
  SimTime NextTransitionAfter(SimTime) const override { return kNeverTime; }
  bool DuplicateControl(uint64_t) const override { return true; }
  double ControlDelayFactor(SimTime, int) const override { return 3.0; }
  std::string ToString() const override { return "gray-dup"; }
};

// Regression for the SendControl rewrite that unified the loopback and
// remote duplicate paths: the retransmitted copy must lag the original
// by exactly one (gray-inflated) message latency on BOTH paths, instead
// of the loopback special case drifting from the remote one.
TEST_F(FabricTest, DuplicateRetransmitLagScalesWithGrayDelayOnEveryPath) {
  GrayAndDuplicate faults;
  fabric_.SetFaults(&faults, nullptr);
  const double wire = 1000 / 1e9;
  std::vector<SimTime> remote;
  fabric_.SendControl(0, 1, [&] { remote.push_back(sim_.now()); });
  sim_.Run();
  ASSERT_EQ(remote.size(), 2u);
  EXPECT_NEAR(remote[0], 3e-3 + wire, 1e-12);
  EXPECT_NEAR(remote[1] - remote[0], 3e-3, 1e-12);

  std::vector<SimTime> loop;
  fabric_.SendControl(2, 2, [&] { loop.push_back(sim_.now()); });
  sim_.Run();
  ASSERT_EQ(loop.size(), 2u);
  EXPECT_NEAR(loop[1] - loop[0], 3e-3, 1e-12);  // same lag as remote
}

// Regression: with a zero-latency calibration both copies of a
// duplicated message land at the same instant; the rewrite schedules the
// original first so FIFO tie-break delivers original-then-copy, and both
// must still be delivered (the copy must not be lost to the tie).
TEST(FabricDupOrderTest, ZeroLatencyDuplicateDeliversBothCopies) {
  Calibration cal = TestCal();
  cal.message_latency_sec = 0.0;
  Simulator sim;
  Fabric fabric(&sim, 2, cal);
  AlwaysDuplicate faults;
  fabric.SetFaults(&faults, nullptr);
  int deliveries = 0;
  fabric.SendControl(1, 1, [&] { ++deliveries; });
  sim.Run();
  EXPECT_EQ(deliveries, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

// ---- Hierarchical (racked) topology ------------------------------------

Calibration RackedCal() {
  Calibration cal = TestCal();
  // 2-node racks, 0.5 GB/s uplinks (slower than the 1 GB/s NICs), 1 ms
  // per ToR<->aggregation hop.
  cal.topology = Topology::Racked(2, 5e8, 1e-3);
  return cal;
}

class RackedFabricTest : public ::testing::Test {
 protected:
  RackedFabricTest() : fabric_(&sim_, 4, RackedCal()) {}
  Simulator sim_;
  Fabric fabric_;
};

TEST_F(RackedFabricTest, IntraRackTransferMatchesFlatStar) {
  SimTime done = 0.0;
  fabric_.Transfer(0, 1, 1e9, [&] { done = sim_.now(); });  // same rack
  sim_.Run();
  EXPECT_NEAR(done, 1.0 + 1e-3, 1e-12);  // NIC rate, no rack hops
  EXPECT_EQ(fabric_.cross_rack_transfer_count(), 0u);
}

TEST_F(RackedFabricTest, CrossRackTransferPaysUplinkAndHops) {
  SimTime done = 0.0;
  fabric_.Transfer(0, 2, 1e9, [&] { done = sim_.now(); });  // rack 0 -> 1
  sim_.Run();
  // Clocked at the 0.5 GB/s uplink, plus base latency and two rack hops.
  EXPECT_NEAR(done, 2.0 + 1e-3 + 2e-3, 1e-12);
  EXPECT_EQ(fabric_.cross_rack_transfer_count(), 1u);
  EXPECT_DOUBLE_EQ(fabric_.cross_rack_bytes(), 1e9);
}

TEST_F(RackedFabricTest, CrossRackFlowsSerializeOnRackUplink) {
  // Distinct node pairs (0->2 and 1->3) that would run in parallel on
  // the flat star must serialize on rack 0's uplink channel.
  SimTime a = 0.0, b = 0.0;
  fabric_.Transfer(0, 2, 5e8, [&] { a = sim_.now(); });
  fabric_.Transfer(1, 3, 5e8, [&] { b = sim_.now(); });
  sim_.Run();
  const double one = 1.0 + 1e-3 + 2e-3;  // 5e8 B at the 5e8 B/s uplink
  EXPECT_NEAR(a, one, 1e-12);
  EXPECT_NEAR(b, 2 * one, 1e-12);
}

TEST_F(RackedFabricTest, CrossRackControlPaysHopLatency) {
  const double wire = 1000 / 1e9;
  SimTime intra = 0.0, cross = 0.0;
  fabric_.SendControl(0, 1, [&] { intra = sim_.now(); });
  fabric_.SendControl(0, 2, [&] { cross = sim_.now(); });
  sim_.Run();
  EXPECT_NEAR(intra, 1e-3 + wire, 1e-12);
  EXPECT_NEAR(cross, 1e-3 + 2e-3 + wire, 1e-12);
}

TEST_F(RackedFabricTest, CrossRackDuplicateLagsByCrossRackLatency) {
  AlwaysDuplicate faults;
  fabric_.SetFaults(&faults, nullptr);
  std::vector<SimTime> deliveries;
  fabric_.SendControl(0, 2, [&] { deliveries.push_back(sim_.now()); });
  sim_.Run();
  ASSERT_EQ(deliveries.size(), 2u);
  // The retransmit timeout covers the full one-way latency incl. hops.
  EXPECT_NEAR(deliveries[1] - deliveries[0], 1e-3 + 2e-3, 1e-12);
}

TEST_F(RackedFabricTest, ResetStatsClearsCrossRackCounters) {
  fabric_.Transfer(0, 2, 1e9, [] {});
  sim_.Run();
  fabric_.ResetStats();
  EXPECT_EQ(fabric_.cross_rack_transfer_count(), 0u);
  EXPECT_DOUBLE_EQ(fabric_.cross_rack_bytes(), 0.0);
}

TEST(TopologyTest, RackMathAndFlatDefault) {
  const Topology flat = Topology::Flat();
  EXPECT_FALSE(flat.hierarchical());
  EXPECT_EQ(flat.RackOf(7), 0);
  EXPECT_EQ(flat.NumRacks(1024), 1);
  const Topology racked = Topology::Racked(32, 5e9, 5e-6);
  EXPECT_TRUE(racked.hierarchical());
  EXPECT_EQ(racked.RackOf(31), 0);
  EXPECT_EQ(racked.RackOf(32), 1);
  EXPECT_EQ(racked.NumRacks(1024), 32);
  EXPECT_EQ(racked.NumRacks(33), 2);  // partial trailing rack
}

}  // namespace
}  // namespace fela::sim
