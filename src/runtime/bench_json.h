#ifndef FELA_RUNTIME_BENCH_JSON_H_
#define FELA_RUNTIME_BENCH_JSON_H_

#include <string>

#include "common/json.h"
#include "runtime/experiment.h"

namespace fela::obs {

/// Accumulates a bench's per-engine results into the machine-readable
/// artifact written by `--json`: one entry per (engine, sweep point),
/// each with iteration-time summaries and — when the run was observed —
/// the full attribution report. Schema (validated by
/// ValidateBenchReportJson):
///
///   { "bench": "<name>",
///     "results": [ { "engine": str, "x": num, "iterations": num,
///                    "mean_iteration_seconds": num,
///                    "average_throughput": num, "gpu_utilization": num,
///                    "stalled": bool, "attribution"?: {...} } ] }
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  /// Adds one run's row; `x` is the sweep variable (0 when the bench
  /// has no sweep).
  void Add(const runtime::ExperimentResult& result, double x = 0.0);

  common::Json ToJson() const;

  /// Writes ToJson() to BenchJsonPath(bench name); returns the path, or
  /// "" on I/O failure.
  std::string WriteFile() const;

  const std::string& name() const { return name_; }
  size_t size() const { return results_.size(); }

 private:
  std::string name_;
  common::Json results_ = common::Json::Array();
};

/// "BENCH_<name>.json" in the current directory.
std::string BenchJsonPath(const std::string& bench_name);

/// Structural check of a BenchReport document (used by the smoke test
/// and by downstream consumers defending against schema drift). Verifies
/// required fields/types and, for every attribution block present, that
/// each worker's fractions sum to 1 within 1e-9. Fills `error` on
/// failure.
bool ValidateBenchReportJson(const common::Json& doc, std::string* error);

/// Structural check of a fela-lint --format=json document:
///
///   { "count": num,
///     "findings": [ { "file": str, "line": num, "message": str,
///                     "rule": str } ],
///     "timings": { "files": num, "lex_seconds": num,
///                  "include_graph_seconds": num, "index_seconds": num,
///                  "rules_seconds": num, "total_seconds": num } }
///
/// Verifies count matches the findings array, every finding row is
/// complete, and every timing field is a non-negative number. Lives here
/// rather than in src/lint so artifact consumers (CI scripts, bench
/// tooling) validate lint reports and bench reports through one library.
bool ValidateLintReportJson(const common::Json& doc, std::string* error);

}  // namespace fela::obs

#endif  // FELA_RUNTIME_BENCH_JSON_H_
