#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace fela::common {

namespace {
LogLevel LevelFromEnv() {
  const char* env = std::getenv("FELA_LOG_LEVEL");
  LogLevel level = LogLevel::kInfo;
  if (env != nullptr) ParseLogLevel(env, &level);
  return level;
}

std::atomic<LogLevel> g_min_level{LevelFromEnv()};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}
}  // namespace

void SetMinLogLevel(LogLevel level) { g_min_level.store(level); }
LogLevel MinLogLevel() { return g_min_level.load(); }

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug" || lower == "0") {
    *out = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "2") {
    *out = LogLevel::kWarning;
  } else if (lower == "error" || lower == "3") {
    *out = LogLevel::kError;
  } else if (lower == "fatal" || lower == "4") {
    *out = LogLevel::kFatal;
  } else {
    return false;
  }
  return true;
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level_), Basename(file_),
               line_, stream_.str().c_str());
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace fela::common
