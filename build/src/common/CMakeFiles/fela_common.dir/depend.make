# Empty dependencies file for fela_common.
# This may be replaced when dependencies are built.
