#include "core/token_bucket.h"

#include <algorithm>

#include "common/logging.h"

namespace fela::core {

std::vector<int> LevelPriorityFor(sim::NodeId worker, const FelaConfig& config,
                                  const FelaPlan& plan, bool ctd_relaxed) {
  const int m = plan.num_levels();
  std::vector<int> base;
  base.reserve(static_cast<size_t>(m));
  if (config.ads_enabled) {
    for (int l = m - 1; l >= 0; --l) base.push_back(l);
  } else {
    for (int l = 0; l < m; ++l) base.push_back(l);
  }

  const bool ctd_active =
      !ctd_relaxed && config.ctd_subset_size < plan.num_workers;
  if (!ctd_active) return base;

  std::vector<int> comm;
  std::vector<int> rest;
  for (int l : base) {
    if (plan.level(l).communication_intensive) {
      comm.push_back(l);
    } else {
      rest.push_back(l);
    }
  }
  if (comm.empty()) return base;

  const bool in_subset = worker < config.ctd_subset_size;
  if (!in_subset) return rest;  // never distribute comm tokens outside S
  std::vector<int> order = comm;  // S workers: comm levels first
  order.insert(order.end(), rest.begin(), rest.end());
  return order;
}

void TokenBucket::Add(Token token) {
  by_level_[token.level].push_back(std::move(token));
  ++size_;
}

size_t TokenBucket::CountAtLevel(int level) const {
  auto it = by_level_.find(level);
  return it == by_level_.end() ? 0 : it->second.size();
}

bool TokenBucket::HasTokenForOrder(const std::vector<int>& order) const {
  for (int level : order) {
    if (CountAtLevel(level) > 0) return true;
  }
  return false;
}

double TokenBucket::ScoreFor(sim::NodeId worker, const InfoMapping& info,
                             const Token& token) {
  if (token.level == 0) {
    if (token.sample_home < 0) return 1.0;
    return token.sample_home == worker ? 1.0 : 0.0;
  }
  return info.LocalityScore(worker, token.deps);
}

std::optional<Token> TokenBucket::Take(sim::NodeId worker,
                                       const InfoMapping& info,
                                       const std::vector<int>& order,
                                       bool use_locality) {
  for (int level : order) {
    auto it = by_level_.find(level);
    if (it == by_level_.end() || it->second.empty()) continue;
    auto& queue = it->second;
    size_t best = 0;
    if (use_locality) {
      double best_score = -1.0;
      for (size_t i = 0; i < queue.size(); ++i) {
        const double score = ScoreFor(worker, info, queue[i]);
        // Strict > keeps the smallest token id among ties (the queue is
        // in id order; ids are assigned monotonically).
        if (score > best_score) {
          best_score = score;
          best = i;
        }
      }
    }
    Token token = std::move(queue[best]);
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(best));
    --size_;
    return token;
  }
  return std::nullopt;
}

std::optional<Token> TokenBucket::TakeById(TokenId id) {
  for (auto& [level, queue] : by_level_) {
    for (size_t i = 0; i < queue.size(); ++i) {
      if (queue[i].id != id) continue;
      Token token = std::move(queue[i]);
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
      --size_;
      return token;
    }
  }
  return std::nullopt;
}

std::vector<Token> TokenBucket::Snapshot() const {
  std::vector<Token> out;
  out.reserve(size_);
  for (const auto& [level, queue] : by_level_) {
    out.insert(out.end(), queue.begin(), queue.end());
  }
  return out;
}

void TokenBucket::Clear() {
  by_level_.clear();
  size_ = 0;
}

}  // namespace fela::core
