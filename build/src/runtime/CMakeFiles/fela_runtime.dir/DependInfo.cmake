
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/cluster.cc" "src/runtime/CMakeFiles/fela_runtime.dir/cluster.cc.o" "gcc" "src/runtime/CMakeFiles/fela_runtime.dir/cluster.cc.o.d"
  "/root/repo/src/runtime/engine.cc" "src/runtime/CMakeFiles/fela_runtime.dir/engine.cc.o" "gcc" "src/runtime/CMakeFiles/fela_runtime.dir/engine.cc.o.d"
  "/root/repo/src/runtime/experiment.cc" "src/runtime/CMakeFiles/fela_runtime.dir/experiment.cc.o" "gcc" "src/runtime/CMakeFiles/fela_runtime.dir/experiment.cc.o.d"
  "/root/repo/src/runtime/report.cc" "src/runtime/CMakeFiles/fela_runtime.dir/report.cc.o" "gcc" "src/runtime/CMakeFiles/fela_runtime.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fela_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fela_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/fela_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
