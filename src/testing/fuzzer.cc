#include "testing/fuzzer.h"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>

#include "common/string_util.h"
#include "core/token_server.h"
#include "runtime/determinism.h"
#include "sim/faults.h"

namespace fela::testing {

namespace {

/// Runs the spec's experiment with a given fault factory, feeding the
/// oracle battery's Probe window when one is supplied.
runtime::ExperimentResult RunProbed(
    const FuzzSpec& spec, const runtime::FaultFactory& faults,
    std::vector<std::unique_ptr<InvariantOracle>>* oracles) {
  runtime::ExperimentSpec espec = ToExperimentSpec(spec);
  if (oracles != nullptr) {
    espec.post_run_probe = [&spec, oracles](const runtime::Engine& engine,
                                            runtime::Cluster& cluster) {
      for (auto& o : *oracles) o->Probe(spec, engine, cluster);
    };
  }
  return runtime::RunExperiment(espec, MakeEngineFactory(spec),
                                MakeStragglerFactory(spec), faults);
}

/// A fault schedule that is Active() yet injects nothing: an empty
/// composite. Engines take their fault-aware paths (leases armed, fault
/// monitor started) but nothing ever fires — so the run must be
/// byte-identical to the plain no-fault run.
runtime::FaultFactory InertFaultFactory() {
  return [](int) -> std::unique_ptr<sim::FaultSchedule> {
    return std::make_unique<sim::CompositeFaults>(
        std::vector<std::unique_ptr<sim::FaultSchedule>>{});
  };
}

}  // namespace

FuzzCaseResult RunFuzzCase(const FuzzSpec& spec, const FuzzOptions& options) {
  // Under the mutation canary the leak pattern depends on a process-wide
  // report counter; restart it so "does this spec trip the oracle" is a
  // deterministic property of the spec, not of whatever ran before.
  if (core::TokenServerMutationForTesting()) {
    core::SetTokenServerMutationForTesting(true);
  }

  FuzzCaseResult out;
  out.spec = spec;
  std::vector<std::unique_ptr<InvariantOracle>> oracles = DefaultOracles();
  out.result = RunProbed(spec, MakeFaultFactory(spec), &oracles);
  for (auto& oracle : oracles) {
    oracle->Check(spec, out.result);
    for (const Violation& v : oracle->violations()) {
      out.violations.push_back(v);
    }
  }
  if (!options.metamorphic) return out;

  // Metamorphic twin 1: a fault-free spec re-run under an inert-but-
  // active fault schedule replays byte-for-byte. Catches fault-path
  // bookkeeping (leases, monitors, retry timers) leaking into runs where
  // no fault ever fires. Flat fabrics only: on a racked topology the
  // slower cross-rack syncs legitimately stretch a parked worker's wait
  // past the retry backoff that an active schedule arms, so the twin
  // gains benign retry messages and equivalence is not a theorem.
  if (spec.fault == FaultKind::kNone && spec.rack_size == 0) {
    const runtime::ExperimentResult twin =
        RunProbed(spec, InertFaultFactory(), nullptr);
    const runtime::DeterminismReport diff = runtime::DiffTranscripts(
        runtime::DeterminismTranscript(out.result),
        runtime::DeterminismTranscript(twin));
    if (!diff.deterministic) {
      out.violations.push_back(Violation{
          kInertFaultOracle,
          "inert fault schedule perturbed the run: " + diff.ToString()});
    }
  }

  // Metamorphic twin 1b: on an inert-shard spec — Fela on a flat fabric
  // where sharding is auto (one shard) — forcing an explicit single
  // sub-distributor must replay byte-for-byte: ts_shards=1 is the same
  // server, and any divergence means shard bookkeeping leaked into the
  // unsharded hot path.
  if (spec.engine == EngineKind::kFela && spec.rack_size == 0 &&
      spec.fela_ts_shards == 0) {
    FuzzSpec sharded = spec;
    sharded.fela_ts_shards = 1;
    const runtime::ExperimentResult twin =
        RunProbed(sharded, MakeFaultFactory(sharded), nullptr);
    const runtime::DeterminismReport diff = runtime::DiffTranscripts(
        runtime::DeterminismTranscript(out.result),
        runtime::DeterminismTranscript(twin));
    if (!diff.deterministic) {
      out.violations.push_back(Violation{
          kShardEquivalenceOracle,
          "ts_shards=1 diverged from the unsharded server: " +
              diff.ToString()});
    }
  }

  // Metamorphic twin 2: adding a persistent straggler to a clean spec
  // never reduces makespan. Only claimed for static-schedule engines —
  // adaptive ones (ElasticMP re-partitions, Fela re-plans grants) may
  // legitimately land on a marginally better schedule once a worker
  // slows down, so monotonicity is not a theorem for them.
  const bool static_schedule =
      spec.engine == EngineKind::kDp || spec.engine == EngineKind::kPsDp ||
      spec.engine == EngineKind::kMp || spec.engine == EngineKind::kHp;
  if (static_schedule && spec.straggler == StragglerKind::kNone &&
      spec.fault == FaultKind::kNone) {
    FuzzSpec slowed = spec;
    slowed.straggler = StragglerKind::kPersistent;
    slowed.straggler_victim = spec.num_workers - 1;
    slowed.straggler_delay_sec = 1.0;
    const runtime::ExperimentResult twin =
        RunProbed(slowed, MakeFaultFactory(slowed), nullptr);
    if (twin.stats.total_time + 1e-9 < out.result.stats.total_time) {
      out.violations.push_back(Violation{
          kStragglerMonotoneOracle,
          common::StrFormat(
              "adding a 1s persistent straggler reduced makespan: "
              "%.9f -> %.9f seconds",
              out.result.stats.total_time, twin.stats.total_time)});
    }
  }

  // Metamorphic twin 3: under a straggler + crash composition, Fela
  // retains at least as large a fraction of its own clean throughput as
  // DP retains of its (the paper's central claim: DP redoes lost batches
  // at the barrier while Fela reclaims and re-grants tokens). Absolute
  // throughput is workload-shaped, so the comparison is on degradation.
  // Scoped to pure crash faults: a lossy control plane taxes Fela's
  // token traffic (retry backoff per dropped grant) far more than DP's
  // near-silent barrier protocol, so dominance is not claimed under it.
  // Also scoped to schedules that spare the initial TS host: when the
  // crash process may kill worker 0, Fela pays a ts_failover_timeout_sec
  // outage per failover while DP merely redoes the dead replica's batch,
  // so per-crash degradation dominance is not a theorem there either —
  // the survivability claim under TS loss is bench_control_plane_chaos's
  // job (Fela finishes where DP stalls outright on fail-stop).
  // Finally, at least 4 workers: with 2-3 workers a single crash removes
  // a third to half the fleet, Fela's majority degenerates to one or two
  // survivors carrying reassigned tokens through the straggler, and the
  // per-crash retention gap to DP is within scheduling noise — dominance
  // there is a coin flip, not a property worth alarming on.
  if (spec.engine == EngineKind::kFela && spec.fela_ads && spec.fela_hf &&
      spec.straggler != StragglerKind::kNone &&
      spec.fault == FaultKind::kRandomCrashes && spec.crash_spare_ts &&
      spec.num_workers >= 4) {
    FuzzSpec clean = spec;
    clean.straggler = StragglerKind::kNone;
    clean.fault = FaultKind::kNone;
    FuzzSpec dp = spec;
    dp.engine = EngineKind::kDp;
    FuzzSpec dp_clean = clean;
    dp_clean.engine = EngineKind::kDp;
    const double fela_clean =
        RunProbed(clean, MakeFaultFactory(clean), nullptr).average_throughput;
    const double dp_faulted =
        RunProbed(dp, MakeFaultFactory(dp), nullptr).average_throughput;
    const double dp_base =
        RunProbed(dp_clean, MakeFaultFactory(dp_clean), nullptr)
            .average_throughput;
    const double fela_retention =
        fela_clean > 0.0 ? out.result.average_throughput / fela_clean : 1.0;
    const double dp_retention = dp_base > 0.0 ? dp_faulted / dp_base : 1.0;
    if (fela_retention + 1e-9 < dp_retention) {
      out.violations.push_back(Violation{
          kFelaDominanceOracle,
          common::StrFormat(
              "Fela retained %.4f of clean throughput but DP retained "
              "%.4f under %s + %s",
              fela_retention, dp_retention, StragglerKindName(spec.straggler),
              FaultKindName(spec.fault))});
    }
  }

  return out;
}

FuzzCaseResult RunFuzzCase(const FuzzSpec& spec) {
  return RunFuzzCase(spec, FuzzOptions{});
}

std::string CaseSummaryLine(uint64_t index, const FuzzCaseResult& result) {
  std::string line = common::StrFormat(
      "case %04llu seed=%llu %s -> ",
      static_cast<unsigned long long>(index),
      static_cast<unsigned long long>(result.spec.seed),
      SpecLabel(result.spec).c_str());
  if (result.ok()) {
    line += common::StrFormat(
        "ok time=%.6g thr=%.6g%s", result.result.stats.total_time,
        result.result.average_throughput,
        result.result.stats.stalled ? " stalled" : "");
  } else {
    const Violation& first = result.violations.front();
    line += common::StrFormat("VIOLATION x%zu [%s] %s",
                              result.violations.size(), first.oracle.c_str(),
                              first.detail.c_str());
  }
  return line;
}

namespace {

/// Candidate one-step simplifications of `s`, most aggressive first.
/// Every candidate is strictly simpler by some measure, so greedy
/// restarts terminate.
std::vector<FuzzSpec> ShrinkCandidates(const FuzzSpec& s) {
  std::vector<FuzzSpec> out;
  if (s.fault != FaultKind::kNone) {
    FuzzSpec c = s;
    c.fault = FaultKind::kNone;
    out.push_back(std::move(c));
  }
  if (s.straggler != StragglerKind::kNone) {
    FuzzSpec c = s;
    c.straggler = StragglerKind::kNone;
    out.push_back(std::move(c));
  }
  if (s.num_workers > 2) {
    FuzzSpec c = s;
    c.num_workers = std::max(2, s.num_workers / 2);
    ClampToCluster(&c);
    out.push_back(std::move(c));
  }
  if (s.iterations > 1) {
    FuzzSpec c = s;
    c.iterations = std::max(1, s.iterations / 2);
    out.push_back(std::move(c));
  }
  if (s.total_batch > 32.0) {
    FuzzSpec c = s;
    c.total_batch = s.total_batch / 2.0;
    out.push_back(std::move(c));
  }
  if (s.observe) {
    FuzzSpec c = s;
    c.observe = false;
    out.push_back(std::move(c));
  }
  if (s.rack_size != 0 || s.fela_ts_shards != 0) {
    FuzzSpec c = s;
    c.rack_size = 0;        // flat fabric
    c.fela_ts_shards = 0;   // auto sharding (single distributor on flat)
    out.push_back(std::move(c));
  }
  const bool uniform = std::all_of(s.fela_weights.begin(),
                                   s.fela_weights.end(),
                                   [](int w) { return w == 1; });
  if (!uniform || s.fela_ctd_subset != s.num_workers || !s.fela_ads ||
      !s.fela_hf) {
    FuzzSpec c = s;
    std::fill(c.fela_weights.begin(), c.fela_weights.end(), 1);
    c.fela_ctd_subset = s.num_workers;
    c.fela_ads = true;
    c.fela_hf = true;
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

ShrinkResult Shrink(const FuzzSpec& failing, int max_attempts) {
  ShrinkResult out;
  out.spec = failing;

  // Re-run the original to learn which oracles define "still failing".
  const FuzzCaseResult original = RunFuzzCase(failing, FuzzOptions{});
  ++out.attempts;
  out.violations = original.violations;
  std::set<std::string> targets;
  for (const Violation& v : original.violations) targets.insert(v.oracle);
  if (targets.empty()) return out;  // nothing to chase

  // Metamorphic twins only cost extra runs if the failure needs them.
  FuzzOptions opts;
  opts.metamorphic = targets.count(kInertFaultOracle) > 0 ||
                     targets.count(kStragglerMonotoneOracle) > 0 ||
                     targets.count(kFelaDominanceOracle) > 0 ||
                     targets.count(kShardEquivalenceOracle) > 0;

  bool progress = true;
  while (progress && out.attempts < max_attempts) {
    progress = false;
    for (const FuzzSpec& candidate : ShrinkCandidates(out.spec)) {
      if (out.attempts >= max_attempts) break;
      ++out.attempts;
      FuzzCaseResult r = RunFuzzCase(candidate, opts);
      const bool still_fails = std::any_of(
          r.violations.begin(), r.violations.end(),
          [&targets](const Violation& v) { return targets.count(v.oracle); });
      if (still_fails) {
        out.spec = candidate;
        out.violations = std::move(r.violations);
        ++out.reductions;
        progress = true;
        break;  // restart the candidate list from the smaller spec
      }
    }
  }
  return out;
}

}  // namespace fela::testing
