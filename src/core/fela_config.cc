#include "core/fela_config.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace fela::core {

std::string FelaConfig::ToString() const {
  return common::StrFormat(
      "weights={%s} subset=%d ads=%d hf=%d",
      common::Join(weights, ",").c_str(), ctd_subset_size,
      ads_enabled ? 1 : 0, hf_enabled ? 1 : 0);
}

FelaConfig FelaConfig::Defaults(int num_sub_models, int num_workers) {
  FelaConfig cfg;
  cfg.weights.assign(static_cast<size_t>(num_sub_models), 1);
  cfg.ctd_subset_size = num_workers;
  return cfg;
}

common::Status ValidateConfig(const FelaConfig& config, int num_sub_models,
                              int num_workers) {
  if (static_cast<int>(config.weights.size()) != num_sub_models) {
    return common::Status::InvalidArgument(common::StrFormat(
        "expected %d weights, got %zu", num_sub_models,
        config.weights.size()));
  }
  if (config.weights[0] != 1) {
    return common::Status::InvalidArgument("w[0] must be 1 (the base)");
  }
  int prev = 0;
  for (int w : config.weights) {
    if (w < prev) {
      return common::Status::InvalidArgument(
          "weights must be non-decreasing (w[i+1] >= w[i], §IV-B)");
    }
    if (w < 1 || (w & (w - 1)) != 0) {
      return common::Status::InvalidArgument(
          common::StrFormat("weight %d is not a positive power of two", w));
    }
    if (w > num_workers) {
      return common::Status::InvalidArgument(common::StrFormat(
          "weight %d exceeds the candidate bound 2^floor(log2 N) for N=%d",
          w, num_workers));
    }
    prev = w;
  }
  if (config.ctd_subset_size < 1 || config.ctd_subset_size > num_workers) {
    return common::Status::InvalidArgument(common::StrFormat(
        "ctd_subset_size %d out of [1, %d]", config.ctd_subset_size,
        num_workers));
  }
  // Fault-tolerance knobs. All the > 0.0 comparisons also reject NaN.
  if (!(config.lease_timeout_sec > 0.0)) {
    return common::Status::InvalidArgument(common::StrFormat(
        "lease_timeout_sec must be positive, got %g",
        config.lease_timeout_sec));
  }
  if (!(config.retry_timeout_sec > 0.0)) {
    return common::Status::InvalidArgument(common::StrFormat(
        "retry_timeout_sec must be positive, got %g",
        config.retry_timeout_sec));
  }
  if (!(config.retry_backoff_mult >= 1.0)) {
    return common::Status::InvalidArgument(common::StrFormat(
        "retry_backoff_mult must be >= 1, got %g", config.retry_backoff_mult));
  }
  if (!(config.retry_timeout_max_sec >= config.retry_timeout_sec)) {
    return common::Status::InvalidArgument(common::StrFormat(
        "retry_timeout_max_sec %g is below retry_timeout_sec %g",
        config.retry_timeout_max_sec, config.retry_timeout_sec));
  }
  if (!(config.ts_checkpoint_interval_sec > 0.0)) {
    return common::Status::InvalidArgument(common::StrFormat(
        "ts_checkpoint_interval_sec must be positive, got %g",
        config.ts_checkpoint_interval_sec));
  }
  if (!(config.ts_failover_timeout_sec > 0.0)) {
    return common::Status::InvalidArgument(common::StrFormat(
        "ts_failover_timeout_sec must be positive, got %g",
        config.ts_failover_timeout_sec));
  }
  if (config.ts_shards < 0 || config.ts_shards > num_workers) {
    return common::Status::InvalidArgument(common::StrFormat(
        "ts_shards %d out of [0, %d] (0 = one shard per rack)",
        config.ts_shards, num_workers));
  }
  return common::Status::Ok();
}

common::Status ValidatePlanInputs(
    const model::Model& model, const std::vector<model::SubModel>& sub_models,
    const FelaConfig& config, double total_batch, int num_workers) {
  if (num_workers <= 0) {
    return common::Status::InvalidArgument(
        common::StrFormat("num_workers must be positive, got %d", num_workers));
  }
  if (!(total_batch > 0.0)) {  // also rejects NaN
    return common::Status::InvalidArgument(
        common::StrFormat("total_batch must be positive, got %g", total_batch));
  }
  if (sub_models.empty()) {
    return common::Status::InvalidArgument("partition has no sub-models");
  }
  for (size_t i = 0; i < sub_models.size(); ++i) {
    const model::SubModel& sm = sub_models[i];
    if (sm.first_layer < 0 || sm.last_layer < sm.first_layer ||
        sm.last_layer >= model.layer_count()) {
      return common::Status::InvalidArgument(common::StrFormat(
          "sub-model %zu covers layers [%d, %d] outside model range [0, %d]",
          i, sm.first_layer, sm.last_layer, model.layer_count() - 1));
    }
    if (!(sm.threshold_batch > 0.0)) {
      return common::Status::InvalidArgument(common::StrFormat(
          "sub-model %zu threshold_batch must be positive, got %g", i,
          sm.threshold_batch));
    }
  }
  // Fault-tolerance knobs (lease/retry/backoff/checkpoint) are part of
  // ValidateConfig, so they are checked here too.
  return ValidateConfig(config, static_cast<int>(sub_models.size()),
                        num_workers);
}

int FelaPlan::TotalTokens() const {
  int n = 0;
  for (const auto& l : levels) n += l.token_count;
  return n;
}

std::string FelaPlan::ToString() const {
  std::string out = common::StrFormat("FelaPlan(total_batch=%g, N=%d):\n",
                                      total_batch, num_workers);
  for (const auto& l : levels) {
    out += common::StrFormat(
        "  T-%d: n=%d batch=%g ratio=%d sync=%.1fMB%s\n", l.level + 1,
        l.token_count, l.token_batch, l.generation_ratio, l.sync_bytes / 1e6,
        l.communication_intensive ? " comm" : "");
  }
  return out;
}

FelaPlan BuildPlan(const model::Model& model,
                   const std::vector<model::SubModel>& sub_models,
                   const FelaConfig& config, double total_batch,
                   int num_workers, double bytes_per_scalar) {
  FELA_CHECK_OK(ValidatePlanInputs(model, sub_models, config, total_batch,
                                   num_workers));

  FelaPlan plan;
  plan.total_batch = total_batch;
  plan.num_workers = num_workers;

  // n_0 = max(ceil(total/threshold_0), N): at least one T-1 token per
  // worker "to reduce idle time and skewed consumption of samples" (Eq 2).
  const double thr0 = sub_models[0].threshold_batch;
  FELA_CHECK_GT(thr0, 0.0);
  const int n0 = std::max(static_cast<int>(std::ceil(total_batch / thr0)),
                          num_workers);
  const double b0 = total_batch / static_cast<double>(n0);

  for (size_t i = 0; i < sub_models.size(); ++i) {
    const model::SubModel& sm = sub_models[i];
    const int w = config.weights[i];
    LevelPlan lp;
    lp.level = static_cast<int>(i);
    lp.token_batch = b0 * w;
    lp.token_count = std::max(
        1, static_cast<int>(std::ceil(static_cast<double>(n0) / w)));
    lp.generation_ratio =
        i == 0 ? 0 : config.weights[i] / config.weights[i - 1];
    lp.dep_bytes_per_sample = sm.input_boundary_elems * bytes_per_scalar;
    lp.sample_bytes_per_sample =
        i == 0 ? model.input_elems_per_sample() * bytes_per_scalar : 0.0;
    lp.sync_bytes = sm.params * bytes_per_scalar;
    lp.communication_intensive = sm.communication_intensive;
    plan.levels.push_back(lp);
  }
  return plan;
}

}  // namespace fela::core
