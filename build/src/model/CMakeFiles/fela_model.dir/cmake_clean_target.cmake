file(REMOVE_RECURSE
  "libfela_model.a"
)
