#ifndef FELA_TESTING_FUZZER_H_
#define FELA_TESTING_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/experiment.h"
#include "testing/oracle.h"
#include "testing/spec_gen.h"

namespace fela::testing {

/// Metamorphic oracle names (reported in Violation::oracle alongside the
/// InvariantOracle names).
inline constexpr char kInertFaultOracle[] = "inert-fault-equivalence";
inline constexpr char kStragglerMonotoneOracle[] = "straggler-monotonicity";
inline constexpr char kFelaDominanceOracle[] = "fela-retention-dominates-dp";
inline constexpr char kShardEquivalenceOracle[] = "shard-equivalence";

struct FuzzOptions {
  /// Run metamorphic twin experiments (an extra 1–2 runs per eligible
  /// case). The shrinker disables them when the violation being chased
  /// came from a plain invariant oracle.
  bool metamorphic = true;
};

/// Outcome of one fuzz case: the primary run plus everything every
/// oracle had to say about it.
struct FuzzCaseResult {
  FuzzSpec spec;
  runtime::ExperimentResult result;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
};

/// Runs one spec under the full oracle battery:
///  * the primary experiment, probed post-run (token conservation,
///    event causality, memory bounds) and checked on its result
///    (attribution sums, stats sanity);
///  * metamorphic twins where the spec qualifies: a fault-free spec must
///    be byte-identical to the same spec under an inert-but-active
///    fault schedule; a clean spec on a static-schedule engine must not
///    get *faster* when a persistent straggler is added; a Fela case
///    under a crashy straggler composition must retain at least as much
///    of its clean throughput as DP retains of its own.
/// Deterministic per spec, and safe to call from sweep threads (no
/// shared mutable state) — except under the mutation canary, which is
/// process-global and therefore serial-only.
FuzzCaseResult RunFuzzCase(const FuzzSpec& spec, const FuzzOptions& options);
FuzzCaseResult RunFuzzCase(const FuzzSpec& spec);

/// Stable one-line render of a case outcome (what fela-fuzz prints);
/// byte-identical for a given (index, spec) regardless of --jobs.
std::string CaseSummaryLine(uint64_t index, const FuzzCaseResult& result);

/// Greedy spec minimization: starting from a failing spec, repeatedly
/// tries simplifications (drop faults, drop stragglers, halve
/// iterations, halve the cluster, halve the batch, uniform weights) and
/// keeps each one that still trips at least one of the *original*
/// oracles, looping until no simplification survives. The result is the
/// replayable repro fela-fuzz writes as JSON.
struct ShrinkResult {
  FuzzSpec spec;                      // minimized failing spec
  std::vector<Violation> violations;  // what the minimized spec trips
  int attempts = 0;                   // candidate runs executed
  int reductions = 0;                 // candidates accepted
};
ShrinkResult Shrink(const FuzzSpec& failing, int max_attempts = 100);

}  // namespace fela::testing

#endif  // FELA_TESTING_FUZZER_H_
