// fela-lint: project hygiene/determinism checker. See src/lint/lint.h
// for the rule set and DESIGN.md §8 for rationale.
//
//   fela-lint [--format=table|json] [--rules=a,b] [--list-rules] <path>...
//
// Exit codes: 0 clean, 1 findings reported, 2 usage or I/O error.

#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return fela::lint::RunCli(args, std::cout, std::cerr);
}
