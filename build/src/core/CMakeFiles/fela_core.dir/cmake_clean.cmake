file(REMOVE_RECURSE
  "CMakeFiles/fela_core.dir/fela_config.cc.o"
  "CMakeFiles/fela_core.dir/fela_config.cc.o.d"
  "CMakeFiles/fela_core.dir/fela_engine.cc.o"
  "CMakeFiles/fela_core.dir/fela_engine.cc.o.d"
  "CMakeFiles/fela_core.dir/info_mapping.cc.o"
  "CMakeFiles/fela_core.dir/info_mapping.cc.o.d"
  "CMakeFiles/fela_core.dir/ssp_extension.cc.o"
  "CMakeFiles/fela_core.dir/ssp_extension.cc.o.d"
  "CMakeFiles/fela_core.dir/token.cc.o"
  "CMakeFiles/fela_core.dir/token.cc.o.d"
  "CMakeFiles/fela_core.dir/token_bucket.cc.o"
  "CMakeFiles/fela_core.dir/token_bucket.cc.o.d"
  "CMakeFiles/fela_core.dir/token_server.cc.o"
  "CMakeFiles/fela_core.dir/token_server.cc.o.d"
  "CMakeFiles/fela_core.dir/tuning.cc.o"
  "CMakeFiles/fela_core.dir/tuning.cc.o.d"
  "CMakeFiles/fela_core.dir/worker.cc.o"
  "CMakeFiles/fela_core.dir/worker.cc.o.d"
  "libfela_core.a"
  "libfela_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fela_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
