#ifndef FELA_CORE_FELA_ENGINE_H_
#define FELA_CORE_FELA_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/arena.h"
#include "core/fela_config.h"
#include "core/token_server.h"
#include "core/worker.h"
#include "model/cost_model.h"
#include "model/model.h"
#include "model/partition.h"
#include "runtime/cluster.h"
#include "runtime/engine.h"

namespace fela::core {

/// The Fela engine (§III): a Token Server co-located with node 0 plus one
/// FelaWorker per node, running BSP iterations of token-scheduled hybrid-
/// parallel training. Per-sub-model parameter synchronization (ring
/// all-reduce; subset-limited for CTD levels) overlaps with the remaining
/// training of the iteration; the iteration ends when every token is
/// trained and every sub-model synchronized.
///
/// Under an active FaultSchedule the engine degrades gracefully (elastic
/// scale-in/out): a crashed worker is excluded, its in-flight token is
/// reclaimed by the TS lease path and re-granted (helpers steal the rest
/// of its STB), parameter syncs shrink to the admitted workers, and a
/// recovered worker is re-admitted at the next iteration boundary — or
/// immediately if it is the only survivor.
///
/// The control plane itself is survivable: the TS host is dynamic (it
/// starts at node 0 but is not pinned there). The active incarnation
/// checkpoints its distributor state at iteration boundaries and on a
/// periodic timer; when the TS host crashes — or a partition cuts it off
/// from the majority of the up workers — the incarnation is fenced
/// (in-flight messages to it are voided) and, after
/// ts_failover_timeout_sec, a standby on the best-connected up node
/// restores from the last checkpoint and re-arms the leases. Workers keep
/// retrying on their backoff schedule and converge on the new incarnation
/// without restarting the run. Partition-cut workers park (excluded like
/// crashed ones, but their processes stay alive) and re-admit when the
/// partition heals.
class FelaEngine : public runtime::Engine {
 public:
  /// Partitions the model with the paper's bin partitioner (§IV-A).
  FelaEngine(runtime::Cluster* cluster, const model::Model& model,
             const FelaConfig& config, double total_batch);

  /// Uses an explicit, user-defined partition (§III-B).
  FelaEngine(runtime::Cluster* cluster, const model::Model& model,
             std::vector<model::SubModel> sub_models, const FelaConfig& config,
             double total_batch);

  std::string name() const override { return "Fela"; }
  runtime::RunStats Run(int iterations) override;

  const FelaPlan& plan() const { return plan_; }
  const FelaConfig& config() const { return config_; }
  const std::vector<model::SubModel>& sub_models() const {
    return sub_models_;
  }
  /// Cluster-wide ledger of the live incarnation(s): the element-wise
  /// sum over every shard of the current server.
  TokenServer::Stats ts_stats() const { return ts_->stats(); }
  /// Live token server, for post-run invariant probes (the oracles audit
  /// its ledger through ExperimentSpec::post_run_probe). After a failover
  /// this is the current incarnation; archived incarnations are folded
  /// into CumulativeTsStats().
  const TokenServer& token_server() const { return *ts_; }
  const FelaWorker& worker(int i) const {
    return workers_[static_cast<size_t>(i)];
  }
  bool admitted(int i) const { return admitted_[static_cast<size_t>(i)]; }

  /// Current root/shard-0 TS host / incarnation (the host moves on
  /// failover). On a sharded server these describe the root shard; use
  /// the shard accessors for sub-distributors.
  sim::NodeId ts_node() const { return shard_host_[0]; }
  int ts_incarnation() const { return shard_inc_[0]; }
  int ts_shard_count() const { return num_ts_shards_; }
  sim::NodeId ts_shard_host(int shard) const {
    return shard_host_[static_cast<size_t>(shard)];
  }
  int ts_shard_incarnation(int shard) const {
    return shard_inc_[static_cast<size_t>(shard)];
  }
  bool ts_shard_active(int shard) const {
    return shard_active_[static_cast<size_t>(shard)];
  }
  /// Token-server ledger summed over every incarnation: archived stats
  /// from failed-over servers plus the live one.
  TokenServer::Stats CumulativeTsStats() const;
  /// Audits token conservation across incarnations: summed over the whole
  /// run, grants + leases_restored == completions + tokens_reclaimed +
  /// live leases — i.e. no token is double-granted or lost across a
  /// failover. Returns one line per violation; empty when healthy. The
  /// fuzzer's FailoverSafetyOracle calls this post-run.
  std::vector<std::string> CheckFailoverInvariants() const;

 private:
  void StartIteration(int iteration);
  void DeliverGrant(sim::NodeId worker, const Grant& grant);
  void OnLevelComplete(int level);
  void OnSyncDone(int level);
  void OnAllLevelsComplete();
  void MaybeFinishIteration();
  void OnWorkerCrash(int worker);
  void OnWorkerRecover(int worker);
  void OnWorkerCut(int worker);
  void OnWorkerHeal(int worker);
  void ReAdmit(int worker);
  /// True when a worker coming back up must rejoin NOW rather than at
  /// the iteration boundary: either every worker is excluded, or the
  /// worker is in the CTD subset — the only workers eligible for
  /// communication-intensive tokens — and deferring it could wedge the
  /// iteration once only those tokens remain.
  bool NeedsImmediateReadmit(int worker) const;
  /// Makes a fresh TokenServer for the current host/incarnation and
  /// wires the callbacks (construction and failover share this).
  std::unique_ptr<TokenServer> MakeTokenServer();
  /// Snapshots the live TS: the whole server into last_checkpoint_ when
  /// unsharded, else each active shard's lease table into
  /// shard_lease_cps_.
  void TakeCheckpoint();
  /// (Re-)arms the periodic checkpoint timer. Only armed while the fault
  /// schedule still has transitions ahead — once no crash/cut can ever
  /// happen again a checkpoint can never be consumed, and an
  /// unconditionally re-arming timer would keep the event queue alive
  /// forever on a stalled run.
  void ArmCheckpointTimer();
  void CancelCheckpointTimer();
  void CancelFailoverTimers();
  /// Fences one shard's active incarnation (its host crashed or lost
  /// quorum among the shard's members): closes that shard's ledger,
  /// voids in-flight messages addressed to it, and schedules its
  /// failover after config.ts_failover_timeout_sec. The other shards
  /// keep granting. With one shard this is exactly the whole-server
  /// fence.
  void FenceShard(int shard);
  /// Promotes a standby for one shard: picks the shard member (any up
  /// worker when unsharded) that can reach the most other members right
  /// now (ties -> lowest id), restores the shard's checkpoint (or the
  /// whole-server checkpoint / a fresh iteration when unsharded), and —
  /// for the root shard — re-anchors the partition monitor. No-op if no
  /// member is up — retried on the next member recover event.
  void CompleteShardFailover(int shard);
  bool AnyShardActive() const;
  bool faults_active() const { return cluster_->faults().Active(); }

  runtime::Cluster* cluster_;
  model::Model model_;
  std::vector<model::SubModel> sub_models_;
  FelaConfig config_;
  model::LayerCostModel cost_;
  FelaPlan plan_;

  std::unique_ptr<TokenServer> ts_;
  /// Shared by every worker (declared before the arena so it outlives
  /// them); holds the TS callbacks, so it must not move.
  WorkerContext worker_ctx_;
  /// Workers live in one contiguous arena (SoA-ish hot state; see
  /// common/arena.h) — at 1k+ workers the per-iteration scheduling scans
  /// stay cache-resident.
  common::ObjectArena<FelaWorker> workers_;
  std::unique_ptr<sim::FaultMonitor> monitor_;  // only under active faults
  /// admitted_[w]: w participates in scheduling and syncs. Cleared on
  /// crash; set again when a recovered worker is re-admitted.
  std::vector<bool> admitted_;
  /// Recovery time of workers waiting for re-admission, or -1.
  std::vector<sim::SimTime> recover_pending_;

  // Per-shard control-plane placement. Shard 0 is the root; its host
  // starts co-located with worker 0 (§III-A). Each sub-distributor is
  // hosted on its lowest member initially and moves to an elected
  // standby member on failover, independently of the other shards.
  int num_ts_shards_ = 1;
  std::vector<sim::NodeId> shard_host_;
  /// Bumped on every failover of that shard; control messages capture
  /// the shard incarnation at send time and are voided on delivery if it
  /// no longer matches (fencing — a message addressed to a dead
  /// sub-distributor is never applied to its successor).
  std::vector<int> shard_inc_;
  /// shard_active_[s] is false between FenceShard(s) and a successful
  /// CompleteShardFailover(s).
  std::vector<bool> shard_active_;
  std::vector<sim::EventId> shard_failover_timer_;
  /// True while CompleteShardFailover re-anchors the monitor; suppresses
  /// the quorum re-check that the re-anchoring cut events would otherwise
  /// trigger (a standby on a minority island must not instantly re-fence
  /// itself — only a *new* schedule transition may).
  bool failing_over_ = false;
  /// Whole-server checkpoint (unsharded survivability path only).
  TokenServer::Checkpoint last_checkpoint_;
  /// Per-shard lease checkpoints (sharded survivability path only).
  std::vector<TokenServer::ShardLeaseCheckpoint> shard_lease_cps_;
  /// Ledgers of finalized (failed-over) incarnations, element-wise summed.
  TokenServer::Stats ts_stats_archive_;
  sim::EventId checkpoint_timer_ = sim::kInvalidEventId;

  int target_iterations_ = 0;
  int current_iteration_ = 0;
  sim::SimTime iteration_start_ = 0.0;
  int syncs_done_ = 0;
  bool tokens_done_ = false;
  /// sync_started_[level]: this iteration's ring for the level already
  /// launched. A failed-over TS replays completions from the checkpoint,
  /// so a level can announce completion twice in one iteration; the sync
  /// (and syncs_done_) must still run once.
  std::vector<bool> sync_started_;
  bool run_complete_ = false;
  runtime::RunStats stats_;

  /// Framing span for the running iteration on the token-server track.
  std::optional<obs::ScopedSpan> iter_span_;
  /// Open kCrashed span per worker while it is excluded (crash -> the
  /// re-admission boundary, or run end if it never comes back).
  std::vector<std::optional<obs::ScopedSpan>> crash_spans_;
};

}  // namespace fela::core

#endif  // FELA_CORE_FELA_ENGINE_H_
