#include "common/logging.h"

#include <gtest/gtest.h>

namespace fela::common {
namespace {

TEST(LoggingTest, MinLevelRoundTrips) {
  const LogLevel old = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(MinLogLevel(), LogLevel::kError);
  SetMinLogLevel(old);
}

TEST(LoggingTest, BelowThresholdDoesNotEvaluateExpensively) {
  const LogLevel old = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  int calls = 0;
  auto expensive = [&calls] {
    ++calls;
    return "x";
  };
  FELA_LOG(Debug) << expensive();
  EXPECT_EQ(calls, 0);
  SetMinLogLevel(old);
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  FELA_CHECK(1 + 1 == 2) << "should not fire";
  FELA_CHECK_EQ(4, 4);
  FELA_CHECK_NE(4, 5);
  FELA_CHECK_LT(1, 2);
  FELA_CHECK_LE(2, 2);
  FELA_CHECK_GT(3, 2);
  FELA_CHECK_GE(3, 3);
}

TEST(LoggingTest, ParseLogLevelAcceptsNamesAndDigits) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("WARNING", &level));  // case-insensitive
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("Error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("fatal", &level));
  EXPECT_EQ(level, LogLevel::kFatal);
  EXPECT_TRUE(ParseLogLevel("0", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("4", &level));
  EXPECT_EQ(level, LogLevel::kFatal);
}

TEST(LoggingTest, ParseLogLevelRejectsJunkWithoutClobbering) {
  LogLevel level = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("5", &level));
  EXPECT_FALSE(ParseLogLevel("debu", &level));
  EXPECT_EQ(level, LogLevel::kError);  // untouched on failure
}

TEST(LoggingDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH({ FELA_CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, CheckEqAbortsWithValues) {
  EXPECT_DEATH({ FELA_CHECK_EQ(1, 2); }, "1 vs 2");
}

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH({ FELA_LOG(Fatal) << "fatal path"; }, "fatal path");
}

}  // namespace
}  // namespace fela::common
