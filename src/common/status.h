#ifndef FELA_COMMON_STATUS_H_
#define FELA_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace fela::common {

/// Error categories used across the library. Modelled after the usual
/// database-engine status palette; only the codes we actually need.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
};

/// Returns a short human-readable name ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value. The library does not use
/// exceptions; fallible operations return Status (or Result<T> below).
/// [[nodiscard]] is the compile-time twin of fela-lint's
/// discarded-status rule: silently dropping an error is a bug.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// A value-or-Status result, in the spirit of absl::StatusOr but minimal.
/// Accessing value() on an error aborts (see FELA_CHECK in logging.h).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or an error Status keeps call
  /// sites terse: `return value;` / `return Status::NotFound(...)`.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when holding an error.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace fela::common

/// Propagates an error Status from an expression that yields Status.
#define FELA_RETURN_IF_ERROR(expr)                      \
  do {                                                  \
    ::fela::common::Status fela_status_tmp_ = (expr);   \
    if (!fela_status_tmp_.ok()) return fela_status_tmp_; \
  } while (false)

#endif  // FELA_COMMON_STATUS_H_
