#ifndef FELA_MODEL_PROFILE_H_
#define FELA_MODEL_PROFILE_H_

#include <map>
#include <string>

#include "model/layer.h"

namespace fela::model {

/// Repository of profiled threshold batch sizes, keyed by layer shape
/// signature. Mirrors the paper's §IV-A footnote 11: thresholds are
/// "measured once and for all" and stored for reuse across tasks.
/// Lookup order for a layer: explicit layer.threshold_batch, then the
/// repository, then the heuristic fallback.
class ProfileRepository {
 public:
  ProfileRepository() = default;

  /// Registers (or overwrites) a profiled threshold for a shape.
  void Register(const std::string& shape_key, double threshold_batch);

  /// Returns the profiled threshold or 0 if unknown.
  double Lookup(const std::string& shape_key) const;

  bool Contains(const std::string& shape_key) const;
  size_t size() const { return thresholds_.size(); }

  /// Resolves the threshold for a layer through the full lookup chain.
  double ThresholdFor(const Layer& layer) const;

  /// The repository pre-populated with the calibrated K40c measurements
  /// used throughout the paper (Fig. 1, Fig. 5 shapes).
  static const ProfileRepository& Default();

 private:
  std::map<std::string, double> thresholds_;
};

/// Analytic fallback for unprofiled shapes. CONV thresholds shrink-fit a
/// power law in the layer's per-sample output parallelism, anchored at the
/// paper's measurements (16 for (64,64,224,224), ~64 for (512,512,14,14));
/// FC layers saturate only at very large batches (2048 for 4096x4096).
double HeuristicThreshold(const Layer& layer);

/// Rounds up to the next power of two (minimum 1).
double RoundUpPow2(double v);

}  // namespace fela::model

#endif  // FELA_MODEL_PROFILE_H_
