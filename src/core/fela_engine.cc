#include "core/fela_engine.h"

#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "sim/collectives.h"

namespace fela::core {

FelaEngine::FelaEngine(runtime::Cluster* cluster, const model::Model& model,
                       const FelaConfig& config, double total_batch)
    : FelaEngine(cluster, model,
                 model::BinPartitioner().Partition(
                     model, model::ProfileRepository::Default()),
                 config, total_batch) {}

FelaEngine::FelaEngine(runtime::Cluster* cluster, const model::Model& model,
                       std::vector<model::SubModel> sub_models,
                       const FelaConfig& config, double total_batch)
    : cluster_(cluster),
      model_(model),
      sub_models_(std::move(sub_models)),
      config_(config),
      cost_(cluster->calibration(), &model::ProfileRepository::Default()),
      plan_(BuildPlan(model_, sub_models_, config_, total_batch,
                      cluster->num_workers(),
                      cluster->calibration().bytes_per_scalar)) {
  TokenServer::Callbacks ts_cbs;
  ts_cbs.deliver_grant = [this](sim::NodeId w, const Grant& g) {
    DeliverGrant(w, g);
  };
  ts_cbs.on_level_complete = [this](int level) { OnLevelComplete(level); };
  ts_cbs.on_all_levels_complete = [this] { OnAllLevelsComplete(); };
  ts_cbs.on_reclaim = [this](const Token& token, sim::NodeId from) {
    FELA_TRACE(&cluster_->trace(), cluster_->simulator().now(), kTsNode,
               sim::TraceKind::kTokenReclaim,
               common::StrFormat("%s from=%d attempt=%d",
                                 token.ToString().c_str(), from,
                                 token.attempt));
  };
  ts_ = std::make_unique<TokenServer>(&cluster_->simulator(),
                                      &cluster_->calibration(), &plan_,
                                      &config_, std::move(ts_cbs));
  ts_->set_span_sink(&cluster_->spans());

  FelaWorker::Callbacks w_cbs;
  w_cbs.send_request = [this](sim::NodeId w) {
    cluster_->fabric().SendControl(w, kTsNode,
                                   [this, w] { ts_->HandleRequest(w); });
  };
  w_cbs.send_report = [this](sim::NodeId w, const Token& token) {
    cluster_->fabric().SendControl(
        w, kTsNode, [this, w, token] { ts_->HandleReport(w, token); });
  };
  for (int i = 0; i < cluster_->num_workers(); ++i) {
    workers_.push_back(std::make_unique<FelaWorker>(
        i, &cluster_->simulator(), &cluster_->fabric(), &cluster_->gpu(i),
        &model_, &sub_models_, &cost_, &cluster_->trace(), w_cbs));
    workers_.back()->set_span_sink(&cluster_->spans());
  }
  admitted_.assign(static_cast<size_t>(cluster_->num_workers()), true);
  recover_pending_.assign(static_cast<size_t>(cluster_->num_workers()), -1.0);
  crash_spans_.resize(static_cast<size_t>(cluster_->num_workers()));

  if (faults_active()) {
    ts_->set_leases_enabled(true);
    for (auto& w : workers_) w->set_retry_timeout(config_.retry_timeout_sec);
    sim::FaultMonitor::Callbacks m_cbs;
    m_cbs.on_crash = [this](int w) { OnWorkerCrash(w); };
    m_cbs.on_recover = [this](int w) { OnWorkerRecover(w); };
    monitor_ = std::make_unique<sim::FaultMonitor>(
        &cluster_->simulator(), &cluster_->faults(), cluster_->num_workers(),
        std::move(m_cbs));
  }
}

void FelaEngine::OnWorkerCrash(int worker) {
  if (run_complete_) return;
  ++stats_.faults.crashes;
  FELA_TRACE(&cluster_->trace(), cluster_->simulator().now(), worker,
             sim::TraceKind::kWorkerCrash,
             common::StrFormat("it=%d", current_iteration_));
  crash_spans_[static_cast<size_t>(worker)].emplace(
      &cluster_->spans(), worker, obs::Phase::kCrashed, current_iteration_);
  admitted_[static_cast<size_t>(worker)] = false;
  recover_pending_[static_cast<size_t>(worker)] = -1.0;
  // Kill the worker process first (voids its in-flight work), then let
  // the TS reclaim its lease and re-route the token elsewhere.
  workers_[static_cast<size_t>(worker)]->OnCrash();
  ts_->SetWorkerDown(worker, true);
}

void FelaEngine::OnWorkerRecover(int worker) {
  if (run_complete_) return;
  ++stats_.faults.recoveries;
  const sim::SimTime now = cluster_->simulator().now();
  FELA_TRACE(&cluster_->trace(), now, worker, sim::TraceKind::kWorkerRecover,
             common::StrFormat("it=%d", current_iteration_));
  ts_->SetWorkerDown(worker, false);
  recover_pending_[static_cast<size_t>(worker)] = now;
  // Elastic scale-out normally waits for the iteration boundary, but if
  // every worker is excluded the iteration can never finish — re-admit
  // the survivor immediately to restore liveness.
  bool any_admitted = false;
  for (int w = 0; w < cluster_->num_workers(); ++w) {
    if (admitted_[static_cast<size_t>(w)]) any_admitted = true;
  }
  if (!any_admitted) {
    ReAdmit(worker);
    workers_[static_cast<size_t>(worker)]->RequestWork(current_iteration_);
  }
}

void FelaEngine::ReAdmit(int worker) {
  const size_t w = static_cast<size_t>(worker);
  admitted_[w] = true;
  crash_spans_[w].reset();  // emits the crash -> re-admission interval
  ++stats_.faults.readmissions;
  if (recover_pending_[w] >= 0.0) {
    stats_.faults.recovery_latency_total +=
        cluster_->simulator().now() - recover_pending_[w];
    recover_pending_[w] = -1.0;
  }
}

void FelaEngine::DeliverGrant(sim::NodeId worker, const Grant& grant) {
  // Notify the holders of the granted token's dependencies so they are
  // prepared for the incoming fetches (§III-A); fire-and-forget controls.
  for (const auto& [holder, bytes] : grant.remote_fetches) {
    (void)bytes;
    cluster_->fabric().SendControl(kTsNode, holder, [] {});
  }
  // The grant response itself, delayed by any lock/conflict penalty the
  // distributor charged. The fabric drops it if an endpoint is down at
  // send time; the delivery-side check covers a crash while in flight
  // (the TS lease reclaims the token either way).
  // fela-lint: allow(untraced-event) the worker traces kTokenGrant on
  // receipt; in-flight delivery has no observable state to record.
  cluster_->simulator().Schedule(grant.extra_delay, [this, worker, grant] {
    cluster_->fabric().SendControl(kTsNode, worker, [this, worker, grant] {
      if (monitor_ && monitor_->IsDown(worker)) return;
      workers_[static_cast<size_t>(worker)]->OnGrant(grant);
    });
  });
}

void FelaEngine::StartIteration(int iteration) {
  current_iteration_ = iteration;
  iteration_start_ = cluster_->simulator().now();
  syncs_done_ = 0;
  tokens_done_ = false;
  FELA_TRACE(&cluster_->trace(), iteration_start_, kTsNode,
             sim::TraceKind::kIterationStart,
             common::StrFormat("it=%d", iteration));
  if (cluster_->spans().enabled()) {
    iter_span_.emplace(&cluster_->spans(), cluster_->num_workers(),
                       obs::Phase::kIteration, iteration,
                       common::StrFormat("it=%d", iteration));
  }
  // Elastic scale-out: workers that recovered during the previous
  // iteration rejoin at this boundary.
  for (int w = 0; w < cluster_->num_workers(); ++w) {
    if (!admitted_[static_cast<size_t>(w)] && monitor_ && !monitor_->IsDown(w)) {
      ReAdmit(w);
    }
  }
  ts_->BeginIteration(iteration);
  for (int w = 0; w < cluster_->num_workers(); ++w) {
    if (!admitted_[static_cast<size_t>(w)]) continue;  // still crashed
    const double delay = cluster_->stragglers().DelayFor(iteration, w);
    const double slowdown = cluster_->stragglers().SlowdownFor(iteration, w);
    workers_[static_cast<size_t>(w)]->BeginIteration(iteration, delay,
                                                     slowdown);
  }
}

void FelaEngine::OnLevelComplete(int level) {
  const LevelPlan& lp = plan_.level(level);
  std::vector<sim::NodeId> participants;
  const bool ctd_scoped = lp.communication_intensive &&
                          config_.ctd_subset_size < plan_.num_workers;
  const int count =
      ctd_scoped ? config_.ctd_subset_size : cluster_->num_workers();
  participants.reserve(static_cast<size_t>(count));
  // Crashed workers drop out of the ring; they re-pull parameters when
  // re-admitted (elastic scale-in).
  for (int i = 0; i < count; ++i) {
    if (admitted_[static_cast<size_t>(i)]) participants.push_back(i);
  }

  FELA_TRACE(&cluster_->trace(), cluster_->simulator().now(), kTsNode,
             sim::TraceKind::kSyncStart,
             common::StrFormat("SM-%d %.1fMB among %zu", level + 1,
                               lp.sync_bytes / 1e6, participants.size()));
  sim::RingAllReduce(&cluster_->simulator(), &cluster_->fabric(),
                     std::move(participants), lp.sync_bytes,
                     [this, level] { OnSyncDone(level); },
                     &cluster_->spans());
}

void FelaEngine::OnSyncDone(int level) {
  ++syncs_done_;
  FELA_TRACE(&cluster_->trace(), cluster_->simulator().now(), kTsNode,
             sim::TraceKind::kSyncEnd,
             common::StrFormat("SM-%d", level + 1));
  MaybeFinishIteration();
}

void FelaEngine::OnAllLevelsComplete() {
  tokens_done_ = true;
  MaybeFinishIteration();
}

void FelaEngine::MaybeFinishIteration() {
  if (!tokens_done_ || syncs_done_ != plan_.num_levels()) return;
  const sim::SimTime now = cluster_->simulator().now();
  stats_.iterations.push_back(runtime::IterationStats{iteration_start_, now});
  FELA_TRACE(&cluster_->trace(), now, kTsNode, sim::TraceKind::kIterationEnd,
             common::StrFormat("it=%d", current_iteration_));
  iter_span_.reset();  // emits the iteration framing span
  if (current_iteration_ + 1 < target_iterations_) {
    StartIteration(current_iteration_ + 1);
  } else {
    run_complete_ = true;
    // Teardown: cancel every fault-tolerance timer so no dangling event
    // keeps the queue alive or inflates total_time.
    if (monitor_) monitor_->Stop();
    ts_->CancelAllLeases();
    for (auto& w : workers_) w->Quiesce();
  }
}

runtime::RunStats FelaEngine::Run(int iterations) {
  FELA_CHECK_GT(iterations, 0);
  FELA_CHECK(stats_.iterations.empty()) << "Run() may be called once";
  target_iterations_ = iterations;
  cluster_->fabric().ResetStats();

  if (monitor_) monitor_->Start();
  StartIteration(0);
  cluster_->simulator().Run();
  if (!run_complete_) {
    // Only a fault scenario may leave work undone (e.g. every worker
    // fail-stopped and none came back); a fault-free drain is a bug.
    FELA_CHECK(faults_active()) << "simulation drained before finishing";
    stats_.stalled = true;
    if (iter_span_) {
      // The iteration never finished; an open-ended framing span would
      // claim the stall window as productive time.
      iter_span_->Cancel();
      iter_span_.reset();
    }
  }
  // Workers still excluded at run end stay "crashed" to the final clock.
  for (auto& cs : crash_spans_) cs.reset();

  // Cross-check token conservation: every worker-trained sample count
  // sums to total_batch per level per iteration. Under faults, reports
  // lost in flight cause retraining, so workers may train *more* than
  // the plan — never less.
  if (!stats_.stalled) {
    double samples = 0.0;
    for (const auto& w : workers_) samples += w->samples_trained();
    const double expected = plan_.total_batch *
                            static_cast<double>(plan_.num_levels()) *
                            static_cast<double>(iterations);
    if (faults_active()) {
      FELA_CHECK_GE(samples, expected - 1e-6 * expected)
          << samples << " vs " << expected;
    } else {
      FELA_CHECK(std::abs(samples - expected) < 1e-6 * expected)
          << samples << " vs " << expected;
    }
  }

  stats_.total_time = cluster_->simulator().now();
  stats_.total_data_bytes = cluster_->fabric().total_data_bytes();
  stats_.total_gpu_busy = cluster_->TotalGpuBusy();
  stats_.control_messages = cluster_->fabric().control_message_count();
  stats_.faults.control_dropped = cluster_->fabric().control_dropped_count();
  stats_.faults.control_duplicated =
      cluster_->fabric().control_duplicated_count();
  const TokenServer::Stats& ts = ts_->stats();
  stats_.faults.tokens_reclaimed = ts.tokens_reclaimed;
  stats_.faults.regrants = ts.regrants;
  stats_.faults.duplicate_reports = ts.duplicate_reports + ts.stale_reports;
  for (const auto& w : workers_) stats_.faults.request_retries += w->retries();

  if (cluster_->observability()) {
    obs::MetricsRegistry& m = cluster_->metrics();
    const std::string labels = "engine=Fela";
    m.GetCounter("ts_grants", labels).Increment(ts.grants);
    m.GetCounter("ts_steals", labels).Increment(ts.steals);
    m.GetCounter("ts_conflicts", labels).Increment(ts.conflicts);
    m.GetCounter("ts_completions", labels).Increment(ts.completions);
    m.GetCounter("ts_lease_expirations", labels)
        .Increment(ts.lease_expirations);
    m.GetCounter("ts_remote_dep_fetches", labels)
        .Increment(ts.remote_dep_fetches);
    m.GetCounter("ts_local_dep_hits", labels).Increment(ts.local_dep_hits);
    m.GetGauge("ts_conflict_delay_seconds", labels)
        .Set(ts.conflict_delay_total);
    for (const auto& w : workers_) {
      m.GetGauge("worker_tokens_trained",
                 common::StrFormat("engine=Fela,worker=%d", w->id()))
          .Set(static_cast<double>(w->tokens_trained()));
    }
  }
  return stats_;
}

}  // namespace fela::core
